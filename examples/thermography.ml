(* The PA-Python use cases (paper §3.3): the Iowa State Thermography
   Research Group's crack-heating analysis.

     dune exec examples/thermography.exe

   Use case 1 (data origin): the analysis script reads *all* the XML
   experiment logs to decide which to use, so PASS alone reports the plot
   derives from every file; PA-Python narrows it to the documents that
   actually fed the plot.

   Use case 2 (process validation): a library upgrade introduced a bug in
   a calculation routine; which outputs are affected?  Only the layered
   view — routine AND library version — answers it. *)

let pql_names db q = Pql.names_of_rows db Pql.Engine.(execute (prepare db q))

let () =
  print_endline "== §3.3: provenance-aware Python ==\n";
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in

  (* ~400 experiments on 60 specimens, stored as XML by the acquisition
     system (scaled down to 12 files here) *)
  for i = 1 to 12 do
    let stress = if i mod 3 = 0 then "high" else "low" in
    Pyth.write_file sys ~pid
      (Printf.sprintf "/vol0/data/exp%02d.xml" i)
      (Printf.sprintf
         {|<experiment stress="%s" specimen="s%d"><crack length="%d.5" heating="%d.25"/></experiment>|}
         stress (i mod 6) i i)
  done;
  print_endline "wrote 12 XML experiment logs (8 low-stress, 4 high-stress)";

  (* the analysis library, as upgraded on one of the machines *)
  Pyth.write_file sys ~pid "/vol0/lib/thermo.py"
    {|VERSION = "2.0-upgraded"
def heating(doc):
    import xml
    cracks = xml.findall(doc, "crack")
    h = 0.0
    for c in cracks:
        h = h + float(xml.attr(c, "heating"))
    return h
|};
  print_endline "installed thermo.py v2.0 (the upgraded — buggy — library)\n";

  (* the team member's analysis script: plot crack heating for the
     low-stress classification *)
  let session = Pyth.create ~provenance:true ~module_dir:"/vol0/lib" sys ~pid () in
  Pyth.run session
    {|import xml
import plot
import thermo
docs = []
for f in listdir("/vol0/data"):
    d = xml.parse_file("/vol0/data/" + f)
    if xml.attr(d, "stress") == "low":
        append(docs, d)
points = []
i = 1
for d in docs:
    append(points, [float(i), thermo.heating(d)])
    i = i + 1
plot.plot(points, "crack heating vs length (low stress)", "/vol0/out/heating-low.dat")
print("plotted " + str(len(docs)) + " low-stress experiments")
|};
  print_string (Pyth.output session);
  (match session.Pyth.wrappers with
  | Some w -> Printf.printf "PA-Python recorded %d wrapped invocations\n" (Provwrap.invocation_count w)
  | None -> ());

  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in

  print_endline "\n-- use case 1: which XML files actually fed the plot? --";
  let coarse =
    pql_names db
      {|select A from Provenance.file as P P.input* as A where P.name = "heating-low.dat"|}
    |> List.filter (fun n -> String.length n > 4 && Filename.check_suffix n ".xml")
  in
  Printf.printf "PASS alone (file granularity): %d XML ancestors — every file the script read\n"
    (List.length coarse);
  let fine =
    pql_names db
      {|select A from Provenance.file as P, P.input as I, I.input* as A
        where P.name = "heating-low.dat" and I.type = "INVOCATION"|}
    |> List.filter (fun n -> Filename.check_suffix n ".xml")
  in
  Printf.printf "with PA-Python (invocation granularity): %d XML ancestors — only the ones used:\n"
    (List.length fine);
  List.iter (fun n -> Printf.printf "  %s\n" n) fine;

  print_endline "\n-- use case 2: which outputs used the buggy routine in the new library? --";
  let tainted =
    pql_names db
      {|select P from Provenance.file as P
        where exists (select A from P.input* as A where A.name = "thermo.heating")
          and exists (select L from P.input* as L where L.name = "thermo.py")|}
  in
  Printf.printf "outputs descending from BOTH thermo.heating AND thermo.py: %s\n"
    (String.concat ", " tainted);
  print_endline "those are exactly the results to regenerate after the bug fix.";

  print_endline "\n-- the §6.5 limitation, demonstrated --";
  Pyth.run session
    {|import xml
d = xml.parse_file("/vol0/data/exp01.xml")
tag = xml.attr(d, "specimen")
laundered = tag + ""
writefile("/vol0/out/tagged.txt", tag)
writefile("/vol0/out/laundered.txt", laundered)
|};
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  let fine_ancestry name =
    pql_names db
      (Printf.sprintf
         {|select A from Provenance.file as F, F.input as I, I.input* as A
           where F.name = "%s" and I.type = "INVOCATION"|}
         name)
  in
  Printf.printf "tagged.txt    invocation-level ancestry includes exp01.xml: %b\n"
    (List.mem "exp01.xml" (fine_ancestry "tagged.txt"));
  Printf.printf "laundered.txt (value passed through built-in '+'): %b\n"
    (List.mem "exp01.xml" (fine_ancestry "laundered.txt"));
  print_endline "wrapping functions makes an application provenance-aware; built-in";
  print_endline "operators still launder tags — making Python itself provenance-aware";
  print_endline "would require modifying the interpreter (left as future work in the paper)."
