(* Quickstart: boot a provenance-aware system, do some work, ask questions.

     dune exec examples/quickstart.exe

   Walks through the basic PASSv2 loop: mount a PASS volume, run processes
   that read and write files, disclose some application-level provenance
   through libpass, drain the WAP logs into Waldo, and query with PQL. *)

module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue
module Dpapi = Pass_core.Dpapi
module Libpass = Pass_core.Libpass

let pql_names db q = Pql.names_of_rows db Pql.Engine.(execute (prepare db q))

let ok = function Ok v -> v | Error e -> failwith (Vfs.errno_to_string e)

let write_file sys ~pid ~path data =
  let k = System.kernel sys in
  let fd = ok (Kernel.open_file k ~pid ~path ~create:true) in
  ok (Kernel.write k ~pid ~fd ~data);
  ok (Kernel.close k ~pid ~fd)

let read_file sys ~pid ~path =
  let k = System.kernel sys in
  let fd = ok (Kernel.open_file k ~pid ~path ~create:false) in
  let st = ok (Kernel.stat k ~path) in
  let data = ok (Kernel.read k ~pid ~fd ~len:st.Vfs.st_size) in
  ok (Kernel.close k ~pid ~fd);
  data

let () =
  print_endline "== quickstart: a provenance-aware system in five steps ==\n";

  (* 1. boot a machine with one PASS volume (Lasagna over ext3, Waldo
        attached, observer/analyzer/distributor in the kernel) *)
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let k = System.kernel sys in
  print_endline "1. booted: PASS volume vol0 mounted";

  (* 2. ordinary processes do ordinary I/O; provenance is collected
        invisibly (no application changes) *)
  let producer = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid:producer ~path:"/vol0/raw-data.csv" "temp,pressure\n21,1.0\n23,1.1\n";
  let transformer = Kernel.fork k ~parent:Kernel.init_pid in
  ok (Kernel.execve k ~pid:transformer ~path:"/vol0/raw-data.csv" ~argv:[] ~env:[]) |> ignore;
  let raw = read_file sys ~pid:transformer ~path:"/vol0/raw-data.csv" in
  write_file sys ~pid:transformer ~path:"/vol0/clean-data.csv" (String.uppercase_ascii raw);
  print_endline "2. two processes ran: producer wrote raw-data.csv, transformer derived clean-data.csv";

  (* 3. a provenance-aware application can say *more* than the kernel can
        see: it creates a semantic object and links the file to it *)
  let ep = Option.get (System.app_endpoint sys ~pid:transformer) in
  let lp = Libpass.connect ~endpoint:ep ~pid:transformer in
  let dataset = Libpass.mkobj ~typ:"DATASET" ~name:"november-run" lp in
  let file = ok (Kernel.handle_of_path k "/vol0/clean-data.csv") in
  Libpass.disclose lp file [ Record.input (Pvalue.xref dataset.Dpapi.pnode 0) ];
  Libpass.sync lp dataset;
  print_endline "3. the application disclosed: clean-data.csv belongs to dataset \"november-run\"";

  (* 4. drain the WAP logs into the Waldo database *)
  let orphans = System.drain sys in
  let db = Option.get (System.waldo_db sys "vol0") in
  Printf.printf "4. drained logs into Waldo: %d nodes, %d records, %d orphaned txns\n"
    (Provdb.node_count db) (Provdb.quad_count db) orphans;

  (* 5. ask questions in PQL *)
  let show query =
    Printf.printf "\n   pql> %s\n" (String.concat " " (String.split_on_char '\n' query));
    List.iter (Printf.printf "        %s\n") (pql_names db query)
  in
  print_endline "5. querying:";
  show {|select A from Provenance.file as F F.input* as A where F.name = "clean-data.csv"|};
  show {|select F from Provenance.file as F
         where exists (select D from F.^input as D)|};
  show {|select O from Provenance.object as O where O.type = "DATASET"|};
  print_endline "\ndone: clean-data.csv traces back through the transformer process to";
  print_endline "raw-data.csv and its producer, and forward to the semantic dataset object."
