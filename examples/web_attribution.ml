(* The PA-links browser use cases (paper §3.2).

     dune exec examples/web_attribution.exe

   Two stories:
   1. Attribution: a professor downloads figures from the web, copies and
      renames them into a talk directory, and months later needs proper
      attribution — the browser history is gone, but PASS kept the file
      and its provenance connected.
   2. Malware: Eve compromises a codec on a web site; Alice downloads and
      runs it; the layered provenance identifies both where it came from
      and everything it touched. *)

module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue

let pql_names db q = Pql.names_of_rows db Pql.Engine.(execute (prepare db q))

let ok = function Ok v -> v | Error e -> failwith (Vfs.errno_to_string e)

let () =
  print_endline "== §3.2: provenance-aware browsing ==\n";
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let k = System.kernel sys in
  let web = Web.synthetic ~sites:4 ~pages_per_site:6 () in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  let browser = Browser.create ~web ~sys ~pid in

  (* ----- story 1: attribution ------------------------------------------- *)
  print_endline "--- story 1: the absent-minded professor ---";
  let s = Browser.new_session browser in
  ignore (Browser.visit browser s (Web.site_url 1 0));
  ignore (Browser.visit browser s (Web.site_url 1 3));
  let graph_url = Web.download_url 1 "doc3.pdf" in
  ignore (Browser.download browser s ~url:graph_url ~dest:"/vol0/downloads/crime-stats.pdf");
  Printf.printf "downloaded %s\n  while viewing %s\n" graph_url (Web.site_url 1 3);
  (* months later: moved and renamed into the talk *)
  ok (Kernel.mkdir_p k ~path:"/vol0/talk");
  ok (Kernel.rename k ~pid ~src:"/vol0/downloads/crime-stats.pdf" ~dst:"/vol0/talk/figure-7.pdf");
  print_endline "renamed to /vol0/talk/figure-7.pdf; browser history long gone";
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  (* ask: where did figure-7.pdf come from?  (name index still holds the
     original name; the pnode — and provenance — survived the rename) *)
  let file = List.hd (Provdb.find_by_name db "crime-stats.pdf") in
  print_endline "\nattribution query on the renamed file:";
  List.iter
    (fun (q : Provdb.quad) ->
      if q.q_attr = Record.Attr.file_url || q.q_attr = Record.Attr.current_url then
        Printf.printf "  %-12s %s\n" q.q_attr
          (match q.q_value with Pvalue.Str s -> s | _ -> "?"))
    (Provdb.records_all db file);
  let session = List.hd (Provdb.find_by_name db "session-1") in
  print_endline "  pages visited during the downloading session:";
  List.iter
    (fun (q : Provdb.quad) ->
      if q.q_attr = Record.Attr.visited_url then
        Printf.printf "    %s\n" (match q.q_value with Pvalue.Str s -> s | _ -> "?"))
    (Provdb.records_all db session);

  (* ----- story 2: malware ------------------------------------------------ *)
  print_endline "\n--- story 2: determining the malware source ---";
  let codec_url = Web.download_url 2 "doc1.pdf" in
  Web.compromise web ~url:codec_url ~payload:"codec-plus-malware";
  Printf.printf "Eve compromises %s\n" codec_url;
  let s2 = Browser.new_session browser in
  ignore (Browser.visit browser s2 "http://short.example/s2") (* redirect! *);
  ignore (Browser.visit browser s2 (Web.site_url 2 1));
  ignore (Browser.download browser s2 ~url:codec_url ~dest:"/vol0/bin/codec");
  print_endline "Alice downloads the codec (via a redirect she never noticed) and runs it";
  let mal = Kernel.fork k ~parent:Kernel.init_pid in
  ok (Kernel.execve k ~pid:mal ~path:"/vol0/bin/codec" ~argv:[ "codec"; "--install" ] ~env:[]);
  let io = Kepler_run.io_of_system sys ~pid:mal in
  io.Actor.write_file "/vol0/home/document.txt" "corrupted";
  io.Actor.write_file "/vol0/home/spreadsheet.xls" "corrupted";
  io.Actor.write_file "/vol0/etc/startup.rc" "persistence-hook";
  print_endline "the malware corrupts three files before Alice notices";
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in

  print_endline "\nbackward query — where did the codec come from?";
  let codec = List.hd (Provdb.find_by_name db "codec") in
  List.iter
    (fun (q : Provdb.quad) ->
      if q.q_attr = Record.Attr.file_url || q.q_attr = Record.Attr.current_url then
        Printf.printf "  %-12s %s\n" q.q_attr
          (match q.q_value with Pvalue.Str s -> s | _ -> "?"))
    (Provdb.records_all db codec);
  let session2 = List.hd (Provdb.find_by_name db "session-2") in
  print_endline "  browsing session that fetched it (note the redirect chain):";
  List.iter
    (fun (q : Provdb.quad) ->
      if q.q_attr = Record.Attr.visited_url then
        Printf.printf "    %s\n" (match q.q_value with Pvalue.Str s -> s | _ -> "?"))
    (Provdb.records_all db session2);

  print_endline "\nforward query — what descends from the codec?";
  let descendants =
    pql_names db {|select D from Provenance.file as C C.^input* as D where C.name = "codec"|}
  in
  List.iter (fun n -> Printf.printf "  %s\n" n) descendants;
  print_endline "\nwithout layering: the browser alone cannot track the spread through the";
  print_endline "file system, and PASS alone cannot name the web site.  Together they can."
