(* Finding the source of anomalies (paper §3.1, Figure 1).

     dune exec examples/anomaly_detection.exe

   The exact scenario of the paper's running example: Kepler executes the
   Provenance Challenge workflow on a workstation, reading inputs from one
   NFS file server and writing outputs to another.  Between two runs a
   colleague silently modifies one input file on the remote server.  The
   second run's output differs — why?

   - Kepler's own provenance says the two runs were identical (same
     operators, same parameters): the change is invisible to it.
   - PASS alone shows a different input version but cannot relate it to
     the output through the workflow's internals.
   - The *layered* provenance answers the question. *)

let pql_names db q = Pql.names_of_rows db Pql.Engine.(execute (prepare db q))

let () =
  print_endline "== §3.1: finding the source of an anomaly ==\n";
  (* the Figure 1 topology: workstation + two PA-NFS servers *)
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "local" ] () in
  let clock = System.clock sys in
  let ctx = Kernel.ctx (System.kernel sys) in
  let server_a = Server.create ~mode:Server.Pass_enabled ~clock ~machine:21 ~volume:"nfsA" () in
  let server_b = Server.create ~mode:Server.Pass_enabled ~clock ~machine:22 ~volume:"nfsB" () in
  let net = Proto.net clock in
  let ca = Client.create ~net ~handler:(Server.handle server_a) ~ctx ~mount_name:"nfsA" () in
  let cb = Client.create ~net ~handler:(Server.handle server_b) ~ctx ~mount_name:"nfsB" () in
  System.mount_external sys ~name:"nfsA" ~ops:(Client.ops ca) ~endpoint:(Client.endpoint ca)
    ~file_handle:(Client.file_handle ca)
    ~flush:(fun () -> Client.flush ca) ();
  System.mount_external sys ~name:"nfsB" ~ops:(Client.ops cb) ~endpoint:(Client.endpoint cb)
    ~file_handle:(Client.file_handle cb)
    ~flush:(fun () -> Client.flush cb) ();
  print_endline "topology: workstation(local) + file server A (inputs) + file server B (outputs)";

  let engine = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let io = Kepler_run.io_of_system sys ~pid:engine in
  let wf = Challenge.workflow ~input_dir:"/nfsA/inputs" ~output_dir:"/nfsB/results" in

  (* Monday: the first run *)
  Challenge.prepare_inputs ~input_dir:"/nfsA/inputs" io;
  let monday = Kepler_run.run sys ~pid:engine wf in
  let monday_atlas = io.Actor.read_file "/nfsB/results/atlas-x.gif" in
  Printf.printf "\nMonday:    workflow ran (%d operators fired), atlas-x.gif = %s\n"
    (List.length monday.Director.fired) monday_atlas;

  (* note Monday's atlas version for the later ancestry diff *)
  ignore (Server.drain server_b : int);
  let monday_version =
    let db = Option.get (Server.db server_b) in
    let atlas = List.hd (Provdb.find_by_name db "atlas-x.gif") in
    (Option.get (Provdb.find_node db atlas)).Provdb.max_version
  in

  (* Tuesday: unbeknownst to us, a colleague modifies one input remotely *)
  let colleague = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let cio = Kepler_run.io_of_system sys ~pid:colleague in
  cio.Actor.write_file "/nfsA/inputs/anatomy2.img" "anatomy-image-2-RESCANNED";
  print_endline "Tuesday:   a colleague silently replaces anatomy2.img on server A";

  (* Wednesday: the second run produces a different output *)
  let wednesday = Kepler_run.run sys ~pid:engine wf in
  let wednesday_atlas = io.Actor.read_file "/nfsB/results/atlas-x.gif" in
  Printf.printf "Wednesday: workflow ran again (%d operators fired), atlas-x.gif = %s\n"
    (List.length wednesday.Director.fired) wednesday_atlas;
  Printf.printf "           outputs differ: %b\n" (not (String.equal monday_atlas wednesday_atlas));

  (* investigate *)
  ignore (System.drain sys : int);
  ignore (Server.drain server_a : int);
  ignore (Server.drain server_b : int);

  print_endline "\n-- WITHOUT layering --";
  Printf.printf
    "Kepler's view: both runs fired the same operators with the same parameters\n\
    \               (%s) — the runs look identical.\n"
    (String.concat ", " (List.filteri (fun i _ -> i < 4) monday.Director.fired) ^ ", ...");
  let b_only =
    pql_names
      (Option.get (Server.db server_b))
      {|select A from Provenance.file as F F.input* as A where F.name = "atlas-x.gif"|}
  in
  Printf.printf
    "Server B's view: atlas-x.gif has %d named ancestors, none of them on server A —\n\
    \                 it cannot see through the workflow engine.\n"
    (List.length b_only);

  print_endline "\n-- WITH layering (merged provenance of all three volumes) --";
  let merged = Provdb.create () in
  Provdb.merge_into ~dst:merged ~src:(Option.get (System.waldo_db sys "local"));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_a));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_b));
  let ancestors =
    pql_names merged
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "atlas-x.gif"|}
  in
  Printf.printf "full ancestry of atlas-x.gif (%d names): crosses the workflow into server A\n"
    (List.length ancestors);
  List.iter (fun n -> Printf.printf "   %s\n" n) ancestors;
  (* the smoking gun: anatomy2.img has more than one version, and the new
     atlas descends from the newer version *)
  let anatomy2 = List.hd (Provdb.find_by_name merged "anatomy2.img") in
  let versions = (Option.get (Provdb.find_node merged anatomy2)).Provdb.max_version in
  Printf.printf
    "\nanatomy2.img has %d versions in the provenance store; Wednesday's atlas descends\n\
     from the newer one — the silent modification is the cause of the anomaly.\n"
    (versions + 1);
  (* the paper's opening question, answered mechanically: how does the
     ancestry of Monday's atlas differ from Wednesday's? *)
  let atlas = List.hd (Provdb.find_by_name merged "atlas-x.gif") in
  let latest = (Option.get (Provdb.find_node merged atlas)).Provdb.max_version in
  print_endline "\nancestry diff, files only (Monday's atlas vs Wednesday's):";
  let d = Provdiff.diff_versions merged atlas ~version_a:monday_version ~version_b:latest in
  Format.printf "%a@." Provdiff.pp (Provdiff.files_only merged d);
  print_endline "the diff points straight at anatomy2.img's version change — case closed."
