(* Shared plumbing for the Table 2/3 workloads: chunked file I/O through
   the simulated kernel (4 KB blocks, like the real programs whose
   duplicate records the analyzer exists to eliminate), process spawning,
   and a tiny deterministic RNG so runs are reproducible. *)

exception Error of Vfs.errno

let ok = function Ok v -> v | Error e -> raise (Error e)

let chunk = 4096

let write_file sys ~pid ~path data =
  let k = System.kernel sys in
  let fd = ok (Kernel.open_file k ~pid ~path ~create:true) in
  let len = String.length data in
  let pos = ref 0 in
  if len = 0 then ok (Kernel.write k ~pid ~fd ~data:"");
  while !pos < len do
    let n = min chunk (len - !pos) in
    ok (Kernel.write k ~pid ~fd ~data:(String.sub data !pos n));
    pos := !pos + n
  done;
  ok (Kernel.close k ~pid ~fd)

let append_file sys ~pid ~path data =
  let k = System.kernel sys in
  let size = match Kernel.stat k ~path with Ok st -> st.Vfs.st_size | Error _ -> 0 in
  let fd = ok (Kernel.open_file k ~pid ~path ~create:true) in
  ok (Kernel.seek k ~pid ~fd ~off:size);
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    ok (Kernel.write k ~pid ~fd ~data:(String.sub data !pos n));
    pos := !pos + n
  done;
  ok (Kernel.close k ~pid ~fd)

let read_file sys ~pid ~path =
  let k = System.kernel sys in
  let fd = ok (Kernel.open_file k ~pid ~path ~create:false) in
  let buf = Buffer.create chunk in
  let rec loop () =
    let s = ok (Kernel.read k ~pid ~fd ~len:chunk) in
    if s <> "" then begin
      Buffer.add_string buf s;
      loop ()
    end
  in
  loop ();
  ok (Kernel.close k ~pid ~fd);
  Buffer.contents buf

(* fork + optional execve: a process that runs a named binary *)
let spawn sys ?binary ?(argv = []) ?(env = [ "PATH=/vol0/bin" ]) ~parent () =
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent in
  (match binary with
  | Some path -> ok (Kernel.execve k ~pid ~path ~argv ~env)
  | None -> ());
  pid

let exit sys ~pid = ok (Kernel.exit (System.kernel sys) ~pid)
let cpu sys ns = Kernel.cpu (System.kernel sys) ns

(* Deterministic payloads and PRNG (runs must be identical across the
   baseline and PASS configurations). *)
let payload ~seed ~len =
  let st = ref (seed * 2654435761) in
  String.init len (fun _ ->
      st := (!st * 1103515245) + 12345;
      Char.chr (abs (!st lsr 16) mod 256))

type rng = { mutable state : int }

let rng seed = { state = (seed * 2654435761) lor 1 }

let rand r bound =
  r.state <- (r.state * 0x5DEECE66D) + 0xB;
  abs (r.state lsr 17) mod max 1 bound
