(* The Mercurial-activity workload (Table 2, row 3): the overhead a user
   experiences in a normal development scenario — start from a source
   tree and apply a series of patches.

   Each patch application is what the paper blames for the highest
   elapsed-time overhead: patch creates a temporary file, merges data
   from the patch file and the original into it, and finally renames the
   temporary over the original — many metadata operations whose I/O the
   provenance-log writes interfere with. *)

type params = { tree_files : int; patches : int; files_per_patch : int }

let default = { tree_files = 60; patches = 40; files_per_patch = 4 }

let tree_file i = Printf.sprintf "/vol0/repo/dir%d/src%d.c" (i mod 6) i
let patch_file p = Printf.sprintf "/vol0/patches/%04d.diff" p

let run ?(params = default) sys ~parent =
  (* unpack the vanilla tree and the patch queue *)
  let setup = Wk.spawn sys ~parent () in
  for i = 0 to params.tree_files - 1 do
    Wk.write_file sys ~pid:setup ~path:(tree_file i) (Wk.payload ~seed:i ~len:(2000 + (i mod 9 * 700)))
  done;
  for p = 0 to params.patches - 1 do
    Wk.write_file sys ~pid:setup ~path:(patch_file p) (Wk.payload ~seed:(9000 + p) ~len:1800)
  done;
  Wk.write_file sys ~pid:setup ~path:"/vol0/bin/patch" (Wk.payload ~seed:77 ~len:15000);
  Wk.exit sys ~pid:setup;
  (* apply each patch with its own process *)
  let r = Wk.rng 7 in
  for p = 0 to params.patches - 1 do
    let patch =
      Wk.spawn sys ~binary:"/vol0/bin/patch" ~argv:[ "patch"; "-p1" ] ~parent ()
    in
    let diff = Wk.read_file sys ~pid:patch ~path:(patch_file p) in
    for _ = 1 to params.files_per_patch do
      let i = Wk.rand r params.tree_files in
      let original = Wk.read_file sys ~pid:patch ~path:(tree_file i) in
      let tmp = tree_file i ^ ".orig" in
      (* merge the original and the hunk into the temporary *)
      Wk.cpu sys 400_000;
      Wk.write_file sys ~pid:patch ~path:tmp
        (original ^ String.sub diff 0 (min 256 (String.length diff)));
      (* rename the temporary over the original *)
      Wk.ok (Kernel.rename (System.kernel sys) ~pid:patch ~src:tmp ~dst:(tree_file i))
    done;
    Wk.exit sys ~pid:patch
  done
