(* Table rendering for the bench harness: the same row/column shapes the
   paper prints. *)

let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')

(* Table 1: record types per provenance-aware application. *)
let table1 ppf =
  Format.fprintf ppf "@.TABLE 1: Provenance records collected by each PA application@.";
  hr ppf 78;
  Format.fprintf ppf "%-12s %-14s %s@." "System" "Record Type" "Description";
  hr ppf 78;
  let last_system = ref "" in
  List.iter
    (fun (r : Pass_core.Record.registered) ->
      let sys = if String.equal r.system !last_system then "" else r.system in
      last_system := r.system;
      Format.fprintf ppf "%-12s %-14s %s@." sys r.record_type r.description)
    Pass_core.Record.registry;
  hr ppf 78

(* Table 2: elapsed-time overheads, local and NFS. *)
let table2 ppf ~local ~nfs =
  Format.fprintf ppf
    "@.TABLE 2: Elapsed time overheads (simulated seconds)@.";
  hr ppf 92;
  Format.fprintf ppf "%-20s %10s %10s %9s   %10s %10s %9s@." "Benchmark" "Ext3" "PASSv2"
    "Overhead" "NFS" "PA-NFS" "Overhead";
  hr ppf 92;
  List.iter2
    (fun (l : Runner.row) (n : Runner.row) ->
      Format.fprintf ppf "%-20s %10.2f %10.2f %8.1f%%   %10.2f %10.2f %8.1f%%@." l.r_name
        l.base_seconds l.pass_seconds l.overhead_pct n.base_seconds n.pass_seconds
        n.overhead_pct)
    local nfs;
  hr ppf 92

(* Table 3: space overheads. *)
let table3 ppf ~rows =
  Format.fprintf ppf "@.TABLE 3: Space overheads (MB) for PASSv2@.";
  hr ppf 78;
  Format.fprintf ppf "%-20s %10s %22s %24s@." "Benchmark" "Ext3" "Provenance"
    "Provenance+Indexes";
  hr ppf 78;
  List.iter
    (fun (r : Runner.space_row) ->
      Format.fprintf ppf "%-20s %10.1f %14.2f (%4.1f%%) %16.2f (%4.1f%%)@." r.s_name r.ext3_mb
        r.prov_mb r.prov_pct r.total_mb r.total_pct)
    rows;
  hr ppf 78
