(* The Blast workload (Table 2, row 4): a biological pipeline that finds
   protein sequences of one species closely related to those of another.
   formatdb prepares the two input files, blast burns a lot of CPU over
   them, and a series of Perl scripts massages the output.  Heavily CPU
   bound — the paper measures under 2% overhead, because provenance
   writes are noise next to the computation. *)

type params = { sequence_bytes : int; blast_cpu_ms : int; perl_stages : int }

let default = { sequence_bytes = 200_000; blast_cpu_ms = 1_200; perl_stages = 3 }

let run ?(params = default) sys ~parent =
  let setup = Wk.spawn sys ~parent () in
  Wk.write_file sys ~pid:setup ~path:"/vol0/bin/formatdb" (Wk.payload ~seed:201 ~len:12000);
  Wk.write_file sys ~pid:setup ~path:"/vol0/bin/blastall" (Wk.payload ~seed:202 ~len:45000);
  Wk.write_file sys ~pid:setup ~path:"/vol0/bin/perl" (Wk.payload ~seed:203 ~len:25000);
  Wk.write_file sys ~pid:setup ~path:"/vol0/blast/speciesA.fasta"
    (Wk.payload ~seed:11 ~len:params.sequence_bytes);
  Wk.write_file sys ~pid:setup ~path:"/vol0/blast/speciesB.fasta"
    (Wk.payload ~seed:12 ~len:params.sequence_bytes);
  Wk.exit sys ~pid:setup;
  (* formatdb on each input *)
  List.iter
    (fun species ->
      let fdb =
        Wk.spawn sys ~binary:"/vol0/bin/formatdb" ~argv:[ "formatdb"; "-i"; species ] ~parent ()
      in
      let data = Wk.read_file sys ~pid:fdb ~path:(Printf.sprintf "/vol0/blast/%s.fasta" species) in
      Wk.cpu sys 80_000_000;
      Wk.write_file sys ~pid:fdb
        ~path:(Printf.sprintf "/vol0/blast/%s.phr" species)
        (Wk.payload ~seed:(String.length data) ~len:(String.length data / 2));
      Wk.exit sys ~pid:fdb)
    [ "speciesA"; "speciesB" ];
  (* the blast run itself: the CPU core of the workload *)
  let blast =
    Wk.spawn sys ~binary:"/vol0/bin/blastall"
      ~argv:[ "blastall"; "-p"; "blastp"; "-d"; "speciesA"; "-i"; "speciesB.fasta" ]
      ~parent ()
  in
  let a = Wk.read_file sys ~pid:blast ~path:"/vol0/blast/speciesA.phr" in
  let b = Wk.read_file sys ~pid:blast ~path:"/vol0/blast/speciesB.phr" in
  Wk.cpu sys (params.blast_cpu_ms * 1_000_000);
  Wk.write_file sys ~pid:blast ~path:"/vol0/blast/raw_hits.out"
    (Wk.payload ~seed:(String.length a + String.length b) ~len:60_000);
  Wk.exit sys ~pid:blast;
  (* perl massaging pipeline *)
  let prev = ref "/vol0/blast/raw_hits.out" in
  for stage = 1 to params.perl_stages do
    let perl =
      Wk.spawn sys ~binary:"/vol0/bin/perl"
        ~argv:[ "perl"; Printf.sprintf "massage%d.pl" stage ]
        ~parent ()
    in
    let data = Wk.read_file sys ~pid:perl ~path:!prev in
    Wk.cpu sys 30_000_000;
    let out = Printf.sprintf "/vol0/blast/hits.stage%d" stage in
    Wk.write_file sys ~pid:perl ~path:out
      (Wk.payload ~seed:(String.length data + stage) ~len:(String.length data * 3 / 4));
    Wk.exit sys ~pid:perl;
    prev := out
  done
