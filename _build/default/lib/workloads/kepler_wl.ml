(* The PA-Kepler workload (Table 2, row 5): a workflow that parses tabular
   data, extracts values, and reformats them with a user-specified
   expression.  When its volume is a PA-NFS mount this is the paper's
   full three-layer integration (workflow engine over PASS over NFS,
   the Figure 1 situation).  CPU-bound: the paper measures 1.4% / 2.5%
   overhead. *)

type params = { rows : int; runs : int; parse_cpu_ms : int }

let default = { rows = 400; runs = 3; parse_cpu_ms = 120 }

let table_path = "/vol0/kepler/table.csv"
let out_path run = Printf.sprintf "/vol0/kepler/reformatted%d.csv" run

let make_table params =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "id,specimen,stress,heating\n";
  for i = 1 to params.rows do
    Buffer.add_string buf
      (Printf.sprintf "%d,spec%d,%d.%d,%d.%02d\n" i (i mod 60) (i mod 9) (i mod 10)
         (i mod 17) (i mod 100))
  done;
  Buffer.contents buf

let workflow params run =
  let parse =
    Actor.make ~name:"parse_table" ~params:[ ("delimiter", ",") ] ~inputs:[] ~outputs:[ "rows" ]
      (fun io _ ->
        let data = io.Actor.read_file table_path in
        io.Actor.cpu (params.parse_cpu_ms * 1_000_000);
        [ ("rows", Actor.token ~origin:"parse_table" data) ])
  in
  let extract =
    Actor.transform ~name:"extract_values"
      ~params:[ ("columns", "stress,heating") ]
      ~cpu_ns:(params.parse_cpu_ms * 400_000)
      (fun rows ->
        String.split_on_char '\n' rows
        |> List.filter_map (fun line ->
               match String.split_on_char ',' line with
               | [ _; _; stress; heating ] -> Some (stress ^ " " ^ heating)
               | _ -> None)
        |> String.concat "\n")
  in
  let reformat =
    Actor.transform ~name:"reformat"
      ~params:[ ("expression", "heating / stress") ]
      ~cpu_ns:(params.parse_cpu_ms * 400_000)
      (fun values ->
        String.split_on_char '\n' values
        |> List.map (fun line -> "= " ^ line)
        |> String.concat "\n")
  in
  let sink = Actor.file_sink ~name:"write_output" ~path:(out_path run) in
  Workflow.create ~name:(Printf.sprintf "tabular-reformat-%d" run)
    ~actors:[ parse; extract; reformat; sink ]
    ~links:
      [
        { Workflow.from_actor = "parse_table"; from_port = "rows"; to_actor = "extract_values";
          to_port = "in" };
        { Workflow.from_actor = "extract_values"; from_port = "out"; to_actor = "reformat";
          to_port = "in" };
        { Workflow.from_actor = "reformat"; from_port = "out"; to_actor = "write_output";
          to_port = "in" };
      ]

let run ?(params = default) sys ~parent =
  let setup = Wk.spawn sys ~parent () in
  Wk.write_file sys ~pid:setup ~path:table_path (make_table params);
  Wk.exit sys ~pid:setup;
  for r = 1 to params.runs do
    let engine = Wk.spawn sys ~parent () in
    ignore (Kepler_run.run sys ~pid:engine (workflow params r) : Director.result);
    Wk.exit sys ~pid:engine
  done
