(** Table rendering for the bench harness, in the paper's row/column
    shapes. *)

val table1 : Format.formatter -> unit
(** Table 1: record types per provenance-aware application. *)

val table2 : Format.formatter -> local:Runner.row list -> nfs:Runner.row list -> unit
(** Table 2: elapsed-time overheads (lists must be same-length and
    same-order). *)

val table3 : Format.formatter -> rows:Runner.space_row list -> unit
(** Table 3: space overheads. *)
