(** Shared plumbing for the Table 2/3 workloads: chunked (4 KB) file I/O
    through the simulated kernel, process spawning, and a deterministic
    RNG so baseline and PASS runs see identical operation streams. *)

exception Error of Vfs.errno

val ok : ('a, Vfs.errno) result -> 'a
val chunk : int

val write_file : System.t -> pid:int -> path:string -> string -> unit
val append_file : System.t -> pid:int -> path:string -> string -> unit
val read_file : System.t -> pid:int -> path:string -> string

val spawn :
  System.t ->
  ?binary:string ->
  ?argv:string list ->
  ?env:string list ->
  parent:int ->
  unit ->
  int
(** fork (+ execve when [binary] is given); returns the pid. *)

val exit : System.t -> pid:int -> unit
val cpu : System.t -> int -> unit

val payload : seed:int -> len:int -> string

type rng

val rng : int -> rng
val rand : rng -> int -> int
