(* The Linux-compile workload (Table 2, row 1): unpack a source tree, then
   build it — a CPU-intensive workload with a long tail of small writes.

   Structure mirrors a kernel build: tar unpacks sources and headers; one
   cc process per translation unit reads its source plus shared headers,
   burns CPU, and writes an object file; one ld per directory links the
   objects into a built-in.o; a final ld produces vmlinux.  Every compile
   is a separate execve'd process, which is what makes this workload
   provenance-heavy (argv, env and binary records per process). *)

type params = { dirs : int; files_per_dir : int; headers : int; cc_cpu_ms : int }

let default = { dirs = 8; files_per_dir = 12; headers = 6; cc_cpu_ms = 14 }

let src_dir d = Printf.sprintf "/vol0/src/d%d" d
let src_file d f = Printf.sprintf "%s/f%d.c" (src_dir d) f
let obj_file d f = Printf.sprintf "/vol0/obj/d%d/f%d.o" d f
let header_file h = Printf.sprintf "/vol0/src/include/h%d.h" h

let setup sys ~parent =
  (* install the toolchain binaries *)
  let installer = Wk.spawn sys ~parent () in
  Wk.write_file sys ~pid:installer ~path:"/vol0/bin/tar" (Wk.payload ~seed:101 ~len:9000);
  Wk.write_file sys ~pid:installer ~path:"/vol0/bin/cc" (Wk.payload ~seed:102 ~len:30000);
  Wk.write_file sys ~pid:installer ~path:"/vol0/bin/ld" (Wk.payload ~seed:103 ~len:20000);
  Wk.exit sys ~pid:installer

let run ?(params = default) sys ~parent =
  setup sys ~parent;
  (* phase 1: unpack *)
  let tar =
    Wk.spawn sys ~binary:"/vol0/bin/tar" ~argv:[ "tar"; "xf"; "linux.tar" ] ~parent ()
  in
  for h = 0 to params.headers - 1 do
    Wk.write_file sys ~pid:tar ~path:(header_file h) (Wk.payload ~seed:(500 + h) ~len:3000)
  done;
  for d = 0 to params.dirs - 1 do
    for f = 0 to params.files_per_dir - 1 do
      Wk.write_file sys ~pid:tar
        ~path:(src_file d f)
        (Wk.payload ~seed:((d * 100) + f) ~len:(1500 + (((d * 7) + f) mod 5 * 1200)))
    done
  done;
  Wk.exit sys ~pid:tar;
  (* phase 2: compile, one process per translation unit *)
  for d = 0 to params.dirs - 1 do
    for f = 0 to params.files_per_dir - 1 do
      let cc =
        Wk.spawn sys ~binary:"/vol0/bin/cc"
          ~argv:[ "cc"; "-O2"; "-c"; src_file d f; "-o"; obj_file d f ]
          ~parent ()
      in
      let source = Wk.read_file sys ~pid:cc ~path:(src_file d f) in
      (* every unit includes two headers *)
      let _h1 = Wk.read_file sys ~pid:cc ~path:(header_file (d mod params.headers)) in
      let _h2 = Wk.read_file sys ~pid:cc ~path:(header_file (f mod params.headers)) in
      Wk.cpu sys (params.cc_cpu_ms * 1_000_000);
      Wk.write_file sys ~pid:cc ~path:(obj_file d f)
        (Wk.payload ~seed:(String.length source) ~len:(String.length source * 2));
      Wk.exit sys ~pid:cc
    done;
    (* phase 3a: per-directory link *)
    let ld =
      Wk.spawn sys ~binary:"/vol0/bin/ld" ~argv:[ "ld"; "-r"; "-o"; "built-in.o" ] ~parent ()
    in
    let total = ref 0 in
    for f = 0 to params.files_per_dir - 1 do
      total := !total + String.length (Wk.read_file sys ~pid:ld ~path:(obj_file d f))
    done;
    Wk.cpu sys 6_000_000;
    Wk.write_file sys ~pid:ld
      ~path:(Printf.sprintf "/vol0/obj/d%d/built-in.o" d)
      (Wk.payload ~seed:!total ~len:!total);
    Wk.exit sys ~pid:ld
  done;
  (* phase 3b: final link *)
  let ld = Wk.spawn sys ~binary:"/vol0/bin/ld" ~argv:[ "ld"; "-o"; "vmlinux" ] ~parent () in
  let total = ref 0 in
  for d = 0 to params.dirs - 1 do
    total :=
      !total
      + String.length
          (Wk.read_file sys ~pid:ld ~path:(Printf.sprintf "/vol0/obj/d%d/built-in.o" d))
  done;
  Wk.cpu sys 25_000_000;
  Wk.write_file sys ~pid:ld ~path:"/vol0/vmlinux" (Wk.payload ~seed:!total ~len:!total);
  Wk.exit sys ~pid:ld
