lib/workloads/postmark.ml: Hashtbl Kernel Printf Stdlib System Wk
