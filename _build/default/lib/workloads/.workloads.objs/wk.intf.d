lib/workloads/wk.mli: System Vfs
