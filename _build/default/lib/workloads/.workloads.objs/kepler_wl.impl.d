lib/workloads/kepler_wl.ml: Actor Buffer Director Kepler_run List Printf String Wk Workflow
