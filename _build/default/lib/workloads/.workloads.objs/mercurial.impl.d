lib/workloads/mercurial.ml: Kernel Printf String System Wk
