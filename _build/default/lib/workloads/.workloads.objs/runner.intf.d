lib/workloads/runner.mli: Server System
