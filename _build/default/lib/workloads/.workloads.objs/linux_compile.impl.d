lib/workloads/linux_compile.ml: Printf String Wk
