lib/workloads/blast.ml: List Printf String Wk
