lib/workloads/wk.ml: Buffer Char Kernel String System Vfs
