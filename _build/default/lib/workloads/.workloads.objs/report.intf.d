lib/workloads/report.mli: Format Runner
