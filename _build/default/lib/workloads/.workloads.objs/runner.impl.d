lib/workloads/runner.ml: Blast Client Kepler_wl Kernel Linux_compile Mercurial Postmark Proto Server System
