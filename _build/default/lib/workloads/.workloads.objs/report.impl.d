lib/workloads/report.ml: Format List Pass_core Runner String
