(* The Postmark workload (Table 2, row 2): simulates an email server — the
   I/O-intensive row.  Per the paper's configuration: a pool of files
   spread over 10 subdirectories, then a transaction mix of create/delete
   and read/append, with file sizes drawn between a lower and upper bound.
   (The simulation scales the counts down; the *mix* is Postmark's.) *)

type params = {
  files : int;
  transactions : int;
  subdirs : int;
  min_size : int;
  max_size : int;
}

(* the paper ran 1500/1500/10 with 4 KB..1 MB; the default keeps the
   paper's file-size distribution and scales the counts to ~1/12 *)
let default = { files = 120; transactions = 120; subdirs = 10; min_size = 4096; max_size = 1_048_576 }

let paper_scale = { files = 1500; transactions = 1500; subdirs = 10; min_size = 4096; max_size = 1_048_576 }

let file_path params i = Printf.sprintf "/vol0/pm/s%d/file%d" (i mod params.subdirs) i

let run ?(params = default) sys ~parent =
  let pid = Wk.spawn sys ~parent () in
  let r = Wk.rng 42 in
  let size () = params.min_size + Wk.rand r (params.max_size - params.min_size) in
  let live = Hashtbl.create params.files in
  let next_file = ref 0 in
  let create () =
    let i = !next_file in
    incr next_file;
    Wk.write_file sys ~pid ~path:(file_path params i) (Wk.payload ~seed:i ~len:(size ()));
    Hashtbl.replace live i ()
  in
  (* initial pool *)
  for _ = 1 to params.files do
    create ()
  done;
  let pick_live () =
    let n = Hashtbl.length live in
    if n = 0 then None
    else begin
      let target = Wk.rand r n in
      let k = ref None in
      let i = ref 0 in
      (try
         Hashtbl.iter
           (fun key () ->
             if !i = target then begin
               k := Some key;
               raise Stdlib.Exit
             end;
             incr i)
           live
       with Stdlib.Exit -> ());
      !k
    end
  in
  (* transaction mix: half create/delete, half read/append, like postmark *)
  for _ = 1 to params.transactions do
    match Wk.rand r 4 with
    | 0 -> create ()
    | 1 -> (
        match pick_live () with
        | Some i ->
            Hashtbl.remove live i;
            Wk.ok (Kernel.unlink (System.kernel sys) ~pid ~path:(file_path params i))
        | None -> create ())
    | 2 -> (
        match pick_live () with
        | Some i -> ignore (Wk.read_file sys ~pid ~path:(file_path params i) : string)
        | None -> create ())
    | _ -> (
        match pick_live () with
        | Some i ->
            Wk.append_file sys ~pid ~path:(file_path params i)
              (Wk.payload ~seed:i ~len:(min 8192 (size ())))
        | None -> create ())
  done;
  Wk.exit sys ~pid
