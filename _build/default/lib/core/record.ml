(* Provenance records: a single unit of provenance, an attribute/value pair
   (paper §5.2).  Also hosts the registry of record types per PA application
   that the paper summarizes in Table 1. *)

type t = { attr : string; value : Pvalue.t }

let make attr value = { attr; value }
let input x = { attr = "INPUT"; value = x }
let input_of pnode version = input (Pvalue.xref pnode version)
let name n = { attr = "NAME"; value = Pvalue.Str n }
let typ ty = { attr = "TYPE"; value = Pvalue.Str ty }

let equal a b = String.equal a.attr b.attr && Pvalue.equal a.value b.value

let pp ppf { attr; value } = Format.fprintf ppf "%s=%a" attr Pvalue.pp value

let is_ancestry r =
  match r.value with Pvalue.Xref _ -> true | _ -> false

let xref_of r =
  match r.value with Pvalue.Xref x -> Some x | _ -> None

let encode buf { attr; value } =
  Pvalue.put_string buf attr;
  Pvalue.encode buf value

let decode s pos =
  let attr = Pvalue.get_string s pos in
  let value = Pvalue.decode s pos in
  { attr; value }

(* Standard attribute names used across the stack.  Keeping them in one place
   avoids typo-induced islands of provenance. *)
module Attr = struct
  let input = "INPUT"
  let name = "NAME"
  let typ = "TYPE"
  let argv = "ARGV"
  let env = "ENV"
  let pid = "PID"
  let freeze = "FREEZE"
  let begintxn = "BEGINTXN"
  let endtxn = "ENDTXN"
  let params = "PARAMS"
  let visited_url = "VISITED_URL"
  let file_url = "FILE_URL"
  let current_url = "CURRENT_URL"
  let version_of = "VERSION_OF" (* links a new version to its predecessor *)
  let data_md5 = "DATA_MD5"
  let path = "PATH"
end

(* Table 1 registry: record types collected by each provenance-aware
   system.  The bench harness prints this table; the PA applications assert
   that the records they emit are registered here. *)
type registered = { system : string; record_type : string; description : string }

let registry : registered list =
  [
    { system = "PA-NFS"; record_type = Attr.begintxn; description = "Beginning record of a transaction" };
    { system = "PA-NFS"; record_type = Attr.endtxn; description = "Terminating record of a transaction" };
    { system = "PA-NFS"; record_type = Attr.freeze; description = "Freeze record sent in pass_write" };
    { system = "PA-Kepler"; record_type = Attr.typ; description = "Type of object: set to OPERATOR" };
    { system = "PA-Kepler"; record_type = Attr.name; description = "Name of the operator" };
    { system = "PA-Kepler"; record_type = Attr.params; description = "Operator parameters" };
    { system = "PA-Kepler"; record_type = Attr.input; description = "Dependency between operators" };
    { system = "PA-links"; record_type = Attr.typ; description = "Type of object: set to SESSION" };
    { system = "PA-links"; record_type = Attr.visited_url; description = "Session and URL dependency" };
    { system = "PA-links"; record_type = Attr.file_url; description = "File and URL dependency" };
    { system = "PA-links"; record_type = Attr.current_url;
      description = "URL user was viewing while download was initiated" };
    { system = "PA-links"; record_type = Attr.input; description = "File and Session dependency" };
    { system = "PA-Python"; record_type = Attr.typ; description = "Type of object: e.g., FUNCTION" };
    { system = "PA-Python"; record_type = Attr.name; description = "object name (e.g., method name)" };
    { system = "PA-Python"; record_type = Attr.input;
      description =
        "method input and invocation dependency or invocation and output dependency" };
  ]

let registered ~system ~record_type =
  List.exists
    (fun r -> String.equal r.system system && String.equal r.record_type record_type)
    registry
