(** Provenance records.

    A provenance record is a structure containing a single unit of
    provenance: an attribute/value pair, where the value may be a plain
    value or a cross-reference to another object (paper, Section 5.2). *)

type t = { attr : string; value : Pvalue.t }

val make : string -> Pvalue.t -> t

val input : Pvalue.t -> t
(** [input v] is an INPUT (ancestry) record. *)

val input_of : Pnode.t -> int -> t
(** [input_of p v] records a dependency on object [p] at version [v]. *)

val name : string -> t
(** A NAME identity record. *)

val typ : string -> t
(** A TYPE identity record. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val is_ancestry : t -> bool
(** [is_ancestry r] is true iff [r]'s value is a cross-reference. *)

val xref_of : t -> Pvalue.xref option
(** The cross-reference carried by [r], if any. *)

val encode : Buffer.t -> t -> unit
(** Append the wire form (shared with the WAP log and PA-NFS). *)

val decode : string -> int ref -> t
(** Parse one record, advancing the position.  @raise Pvalue.Corrupt. *)

(** Standard attribute names used across the stack. *)
module Attr : sig
  val input : string
  val name : string
  val typ : string
  val argv : string
  val env : string
  val pid : string
  val freeze : string
  val begintxn : string
  val endtxn : string
  val params : string
  val visited_url : string
  val file_url : string
  val current_url : string
  val version_of : string
  val data_md5 : string
  val path : string
end

type registered = { system : string; record_type : string; description : string }

val registry : registered list
(** The record types collected by each provenance-aware application
    (paper, Table 1). *)

val registered : system:string -> record_type:string -> bool
(** [registered ~system ~record_type] checks membership in {!registry}. *)
