(* The PASSv1 cycle handling baseline (paper §5.4): maintain a global graph
   of object dependencies, explicitly check for cycles on every insertion,
   and on detecting one merge all the nodes of the cycle into a single
   entity.  The paper reports this proved challenging and was replaced by
   cycle avoidance in PASSv2; we keep it as the ablation baseline so the
   bench can compare the two (cost per edge, entities merged vs versions
   created). *)

type node = Pnode.t * int (* object, version *)

type t = {
  parent : (node, node) Hashtbl.t; (* union-find over merged entities *)
  edges : (node, node list ref) Hashtbl.t; (* representative -> successors *)
  mutable merges : int;
  mutable edge_count : int;
  mutable probe_steps : int; (* DFS work performed, for the bench *)
}

let create () =
  { parent = Hashtbl.create 1024; edges = Hashtbl.create 1024; merges = 0;
    edge_count = 0; probe_steps = 0 }

let rec find t n =
  match Hashtbl.find_opt t.parent n with
  | None -> n
  | Some p ->
      let root = find t p in
      if root <> p then Hashtbl.replace t.parent n root;
      root

let successors t n =
  match Hashtbl.find_opt t.edges n with Some l -> !l | None -> []

(* Depth-first search from [src] looking for [dst]; returns the path if
   found.  This is the global information the PASSv1 algorithm needs and
   PASSv2 avoids needing. *)
let path_to t ~src ~dst =
  let visited = Hashtbl.create 64 in
  let rec dfs n path =
    t.probe_steps <- t.probe_steps + 1;
    if n = dst then Some (List.rev (n :: path))
    else if Hashtbl.mem visited n then None
    else begin
      Hashtbl.replace visited n ();
      let rec try_succ = function
        | [] -> None
        | s :: rest -> (
            match dfs (find t s) (n :: path) with
            | Some _ as found -> found
            | None -> try_succ rest)
      in
      try_succ (successors t n)
    end
  in
  dfs (find t src) []

let merge t nodes =
  match nodes with
  | [] | [ _ ] -> ()
  | root :: rest ->
      t.merges <- t.merges + 1;
      let root = find t root in
      let merged_succ = ref (successors t root) in
      List.iter
        (fun n ->
          let n = find t n in
          if n <> root then begin
            merged_succ := successors t n @ !merged_succ;
            Hashtbl.remove t.edges n;
            Hashtbl.replace t.parent n root
          end)
        rest;
      (* drop successors that now point inside the merged entity *)
      let kept = List.filter (fun s -> find t s <> root) !merged_succ in
      Hashtbl.replace t.edges root (ref kept)

(* After a merge, a *parallel* path between two merged nodes becomes a
   cycle through the merged entity; keep merging until none remains. *)
let rec absorb_cycles t root =
  let root = find t root in
  let through =
    List.find_map
      (fun s ->
        let s = find t s in
        if s = root then None
        else
          match path_to t ~src:s ~dst:root with
          | Some path -> Some path
          | None -> None)
      (successors t root)
  in
  match through with
  | None -> ()
  | Some path ->
      merge t (root :: path);
      absorb_cycles t root

(* Add dependency edge [src -> dst].  If this would close a cycle, merge
   every node on the cycle into one entity, PASSv1-style. *)
let add_edge t src dst =
  t.edge_count <- t.edge_count + 1;
  let src = find t src and dst = find t dst in
  if src = dst then ()
  else
    match path_to t ~src:dst ~dst:src with
    | Some path ->
        merge t path;
        absorb_cycles t (find t src)
    | None ->
        let l =
          match Hashtbl.find_opt t.edges src with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add t.edges src l;
              l
        in
        l := dst :: !l

let is_acyclic t =
  let color = Hashtbl.create 256 in
  (* 1 = in progress, 2 = done *)
  let rec dfs n =
    match Hashtbl.find_opt color n with
    | Some 1 -> false
    | Some _ -> true
    | None ->
        Hashtbl.replace color n 1;
        let ok = List.for_all (fun s -> dfs (find t s)) (successors t n) in
        Hashtbl.replace color n 2;
        ok
  in
  Hashtbl.fold (fun n _ acc -> acc && dfs n) t.edges true

let merges t = t.merges
let edge_count t = t.edge_count
let probe_steps t = t.probe_steps
