(* libpass (paper §5.1): the user-level library that exports the DPAPI to
   applications.  Provenance-aware applications link against it and use it
   to disclose provenance; it adds small conveniences over the raw endpoint
   (named object creation, record builders, error raising). *)

exception Pass_error of Dpapi.error

let check = function Ok v -> v | Error e -> raise (Pass_error e)

type t = { ep : Dpapi.endpoint; pid : int }

let connect ~endpoint ~pid = { ep = endpoint; pid }
let pid t = t.pid
let endpoint t = t.ep

let mkobj ?volume ?typ:ty ?name:nm t =
  let h = check (t.ep.pass_mkobj ~volume) in
  let records =
    (match ty with Some s -> [ Record.typ s ] | None -> [])
    @ (match nm with Some s -> [ Record.name s ] | None -> [])
  in
  if records <> [] then check (Dpapi.disclose t.ep h records);
  h

let reviveobj t pnode version = check (t.ep.pass_reviveobj pnode version)

let disclose t handle records = check (Dpapi.disclose t.ep handle records)

let relate t ~child ~parent ~parent_version =
  disclose t child [ Record.input_of parent.Dpapi.pnode parent_version ]

let read t handle ~off ~len = check (t.ep.pass_read handle ~off ~len)

let write t handle ~off ~data ~records =
  check (t.ep.pass_write handle ~off ~data:(Some data) [ Dpapi.entry handle records ])

let freeze t handle = check (t.ep.pass_freeze handle)
let sync t handle = check (t.ep.pass_sync handle)
