(* Pnode numbers: unique, never-recycled provenance handles (paper §5.2). *)

type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let to_int t = t
let of_int i = i
let pp ppf t = Format.fprintf ppf "p%d" t

(* Allocators are seeded with a machine id so that pnodes allocated on
   different machines (e.g. an NFS client and server) never collide.  The
   machine id occupies the high bits; 40 low bits of sequence leave room for
   ~10^12 objects per machine, far beyond what a simulation allocates. *)
let machine_shift = 40

type allocator = { machine : int; mutable next : int }

let allocator ~machine =
  if machine < 0 || machine > 0x3fffff then invalid_arg "Pnode.allocator";
  { machine; next = 1 }

let fresh alloc =
  let seq = alloc.next in
  alloc.next <- seq + 1;
  (alloc.machine lsl machine_shift) lor seq

let machine_of t = t lsr machine_shift
let sequence_of t = t land ((1 lsl machine_shift) - 1)
