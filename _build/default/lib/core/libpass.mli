(** libpass: the user-level DPAPI library.

    Application developers make applications provenance-aware by issuing
    DPAPI calls through libpass (paper, Sections 5.1–5.2).  This module
    wraps a {!Dpapi.endpoint} (normally obtained from
    {!Observer.endpoint_for}) with conveniences and raises {!Pass_error}
    instead of returning results, matching how an application-facing
    library would behave. *)

exception Pass_error of Dpapi.error

type t

val connect : endpoint:Dpapi.endpoint -> pid:int -> t
(** [connect ~endpoint ~pid] binds libpass for the application running as
    process [pid]. *)

val pid : t -> int
val endpoint : t -> Dpapi.endpoint

val mkobj : ?volume:string -> ?typ:string -> ?name:string -> t -> Dpapi.handle
(** Create an application object (browser session, data set, operator…),
    optionally disclosing TYPE and NAME records immediately. *)

val reviveobj : t -> Pnode.t -> int -> Dpapi.handle
(** Reattach to an object created earlier via {!mkobj} (paper §5.2). *)

val disclose : t -> Dpapi.handle -> Record.t list -> unit
(** Send provenance records describing [handle]. *)

val relate : t -> child:Dpapi.handle -> parent:Dpapi.handle -> parent_version:int -> unit
(** Convenience: record that [child] descends from [parent]. *)

val read : t -> Dpapi.handle -> off:int -> len:int -> Dpapi.read_result
val write : t -> Dpapi.handle -> off:int -> data:string -> records:Record.t list -> int
val freeze : t -> Dpapi.handle -> int
val sync : t -> Dpapi.handle -> unit
