lib/core/cycle_detect.mli: Pnode
