lib/core/dpapi.ml: Buffer Format Int64 List Option Pnode Pvalue Record Result String
