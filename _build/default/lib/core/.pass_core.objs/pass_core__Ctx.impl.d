lib/core/ctx.ml: Hashtbl Pnode
