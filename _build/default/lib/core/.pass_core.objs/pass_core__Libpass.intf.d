lib/core/libpass.mli: Dpapi Pnode Record
