lib/core/record.ml: Format List Pvalue String
