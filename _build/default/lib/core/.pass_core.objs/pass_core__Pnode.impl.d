lib/core/pnode.ml: Format Hashtbl Int
