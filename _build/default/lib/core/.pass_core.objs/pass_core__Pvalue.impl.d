lib/core/pvalue.ml: Bool Buffer Char Format Int Int64 List Pnode String Wire
