lib/core/distributor.ml: Ctx Dpapi Hashtbl List Option Pnode Record Result
