lib/core/dpapi.mli: Buffer Format Pnode Record
