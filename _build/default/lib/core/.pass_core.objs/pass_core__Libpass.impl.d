lib/core/libpass.ml: Dpapi Record
