lib/core/distributor.mli: Ctx Dpapi Pnode
