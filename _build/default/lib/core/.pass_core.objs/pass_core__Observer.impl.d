lib/core/observer.ml: Ctx Dpapi Hashtbl List Pvalue Record Result
