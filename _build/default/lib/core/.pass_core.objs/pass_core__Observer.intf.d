lib/core/observer.mli: Ctx Dpapi
