lib/core/record.mli: Buffer Format Pnode Pvalue
