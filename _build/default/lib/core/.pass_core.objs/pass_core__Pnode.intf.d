lib/core/pnode.mli: Format
