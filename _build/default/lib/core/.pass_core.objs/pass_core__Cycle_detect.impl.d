lib/core/cycle_detect.ml: Hashtbl List Pnode
