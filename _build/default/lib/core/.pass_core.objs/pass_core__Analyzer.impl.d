lib/core/analyzer.ml: Ctx Dpapi Hashtbl List Pnode Pvalue Record
