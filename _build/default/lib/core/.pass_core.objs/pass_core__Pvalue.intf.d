lib/core/pvalue.mli: Buffer Format Pnode
