lib/core/ctx.mli: Pnode
