lib/core/analyzer.mli: Ctx Dpapi
