(** Provenance record values.

    A value is either a plain value (integer, string, etc.) or a
    cross-reference to another object at a specific version
    (paper, Section 5.2). *)

type t =
  | Str of string
  | Int of int
  | Bool of bool
  | Bytes of string  (** opaque payload, e.g. an MD5 digest *)
  | Strs of string list  (** e.g. argv or an environment listing *)
  | Xref of xref  (** cross-reference to another object *)

and xref = { pnode : Pnode.t; version : int }

val xref : Pnode.t -> int -> t
(** [xref p v] is [Xref { pnode = p; version = v }]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

exception Corrupt of string
(** Raised by {!decode} on malformed input. *)

val encode : Buffer.t -> t -> unit
(** [encode buf v] appends the wire form of [v] to [buf].  The format is
    shared by the Lasagna WAP log and the PA-NFS protocol. *)

val decode : string -> int ref -> t
(** [decode s pos] parses one value at [!pos], advancing [pos].
    @raise Corrupt on malformed input. *)

(** Low-level wire primitives, reused by the WAP log and the PA-NFS
    protocol encoders. *)

val put_u32 : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit
val get_u32 : string -> int ref -> int
val get_i64 : string -> int ref -> int
val get_string : string -> int ref -> string
