(** Per-machine provenance context.

    Owns the machine's pnode allocator and is the authority for the current
    version and the version birth stamp of every object the machine knows
    about.  Birth stamps drive the analyzer's local cycle-avoidance rule. *)

type t

val create : machine:int -> t
(** [create ~machine] makes a context whose pnodes are tagged with
    [machine]. *)

val fresh : t -> Pnode.t
(** Allocate a fresh pnode at version 0. *)

val adopt : t -> Pnode.t -> version:int -> unit
(** Register a pnode allocated on another machine, seeding the local view of
    its version (used by the PA-NFS client). *)

val current_version : t -> Pnode.t -> int

val birth : t -> Pnode.t -> int
(** Logical time at which the object's current version was created. *)

val birth_at : t -> Pnode.t -> version:int -> int
(** Effective birth stamp of a specific (possibly closed) version.
    Unknown old versions report 0, which is conservative for cycle
    avoidance. *)

val has_out : t -> Pnode.t -> version:int -> bool
(** Whether the version has admitted outgoing ancestry edges. *)

val mark_out : t -> Pnode.t -> version:int -> unit

val lower_birth : t -> Pnode.t -> version:int -> below:int -> unit
(** Lower a childless version's effective birth below [below] — the
    adoption step of the cycle-avoidance rule.
    @raise Assert_failure if the version already has outgoing edges. *)

val freeze : t -> Pnode.t -> int
(** Bump the object's version; returns the new version. *)

val known : t -> Pnode.t -> bool
val object_count : t -> int

val tick : t -> int
(** Advance and read the logical clock. *)
