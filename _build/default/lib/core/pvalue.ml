(* Provenance record values (paper §5.2): a plain value or a cross-reference
   to another object at a specific version. *)

type t =
  | Str of string
  | Int of int
  | Bool of bool
  | Bytes of string
  | Strs of string list
  | Xref of xref

and xref = { pnode : Pnode.t; version : int }

let xref pnode version = Xref { pnode; version }

let equal a b =
  match (a, b) with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Bytes x, Bytes y -> String.equal x y
  | Strs x, Strs y -> List.length x = List.length y && List.for_all2 String.equal x y
  | Xref x, Xref y -> Pnode.equal x.pnode y.pnode && Int.equal x.version y.version
  | (Str _ | Int _ | Bool _ | Bytes _ | Strs _ | Xref _), _ -> false

let pp ppf = function
  | Str s -> Format.fprintf ppf "%S" s
  | Int i -> Format.fprintf ppf "%d" i
  | Bool b -> Format.fprintf ppf "%b" b
  | Bytes b -> Format.fprintf ppf "<%d bytes>" (String.length b)
  | Strs ss -> Format.fprintf ppf "[%s]" (String.concat "; " ss)
  | Xref { pnode; version } -> Format.fprintf ppf "%a.%d" Pnode.pp pnode version

(* Wire format: 1 tag byte followed by a type-specific payload.  Integers are
   64-bit little-endian; strings are u32-length-prefixed.  This format is
   shared by the Lasagna WAP log and the PA-NFS protocol. *)

let put_u32 = Wire.put_u32
let put_string = Wire.put_string

let encode buf = function
  | Str s ->
      Buffer.add_char buf '\001';
      put_string buf s
  | Int i ->
      Buffer.add_char buf '\002';
      Buffer.add_int64_le buf (Int64.of_int i)
  | Bool b ->
      Buffer.add_char buf '\003';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Bytes b ->
      Buffer.add_char buf '\004';
      put_string buf b
  | Strs ss ->
      Buffer.add_char buf '\005';
      put_u32 buf (List.length ss);
      List.iter (put_string buf) ss
  | Xref { pnode; version } ->
      Buffer.add_char buf '\006';
      Buffer.add_int64_le buf (Int64.of_int (Pnode.to_int pnode));
      Buffer.add_int64_le buf (Int64.of_int version)

exception Corrupt = Wire.Corrupt

let get_u32 = Wire.get_u32
let get_i64 = Wire.get_i64
let get_string = Wire.get_string

let decode s pos =
  if !pos >= String.length s then Wire.corrupt "truncated value";
  let tag = s.[!pos] in
  incr pos;
  match tag with
  | '\001' -> Str (get_string s pos)
  | '\002' -> Int (get_i64 s pos)
  | '\003' ->
      if !pos >= String.length s then Wire.corrupt "truncated bool";
      let b = s.[!pos] <> '\000' in
      incr pos;
      Bool b
  | '\004' -> Bytes (get_string s pos)
  | '\005' ->
      let n = get_u32 s pos in
      let rec loop k acc = if k = 0 then List.rev acc else loop (k - 1) (get_string s pos :: acc) in
      Strs (loop n [])
  | '\006' ->
      let pnode = Pnode.of_int (get_i64 s pos) in
      let version = get_i64 s pos in
      Xref { pnode; version }
  | c -> Wire.corrupt "bad value tag %d" (Char.code c)
