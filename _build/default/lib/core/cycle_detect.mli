(** PASSv1-style global cycle detection (ablation baseline).

    PASSv1 maintained a global graph of object dependencies and explicitly
    checked for cycles, merging all the nodes of a detected cycle into a
    single entity (paper, Section 5.4).  PASSv2 replaced this with the
    analyzer's local cycle avoidance; this module exists so benchmarks and
    property tests can compare the two approaches. *)

type t

type node = Pnode.t * int
(** An object at a version. *)

val create : unit -> t

val add_edge : t -> node -> node -> unit
(** [add_edge t src dst] records that [src] depends on [dst], merging the
    nodes of any cycle this would close. *)

val is_acyclic : t -> bool
(** Full acyclicity check over the merged graph (for tests). *)

val merges : t -> int
(** Number of merge operations performed. *)

val edge_count : t -> int

val probe_steps : t -> int
(** Total DFS steps spent probing for cycles — the global work PASSv2's
    local rule avoids. *)
