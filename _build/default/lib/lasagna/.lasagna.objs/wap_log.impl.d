lib/lasagna/wap_log.ml: Buffer Char Digest List Pass_core String Vfs Wire
