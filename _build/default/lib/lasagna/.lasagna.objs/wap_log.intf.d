lib/lasagna/wap_log.mli: Pass_core Vfs
