lib/lasagna/lasagna.ml: Hashtbl List Pass_core Printf Result String Vfs Wap_log
