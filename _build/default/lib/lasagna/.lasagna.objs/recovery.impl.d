lib/lasagna/recovery.ml: Format Hashtbl List Pass_core Result String Vfs Wap_log
