lib/lasagna/recovery.mli: Format Pass_core Vfs
