lib/lasagna/lasagna.mli: Pass_core Vfs
