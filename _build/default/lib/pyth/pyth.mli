(** Pyth on the simulated OS: run programs of the mini-Python language as
    a process, with the file system reached through system calls (so PASS
    observes it) and, optionally, the PA-Python provenance wrappers of
    paper Section 6.4 enabled. *)

module V = Pyth_value

exception Io_error of Vfs.errno

val read_file : System.t -> pid:int -> string -> string
val write_file : System.t -> pid:int -> string -> string -> unit

val host_of_system :
  ?module_dir:string -> System.t -> pid:int -> print:(string -> unit) -> Pyth_interp.host
(** A host whose file operations are system calls of [pid]; [module_dir]
    is where [import x] finds [x.py]. *)

type session = {
  interp : Pyth_interp.t;
  wrappers : Provwrap.t option;
  output : Buffer.t;
}

val create : ?provenance:bool -> ?module_dir:string -> System.t -> pid:int -> unit -> session
(** [provenance] (default true) enables the PA-Python wrappers when the
    kernel is provenance-aware. *)

val run : session -> string -> unit
(** Parse and execute a program.
    @raise Pyth_parser.Error | Pyth_lexer.Error | Pyth_interp.Runtime_error
    | Pyth_value.Type_error *)

val output : session -> string
(** Everything the program printed. *)
