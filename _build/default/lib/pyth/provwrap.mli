(** Provenance-Aware Python, as wrappers (paper, Section 6.4).

    Wraps modules and functions with code that creates PASS objects for
    them (TYPE=FUNCTION), creates an invocation object per call
    (TYPE=INVOCATION), and records INPUT relationships between each
    tagged input and the invocation and between the invocation and its
    output.  Declared reader/writer functions additionally link
    invocations to the files they touch, and functions imported from
    module files link to the module file (the process-validation use
    case).  Values passed through unwrapped built-in operators lose
    their tags — the Section 6.5 limitation, preserved deliberately. *)

type t

val enable :
  Pyth_interp.t ->
  lp:Pass_core.Libpass.t ->
  ctx:Pass_core.Ctx.t ->
  handle_of_path:(string -> Pass_core.Dpapi.handle option) ->
  module_path:(string -> string option) ->
  t
(** Wrap the standard modules already installed, every module imported
    later, and the [readfile]/[writefile] globals. *)

val invocation_count : t -> int
