lib/pyth/pyth_builtins.ml: Buffer Float Hashtbl List Printf Pyth_interp Pyth_value String Sxml
