lib/pyth/pyth_ast.ml:
