lib/pyth/pyth.ml: Buffer Kernel Pass_core Printf Provwrap Pyth_builtins Pyth_interp Pyth_value String System Vfs
