lib/pyth/pyth_lexer.ml: Buffer List Printf String
