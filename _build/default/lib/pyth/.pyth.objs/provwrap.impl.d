lib/pyth/provwrap.ml: Hashtbl List Option Pass_core Printf Pyth_interp Pyth_value
