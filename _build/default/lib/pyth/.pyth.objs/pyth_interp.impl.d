lib/pyth/pyth_interp.ml: Hashtbl List Printf Pyth_ast Pyth_parser Pyth_value String
