lib/pyth/pyth.mli: Buffer Provwrap Pyth_interp Pyth_value System Vfs
