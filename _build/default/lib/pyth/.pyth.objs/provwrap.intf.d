lib/pyth/provwrap.mli: Pass_core Pyth_interp
