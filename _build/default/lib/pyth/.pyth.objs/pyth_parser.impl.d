lib/pyth/pyth_parser.ml: Array List Printf Pyth_ast Pyth_lexer
