lib/pyth/pyth_value.ml: Bool Hashtbl List Pass_core Printf Pyth_ast String Sxml
