(* Top-level glue: run Pyth programs as a process on the simulated OS,
   optionally with the Provenance-Aware Python wrappers enabled.

   The host's file operations become system calls of [pid]; module
   sources are loaded from [module_dir] on the simulated file system. *)

module V = Pyth_value
module Libpass = Pass_core.Libpass

exception Io_error of Vfs.errno

let ok = function Ok v -> v | Error e -> raise (Io_error e)

let read_file sys ~pid path =
  let k = System.kernel sys in
  let fd = ok (Kernel.open_file k ~pid ~path ~create:false) in
  let buf = Buffer.create 4096 in
  let rec loop () =
    let chunk = ok (Kernel.read k ~pid ~fd ~len:4096) in
    if chunk <> "" then begin
      Buffer.add_string buf chunk;
      loop ()
    end
  in
  loop ();
  ok (Kernel.close k ~pid ~fd);
  Buffer.contents buf

let write_file sys ~pid path data =
  let k = System.kernel sys in
  let fd = ok (Kernel.open_file k ~pid ~path ~create:true) in
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = min 4096 (len - !pos) in
    ok (Kernel.write k ~pid ~fd ~data:(String.sub data !pos n));
    pos := !pos + n
  done;
  ok (Kernel.close k ~pid ~fd)

let host_of_system ?(module_dir = "") sys ~pid ~print : Pyth_interp.host =
  let module_path name =
    if module_dir = "" then None else Some (Printf.sprintf "%s/%s.py" module_dir name)
  in
  {
    Pyth_interp.read_file = (fun path -> read_file sys ~pid path);
    write_file = (fun path data -> write_file sys ~pid path data);
    listdir =
      (fun path ->
        match Kernel.readdir (System.kernel sys) ~path with
        | Ok names -> names
        | Error e -> raise (Io_error e));
    module_source =
      (fun name ->
        match module_path name with
        | None -> None
        | Some path -> (
            match read_file sys ~pid path with
            | source -> Some source
            | exception Io_error _ -> None));
    print;
    cpu = (fun ns -> Kernel.cpu (System.kernel sys) ns);
  }

type session = {
  interp : Pyth_interp.t;
  wrappers : Provwrap.t option;
  output : Buffer.t;
}

(* Create a Pyth session running as [pid].  [provenance] enables the
   PA-Python wrappers (requires a PASS kernel to have any effect). *)
let create ?(provenance = true) ?(module_dir = "") sys ~pid () =
  let output = Buffer.create 256 in
  let print line =
    Buffer.add_string output line;
    Buffer.add_char output '\n'
  in
  let host = host_of_system ~module_dir sys ~pid ~print in
  let globals = V.new_env () in
  let interp = Pyth_interp.create ~host ~globals () in
  Pyth_builtins.install_globals host globals;
  Pyth_builtins.install_modules interp;
  let wrappers =
    match (provenance, System.app_endpoint sys ~pid) with
    | true, Some endpoint ->
        let lp = Libpass.connect ~endpoint ~pid in
        let handle_of_path path =
          match Kernel.handle_of_path (System.kernel sys) path with
          | Ok h -> Some h
          | Error _ -> None
        in
        let module_path name =
          if module_dir = "" then None else Some (Printf.sprintf "%s/%s.py" module_dir name)
        in
        Some
          (Provwrap.enable interp ~lp
             ~ctx:(Kernel.ctx (System.kernel sys))
             ~handle_of_path ~module_path)
    | _ -> None
  in
  { interp; wrappers; output }

let run t source = Pyth_interp.run_string t.interp source
let output t = Buffer.contents t.output
