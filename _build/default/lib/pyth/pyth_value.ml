(* Runtime values of Pyth.

   Every value carries an optional provenance tag: the PASS object this
   value descends from.  The tag is set only by provenance-aware wrappers
   (Provwrap); ordinary interpreter operations produce untagged values.
   That default is deliberate — it reproduces the paper's §6.5 lesson that
   wrapping functions makes an *application* provenance-aware while
   provenance is still lost across built-in operators, which would require
   making the interpreter itself provenance-aware. *)

type t = { data : data; mutable prov : Pass_core.Dpapi.handle option }

and data =
  | None_
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list ref
  | Dict of (t * t) list ref
  | Func of func
  | Builtin of string * (t list -> t)
  | Module of string * (string, t) Hashtbl.t
  | Xml of Sxml.element

and func = { fname : string; params : string list; body : Pyth_ast.block; closure : env }

and env = { vars : (string, t) Hashtbl.t; parent : env option }

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let v data = { data; prov = None }
let none = v None_
let bool_ b = v (Bool b)
let int_ i = v (Int i)
let float_ f = v (Float f)
let str s = v (Str s)
let list_ l = v (List (ref l))
let dict_ l = v (Dict (ref l))
let xml e = v (Xml e)

let type_name t =
  match t.data with
  | None_ -> "NoneType"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "str"
  | List _ -> "list"
  | Dict _ -> "dict"
  | Func _ -> "function"
  | Builtin _ -> "builtin"
  | Module _ -> "module"
  | Xml _ -> "xml"

let truthy t =
  match t.data with
  | None_ -> false
  | Bool b -> b
  | Int i -> i <> 0
  | Float f -> f <> 0.
  | Str s -> s <> ""
  | List l -> !l <> []
  | Dict d -> !d <> []
  | Func _ | Builtin _ | Module _ | Xml _ -> true

let rec equal a b =
  match (a.data, b.data) with
  | None_, None_ -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.length !x = List.length !y && List.for_all2 equal !x !y
  | Dict x, Dict y ->
      List.length !x = List.length !y
      && List.for_all
           (fun (k, vv) -> match assoc_opt k !y with Some w -> equal vv w | None -> false)
           !x
  | Xml x, Xml y -> x == y
  | _ -> false

and assoc_opt key pairs =
  List.find_map (fun (k, vv) -> if equal k key then Some vv else None) pairs

let as_int t = match t.data with Int i -> i | Bool b -> Bool.to_int b | _ -> type_error "expected int, got %s" (type_name t)
let as_float t =
  match t.data with
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> type_error "expected float, got %s" (type_name t)

let as_str t = match t.data with Str s -> s | _ -> type_error "expected str, got %s" (type_name t)
let as_list t = match t.data with List l -> l | _ -> type_error "expected list, got %s" (type_name t)
let as_xml t = match t.data with Xml e -> e | _ -> type_error "expected xml, got %s" (type_name t)

let rec to_string t =
  match t.data with
  | None_ -> "None"
  | Bool b -> if b then "True" else "False"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | List l -> "[" ^ String.concat ", " (List.map repr !l) ^ "]"
  | Dict d -> "{" ^ String.concat ", " (List.map (fun (k, vv) -> repr k ^ ": " ^ repr vv) !d) ^ "}"
  | Func f -> Printf.sprintf "<function %s>" f.fname
  | Builtin (n, _) -> Printf.sprintf "<builtin %s>" n
  | Module (n, _) -> Printf.sprintf "<module %s>" n
  | Xml e -> Printf.sprintf "<xml %s>" e.Sxml.tag

and repr t = match t.data with Str s -> Printf.sprintf "%S" s | _ -> to_string t

(* --- environments ------------------------------------------------------------ *)

let new_env ?parent () = { vars = Hashtbl.create 16; parent }

let rec lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some vv -> Some vv
  | None -> ( match env.parent with Some p -> lookup p name | None -> None)

let define env name vv = Hashtbl.replace env.vars name vv

(* assignment updates the defining scope if any, else defines locally *)
let rec assign env name vv =
  if Hashtbl.mem env.vars name then Hashtbl.replace env.vars name vv
  else
    match env.parent with
    | Some p when lookup p name <> None -> assign p name vv
    | _ -> Hashtbl.replace env.vars name vv
