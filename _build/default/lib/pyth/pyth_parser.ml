(* Recursive-descent parser for Pyth. *)

open Pyth_ast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type state = { tokens : Pyth_lexer.token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else
    fail "expected %s but found %s" (Pyth_lexer.to_string tok)
      (Pyth_lexer.to_string (peek st))

let expect_ident st =
  match peek st with
  | Pyth_lexer.IDENT s ->
      advance st;
      s
  | t -> fail "expected identifier, found %s" (Pyth_lexer.to_string t)

(* --- expressions ------------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Pyth_lexer.KW "or" then begin
    advance st;
    Ebinop (Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek st = Pyth_lexer.KW "and" then begin
    advance st;
    Ebinop (And, lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if peek st = Pyth_lexer.KW "not" then begin
    advance st;
    Eunop (Not, parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_arith st in
  let op =
    match peek st with
    | Pyth_lexer.OP "==" -> Some Eq
    | Pyth_lexer.OP "!=" -> Some Neq
    | Pyth_lexer.OP "<" -> Some Lt
    | Pyth_lexer.OP "<=" -> Some Le
    | Pyth_lexer.OP ">" -> Some Gt
    | Pyth_lexer.OP ">=" -> Some Ge
    | Pyth_lexer.KW "in" -> Some In
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Ebinop (op, lhs, parse_arith st)
  | None -> lhs

and parse_arith st =
  let lhs = parse_term st in
  let rec loop lhs =
    match peek st with
    | Pyth_lexer.OP "+" ->
        advance st;
        loop (Ebinop (Add, lhs, parse_term st))
    | Pyth_lexer.OP "-" ->
        advance st;
        loop (Ebinop (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Pyth_lexer.OP "*" ->
        advance st;
        loop (Ebinop (Mul, lhs, parse_unary st))
    | Pyth_lexer.OP "/" ->
        advance st;
        loop (Ebinop (Div, lhs, parse_unary st))
    | Pyth_lexer.OP "%" ->
        advance st;
        loop (Ebinop (Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Pyth_lexer.OP "-" ->
      advance st;
      Eunop (Neg, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let atom = parse_atom st in
  let rec loop e =
    match peek st with
    | Pyth_lexer.OP "(" ->
        advance st;
        let args = parse_args st in
        expect st (Pyth_lexer.OP ")");
        loop (Ecall (e, args))
    | Pyth_lexer.OP "[" ->
        advance st;
        let idx = parse_expr st in
        expect st (Pyth_lexer.OP "]");
        loop (Eindex (e, idx))
    | Pyth_lexer.OP "." ->
        advance st;
        loop (Eattr (e, expect_ident st))
    | _ -> e
  in
  loop atom

and parse_args st =
  if peek st = Pyth_lexer.OP ")" then []
  else
    let rec loop acc =
      let arg = parse_expr st in
      if peek st = Pyth_lexer.OP "," then begin
        advance st;
        loop (arg :: acc)
      end
      else List.rev (arg :: acc)
    in
    loop []

and parse_atom st =
  match peek st with
  | Pyth_lexer.INT i ->
      advance st;
      Eint i
  | Pyth_lexer.FLOAT f ->
      advance st;
      Efloat f
  | Pyth_lexer.STRING s ->
      advance st;
      Estr s
  | Pyth_lexer.KW "True" ->
      advance st;
      Ebool true
  | Pyth_lexer.KW "False" ->
      advance st;
      Ebool false
  | Pyth_lexer.KW "None" ->
      advance st;
      Enone
  | Pyth_lexer.IDENT name ->
      advance st;
      Eident name
  | Pyth_lexer.OP "(" ->
      advance st;
      let e = parse_expr st in
      expect st (Pyth_lexer.OP ")");
      e
  | Pyth_lexer.OP "[" ->
      advance st;
      let rec loop acc =
        if peek st = Pyth_lexer.OP "]" then List.rev acc
        else
          let e = parse_expr st in
          if peek st = Pyth_lexer.OP "," then begin
            advance st;
            loop (e :: acc)
          end
          else List.rev (e :: acc)
      in
      let elems = loop [] in
      expect st (Pyth_lexer.OP "]");
      Elist elems
  | Pyth_lexer.OP "{" ->
      advance st;
      let rec loop acc =
        if peek st = Pyth_lexer.OP "}" then List.rev acc
        else begin
          let k = parse_expr st in
          expect st (Pyth_lexer.OP ":");
          let v = parse_expr st in
          if peek st = Pyth_lexer.OP "," then begin
            advance st;
            loop ((k, v) :: acc)
          end
          else List.rev ((k, v) :: acc)
        end
      in
      let pairs = loop [] in
      expect st (Pyth_lexer.OP "}");
      Edict pairs
  | t -> fail "expected expression, found %s" (Pyth_lexer.to_string t)

(* --- statements --------------------------------------------------------------- *)

let rec parse_block st =
  (* a block is NEWLINE INDENT stmts DEDENT *)
  expect st Pyth_lexer.NEWLINE;
  expect st Pyth_lexer.INDENT;
  let rec loop acc =
    match peek st with
    | Pyth_lexer.DEDENT ->
        advance st;
        List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  match peek st with
  | Pyth_lexer.KW "pass" ->
      advance st;
      expect st Pyth_lexer.NEWLINE;
      Spass
  | Pyth_lexer.KW "break" ->
      advance st;
      expect st Pyth_lexer.NEWLINE;
      Sbreak
  | Pyth_lexer.KW "continue" ->
      advance st;
      expect st Pyth_lexer.NEWLINE;
      Scontinue
  | Pyth_lexer.KW "import" ->
      advance st;
      let name = expect_ident st in
      expect st Pyth_lexer.NEWLINE;
      Simport name
  | Pyth_lexer.KW "return" ->
      advance st;
      if peek st = Pyth_lexer.NEWLINE then begin
        advance st;
        Sreturn None
      end
      else begin
        let e = parse_expr st in
        expect st Pyth_lexer.NEWLINE;
        Sreturn (Some e)
      end
  | Pyth_lexer.KW "if" ->
      advance st;
      let cond = parse_expr st in
      expect st (Pyth_lexer.OP ":");
      let body = parse_block st in
      let rec elifs acc =
        match peek st with
        | Pyth_lexer.KW "elif" ->
            advance st;
            let c = parse_expr st in
            expect st (Pyth_lexer.OP ":");
            let b = parse_block st in
            elifs ((c, b) :: acc)
        | Pyth_lexer.KW "else" ->
            advance st;
            expect st (Pyth_lexer.OP ":");
            let b = parse_block st in
            (List.rev acc, Some b)
        | _ -> (List.rev acc, None)
      in
      let chain, els = elifs [] in
      Sif ((cond, body) :: chain, els)
  | Pyth_lexer.KW "while" ->
      advance st;
      let cond = parse_expr st in
      expect st (Pyth_lexer.OP ":");
      Swhile (cond, parse_block st)
  | Pyth_lexer.KW "for" ->
      advance st;
      let var = expect_ident st in
      (match peek st with
      | Pyth_lexer.KW "in" -> advance st
      | t -> fail "expected 'in', found %s" (Pyth_lexer.to_string t));
      let iter = parse_expr st in
      expect st (Pyth_lexer.OP ":");
      Sfor (var, iter, parse_block st)
  | Pyth_lexer.KW "def" ->
      advance st;
      let name = expect_ident st in
      expect st (Pyth_lexer.OP "(");
      let rec params acc =
        match peek st with
        | Pyth_lexer.OP ")" ->
            advance st;
            List.rev acc
        | Pyth_lexer.IDENT p ->
            advance st;
            if peek st = Pyth_lexer.OP "," then advance st;
            params (p :: acc)
        | t -> fail "expected parameter, found %s" (Pyth_lexer.to_string t)
      in
      let ps = params [] in
      expect st (Pyth_lexer.OP ":");
      Sdef (name, ps, parse_block st)
  | _ -> (
      (* assignment or expression statement *)
      let e = parse_expr st in
      match (peek st, e) with
      | Pyth_lexer.OP "=", Eident name ->
          advance st;
          let rhs = parse_expr st in
          expect st Pyth_lexer.NEWLINE;
          Sassign (Tident name, rhs)
      | Pyth_lexer.OP "=", Eindex (c, k) ->
          advance st;
          let rhs = parse_expr st in
          expect st Pyth_lexer.NEWLINE;
          Sassign (Tindex (c, k), rhs)
      | Pyth_lexer.OP "=", _ -> fail "invalid assignment target"
      | _ ->
          expect st Pyth_lexer.NEWLINE;
          Sexpr e)

let parse input =
  let tokens = Array.of_list (Pyth_lexer.tokenize input) in
  let st = { tokens; pos = 0 } in
  let rec loop acc =
    match peek st with
    | Pyth_lexer.EOF -> List.rev acc
    | Pyth_lexer.NEWLINE ->
        advance st;
        loop acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []
