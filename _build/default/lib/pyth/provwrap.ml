(* Provenance-Aware Python, realized as wrappers (paper §6.4).

   We wrap modules and functions with code that creates PASSv2 objects
   representing them, intercepts invocations, and records the
   relationships between objects:

   - every wrapped function gets a PASS object (TYPE=FUNCTION, NAME);
   - every call creates an invocation object (TYPE=INVOCATION) whose
     INPUT records name the function object and every provenance-tagged
     value found (deeply) in the arguments;
   - the result value is tagged with the invocation, so downstream
     wrapped calls — and files written by declared writer functions —
     chain to it;
   - declared reader functions (e.g. xml.parse_file) link the invocation
     to the file they read, and declared writer functions (e.g.
     plot.plot) link the written file to the invocation;
   - functions imported from module files link their function object to
     the module file, which is how the process-validation use case tells
     which outputs came through a particular library version.

   What is *not* wrapped — the interpreter's own operators — loses
   provenance, exactly the limitation §6.5 reports: wrapping makes an
   application provenance-aware; making Python itself provenance-aware
   would require modifying the interpreter. *)

module V = Pyth_value
module Dpapi = Pass_core.Dpapi
module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue
module Ctx = Pass_core.Ctx
module Libpass = Pass_core.Libpass

type t = {
  lp : Libpass.t;
  ctx : Ctx.t;
  handle_of_path : string -> Dpapi.handle option;
  module_path : string -> string option;
  fn_objects : (string, Dpapi.handle) Hashtbl.t; (* "mod.fn" -> object *)
  mutable invocations : int;
}

(* Functions whose string argument at the given index names a file they
   read or write; used to link invocations to the file system layer. *)
let readers = [ ("xml.parse_file", 0); ("readfile", 0) ]
let writers = [ ("plot.plot", 2); ("writefile", 0) ]

let xref_of t (h : Dpapi.handle) = Pvalue.xref h.pnode (Ctx.current_version t.ctx h.pnode)

let fn_object t qualified ~module_file =
  match Hashtbl.find_opt t.fn_objects qualified with
  | Some h -> h
  | None ->
      let h = Libpass.mkobj ~typ:"FUNCTION" ~name:qualified t.lp in
      (match module_file with
      | Some mf -> (
          match t.handle_of_path mf with
          | Some fh -> Libpass.disclose t.lp h [ Record.input (xref_of t fh) ]
          | None -> ())
      | None -> ());
      Hashtbl.replace t.fn_objects qualified h;
      h

(* Deep scan of argument values for provenance tags (lists and dicts are
   interpreter containers: their elements may be tagged even though the
   container is not). *)
let rec tagged_handles acc (v : V.t) =
  let acc = match v.V.prov with Some h -> h :: acc | None -> acc in
  match v.V.data with
  | V.List l -> List.fold_left tagged_handles acc !l
  | V.Dict d -> List.fold_left (fun acc (k, vv) -> tagged_handles (tagged_handles acc k) vv) acc !d
  | _ -> acc

let path_arg args idx =
  match List.nth_opt args idx with
  | Some ({ V.data = V.Str s; _ } : V.t) -> Some s
  | _ -> None

(* Wrap one callable bound as [qualified]. *)
let wrap_callable t ~qualified ~module_file ~call_original (original : V.t) : V.t =
  let wrapper args =
    let fnobj = fn_object t qualified ~module_file in
    t.invocations <- t.invocations + 1;
    let inv =
      Libpass.mkobj ~typ:"INVOCATION"
        ~name:(Printf.sprintf "%s#%d" qualified t.invocations)
        t.lp
    in
    Libpass.disclose t.lp inv [ Record.input (xref_of t fnobj) ];
    (* dependencies between each input and the invocation *)
    let inputs = List.fold_left tagged_handles [] args in
    List.iter (fun h -> Libpass.disclose t.lp inv [ Record.input (xref_of t h) ]) inputs;
    (* reader functions: the invocation depends on the file read *)
    (match List.assoc_opt qualified readers with
    | Some idx -> (
        match Option.bind (path_arg args idx) t.handle_of_path with
        | Some fh -> Libpass.disclose t.lp inv [ Record.input (xref_of t fh) ]
        | None -> ())
    | None -> ());
    let result = call_original original args in
    (* writer functions: the written file depends on the invocation *)
    (match List.assoc_opt qualified writers with
    | Some idx -> (
        match Option.bind (path_arg args idx) t.handle_of_path with
        | Some fh -> Libpass.disclose t.lp fh [ Record.input (xref_of t inv) ]
        | None -> ())
    | None -> ());
    (* dependency between the invocation and its output; tag a copy so a
       returned argument is not retagged in place *)
    { result with V.prov = Some inv }
  in
  { V.data = V.Builtin (qualified, wrapper); prov = None }

(* Wrap every callable member of a module value in place. *)
let wrap_module t interp ~name (m : V.t) =
  match m.V.data with
  | V.Module (_, table) ->
      let module_file = t.module_path name in
      let snapshot = Hashtbl.fold (fun k vv acc -> (k, vv) :: acc) table [] in
      List.iter
        (fun (member, vv) ->
          match vv.V.data with
          | V.Builtin (_, f) ->
              let qualified = name ^ "." ^ member in
              Hashtbl.replace table member
                (wrap_callable t ~qualified ~module_file
                   ~call_original:(fun _ args -> f args)
                   vv)
          | V.Func _ ->
              let qualified = name ^ "." ^ member in
              Hashtbl.replace table member
                (wrap_callable t ~qualified ~module_file
                   ~call_original:(fun original args -> Pyth_interp.call interp original args)
                   vv)
          | _ -> ())
        snapshot
  | _ -> ()

(* Wrap selected global builtins (readfile/writefile). *)
let wrap_globals t (globals : V.env) =
  List.iter
    (fun name ->
      match Hashtbl.find_opt globals.V.vars name with
      | Some ({ V.data = V.Builtin (_, f); _ } as vv) ->
          Hashtbl.replace globals.V.vars name
            (wrap_callable t ~qualified:name ~module_file:None
               ~call_original:(fun _ args -> f args)
               vv)
      | _ -> ())
    [ "readfile"; "writefile" ]

let enable interp ~lp ~ctx ~handle_of_path ~module_path =
  let t =
    { lp; ctx; handle_of_path; module_path; fn_objects = Hashtbl.create 32; invocations = 0 }
  in
  (* wrap the preinstalled standard modules *)
  Hashtbl.iter (fun name m -> wrap_module t interp ~name m) interp.Pyth_interp.modules;
  (* wrap modules imported later *)
  interp.Pyth_interp.on_import <- (fun name m -> wrap_module t interp ~name m);
  wrap_globals t interp.Pyth_interp.globals;
  t

let invocation_count t = t.invocations
