(* Indentation-aware tokenizer for Pyth.  Leading whitespace at the start
   of each logical line is converted into INDENT/DEDENT tokens the way
   CPython's tokenizer does it (a stack of indentation levels); blank
   lines and comment-only lines produce nothing. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string (* if elif else while for in def return import pass and or not True False None break continue *)
  | OP of string (* + - * / % == != < <= > >= = ( ) [ ] { } , : . *)
  | NEWLINE
  | INDENT
  | DEDENT
  | EOF

exception Error of string * int (* message, line *)

let keywords =
  [ "if"; "elif"; "else"; "while"; "for"; "in"; "def"; "return"; "import";
    "pass"; "and"; "or"; "not"; "True"; "False"; "None"; "break"; "continue" ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize input =
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let lines = String.split_on_char '\n' input in
  let indents = ref [ 0 ] in
  let lineno = ref 0 in
  let lex_line line =
    let n = String.length line in
    let i = ref 0 in
    while !i < n && line.[!i] <> '#' do
      let c = line.[!i] in
      if c = ' ' || c = '\t' then incr i
      else if is_digit c then begin
        let start = !i in
        while !i < n && (is_digit line.[!i] || line.[!i] = '.') do incr i done;
        let lit = String.sub line start (!i - start) in
        if String.contains lit '.' then
          match float_of_string_opt lit with
          | Some f -> emit (FLOAT f)
          | None -> raise (Error ("bad float literal " ^ lit, !lineno))
        else
          match int_of_string_opt lit with
          | Some k -> emit (INT k)
          | None -> raise (Error ("bad int literal " ^ lit, !lineno))
      end
      else if is_ident_start c then begin
        let start = !i in
        while !i < n && is_ident_char line.[!i] do incr i done;
        let word = String.sub line start (!i - start) in
        if List.mem word keywords then emit (KW word) else emit (IDENT word)
      end
      else if c = '"' || c = '\'' then begin
        let quote = c in
        let buf = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while !i < n && not !closed do
          if line.[!i] = quote then begin
            closed := true;
            incr i
          end
          else if line.[!i] = '\\' && !i + 1 < n then begin
            (match line.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | c -> Buffer.add_char buf c);
            i := !i + 2
          end
          else begin
            Buffer.add_char buf line.[!i];
            incr i
          end
        done;
        if not !closed then raise (Error ("unterminated string", !lineno));
        emit (STRING (Buffer.contents buf))
      end
      else begin
        let two = if !i + 1 < n then String.sub line !i 2 else "" in
        match two with
        | "==" | "!=" | "<=" | ">=" ->
            emit (OP two);
            i := !i + 2
        | _ ->
            (match c with
            | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '(' | ')' | '[' | ']'
            | '{' | '}' | ',' | ':' | '.' ->
                emit (OP (String.make 1 c))
            | c -> raise (Error (Printf.sprintf "unexpected character %C" c, !lineno)));
            incr i
      end
    done
  in
  List.iter
    (fun line ->
      incr lineno;
      (* measure indentation; skip blank/comment-only lines *)
      let n = String.length line in
      let w = ref 0 in
      while !w < n && line.[!w] = ' ' do incr w done;
      let rest = String.sub line !w (n - !w) in
      let blank = String.trim rest = "" || (String.length rest > 0 && rest.[0] = '#') in
      if not blank then begin
        let indent = !w in
        let top () = List.hd !indents in
        if indent > top () then begin
          indents := indent :: !indents;
          emit INDENT
        end
        else
          while indent < top () do
            indents := List.tl !indents;
            if indent > top () then raise (Error ("inconsistent dedent", !lineno));
            emit DEDENT
          done;
        lex_line line;
        emit NEWLINE
      end)
    lines;
  while List.hd !indents > 0 do
    indents := List.tl !indents;
    emit DEDENT
  done;
  emit EOF;
  List.rev !tokens

let to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | OP s -> s
  | NEWLINE -> "<newline>"
  | INDENT -> "<indent>"
  | DEDENT -> "<dedent>"
  | EOF -> "<eof>"
