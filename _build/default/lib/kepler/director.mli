(** The director: executes a workflow as a dataflow schedule, reporting
    every event (operator creation, token transfer, file access) to the
    configured provenance recorder. *)

type result = { fired : string list; tokens_moved : int }

exception Stuck of string
(** An actor fired before all its input ports held tokens. *)

val run : ?recorder:Recorder.t -> Workflow.t -> Actor.io -> result
