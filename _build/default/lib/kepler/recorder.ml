(* Kepler's provenance recording interface (paper §6.2).

   Kepler records provenance for all communication between workflow
   operators, into either a text file or a relational table — we add the
   third option the paper contributes: transmitting the provenance into
   PASSv2 via the DPAPI.

   The DPAPI backend creates a PASS object for every operator
   (pass_mkobj) and sets NAME, TYPE and PARAMS; when an operator produces
   a result, an ancestry relationship is recorded between the recipient
   and the sender with a pass_write.  Source/sink actors' file accesses
   are reported so Kepler's provenance links to the files PASS knows —
   the paper's modification of Kepler's data sink and source routines. *)

module Dpapi = Pass_core.Dpapi
module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue
module Ctx = Pass_core.Ctx
module Libpass = Pass_core.Libpass

type event =
  | Operator_created of { actor : string; params : (string * string) list }
  | Transfer of { from_actor : string; to_actor : string; port : string }
  | File_read of { actor : string; path : string }
  | File_written of { actor : string; path : string }
  | Run_started of string
  | Run_finished of string

type t = {
  record : event -> unit;
  finish : unit -> unit;
}

let null = { record = (fun _ -> ()); finish = (fun () -> ()) }

(* --- text backend: one line per event, appended to a file ----------------- *)

let text ~write_line =
  let record = function
    | Operator_created { actor; params } ->
        write_line
          (Printf.sprintf "OPERATOR %s %s" actor
             (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) params)))
    | Transfer { from_actor; to_actor; port } ->
        write_line (Printf.sprintf "TRANSFER %s -> %s.%s" from_actor to_actor port)
    | File_read { actor; path } -> write_line (Printf.sprintf "READ %s %s" actor path)
    | File_written { actor; path } -> write_line (Printf.sprintf "WRITE %s %s" actor path)
    | Run_started n -> write_line ("RUN-START " ^ n)
    | Run_finished n -> write_line ("RUN-END " ^ n)
  in
  { record; finish = (fun () -> ()) }

(* --- relational backend: rows collected per table -------------------------- *)

type relational = {
  mutable operators : (string * string) list; (* actor, params *)
  mutable transfers : (string * string) list; (* from, to *)
  mutable file_events : (string * string * string) list; (* kind, actor, path *)
}

let relational () =
  let tables = { operators = []; transfers = []; file_events = [] } in
  let record = function
    | Operator_created { actor; params } ->
        tables.operators <-
          (actor, String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) params))
          :: tables.operators
    | Transfer { from_actor; to_actor; _ } ->
        tables.transfers <- (from_actor, to_actor) :: tables.transfers
    | File_read { actor; path } -> tables.file_events <- ("read", actor, path) :: tables.file_events
    | File_written { actor; path } ->
        tables.file_events <- ("write", actor, path) :: tables.file_events
    | Run_started _ | Run_finished _ -> ()
  in
  ({ record; finish = (fun () -> ()) }, tables)

(* --- DPAPI backend ---------------------------------------------------------- *)

type pass_backend = {
  lp : Libpass.t;
  ctx : Ctx.t;
  handle_of_path : string -> Dpapi.handle option;
  objects : (string, Dpapi.handle) Hashtbl.t; (* actor -> PASS object *)
}

let operator_handle b actor =
  match Hashtbl.find_opt b.objects actor with
  | Some h -> h
  | None ->
      (* late registration: an actor we never saw created *)
      let h = Libpass.mkobj ~typ:"OPERATOR" ~name:actor b.lp in
      Hashtbl.replace b.objects actor h;
      h

let pass ~lp ~ctx ~handle_of_path =
  let b = { lp; ctx; handle_of_path; objects = Hashtbl.create 16 } in
  let xref_of h = Pvalue.xref h.Dpapi.pnode (Ctx.current_version b.ctx h.Dpapi.pnode) in
  let record = function
    | Operator_created { actor; params } ->
        let h = Libpass.mkobj ~typ:"OPERATOR" ~name:actor b.lp in
        Hashtbl.replace b.objects actor h;
        if params <> [] then
          Libpass.disclose b.lp h
            [ Record.make Record.Attr.params
                (Pvalue.Strs (List.map (fun (k, v) -> k ^ "=" ^ v) params)) ]
    | Transfer { from_actor; to_actor; _ } ->
        (* ancestry between the recipient and the sender of the message *)
        let src = operator_handle b from_actor and dst = operator_handle b to_actor in
        Libpass.disclose b.lp dst [ Record.input (xref_of src) ]
    | File_read { actor; path } -> (
        (* the operator depends on the file it read: links Kepler's
           provenance to PASS's *)
        match b.handle_of_path path with
        | Some fh ->
            Libpass.disclose b.lp (operator_handle b actor) [ Record.input (xref_of fh) ]
        | None -> ())
    | File_written { actor; path } -> (
        (* the file depends on the operator that produced it *)
        match b.handle_of_path path with
        | Some fh ->
            Libpass.disclose b.lp fh [ Record.input (xref_of (operator_handle b actor)) ]
        | None -> ())
    | Run_started _ -> ()
    | Run_finished _ -> ()
  in
  let finish () =
    (* make operator objects durable even if some have no persistent
       descendants (e.g. a sink that failed) *)
    Hashtbl.iter (fun _ h -> try Libpass.sync b.lp h with Libpass.Pass_error _ -> ()) b.objects
  in
  { record; finish }
