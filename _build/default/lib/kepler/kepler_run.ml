(* Glue for running a workflow as a process on the simulated OS: the
   engine's file accesses become system calls (observed by PASS when the
   kernel is provenance-aware), and the DPAPI recorder is wired to the
   process's libpass endpoint. *)

module Libpass = Pass_core.Libpass

exception Io_error of Vfs.errno

let ok = function Ok v -> v | Error e -> raise (Io_error e)

(* I/O in 4 KB chunks, like a real program would issue it (this is what
   gives the analyzer duplicates to eliminate). *)
let io_of_system sys ~pid : Actor.io =
  let k = System.kernel sys in
  {
    Actor.read_file =
      (fun path ->
        let fd = ok (Kernel.open_file k ~pid ~path ~create:false) in
        let buf = Buffer.create 4096 in
        let rec loop () =
          let chunk = ok (Kernel.read k ~pid ~fd ~len:4096) in
          if chunk <> "" then begin
            Buffer.add_string buf chunk;
            loop ()
          end
        in
        loop ();
        ok (Kernel.close k ~pid ~fd);
        Buffer.contents buf);
    write_file =
      (fun path data ->
        let fd = ok (Kernel.open_file k ~pid ~path ~create:true) in
        let len = String.length data in
        let pos = ref 0 in
        while !pos < len do
          let n = min 4096 (len - !pos) in
          ok (Kernel.write k ~pid ~fd ~data:(String.sub data !pos n));
          pos := !pos + n
        done;
        ok (Kernel.close k ~pid ~fd));
    cpu = (fun ns -> Kernel.cpu k ns);
  }

(* The three recorder configurations of paper §6.2. *)
type recording = No_recording | Text_file of string | Dpapi

let recorder_of sys ~pid = function
  | No_recording -> Recorder.null
  | Text_file path ->
      let io = io_of_system sys ~pid in
      let lines = Buffer.create 256 in
      let write_line l =
        Buffer.add_string lines l;
        Buffer.add_char lines '\n';
        (* append-by-rewrite keeps the helper simple; the file is small *)
        io.Actor.write_file path (Buffer.contents lines)
      in
      Recorder.text ~write_line
  | Dpapi -> (
      match System.app_endpoint sys ~pid with
      | None -> Recorder.null (* vanilla kernel: nothing to disclose to *)
      | Some endpoint ->
          let lp = Libpass.connect ~endpoint ~pid in
          let handle_of_path path =
            match Kernel.handle_of_path (System.kernel sys) path with
            | Ok h -> Some h
            | Error _ -> None
          in
          Recorder.pass ~lp ~ctx:(Kernel.ctx (System.kernel sys)) ~handle_of_path)

let run ?(recording = Dpapi) sys ~pid wf =
  Director.run ~recorder:(recorder_of sys ~pid recording) wf (io_of_system sys ~pid)
