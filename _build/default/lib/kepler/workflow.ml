(* A workflow: a set of actors and the channels connecting their ports. *)

type link = {
  from_actor : string;
  from_port : string;
  to_actor : string;
  to_port : string;
}

type t = { wf_name : string; actors : Actor.t list; links : link list }

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let actor t name =
  match List.find_opt (fun (a : Actor.t) -> String.equal a.name name) t.actors with
  | Some a -> a
  | None -> invalid "no actor named %s" name

(* Validate port references and the single-writer rule for input ports. *)
let validate t =
  List.iter
    (fun l ->
      let src = actor t l.from_actor and dst = actor t l.to_actor in
      if not (List.mem l.from_port src.outputs) then
        invalid "%s has no output port %s" src.name l.from_port;
      if not (List.mem l.to_port dst.inputs) then
        invalid "%s has no input port %s" dst.name l.to_port)
    t.links;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let key = (l.to_actor, l.to_port) in
      if Hashtbl.mem seen key then
        invalid "input port %s.%s has two writers" l.to_actor l.to_port;
      Hashtbl.replace seen key ())
    t.links;
  (* every input port must be connected *)
  List.iter
    (fun (a : Actor.t) ->
      List.iter
        (fun port ->
          if not (Hashtbl.mem seen (a.name, port)) then
            invalid "input port %s.%s is unconnected" a.name port)
        a.inputs)
    t.actors

let create ~name ~actors ~links =
  let t = { wf_name = name; actors; links } in
  validate t;
  t

(* Topological order of actors (the dataflow schedule). *)
let schedule t =
  let deps = Hashtbl.create 16 in
  List.iter (fun (a : Actor.t) -> Hashtbl.replace deps a.name []) t.actors;
  List.iter
    (fun l -> Hashtbl.replace deps l.to_actor (l.from_actor :: Hashtbl.find deps l.to_actor))
    t.links;
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    match Hashtbl.find_opt visited name with
    | Some `Done -> ()
    | Some `Active -> invalid "workflow has a cycle through %s" name
    | None ->
        Hashtbl.replace visited name `Active;
        List.iter visit (Hashtbl.find deps name);
        Hashtbl.replace visited name `Done;
        order := name :: !order
  in
  List.iter (fun (a : Actor.t) -> visit a.name) t.actors;
  List.rev !order |> List.map (actor t)

let consumers t ~from_actor ~from_port =
  List.filter_map
    (fun l ->
      if String.equal l.from_actor from_actor && String.equal l.from_port from_port then
        Some (l.to_actor, l.to_port)
      else None)
    t.links
