(* The First Provenance Challenge fMRI workflow [24], the workload the
   paper runs on PA-Kepler for the Figure 1 / Section 3.1 scenario.

   Stage structure (per the challenge specification):
     4x align_warp  (anatomy image + header, reference image) -> warp params
     4x reslice     (warp params) -> resliced image
     1x softmean    (4 resliced images) -> atlas image
     3x slicer      (atlas, one slice plane each: x, y, z) -> atlas slice
     3x convert     (slice) -> graphic written as atlas-{x,y,z}.gif

   The image "processing" is a deterministic string transformation — the
   provenance structure, not the pixels, is what the reproduction needs. *)

let subjects = [ 1; 2; 3; 4 ]
let planes = [ "x"; "y"; "z" ]

let anatomy_file ~input_dir i = Printf.sprintf "%s/anatomy%d.img" input_dir i
let reference_file ~input_dir = input_dir ^ "/reference.img"
let atlas_file ~output_dir plane = Printf.sprintf "%s/atlas-%s.gif" output_dir plane

(* cheap deterministic mixing so outputs reflect every input byte *)
let mix tag parts =
  let h = ref 1469598103934665603 in
  List.iter
    (fun part -> String.iter (fun c -> h := (!h lxor Char.code c) * 1099511628211) part)
    parts;
  Printf.sprintf "%s[%016x]" tag (!h land max_int)

let align_warp ~input_dir i =
  let name = Printf.sprintf "align_warp%d" i in
  Actor.make ~name
    ~params:[ ("model", "rigid"); ("subject", string_of_int i) ]
    ~inputs:[] ~outputs:[ "warp" ]
    (fun io _ ->
      let anatomy = io.Actor.read_file (anatomy_file ~input_dir i) in
      let reference = io.Actor.read_file (reference_file ~input_dir) in
      io.Actor.cpu 2_000_000;
      [ ("warp", Actor.token ~origin:name (mix "warp" [ anatomy; reference ])) ])

let reslice i =
  Actor.transform
    ~name:(Printf.sprintf "reslice%d" i)
    ~params:[ ("subject", string_of_int i) ]
    ~cpu_ns:1_500_000
    (fun warp -> mix "resliced" [ warp ])

let softmean =
  Actor.combine ~name:"softmean"
    ~params:[ ("method", "mean") ]
    ~cpu_ns:3_000_000
    ~inputs:(List.map (fun i -> Printf.sprintf "in%d" i) subjects)
    (fun images -> mix "atlas" images)

let slicer plane =
  Actor.transform
    ~name:("slicer_" ^ plane)
    ~params:[ ("plane", plane) ]
    ~cpu_ns:800_000
    (fun atlas -> mix ("slice-" ^ plane) [ atlas ])

let convert plane =
  Actor.transform
    ~name:("convert_" ^ plane)
    ~params:[ ("format", "gif") ]
    ~cpu_ns:500_000
    (fun slice -> mix ("gif-" ^ plane) [ slice ])

let sink ~output_dir plane =
  Actor.file_sink ~name:("store_" ^ plane) ~path:(atlas_file ~output_dir plane)

let workflow ~input_dir ~output_dir =
  let actors =
    List.map (align_warp ~input_dir) subjects
    @ List.map reslice subjects
    @ [ softmean ]
    @ List.map slicer planes
    @ List.map convert planes
    @ List.map (sink ~output_dir) planes
  in
  let links =
    List.concat_map
      (fun i ->
        [
          { Workflow.from_actor = Printf.sprintf "align_warp%d" i; from_port = "warp";
            to_actor = Printf.sprintf "reslice%d" i; to_port = "in" };
          { Workflow.from_actor = Printf.sprintf "reslice%d" i; from_port = "out";
            to_actor = "softmean"; to_port = Printf.sprintf "in%d" i };
        ])
      subjects
    @ List.concat_map
        (fun plane ->
          [
            { Workflow.from_actor = "softmean"; from_port = "out";
              to_actor = "slicer_" ^ plane; to_port = "in" };
            { Workflow.from_actor = "slicer_" ^ plane; from_port = "out";
              to_actor = "convert_" ^ plane; to_port = "in" };
            { Workflow.from_actor = "convert_" ^ plane; from_port = "out";
              to_actor = "store_" ^ plane; to_port = "in" };
          ])
        planes
  in
  Workflow.create ~name:"provenance-challenge" ~actors ~links

(* Write a synthetic input data set through [io]. *)
let prepare_inputs ~input_dir ?(tweak = "") (io : Actor.io) =
  List.iter
    (fun i ->
      io.Actor.write_file (anatomy_file ~input_dir i)
        (Printf.sprintf "anatomy-image-%d-%s" i tweak))
    subjects;
  io.Actor.write_file (reference_file ~input_dir) "reference-image"
