(** Kepler's provenance recording interface (paper, Section 6.2).

    Kepler records provenance for all communication between workflow
    operators into a text file or relational tables; the paper adds the
    third option — transmitting it into PASSv2 via the DPAPI.  The DPAPI
    backend creates a PASS object per operator (NAME/TYPE/PARAMS), an
    ancestry record per message, and links source/sink file accesses to
    the files PASS knows. *)

module Dpapi = Pass_core.Dpapi
module Ctx = Pass_core.Ctx
module Libpass = Pass_core.Libpass

type event =
  | Operator_created of { actor : string; params : (string * string) list }
  | Transfer of { from_actor : string; to_actor : string; port : string }
  | File_read of { actor : string; path : string }
  | File_written of { actor : string; path : string }
  | Run_started of string
  | Run_finished of string

type t = { record : event -> unit; finish : unit -> unit }

val null : t

val text : write_line:(string -> unit) -> t
(** The text-file backend: one line per event. *)

type relational = {
  mutable operators : (string * string) list;
  mutable transfers : (string * string) list;
  mutable file_events : (string * string * string) list;
}

val relational : unit -> t * relational
(** The relational backend: rows collected per table. *)

val pass :
  lp:Libpass.t ->
  ctx:Ctx.t ->
  handle_of_path:(string -> Dpapi.handle option) ->
  t
(** The DPAPI backend (the paper's contribution). *)
