lib/kepler/workflow.ml: Actor Hashtbl List Printf String
