lib/kepler/challenge.mli: Actor Workflow
