lib/kepler/director.ml: Actor Hashtbl List Printf Recorder Workflow
