lib/kepler/recorder.ml: Hashtbl List Pass_core Printf String
