lib/kepler/kepler_run.mli: Actor Director Recorder System Vfs Workflow
