lib/kepler/challenge.ml: Actor Char List Printf String Workflow
