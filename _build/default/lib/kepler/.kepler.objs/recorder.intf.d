lib/kepler/recorder.mli: Pass_core
