lib/kepler/kepler_run.ml: Actor Buffer Director Kernel Pass_core Recorder String System Vfs
