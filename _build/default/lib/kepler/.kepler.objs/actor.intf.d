lib/kepler/actor.mli:
