lib/kepler/director.mli: Actor Recorder Workflow
