lib/kepler/actor.ml: List
