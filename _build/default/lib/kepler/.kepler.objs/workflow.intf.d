lib/kepler/workflow.mli: Actor
