(** Glue for running workflows as processes on the simulated OS: file
    accesses become system calls (observed by PASS when the kernel is
    provenance-aware) and the DPAPI recorder is wired to the process's
    libpass endpoint. *)

exception Io_error of Vfs.errno

val io_of_system : System.t -> pid:int -> Actor.io
(** Kernel-backed I/O in 4 KB chunks, as process [pid]. *)

type recording = No_recording | Text_file of string | Dpapi
(** The three recorder configurations of paper Section 6.2. *)

val recorder_of : System.t -> pid:int -> recording -> Recorder.t

val run : ?recording:recording -> System.t -> pid:int -> Workflow.t -> Director.result
(** Run [wf] as process [pid]; [recording] defaults to [Dpapi]. *)
