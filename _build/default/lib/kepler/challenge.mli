(** The First Provenance Challenge fMRI workflow [paper ref 24] — the
    workload PA-Kepler runs in the Section 3.1 / Figure 1 scenario:
    4x align_warp → 4x reslice → softmean → 3x slicer → 3x convert,
    producing atlas-x/y/z.gif. *)

val subjects : int list
val planes : string list

val anatomy_file : input_dir:string -> int -> string
val reference_file : input_dir:string -> string
val atlas_file : output_dir:string -> string -> string

val workflow : input_dir:string -> output_dir:string -> Workflow.t

val prepare_inputs : input_dir:string -> ?tweak:string -> Actor.io -> unit
(** Write the synthetic input data set; [tweak] varies the anatomy images
    (used to show input sensitivity). *)
