(* Workflow actors (Kepler calls them operators).

   An actor has named input and output ports, a parameter list (the NAME /
   TYPE / PARAMS provenance of Table 1), and a firing function.  Firing
   consumes one token per input port and produces tokens on output ports;
   actors touching the file system (data sources and sinks) do so through
   the [io] capability, which the director wires to kernel system calls of
   the workflow-engine process — this is precisely what keeps file reads
   and writes visible to PASS below while the token traffic between
   operators is visible only to Kepler above. *)

type token = { data : string; origin : string (* producing actor, for debugging *) }

type io = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  cpu : int -> unit; (* charge simulated CPU nanoseconds *)
}

type t = {
  name : string;
  params : (string * string) list;
  inputs : string list;
  outputs : string list;
  fire : io -> (string * token) list -> (string * token) list;
      (* port-name-keyed inputs -> port-name-keyed outputs *)
}

let make ~name ?(params = []) ~inputs ~outputs fire = { name; params; inputs; outputs; fire }

let token ~origin data = { data; origin }

(* A source actor: reads a file and emits its contents. *)
let file_source ~name ~path =
  make ~name ~params:[ ("fileName", path) ] ~inputs:[] ~outputs:[ "out" ]
    (fun io _ -> [ ("out", token ~origin:name (io.read_file path)) ])

(* A sink actor: writes its input token to a file. *)
let file_sink ~name ~path =
  make ~name
    ~params:[ ("fileName", path); ("confirmOverwrite", "true") ]
    ~inputs:[ "in" ] ~outputs:[]
    (fun io inputs ->
      (match List.assoc_opt "in" inputs with
      | Some tok -> io.write_file path tok.data
      | None -> ());
      [])

(* A pure transformation with one input and one output. *)
let transform ~name ?(params = []) ?(cpu_ns = 0) f =
  make ~name ~params ~inputs:[ "in" ] ~outputs:[ "out" ]
    (fun io inputs ->
      io.cpu cpu_ns;
      match List.assoc_opt "in" inputs with
      | Some tok -> [ ("out", token ~origin:name (f tok.data)) ]
      | None -> [])

(* An n-ary combiner. *)
let combine ~name ?(params = []) ?(cpu_ns = 0) ~inputs f =
  make ~name ~params ~inputs ~outputs:[ "out" ]
    (fun io ins ->
      io.cpu cpu_ns;
      let ordered = List.map (fun port -> (List.assoc port ins).data) inputs in
      [ ("out", token ~origin:name (f ordered)) ])
