(** A workflow: actors plus the channels connecting their ports. *)

type link = {
  from_actor : string;
  from_port : string;
  to_actor : string;
  to_port : string;
}

type t = { wf_name : string; actors : Actor.t list; links : link list }

exception Invalid of string

val create : name:string -> actors:Actor.t list -> links:link list -> t
(** Validates port references, the single-writer rule, and that every
    input port is connected.  @raise Invalid otherwise. *)

val actor : t -> string -> Actor.t
(** @raise Invalid if no actor has that name. *)

val schedule : t -> Actor.t list
(** Topological firing order.  @raise Invalid on a cyclic workflow. *)

val consumers : t -> from_actor:string -> from_port:string -> (string * string) list
(** Who receives tokens produced on an output port. *)
