(* The director executes a workflow: a dataflow schedule where each actor
   fires once all its input ports hold a token.  File access of
   source/sink actors goes through the [Actor.io] capability so the
   system-call layer (and thus PASS) observes it, and every event is
   reported to the configured provenance recorder. *)

type result = {
  fired : string list; (* actors in firing order *)
  tokens_moved : int;
}

exception Stuck of string

let run ?(recorder = Recorder.null) (wf : Workflow.t) (io : Actor.io) =
  recorder.Recorder.record (Recorder.Run_started wf.wf_name);
  List.iter
    (fun (a : Actor.t) ->
      recorder.Recorder.record (Recorder.Operator_created { actor = a.name; params = a.params }))
    wf.actors;
  (* wrap io so file events are reported with the current actor *)
  let current = ref "" in
  let observed_io =
    {
      Actor.read_file =
        (fun path ->
          let data = io.Actor.read_file path in
          recorder.Recorder.record (Recorder.File_read { actor = !current; path });
          data);
      write_file =
        (fun path data ->
          io.Actor.write_file path data;
          recorder.Recorder.record (Recorder.File_written { actor = !current; path }));
      cpu = io.Actor.cpu;
    }
  in
  let mailboxes : (string * string, Actor.token) Hashtbl.t = Hashtbl.create 32 in
  let moved = ref 0 in
  let fired = ref [] in
  let fire (a : Actor.t) =
    let inputs =
      List.map
        (fun port ->
          match Hashtbl.find_opt mailboxes (a.name, port) with
          | Some tok -> (port, tok)
          | None -> raise (Stuck (Printf.sprintf "%s.%s never received a token" a.name port)))
        a.inputs
    in
    current := a.name;
    let outputs = a.fire observed_io inputs in
    fired := a.name :: !fired;
    List.iter
      (fun (port, tok) ->
        List.iter
          (fun (to_actor, to_port) ->
            incr moved;
            recorder.Recorder.record
              (Recorder.Transfer { from_actor = a.name; to_actor; port = to_port });
            Hashtbl.replace mailboxes (to_actor, to_port) tok)
          (Workflow.consumers wf ~from_actor:a.name ~from_port:port))
      outputs
  in
  List.iter fire (Workflow.schedule wf);
  recorder.Recorder.record (Recorder.Run_finished wf.wf_name);
  recorder.Recorder.finish ();
  { fired = List.rev !fired; tokens_moved = !moved }
