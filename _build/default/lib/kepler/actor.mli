(** Workflow actors (Kepler's operators).

    An actor has named ports, parameters (the NAME/TYPE/PARAMS provenance
    of Table 1), and a firing function.  File-touching actors go through
    the {!io} capability, which the director wires to kernel system calls
    — keeping file I/O visible to PASS below while inter-operator token
    traffic is visible only to the workflow layer above. *)

type token = { data : string; origin : string }

type io = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  cpu : int -> unit;  (** charge simulated CPU nanoseconds *)
}

type t = {
  name : string;
  params : (string * string) list;
  inputs : string list;
  outputs : string list;
  fire : io -> (string * token) list -> (string * token) list;
}

val make :
  name:string ->
  ?params:(string * string) list ->
  inputs:string list ->
  outputs:string list ->
  (io -> (string * token) list -> (string * token) list) ->
  t

val token : origin:string -> string -> token

val file_source : name:string -> path:string -> t
(** Reads [path] and emits its contents on port ["out"]. *)

val file_sink : name:string -> path:string -> t
(** Writes port ["in"]'s token to [path]. *)

val transform :
  name:string -> ?params:(string * string) list -> ?cpu_ns:int -> (string -> string) -> t
(** One input, one output, pure. *)

val combine :
  name:string ->
  ?params:(string * string) list ->
  ?cpu_ns:int ->
  inputs:string list ->
  (string list -> string) ->
  t
(** N inputs combined in port order. *)
