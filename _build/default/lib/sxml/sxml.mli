(** A small XML parser and printer.

    The substrate for the PA-Python thermography use case (paper, Section
    3.3), whose experiment logs are XML files.  Supports elements,
    attributes, text, self-closing tags, declarations, comments and the
    five standard entities; no DTDs, namespaces or CDATA. *)

type node =
  | Element of element
  | Text of string

and element = { tag : string; attrs : (string * string) list; children : node list }

exception Parse_error of string * int

val parse : string -> element
(** Parse a whole document (prolog allowed) to its root element.
    @raise Parse_error. *)

val to_string : element -> string
(** Serialize (entities re-encoded); [parse] of the result is stable. *)

val attr : element -> string -> string option
val children_named : element -> string -> element list
val first_child : element -> string -> element option
val text_content : element -> string

val find_all : element -> string -> element list
(** All descendants with the given tag, in document order. *)

val decode_entities : string -> string
val encode_entities : string -> string
