(* A small XML parser/printer — the substrate for the PA-Python
   thermography use case (paper §3.3), whose experiment logs live in a
   series of XML files.

   Supports elements, attributes, text nodes, self-closing tags, XML
   declarations, comments, and the five standard entities.  No DTDs,
   namespaces or CDATA — the data acquisition files do not need them. *)

type node =
  | Element of element
  | Text of string

and element = { tag : string; attrs : (string * string) list; children : node list }

exception Parse_error of string * int (* message, position *)

let fail msg pos = raise (Parse_error (msg, pos))

(* --- entities -------------------------------------------------------------- *)

let decode_entities s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | Some j when j - !i <= 6 ->
          (match String.sub s (!i + 1) (j - !i - 1) with
          | "amp" -> Buffer.add_char buf '&'
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | other -> fail ("unknown entity &" ^ other ^ ";") !i);
          i := j + 1
      | _ -> fail "unterminated entity" !i
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let encode_entities s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- parser ---------------------------------------------------------------- *)

type state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.input
    && (match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  if peek st = Some c then st.pos <- st.pos + 1
  else fail (Printf.sprintf "expected %C" c) st.pos

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.'

let parse_name st =
  let start = st.pos in
  while st.pos < String.length st.input && is_name_char st.input.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail "expected a name" st.pos;
  String.sub st.input start (st.pos - start)

let parse_attr_value st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
        st.pos <- st.pos + 1;
        q
    | _ -> fail "expected quoted attribute value" st.pos
  in
  let start = st.pos in
  (match String.index_from_opt st.input st.pos quote with
  | Some j -> st.pos <- j + 1
  | None -> fail "unterminated attribute value" st.pos);
  decode_entities (String.sub st.input start (st.pos - 1 - start))

let parse_attrs st =
  let rec loop acc =
    skip_ws st;
    match peek st with
    | Some c when is_name_char c ->
        let name = parse_name st in
        skip_ws st;
        expect st '=';
        skip_ws st;
        let value = parse_attr_value st in
        loop ((name, value) :: acc)
    | _ -> List.rev acc
  in
  loop []

let skip_prolog st =
  let rec loop () =
    skip_ws st;
    if st.pos + 1 < String.length st.input && st.input.[st.pos] = '<' then
      match st.input.[st.pos + 1] with
      | '?' -> (
          match
            (* <?xml ... ?> *)
            String.index_from_opt st.input st.pos '>'
          with
          | Some j ->
              st.pos <- j + 1;
              loop ()
          | None -> fail "unterminated processing instruction" st.pos)
      | '!' -> (
          (* comment <!-- ... --> *)
          match String.index_from_opt st.input st.pos '>' with
          | Some j ->
              st.pos <- j + 1;
              loop ()
          | None -> fail "unterminated comment" st.pos)
      | _ -> ()
  in
  loop ()

let rec parse_element st =
  expect st '<';
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_ws st;
  match peek st with
  | Some '/' ->
      st.pos <- st.pos + 1;
      expect st '>';
      { tag; attrs; children = [] }
  | Some '>' ->
      st.pos <- st.pos + 1;
      let children = parse_children st tag in
      { tag; attrs; children }
  | _ -> fail "malformed tag" st.pos

and parse_children st tag =
  let children = ref [] in
  let closed = ref false in
  while not !closed do
    if st.pos >= String.length st.input then fail ("unclosed element " ^ tag) st.pos
    else if st.input.[st.pos] = '<' then
      if st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = '/' then begin
        st.pos <- st.pos + 2;
        let closing = parse_name st in
        if not (String.equal closing tag) then
          fail (Printf.sprintf "mismatched close: <%s> vs </%s>" tag closing) st.pos;
        skip_ws st;
        expect st '>';
        closed := true
      end
      else if st.pos + 3 < String.length st.input && String.sub st.input st.pos 4 = "<!--" then begin
        match String.index_from_opt st.input st.pos '>' with
        | Some j -> st.pos <- j + 1
        | None -> fail "unterminated comment" st.pos
      end
      else children := Element (parse_element st) :: !children
    else begin
      let next_tag =
        match String.index_from_opt st.input st.pos '<' with
        | Some j -> j
        | None -> String.length st.input
      in
      let text = decode_entities (String.sub st.input st.pos (next_tag - st.pos)) in
      if String.trim text <> "" then children := Text text :: !children;
      st.pos <- next_tag
    end
  done;
  List.rev !children

let parse input =
  let st = { input; pos = 0 } in
  skip_prolog st;
  skip_ws st;
  let root = parse_element st in
  skip_ws st;
  if st.pos <> String.length input then fail "trailing content after root element" st.pos;
  root

(* --- printer --------------------------------------------------------------- *)

let rec print_node buf = function
  | Text t -> Buffer.add_string buf (encode_entities t)
  | Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (encode_entities v);
          Buffer.add_char buf '"')
        e.attrs;
      if e.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (print_node buf) e.children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>'
      end

let to_string root =
  let buf = Buffer.create 256 in
  print_node buf (Element root);
  Buffer.contents buf

(* --- accessors ------------------------------------------------------------- *)

let attr e name = List.assoc_opt name e.attrs

let children_named e tag =
  List.filter_map
    (function Element c when String.equal c.tag tag -> Some c | Element _ | Text _ -> None)
    e.children

let first_child e tag = match children_named e tag with c :: _ -> Some c | [] -> None

let text_content e =
  String.concat ""
    (List.filter_map (function Text t -> Some t | Element _ -> None) e.children)

let rec find_all e tag =
  let here = children_named e tag in
  here @ List.concat_map (fun c -> find_all c tag)
           (List.filter_map (function Element c -> Some c | Text _ -> None) e.children)
