(** Little-endian wire primitives.

    Shared by the provenance record format, the ext3 journal, the Lasagna
    WAP log and the PA-NFS protocol, so every on-disk and on-wire format in
    the system decodes the same way. *)

exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with a formatted message. *)

val put_u8 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit
val put_bool : Buffer.t -> bool -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

val get_u8 : string -> int ref -> int
val get_u32 : string -> int ref -> int
val get_i64 : string -> int ref -> int
val get_string : string -> int ref -> string
val get_bool : string -> int ref -> bool
val get_list : (string -> int ref -> 'a) -> string -> int ref -> 'a list
