(* Little-endian wire primitives shared by the provenance record format,
   the ext3 journal, the Lasagna WAP log and the PA-NFS protocol. *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let put_u8 buf n =
  if n < 0 || n > 0xff then invalid_arg "Wire.put_u8";
  Buffer.add_char buf (Char.chr n)

let put_u32 buf n =
  if n < 0 || n > 0xffffffff then invalid_arg "Wire.put_u32";
  Buffer.add_int32_le buf (Int32.of_int n)

let put_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_bool buf b = put_u8 buf (if b then 1 else 0)

let put_list buf put xs =
  put_u32 buf (List.length xs);
  List.iter (put buf) xs

let get_u8 s pos =
  if !pos + 1 > String.length s then corrupt "truncated u8";
  let c = Char.code s.[!pos] in
  incr pos;
  c

let get_u32 s pos =
  if !pos + 4 > String.length s then corrupt "truncated u32";
  let n = Int32.to_int (String.get_int32_le s !pos) land 0xffffffff in
  pos := !pos + 4;
  n

let get_i64 s pos =
  if !pos + 8 > String.length s then corrupt "truncated i64";
  let n = Int64.to_int (String.get_int64_le s !pos) in
  pos := !pos + 8;
  n

let get_string s pos =
  let len = get_u32 s pos in
  if !pos + len > String.length s then corrupt "truncated string (%d bytes)" len;
  let out = String.sub s !pos len in
  pos := !pos + len;
  out

let get_bool s pos = get_u8 s pos <> 0

let get_list get s pos =
  let n = get_u32 s pos in
  let rec loop k acc = if k = 0 then List.rev acc else loop (k - 1) (get s pos :: acc) in
  loop n []
