(* Graphviz export of a provenance database, for eyeballing the graphs
   the use cases produce (and the closest thing to the paper's hand-drawn
   figures).  Files are boxes, processes are ellipses, other virtual
   objects (sessions, operators, invocations, data sets) are rounded
   boxes; ancestry edges are labeled with their attribute when it is not
   plain INPUT. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> match c with '"' | '\\' -> Buffer.add_char buf '_' | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_label db (n : Provdb.node) =
  let name = Option.value n.node_name ~default:(Printf.sprintf "p%d" (Pnode.to_int n.pnode)) in
  let ty =
    List.find_map
      (fun (q : Provdb.quad) ->
        if String.equal q.q_attr "TYPE" then
          match q.q_value with Pvalue.Str s -> Some s | _ -> None
        else None)
      (Provdb.records_all db n.pnode)
  in
  (name, ty)

let node_shape kind ty =
  match (kind, ty) with
  | Provdb.File, _ -> "box"
  | Provdb.Virtual, Some "PROCESS" -> "ellipse"
  | Provdb.Virtual, _ -> "box, style=rounded"

(* Render the whole database, or only the ancestry cone of [roots]. *)
let to_dot ?roots db =
  let keep =
    match roots with
    | None -> fun _ -> true
    | Some pnodes ->
        let included = Hashtbl.create 64 in
        List.iter
          (fun p ->
            Hashtbl.replace included p ();
            let n = Provdb.find_node db p in
            let version = match n with Some n -> n.Provdb.max_version | None -> 0 in
            List.iter
              (fun (a, _) -> Hashtbl.replace included a ())
              (Provdb.ancestors db p ~version))
          pnodes;
        fun p -> Hashtbl.mem included p
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph provenance {\n  rankdir=BT;\n  node [fontsize=10];\n";
  List.iter
    (fun (n : Provdb.node) ->
      if keep n.pnode then begin
        let name, ty = node_label db n in
        let versions = n.max_version + 1 in
        let label =
          if versions > 1 then Printf.sprintf "%s (v0..%d)" name n.max_version else name
        in
        Buffer.add_string buf
          (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" (Pnode.to_int n.pnode)
             (escape label) (node_shape n.kind ty))
      end)
    (Provdb.all_nodes db);
  (* edges: collapse versions (one edge per distinct (src, attr, dst)) *)
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (n : Provdb.node) ->
      if keep n.pnode then
        List.iter
          (fun (_v, attr, (x : Pvalue.xref)) ->
            if keep x.pnode && not (Pnode.equal x.pnode n.pnode) then begin
              let key = (n.pnode, attr, x.pnode) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                let label = if String.equal attr "INPUT" then "" else
                    Printf.sprintf " [label=\"%s\", fontsize=8]" (escape attr)
                in
                Buffer.add_string buf
                  (Printf.sprintf "  n%d -> n%d%s;\n" (Pnode.to_int n.pnode)
                     (Pnode.to_int x.pnode) label)
              end
            end)
          (Provdb.out_edges_all db n.pnode))
    (Provdb.all_nodes db);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
