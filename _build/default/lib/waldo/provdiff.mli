(** Ancestry diffing.

    Answers the paper's opening motivating question — "How does the
    ancestry of two objects differ?" — by comparing transitive ancestries
    at object granularity: ancestors unique to each side, and ancestors
    present on both sides at different versions (the Section 3.1 anomaly
    signature). *)

module Pnode = Pass_core.Pnode

type side = { s_pnode : Pnode.t; s_version : int }

type entry = {
  e_pnode : Pnode.t;
  e_name : string option;
  versions_a : int list;
  versions_b : int list;
}

type t = {
  only_a : entry list;
  only_b : entry list;
  version_changed : entry list;
  common : int;
}

val diff : Provdb.t -> a:side -> b:side -> t

val diff_versions : Provdb.t -> Pnode.t -> version_a:int -> version_b:int -> t
(** The Section 3.1 shape: two versions (runs) of the same object. *)

val diff_by_name : Provdb.t -> name_a:string -> name_b:string -> t option
(** Diff two named objects at their latest versions; [None] if either
    name is unknown. *)

val files_only : Provdb.t -> t -> t
(** Keep only file ancestors (drop per-run virtual objects, whose fresh
    pnodes would dominate a run-to-run diff). *)

val pp : Format.formatter -> t -> unit
