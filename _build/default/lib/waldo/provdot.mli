(** Graphviz export of a provenance database.

    Files render as boxes, processes as ellipses, other application
    objects as rounded boxes; version chains collapse to one node. *)

val to_dot : ?roots:Pass_core.Pnode.t list -> Provdb.t -> string
(** [to_dot db] renders the whole graph; with [roots] only the ancestry
    cones of those objects. *)
