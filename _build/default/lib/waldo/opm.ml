(* Open-Provenance-Model-style XML export.

   The paper's Section 2 leans on the Provenance Challenges [24, 25],
   whose community converged on OPM as the interchange format: artifacts
   (our files and file versions), processes (our process objects), agents
   (not modelled here), and the used / wasGeneratedBy / wasTriggeredBy /
   wasDerivedFrom dependency edges.  This module maps a Provdb graph onto
   that vocabulary, reusing the Sxml printer, so a PASSv2 database can be
   handed to challenge-style tooling.

   Mapping:
   - a File node at version v        -> <artifact id="a<pnode>_<v>">
   - a Virtual node typed PROCESS    -> <process id="p<pnode>">
   - any other virtual node          -> <artifact> (sessions, data sets,
     operators and invocations are artifacts in OPM terms)
   - edge process -> artifact        -> <used>
   - edge artifact -> process        -> <wasGeneratedBy>
   - edge process -> process         -> <wasTriggeredBy>
   - edge artifact -> artifact       -> <wasDerivedFrom> *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue

let is_process db pnode =
  List.exists
    (fun (q : Provdb.quad) -> q.q_attr = "TYPE" && q.q_value = Pvalue.Str "PROCESS")
    (Provdb.records_all db pnode)

let artifact_id p v = Printf.sprintf "a%d_%d" (Pnode.to_int p) v
let process_id p = Printf.sprintf "p%d" (Pnode.to_int p)

let node_id db p v = if is_process db p then process_id p else artifact_id p v

let label db p =
  match Provdb.name_of db p with
  | Some n -> n
  | None -> Printf.sprintf "pnode-%d" (Pnode.to_int p)

let ref_el tag target = { Sxml.tag; attrs = [ ("ref", target) ]; children = [] }

let export db =
  let artifacts = ref [] in
  let processes = ref [] in
  let dependencies = ref [] in
  List.iter
    (fun (n : Provdb.node) ->
      let p = n.pnode in
      if is_process db p then
        processes :=
          { Sxml.tag = "process";
            attrs = [ ("id", process_id p); ("label", label db p) ];
            children = [] }
          :: !processes
      else
        List.iter
          (fun v ->
            artifacts :=
              { Sxml.tag = "artifact";
                attrs =
                  [ ("id", artifact_id p v); ("label", label db p);
                    ("version", string_of_int v) ];
                children = [] }
              :: !artifacts)
          (Provdb.versions db p);
      (* dependency edges *)
      List.iter
        (fun (v, _attr, (x : Pvalue.xref)) ->
          let src_proc = is_process db p and dst_proc = is_process db x.pnode in
          let cause = node_id db x.pnode x.version in
          let effect = node_id db p v in
          let dep =
            match (src_proc, dst_proc) with
            | true, false ->
                { Sxml.tag = "used"; attrs = [];
                  children =
                    [ Sxml.Element (ref_el "effect" effect);
                      Sxml.Element (ref_el "cause" cause) ] }
            | false, true ->
                { Sxml.tag = "wasGeneratedBy"; attrs = [];
                  children =
                    [ Sxml.Element (ref_el "effect" effect);
                      Sxml.Element (ref_el "cause" cause) ] }
            | true, true ->
                { Sxml.tag = "wasTriggeredBy"; attrs = [];
                  children =
                    [ Sxml.Element (ref_el "effect" effect);
                      Sxml.Element (ref_el "cause" cause) ] }
            | false, false ->
                { Sxml.tag = "wasDerivedFrom"; attrs = [];
                  children =
                    [ Sxml.Element (ref_el "effect" effect);
                      Sxml.Element (ref_el "cause" cause) ] }
          in
          dependencies := dep :: !dependencies)
        (Provdb.out_edges_all db p))
    (Provdb.all_nodes db);
  let wrap tag children = { Sxml.tag; attrs = []; children = List.map (fun e -> Sxml.Element e) children } in
  {
    Sxml.tag = "opmGraph";
    attrs = [ ("xmlns", "http://openprovenance.org/model/v1.01.a") ];
    children =
      [
        Sxml.Element (wrap "artifacts" (List.rev !artifacts));
        Sxml.Element (wrap "processes" (List.rev !processes));
        Sxml.Element (wrap "dependencies" (List.rev !dependencies));
      ];
  }

let to_string db = Sxml.to_string (export db)
