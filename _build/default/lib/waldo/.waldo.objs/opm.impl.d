lib/waldo/opm.ml: List Pass_core Printf Provdb Sxml
