lib/waldo/waldo.ml: Hashtbl Lasagna List Logs Option Pass_core Provdb Result String Vfs Wap_log Wire
