lib/waldo/waldo.mli: Lasagna Provdb Vfs
