lib/waldo/provdot.ml: Buffer Hashtbl List Option Pass_core Printf Provdb String
