lib/waldo/provdiff.ml: Format Hashtbl List Option Pass_core Printf Provdb String
