lib/waldo/opm.mli: Provdb Sxml
