lib/waldo/provdb.mli: Pass_core
