lib/waldo/provdot.mli: Pass_core Provdb
