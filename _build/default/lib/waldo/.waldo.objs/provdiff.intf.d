lib/waldo/provdiff.mli: Format Pass_core Provdb
