lib/waldo/provdb.ml: Buffer Fun Hashtbl List Option Pass_core String Wire
