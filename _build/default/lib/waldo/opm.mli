(** Open-Provenance-Model-style XML export.

    Maps a provenance database onto the OPM vocabulary the Provenance
    Challenges (paper refs 24, 25) converged on: artifacts, processes,
    and used / wasGeneratedBy / wasTriggeredBy / wasDerivedFrom
    dependencies. *)

val export : Provdb.t -> Sxml.element
(** The [<opmGraph>] element. *)

val to_string : Provdb.t -> string
