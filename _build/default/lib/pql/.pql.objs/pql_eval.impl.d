lib/pql/pql_eval.ml: Bool Hashtbl List Option Pass_core Pql_ast Printf Provdb String
