lib/pql/pql.ml: Format List Option Pass_core Pql_ast Pql_eval Pql_lexer Pql_parser Printf Provdb String
