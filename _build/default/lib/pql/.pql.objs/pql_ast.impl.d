lib/pql/pql_ast.ml: Format
