lib/pql/pql_lexer.ml: Buffer List Printf String
