lib/pql/pql.mli: Format Pass_core Pql_ast Pql_eval Provdb
