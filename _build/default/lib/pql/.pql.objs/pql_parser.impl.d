lib/pql/pql_parser.ml: Array List Pql_ast Pql_lexer Printf String
