lib/pql/pql_print.ml: Buffer List Pql_ast Printf
