(* PQL front end: parse, evaluate, render.

   The typical query returns a set of values; nodes render as
   name(pnode.version) so results are readable in examples and the CLI. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue

type result = { columns : string list; rows : Pql_eval.item list list }

exception Error of string

let parse input =
  try Pql_parser.parse input with
  | Pql_parser.Error msg -> raise (Error ("parse error: " ^ msg))
  | Pql_lexer.Error (msg, pos) ->
      raise (Error (Printf.sprintf "lex error at %d: %s" pos msg))

let rec column_name = function
  | Pql_ast.O_expr (Pql_ast.Var v) -> v
  | Pql_ast.O_expr (Pql_ast.Attr (v, a)) -> v ^ "." ^ a
  | Pql_ast.O_expr (Pql_ast.Lit _) -> "literal"
  | Pql_ast.O_agg (agg, e) ->
      let f =
        match agg with
        | Pql_ast.Count -> "count"
        | Pql_ast.Sum -> "sum"
        | Pql_ast.Min -> "min"
        | Pql_ast.Max -> "max"
        | Pql_ast.Avg -> "avg"
      in
      Printf.sprintf "%s(%s)" f (column_name (Pql_ast.O_expr e))

let query db input =
  let q = parse input in
  let rows = try Pql_eval.run db q with Pql_eval.Error msg -> raise (Error msg) in
  { columns = List.map column_name q.select; rows }

let render_item db = function
  | Pql_eval.Value (Pvalue.Str s) -> s
  | Pql_eval.Value (Pvalue.Int i) -> string_of_int i
  | Pql_eval.Value (Pvalue.Bool b) -> string_of_bool b
  | Pql_eval.Value (Pvalue.Bytes b) -> Printf.sprintf "<%d bytes>" (String.length b)
  | Pql_eval.Value (Pvalue.Strs l) -> "[" ^ String.concat " " l ^ "]"
  | Pql_eval.Value (Pvalue.Xref x) ->
      Printf.sprintf "%s.%d"
        (Option.value (Provdb.name_of db x.pnode) ~default:(Format.asprintf "%a" Pnode.pp x.pnode))
        x.version
  | Pql_eval.Node (p, v) ->
      Printf.sprintf "%s.%d"
        (Option.value (Provdb.name_of db p) ~default:(Format.asprintf "%a" Pnode.pp p))
        v

let render db result =
  List.map (fun row -> List.map (render_item db) row) result.rows

let pp db ppf result =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " result.columns);
  List.iter
    (fun row -> Format.fprintf ppf "%s@," (String.concat " | " (List.map (render_item db) row)))
    result.rows;
  Format.fprintf ppf "(%d rows)@]" (List.length result.rows)

(* Convenience used by examples and tests: the set of node names a
   single-column query returns. *)
let names db input =
  let r = query db input in
  List.filter_map
    (fun row ->
      match row with
      | [ Pql_eval.Node (p, _) ] -> Provdb.name_of db p
      | [ Pql_eval.Value (Pvalue.Str s) ] -> Some s
      | _ -> None)
    r.rows
  |> List.sort_uniq String.compare

(* The set of distinct node pnodes a single-column query returns. *)
let nodes db input =
  let r = query db input in
  List.filter_map (fun row -> match row with [ Pql_eval.Node (p, _) ] -> Some p | _ -> None) r.rows
  |> List.sort_uniq Pnode.compare
