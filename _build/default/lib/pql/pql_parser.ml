(* Recursive-descent parser for PQL.

   Notable grammar points, following the paper's sample query:
   - sources in the FROM clause may be separated by commas *or* simply
     juxtaposed (the paper writes one per line with no separator);
   - every source is bound with `as` (paths are first-class: the binder
     names the set of endpoints the path reaches);
   - path operators *, +, ? bind tighter than `.` sequencing; grouping and
     alternation use parentheses, inversion uses ^. *)

open Pql_ast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type state = { tokens : Pql_lexer.token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else Pql_lexer.EOF
let advance st = st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %s but found %s" (Pql_lexer.token_to_string tok) (Pql_lexer.token_to_string (peek st))

let expect_ident st =
  match peek st with
  | Pql_lexer.IDENT s ->
      advance st;
      s
  | t -> fail "expected identifier, found %s" (Pql_lexer.token_to_string t)

(* --- path expressions ----------------------------------------------------- *)

let rec parse_path_alt st =
  let first = parse_path_seq st in
  let rec loop acc =
    if peek st = Pql_lexer.PIPE then begin
      advance st;
      loop (Alt (acc, parse_path_seq st))
    end
    else acc
  in
  loop first

and parse_path_seq st =
  let first = parse_path_term st in
  let rec loop acc =
    (* sequencing continues over '.' when followed by a path atom *)
    match (peek st, peek2 st) with
    | Pql_lexer.DOT, (Pql_lexer.IDENT _ | Pql_lexer.CARET | Pql_lexer.UNDERSCORE | Pql_lexer.LPAREN) ->
        advance st;
        loop (Seq (acc, parse_path_term st))
    | _ -> acc
  in
  loop first

and parse_path_term st =
  let atom = parse_path_atom st in
  let rec quantify acc =
    match peek st with
    | Pql_lexer.STAR ->
        advance st;
        quantify (Star acc)
    | Pql_lexer.PLUS ->
        advance st;
        quantify (Plus acc)
    | Pql_lexer.QMARK ->
        advance st;
        quantify (Opt acc)
    | _ -> acc
  in
  quantify atom

and parse_path_atom st =
  match peek st with
  | Pql_lexer.IDENT name ->
      advance st;
      Edge (Forward name)
  | Pql_lexer.CARET ->
      advance st;
      Edge (Inverse (expect_ident st))
  | Pql_lexer.UNDERSCORE ->
      advance st;
      Edge Any_edge
  | Pql_lexer.LPAREN ->
      advance st;
      let p = parse_path_alt st in
      expect st Pql_lexer.RPAREN;
      p
  | t -> fail "expected a path step, found %s" (Pql_lexer.token_to_string t)

(* --- sources -------------------------------------------------------------- *)

let parse_source st =
  let first = expect_ident st in
  let root, path =
    if String.lowercase_ascii first = "provenance" then begin
      expect st Pql_lexer.DOT;
      let cls = expect_ident st in
      let root =
        match String.lowercase_ascii cls with
        | "file" | "files" -> Root_files
        | "process" | "processes" -> Root_processes
        | "object" | "objects" | "node" | "nodes" -> Root_objects
        | other -> fail "unknown provenance class %S" other
      in
      let path =
        match (peek st, peek2 st) with
        | Pql_lexer.DOT, (Pql_lexer.IDENT _ | Pql_lexer.CARET | Pql_lexer.UNDERSCORE | Pql_lexer.LPAREN) ->
            advance st;
            Some (parse_path_alt st)
        | _ -> None
      in
      (root, path)
    end
    else begin
      let path =
        match (peek st, peek2 st) with
        | Pql_lexer.DOT, (Pql_lexer.IDENT _ | Pql_lexer.CARET | Pql_lexer.UNDERSCORE | Pql_lexer.LPAREN) ->
            advance st;
            Some (parse_path_alt st)
        | _ -> None
      in
      (Root_var first, path)
    end
  in
  expect st Pql_lexer.AS;
  let binder = expect_ident st in
  { root; path; binder }

let parse_sources st =
  let rec loop acc =
    let src = parse_source st in
    let acc = src :: acc in
    match peek st with
    | Pql_lexer.COMMA ->
        advance st;
        loop acc
    | Pql_lexer.IDENT _ -> loop acc (* juxtaposed sources, as in the paper *)
    | _ -> List.rev acc
  in
  loop []

(* --- expressions and conditions ------------------------------------------- *)

let parse_expr st =
  match peek st with
  | Pql_lexer.STRING s ->
      advance st;
      Lit (L_str s)
  | Pql_lexer.INT i ->
      advance st;
      Lit (L_int i)
  | Pql_lexer.TRUE ->
      advance st;
      Lit (L_bool true)
  | Pql_lexer.FALSE ->
      advance st;
      Lit (L_bool false)
  | Pql_lexer.IDENT v -> (
      advance st;
      match (peek st, peek2 st) with
      | Pql_lexer.DOT, Pql_lexer.IDENT _ ->
          advance st;
          let attr = expect_ident st in
          Attr (v, attr)
      | _ -> Var v)
  | t -> fail "expected expression, found %s" (Pql_lexer.token_to_string t)

let cmp_of_token = function
  | Pql_lexer.EQ -> Some Eq
  | Pql_lexer.NEQ -> Some Neq
  | Pql_lexer.LT -> Some Lt
  | Pql_lexer.LE -> Some Le
  | Pql_lexer.GT -> Some Gt
  | Pql_lexer.GE -> Some Ge
  | Pql_lexer.TILDE -> Some Like
  | _ -> None

let rec parse_cond st = parse_or st

and parse_or st =
  let first = parse_and st in
  let rec loop acc =
    if peek st = Pql_lexer.OR then begin
      advance st;
      loop (Or (acc, parse_and st))
    end
    else acc
  in
  loop first

and parse_and st =
  let first = parse_not st in
  let rec loop acc =
    if peek st = Pql_lexer.AND then begin
      advance st;
      loop (And (acc, parse_not st))
    end
    else acc
  in
  loop first

and parse_not st =
  if peek st = Pql_lexer.NOT then begin
    advance st;
    Not (parse_not st)
  end
  else parse_primary_cond st

and parse_primary_cond st =
  match peek st with
  | Pql_lexer.EXISTS ->
      advance st;
      expect st Pql_lexer.LPAREN;
      let q = parse_query st in
      expect st Pql_lexer.RPAREN;
      Exists q
  | Pql_lexer.LPAREN when peek2 st <> Pql_lexer.SELECT ->
      advance st;
      let c = parse_cond st in
      expect st Pql_lexer.RPAREN;
      c
  | _ -> (
      let lhs = parse_expr st in
      match peek st with
      | Pql_lexer.IN ->
          advance st;
          expect st Pql_lexer.LPAREN;
          let q = parse_query st in
          expect st Pql_lexer.RPAREN;
          In_query (lhs, q)
      | t -> (
          match cmp_of_token t with
          | Some op ->
              advance st;
              Cmp (lhs, op, parse_expr st)
          | None -> fail "expected comparison, found %s" (Pql_lexer.token_to_string t)))

(* --- outputs and the query ------------------------------------------------ *)

and parse_output st =
  let agg =
    match peek st with
    | Pql_lexer.COUNT -> Some Count
    | Pql_lexer.SUM -> Some Sum
    | Pql_lexer.MIN -> Some Min
    | Pql_lexer.MAX -> Some Max
    | Pql_lexer.AVG -> Some Avg
    | _ -> None
  in
  match agg with
  | Some a ->
      advance st;
      expect st Pql_lexer.LPAREN;
      let e = parse_expr st in
      expect st Pql_lexer.RPAREN;
      O_agg (a, e)
  | None -> O_expr (parse_expr st)

and parse_query st =
  expect st Pql_lexer.SELECT;
  if peek st = Pql_lexer.DISTINCT then advance st;
  let first = parse_output st in
  let rec more acc =
    if peek st = Pql_lexer.COMMA then begin
      advance st;
      more (parse_output st :: acc)
    end
    else List.rev acc
  in
  let select = more [ first ] in
  expect st Pql_lexer.FROM;
  let froms = parse_sources st in
  let where =
    if peek st = Pql_lexer.WHERE then begin
      advance st;
      Some (parse_cond st)
    end
    else None
  in
  let order =
    if peek st = Pql_lexer.ORDER then begin
      advance st;
      expect st Pql_lexer.BY;
      let e = parse_expr st in
      let descending =
        match peek st with
        | Pql_lexer.DESC ->
            advance st;
            true
        | Pql_lexer.ASC ->
            advance st;
            false
        | _ -> false
      in
      Some (e, descending)
    end
    else None
  in
  let limit =
    if peek st = Pql_lexer.LIMIT then begin
      advance st;
      match peek st with
      | Pql_lexer.INT n ->
          advance st;
          Some n
      | t -> fail "limit expects an integer, found %s" (Pql_lexer.token_to_string t)
    end
    else None
  in
  { select; froms; where; order; limit }

let parse input =
  let tokens = Array.of_list (Pql_lexer.tokenize input) in
  let st = { tokens; pos = 0 } in
  let q = parse_query st in
  if peek st <> Pql_lexer.EOF then
    fail "trailing tokens after query: %s" (Pql_lexer.token_to_string (peek st));
  q
