(** PQL front end (paper, Section 5.7).

    The general structure of a PQL query is
    [select outputs from sources where condition]: sources are path
    expressions bound with [as]; path matching uses regular expressions
    over graph edges ([*], [+], [?], [( | )], [^] for inversion, [_] for
    any edge); conditions are boolean predicates with subqueries
    ([exists], [in]) and aggregation ([count]/[sum]/[min]/[max]/[avg]);
    [order by] and [limit] prune results. *)

type result = { columns : string list; rows : Pql_eval.item list list }

exception Error of string

val parse : string -> Pql_ast.query
(** @raise Error on lexing or parsing failure. *)

val query : Provdb.t -> string -> result
(** Parse and evaluate.  @raise Error. *)

val render_item : Provdb.t -> Pql_eval.item -> string
(** Nodes render as [name.version]. *)

val render : Provdb.t -> result -> string list list
val pp : Provdb.t -> Format.formatter -> result -> unit

val names : Provdb.t -> string -> string list
(** The sorted, distinct node names a single-column query returns —
    the convenience used throughout examples and tests. *)

val nodes : Provdb.t -> string -> Pass_core.Pnode.t list
