(* Hand-written tokenizer for PQL.  Keywords are case-insensitive, like the
   SQL family; identifiers keep their spelling (attribute matching
   upcases separately). *)

type token =
  | SELECT
  | FROM
  | WHERE
  | AS
  | AND
  | OR
  | NOT
  | EXISTS
  | IN
  | DISTINCT
  | ORDER
  | BY
  | ASC
  | DESC
  | LIMIT
  | COUNT
  | SUM
  | MIN
  | MAX
  | AVG
  | TRUE
  | FALSE
  | IDENT of string
  | STRING of string
  | INT of int
  | DOT
  | COMMA
  | STAR
  | PLUS
  | QMARK
  | PIPE
  | CARET
  | UNDERSCORE
  | LPAREN
  | RPAREN
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | TILDE
  | EOF

exception Error of string * int (* message, position *)

let keyword_of s =
  match String.lowercase_ascii s with
  | "select" -> Some SELECT
  | "from" -> Some FROM
  | "where" -> Some WHERE
  | "as" -> Some AS
  | "and" -> Some AND
  | "or" -> Some OR
  | "not" -> Some NOT
  | "exists" -> Some EXISTS
  | "in" -> Some IN
  | "distinct" -> Some DISTINCT
  | "limit" -> Some LIMIT
  | "order" -> Some ORDER
  | "by" -> Some BY
  | "asc" -> Some ASC
  | "desc" -> Some DESC
  | "count" -> Some COUNT
  | "sum" -> Some SUM
  | "min" -> Some MIN
  | "max" -> Some MAX
  | "avg" -> Some AVG
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* -- line comment *)
      while !i < n && input.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do incr i done;
      let word = String.sub input start (!i - start) in
      (* `_` alone is the any-edge wildcard *)
      if String.equal word "_" then emit UNDERSCORE
      else
        match keyword_of word with Some k -> emit k | None -> emit (IDENT word)
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do incr i done;
      emit (INT (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '"' || c = '\'' then begin
      let quote = c in
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        let d = input.[!i] in
        if d = quote then begin
          closed := true;
          incr i
        end
        else if d = '\\' && !i + 1 < n then begin
          Buffer.add_char buf input.[!i + 1];
          i := !i + 2
        end
        else begin
          Buffer.add_char buf d;
          incr i
        end
      done;
      if not !closed then raise (Error ("unterminated string", n));
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "!=" | "<>" ->
          emit NEQ;
          i := !i + 2
      | "<=" ->
          emit LE;
          i := !i + 2
      | ">=" ->
          emit GE;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '.' -> emit DOT
          | ',' -> emit COMMA
          | '*' -> emit STAR
          | '+' -> emit PLUS
          | '?' -> emit QMARK
          | '|' -> emit PIPE
          | '^' -> emit CARET
          | '(' -> emit LPAREN
          | ')' -> emit RPAREN
          | '=' -> emit EQ
          | '<' -> emit LT
          | '>' -> emit GT
          | '~' -> emit TILDE
          | c -> raise (Error (Printf.sprintf "unexpected character %C" c, !i - 1)))
    end
  done;
  emit EOF;
  List.rev !tokens

let token_to_string = function
  | SELECT -> "select"
  | FROM -> "from"
  | WHERE -> "where"
  | AS -> "as"
  | AND -> "and"
  | OR -> "or"
  | NOT -> "not"
  | EXISTS -> "exists"
  | IN -> "in"
  | DISTINCT -> "distinct"
  | LIMIT -> "limit"
  | ORDER -> "order"
  | BY -> "by"
  | ASC -> "asc"
  | DESC -> "desc"
  | COUNT -> "count"
  | SUM -> "sum"
  | MIN -> "min"
  | MAX -> "max"
  | AVG -> "avg"
  | TRUE -> "true"
  | FALSE -> "false"
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | INT i -> string_of_int i
  | DOT -> "."
  | COMMA -> ","
  | STAR -> "*"
  | PLUS -> "+"
  | QMARK -> "?"
  | PIPE -> "|"
  | CARET -> "^"
  | UNDERSCORE -> "_"
  | LPAREN -> "("
  | RPAREN -> ")"
  | EQ -> "="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | TILDE -> "~"
  | EOF -> "<eof>"
