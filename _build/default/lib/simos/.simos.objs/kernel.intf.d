lib/simos/kernel.mli: Pass_core Simdisk Vfs
