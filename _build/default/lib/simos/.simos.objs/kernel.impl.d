lib/simos/kernel.ml: Hashtbl List Pass_core Result Simdisk String Vfs
