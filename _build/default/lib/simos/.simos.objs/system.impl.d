lib/simos/system.ml: Ext3 Kernel Lasagna List Option Pass_core Provdb Result Simdisk String Waldo
