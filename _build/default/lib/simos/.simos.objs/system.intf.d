lib/simos/system.mli: Ext3 Kernel Lasagna Pass_core Provdb Simdisk Vfs Waldo
