(* A synthetic web for the PA-links browser to crawl.

   The paper's browser use cases (§3.2) need: pages with links, pages that
   redirect, downloadable resources, third-party hosting (a download
   linked from a page on a different site), and an attacker mutating a
   resource in place (the malware scenario).  The generator builds a
   deterministic site graph with all of these. *)

type resource =
  | Page of { title : string; links : string list }
  | Download of { mutable content : string; mutable tampered : bool }
  | Redirect of string

type t = {
  resources : (string, resource) Hashtbl.t;
  mutable fetches : int;
}

exception Not_found_404 of string
exception Redirect_loop of string

let create () = { resources = Hashtbl.create 256; fetches = 0 }

let add_page t ~url ~title ~links = Hashtbl.replace t.resources url (Page { title; links })

let add_download t ~url ~content =
  Hashtbl.replace t.resources url (Download { content; tampered = false })

let add_redirect t ~url ~target = Hashtbl.replace t.resources url (Redirect target)

(* Eve hacks the site: replace a download's content in place. *)
let compromise t ~url ~payload =
  match Hashtbl.find_opt t.resources url with
  | Some (Download d) ->
      d.content <- payload;
      d.tampered <- true
  | Some (Page _ | Redirect _) | None -> invalid_arg "Web.compromise: not a download"

let is_tampered t ~url =
  match Hashtbl.find_opt t.resources url with Some (Download d) -> d.tampered | _ -> false

(* Fetch a resource, following redirects; returns the final URL too (the
   browser records the *final* URL it landed on plus the chain). *)
let fetch t url =
  t.fetches <- t.fetches + 1;
  let rec follow url hops chain =
    if hops > 8 then raise (Redirect_loop url)
    else
      match Hashtbl.find_opt t.resources url with
      | None -> raise (Not_found_404 url)
      | Some (Redirect target) -> follow target (hops + 1) (url :: chain)
      | Some r -> (url, List.rev chain, r)
  in
  follow url 0 []

let links_of t url =
  match Hashtbl.find_opt t.resources url with Some (Page p) -> p.links | _ -> []

let fetch_count t = t.fetches

(* --- a deterministic synthetic web --------------------------------------- *)

let site_url site page = Printf.sprintf "http://site%d.example/page%d.html" site page
let download_url site name = Printf.sprintf "http://site%d.example/files/%s" site name

let synthetic ?(sites = 4) ?(pages_per_site = 6) () =
  let t = create () in
  for site = 0 to sites - 1 do
    for page = 0 to pages_per_site - 1 do
      let links =
        (* a couple of intra-site links plus one cross-site link *)
        [
          site_url site ((page + 1) mod pages_per_site);
          site_url site ((page + 2) mod pages_per_site);
          site_url ((site + 1) mod sites) page;
          download_url site (Printf.sprintf "doc%d.pdf" page);
        ]
      in
      add_page t ~url:(site_url site page)
        ~title:(Printf.sprintf "Site %d, page %d" site page)
        ~links
    done;
    for doc = 0 to pages_per_site - 1 do
      add_download t
        ~url:(download_url site (Printf.sprintf "doc%d.pdf" doc))
        ~content:(Printf.sprintf "pdf-content-site%d-doc%d" site doc)
    done;
    (* a short-link that redirects into the site *)
    add_redirect t
      ~url:(Printf.sprintf "http://short.example/s%d" site)
      ~target:(site_url site 0)
  done;
  t
