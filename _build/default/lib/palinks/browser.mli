(** PA-links: the provenance-aware text browser (paper, Section 6.3).

    Provenance is grouped by session (a PASS object created with
    pass_mkobj).  Visits produce VISITED_URL records; downloads are
    written with a pass_write carrying the data and the three records of
    Table 1 (INPUT to the session, FILE_URL, CURRENT_URL).  Sessions can
    be saved and revived across browser restarts (pass_reviveobj — the
    Firefox lesson of Section 6.5). *)

module Dpapi = Pass_core.Dpapi

type session = {
  id : int;
  handle : Dpapi.handle;
  mutable current_url : string option;
  mutable history : string list;
}

type t = {
  web : Web.t;
  sys : System.t;
  pid : int;
  lp : Pass_core.Libpass.t option;
  mutable sessions : session list;
  mutable next_session : int;
}

exception Browser_error of string

val create : web:Web.t -> sys:System.t -> pid:int -> t
(** On a vanilla kernel the browser still works but records nothing
    ([provenance_aware] is false) — the paper's "without layering"
    contrast. *)

val provenance_aware : t -> bool

val new_session : t -> session

val visit : t -> session -> string -> Web.resource
(** Fetch a URL (following redirects), recording every URL on the chain
    against the session. *)

val download : t -> session -> url:string -> dest:string -> string
(** Download [url] into [dest] with the three Table 1 records; returns
    the final URL.  @raise Browser_error. *)

val save_sessions : t -> path:string -> unit
(** Persist sessions (making each durable with pass_sync first). *)

val restore_sessions : t -> path:string -> unit
(** Revive saved sessions so further provenance lands on the same
    objects. *)
