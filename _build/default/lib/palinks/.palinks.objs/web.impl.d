lib/palinks/web.ml: Hashtbl List Printf
