lib/palinks/browser.ml: Buffer Kernel List Option Pass_core Printf String System Vfs Web
