lib/palinks/browser.mli: Pass_core System Web
