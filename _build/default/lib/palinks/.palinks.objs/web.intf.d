lib/palinks/web.mli:
