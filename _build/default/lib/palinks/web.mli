(** A synthetic web for the PA-links browser.

    Provides what the Section 3.2 use cases need: pages with links,
    redirects, downloadable resources, third-party hosting, and in-place
    compromise of a download (the malware scenario). *)

type resource =
  | Page of { title : string; links : string list }
  | Download of { mutable content : string; mutable tampered : bool }
  | Redirect of string

type t

exception Not_found_404 of string
exception Redirect_loop of string

val create : unit -> t

val add_page : t -> url:string -> title:string -> links:string list -> unit
val add_download : t -> url:string -> content:string -> unit
val add_redirect : t -> url:string -> target:string -> unit

val compromise : t -> url:string -> payload:string -> unit
(** Replace a download's content in place (Eve hacks the site).
    @raise Invalid_argument if [url] is not a download. *)

val is_tampered : t -> url:string -> bool

val fetch : t -> string -> string * string list * resource
(** [fetch t url] follows redirects; returns (final url, redirect chain,
    resource).  @raise Not_found_404 / Redirect_loop. *)

val links_of : t -> string -> string list
val fetch_count : t -> int

val site_url : int -> int -> string
val download_url : int -> string -> string

val synthetic : ?sites:int -> ?pages_per_site:int -> unit -> t
(** A deterministic site graph with intra/cross-site links, downloads and
    short-link redirects. *)
