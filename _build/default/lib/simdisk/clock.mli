(** Simulated wall clock (nanoseconds), one per simulated machine. *)

type t

val create : unit -> t
val now : t -> int
val advance : t -> int -> unit
(** Advance the clock by some nanoseconds (no-op if non-positive). *)

val ns_of_ms : int -> int
val ns_of_us : int -> int

val seconds : t -> float
(** Current time in seconds, for reports. *)
