(* Simulated wall clock, in nanoseconds.  One per simulated machine; the
   disk charges I/O time and the kernel charges CPU time against it.  The
   elapsed-time overheads of Table 2 are read off this clock. *)

type t = { mutable now_ns : int }

let create () = { now_ns = 0 }
let now t = t.now_ns
let advance t ns = if ns > 0 then t.now_ns <- t.now_ns + ns

let ns_of_ms ms = ms * 1_000_000
let ns_of_us us = us * 1_000
let seconds t = float_of_int t.now_ns /. 1e9
