lib/simdisk/disk.ml: Array Bytes Clock Hashtbl String
