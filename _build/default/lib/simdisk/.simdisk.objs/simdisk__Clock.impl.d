lib/simdisk/clock.ml:
