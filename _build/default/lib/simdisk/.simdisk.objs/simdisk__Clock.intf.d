lib/simdisk/clock.mli:
