lib/simdisk/disk.mli: Clock
