(** ext3sim: the baseline journaling file system.

    Stands in for the paper's ext3-in-ordered-mode baseline (Section 7):
    metadata changes are journalled in a dedicated disk region, file data
    is written to its home location before the metadata that makes it
    reachable, and mounting replays the journal.  Lasagna stacks on top of
    this (or any other {!Vfs.ops}). *)

type t

val format : ?jblocks:int -> Simdisk.Disk.t -> t
(** Create a fresh, empty file system on [disk].  [jblocks] sizes the
    journal region (default 16384 blocks = 64 MB); the journal compacts
    into a snapshot frame when it nears the end. *)

val mount : ?jblocks:int -> Simdisk.Disk.t -> t
(** Rebuild the file system state by replaying the on-disk journal —
    used after a simulated crash.  [jblocks] must match the value the
    file system was formatted with. *)

val ops : t -> Vfs.ops
(** The VFS face. *)

val root_ino : Vfs.ino

val set_cache_capacity : t -> int -> unit
(** Resize the simulated page cache (in 4 KB blocks).  The System wiring
    halves it when Lasagna stacks on top (double buffering, Section 7). *)

val cache_stats : t -> int * int
(** (hits, misses). *)

val data_bytes_allocated : t -> int
(** Bytes of data-region blocks ever allocated (Table 3 accounting). *)

val journal_bytes_written : t -> int
val metadata_ops : t -> int

val live_bytes : t -> int
(** Sum of regular-file sizes currently reachable. *)
