(** The PA-NFS protocol (paper, Section 6.1).

    An NFSv4-flavoured operation set extended with the six DPAPI
    operations: [OP_PASSREAD], [OP_PASSWRITE], [OP_BEGINTXN],
    [OP_PASSPROV], [OP_PASSMKOBJ], [OP_PASSREVIVEOBJ], [OP_PASSSYNC].
    When provenance plus data exceed the 64 KB client block size, the
    client encapsulates the write in a transaction so the server's Waldo
    can identify orphaned provenance after a client crash. *)

module Dpapi = Pass_core.Dpapi
module Pnode = Pass_core.Pnode

type req =
  | Lookup of { dir : Vfs.ino; name : string }
  | Create of { dir : Vfs.ino; name : string; kind : Vfs.kind }
  | Remove of { dir : Vfs.ino; name : string }
  | Rename of { src_dir : Vfs.ino; src_name : string; dst_dir : Vfs.ino; dst_name : string }
  | Getattr of { ino : Vfs.ino }
  | Readdir of { ino : Vfs.ino }
  | Read of { ino : Vfs.ino; off : int; len : int }
  | Write of { ino : Vfs.ino; off : int; data : string }
  | Truncate of { ino : Vfs.ino; size : int }
  | Commit of { ino : Vfs.ino }
  | Op_passread of { pnode : Pnode.t; off : int; len : int }
  | Op_passwrite of {
      pnode : Pnode.t;
      off : int;
      data : string option;
      bundle : Dpapi.bundle;
      txn : int option;
    }
  | Op_begintxn
  | Op_passprov of { txn : int; chunk : Dpapi.bundle }
  | Op_passmkobj
  | Op_passreviveobj of { pnode : Pnode.t; version : int }
  | Op_passsync of { pnode : Pnode.t }
  | Op_pnode of { ino : Vfs.ino }

type resp =
  | R_err of Vfs.errno
  | R_ino of Vfs.ino
  | R_ok
  | R_attr of Vfs.stat
  | R_names of string list
  | R_data of string
  | R_passread of { data : string; pnode : Pnode.t; version : int }
  | R_version of int
  | R_txn of int
  | R_handle of { pnode : Pnode.t }

val block_limit : int
(** 64 KB: the client block size that triggers transactions. *)

val req_size : req -> int
(** Encoded size in bytes (drives the simulated network cost). *)

val resp_size : resp -> int

type net = {
  clock : Simdisk.Clock.t;
  latency_ns : int;
  ns_per_byte : int;
  mutable messages : int;
  mutable bytes : int;
}

val net : ?latency_us:int -> ?ns_per_byte:int -> Simdisk.Clock.t -> net
(** A simulated LAN link; defaults approximate 2009-era gigabit. *)

val rpc : net -> (req -> resp) -> req -> resp
(** Synchronous RPC: invokes the handler and charges one round trip of
    latency plus transfer to the shared clock. *)
