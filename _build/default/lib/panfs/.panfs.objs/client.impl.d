lib/panfs/client.ml: Buffer Ext3 Hashtbl List Option Pass_core Proto Result String Vfs
