lib/panfs/proto.ml: Buffer Pass_core Simdisk Vfs Wire
