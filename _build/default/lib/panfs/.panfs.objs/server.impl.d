lib/panfs/server.ml: Ext3 Lasagna List Option Pass_core Proto Simdisk String Vfs Waldo
