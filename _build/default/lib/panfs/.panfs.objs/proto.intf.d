lib/panfs/proto.mli: Pass_core Simdisk Vfs
