lib/panfs/client.mli: Pass_core Proto Vfs
