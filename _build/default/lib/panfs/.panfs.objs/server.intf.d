lib/panfs/server.mli: Ext3 Lasagna Pass_core Proto Provdb Simdisk Vfs Waldo
