(* The PA-NFS protocol (paper §6.1): an NFSv4-flavoured operation set
   extended with the six DPAPI operations.

   Data-carrying provenance writes use OP_PASSWRITE.  When the combined
   data and provenance exceed the client block size (64 KB), the client
   encapsulates the write in a transaction: OP_BEGINTXN obtains a
   transaction id, a series of OP_PASSPROV operations carries the
   provenance in 64 KB chunks, and the final OP_PASSWRITE carries the data
   together with a single ENDTXN record.  The transaction id is what lets
   the server's Waldo identify orphaned provenance after a client crash.

   Messages are fully encodable (the byte size drives the simulated
   network cost); the simulated transport delivers the structured value
   in-process rather than re-decoding it. *)

module Dpapi = Pass_core.Dpapi
module Pnode = Pass_core.Pnode

type req =
  | Lookup of { dir : Vfs.ino; name : string }
  | Create of { dir : Vfs.ino; name : string; kind : Vfs.kind }
  | Remove of { dir : Vfs.ino; name : string }
  | Rename of { src_dir : Vfs.ino; src_name : string; dst_dir : Vfs.ino; dst_name : string }
  | Getattr of { ino : Vfs.ino }
  | Readdir of { ino : Vfs.ino }
  | Read of { ino : Vfs.ino; off : int; len : int }
  | Write of { ino : Vfs.ino; off : int; data : string }
  | Truncate of { ino : Vfs.ino; size : int }
  | Commit of { ino : Vfs.ino }
  | Op_passread of { pnode : Pnode.t; off : int; len : int }
  | Op_passwrite of {
      pnode : Pnode.t;
      off : int;
      data : string option;
      bundle : Dpapi.bundle;
      txn : int option; (* set when this write terminates a transaction *)
    }
  | Op_begintxn
  | Op_passprov of { txn : int; chunk : Dpapi.bundle }
  | Op_passmkobj
  | Op_passreviveobj of { pnode : Pnode.t; version : int }
  | Op_passsync of { pnode : Pnode.t }
  | Op_pnode of { ino : Vfs.ino } (* pnode lookup for the client handle cache *)

type resp =
  | R_err of Vfs.errno
  | R_ino of Vfs.ino
  | R_ok
  | R_attr of Vfs.stat
  | R_names of string list
  | R_data of string
  | R_passread of { data : string; pnode : Pnode.t; version : int }
  | R_version of int
  | R_txn of int
  | R_handle of { pnode : Pnode.t }

(* 64 KB: the NFSv4 client block size that triggers transactions. *)
let block_limit = 65536

let kind_tag = function Vfs.Regular -> 0 | Vfs.Directory -> 1

let encode_req buf req =
  let open Wire in
  match req with
  | Lookup { dir; name } ->
      put_u8 buf 1; put_i64 buf dir; put_string buf name
  | Create { dir; name; kind } ->
      put_u8 buf 2; put_i64 buf dir; put_string buf name; put_u8 buf (kind_tag kind)
  | Remove { dir; name } -> put_u8 buf 3; put_i64 buf dir; put_string buf name
  | Rename { src_dir; src_name; dst_dir; dst_name } ->
      put_u8 buf 4; put_i64 buf src_dir; put_string buf src_name;
      put_i64 buf dst_dir; put_string buf dst_name
  | Getattr { ino } -> put_u8 buf 5; put_i64 buf ino
  | Readdir { ino } -> put_u8 buf 6; put_i64 buf ino
  | Read { ino; off; len } -> put_u8 buf 7; put_i64 buf ino; put_i64 buf off; put_i64 buf len
  | Write { ino; off; data } -> put_u8 buf 8; put_i64 buf ino; put_i64 buf off; put_string buf data
  | Truncate { ino; size } -> put_u8 buf 9; put_i64 buf ino; put_i64 buf size
  | Commit { ino } -> put_u8 buf 10; put_i64 buf ino
  | Op_passread { pnode; off; len } ->
      put_u8 buf 20; put_i64 buf (Pnode.to_int pnode); put_i64 buf off; put_i64 buf len
  | Op_passwrite { pnode; off; data; bundle; txn } ->
      put_u8 buf 21;
      put_i64 buf (Pnode.to_int pnode);
      put_i64 buf off;
      (match data with
      | None -> put_u8 buf 0
      | Some d -> put_u8 buf 1; put_string buf d);
      Dpapi.encode_bundle buf bundle;
      (match txn with None -> put_u8 buf 0 | Some id -> put_u8 buf 1; put_i64 buf id)
  | Op_begintxn -> put_u8 buf 22
  | Op_passprov { txn; chunk } ->
      put_u8 buf 23; put_i64 buf txn; Dpapi.encode_bundle buf chunk
  | Op_passmkobj -> put_u8 buf 24
  | Op_passreviveobj { pnode; version } ->
      put_u8 buf 25; put_i64 buf (Pnode.to_int pnode); put_i64 buf version
  | Op_passsync { pnode } -> put_u8 buf 26; put_i64 buf (Pnode.to_int pnode)
  | Op_pnode { ino } -> put_u8 buf 27; put_i64 buf ino

let encode_resp buf resp =
  let open Wire in
  match resp with
  | R_err e -> put_u8 buf 1; put_string buf (Vfs.errno_to_string e)
  | R_ino ino -> put_u8 buf 2; put_i64 buf ino
  | R_ok -> put_u8 buf 3
  | R_attr st ->
      put_u8 buf 4; put_i64 buf st.Vfs.st_ino; put_u8 buf (kind_tag st.st_kind);
      put_i64 buf st.st_size
  | R_names names -> put_u8 buf 5; put_list buf put_string names
  | R_data d -> put_u8 buf 6; put_string buf d
  | R_passread { data; pnode; version } ->
      put_u8 buf 7; put_string buf data; put_i64 buf (Pnode.to_int pnode); put_i64 buf version
  | R_version v -> put_u8 buf 8; put_i64 buf v
  | R_txn id -> put_u8 buf 9; put_i64 buf id
  | R_handle { pnode } -> put_u8 buf 10; put_i64 buf (Pnode.to_int pnode)

let req_size req =
  let buf = Buffer.create 64 in
  encode_req buf req;
  Buffer.length buf

let resp_size resp =
  let buf = Buffer.create 64 in
  encode_resp buf resp;
  Buffer.length buf

(* The simulated network: a synchronous RPC charges one round trip of
   latency plus transfer at the link rate to the shared clock. *)
type net = {
  clock : Simdisk.Clock.t;
  latency_ns : int; (* one-way *)
  ns_per_byte : int;
  mutable messages : int;
  mutable bytes : int;
}

let net ?(latency_us = 150) ?(ns_per_byte = 8) clock =
  { clock; latency_ns = Simdisk.Clock.ns_of_us latency_us; ns_per_byte; messages = 0; bytes = 0 }

let rpc net handler req =
  let resp = handler req in
  let bytes = req_size req + resp_size resp in
  net.messages <- net.messages + 1;
  net.bytes <- net.bytes + bytes;
  Simdisk.Clock.advance net.clock ((2 * net.latency_ns) + (bytes * net.ns_per_byte));
  resp
