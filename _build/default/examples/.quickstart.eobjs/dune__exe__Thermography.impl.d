examples/thermography.ml: Filename Kernel List Option Pql Printf Provwrap Pyth String System
