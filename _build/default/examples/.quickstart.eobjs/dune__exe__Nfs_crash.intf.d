examples/nfs_crash.mli:
