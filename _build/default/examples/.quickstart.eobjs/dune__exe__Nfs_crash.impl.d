examples/nfs_crash.ml: Char Client Ext3 Lasagna List Option Pass_core Printf Proto Provdb Recovery Server Simdisk String Vfs
