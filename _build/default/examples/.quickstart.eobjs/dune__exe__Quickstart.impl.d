examples/quickstart.ml: Kernel List Option Pass_core Pql Printf Provdb String System Vfs
