examples/thermography.mli:
