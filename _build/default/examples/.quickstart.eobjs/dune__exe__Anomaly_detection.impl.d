examples/anomaly_detection.ml: Actor Challenge Client Director Format Kepler_run Kernel List Option Pql Printf Proto Provdb Provdiff Server String System
