examples/web_attribution.ml: Actor Browser Kepler_run Kernel List Option Pass_core Pql Printf Provdb System Vfs Web
