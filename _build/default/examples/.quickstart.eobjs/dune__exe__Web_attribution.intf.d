examples/web_attribution.mli:
