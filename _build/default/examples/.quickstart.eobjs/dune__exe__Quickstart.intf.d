examples/quickstart.mli:
