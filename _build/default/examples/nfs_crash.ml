(* Crash consistency end to end (paper §5.6 and §6.1.2).

     dune exec examples/nfs_crash.exe

   Part 1 — WAP on a local volume: crash the disk in the middle of a
   provenance-carrying write and show that recovery identifies exactly
   the data that was in flight (no unprovenanced data can exist).

   Part 2 — PA-NFS transactions: a client starts a large provenance write
   (OP_BEGINTXN + OP_PASSPROV chunks), crashes before the terminating
   OP_PASSWRITE, and the server's Waldo discards the orphaned provenance
   instead of ingesting a half-transaction. *)

module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue
module Ctx = Pass_core.Ctx
module Dpapi = Pass_core.Dpapi
module Clock = Simdisk.Clock
module Disk = Simdisk.Disk

let ok = function Ok v -> v | Error e -> failwith (Vfs.errno_to_string e)
let okd = function Ok v -> v | Error e -> failwith (Dpapi.error_to_string e)

let () =
  print_endline "== crash consistency: WAP and PA-NFS transactions ==\n";

  (* ----- part 1: write-ahead provenance survives a disk crash ---------- *)
  print_endline "--- part 1: WAP recovery on a local volume ---";
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0" ~charge:(Clock.advance clock) ()
  in
  let ops = Lasagna.ops lasagna in
  let ep = Lasagna.endpoint lasagna in
  (* a healthy write first *)
  let ino_ok = ok (Vfs.create_path ops "/survivor.dat" Vfs.Regular) in
  let h_ok = ok (Lasagna.file_handle lasagna ino_ok) in
  ignore (okd (ep.pass_write h_ok ~off:0 ~data:(Some "safe and sound") [ Dpapi.entry h_ok [] ]));
  (* now a write that the crash will interrupt: the provenance frame gets
     to the log, the data does not fully reach the file *)
  let ino_bad = ok (Vfs.create_path ops "/victim.dat" Vfs.Regular) in
  let h_bad = ok (Lasagna.file_handle lasagna ino_bad) in
  Disk.schedule_crash disk ~after_writes:3;
  (match
     ep.pass_write h_bad ~off:0
       ~data:(Some (String.init 8192 (fun i -> Char.chr (i land 0xff))))
       [ Dpapi.entry h_bad [ Record.name "victim.dat" ] ]
   with
  | Error Dpapi.Ecrashed -> print_endline "machine crashed mid-write (provenance logged, data torn)"
  | Ok _ -> print_endline "unexpected: write survived"
  | Error e -> Printf.printf "unexpected error: %s\n" (Dpapi.error_to_string e));
  (* power back on: remount and run recovery *)
  Disk.revive disk;
  let remounted = Ext3.mount disk in
  let report = ok (Recovery.scan (Ext3.ops remounted)) in
  Printf.printf "recovery: scanned %d logs, %d frames, %d data identities checked\n"
    report.Recovery.logs_scanned report.frames_ok report.data_checked;
  List.iter
    (fun (inc : Recovery.inconsistency) ->
      Printf.printf "  INCONSISTENT: pnode %d, %d bytes at offset %d (%s)\n"
        (Pass_core.Pnode.to_int inc.i_pnode) inc.i_len inc.i_off inc.reason)
    report.inconsistent;
  Printf.printf "survivor.dat intact: %b — WAP guarantees no unprovenanced data, and\n"
    (match Vfs.read_file (Ext3.ops remounted) "/survivor.dat" with
    | Ok "safe and sound" -> true
    | _ -> false);
  print_endline "recovery names exactly the data that was in flight.\n";

  (* ----- part 2: orphaned PA-NFS transactions --------------------------- *)
  print_endline "--- part 2: a client crash mid-transaction ---";
  let clock = Clock.create () in
  let server = Server.create ~mode:Server.Pass_enabled ~clock ~machine:2 ~volume:"nfs0" () in
  let net = Proto.net clock in
  let cctx = Ctx.create ~machine:3 in
  let client = Client.create ~net ~handler:(Server.handle server) ~ctx:cctx ~mount_name:"nfs0" () in
  let ino = ok (Vfs.write_file (Client.ops client) "/results.dat" "committed-base") in
  let h = ok (Client.file_handle client ino) in
  (* the client begins a transaction for a large provenance write... *)
  let txn = okd (Client.begin_txn client) in
  Printf.printf "client obtained transaction id %d (OP_BEGINTXN)\n" txn;
  okd
    (Client.send_prov_chunk client ~txn
       [ Dpapi.entry h
           (List.init 200 (fun i ->
                Record.make "PARAMS" (Pvalue.Str (Printf.sprintf "uncommitted-%d" i)))) ]);
  print_endline "client sent one OP_PASSPROV chunk (200 records)...";
  (* ...and dies before the terminating OP_PASSWRITE *)
  Client.crash client;
  print_endline "client crashed — no ENDTXN will ever arrive";
  (* the server drains its logs; Waldo refuses the half-transaction *)
  let orphans = Server.drain server in
  let db = Option.get (Server.db server) in
  let leaked =
    List.exists
      (fun (q : Provdb.quad) ->
        match q.q_value with Pvalue.Str s -> String.length s > 11 && String.sub s 0 11 = "uncommitted" | _ -> false)
      (Provdb.records_all db h.Dpapi.pnode)
  in
  Printf.printf "server Waldo: discarded %d orphaned transaction(s); leaked records: %b\n"
    orphans leaked;
  print_endline "\nthe transaction id is what lets the server identify orphaned provenance —";
  print_endline "the paper's §6.1.2 argument for transactions over mandatory locks."
