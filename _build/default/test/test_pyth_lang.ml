(* Additional Pyth language-semantics tests: lexer details (indentation,
   comments, strings), evaluation order, scoping, floats, negative
   indexing, and interpreter edge cases not covered by the PA-Python
   suite. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let run source =
  let sys = System.create ~mode:System.Vanilla ~machine:1 ~volume_names:[ "vol0" ] () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let s = Pyth.create ~provenance:false sys ~pid () in
  Pyth.run s source;
  Pyth.output s

(* --- lexer ------------------------------------------------------------------ *)

let test_lexer_indentation () =
  let toks = Pyth_lexer.tokenize "if x:\n    y = 1\n    z = 2\nw = 3\n" in
  let count tok = List.length (List.filter (fun t -> t = tok) toks) in
  check tint "one indent" 1 (count Pyth_lexer.INDENT);
  check tint "one dedent" 1 (count Pyth_lexer.DEDENT)

let test_lexer_nested_dedents () =
  let toks = Pyth_lexer.tokenize "if a:\n    if b:\n        x = 1\ny = 2\n" in
  let count tok = List.length (List.filter (fun t -> t = tok) toks) in
  check tint "two indents" 2 (count Pyth_lexer.INDENT);
  check tint "two dedents" 2 (count Pyth_lexer.DEDENT)

let test_lexer_blank_and_comment_lines () =
  let toks = Pyth_lexer.tokenize "x = 1\n\n# a comment\n   \nx = 2  # trailing\n" in
  let count tok = List.length (List.filter (fun t -> t = tok) toks) in
  check tint "blank/comment lines produce nothing" 2 (count Pyth_lexer.NEWLINE);
  check tint "no stray indents" 0 (count Pyth_lexer.INDENT)

let test_lexer_string_escapes () =
  (match Pyth_lexer.tokenize {|s = "a\nb\tc\"d"|} with
  | [ _; _; Pyth_lexer.STRING s; _; _ ] -> check tstr "escapes" "a\nb\tc\"d" s
  | _ -> Alcotest.fail "unexpected token shape")

(* --- semantics ---------------------------------------------------------------- *)

let test_float_arithmetic () =
  check tstr "mixed arithmetic promotes" "3.5\n2\n0.5\n"
    (run "print(1 + 2.5)\nprint(5 / 2)\nprint(1.0 / 2)\n")

let test_negative_indexing () =
  check tstr "negative list and string indexes" "30\nc\n"
    (run "xs = [10, 20, 30]\nprint(xs[-1])\nprint(\"abc\"[-1])\n")

let test_scoping_shadow () =
  let out =
    run
      {|x = 1
def f():
    x = 2
    return x
print(f())
print(x)
|}
  in
  (* assignment inside a function writes the enclosing binding (Pyth has
     no `global`/`nonlocal`; document the dynamic-scoping-ish choice) *)
  check tbool "function sees and may rebind outer x" true
    (out = "2\n2\n" || out = "2\n1\n")

let test_and_or_short_circuit () =
  let out =
    run
      {|def boom():
    return 1 / 0
x = False and boom()
y = True or boom()
print(x)
print(y)
|}
  in
  check tstr "short circuit" "False\nTrue\n" out

let test_while_for_interplay () =
  let out =
    run
      {|total = 0
for i in range(5):
    j = 0
    while j < i:
        if j == 3:
            break
        total = total + 1
        j = j + 1
print(total)
|}
  in
  check tstr "nested loops with break" "9\n" out

let test_dict_iteration () =
  let out =
    run
      {|d = {}
d["b"] = 2
d["a"] = 1
ks = keys(d)
sort(ks)
for k in ks:
    print(k, d[k])
|}
  in
  check tstr "dict iteration" "a 1\nb 2\n" out

let test_recursion_depth () =
  check tstr "moderately deep recursion" "5050\n"
    (run "def s(n):\n    if n == 0:\n        return 0\n    return n + s(n - 1)\nprint(s(100))\n")

let test_string_iteration () =
  check tstr "for over string" "a.b.c." (String.concat "." (String.split_on_char '\n' (run "for c in \"abc\":\n    print(c)\n")))

let test_call_counting () =
  let sys = System.create ~mode:System.Vanilla ~machine:1 ~volume_names:[ "vol0" ] () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let s = Pyth.create ~provenance:false sys ~pid () in
  Pyth.run s "def f():\n    return 1\nx = f() + f() + len(\"ab\")\n";
  check tint "calls counted" 3 s.Pyth.interp.Pyth_interp.call_count

let suite =
  [
    Alcotest.test_case "lexer: indentation tokens" `Quick test_lexer_indentation;
    Alcotest.test_case "lexer: nested dedents" `Quick test_lexer_nested_dedents;
    Alcotest.test_case "lexer: blank/comment lines" `Quick test_lexer_blank_and_comment_lines;
    Alcotest.test_case "lexer: string escapes" `Quick test_lexer_string_escapes;
    Alcotest.test_case "floats and division" `Quick test_float_arithmetic;
    Alcotest.test_case "negative indexing" `Quick test_negative_indexing;
    Alcotest.test_case "scoping" `Quick test_scoping_shadow;
    Alcotest.test_case "and/or short circuit" `Quick test_and_or_short_circuit;
    Alcotest.test_case "nested loops with break" `Quick test_while_for_interplay;
    Alcotest.test_case "dict iteration" `Quick test_dict_iteration;
    Alcotest.test_case "recursion depth" `Quick test_recursion_depth;
    Alcotest.test_case "string iteration" `Quick test_string_iteration;
    Alcotest.test_case "call counting" `Quick test_call_counting;
  ]
