test/test_storage.ml: Alcotest Bytes Ctx Dpapi Ext3 Hashtbl Helpers Lasagna List Pass_core Pnode Printf QCheck2 QCheck_alcotest Record Recovery Simdisk Stdlib String Vfs
