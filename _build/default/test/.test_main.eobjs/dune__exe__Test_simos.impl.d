test/test_simos.ml: Alcotest Buffer Dpapi Helpers Kernel Libpass List Option Pass_core Pql Pql_eval Printf Provdb Pvalue Record String System Vfs
