test/test_waldo.ml: Alcotest Ctx Dpapi Ext3 Helpers Lasagna List Opm Option Pass_core Pnode Printf Provdb Pvalue Record Simdisk Sxml Test_pql Vfs Waldo Wire
