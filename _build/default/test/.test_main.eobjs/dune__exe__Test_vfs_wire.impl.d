test/test_vfs_wire.ml: Alcotest Buffer Ext3 Hashtbl Helpers List Printf QCheck2 QCheck_alcotest Simdisk String Vfs Wire
