test/test_core_types.ml: Alcotest Buffer Char Ctx Dpapi Hashtbl Helpers Libpass List Pass_core Pnode Pvalue QCheck2 QCheck_alcotest Record String
