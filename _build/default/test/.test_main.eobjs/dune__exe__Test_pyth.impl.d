test/test_pyth.ml: Alcotest Kernel List Option Pql Printf Provdb Provwrap Pyth Pyth_interp Pyth_lexer Pyth_parser Pyth_value Sxml System
