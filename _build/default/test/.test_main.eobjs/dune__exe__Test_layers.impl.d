test/test_layers.ml: Alcotest Client Kernel Linux_compile List Option Pql Proto Provdb Pyth Runner Server System
