test/test_kernel.ml: Alcotest Helpers Kernel List Option Pql Provdb Result System Vfs
