test/test_palinks.ml: Actor Alcotest Browser Dpapi Helpers Kepler_run Kernel List Option Pass_core Pnode Pql Provdb Pvalue Record String System Web
