test/test_pql.ml: Alcotest List Pass_core Pnode Pql Pql_ast Pql_eval Pql_lexer Pql_print Provdb Pvalue QCheck2 QCheck_alcotest Record String
