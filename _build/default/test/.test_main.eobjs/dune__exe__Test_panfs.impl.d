test/test_panfs.ml: Alcotest Client Ctx Dpapi Ext3 Helpers Kernel List Option Pass_core Pnode Pql Printf Proto Provdb Pvalue Record Recovery Server Simdisk String System Vfs Waldo
