test/test_pyth_lang.ml: Alcotest Kernel List Pyth Pyth_interp Pyth_lexer String System
