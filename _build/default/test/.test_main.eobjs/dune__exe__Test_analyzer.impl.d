test/test_analyzer.ml: Alcotest Analyzer Array Ctx Cycle_detect Dpapi Hashtbl Helpers List Option Pass_core Pnode Pvalue QCheck2 QCheck_alcotest Random Record
