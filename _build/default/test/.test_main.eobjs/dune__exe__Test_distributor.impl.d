test/test_distributor.ml: Alcotest Ctx Distributor Dpapi Helpers List Pass_core Pnode Pvalue Record String
