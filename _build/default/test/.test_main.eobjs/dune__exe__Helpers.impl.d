test/helpers.ml: Alcotest Char Ctx Dpapi Ext3 List Pass_core Simdisk String Vfs
