test/test_kepler.ml: Actor Alcotest Challenge Director Kepler_run Kernel List Option Pql Printf Provdb Recorder String System Workflow
