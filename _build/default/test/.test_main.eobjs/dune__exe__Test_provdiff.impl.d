test/test_provdiff.ml: Alcotest Format List Option Pass_core Pnode Provdb Provdiff Pvalue Record String
