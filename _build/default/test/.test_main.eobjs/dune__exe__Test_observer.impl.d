test/test_observer.ml: Alcotest Analyzer Ctx Dpapi Helpers List Observer Pass_core Pnode Pvalue Record String
