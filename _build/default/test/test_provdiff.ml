(* Provdiff tests: the ancestry-diff tool answering the paper's opening
   question ("How does the ancestry of two objects differ?"). *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

(* Build: out has two versions; v1 derived from in1+proc1, v2 from
   in1(new version)+in2+proc2. *)
let build () =
  let db = Provdb.create () in
  let alloc = Pnode.allocator ~machine:1 in
  let p () = Pnode.fresh alloc in
  let in1 = p () and in2 = p () and proc1 = p () and proc2 = p () and out = p () in
  Provdb.set_file db in1 ~name:"in1";
  Provdb.set_file db in2 ~name:"in2";
  Provdb.set_file db out ~name:"out";
  Provdb.declare_virtual db proc1;
  Provdb.declare_virtual db proc2;
  Provdb.add_record db proc1 ~version:0 (Record.typ "PROCESS");
  Provdb.add_record db proc2 ~version:0 (Record.typ "PROCESS");
  (* run 1: out v1 <- proc1 <- in1@0 *)
  Provdb.add_record db proc1 ~version:0 (Record.input_of in1 0);
  Provdb.add_record db out ~version:1 (Record.make Record.Attr.freeze (Pvalue.Int 1));
  Provdb.add_record db out ~version:1 (Record.input_of out 0);
  Provdb.add_record db out ~version:1 (Record.input_of proc1 0);
  (* in1 modified *)
  Provdb.add_record db in1 ~version:1 (Record.make Record.Attr.freeze (Pvalue.Int 1));
  Provdb.add_record db in1 ~version:1 (Record.input_of in1 0);
  (* run 2: out v2 <- proc2 <- in1@1, in2@0 *)
  Provdb.add_record db proc2 ~version:0 (Record.input_of in1 1);
  Provdb.add_record db proc2 ~version:0 (Record.input_of in2 0);
  Provdb.add_record db out ~version:2 (Record.make Record.Attr.freeze (Pvalue.Int 2));
  Provdb.add_record db out ~version:2 (Record.input_of out 1);
  Provdb.add_record db out ~version:2 (Record.input_of proc2 0);
  (db, in1, in2, proc1, proc2, out)

let name_of (e : Provdiff.entry) = Option.value e.e_name ~default:"?"

let test_version_diff () =
  let db, _in1, _in2, _p1, _p2, out = build () in
  let d = Provdiff.diff_versions db out ~version_a:1 ~version_b:2 in
  (* in2 and proc2 only in run 2's ancestry; proc1 only in run 1's;
     in1 on both sides at different versions *)
  check tbool "in2 only in B" true (List.exists (fun e -> name_of e = "in2") d.only_b);
  check tbool "proc1 only in A" true
    (List.exists (fun (e : Provdiff.entry) -> e.e_name = None || name_of e = "?") d.only_a);
  let changed = List.filter (fun e -> name_of e = "in1") d.version_changed in
  check tint "in1 version changed" 1 (List.length changed);
  (match changed with
  | [ e ] ->
      check (Alcotest.list tint) "A saw v0" [ 0 ] e.versions_a;
      (* B reaches in1@1 and, through in1's own version chain, v0 too *)
      check (Alcotest.list tint) "B saw v1 (and its history)" [ 0; 1 ] e.versions_b
  | _ -> Alcotest.fail "expected one changed entry")

let test_identical_versions_diff_empty () =
  let db, _, _, _, _, out = build () in
  let d = Provdiff.diff_versions db out ~version_a:1 ~version_b:1 in
  check tint "no only_a" 0 (List.length d.only_a);
  check tint "no only_b" 0 (List.length d.only_b);
  check tint "no changes" 0 (List.length d.version_changed);
  check tbool "common nonempty" true (d.common > 0)

let test_diff_by_name () =
  let db, _, _, _, _, _ = build () in
  (match Provdiff.diff_by_name db ~name_a:"out" ~name_b:"in1" with
  | Some d -> check tbool "different objects diff nonempty" true (List.length d.only_a > 0)
  | None -> Alcotest.fail "both names exist");
  check tbool "unknown name gives None" true
    (Provdiff.diff_by_name db ~name_a:"out" ~name_b:"absent" = None)

let test_files_only_filter () =
  let db, _, _, _, _, out = build () in
  let d = Provdiff.diff_versions db out ~version_a:1 ~version_b:2 in
  let filtered = Provdiff.files_only db d in
  check tbool "virtual objects removed" true
    (List.for_all
       (fun (e : Provdiff.entry) ->
         match Provdb.find_node db e.e_pnode with
         | Some n -> n.Provdb.kind = Provdb.File
         | None -> false)
       (filtered.only_a @ filtered.only_b @ filtered.version_changed));
  check tbool "file signal kept" true
    (List.exists (fun e -> name_of e = "in1") filtered.version_changed)

let test_pp_smoke () =
  let db, _, _, _, _, out = build () in
  let d = Provdiff.diff_versions db out ~version_a:1 ~version_b:2 in
  let s = Format.asprintf "%a" Provdiff.pp d in
  check tbool "render mentions in1 and arrow" true
    (String.length s > 20
    && (let contains needle hay =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        contains "in1" s && contains "->" s))

let suite =
  [
    Alcotest.test_case "run-to-run version diff" `Quick test_version_diff;
    Alcotest.test_case "identical versions: empty diff" `Quick test_identical_versions_diff_empty;
    Alcotest.test_case "diff by name" `Quick test_diff_by_name;
    Alcotest.test_case "files-only filter" `Quick test_files_only_filter;
    Alcotest.test_case "pretty printer" `Quick test_pp_smoke;
  ]
