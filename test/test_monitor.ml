(* pvmon tests: scrape mechanics (counter rates, gauge values, histogram
   p99 points, ring retention, tick grid alignment), the exact per-layer
   attribution fold and its conservation invariant, SLO rule transitions
   with for_ticks debouncing, slow-op paths, multi-instance gauge
   tagging, export determinism, and the zero-cost disabled singleton.
   The layer_of targets are cross-checked against the parsed LAYERS.sexp
   so the attribution map cannot drift from the layer contract. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tfloat = Alcotest.float 1e-9
let tstr = Alcotest.string

module Json = Telemetry.Json

let contains s sub =
  let n = String.length sub and l = String.length s in
  let rec go i = i + n <= l && (String.equal (String.sub s i n) sub || go (i + 1)) in
  go 0

let mem path j = Option.get (Json.member path j)

let jint = function Json.Int i -> i | _ -> Alcotest.fail "expected int"

let series_named doc name =
  match mem "series" doc with
  | Json.List rows ->
      List.find
        (fun r ->
          match Json.member "name" r with
          | Some (Json.Str s) -> String.equal s name
          | _ -> false)
        rows
  | _ -> Alcotest.fail "series is not a list"

let points row =
  match mem "points" row with
  | Json.List ps ->
      List.map
        (fun p ->
          let v =
            match mem "v" p with
            | Json.Float f -> f
            | Json.Int i -> float_of_int i
            | _ -> Alcotest.fail "point value"
          in
          (jint (mem "t" p), v))
        ps
  | _ -> Alcotest.fail "points is not a list"

(* --- scrape mechanics -------------------------------------------------------- *)

let test_scrape_rates_and_rings () =
  let reg = Telemetry.create () in
  let c = Telemetry.counter ~registry:reg "t.ops" in
  let g = Telemetry.gauge ~registry:reg "t.depth" in
  let h = Telemetry.histogram ~registry:reg "t.lat" in
  (* retention 2: the ring must keep only the newest two points *)
  let m = Pvmon.create ~interval_ns:1_000 ~retention:2 ~rules:[] () in
  Pvmon.watch m reg;
  Telemetry.add c 100;
  Telemetry.set g 7.;
  Telemetry.observe h 5.0;
  Pvmon.scrape m 1_000;
  Telemetry.add c 50;
  Telemetry.set g 3.;
  Pvmon.scrape m 2_000;
  Pvmon.scrape m 3_000;
  let doc = Pvmon.to_json m in
  check tint "three scrapes" 3 (jint (mem "scrapes" doc));
  (* counter: delta per simulated second.  100 ops in the first 1000 ns
     is 1e8/s; 50 in the next 1000 ns is 5e7/s; 0 in the last. *)
  let ops = series_named doc "t.ops" in
  (match mem "kind" ops with
  | Json.Str "counter" -> ()
  | _ -> Alcotest.fail "t.ops kind");
  check Alcotest.(list (pair int (float 1e-6)))
    "ring keeps the newest two rate points"
    [ (2_000, 5e7); (3_000, 0.) ]
    (points ops);
  (match mem "cumulative" ops with
  | Json.Float f -> check tfloat "cumulative tracks the raw counter" 150. f
  | _ -> Alcotest.fail "cumulative");
  (* gauge: raw values, same ring bound *)
  check Alcotest.(list (pair int (float 1e-9)))
    "gauge points are values"
    [ (2_000, 3.); (3_000, 3.) ]
    (points (series_named doc "t.depth"));
  (* histogram: p99 of a single observation is that observation *)
  (match points (series_named doc "t.lat") with
  | (_, v) :: _ -> check tfloat "histogram point is the p99" 5.0 v
  | [] -> Alcotest.fail "no histogram points")

let test_tick_grid () =
  let reg = Telemetry.create () in
  Telemetry.set (Telemetry.gauge ~registry:reg "t.g") 1.;
  let m = Pvmon.create ~interval_ns:1_000 ~rules:[] () in
  Pvmon.watch m reg;
  (* a large advance crossing several boundaries yields ONE scrape,
     timestamped at the last boundary <= now *)
  Pvmon.tick m 2_500;
  check tint "one scrape for a multi-interval advance" 1 (Pvmon.scrapes m);
  check tint "timestamped at the boundary" 2_000
    (jint (mem "last_scrape_ns" (Pvmon.to_json m)));
  (* short of the next boundary: nothing *)
  Pvmon.tick m 2_900;
  check tint "no scrape before the next boundary" 1 (Pvmon.scrapes m);
  Pvmon.tick m 3_000;
  check tint "scrape on the boundary" 2 (Pvmon.scrapes m);
  check tint "grid-aligned timestamp" 3_000
    (jint (mem "last_scrape_ns" (Pvmon.to_json m)))

(* --- SLO rules ---------------------------------------------------------------- *)

let test_alert_transitions () =
  let reg = Telemetry.create () in
  let g = Telemetry.gauge ~registry:reg "t.backlog" in
  let rules =
    [
      Pvmon.rule ~name:"t.backlog_depth" ~source:(Pvmon.Gauge_value "t.backlog")
        ~for_ticks:2 ~threshold:5. ();
      (* a rule on an absent instrument must stay idle, not breach *)
      Pvmon.rule ~name:"t.ghost_rate" ~source:(Pvmon.Counter_rate "t.ghost")
        ~threshold:0. ();
    ]
  in
  let m = Pvmon.create ~interval_ns:1_000 ~rules () in
  Pvmon.watch m reg;
  Telemetry.set g 10.;
  Pvmon.scrape m 1_000;
  check tint "for_ticks=2 debounces the first breach" 0
    (List.length (Pvmon.alerts m));
  Pvmon.scrape m 2_000;
  (match Pvmon.alerts m with
  | [ a ] ->
      check tstr "firing rule" "t.backlog_depth" a.Pvmon.al_rule;
      check tbool "firing state" true a.Pvmon.al_firing;
      check tint "firing timestamp" 2_000 a.Pvmon.al_ns;
      check tfloat "breach value captured" 10. a.Pvmon.al_value
  | l -> Alcotest.failf "expected one alert, got %d" (List.length l));
  check Alcotest.(list string) "firing list while breached"
    [ "t.backlog_depth" ] (Pvmon.firing m);
  (* still breached: transitions only, no repeat alert *)
  Pvmon.scrape m 3_000;
  check tint "no repeat while still firing" 1 (List.length (Pvmon.alerts m));
  (* clear: one resolved transition, firing list empties *)
  Telemetry.set g 0.;
  Pvmon.scrape m 4_000;
  (match Pvmon.alerts m with
  | [ _; r ] ->
      check tbool "resolved state" false r.Pvmon.al_firing;
      check tint "resolved timestamp" 4_000 r.Pvmon.al_ns
  | l -> Alcotest.failf "expected two alerts, got %d" (List.length l));
  check Alcotest.(list string) "nothing firing after resolve" []
    (Pvmon.firing m);
  (* a single clear scrape resets the for_ticks streak *)
  Telemetry.set g 10.;
  Pvmon.scrape m 5_000;
  check tint "streak restarts after a clear scrape" 2
    (List.length (Pvmon.alerts m))

let test_below_rule () =
  let reg = Telemetry.create () in
  let g = Telemetry.gauge ~registry:reg "t.level" in
  let rules =
    [
      Pvmon.rule ~name:"t.level_low" ~source:(Pvmon.Gauge_value "t.level")
        ~below:true ~threshold:2. ();
    ]
  in
  let m = Pvmon.create ~interval_ns:1_000 ~rules () in
  Pvmon.watch m reg;
  Telemetry.set g 5.;
  Pvmon.scrape m 1_000;
  check tint "above a below-threshold is healthy" 0
    (List.length (Pvmon.alerts m));
  Telemetry.set g 1.;
  Pvmon.scrape m 2_000;
  check Alcotest.(list string) "below fires" [ "t.level_low" ] (Pvmon.firing m)

(* --- attribution fold --------------------------------------------------------- *)

(* A hand-built span tree on a manual clock:
     simos.syscall (root, 1000 ns total)
       analyzer.process (600 ns total)
         lasagna.append (250 ns)
   Self times: lasagna.append 250, analyzer.process 350, simos 400. *)
let test_attribution_fold () =
  let clock = ref 0 in
  let tracer = Pvtrace.create ~now:(fun () -> !clock) () in
  let m = Pvmon.create ~interval_ns:1_000 ~slow_op_ns:600 ~rules:[] () in
  Pvmon.attach_tracer m tracer;
  Pvtrace.span tracer ~layer:"simos" ~op:"syscall_write" (fun () ->
      clock := !clock + 200;
      Pvtrace.span tracer ~layer:"analyzer" ~op:"process" (fun () ->
          clock := !clock + 150;
          Pvtrace.span tracer ~layer:"lasagna" ~op:"append" (fun () ->
              clock := !clock + 250);
          clock := !clock + 200);
      clock := !clock + 200);
  check tint "three spans folded" 3 (Pvmon.traced_spans m);
  check tint "root duration is the traced total" 1_000
    (Pvmon.traced_total_ns m);
  let row layer =
    List.find (fun r -> String.equal r.Pvmon.lr_layer layer) (Pvmon.attribution m)
  in
  check tint "os self = root minus children" 400 (row "os").Pvmon.lr_self_ns;
  check tint "core self" 350 (row "core").Pvmon.lr_self_ns;
  check tint "lasagna self = leaf duration" 250 (row "lasagna").Pvmon.lr_self_ns;
  check tint "lasagna total = leaf duration" 250 (row "lasagna").Pvmon.lr_total_ns;
  check tint "core total includes the leaf" 600 (row "core").Pvmon.lr_total_ns;
  (* conservation: Σ self over layers = Σ root durations, exactly *)
  let self_sum =
    List.fold_left (fun a r -> a + r.Pvmon.lr_self_ns) 0 (Pvmon.attribution m)
  in
  check tint "conservation" (Pvmon.traced_total_ns m) self_sum;
  (* the flamegraph keys each self-time by its ancestor path *)
  let fg = Pvmon.to_flamegraph m in
  check tbool "leaf stack line" true
    (contains fg "simos.syscall_write;analyzer.process;lasagna.append 250");
  (* slow-op log: both the 1000 ns root and the 600 ns middle span are
     over the 600 ns threshold, each with its ancestor path *)
  match Pvmon.slow_ops m with
  | [ mid; root ] ->
      check tstr "slow middle span" "analyzer.process" mid.Pvmon.so_name;
      check Alcotest.(list string) "middle span's path is the root"
        [ "simos.syscall_write" ] mid.Pvmon.so_path;
      check tstr "slow root span" "simos.syscall_write" root.Pvmon.so_name;
      check Alcotest.(list string) "root has an empty path" [] root.Pvmon.so_path;
      check tint "durations captured" 1_000 root.Pvmon.so_dur_ns
  | l -> Alcotest.failf "expected two slow ops, got %d" (List.length l)

(* Every layer_of target must be a layer LAYERS.sexp declares, so the
   attribution map cannot drift from the contract passarch enforces.  The
   map itself is private to pvmon; its observable range is pinned here by
   folding spans tagged with every span-layer string the stack uses. *)
let test_layer_map_matches_layers_sexp () =
  let rec up dir n =
    let cand = Filename.concat dir "LAYERS.sexp" in
    if Sys.file_exists cand then cand
    else if n = 0 then Alcotest.fail "LAYERS.sexp not found"
    else up (Filename.dirname dir) (n - 1)
  in
  let path = up (Sys.getcwd ()) 8 in
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  (* declared layer names: every "(name X)" occurrence *)
  let declared = ref [] in
  let needle = "(name " in
  let nl = String.length needle in
  String.iteri
    (fun i _ ->
      if i + nl <= String.length src && String.equal (String.sub src i nl) needle
      then begin
        let j = ref (i + nl) in
        while !j < String.length src && src.[!j] <> ')' do incr j done;
        declared := String.sub src (i + nl) (!j - i - nl) :: !declared
      end)
    src;
  let declared = !declared in
  check tbool "parsed some layers" true (List.length declared >= 5);
  (* fold one span per span-layer string the stack emits; the resulting
     attribution rows must all name declared layers *)
  let clock = ref 0 in
  let tracer = Pvtrace.create ~now:(fun () -> !clock) () in
  let m = Pvmon.create ~rules:[] () in
  Pvmon.attach_tracer m tracer;
  List.iter
    (fun layer ->
      Pvtrace.span tracer ~layer ~op:"probe" (fun () -> clock := !clock + 10))
    [ "observer"; "analyzer"; "distributor"; "lasagna"; "wap"; "waldo";
      "simos"; "panfs.client"; "panfs.server"; "nfs.proto"; "unknown_layer" ];
  List.iter
    (fun r ->
      check tbool
        (Printf.sprintf "attributed layer %S is declared in LAYERS.sexp"
           r.Pvmon.lr_layer)
        true
        (List.mem r.Pvmon.lr_layer declared))
    (Pvmon.attribution m)

(* --- multi-instance gauges ---------------------------------------------------- *)

let test_multi_instance_gauge_tagging () =
  let reg = Telemetry.create () in
  let g1 = Telemetry.gauge ~registry:reg "t.mg" in
  let g2 = Telemetry.gauge ~registry:reg "t.mg" in
  Telemetry.set g1 10.;
  Telemetry.set g2 3.;
  let m = Pvmon.create ~rules:[] () in
  Pvmon.watch m reg;
  Pvmon.scrape m 1_000;
  let row = series_named (Pvmon.to_json m) "t.mg" in
  check tint "instance count in JSON" 2 (jint (mem "instances" row));
  (match mem "last" row with
  | Json.Float f -> check tfloat "last-registered value scraped" 3. f
  | _ -> Alcotest.fail "last");
  (* the OpenMetrics exposition tags the gauge so a last-registered-wins
     value can never be mistaken for an aggregate *)
  check tbool "instances label in exposition" true
    (contains (Pvmon.to_openmetrics m) "t_mg{instances=\"2\"} 3.0")

(* --- exports ------------------------------------------------------------------ *)

let test_openmetrics_shape () =
  let reg = Telemetry.create () in
  Telemetry.add (Telemetry.counter ~registry:reg "t.ops") 5;
  Telemetry.observe (Telemetry.histogram ~registry:reg "t.lat") 4.0;
  let m = Pvmon.create ~rules:(Pvmon.default_rules ()) () in
  Pvmon.watch m reg;
  Pvmon.scrape m 1_000;
  let om = Pvmon.to_openmetrics m in
  List.iter
    (fun needle ->
      check tbool (Printf.sprintf "exposition contains %S" needle) true
        (contains om needle))
    [
      "# TYPE t_ops counter"; "t_ops_total 5.0";
      "# TYPE t_lat summary"; "t_lat{quantile=\"0.99\"} 4.0";
      "t_lat_count 1"; "t_lat_sum 4.0";
      "pvmon_scrapes_total 1";
      "pvmon_alert_firing{rule=\"dpapi.write_p99\"} 0";
    ];
  check tbool "terminated by # EOF" true
    (let tail = "# EOF\n" in
     String.length om >= String.length tail
     && String.equal (String.sub om (String.length om - String.length tail)
                        (String.length tail)) tail)

(* --- end to end + determinism ------------------------------------------------- *)

let run_workload () =
  let registry = Telemetry.create () in
  let tracer = Pvtrace.create () in
  let monitor = Pvmon.create () in
  let sys = Runner.local_system ~registry ~tracer ~monitor System.Pass in
  Kepler_wl.run sys ~parent:Kernel.init_pid;
  ignore (System.drain sys : int);
  Pvmon.scrape monitor (Simdisk.Clock.now (System.clock sys));
  monitor

let test_end_to_end_conservation () =
  let m = run_workload () in
  check tbool "scrapes happened" true (Pvmon.scrapes m > 0);
  check tbool "spans folded" true (Pvmon.traced_spans m > 0);
  check tbool "traced time accumulated" true (Pvmon.traced_total_ns m > 0);
  let self_sum =
    List.fold_left (fun a r -> a + r.Pvmon.lr_self_ns) 0 (Pvmon.attribution m)
  in
  check tint "conservation over a full workload" (Pvmon.traced_total_ns m)
    self_sum;
  (* the pipeline instruments made it into the scraped series *)
  let doc = Pvmon.to_json m in
  let _ : Json.t = series_named doc "wap.frames_written" in
  let _ : Json.t = series_named doc "dpapi.pass_write_ns" in
  ()

let test_determinism () =
  let a = run_workload () and b = run_workload () in
  check tbool "byte-identical JSON" true
    (String.equal (Json.to_string (Pvmon.to_json a))
       (Json.to_string (Pvmon.to_json b)));
  check tbool "byte-identical OpenMetrics" true
    (String.equal (Pvmon.to_openmetrics a) (Pvmon.to_openmetrics b));
  check tbool "byte-identical flamegraph" true
    (String.equal (Pvmon.to_flamegraph a) (Pvmon.to_flamegraph b));
  check tbool "byte-identical Chrome counters" true
    (String.equal (Pvmon.to_chrome_counters a) (Pvmon.to_chrome_counters b))

(* --- disabled singleton ------------------------------------------------------- *)

let test_disabled_is_inert () =
  let m = Pvmon.disabled in
  check tbool "disabled" false (Pvmon.enabled m);
  let reg = Telemetry.create () in
  Telemetry.add (Telemetry.counter ~registry:reg "t.c") 1;
  Pvmon.watch m reg;
  Pvmon.tick m 1_000_000_000;
  Pvmon.scrape m 1_000_000_000;
  check tint "never scrapes" 0 (Pvmon.scrapes m);
  check tint "never folds" 0 (Pvmon.traced_spans m);
  check tint "no alerts" 0 (List.length (Pvmon.alerts m));
  (* a system built around the disabled monitor stays disabled *)
  let sys = Runner.local_system System.Pass in
  Kepler_wl.run sys ~parent:Kernel.init_pid;
  ignore (System.drain sys : int);
  check tint "default system monitor took no samples" 0 (Pvmon.scrapes m)

let suite =
  [
    Alcotest.test_case "scrape rates and rings" `Quick test_scrape_rates_and_rings;
    Alcotest.test_case "tick grid alignment" `Quick test_tick_grid;
    Alcotest.test_case "alert transitions" `Quick test_alert_transitions;
    Alcotest.test_case "below-threshold rules" `Quick test_below_rule;
    Alcotest.test_case "attribution fold" `Quick test_attribution_fold;
    Alcotest.test_case "layer map matches LAYERS.sexp" `Quick
      test_layer_map_matches_layers_sexp;
    Alcotest.test_case "multi-instance gauge tagging" `Quick
      test_multi_instance_gauge_tagging;
    Alcotest.test_case "openmetrics shape" `Quick test_openmetrics_shape;
    Alcotest.test_case "end-to-end conservation" `Quick
      test_end_to_end_conservation;
    Alcotest.test_case "export determinism" `Quick test_determinism;
    Alcotest.test_case "disabled singleton is inert" `Quick
      test_disabled_is_inert;
  ]
