(* The deep-stack tests: the paper's §5.2 claim that the DPAPI enables an
   arbitrary number of layers.  We build the five-layer configuration the
   paper sketches — a provenance-aware Pyth application using a
   provenance-aware Pyth library, both executing on the (wrapped)
   interpreter, over PA-NFS, over PASSv2 at the server — and check that
   one query crosses all of it.  Plus the workload sanity checks. *)

let check = Alcotest.check
let tbool = Alcotest.bool

let test_five_layer_stack () =
  (* layer 5: PASSv2 at the NFS server; layer 4: PA-NFS; layers 3-1: the
     interpreter, the library, the application *)
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "scratch" ] () in
  let clock = System.clock sys in
  let server = Server.create ~mode:Server.Pass_enabled ~clock ~machine:2 ~volume:"vol0" () in
  let net = Proto.net clock in
  let client =
    Client.create ~net ~handler:(Server.handle server)
      ~ctx:(Kernel.ctx (System.kernel sys))
      ~mount_name:"vol0" ()
  in
  System.mount_external sys ~name:"vol0" ~ops:(Client.ops client)
    ~endpoint:(Client.endpoint client)
    ~file_handle:(Client.file_handle client)
    ~flush:(fun () -> Client.flush client) ();
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  (* the provenance-aware library lives on the remote volume *)
  Pyth.write_file sys ~pid "/vol0/lib/stats.py"
    {|def total(doc):
    import xml
    t = 0.0
    for r in xml.findall(doc, "r"):
        t = t + float(xml.attr(r, "v"))
    return t
def report(doc):
    return "total=" + str(total(doc))
|};
  Pyth.write_file sys ~pid "/vol0/data/readings.xml" {|<log><r v="1.5"/><r v="2.5"/></log>|};
  let session = Pyth.create ~provenance:true ~module_dir:"/vol0/lib" sys ~pid () in
  (* note: the report string must come from a *wrapped* library function —
     a bare str() would launder the tag (the §6.5 lesson again) *)
  Pyth.run session
    {|import xml
import stats
d = xml.parse_file("/vol0/data/readings.xml")
writefile("/vol0/out/sum.txt", stats.report(d))
|};
  ignore (System.drain sys : int);
  ignore (Server.drain server : int);
  (* everything persisted at the *server* (the provenance traveled down
     all five layers and across the network) *)
  let db = Option.get (Server.db server) in
  check tbool "server db acyclic" true (Provdb.is_acyclic db);
  let fine =
    Helpers.pql_names db
      {|select A from Provenance.file as F, F.input as I, I.input* as A
        where F.name = "sum.txt" and I.type = "INVOCATION"|}
  in
  check tbool "app-layer chain reaches the xml file" true (List.mem "readings.xml" fine);
  check tbool "library function object present" true
    (List.exists (fun n -> n = "stats.report") fine);
  (* the library FILE itself is an ancestor (the function object links to
     the module file, which lives at the server) *)
  let lib_ancestor =
    Helpers.pql_names db
      {|select A from Provenance.file as F F.input* as A where F.name = "sum.txt"|}
  in
  check tbool "library file in full ancestry" true (List.mem "stats.py" lib_ancestor)

let test_workloads_generate_valid_provenance () =
  (* every Table 2 workload leaves an acyclic database behind *)
  let run_one (w : Runner.workload) =
    let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
    w.run sys;
    ignore (System.drain sys : int);
    let db = Option.get (System.waldo_db sys "vol0") in
    check tbool (w.wl_name ^ ": acyclic") true (Provdb.is_acyclic db);
    check tbool (w.wl_name ^ ": nonempty") true (Provdb.quad_count db > 0)
  in
  List.iter run_one (Runner.standard ~scale:0.3 ())

let test_workloads_deterministic () =
  let elapsed (w : Runner.workload) =
    let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
    w.run sys;
    System.elapsed_seconds sys
  in
  List.iter
    (fun w ->
      let a = elapsed w and b = elapsed w in
      check (Alcotest.float 1e-9) (w.Runner.wl_name ^ ": deterministic") a b)
    (Runner.standard ~scale:0.2 ())

let test_measured_overheads_positive () =
  let w = List.nth (Runner.standard ~scale:0.3 ()) 2 (* mercurial *) in
  let row = Runner.measure_local w in
  check tbool "pass slower than ext3" true (row.Runner.pass_seconds > row.Runner.base_seconds);
  check tbool "overhead positive and sane" true
    (row.Runner.overhead_pct > 0. && row.Runner.overhead_pct < 100.);
  let sp = Runner.measure_space w in
  check tbool "provenance space positive" true (sp.Runner.prov_mb > 0.);
  check tbool "indexes add space" true (sp.Runner.total_mb > sp.Runner.prov_mb)

let test_compile_ancestry_depth () =
  (* after the compile workload, vmlinux's ancestry reaches the original
     sources through two link stages and the compile processes *)
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  Linux_compile.run
    ~params:{ Linux_compile.default with dirs = 2; files_per_dir = 3 }
    sys ~parent:Kernel.init_pid;
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as V V.input* as A where V.name = "vmlinux"|}
  in
  check tbool "sources in vmlinux ancestry" true (List.mem "f0.c" names);
  check tbool "compiler binary in ancestry" true (List.mem "cc" names);
  check tbool "intermediate objects in ancestry" true (List.mem "built-in.o" names)

let suite =
  [
    Alcotest.test_case "five-layer stack (§5.2)" `Quick test_five_layer_stack;
    Alcotest.test_case "workloads leave valid provenance" `Slow
      test_workloads_generate_valid_provenance;
    Alcotest.test_case "workloads are deterministic" `Slow test_workloads_deterministic;
    Alcotest.test_case "measured overheads are sane" `Slow test_measured_overheads_positive;
    Alcotest.test_case "compile ancestry depth" `Quick test_compile_ancestry_depth;
  ]
