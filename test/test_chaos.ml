(* Chaos harness: postmark/blast-style workloads under seeded fault plans
   (ISSUE: robustness).  The invariants asserted are the paper's:

   - every write acknowledged to the application has consistent provenance
     after recovery (WAP, §5.6 — zero digest mismatches once faults clear);
   - orphaned transactions are exactly those of crashed or timed-out
     clients (§6.1.2 — Waldo discards them, nothing else);
   - duplicate delivery and retransmission never double-apply an
     operation (the server's duplicate-request cache replays, §6.1);
   - the system converges once faults clear (the write-behind backlog
     drains and reads observe the last acknowledged contents).

   Runs standalone (dune exec test/test_chaos.exe); the CI chaos-smoke job
   pins seeds via PASS_CHAOS_SEEDS and archives CHAOS_telemetry.json. *)

open Pass_core
module Clock = Simdisk.Clock
module Disk = Simdisk.Disk

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "dpapi error: %s" (Dpapi.error_to_string e)

let ok_fs = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs error: %s" (Vfs.errno_to_string e)

let tv registry name = Option.value (Telemetry.counter_value registry name) ~default:0

let pinned_seeds =
  match Sys.getenv_opt "PASS_CHAOS_SEEDS" with
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
  | None -> [ 11; 23; 47 ]

(* One PA server + one PA-NFS client sharing a clock, with [plan] wired
   into both the transport and the server's disk. *)
type rig = {
  registry : Telemetry.registry;
  clock : Clock.t;
  plan : Fault.plan;
  net : Proto.net;
  server : Server.t;
  client : Client.t;
}

let rig ?(spec = Fault.default_chaos) ?wb_high_water ?piggyback ?tracer ~seed () =
  let registry = Telemetry.create () in
  let clock = Clock.create () in
  let plan = Fault.plan ~registry ~spec ~seed () in
  let server =
    Server.create ~registry ?tracer ~fault:plan ~mode:Server.Pass_enabled ~clock ~machine:2
      ~volume:"nfs0" ()
  in
  let net = Proto.net ~fault:plan clock in
  let client =
    Client.create ~registry ?wb_high_water ?piggyback ?tracer ~net
      ~handler:(Server.handle server) ~ctx:(Ctx.create ~machine:1) ~mount_name:"nfs0" ()
  in
  { registry; clock; plan; net; server; client }

let count_params db pnode =
  List.length
    (List.filter (fun (q : Provdb.quad) -> q.q_attr = "PARAMS") (Provdb.records_all db pnode))

(* --- postmark under chaos ---------------------------------------------------- *)

type outcome = { o_registry : Telemetry.registry; o_digest : string; o_clock : int }

(* A postmark-style mix of creates, (re)writes and reads under a seeded
   fault plan.  The model records only acknowledged writes; after faults
   clear, every modelled file must read back its last acked contents, and
   recovery over the server's volume must find zero inconsistencies. *)
let postmark ?piggyback ~seed () =
  let r = rig ?piggyback ~seed () in
  let ops = Client.ops r.client in
  (* path -> (handle, last acked content, acked provenance writes) *)
  let model : (string, Dpapi.handle * string * int) Hashtbl.t = Hashtbl.create 64 in
  let acked path h data =
    let n = match Hashtbl.find_opt model path with Some (_, _, n) -> n | None -> 0 in
    Hashtbl.replace model path (h, data, n + 1)
  in
  let write path h k data =
    (* unique record values: the analyzer must not elide them, so the db
       count below is an exact no-double-apply check *)
    let bundle =
      [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str (Printf.sprintf "%s#%d" path k)) ] ]
    in
    match Client.pass_write r.client h ~off:0 ~data:(Some data) bundle with
    | Ok _ -> acked path h data
    | Error _ -> () (* not acked: the model owes nothing for it *)
  in
  for i = 0 to 39 do
    let path = Printf.sprintf "/p%03d" i in
    match Vfs.create_path ops path Vfs.Regular with
    | Error _ -> () (* create lost to the fault plan; the name is never reused *)
    | Ok ino -> (
        match Client.file_handle r.client ino with
        | Error _ -> ()
        | Ok h ->
            let body =
              String.make (64 + (i * 37 mod 512)) (Char.chr (97 + (i mod 26)))
            in
            write path h 0 (Printf.sprintf "%s:%s" path body);
            if i mod 5 = 0 then write path h 1 (Printf.sprintf "%s:v2:%s" path body);
            (* reads exercise the path under faults; no assertions here *)
            if i mod 3 = 0 then
              ignore
                (Client.pass_read r.client h ~off:0 ~len:8
                  : (Dpapi.read_result, Dpapi.error) result))
  done;
  (* faults clear: the system must converge *)
  Fault.deactivate r.plan;
  (match Client.drain_backlog r.client with
  | Ok () -> ()
  | Error e -> Alcotest.failf "backlog did not drain: %s" (Dpapi.error_to_string e));
  check tint "backlog empty once faults clear" 0 (Client.backlog r.client);
  (* a second client begins a transaction and dies: its transaction must
     be the only orphan *)
  let victim =
    (* shares the rig's net: client ids are per-net, and the server's DRC
       keys on (client id, seq) *)
    Client.create ~registry:r.registry ~net:r.net ~handler:(Server.handle r.server)
      ~ctx:(Ctx.create ~machine:3) ~mount_name:"nfs0" ()
  in
  let vic_ino = ok_fs (Vfs.create_path (Client.ops victim) "/victim" Vfs.Regular) in
  let vh = ok_fs (Client.file_handle victim vic_ino) in
  let txn = ok (Client.begin_txn victim) in
  ok
    (Client.send_prov_chunk victim ~txn
       [ Dpapi.entry vh [ Record.make "PARAMS" (Pvalue.Str "never-committed") ] ]);
  Client.crash victim;
  (* every acked write reads back its last acked contents *)
  Hashtbl.iter
    (fun path (h, data, _) ->
      match Client.pass_read r.client h ~off:0 ~len:(String.length data) with
      | Ok rr -> check tstr (path ^ " readback") data rr.Dpapi.data
      | Error e ->
          Alcotest.failf "%s unreadable after faults cleared: %s" path
            (Dpapi.error_to_string e))
    model;
  (* recovery over the server volume, before Waldo consumes the logs *)
  let report = ok_fs (Recovery.scan ~registry:r.registry (Ext3.ops (Server.ext3 r.server))) in
  check tint "zero acked writes with inconsistent provenance" 0
    (List.length report.Recovery.inconsistent);
  check (Alcotest.list tint) "open txns are exactly the crashed client's" [ txn ]
    report.Recovery.open_txns;
  let orphans = Server.drain r.server in
  check tint "orphans = crashed + abandoned txns"
    (1 + tv r.registry "nfs.txns_abandoned")
    orphans;
  (* no double-applies: each file holds exactly one record per acked write *)
  let db = Option.get (Server.db r.server) in
  Hashtbl.iter
    (fun path (h, _, n) ->
      check tint (path ^ " applied exactly once per ack") n (count_params db h.Dpapi.pnode))
    model;
  (* the surviving graph passes offline verification *)
  let vreport = Pvcheck.check_db ~volume:"nfs0" db in
  if not (Pvcheck.clean vreport) then
    Alcotest.failf "pvcheck after chaos run:@ %a" Pvcheck.pp_report vreport;
  check tbool "faults actually injected" true (tv r.registry "fault.injected.total" > 0);
  check tbool "client retried" true (tv r.registry "nfs.retries" > 0);
  check tbool "retransmissions replayed from the DRC" true (tv r.registry "nfs.drc.hits" > 0);
  { o_registry = r.registry; o_digest = Fault.digest r.plan; o_clock = Clock.now r.clock }

let test_postmark_under_chaos () =
  let last =
    List.fold_left (fun _ seed -> Some (postmark ~seed ())) None pinned_seeds
  in
  (* snapshot for the CI chaos-smoke artifact *)
  match last with
  | None -> Alcotest.fail "no seeds"
  | Some o ->
      let oc = open_out "CHAOS_telemetry.json" in
      output_string oc (Telemetry.to_json o.o_registry);
      output_char oc '\n';
      close_out oc

(* --- batching must not change the graph -------------------------------------- *)

(* The same run with and without the client's piggyback batching must
   produce the same provenance: batching changes how records travel (one
   OP_PASSBATCH envelope vs one RPC each), never what the graph says.
   Under a quiet plan the two server databases must be byte-identical and
   recovery must report the same (clean) outcome; under the default chaos
   plan the unbatched run must satisfy every invariant the batched
   chaos.001 run already asserts (convergence, pvcheck-clean, exactly one
   application per ack). *)
let quiet_run ~piggyback ~seed =
  let r = rig ~spec:Fault.quiet ~piggyback ~seed () in
  let ops = Client.ops r.client in
  for i = 0 to 23 do
    let path = Printf.sprintf "/e%03d" i in
    let ino = ok_fs (Vfs.create_path ops path Vfs.Regular) in
    let h = ok_fs (Client.file_handle r.client ino) in
    ignore
      (ok
         (Client.pass_write r.client h ~off:0 ~data:(Some path)
            [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str path) ] ])
        : int);
    (* a provenance-only write that piggyback merges into the pending
       buffer for the same file *)
    if i mod 4 = 0 then
      ignore
        (ok
           (Client.pass_write r.client h ~off:0 ~data:None
              [ Dpapi.entry h [ Record.make "ENV" (Pvalue.Str "quiet") ] ])
          : int)
  done;
  ok_fs (Client.flush r.client);
  let report = ok_fs (Recovery.scan ~registry:r.registry (Ext3.ops (Server.ext3 r.server))) in
  ignore (Server.drain r.server : int);
  let db = Option.get (Server.db r.server) in
  let v = Pvcheck.check_db ~volume:"nfs0" db in
  if not (Pvcheck.clean v) then Alcotest.failf "pvcheck (quiet run):@ %a" Pvcheck.pp_report v;
  (Provdb.serialize db, List.length report.Recovery.inconsistent, report.Recovery.open_txns)

let test_batching_on_off_same_provdb () =
  let seed = List.hd pinned_seeds in
  (* chaos plan, batching off: all of chaos.001's invariants still hold *)
  ignore (postmark ~piggyback:false ~seed () : outcome);
  (* quiet plan: byte-identical provenance and recovery either way *)
  let db_on, inc_on, txns_on = quiet_run ~piggyback:true ~seed in
  let db_off, inc_off, txns_off = quiet_run ~piggyback:false ~seed in
  check tint "recovery is clean with batching on" 0 inc_on;
  check tint "identical recovery outcome" inc_on inc_off;
  check (Alcotest.list tint) "identical open transactions" txns_on txns_off;
  check tbool "batched and unbatched provdbs are byte-identical" true
    (String.equal db_on db_off)

(* --- determinism ------------------------------------------------------------- *)

let compared_counters =
  [ "fault.injected.total"; "nfs.retries"; "nfs.drc.hits"; "nfs.drc.misses";
    "nfs.backpressure"; "nfs.txns_abandoned"; "lasagna.io_retries" ]

let test_same_seed_identical () =
  let seed = List.hd pinned_seeds in
  let a = postmark ~seed () in
  let b = postmark ~seed () in
  check tstr "byte-identical fault schedule" a.o_digest b.o_digest;
  check tint "identical simulated elapsed time" a.o_clock b.o_clock;
  List.iter
    (fun name -> check tint name (tv a.o_registry name) (tv b.o_registry name))
    compared_counters

(* --- tracing across the wire under chaos ------------------------------------- *)

(* The call envelope carries the trace context and is built once, before
   the retry loop, like the sequence number.  So a retransmission (and
   the DRC replay it triggers) must reuse the original span ids: every
   server span — including "cached" replays — parents onto a live client
   RPC span, and one client span fathers the original execution plus each
   replay.  Same seed ⇒ byte-identical Chrome artifact. *)
let traced_run ~seed () =
  let tracer = Pvtrace.create () in
  let r = rig ~tracer ~seed () in
  let ops = Client.ops r.client in
  for i = 0 to 39 do
    let path = Printf.sprintf "/w%03d" i in
    match Vfs.create_path ops path Vfs.Regular with
    | Error _ -> ()
    | Ok ino -> (
        match Client.file_handle r.client ino with
        | Error _ -> ()
        | Ok h ->
            ignore
              (Client.pass_write r.client h ~off:0 ~data:(Some path)
                 [ Dpapi.entry h [ Record.name path ] ]
                : (int, Dpapi.error) result);
            if i mod 3 = 0 then
              ignore
                (Client.pass_read r.client h ~off:0 ~len:4
                  : (Dpapi.read_result, Dpapi.error) result))
  done;
  Fault.deactivate r.plan;
  (match Client.drain_backlog r.client with
  | Ok () -> ()
  | Error e -> Alcotest.failf "backlog did not drain: %s" (Dpapi.error_to_string e));
  ignore (Server.drain r.server : int);
  (tracer, r.registry)

let test_wire_spans_under_chaos () =
  let seed = List.hd pinned_seeds in
  let tracer, registry = traced_run ~seed () in
  check tbool "faults forced retries" true (tv registry "nfs.retries" > 0);
  check tbool "retransmissions replayed from the DRC" true (tv registry "nfs.drc.hits" > 0);
  let spans = Pvtrace.spans tracer in
  let by_id = Hashtbl.create 1024 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.Pvtrace.sp_id sp) spans;
  let servers = List.filter (fun sp -> sp.Pvtrace.sp_layer = "panfs.server") spans in
  check tbool "server spans recorded" true (servers <> []);
  (* every server span has a client parent, restarts and retries included *)
  List.iter
    (fun sp ->
      match Hashtbl.find_opt by_id sp.Pvtrace.sp_parent with
      | Some p ->
          check tstr "server span parents on a client rpc" "panfs.client" p.Pvtrace.sp_layer;
          check tint "and stays in the client's trace" p.Pvtrace.sp_trace sp.Pvtrace.sp_trace
      | None ->
          Alcotest.failf "server span %d (%s) has unresolved parent %d" sp.Pvtrace.sp_id
            sp.Pvtrace.sp_op sp.Pvtrace.sp_parent)
    servers;
  (* DRC replays surface as "cached" server spans; because the envelope is
     reused, the replay shares its parent with the original execution —
     the ids were not re-minted for the retransmission *)
  let cached = List.filter (fun sp -> sp.Pvtrace.sp_outcome = "cached") servers in
  check tbool "drc replays appear as cached server spans" true (cached <> []);
  let children_of parent =
    List.length (List.filter (fun sp -> sp.Pvtrace.sp_parent = parent) servers)
  in
  List.iter
    (fun sp ->
      check tbool "original execution and replay share one client span" true
        (children_of sp.Pvtrace.sp_parent >= 2))
    cached;
  (* same seed, same bytes *)
  let tracer2, _ = traced_run ~seed () in
  check tstr "byte-identical chrome artifact across same-seed runs"
    (Pvtrace.to_chrome tracer) (Pvtrace.to_chrome tracer2)

(* --- pvmon rides the chaos rig ------------------------------------------------ *)

(* The monitor watches the rig's registry, sinks the shared tracer and
   ticks off the shared clock — the same wiring System.create does, built
   by hand because the chaos rig has no simos.  The storm spec draws
   partitions longer than the client's retry budget, so writes park in
   the write-behind queue; with thresholds far below what that produces,
   the storm must trip the retry-rate and backlog rules.  And because
   every input is seeded, the whole monitor state — alert stream
   included — must be byte-identical across same-seed runs. *)
let monitor_storm_spec =
  {
    Fault.default_chaos with
    Fault.partition = 25;
    partition_ns = (900_000_000, 1_600_000_000);
  }

let monitored_run ~seed () =
  let tracer = Pvtrace.create () in
  let rules =
    [
      Pvmon.rule ~name:"nfs.retry_rate" ~source:(Pvmon.Counter_rate "nfs.retries")
        ~threshold:0.5 ();
      Pvmon.rule ~name:"nfs.wb_backlog_depth"
        ~source:(Pvmon.Gauge_value "nfs.wb_backlog") ~threshold:0.5 ();
    ]
  in
  let monitor = Pvmon.create ~interval_ns:1_000_000 ~rules () in
  let r = rig ~spec:monitor_storm_spec ~tracer ~seed () in
  Pvtrace.set_now tracer (fun () -> Clock.now r.clock);
  Pvmon.watch monitor r.registry;
  Pvmon.attach_tracer monitor tracer;
  Clock.on_advance r.clock (fun now -> Pvmon.tick monitor now);
  let ops = Client.ops r.client in
  for i = 0 to 39 do
    let path = Printf.sprintf "/m%03d" i in
    match Vfs.create_path ops path Vfs.Regular with
    | Error _ -> ()
    | Ok ino -> (
        match Client.file_handle r.client ino with
        | Error _ -> ()
        | Ok h ->
            ignore
              (Client.pass_write r.client h ~off:0 ~data:(Some path)
                 [ Dpapi.entry h [ Record.name path ] ]
                : (int, Dpapi.error) result))
  done;
  Fault.deactivate r.plan;
  (match Client.drain_backlog r.client with
  | Ok () -> ()
  | Error e -> Alcotest.failf "backlog did not drain: %s" (Dpapi.error_to_string e));
  ignore (Server.drain r.server : int);
  Pvmon.scrape monitor (Clock.now r.clock);
  monitor

let test_pvmon_under_chaos () =
  let seed = List.hd pinned_seeds in
  let m = monitored_run ~seed () in
  let fired name =
    List.exists
      (fun a -> a.Pvmon.al_firing && String.equal a.Pvmon.al_rule name)
      (Pvmon.alerts m)
  in
  check tbool "fault storm fires the retry-rate rule" true (fired "nfs.retry_rate");
  check tbool "fault storm fires the backlog rule" true
    (fired "nfs.wb_backlog_depth");
  check tbool "monitor scraped during the storm" true (Pvmon.scrapes m > 1);
  check tbool "spans folded into attribution" true (Pvmon.traced_spans m > 0);
  (* exact conservation holds under faults too: retries, replays and
     abandoned transactions are ordinary spans to the fold *)
  let self_sum =
    List.fold_left (fun a r -> a + r.Pvmon.lr_self_ns) 0 (Pvmon.attribution m)
  in
  check tint "attribution conserves traced time under chaos"
    (Pvmon.traced_total_ns m) self_sum;
  (* same seed ⇒ the full monitor state, alert stream included, is
     byte-identical *)
  let m2 = monitored_run ~seed () in
  check tstr "byte-identical pvmon export across same-seed runs"
    (Telemetry.Json.to_string (Pvmon.to_json m))
    (Telemetry.Json.to_string (Pvmon.to_json m2));
  check tstr "byte-identical openmetrics across same-seed runs"
    (Pvmon.to_openmetrics m) (Pvmon.to_openmetrics m2)

(* --- blast: >64 KB transactional writes under long partitions ---------------- *)

(* Partitions longer than the client's whole retry budget (~0.8 s of
   simulated time) force transaction abandonment and write-behind
   parking; the replay after faults clear must commit each blast exactly
   once, and Waldo must discard exactly the abandoned fragments. *)
let blast_spec =
  {
    Fault.default_chaos with
    Fault.partition = 25;
    partition_ns = (900_000_000, 1_600_000_000);
    server_restart = 5;
    restart_ns = (900_000_000, 1_200_000_000);
  }

let test_blast_no_double_apply () =
  let seed = List.hd pinned_seeds in
  let r = rig ~spec:blast_spec ~seed () in
  let ops = Client.ops r.client in
  let acked = ref [] in
  for i = 0 to 7 do
    let path = Printf.sprintf "/blast%d" i in
    match Vfs.create_path ops path Vfs.Regular with
    | Error _ -> ()
    | Ok ino -> (
        match Client.file_handle r.client ino with
        | Error _ -> ()
        | Ok h ->
            let records =
              List.init 3000 (fun j ->
                  Record.make "PARAMS" (Pvalue.Str (Printf.sprintf "b%d-%06d" i j)))
            in
            let bundle = [ Dpapi.entry h records ] in
            assert (Dpapi.bundle_size bundle > Proto.block_limit);
            (match Client.pass_write r.client h ~off:0 ~data:(Some "payload") bundle with
            | Ok _ -> acked := (path, h) :: !acked
            | Error _ -> ()))
  done;
  Fault.deactivate r.plan;
  (match Client.drain_backlog r.client with
  | Ok () -> ()
  | Error e -> Alcotest.failf "backlog did not drain: %s" (Dpapi.error_to_string e));
  check tbool "some blasts were acknowledged" true (!acked <> []);
  check tbool "the transaction path was exercised" true ((Client.stats r.client).txns > 0);
  let orphans = Server.drain r.server in
  check tint "orphans are exactly the abandoned txns"
    (tv r.registry "nfs.txns_abandoned")
    orphans;
  let db = Option.get (Server.db r.server) in
  List.iter
    (fun (path, (h : Dpapi.handle)) ->
      check tint (path ^ " committed exactly once") 3000 (count_params db h.Dpapi.pnode))
    !acked

(* --- backpressure during a long partition ------------------------------------ *)

let test_backpressure_bounds_backlog () =
  let seed = 101 in
  (* phase 1: under a quiet plan, count the RPCs the setup needs, so the
     real run's fault window opens exactly after setup *)
  let setup r =
    let ino = ok_fs (Vfs.create_path (Client.ops r.client) "/bp" Vfs.Regular) in
    ok_fs (Client.file_handle r.client ino)
  in
  let probe = rig ~spec:Fault.quiet ~seed () in
  ignore (setup probe : Dpapi.handle);
  let setup_rpcs = (Client.stats probe.client).rpcs in
  (* phase 2: everything after setup hits a partition far longer than the
     retry budget *)
  let hour = 3_600_000_000_000 in
  let spec =
    {
      Fault.quiet with
      Fault.partition = 1000;
      partition_ns = (hour, hour);
      net_after_op = setup_rpcs;
    }
  in
  let r = rig ~spec ~wb_high_water:8 ~seed () in
  let h = setup r in
  let wrote = ref 0 and eagain = ref 0 in
  for k = 1 to 12 do
    let bundle =
      [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str (Printf.sprintf "bp#%02d" k)) ] ]
    in
    match Client.pass_write r.client h ~off:0 ~data:None bundle with
    | Ok _ -> incr wrote
    | Error Dpapi.Eagain -> incr eagain
    | Error e -> Alcotest.failf "unexpected error: %s" (Dpapi.error_to_string e)
  done;
  check tint "backlog capped at the high-water mark" 8 (Client.backlog r.client);
  check tint "writes past the mark fail with EAGAIN" 4 !eagain;
  check tbool "backpressure counted" true (tv r.registry "nfs.backpressure" > 0);
  (match Client.drain_backlog r.client with
  | Error Dpapi.Eagain -> ()
  | _ -> Alcotest.fail "drain must refuse while partitioned");
  Fault.deactivate r.plan;
  ok (Client.drain_backlog r.client);
  check tint "backlog empty once the partition heals" 0 (Client.backlog r.client);
  ignore (Server.drain r.server : int);
  let db = Option.get (Server.db r.server) in
  check tint "every parked write reached the server exactly once" !wrote
    (count_params db h.Dpapi.pnode)

(* --- disk faults against a local Lasagna ------------------------------------- *)

let local_rig ~registry () =
  let clock = Clock.create () in
  let disk = Disk.create ~registry ~clock () in
  let ext3 = Ext3.format disk in
  let lasagna =
    Lasagna.create ~registry ~lower:(Ext3.ops ext3) ~ctx:(Ctx.create ~machine:1)
      ~volume:"vol0" ~charge:(Clock.advance clock) ()
  in
  (disk, ext3, lasagna)

let test_transient_io_retried () =
  let registry = Telemetry.create () in
  let disk, _ext3, lasagna = local_rig ~registry () in
  let ops = Lasagna.ops lasagna in
  (* create the tree first: only the read/write paths carry the retry *)
  let inos =
    List.init 20 (fun i -> ok_fs (Vfs.create_path ops (Printf.sprintf "/t%02d" i) Vfs.Regular))
  in
  Disk.set_fault disk
    (Fault.plan ~registry
       ~spec:{ Fault.quiet with Fault.disk_read_error = 80; disk_write_error = 80 }
       ~seed:7 ());
  let payload i = Printf.sprintf "transient-%02d:%s" i (String.make 200 't') in
  List.iteri (fun i ino -> ok_fs (ops.Vfs.write ino ~off:0 (payload i))) inos;
  List.iteri
    (fun i ino ->
      let want = payload i in
      check tstr
        (Printf.sprintf "/t%02d survives transient EIO" i)
        want
        (ok_fs (ops.Vfs.read ino ~off:0 ~len:(String.length want))))
    inos;
  check tbool "transient errors were retried" true (tv registry "lasagna.io_retries" > 0)

let corruption_case name spec_of_quiet =
  let registry = Telemetry.create () in
  let disk, ext3, lasagna = local_rig ~registry () in
  let ops = Lasagna.ops lasagna in
  let ep = Lasagna.endpoint lasagna in
  let ino = ok_fs (Vfs.create_path ops "/victim" Vfs.Regular) in
  let h = ok_fs (Lasagna.file_handle lasagna ino) in
  ignore
    (ok
       (ep.Dpapi.pass_write h ~off:0
          ~data:(Some (String.make 4096 'a'))
          [ Dpapi.entry h [ Record.name "victim" ] ])
      : int);
  (* the next write is silently damaged on the medium *)
  Disk.set_fault disk (Fault.plan ~registry ~spec:(spec_of_quiet Fault.quiet) ~seed:7 ());
  ignore
    (ep.Dpapi.pass_write h ~off:0
       ~data:(Some (String.make 4096 'b'))
       [ Dpapi.entry h [ Record.name "victim" ] ]
      : (int, Dpapi.error) result);
  Disk.set_fault disk Fault.none;
  ignore (ext3 : Ext3.t);
  (* a fresh mount, so recovery reads the damaged medium rather than the
     page cache; it must report the damage as an inconsistency, never raise *)
  let remounted = Ext3.mount disk in
  let report = ok_fs (Recovery.scan ~registry (Ext3.ops remounted)) in
  check tbool (name ^ " detected by the WAP digests") true
    (report.Recovery.inconsistent <> [] || report.Recovery.torn_bytes > 0)

let test_latent_corruption_reported () =
  corruption_case "corrupt sector" (fun q -> { q with Fault.corrupt_sector = 1000 });
  corruption_case "torn write" (fun q -> { q with Fault.torn_write = 1000 })

(* --- crashes during checkpoint / truncate / archive -------------------------- *)

(* A local Lasagna+Waldo rig with a checkpoint policy; the disk is
   exposed so the sweep can pull the plug at a chosen write tick. *)
let ckpt_rig ~registry ?policy ?compact_keep () =
  let clock = Clock.create () in
  let disk = Disk.create ~registry ~clock () in
  let ext3 = Ext3.format disk in
  let lasagna =
    Lasagna.create ~registry ~log_max:256 ~lower:(Ext3.ops ext3)
      ~ctx:(Ctx.create ~machine:1) ~volume:"vol0" ~charge:(Clock.advance clock) ()
  in
  let waldo = Waldo.create ~registry ?policy ?compact_keep ~lower:(Ext3.ops ext3) () in
  Waldo.attach waldo lasagna;
  (disk, ext3, lasagna, waldo)

(* Deterministic version history: 6 files, 3 freeze rounds each, so a
   compacting checkpoint has versions to push into the cold tier. *)
let ckpt_workload lasagna waldo =
  let ep = Lasagna.endpoint lasagna in
  let hs =
    Array.init 6 (fun i ->
        let h = ok (ep.Dpapi.pass_mkobj ~volume:(Some "vol0")) in
        ok (Dpapi.disclose ep h [ Record.name (Printf.sprintf "f%d" i) ]);
        h)
  in
  for round = 1 to 3 do
    Array.iter
      (fun h ->
        ok (Dpapi.disclose ep h [ Record.make "PARAMS" (Pvalue.Int round) ]);
        ignore (ok (ep.Dpapi.pass_freeze h) : int))
      hs
  done;
  ignore (Waldo.finalize waldo lasagna : int);
  hs

(* Crash at every disk-write tick of a compacting checkpoint (image,
   archive segment, pending sidecar, MANIFEST rename, truncation,
   old-generation cleanup).  Whatever the tick, recovery must land on a
   provdb byte-identical to the no-crash run's, and pvcheck must come
   back clean over checkpoint + archive + suffix.  Ticks before the
   MANIFEST rename recover to the pre-checkpoint state (all logs
   intact) and re-checkpoint; ticks after it adopt the new image and
   finish the interrupted cleanup. *)
let test_crash_during_checkpoint_sweep () =
  (* reference: the same rig, checkpointed without a crash *)
  let reference, ckpt_writes =
    let registry = Telemetry.create () in
    let disk, _ext3, lasagna, waldo =
      ckpt_rig ~registry ~policy:Waldo.Manual ~compact_keep:1 ()
    in
    ignore (ckpt_workload lasagna waldo : Dpapi.handle array);
    let before = (Disk.stats disk).writes in
    ok_fs (Waldo.checkpoint waldo);
    let writes = (Disk.stats disk).writes - before in
    Waldo.fault_in_archive waldo;
    (Provdb.serialize (Waldo.db waldo), writes)
  in
  check tbool "checkpoint hits the disk" true (ckpt_writes > 0);
  let ticks =
    if ckpt_writes <= 64 then List.init ckpt_writes (fun i -> i + 1)
    else
      (* too many ticks to sweep exhaustively: seeded sample, endpoints pinned *)
      List.sort_uniq Int.compare
        ((1 :: [ ckpt_writes ])
        @ List.concat_map
            (fun seed -> Fault.crash_points ~seed ~writes:ckpt_writes ~count:24)
            pinned_seeds)
  in
  let precommit = ref 0 and postcommit = ref 0 in
  List.iter
    (fun k ->
      let registry = Telemetry.create () in
      let disk, _ext3, lasagna, waldo =
        ckpt_rig ~registry ~policy:Waldo.Manual ~compact_keep:1 ()
      in
      ignore (ckpt_workload lasagna waldo : Dpapi.handle array);
      Disk.schedule_crash disk ~after_writes:k;
      (match Waldo.checkpoint waldo with Ok () | Error _ -> ());
      Disk.revive disk;
      let ext3 = Ext3.mount disk in
      let lower = Ext3.ops ext3 in
      let w2, info =
        ok_fs (Waldo.recover ~registry ~policy:Waldo.Manual ~compact_keep:1 ~lower ())
      in
      (if info.Waldo.ri_manifest then begin
         (* the MANIFEST rename had landed: the new checkpoint wins *)
         incr postcommit;
         check tint (Printf.sprintf "tick %d: recovered generation" k) 1 info.Waldo.ri_gen;
         (* covered logs may still be on disk (crash before truncation
            finished) but are skipped unread; only the suffix replays *)
         check tbool
           (Printf.sprintf "tick %d: replay bounded by the watermark" k)
           true
           (info.Waldo.ri_logs_replayed <= 1)
       end
       else begin
         (* pre-commit crash: every log survived; re-checkpoint and the
            sweep converges on the very same image *)
         incr precommit;
         check tbool
           (Printf.sprintf "tick %d: pre-commit crash keeps all logs" k)
           true
           (info.Waldo.ri_logs_replayed >= 1);
         ok_fs (Waldo.checkpoint w2)
       end);
      Waldo.fault_in_archive w2;
      if not (String.equal reference (Provdb.serialize (Waldo.db w2))) then
        Alcotest.failf "crash at write tick %d diverged from the no-crash provdb" k;
      (* the on-disk state also passes offline verification *)
      let v = ok_fs (Pvcheck.fsck ~registry ~lower ~volume:"vol0" ()) in
      if not (Pvcheck.clean v) then
        Alcotest.failf "pvcheck after crash at tick %d:@ %a" k Pvcheck.pp_report v)
    ticks;
  check tbool "sweep crossed the commit point" true (!precommit > 0 && !postcommit > 0)

(* A transaction that straddles the checkpoint boundary: BEGINTXN below
   the watermark (carried by the pending sidecar), ENDTXN in the suffix.
   After a crash and recovery the transaction commits exactly once, and
   the final provdb is byte-identical to a control run that never
   checkpointed at all. *)
let test_txn_across_checkpoint_boundary () =
  let run ~checkpointed () =
    let registry = Telemetry.create () in
    let policy = if checkpointed then Waldo.Manual else Waldo.Disabled in
    let disk, ext3, lasagna, waldo = ckpt_rig ~registry ~policy () in
    let ep = Lasagna.endpoint lasagna in
    let h = ok (ep.Dpapi.pass_mkobj ~volume:(Some "vol0")) in
    ok (Dpapi.disclose ep h [ Record.name "txn-straddle" ]);
    ignore
      (ok
         (Lasagna.write_txn_bundle ~txn:5 lasagna h ~off:0 ~data:None
            [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str "pre-boundary") ] ])
        : int);
    Lasagna.flush_log lasagna;
    (* the open transaction is now buffered inside Waldo *)
    let lasagna, waldo, restored =
      if not checkpointed then (lasagna, waldo, 0)
      else begin
        ok_fs (Waldo.checkpoint waldo);
        Disk.crash disk;
        Disk.revive disk;
        let ext3 = Ext3.mount disk in
        let w2, info = ok_fs (Waldo.recover ~registry ~policy ~lower:(Ext3.ops ext3) ()) in
        let l2 =
          Lasagna.create ~registry ~log_max:256 ~lower:(Ext3.ops ext3)
            ~ctx:(Ctx.create ~machine:1) ~volume:"vol0" ~charge:(fun _ -> ()) ()
        in
        Waldo.attach w2 l2;
        (l2, w2, info.Waldo.ri_pending_restored)
      end
    in
    ignore (ext3 : Ext3.t);
    if checkpointed then
      check tint "in-flight txn restored from the sidecar" 1 restored;
    (* the ENDTXN arrives in the post-checkpoint suffix *)
    ignore
      (ok
         (Lasagna.write_txn_bundle ~txn:5 lasagna h ~off:0 ~data:None
            [ Dpapi.entry h [ Record.make Record.Attr.endtxn (Pvalue.Int 5) ] ])
        : int);
    let orphans = Waldo.finalize waldo lasagna in
    check tint "straddling txn is not an orphan" 0 orphans;
    let quads =
      List.filter
        (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "pre-boundary")
        (Provdb.records_all (Waldo.db waldo) h.Dpapi.pnode)
    in
    check tint "txn chunk applied exactly once" 1 (List.length quads);
    Provdb.serialize (Waldo.db waldo)
  in
  let straddled = run ~checkpointed:true () in
  let control = run ~checkpointed:false () in
  check tbool "checkpointed and control provdbs are byte-identical" true
    (String.equal straddled control)

(* --- index consistency across crash/recover and archive fault-in ------------- *)

(* ISSUE 9: the provdb's secondary indexes (name postings, inverted
   attribute index, transitive-ancestry adjacency, resident versions) are
   maintained incrementally under ingestion, merge, compaction and
   archive fault-in, and rebuilt wholesale by deserialize.  Whatever the
   route into the store — checkpoint image, crash recovery, cold-tier
   fault-in — the maintained indexes must agree exactly with a
   from-scratch rebuild, and the cost-based planner must keep returning
   the naive oracle's rows. *)
let test_indexes_consistent_after_crash_and_archive () =
  let verify what db =
    match Provdb.verify_indexes db with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "index consistency %s: %s" what msg
  in
  let row_key row =
    String.concat "|"
      (List.map
         (function
           | Pql_eval.Node (p, v) -> Printf.sprintf "n:%d:%d" (Pnode.to_int p) v
           | Pql_eval.Value v -> Format.asprintf "v:%a" Pvalue.pp v)
         row)
  in
  let planner_matches_oracle what db =
    let ast =
      Pql.parse {|select A from Provenance.object as F F.input* as A where F.name = "f3"|}
    in
    let planner = Pql.Engine.execute (Pql.Engine.prepare_ast db ast) in
    let naive = Pql_eval.reference_rows db ast in
    let keys rows = List.sort String.compare (List.map row_key rows) in
    check Alcotest.(list string) (what ^ ": planner rows = oracle rows") (keys naive)
      (keys planner);
    check tbool (what ^ ": ancestry nonempty") true (planner <> [])
  in
  let registry = Telemetry.create () in
  let disk, _ext3, lasagna, waldo =
    ckpt_rig ~registry ~policy:Waldo.Manual ~compact_keep:1 ()
  in
  ignore (ckpt_workload lasagna waldo : Dpapi.handle array);
  verify "after ingestion" (Waldo.db waldo);
  (* a compacting checkpoint pushes old versions into the cold tier *)
  ok_fs (Waldo.checkpoint waldo);
  planner_matches_oracle "after checkpoint" (Waldo.db waldo);
  verify "after checkpoint + archival" (Waldo.db waldo);
  (* crash and recover: the image deserializer rebuilds every index *)
  Disk.crash disk;
  Disk.revive disk;
  let ext3 = Ext3.mount disk in
  let w2, info =
    ok_fs (Waldo.recover ~registry ~policy:Waldo.Manual ~compact_keep:1 ~lower:(Ext3.ops ext3) ())
  in
  check tbool "recovery saw archive segments" true (info.Waldo.ri_archives > 0);
  let db = Waldo.db w2 in
  (* the selective ancestry query crosses the floor: the planner's index
     probe must fault the cold tier in, exactly like the oracle's scan *)
  planner_matches_oracle "after crash/recover" db;
  verify "after crash/recover" db;
  (* explicit full fault-in is idempotent over the query's *)
  Waldo.fault_in_archive w2;
  verify "after archive fault-in" db

(* --- the hooks are free when no fault fires ---------------------------------- *)

let mini_run fault =
  let registry = Telemetry.create () in
  let clock = Clock.create () in
  let server =
    Server.create ~registry ~fault ~mode:Server.Pass_enabled ~clock ~machine:2 ~volume:"nfs0" ()
  in
  let net = Proto.net ~fault clock in
  let client =
    Client.create ~registry ~net ~handler:(Server.handle server)
      ~ctx:(Ctx.create ~machine:1) ~mount_name:"nfs0" ()
  in
  for i = 0 to 9 do
    let path = Printf.sprintf "/q%d" i in
    let ino = ok_fs (Vfs.create_path (Client.ops client) path Vfs.Regular) in
    let h = ok_fs (Client.file_handle client ino) in
    ignore
      (ok
         (Client.pass_write client h ~off:0 ~data:(Some path)
            [ Dpapi.entry h [ Record.name path ] ])
        : int)
  done;
  Clock.now clock

let test_quiet_plan_is_free () =
  let disabled = mini_run Fault.none in
  let quiet = mini_run (Fault.plan ~registry:(Telemetry.create ()) ~spec:Fault.quiet ~seed:5 ()) in
  check tint "an empty plan charges no simulated time" disabled quiet

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "postmark converges under every pinned seed" `Quick
            test_postmark_under_chaos;
          Alcotest.test_case "same seed, byte-identical schedule and counters" `Quick
            test_same_seed_identical;
          Alcotest.test_case "server spans parent onto client rpcs under chaos" `Quick
            test_wire_spans_under_chaos;
          Alcotest.test_case "fault storms trip pvmon's retry and backlog rules" `Quick
            test_pvmon_under_chaos;
          Alcotest.test_case "batching on/off leaves the provdb unchanged" `Quick
            test_batching_on_off_same_provdb;
          Alcotest.test_case "blast txns never double-apply" `Quick test_blast_no_double_apply;
          Alcotest.test_case "backpressure bounds the write-behind backlog" `Quick
            test_backpressure_bounds_backlog;
          Alcotest.test_case "transient disk errors are retried" `Quick
            test_transient_io_retried;
          Alcotest.test_case "latent corruption is reported, not raised" `Quick
            test_latent_corruption_reported;
          Alcotest.test_case "crash at every tick of a checkpoint recovers identically"
            `Quick test_crash_during_checkpoint_sweep;
          Alcotest.test_case "transactions straddle the checkpoint boundary exactly once"
            `Quick test_txn_across_checkpoint_boundary;
          Alcotest.test_case "indexes consistent across crash/recover and archive fault-in"
            `Quick test_indexes_consistent_after_crash_and_archive;
          Alcotest.test_case "an empty fault plan costs nothing" `Quick test_quiet_plan_is_free;
        ] );
    ]
