(* layer-unmapped: this directory appears in no layer's (dirs ...) *)
let orphan = 0
