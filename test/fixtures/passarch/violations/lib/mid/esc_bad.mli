val boom : int -> int
val relay : int -> int
