(* exception-escape twice: an untyped failwith, and Low.Miss passed
   through without being in mid's (raises ...) contract *)
let boom x = if x > 0 then failwith "boom" else x
let relay x = Low.find x
