exception Miss
val find : int -> int
val get : int -> int
