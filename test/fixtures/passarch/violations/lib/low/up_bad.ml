(* layer-upward: the bottom layer reaches into the top one *)
let poke () = High.run 1
