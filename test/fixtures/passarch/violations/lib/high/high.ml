(* clean consumer: catches below, keeps the cross-layer reference that
   makes mid's escapes reportable *)
let run n = try Esc_bad.boom (Hot_bad.run n) with Failure _ -> 0
