(* layer-undeclared: high's deps say mid only, this skips to low *)
let sneak x = Low.get x
