(* hot-path root (extra_roots Hot_bad.run): formatting in a callee,
   a closure retained in a sink, and a write outside commit barriers *)
let log_msg n = Printf.sprintf "run %d" n
let sink : (int, unit -> int) Hashtbl.t = Hashtbl.create 4
let run n =
  let _ : string = log_msg n in
  Hashtbl.add sink n (fun () -> n + 1);
  Vfs.write_file n;
  n
