; Deliberately violated mini-stack: high may see mid but NOT low
; (skip_bad), nothing may look up (up_bad), mid declares no exception
; contract (esc_bad), and Hot_bad.run is a hot-path root (hot_bad).
(layers
 (layer (name low) (dirs lib/low) (deps))
 (layer (name mid) (dirs lib/mid) (deps low))
 (layer (name high) (dirs lib/high) (deps mid)))
(hot_path (extra_roots Hot_bad.run) (commit_barriers))
