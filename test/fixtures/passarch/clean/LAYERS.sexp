; Well-layered mini-stack: every edge declared, every escape contracted.
(layers
 (layer (name low) (dirs lib/low) (deps))
 (layer (name mid) (dirs lib/mid) (deps low))
 (layer (name high) (dirs lib/high) (deps mid low)))
(hot_path (extra_roots High.run) (commit_barriers))
