let run x = Mid.total x + Low.get x
