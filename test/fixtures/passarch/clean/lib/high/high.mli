val run : int -> int
