val total : int -> int
