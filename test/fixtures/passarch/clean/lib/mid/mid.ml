let total x = try Low.find x with Low.Miss -> 0
