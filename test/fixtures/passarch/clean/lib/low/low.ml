exception Miss
let find x = if x < 0 then raise Miss else x
let get x = x + 1
