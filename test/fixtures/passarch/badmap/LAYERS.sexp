; invalid: deps may only name layers declared below
(layers
 (layer (name a) (dirs lib/a) (deps b))
 (layer (name b) (dirs lib/b) (deps)))
