(* metric-name fixture: three violations, one per site the rule covers —
   a camelCase rule name, a single-segment Counter_rate source and an
   uppercase Gauge_value source. *)

let rules =
  [
    Pvmon.rule ~name:"dpapiWriteP99"
      ~source:(Pvmon.Hist_p99 "dpapi.pass_write_ns")
      ~threshold:5e6 ();
    Pvmon.rule ~name:"nfs.retry_rate"
      ~source:(Pvmon.Counter_rate "retries")
      ~threshold:10. ();
    Pvmon.rule ~name:"wap.backlog_depth"
      ~source:(Pvmon.Gauge_value "wap.Queue_Depth")
      ~threshold:64. ();
  ]
