(* Regression fixture: "pnode" appearing only inside comments must not
   trip pnode-poly-eq now that operand text is comment-stripped. *)

(* let old_check a b = a.pnode = b.pnode *)

let check a b = a = (* compared pnode-style once upon a time *) b
let also_fine a b = a <> b
