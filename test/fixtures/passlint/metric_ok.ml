(* metric-name fixture: every pvmon rule name and metric source follows
   the dotted snake_case instrument convention — zero findings. *)

let rules =
  [
    Pvmon.rule ~name:"dpapi.write_p99"
      ~source:(Pvmon.Hist_p99 "dpapi.pass_write_ns")
      ~threshold:5e6 ();
    Pvmon.rule ~name:"wap.backlog_depth"
      ~source:(Pvmon.Gauge_value "wap.queue_depth")
      ~threshold:64. ();
    Pvmon.rule ~name:"nfs.retry_rate"
      ~source:(Pvmon.Counter_rate "nfs.retries")
      ~for_ticks:2 ~threshold:10. ();
  ]
