(* Real violation: polymorphic equality on pnode-carrying operands. *)
let same a b = a.pnode = b.pnode
