(* Tests of the storage substrates: the simulated disk (cost model, crash
   injection), ext3sim (semantics + journal replay), Lasagna (stacking,
   DPAPI, WAP ordering) and crash recovery. *)

open Pass_core
module Disk = Simdisk.Disk
module Clock = Simdisk.Clock

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

(* --- disk ---------------------------------------------------------------- *)

let test_disk_rw () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let b = Bytes.make Disk.block_size 'x' in
  Disk.write_block disk 100 b;
  check tstr "block roundtrip" (Bytes.to_string b) (Bytes.to_string (Disk.read_block disk 100));
  check tstr "unwritten reads zeros"
    (String.make Disk.block_size '\000')
    (Bytes.to_string (Disk.read_block disk 101))

let test_disk_bytes_api () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let data = Helpers.payload ~seed:1 ~len:10_000 in
  Disk.write_bytes disk ~off:12345 data;
  check tstr "byte roundtrip spanning blocks" data (Disk.read_bytes disk ~off:12345 ~len:10_000)

let test_disk_charges_time () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  Disk.write_bytes disk ~off:0 (String.make 4096 'a');
  let t1 = Clock.now clock in
  check tbool "I/O advanced the clock" true (t1 > 0);
  (* sequential write: next block, no seek *)
  let seeks1 = (Disk.stats disk).seeks in
  Disk.write_bytes disk ~off:4096 (String.make 4096 'b');
  check tint "sequential write seeks" seeks1 (Disk.stats disk).seeks;
  (* far write: seek *)
  Disk.write_bytes disk ~off:(4096 * 1_000_000) (String.make 4096 'c');
  check tbool "far write seeks" true ((Disk.stats disk).seeks > seeks1)

let test_disk_seek_cost_monotone () =
  (* a longer seek costs more time *)
  let run distance =
    let clock = Clock.create () in
    let disk = Disk.create ~clock () in
    Disk.write_bytes disk ~off:0 (String.make 4096 'a');
    let before = Clock.now clock in
    Disk.write_bytes disk ~off:(4096 * distance) (String.make 4096 'b');
    Clock.now clock - before
  in
  check tbool "longer seek costs more" true (run 10_000_000 > run 1_000)

let test_disk_crash () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  Disk.write_bytes disk ~off:0 (String.make 4096 'a');
  Disk.schedule_crash disk ~after_writes:2;
  Disk.write_bytes disk ~off:4096 (String.make 4096 'b');
  Disk.write_bytes disk ~off:8192 (String.make 4096 'c');
  Alcotest.check_raises "third write crashes" Disk.Crashed (fun () ->
      Disk.write_bytes disk ~off:12288 (String.make 4096 'd'));
  check tbool "device is down" true (Disk.is_crashed disk);
  Disk.revive disk;
  check tstr "pre-crash data persists" (String.make 4096 'b')
    (Disk.read_bytes disk ~off:4096 ~len:4096);
  check tstr "post-crash data lost" (String.make 4096 '\000')
    (Disk.read_bytes disk ~off:12288 ~len:4096)

(* --- ext3 ---------------------------------------------------------------- *)

let test_ext3_basics () =
  let _disk, fs = Helpers.fresh_ext3 () in
  let ops = Ext3.ops fs in
  let ino = Helpers.ok_fs (Vfs.write_file ~mkparents:true ops "/a/b/hello.txt" "hello world") in
  check tbool "ino allocated" true (ino > 0);
  check tstr "read back" "hello world" (Helpers.ok_fs (Vfs.read_file ops "/a/b/hello.txt"));
  let st = Helpers.ok_fs (ops.getattr ino) in
  check tint "size" 11 st.Vfs.st_size;
  check tbool "dir listing" true
    (List.mem "hello.txt" (Helpers.ok_fs (ops.readdir (Helpers.ok_fs (Vfs.lookup_path ops "/a/b")))))

let test_ext3_errors () =
  let _disk, fs = Helpers.fresh_ext3 () in
  let ops = Ext3.ops fs in
  (match Vfs.read_file ops "/nope" with
  | Error Vfs.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT");
  let _ = Helpers.ok_fs (Vfs.write_file ops "/f" "x") in
  (match Vfs.create_path ops "/f" Vfs.Regular with
  | Error Vfs.EEXIST -> ()
  | _ -> Alcotest.fail "expected EEXIST");
  let _ = Helpers.ok_fs (Vfs.mkdir_p ops "/d/sub") in
  (match Vfs.remove_path ops "/d" with
  | Error Vfs.ENOTEMPTY -> ()
  | _ -> Alcotest.fail "expected ENOTEMPTY")

let test_ext3_rename_overwrites () =
  let _disk, fs = Helpers.fresh_ext3 () in
  let ops = Ext3.ops fs in
  let _ = Helpers.ok_fs (Vfs.write_file ops "/orig" "old-contents") in
  let _ = Helpers.ok_fs (Vfs.write_file ops "/tmp" "new-contents") in
  Helpers.ok_fs (Vfs.rename_path ops "/tmp" "/orig");
  check tstr "rename replaced target" "new-contents" (Helpers.ok_fs (Vfs.read_file ops "/orig"));
  (match Vfs.lookup_path ops "/tmp" with
  | Error Vfs.ENOENT -> ()
  | _ -> Alcotest.fail "source gone after rename")

let test_ext3_sparse_and_offsets () =
  let _disk, fs = Helpers.fresh_ext3 () in
  let ops = Ext3.ops fs in
  let ino = Helpers.ok_fs (Vfs.create_path ops "/sparse" Vfs.Regular) in
  Helpers.ok_fs (ops.write ino ~off:10_000 "end");
  let st = Helpers.ok_fs (ops.getattr ino) in
  check tint "size extends" 10_003 st.Vfs.st_size;
  let hole = Helpers.ok_fs (ops.read ino ~off:5_000 ~len:10) in
  check tstr "hole reads zeros" (String.make 10 '\000') hole;
  check tstr "tail" "end" (Helpers.ok_fs (ops.read ino ~off:10_000 ~len:3))

let test_ext3_large_file () =
  let _disk, fs = Helpers.fresh_ext3 () in
  let ops = Ext3.ops fs in
  let data = Helpers.payload ~seed:9 ~len:(1 lsl 20) in
  let _ = Helpers.ok_fs (Vfs.write_file ops "/big" data) in
  check tbool "1MB roundtrip" true (String.equal data (Helpers.ok_fs (Vfs.read_file ops "/big")))

let test_ext3_journal_replay () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let fs = Ext3.format disk in
  let ops = Ext3.ops fs in
  let _ = Helpers.ok_fs (Vfs.write_file ~mkparents:true ops "/dir/f1" "one") in
  let _ = Helpers.ok_fs (Vfs.write_file ~mkparents:true ops "/dir/f2" "two") in
  Helpers.ok_fs (Vfs.remove_path ops "/dir/f1");
  (* crash and remount *)
  Disk.crash disk;
  Disk.revive disk;
  let fs2 = Ext3.mount disk in
  let ops2 = Ext3.ops fs2 in
  check tstr "replayed data" "two" (Helpers.ok_fs (Vfs.read_file ops2 "/dir/f2"));
  (match Vfs.read_file ops2 "/dir/f1" with
  | Error Vfs.ENOENT -> ()
  | _ -> Alcotest.fail "unlink replayed")

let test_ext3_replay_after_many_ops () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let fs = Ext3.format disk in
  let ops = Ext3.ops fs in
  for i = 0 to 99 do
    let _ =
      Helpers.ok_fs
        (Vfs.write_file ~mkparents:true ops
           (Printf.sprintf "/d%d/file%d" (i mod 7) i)
           (Helpers.payload ~seed:i ~len:(100 + (i * 13))))
    in
    ()
  done;
  let fs2 = Ext3.mount disk in
  let ops2 = Ext3.ops fs2 in
  for i = 0 to 99 do
    let path = Printf.sprintf "/d%d/file%d" (i mod 7) i in
    check tbool ("replay " ^ path) true
      (String.equal
         (Helpers.payload ~seed:i ~len:(100 + (i * 13)))
         (Helpers.ok_fs (Vfs.read_file ops2 path)))
  done

let test_ext3_journal_compaction () =
  (* a tiny journal forces snapshot compaction; state and data must
     survive it, including across a remount *)
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let fs = Ext3.format ~jblocks:2 disk in
  let ops = Ext3.ops fs in
  for i = 0 to 120 do
    let _ =
      Helpers.ok_fs
        (Vfs.write_file ~mkparents:true ops
           (Printf.sprintf "/d/f%d" i)
           (Helpers.payload ~seed:i ~len:(50 + i)))
    in
    ()
  done;
  (* everything still readable post-compaction *)
  for i = 0 to 120 do
    check tbool (Printf.sprintf "f%d intact" i) true
      (String.equal
         (Helpers.payload ~seed:i ~len:(50 + i))
         (Helpers.ok_fs (Vfs.read_file ops (Printf.sprintf "/d/f%d" i))))
  done;
  (* and after replaying the compacted journal *)
  let ops2 = Ext3.ops (Ext3.mount ~jblocks:2 disk) in
  for i = 0 to 120 do
    check tbool (Printf.sprintf "f%d replayed" i) true
      (String.equal
         (Helpers.payload ~seed:i ~len:(50 + i))
         (Helpers.ok_fs (Vfs.read_file ops2 (Printf.sprintf "/d/f%d" i))))
  done

(* --- lasagna ------------------------------------------------------------- *)

let fresh_lasagna () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0" ~charge:(Clock.advance clock) ()
  in
  (clock, disk, ext3, ctx, lasagna)

let test_lasagna_passthrough () =
  let _clock, _disk, _ext3, _ctx, lasagna = fresh_lasagna () in
  let ops = Lasagna.ops lasagna in
  let _ = Helpers.ok_fs (Vfs.write_file ~mkparents:true ops "/data/x" "payload") in
  check tstr "stacked read" "payload" (Helpers.ok_fs (Vfs.read_file ops "/data/x"));
  check tbool ".pass hidden from readdir" true
    (not (List.mem ".pass" (Helpers.ok_fs (ops.readdir (ops.root ())))))

let test_lasagna_dpapi_write_read () =
  let _clock, _disk, _ext3, ctx, lasagna = fresh_lasagna () in
  let ops = Lasagna.ops lasagna in
  let ino = Helpers.ok_fs (Vfs.create_path ops "/f" Vfs.Regular) in
  let h = Helpers.ok_fs (Lasagna.file_handle lasagna ino) in
  let ep = Lasagna.endpoint lasagna in
  let v = Helpers.ok (ep.pass_write h ~off:0 ~data:(Some "abc") [ Dpapi.entry h [ Record.name "f" ] ]) in
  check tint "write version" (Ctx.current_version ctx h.pnode) v;
  let r = Helpers.ok (ep.pass_read h ~off:0 ~len:3) in
  check tstr "pass_read data" "abc" r.Dpapi.data;
  check tbool "pass_read identity" true (Pnode.equal r.r_pnode h.pnode)

let test_lasagna_wap_ordering () =
  (* The provenance frame must hit the log before the data hits the file:
     crash the disk right after the log append and verify recovery flags
     the data as inconsistent (provenance present, data missing). *)
  let _clock, disk, ext3, _ctx, lasagna = fresh_lasagna () in
  let ops = Lasagna.ops lasagna in
  let ino = Helpers.ok_fs (Vfs.create_path ops "/victim" Vfs.Regular) in
  let h = Helpers.ok_fs (Lasagna.file_handle lasagna ino) in
  let ep = Lasagna.endpoint lasagna in
  (* Writing 8 KB of data: the log frame needs 1-2 block writes (incl. the
     journal frames); let the frame land and kill the device before the
     data write completes. *)
  Disk.schedule_crash disk ~after_writes:3;
  (match ep.pass_write h ~off:0 ~data:(Some (Helpers.payload ~seed:5 ~len:8192))
           [ Dpapi.entry h [ Record.name "victim" ] ]
   with
  | Ok _ -> Alcotest.fail "write should have crashed"
  | Error Dpapi.Ecrashed -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Dpapi.error_to_string e));
  Disk.revive disk;
  ignore (ext3 : Ext3.t);
  let remounted = Ext3.mount disk in
  let report = Helpers.ok_fs (Recovery.scan (Ext3.ops remounted)) in
  check tbool "recovery found the in-flight write" true (List.length report.inconsistent >= 1);
  let inc = List.hd report.inconsistent in
  check tbool "right object flagged" true (Pnode.equal inc.Recovery.i_pnode h.pnode)

let test_lasagna_recovery_clean () =
  (* With no crash, recovery over the same logs reports nothing. *)
  let _clock, disk, _ext3, _ctx, lasagna = fresh_lasagna () in
  let ops = Lasagna.ops lasagna in
  let ino = Helpers.ok_fs (Vfs.create_path ops "/ok" Vfs.Regular) in
  let h = Helpers.ok_fs (Lasagna.file_handle lasagna ino) in
  let ep = Lasagna.endpoint lasagna in
  let _ =
    Helpers.ok (ep.pass_write h ~off:0 ~data:(Some "consistent") [ Dpapi.entry h [] ])
  in
  let remounted = Ext3.mount disk in
  let report = Helpers.ok_fs (Recovery.scan (Ext3.ops remounted)) in
  check tint "nothing inconsistent" 0 (List.length report.inconsistent);
  check tbool "frames were scanned" true (report.frames_ok > 0);
  (* the same volume passes the offline graph verifier, replaying the
     still-unconsumed WAP log through the production ingest path *)
  let vreport = Helpers.ok_fs (Pvcheck.fsck ~lower:(Ext3.ops remounted) ~volume:"vol0" ()) in
  check tbool "orphan-agreement ran" true (List.mem "orphan-agreement" vreport.Pvcheck.r_passes);
  if not (Pvcheck.clean vreport) then
    Alcotest.failf "pvcheck after clean recovery:@ %a" Pvcheck.pp_report vreport

let test_lasagna_overwrite_recovery_clean () =
  (* regression: overwriting already-digested data in the same version
     must re-digest, or clean recovery would report a false mismatch *)
  let _clock, disk, _ext3, _ctx, lasagna = fresh_lasagna () in
  let ops = Lasagna.ops lasagna in
  let ino = Helpers.ok_fs (Vfs.create_path ops "/rewritten" Vfs.Regular) in
  let h = Helpers.ok_fs (Lasagna.file_handle lasagna ino) in
  let ep = Lasagna.endpoint lasagna in
  let _ = Helpers.ok (ep.pass_write h ~off:0 ~data:(Some "first contents") [ Dpapi.entry h [] ]) in
  (* same version, overlapping range, empty bundle *)
  let _ = Helpers.ok (ep.pass_write h ~off:0 ~data:(Some "second!") []) in
  let remounted = Ext3.mount disk in
  let report = Helpers.ok_fs (Recovery.scan (Ext3.ops remounted)) in
  check tint "no false inconsistency after overwrite" 0 (List.length report.inconsistent)

let test_lasagna_dormancy_rotation () =
  (* the paper's second rotation trigger: a dormant log closes on the
     next append *)
  let clock = Clock.create () in
  let disk = Simdisk.Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~idle_ns:1_000_000 ~now:(fun () -> Clock.now clock)
      ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0" ~charge:(Clock.advance clock) ()
  in
  let closed = ref 0 in
  Lasagna.on_log_closed lasagna (fun _ _ -> incr closed);
  let ops = Lasagna.ops lasagna in
  let _ = Helpers.ok_fs (Vfs.write_file ops "/one" "x") in
  check tint "no rotation while active" 0 !closed;
  Clock.advance clock 5_000_000 (* the log goes dormant *);
  let _ = Helpers.ok_fs (Vfs.write_file ops "/two" "y") in
  check tbool "dormant log was closed" true (!closed >= 1)

let test_lasagna_provenance_survives_rename () =
  let _clock, _disk, _ext3, _ctx, lasagna = fresh_lasagna () in
  let ops = Lasagna.ops lasagna in
  let ino = Helpers.ok_fs (Vfs.write_file ops "/before" "data") in
  let h1 = Helpers.ok_fs (Lasagna.file_handle lasagna ino) in
  Helpers.ok_fs (Vfs.rename_path ops "/before" "/after");
  let ino2 = Helpers.ok_fs (Vfs.lookup_path ops "/after") in
  let h2 = Helpers.ok_fs (Lasagna.file_handle lasagna ino2) in
  check tbool "pnode survives rename" true (Pnode.equal h1.pnode h2.pnode)

let test_lasagna_log_rotation () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~log_max:512 ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0"
      ~charge:(Clock.advance clock) ()
  in
  let closed = ref [] in
  Lasagna.on_log_closed lasagna (fun name _ino -> closed := name :: !closed);
  let ops = Lasagna.ops lasagna in
  for i = 0 to 20 do
    let _ = Helpers.ok_fs (Vfs.write_file ops (Printf.sprintf "/f%d" i) "x") in
    ()
  done;
  check tbool "logs rotated" true (List.length !closed > 0);
  check tbool "rotation count matches" true ((Lasagna.stats lasagna).rotations = List.length !closed)

let test_lasagna_mkobj_revive () =
  let _clock, _disk, _ext3, ctx, lasagna = fresh_lasagna () in
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  let h' = Helpers.ok (ep.pass_reviveobj h.pnode 0) in
  check tbool "revive finds object" true (Pnode.equal h.pnode h'.pnode);
  (match ep.pass_reviveobj h.pnode 99 with
  | Error Dpapi.Estale -> ()
  | _ -> Alcotest.fail "future version must be stale");
  (match ep.pass_reviveobj (Ctx.fresh ctx) 0 with
  | Error Dpapi.Enoent -> ()
  | _ -> Alcotest.fail "unknown object must be ENOENT")

(* WAP property: crash at a random point during a stream of provenance-
   carrying writes; recovery must never report an inconsistency for data
   whose write completed, and the flagged set only contains the in-flight
   object. *)
let prop_wap_crash_safety =
  QCheck2.Test.make ~name:"WAP: crash anywhere, recovery exact" ~count:40
    QCheck2.Gen.(pair (int_range 1 60) (int_bound 10_000))
    (fun (crash_after, seed) ->
      let clock = Clock.create () in
      let disk = Disk.create ~clock () in
      let ext3 = Ext3.format disk in
      let ctx = Ctx.create ~machine:1 in
      let lasagna =
        Lasagna.create ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0"
          ~charge:(Clock.advance clock) ()
      in
      let ops = Lasagna.ops lasagna in
      let ep = Lasagna.endpoint lasagna in
      let completed = Hashtbl.create 16 in
      Simdisk.Disk.schedule_crash disk ~after_writes:crash_after;
      (try
         for i = 0 to 19 do
           let path = Printf.sprintf "/f%d" i in
           let ino =
             match Vfs.create_path ops path Vfs.Regular with
             | Ok ino -> ino
             | Error _ -> raise Stdlib.Exit
           in
           let h =
             match Lasagna.file_handle lasagna ino with
             | Ok h -> h
             | Error _ -> raise Stdlib.Exit
           in
           let data = Helpers.payload ~seed:(seed + i) ~len:(512 + (i * 97)) in
           match ep.pass_write h ~off:0 ~data:(Some data) [ Dpapi.entry h [] ] with
           | Ok _ -> Hashtbl.replace completed (Pnode.to_int h.pnode) ()
           | Error _ -> raise Stdlib.Exit
         done
       with Stdlib.Exit -> ());
      Simdisk.Disk.revive disk;
      let remounted = Ext3.mount disk in
      match Recovery.scan (Ext3.ops remounted) with
      | Error _ -> false
      | Ok report ->
          List.for_all
            (fun (inc : Recovery.inconsistency) ->
              (* completed writes are never flagged *)
              not (Hashtbl.mem completed (Pnode.to_int inc.i_pnode)))
            report.inconsistent)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_wap_crash_safety ]

let suite =
  [
    Alcotest.test_case "disk: block roundtrip" `Quick test_disk_rw;
    Alcotest.test_case "disk: byte API spans blocks" `Quick test_disk_bytes_api;
    Alcotest.test_case "disk: charges simulated time" `Quick test_disk_charges_time;
    Alcotest.test_case "disk: seek cost grows with distance" `Quick test_disk_seek_cost_monotone;
    Alcotest.test_case "disk: crash injection" `Quick test_disk_crash;
    Alcotest.test_case "ext3: create/read/write/readdir" `Quick test_ext3_basics;
    Alcotest.test_case "ext3: error paths" `Quick test_ext3_errors;
    Alcotest.test_case "ext3: rename overwrites target" `Quick test_ext3_rename_overwrites;
    Alcotest.test_case "ext3: sparse files and offsets" `Quick test_ext3_sparse_and_offsets;
    Alcotest.test_case "ext3: 1MB file roundtrip" `Quick test_ext3_large_file;
    Alcotest.test_case "ext3: journal replay after crash" `Quick test_ext3_journal_replay;
    Alcotest.test_case "ext3: replay 100 files" `Slow test_ext3_replay_after_many_ops;
    Alcotest.test_case "ext3: journal compaction + replay" `Quick test_ext3_journal_compaction;
    Alcotest.test_case "lasagna: VFS passthrough + .pass hidden" `Quick test_lasagna_passthrough;
    Alcotest.test_case "lasagna: DPAPI write/read" `Quick test_lasagna_dpapi_write_read;
    Alcotest.test_case "lasagna: WAP ordering under crash" `Quick test_lasagna_wap_ordering;
    Alcotest.test_case "lasagna: clean recovery is empty" `Quick test_lasagna_recovery_clean;
    Alcotest.test_case "lasagna: overwrite keeps recovery clean" `Quick
      test_lasagna_overwrite_recovery_clean;
    Alcotest.test_case "lasagna: dormancy rotation" `Quick test_lasagna_dormancy_rotation;
    Alcotest.test_case "lasagna: provenance survives rename" `Quick
      test_lasagna_provenance_survives_rename;
    Alcotest.test_case "lasagna: log rotation notifies" `Quick test_lasagna_log_rotation;
    Alcotest.test_case "lasagna: mkobj/revive" `Quick test_lasagna_mkobj_revive;
  ]
  @ qcheck_cases
