(* Telemetry tests: instrument semantics (counters, gauges, histograms,
   spans), the JSON snapshot encoder and its parser, and an end-to-end
   check that a small simos workload populates the analyzer.* and wap.*
   instruments in agreement with the legacy stats views. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tfloat = Alcotest.float 1e-9

(* --- counters and gauges ----------------------------------------------------- *)

let test_counter_semantics () =
  let reg = Telemetry.create () in
  let c = Telemetry.counter ~registry:reg "t.c" in
  check tint "starts at zero" 0 (Telemetry.value c);
  Telemetry.incr c;
  Telemetry.add c 41;
  check tint "incr + add" 42 (Telemetry.value c);
  (* same name in the same registry aggregates at snapshot time *)
  let c2 = Telemetry.counter ~registry:reg "t.c" in
  Telemetry.add c2 8;
  check tint "instances stay independent" 42 (Telemetry.value c);
  check tint "snapshot sums same-named counters" 50
    (Option.get (Telemetry.counter_value reg "t.c"));
  (* a different registry is a different world *)
  let other = Telemetry.create () in
  check tbool "other registry empty" true
    (Telemetry.counter_value other "t.c" = None)

let test_gauge_semantics () =
  let reg = Telemetry.create () in
  let g = Telemetry.gauge ~registry:reg "t.g" in
  check tfloat "starts at zero" 0.0 (Telemetry.gauge_value g);
  Telemetry.set g 2.5;
  Telemetry.set g 7.25;
  check tfloat "set overwrites" 7.25 (Telemetry.gauge_value g)

(* --- histograms -------------------------------------------------------------- *)

let test_histogram_summary () =
  let reg = Telemetry.create () in
  let h = Telemetry.histogram ~registry:reg "t.h" in
  for i = 1 to 100 do
    Telemetry.observe h (float_of_int i)
  done;
  let s = Telemetry.summary h in
  check tint "count" 100 s.Telemetry.count;
  check tfloat "sum" 5050.0 s.Telemetry.sum;
  check tfloat "min" 1.0 s.Telemetry.min;
  check tfloat "max" 100.0 s.Telemetry.max;
  check tbool "p50 near median" true (abs_float (s.Telemetry.p50 -. 50.) <= 2.);
  check tbool "p95 near tail" true (abs_float (s.Telemetry.p95 -. 95.) <= 2.);
  check tbool "p99 in tail" true (s.Telemetry.p99 >= s.Telemetry.p95)

let test_histogram_compaction () =
  (* far more observations than the reservoir holds: exact count/sum/min/max
     must survive, and quantiles must stay representative *)
  let reg = Telemetry.create () in
  let h = Telemetry.histogram ~registry:reg "t.big" in
  let n = 50_000 in
  for i = 1 to n do
    Telemetry.observe h (float_of_int i)
  done;
  let s = Telemetry.summary h in
  check tint "exact count" n s.Telemetry.count;
  check tfloat "exact min" 1.0 s.Telemetry.min;
  check tfloat "exact max" (float_of_int n) s.Telemetry.max;
  let mid = float_of_int n /. 2. in
  check tbool "p50 within 10% of median" true
    (abs_float (s.Telemetry.p50 -. mid) <= 0.1 *. float_of_int n)

let test_with_span () =
  let reg = Telemetry.create () in
  let h = Telemetry.histogram ~registry:reg "t.span" in
  let clock = ref 0 in
  let now () = !clock in
  let r = Telemetry.with_span h ~now (fun () -> clock := !clock + 1234; "done") in
  check tbool "result passes through" true (String.equal r "done");
  let s = Telemetry.summary h in
  check tint "one observation" 1 s.Telemetry.count;
  check tfloat "observed elapsed ns" 1234.0 s.Telemetry.sum;
  (* exception-safe: the span is recorded even when f raises *)
  (try
     Telemetry.with_span h ~now (fun () -> clock := !clock + 10; failwith "boom")
   with Failure _ -> ());
  check tint "span recorded on raise" 2 (Telemetry.summary h).Telemetry.count

(* --- JSON -------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let open Telemetry.Json in
  let doc =
    Obj
      [
        ("s", Str "a \"quoted\"\nstring");
        ("i", Int (-42));
        ("f", Float 2.5);
        ("b", Bool true);
        ("n", Null);
        ("l", List [ Int 1; Int 2; Obj [ ("x", Bool false) ] ]);
      ]
  in
  let doc' = of_string (to_string doc) in
  check tbool "round-trips" true (doc = doc');
  (match member "l" doc' with
  | Some (List (_ :: _ :: _)) -> ()
  | _ -> Alcotest.fail "member lookup");
  (* parser rejects garbage *)
  check tbool "parse error raised" true
    (try ignore (of_string "{\"a\":" : t) ; false
     with Telemetry.Json.Parse_error _ -> true)

let test_json_strictness () =
  let open Telemetry.Json in
  let rejects s =
    try
      ignore (of_string s : t);
      false
    with Parse_error _ -> true
  in
  (* of_string consumes the whole input: a valid document followed by
     trailing garbage is an error, not a silent prefix-parse *)
  check tbool "trailing garbage rejected" true (rejects "{} x");
  check tbool "two values rejected" true (rejects "1 2");
  check tbool "trailing comma-ish junk rejected" true (rejects "[1],");
  check tbool "surrounding whitespace fine" true (of_string " {\"a\":1} " = Obj [ ("a", Int 1) ])

let test_json_unicode_escapes () =
  let open Telemetry.Json in
  let rejects s =
    try
      ignore (of_string s : t);
      false
    with Parse_error _ -> true
  in
  check tbool "ascii escape" true (of_string {|"\u0041"|} = Str "A");
  check tbool "two-byte utf-8" true (of_string {|"\u00e9"|} = Str "\xc3\xa9");
  check tbool "three-byte utf-8" true (of_string {|"\u20ac"|} = Str "\xe2\x82\xac");
  check tbool "surrogate pair to four-byte utf-8" true
    (of_string {|"\ud83d\ude00"|} = Str "\xf0\x9f\x98\x80");
  check tbool "uppercase hex accepted" true (of_string {|"\u20AC"|} = Str "\xe2\x82\xac");
  check tbool "lone high surrogate rejected" true (rejects {|"\ud83d"|});
  check tbool "high surrogate without low rejected" true (rejects {|"\ud83dx"|});
  check tbool "lone low surrogate rejected" true (rejects {|"\ude00"|});
  check tbool "bad hex digit rejected" true (rejects {|"\u12zz"|});
  check tbool "truncated escape rejected" true (rejects {|"\u12"|})

let test_name_under () =
  let u prefix name = Telemetry.name_under ~prefix name in
  check tbool "empty prefix keeps everything" true (u "" "x.y");
  check tbool "exact name matches" true (u "analyzer" "analyzer");
  check tbool "dotted child matches" true (u "analyzer" "analyzer.records_in");
  check tbool "lexical prefix without dot is no match" false (u "analyzer" "analyzers.x");
  check tbool "multi-segment prefix" true (u "panfs.client" "panfs.client.rpc");
  check tbool "sibling segment is no match" false (u "panfs.client" "panfs.server.rpc");
  check tbool "prefix longer than name is no match" false (u "a.b.c" "a.b");
  (* the same predicate drives snapshot filtering *)
  let reg = Telemetry.create () in
  Telemetry.add (Telemetry.counter ~registry:reg "a.one") 1;
  Telemetry.add (Telemetry.counter ~registry:reg "ab.two") 2;
  let json = Telemetry.Json.of_string (Telemetry.to_json ~filter:"a" reg) in
  match Telemetry.Json.member "counters" json with
  | Some (Telemetry.Json.Obj [ ("a.one", Telemetry.Json.Int 1) ]) -> ()
  | _ -> Alcotest.fail "filtered snapshot kept the wrong instruments"

let test_validate_prefix () =
  let ok s = match Telemetry.validate_prefix s with Ok p -> String.equal p s | Error _ -> false in
  let rejected s = Result.is_error (Telemetry.validate_prefix s) in
  (* the empty prefix would make name_under match everything: refuse it at
     the CLI boundary instead of silently keeping the full snapshot *)
  check tbool "empty prefix rejected" true (rejected "");
  check tbool "single segment passes through" true (ok "analyzer");
  check tbool "dotted prefix passes through" true (ok "panfs.client");
  check tbool "leading dot rejected" true (rejected ".analyzer");
  check tbool "trailing dot rejected" true (rejected "analyzer.");
  check tbool "empty inner segment rejected" true (rejected "a..b")

let test_snapshot_shape () =
  let reg = Telemetry.create () in
  Telemetry.add (Telemetry.counter ~registry:reg "z.c") 3;
  Telemetry.set (Telemetry.gauge ~registry:reg "a.g") 1.5;
  Telemetry.observe (Telemetry.histogram ~registry:reg "m.h") 7.0;
  let json = Telemetry.Json.of_string (Telemetry.to_json reg) in
  let open Telemetry.Json in
  (match member "counters" json with
  | Some (Obj [ ("z.c", Int 3) ]) -> ()
  | _ -> Alcotest.fail "counters section");
  (match member "gauges" json with
  | Some (Obj [ ("a.g", Float f) ]) -> check tfloat "gauge value" 1.5 f
  | _ -> Alcotest.fail "gauges section");
  match member "histograms" json with
  | Some (Obj [ ("m.h", summary) ]) -> (
      match member "count" summary with
      | Some (Int 1) -> ()
      | _ -> Alcotest.fail "histogram summary count")
  | _ -> Alcotest.fail "histograms section"

(* --- series snapshot: pvmon's scrape surface --------------------------------- *)

let test_gauge_last_registered_wins () =
  (* regression pin: with two same-named gauge instruments in one
     registry the aggregate takes the LAST-registered instrument's value
     — not the max, not the sum — while the instance count still covers
     both.  Pvmon tags multi-instance gauges with exactly this rule, so
     a semantics change here must be a deliberate, reviewed one. *)
  let reg = Telemetry.create () in
  let g1 = Telemetry.gauge ~registry:reg "t.mg" in
  let g2 = Telemetry.gauge ~registry:reg "t.mg" in
  Telemetry.set g1 10.;
  Telemetry.set g2 3.;
  (match Telemetry.series_snapshot reg with
  | [ s ] ->
      check tfloat "last registered wins" 3.0 s.Telemetry.se_value;
      check tint "both instances counted" 2 s.Telemetry.se_instances
  | l -> Alcotest.failf "expected one series, got %d" (List.length l));
  (* updating the earlier instrument cannot shadow the later one *)
  Telemetry.set g1 99.;
  match Telemetry.series_snapshot reg with
  | [ s ] -> check tfloat "earlier instrument stays shadowed" 3.0 s.Telemetry.se_value
  | _ -> Alcotest.fail "series vanished"

let test_series_snapshot () =
  let reg = Telemetry.create () in
  Telemetry.add (Telemetry.counter ~registry:reg "z.c") 3;
  Telemetry.add (Telemetry.counter ~registry:reg "z.c") 4;
  Telemetry.set (Telemetry.gauge ~registry:reg "a.g") 1.5;
  Telemetry.observe (Telemetry.histogram ~registry:reg "m.h") 7.0;
  (match Telemetry.series_snapshot reg with
  | [ a; m; z ] ->
      check tbool "sorted by name" true
        (String.equal a.Telemetry.se_name "a.g"
        && String.equal m.Telemetry.se_name "m.h"
        && String.equal z.Telemetry.se_name "z.c");
      check tbool "kinds" true
        (a.Telemetry.se_kind = `Gauge && m.Telemetry.se_kind = `Histogram
       && z.Telemetry.se_kind = `Counter);
      check tfloat "counter instances sum" 7.0 z.Telemetry.se_value;
      check tint "counter instance count" 2 z.Telemetry.se_instances;
      check tfloat "gauge value" 1.5 a.Telemetry.se_value;
      (match m.Telemetry.se_summary with
      | Some s -> check tint "histogram summary attached" 1 s.Telemetry.count
      | None -> Alcotest.fail "histogram series without summary")
  | l -> Alcotest.failf "expected three series, got %d" (List.length l));
  match Telemetry.series_snapshot ~filter:"z" reg with
  | [ z ] -> check tbool "filter keeps the z subtree" true (String.equal z.Telemetry.se_name "z.c")
  | _ -> Alcotest.fail "filtered series"

(* The documented accuracy bound of telemetry.mli: with the reservoir
   over capacity, every reported quantile p must land between the exact
   quantiles at p-0.05 and p+0.05 of the full observation stream
   (normalized rank error <= 0.05).  The systematic 1-in-stride reservoir
   keeps this easily for non-adversarial streams; the pinned seed makes
   any failure replay byte-for-byte. *)
let prop_histogram_rank_error =
  let open QCheck2.Gen in
  let gen_stream =
    (* 3000..12000 observations: always past the 2048-sample reservoir *)
    list_size (int_range 3_000 12_000) (float_bound_exclusive 1e9)
  in
  QCheck2.Test.make ~name:"telemetry: histogram rank error within 0.05" ~count:20 gen_stream
    (fun xs ->
      let reg = Telemetry.create () in
      let h = Telemetry.histogram ~registry:reg "t.acc" in
      List.iter (Telemetry.observe h) xs;
      let s = Telemetry.summary h in
      let sorted = Array.of_list (List.sort Float.compare xs) in
      let n = Array.length sorted in
      (* the same nearest-rank convention summary uses on its reservoir *)
      let exact p =
        let idx = int_of_float ((p *. float_of_int (n - 1)) +. 0.5) in
        sorted.(Stdlib.min (n - 1) (Stdlib.max 0 idx))
      in
      let within p reported =
        reported >= exact (Float.max 0. (p -. 0.05))
        && reported <= exact (Float.min 1. (p +. 0.05))
      in
      s.Telemetry.count = n
      && s.Telemetry.min = sorted.(0)
      && s.Telemetry.max = sorted.(n - 1)
      && within 0.50 s.Telemetry.p50
      && within 0.95 s.Telemetry.p95
      && within 0.99 s.Telemetry.p99)

(* --- end to end through the pipeline ----------------------------------------- *)

let test_pipeline_instruments () =
  let registry = Telemetry.create () in
  let sys =
    System.create ~registry ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] ()
  in
  Kepler_wl.run sys ~parent:Kernel.init_pid;
  ignore (System.drain sys : int);
  let stack = Option.get (Kernel.pass_stack (System.kernel sys)) in
  let an = Pass_core.Analyzer.stats stack.Kernel.analyzer in
  let vol = List.hd (System.volumes sys) in
  let las = Lasagna.stats (Option.get vol.System.v_lasagna) in
  let tv name = Option.get (Telemetry.counter_value registry name) in
  check tbool "analyzer did work" true (an.Pass_core.Analyzer.records_in > 0);
  check tint "analyzer.records_in matches stats view"
    an.Pass_core.Analyzer.records_in (tv "analyzer.records_in");
  check tint "analyzer.duplicates_dropped matches stats view"
    an.Pass_core.Analyzer.duplicates_dropped (tv "analyzer.duplicates_dropped");
  check tbool "wap logged frames" true (las.Lasagna.frames_logged > 0);
  check tint "wap.frames_written matches stats view"
    las.Lasagna.frames_logged (tv "wap.frames_written");
  check tint "wap.bytes_written matches stats view"
    las.Lasagna.prov_bytes_logged (tv "wap.bytes_written");
  (* the DPAPI hot-path spans saw every pass_write the observer forwarded *)
  let ws = Option.get (Telemetry.histogram_summary registry "dpapi.pass_write_ns") in
  check tbool "pass_write span observed" true (ws.Telemetry.count > 0);
  let aps = Option.get (Telemetry.histogram_summary registry "wap.append_ns") in
  check tbool "wap append span observed" true (aps.Telemetry.count > 0);
  (* and the default registry saw none of it *)
  check tbool "isolated from default registry" true
    (Telemetry.counter_value registry "no.such" = None)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
    Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
    Alcotest.test_case "histogram compaction" `Quick test_histogram_compaction;
    Alcotest.test_case "with_span" `Quick test_with_span;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json strictness" `Quick test_json_strictness;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "name_under filter" `Quick test_name_under;
    Alcotest.test_case "validate_prefix rejects empty filters" `Quick test_validate_prefix;
    Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
    Alcotest.test_case "gauge last-registered-wins pin" `Quick
      test_gauge_last_registered_wins;
    Alcotest.test_case "series snapshot" `Quick test_series_snapshot;
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0x5eed |])
      prop_histogram_rank_error;
    Alcotest.test_case "pipeline instruments" `Quick test_pipeline_instruments;
  ]
