(* Golden tests for the passarch layering analyzer and the shared lint
   machinery.  The fixture trees under test/fixtures/passarch are tiny
   three-layer stacks: [clean] obeys every contract, [violations] seeds
   exactly one violation per rule, [badmap] has an invalid layer map.
   The analyzer must report exactly the seeded findings — no more, no
   less — which pins both the rules and the module-graph reconstruction
   (dune boundaries, .mli contracts, call-graph fixpoint, hot-path BFS).

   The fixtures live in the source tree only (test/dune excludes them
   from dune's view, since they contain deliberate violations and fake
   dune files), so the tests walk up from the cwd to find them. *)

let check = Alcotest.check

module F = Lintcommon.Finding
module Allowlist = Lintcommon.Allowlist
module Json = Telemetry.Json

let fixture_dir sub =
  let rec up dir n =
    let cand = List.fold_left Filename.concat dir [ "test"; "fixtures"; sub ] in
    if Sys.file_exists cand then cand
    else if n = 0 then
      Alcotest.failf "fixture %s not found walking up from %s" sub
        (Sys.getcwd ())
    else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 8

let shape f = (f.F.f_file, f.F.f_rule)

let pp_shapes fs =
  String.concat "; "
    (List.map (fun (file, rule) -> Printf.sprintf "%s [%s]" file rule) fs)

let check_shapes what expected got =
  check Alcotest.(list (pair string string)) what expected (List.map shape got)

(* --- passarch fixture trees ----------------------------------------- *)

let test_clean_tree () =
  let fs = Passarch_core.findings ~root:(fixture_dir "passarch/clean") () in
  check Alcotest.(list (pair string string))
    "clean fixture has no findings" [] (List.map shape fs)

let test_violations_tree () =
  let fs = Passarch_core.findings ~root:(fixture_dir "passarch/violations") () in
  let expected =
    [
      ("lib/high/hot_bad.ml", "hot-path-format");
      ("lib/high/hot_bad.ml", "hot-path-closure");
      ("lib/high/hot_bad.ml", "hot-path-write");
      ("lib/high/skip_bad.ml", "layer-undeclared");
      ("lib/low/up_bad.ml", "layer-upward");
      ("lib/mid/esc_bad.ml", "exception-escape");
      ("lib/mid/esc_bad.ml", "exception-escape");
      ("lib/stray/stray.ml", "layer-unmapped");
    ]
  in
  if List.map shape fs <> expected then
    Alcotest.failf "violation set mismatch:\nexpected %s\ngot      %s"
      (pp_shapes expected)
      (pp_shapes (List.map shape fs));
  (* the two escapes are the failwith and the undeclared pass-through *)
  let escapes =
    List.filter (fun f -> String.equal f.F.f_rule "exception-escape") fs
  in
  let mentions needle f =
    let hay = f.F.f_msg in
    let n = String.length needle and h = String.length hay in
    let rec go i =
      i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1))
    in
    go 0
  in
  check Alcotest.bool "one escape is the untyped Failure" true
    (List.exists (mentions "Failure") escapes);
  check Alcotest.bool "one escape is Low.Miss passing through mid" true
    (List.exists (mentions "Low.Miss") escapes);
  (* the hot-path findings name the reachability chain back to the root *)
  let hot = List.find (fun f -> String.equal f.F.f_rule "hot-path-format") fs in
  check Alcotest.bool "hot finding explains its path" true
    (mentions "extra_roots" hot)

let test_bad_map () =
  let fs = Passarch_core.findings ~root:(fixture_dir "passarch/badmap") () in
  check_shapes "invalid map is a single layer-map-error"
    [ ("LAYERS.sexp", "layer-map-error") ]
    fs

(* --- JSON shape ------------------------------------------------------ *)

let test_json_shape () =
  let fs = Passarch_core.findings ~root:(fixture_dir "passarch/violations") () in
  let doc = F.to_json ~schema:Passarch_core.schema ~files_scanned:8 fs in
  (* must round-trip through the wire form *)
  let doc = Json.of_string (Json.to_string doc) in
  (match Json.member "schema" doc with
  | Some (Json.Str s) -> check Alcotest.string "schema" "passarch/v1" s
  | _ -> Alcotest.fail "schema field missing");
  (match Json.member "files_scanned" doc with
  | Some (Json.Int n) -> check Alcotest.int "files_scanned" 8 n
  | _ -> Alcotest.fail "files_scanned field missing");
  match Json.member "findings" doc with
  | Some (Json.List items) ->
      check Alcotest.int "one JSON entry per finding" (List.length fs)
        (List.length items);
      List.iter
        (fun item ->
          List.iter
            (fun (field, is_ok) ->
              match Json.member field item with
              | Some v when is_ok v -> ()
              | _ -> Alcotest.failf "finding field %s missing or mistyped" field)
            [
              ("file", function Json.Str _ -> true | _ -> false);
              ("line", function Json.Int _ -> true | _ -> false);
              ("col", function Json.Int n -> n >= 0 | _ -> false);
              ("rule", function Json.Str _ -> true | _ -> false);
              ("msg", function Json.Str _ -> true | _ -> false);
            ])
        items
  | _ -> Alcotest.fail "findings field missing"

(* --- shared allowlist machinery -------------------------------------- *)

let test_allowlist_stale () =
  let entries =
    [
      Allowlist.
        {
          a_path = "lib/mid/";
          a_rule = "exception-escape";
          a_symbol = "";
          a_why = "test entry that matches";
        };
      Allowlist.
        {
          a_path = "lib/nowhere/";
          a_rule = "layer-upward";
          a_symbol = "";
          a_why = "test entry that matches nothing";
        };
    ]
  in
  let t = Allowlist.create entries in
  check Alcotest.bool "matching entry allows" true
    (Allowlist.allowed t ~file:"lib/mid/esc_bad.ml" ~rule:"exception-escape"
       ~symbol:"Esc_bad.boom");
  check Alcotest.bool "non-matching finding is not allowed" false
    (Allowlist.allowed t ~file:"lib/low/up_bad.ml" ~rule:"layer-upward"
       ~symbol:"High");
  let stale = Allowlist.stale t in
  check Alcotest.int "exactly the unused entry is stale" 1 (List.length stale);
  check Alcotest.string "stale entry is the nowhere one" "lib/nowhere/"
    (List.hd stale).Allowlist.a_path

let test_tree_gate () =
  (* what CI enforces, as a test: both analyzers must pass today's tree
     with --stale-allowlist, i.e. the tree is clean modulo the justified
     exemptions and no exemption is dead.  The repo root is found the
     same way as the fixtures. *)
  let root =
    Filename.dirname (Filename.dirname (Filename.dirname (fixture_dir "passarch")))
  in
  let saved = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () -> Sys.chdir saved)
    (fun () ->
      Sys.chdir root;
      check Alcotest.int "passarch gate exits 0" 0
        (Passarch_core.run ~json:true ~stale_check:true ());
      check Alcotest.int "passlint gate exits 0" 0
        (Passlint_core.run ~json:true ~stale_check:true ()))

(* --- passlint comment-stripping regression --------------------------- *)

let test_passlint_comment_regression () =
  let dir = fixture_dir "passlint" in
  let ok = Passlint_core.findings ~roots:[ Filename.concat dir "comment_ok.ml" ] () in
  check Alcotest.(list (pair string string))
    "pnode only inside comments does not trip pnode-poly-eq" []
    (List.map shape ok);
  let bad =
    Passlint_core.findings ~roots:[ Filename.concat dir "comment_bad.ml" ] ()
  in
  check Alcotest.(list string) "real pnode poly-eq still caught"
    [ "pnode-poly-eq" ]
    (List.map (fun f -> f.F.f_rule) bad)

(* --- passlint metric-name rule --------------------------------------- *)

let test_passlint_metric_name () =
  let dir = fixture_dir "passlint" in
  let ok = Passlint_core.findings ~roots:[ Filename.concat dir "metric_ok.ml" ] () in
  check Alcotest.(list (pair string string))
    "conventional pvmon names produce no findings" []
    (List.map shape ok);
  let bad =
    Passlint_core.findings ~roots:[ Filename.concat dir "metric_bad.ml" ] ()
  in
  check Alcotest.(list string)
    "bad rule name, bare source and uppercase source all caught"
    [ "metric-name"; "metric-name"; "metric-name" ]
    (List.map (fun f -> f.F.f_rule) bad);
  check Alcotest.(list int) "findings point at the offending literals"
    [ 7; 11; 14 ]
    (List.map (fun f -> f.F.f_line) bad)

let suite =
  [
    Alcotest.test_case "clean fixture tree" `Quick test_clean_tree;
    Alcotest.test_case "violations fixture tree" `Quick test_violations_tree;
    Alcotest.test_case "invalid layer map" `Quick test_bad_map;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "allowlist stale detection" `Quick test_allowlist_stale;
    Alcotest.test_case "tree passes both lint gates" `Quick test_tree_gate;
    Alcotest.test_case "passlint comment regression" `Quick
      test_passlint_comment_regression;
    Alcotest.test_case "passlint metric-name rule" `Quick
      test_passlint_metric_name;
  ]
