(* Pyth + PA-Python tests: language semantics (lexer/parser/interpreter),
   the sxml substrate, provenance wrappers, and the two §3.3 use cases
   (data origin, process validation) plus the §6.5 limitation. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

(* --- sxml ------------------------------------------------------------------- *)

let test_sxml_roundtrip () =
  let doc = {|<?xml version="1.0"?>
<experiment id="42" kind="thermo">
  <!-- a comment -->
  <sample name="s1"><reading stress="low">3.5</reading></sample>
  <sample name="s2"><reading stress="high">7.25</reading></sample>
  <note>5 &lt; 7 &amp; "quoted"</note>
</experiment>|}
  in
  let root = Sxml.parse doc in
  check tstr "root tag" "experiment" root.Sxml.tag;
  check tstr "attr" "42" (Option.get (Sxml.attr root "id"));
  check tint "samples" 2 (List.length (Sxml.children_named root "sample"));
  check tint "nested find_all" 2 (List.length (Sxml.find_all root "reading"));
  let note = Option.get (Sxml.first_child root "note") in
  check tstr "entities decoded" {|5 < 7 & "quoted"|} (Sxml.text_content note);
  (* print and reparse *)
  let again = Sxml.parse (Sxml.to_string root) in
  check tstr "roundtrip stable" (Sxml.to_string root) (Sxml.to_string again)

let test_sxml_errors () =
  let bad s =
    match Sxml.parse s with
    | exception Sxml.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "<a><b></a>";
  bad "<a";
  bad "<a>&bogus;</a>";
  bad "<a></a><b></b>"

(* --- the language ------------------------------------------------------------ *)

let pass_system () = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] ()

let fresh ?(provenance = false) () =
  let sys = pass_system () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let session = Pyth.create ~provenance ~module_dir:"/vol0/lib" sys ~pid () in
  (sys, pid, session)

let run_and_output source =
  let _sys, _pid, s = fresh () in
  Pyth.run s source;
  Pyth.output s

let test_arithmetic_and_print () =
  check tstr "arithmetic" "7\n2.5\nTrue\n" (run_and_output "print(1 + 2 * 3)\nprint(5 / 2.0)\nprint(3 < 4)\n")

let test_strings_and_lists () =
  let out =
    run_and_output
      {|xs = [1, 2, 3]
append(xs, 4)
print(len(xs))
print(xs[0] + xs[-1])
s = "hello" + " " + "world"
print(s)
print("wor" in s)
|}
  in
  check tstr "containers" "4\n5\nhello world\nTrue\n" out

let test_control_flow () =
  let out =
    run_and_output
      {|total = 0
for i in range(10):
    if i % 2 == 0:
        total = total + i
    elif i == 7:
        continue
    else:
        total = total + 1
print(total)
n = 0
while True:
    n = n + 1
    if n == 5:
        break
print(n)
|}
  in
  check tstr "loops" "24\n5\n" out

let test_functions_and_recursion () =
  let out =
    run_and_output
      {|def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
print(fib(15))
def make_adder(k):
    def add(x):
        return x + k
    return add
plus3 = make_adder(3)
print(plus3(4))
|}
  in
  check tstr "functions, closures" "610\n7\n" out

let test_string_builtins () =
  let out =
    run_and_output
      {|print(endswith("file.xml", ".xml"))
print(endswith("file.xml", ".csv"))
print(strip("  hi  "))
print(upper("abc") + lower("DEF"))
print(replace("a-b-c", "-", "+"))
print(join(",", split("a b c", " ")))
|}
  in
  check tstr "string builtins" "True\nFalse\nhi\nABCdef\na+b+c\na,b,c\n" out

let test_dicts () =
  let out =
    run_and_output
      {|d = {"a": 1, "b": 2}
d["c"] = 3
d["a"] = 10
print(d["a"] + d["b"] + d["c"])
print("b" in d)
|}
  in
  check tstr "dicts" "15\nTrue\n" out

let test_runtime_errors () =
  let expect_error source =
    let _sys, _pid, s = fresh () in
    match Pyth.run s source with
    | exception (Pyth_interp.Runtime_error _ | Pyth_value.Type_error _) -> ()
    | _ -> Alcotest.failf "expected runtime error for %S" source
  in
  expect_error "print(undefined_name)\n";
  expect_error "x = 1 / 0\n";
  expect_error "x = [1]\nprint(x[5])\n";
  expect_error "x = \"s\" - 1\n";
  expect_error "import nonexistent\n"

let test_parse_errors () =
  let expect_error source =
    match Pyth_parser.parse source with
    | exception (Pyth_parser.Error _ | Pyth_lexer.Error _) -> ()
    | _ -> Alcotest.failf "expected parse error for %S" source
  in
  expect_error "def f(:\n    pass\n";
  expect_error "if True\n    pass\n";
  expect_error "x = = 3\n";
  expect_error "x = 'unterminated\n"

let test_file_io_via_kernel () =
  let sys, _pid, s = fresh () in
  Pyth.run s
    {|writefile("/vol0/note.txt", "written by pyth")
print(readfile("/vol0/note.txt"))
|};
  check tstr "file io" "written by pyth\n" (Pyth.output s);
  ignore (sys : System.t)

let test_import_module_from_disk () =
  let sys, pid, s = fresh () in
  Pyth.write_file sys ~pid "/vol0/lib/util.py"
    {|def double(x):
    return x * 2
CONST = 21
|};
  Pyth.run s {|import util
print(util.double(util.CONST))
|};
  check tstr "import" "42\n" (Pyth.output s)

let test_xml_module () =
  let sys, pid, s = fresh () in
  Pyth.write_file sys ~pid "/vol0/data.xml"
    {|<log><entry v="1"/><entry v="2"/><entry v="3"/></log>|};
  Pyth.run s
    {|import xml
doc = xml.parse_file("/vol0/data.xml")
entries = xml.findall(doc, "entry")
print(len(entries))
total = 0
for e in entries:
    total = total + int(xml.attr(e, "v"))
print(total)
|};
  check tstr "xml module" "3\n6\n" (Pyth.output s)

(* --- PA-Python: provenance wrappers ------------------------------------------- *)

let drain_db sys =
  ignore (System.drain sys : int);
  Option.get (System.waldo_db sys "vol0")

let thermography_setup () =
  let sys, pid, s = fresh ~provenance:true () in
  (* 6 XML experiment logs; only stress="low" ones feed the plot *)
  for i = 1 to 6 do
    let stress = if i mod 2 = 0 then "high" else "low" in
    Pyth.write_file sys ~pid
      (Printf.sprintf "/vol0/data/exp%d.xml" i)
      (Printf.sprintf
         {|<experiment stress="%s"><crack length="%d.5" heating="%d.25"/></experiment>|}
         stress i i)
  done;
  (* the analysis library, loaded from disk *)
  Pyth.write_file sys ~pid "/vol0/lib/thermo.py"
    {|def heating(doc):
    import xml
    cracks = xml.findall(doc, "crack")
    h = 0.0
    for c in cracks:
        h = h + float(xml.attr(c, "heating"))
    return h
|};
  (sys, pid, s)

let analysis_script =
  {|import xml
import plot
import thermo
docs = []
for f in listdir("/vol0/data"):
    d = xml.parse_file("/vol0/data/" + f)
    if xml.attr(d, "stress") == "low":
        append(docs, d)
points = []
i = 1
for d in docs:
    append(points, [float(i), thermo.heating(d)])
    i = i + 1
plot.plot(points, "crack heating vs length", "/vol0/out/plot.dat")
|}

let test_thermography_data_origin () =
  (* §3.3 use case 1: the script reads ALL the XML files but uses a
     subset.  PASS alone says the plot derives from all files; PA-Python
     narrows it to the documents actually used. *)
  let sys, _pid, s = thermography_setup () in
  Pyth.run s analysis_script;
  let db = drain_db sys in
  check tbool "db acyclic" true (Provdb.is_acyclic db);
  (* PASS's coarse view: the analysis program read ALL the XML files, so
     at file granularity the plot derives from every one of them *)
  let coarse =
    Helpers.pql_names db
      {|select A from Provenance.file as P P.input* as A where P.name = "plot.dat"|}
  in
  check tbool "coarse view includes unused exp2" true (List.mem "exp2.xml" coarse);
  check tbool "coarse view includes used exp1" true (List.mem "exp1.xml" coarse);
  (* the layered view: walk only through the PA-Python invocation layer —
     the plot's invocation-level ancestry names exactly the documents
     actually used *)
  let fine =
    Helpers.pql_names db
      {|select A from Provenance.file as P, P.input as I, I.input* as A
        where P.name = "plot.dat" and I.type = "INVOCATION"|}
  in
  check tbool "used file exp1 present" true (List.mem "exp1.xml" fine);
  check tbool "used file exp3 present" true (List.mem "exp3.xml" fine);
  check tbool "used file exp5 present" true (List.mem "exp5.xml" fine);
  check tbool "unused exp2 absent" false (List.mem "exp2.xml" fine);
  check tbool "unused exp4 absent" false (List.mem "exp4.xml" fine)

let test_process_validation () =
  (* §3.3 use case 2: which outputs descend from both the calculation
     routine and the (upgraded) library file? *)
  let sys, _pid, s = thermography_setup () in
  Pyth.run s analysis_script;
  let db = drain_db sys in
  let tainted =
    Helpers.pql_names db
      {|select P from Provenance.file as P
        where exists (select A from P.input* as A where A.name = "thermo.heating")
          and exists (select L from P.input* as L where L.name = "thermo.py")|}
  in
  check tbool "plot flagged by routine+library" true (List.mem "plot.dat" tainted)

let test_builtin_operator_loses_provenance () =
  (* the §6.5 lesson: provenance is lost across built-in operators *)
  let sys, pid, s = fresh ~provenance:true () in
  Pyth.write_file sys ~pid "/vol0/in.xml" {|<d v="1"/>|};
  Pyth.run s
    {|import xml
doc = xml.parse_file("/vol0/in.xml")
tag = xml.attr(doc, "v")
laundered = tag + ""
writefile("/vol0/tagged.out", tag)
writefile("/vol0/laundered.out", laundered)
|};
  let db = drain_db sys in
  (* compare at the invocation layer: the process-level view includes
     in.xml for both files (the process read it), but only the tagged
     value's invocation chain reaches the source file *)
  let fine_ancestry_of name =
    Helpers.pql_names db
      (Printf.sprintf
         {|select A from Provenance.file as F, F.input as I, I.input* as A
           where F.name = "%s" and I.type = "INVOCATION"|}
         name)
  in
  check tbool "wrapped path keeps the source file" true
    (List.mem "in.xml" (fine_ancestry_of "tagged.out"));
  check tbool "builtin '+' laundered the provenance" false
    (List.mem "in.xml" (fine_ancestry_of "laundered.out"))

let test_invocation_counts () =
  let sys, _pid, s = thermography_setup () in
  Pyth.run s analysis_script;
  (match s.Pyth.wrappers with
  | Some w -> check tbool "invocations recorded" true (Provwrap.invocation_count w > 10)
  | None -> Alcotest.fail "wrappers expected");
  ignore (sys : System.t)

let suite =
  [
    Alcotest.test_case "sxml: parse/print roundtrip" `Quick test_sxml_roundtrip;
    Alcotest.test_case "sxml: malformed input rejected" `Quick test_sxml_errors;
    Alcotest.test_case "pyth: arithmetic and print" `Quick test_arithmetic_and_print;
    Alcotest.test_case "pyth: strings and lists" `Quick test_strings_and_lists;
    Alcotest.test_case "pyth: control flow" `Quick test_control_flow;
    Alcotest.test_case "pyth: functions and closures" `Quick test_functions_and_recursion;
    Alcotest.test_case "pyth: string builtins" `Quick test_string_builtins;
    Alcotest.test_case "pyth: dicts" `Quick test_dicts;
    Alcotest.test_case "pyth: runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "pyth: parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pyth: file io via kernel" `Quick test_file_io_via_kernel;
    Alcotest.test_case "pyth: import module from disk" `Quick test_import_module_from_disk;
    Alcotest.test_case "pyth: xml module" `Quick test_xml_module;
    Alcotest.test_case "PA-Python: data origin (§3.3)" `Quick test_thermography_data_origin;
    Alcotest.test_case "PA-Python: process validation (§3.3)" `Quick test_process_validation;
    Alcotest.test_case "PA-Python: builtins launder provenance (§6.5)" `Quick
      test_builtin_operator_loses_provenance;
    Alcotest.test_case "PA-Python: invocation accounting" `Quick test_invocation_counts;
  ]
