(* PQL tests: lexer/parser behaviour, evaluator semantics on a hand-built
   provenance graph, the paper's sample query, subqueries, aggregation,
   inverse edges, and glob matching. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstrs = Alcotest.(list string)

(* Hand-build the database for a tiny rendition of the Figure 1 scenario:

     input1.dat --\
                   kepler(process) --> out.gif
     input2.dat --/
     out.gif also has an older version linked by a freeze edge. *)
let sample_db () =
  let db = Provdb.create () in
  let alloc = Pnode.allocator ~machine:1 in
  let p () = Pnode.fresh alloc in
  let in1 = p () and in2 = p () and proc = p () and out = p () and unrelated = p () in
  Provdb.set_file db in1 ~name:"input1.dat";
  Provdb.set_file db in2 ~name:"input2.dat";
  Provdb.set_file db out ~name:"out.gif";
  Provdb.set_file db unrelated ~name:"bystander.txt";
  Provdb.declare_virtual db proc;
  Provdb.add_record db proc ~version:0 (Record.typ "PROCESS");
  Provdb.add_record db proc ~version:0 (Record.name "kepler");
  Provdb.add_record db proc ~version:0
    (Record.make Record.Attr.argv (Pvalue.Strs [ "kepler"; "wf.xml" ]));
  Provdb.add_record db proc ~version:0 (Record.input_of in1 0);
  Provdb.add_record db proc ~version:0 (Record.input_of in2 0);
  (* out v0 written by proc, then frozen to v1 *)
  Provdb.add_record db out ~version:0 (Record.input_of proc 0);
  Provdb.add_record db out ~version:1 (Record.make Record.Attr.freeze (Pvalue.Int 1));
  Provdb.add_record db out ~version:1 (Record.input_of out 0);
  (db, in1, in2, proc, out, unrelated)

(* --- parser --------------------------------------------------------------- *)

let test_parse_paper_query () =
  let q =
    Pql.parse
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "atlas-x.gif"|}
  in
  check tint "two sources" 2 (List.length q.froms);
  check tint "one output" 1 (List.length q.select);
  check tbool "has where" true (q.where <> None)

let test_parse_operators () =
  let q = Pql.parse "select X from Provenance.object.(input|^input)+.name? as X" in
  match (List.hd q.froms).path with
  | Some (Pql_ast.Seq (Pql_ast.Plus (Pql_ast.Alt _), Pql_ast.Opt _)) -> ()
  | _ -> Alcotest.fail "unexpected path structure"

let test_parse_errors () =
  let bad s =
    match Pql.parse s with
    | exception Pql.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "select";
  bad "select X from";
  bad "select X from Provenance.nosuchclass as X";
  bad "select X from Provenance.file as X where";
  bad "select X from Provenance.file as X trailing";
  bad "select X from Provenance.file X" (* missing `as` *)

let test_lexer_comments_and_strings () =
  let toks = Pql_lexer.tokenize "select -- comment\n 'single' \"dou\\\"ble\"" in
  check tint "tokens" 4 (List.length toks) (* select, 2 strings, EOF *)

(* --- evaluator ------------------------------------------------------------ *)

let test_paper_query_semantics () =
  let db, _in1, _in2, _proc, _out, _unrelated = sample_db () in
  let names =
    Helpers.pql_names db
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "out.gif"|}
  in
  (* input* is reflexive: includes out.gif itself, the process, both inputs *)
  check tstrs "full ancestry"
    [ "input1.dat"; "input2.dat"; "kepler"; "out.gif" ]
    names

let test_plus_excludes_self () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as F F.input+ as A where F.name = "out.gif"|}
  in
  (* input+ starts with one step: v1 -> v0 of out.gif is still out.gif,
     so out.gif remains via its older version; kepler and inputs appear *)
  check tbool "kepler reached" true (List.mem "kepler" names);
  check tbool "inputs reached" true (List.mem "input1.dat" names)

let test_single_step () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db {|select A from Provenance.file as F F.input as A where F.name = "out.gif"|}
  in
  (* one step from out.gif v1 reaches only out.gif v0 (the version edge) *)
  check tstrs "one step = version edge" [ "out.gif" ] names

let test_inverse_edges () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db
      {|select D from Provenance.file as F F.^input as D where F.name = "input1.dat"|}
  in
  check tstrs "descendant via inverse" [ "kepler" ] names

let test_inverse_closure_descendants () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db
      {|select D from Provenance.file as F F.^input+ as D where F.name = "input1.dat"|}
  in
  check tbool "out.gif descends from input1" true (List.mem "out.gif" names)

let test_where_filters () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db {|select F from Provenance.file as F where F.name ~ "input*"|}
  in
  check tstrs "glob filter" [ "input1.dat"; "input2.dat" ] names

let test_where_and_or_not () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db
      {|select F from Provenance.file as F
        where (F.name = "input1.dat" or F.name = "out.gif") and not F.name = "out.gif"|}
  in
  check tstrs "boolean conditions" [ "input1.dat" ] names

let test_process_root () =
  let db, _, _, _, _, _ = sample_db () in
  let names = Helpers.pql_names db "select P from Provenance.process as P" in
  check tstrs "process root" [ "kepler" ] names

let test_attribute_access () =
  let db, _, _, _, _, _ = sample_db () in
  let rows =
    Helpers.pql_rows db
      {|select P.argv from Provenance.process as P where P.name = "kepler"|}
  in
  check tint "one row" 1 (List.length rows)

let test_count_aggregate () =
  let db, _, _, _, _, _ = sample_db () in
  let rows =
    Helpers.pql_rows db
      {|select count(A) from Provenance.file as F F.input* as A where F.name = "out.gif"|}
  in
  match rows with
  | [ [ Pql_eval.Value (Pvalue.Int n) ] ] ->
      (* out.gif v1, out.gif v0, kepler, input1, input2 = 5 node-versions *)
      check tint "count of distinct ancestors" 5 n
  | _ -> Alcotest.fail "expected single count row"

let test_exists_subquery () =
  let db, _, _, _, _, _ = sample_db () in
  (* files that have at least one descendant *)
  let names =
    Helpers.pql_names db
      {|select F from Provenance.file as F
        where exists (select D from F.^input as D)|}
  in
  check tbool "input1 has descendants" true (List.mem "input1.dat" names);
  check tbool "bystander does not" false (List.mem "bystander.txt" names)

let test_in_subquery () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db
      {|select F from Provenance.file as F
        where F in (select A from Provenance.file as Out Out.input* as A
                    where Out.name = "out.gif")|}
  in
  check tbool "inputs are in out's ancestry" true (List.mem "input1.dat" names);
  check tbool "bystander is not" false (List.mem "bystander.txt" names)

let test_version_pseudo_attr () =
  let db, _, _, _, _, _ = sample_db () in
  let rows =
    Helpers.pql_rows db {|select F.version from Provenance.file as F where F.name = "out.gif"|}
  in
  match rows with
  | [ [ Pql_eval.Value (Pvalue.Int v) ] ] -> check tint "latest version" 1 v
  | _ -> Alcotest.fail "expected version row"

let test_empty_result () =
  let db, _, _, _, _, _ = sample_db () in
  let rows = Helpers.pql_rows db {|select F from Provenance.file as F where F.name = "absent"|} in
  check tint "no rows" 0 (List.length rows)

let test_multi_column_select () =
  let db, _, _, _, _, _ = sample_db () in
  let p =
    Pql.Engine.prepare db
      {|select F, F.name, F.version from Provenance.file as F where F.name ~ "input*"|}
  in
  let rows = Pql.Engine.execute p in
  check tint "two rows" 2 (List.length rows);
  check tint "three columns" 3 (List.length (List.hd rows));
  check (Alcotest.list Alcotest.string) "column names"
    [ "F"; "F.name"; "F.version" ] (Pql.Engine.columns p)

let test_from_separators () =
  (* comma-separated and juxtaposed sources are both accepted, and mix *)
  let q1 = Pql.parse "select A from Provenance.file as F, F.input* as A" in
  let q2 = Pql.parse "select A from Provenance.file as F F.input* as A" in
  let q3 = Pql.parse "select A from Provenance.file as F, F.input as B B.input* as A" in
  check tint "comma" 2 (List.length q1.froms);
  check tint "juxtaposed" 2 (List.length q2.froms);
  check tint "mixed" 3 (List.length q3.froms)

let test_print_module () =
  let q =
    Pql.parse
      {|select count(A), F.name from Provenance.file as F, F.(input|^input)+ as A
        where not (F.name = "x" and F.version > 2) or F.name ~ "y*" limit 5|}
  in
  let printed = Pql_print.to_string q in
  check Alcotest.bool "reparse equals" true (Pql.parse printed = q)

let test_order_by () =
  let db, _, _, _, _, _ = sample_db () in
  let names_in_order q =
    List.filter_map
      (fun row ->
        match row with [ Pql_eval.Node (p, _) ] -> Provdb.name_of db p | _ -> None)
      (Helpers.pql_rows db q)
  in
  let asc = names_in_order "select F from Provenance.file as F order by F.name asc" in
  let desc = names_in_order "select F from Provenance.file as F order by F.name desc" in
  check (Alcotest.list Alcotest.string) "ascending"
    [ "bystander.txt"; "input1.dat"; "input2.dat"; "out.gif" ] asc;
  check (Alcotest.list Alcotest.string) "descending" (List.rev asc) desc;
  (* order by + limit = deterministic top-k *)
  let top =
    names_in_order "select F from Provenance.file as F order by F.name limit 2"
  in
  check (Alcotest.list Alcotest.string) "top 2" [ "bystander.txt"; "input1.dat" ] top

let test_limit_clause () =
  let db, _, _, _, _, _ = sample_db () in
  let rows =
    Helpers.pql_rows db
      {|select A from Provenance.file as F F.input* as A where F.name = "out.gif" limit 2|}
  in
  check tint "rows pruned to 2" 2 (List.length rows);
  let r0 = Helpers.pql_rows db {|select F from Provenance.file as F limit 0|} in
  check tint "limit 0" 0 (List.length r0);
  (match Pql.parse "select F from Provenance.file as F limit x" with
  | exception Pql.Error _ -> ()
  | _ -> Alcotest.fail "non-integer limit rejected")

let test_any_edge () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Helpers.pql_names db {|select A from Provenance.file as F F._* as A where F.name = "out.gif"|}
  in
  check tbool "wildcard closure matches input*" true (List.mem "input2.dat" names)

(* qcheck: printing a parsed query and reparsing yields the same AST *)
let gen_query_ast =
  let open QCheck2.Gen in
  let ident = oneofl [ "X"; "Y"; "Anc"; "File2" ] in
  let attr = oneofl [ "name"; "type"; "version"; "params" ] in
  let edge =
    oneof
      [
        map (fun a -> Pql_ast.Edge (Pql_ast.Forward a)) (oneofl [ "input"; "file_url" ]);
        map (fun a -> Pql_ast.Edge (Pql_ast.Inverse a)) (oneofl [ "input" ]);
        pure (Pql_ast.Edge Pql_ast.Any_edge);
      ]
  in
  let path =
    fix
      (fun self depth ->
        if depth = 0 then edge
        else
          oneof
            [
              edge;
              map2 (fun a b -> Pql_ast.Seq (a, b)) (self (depth - 1)) (self (depth - 1));
              map2 (fun a b -> Pql_ast.Alt (a, b)) (self (depth - 1)) (self (depth - 1));
              map (fun a -> Pql_ast.Star a) (self (depth - 1));
              map (fun a -> Pql_ast.Plus a) (self (depth - 1));
              map (fun a -> Pql_ast.Opt a) (self (depth - 1));
            ])
      2
  in
  let root =
    oneof
      [
        pure Pql_ast.Root_files;
        pure Pql_ast.Root_processes;
        pure Pql_ast.Root_objects;
      ]
  in
  let source =
    map3 (fun root path binder -> { Pql_ast.root; path; binder }) root (option path) ident
  in
  let expr =
    oneof
      [
        map (fun v -> Pql_ast.Var v) ident;
        map2 (fun v a -> Pql_ast.Attr (v, a)) ident attr;
        map (fun s -> Pql_ast.Lit (Pql_ast.L_str s))
          (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
        map (fun i -> Pql_ast.Lit (Pql_ast.L_int i)) (int_bound 100);
      ]
  in
  let cmp = oneofl Pql_ast.[ Eq; Neq; Lt; Le; Gt; Ge; Like ] in
  let cond =
    fix
      (fun self depth ->
        if depth = 0 then map3 (fun a op b -> Pql_ast.Cmp (a, op, b)) expr cmp expr
        else
          oneof
            [
              map3 (fun a op b -> Pql_ast.Cmp (a, op, b)) expr cmp expr;
              map2 (fun a b -> Pql_ast.And (a, b)) (self (depth - 1)) (self (depth - 1));
              map2 (fun a b -> Pql_ast.Or (a, b)) (self (depth - 1)) (self (depth - 1));
              map (fun a -> Pql_ast.Not a) (self (depth - 1));
            ])
      2
  in
  let output =
    oneof
      [
        map (fun e -> Pql_ast.O_expr e) expr;
        map (fun e -> Pql_ast.O_agg (Pql_ast.Count, e)) expr;
      ]
  in
  let order = option (pair expr bool) in
  map3
    (fun select (froms, where) (order, limit) ->
      { Pql_ast.select; froms; where; order; limit })
    (list_size (int_range 1 3) output)
    (pair (list_size (int_range 1 3) source) (option cond))
    (pair order (option (int_bound 50)))

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"pql: print/parse AST roundtrip" ~count:300 gen_query_ast (fun q ->
      let printed = Pql_print.to_string q in
      match Pql.parse printed with
      | q' -> q = q'
      | exception Pql.Error _ -> false)

(* qcheck: glob matcher agrees with a reference implementation on simple
   patterns *)
let prop_glob =
  QCheck2.Test.make ~name:"pql: glob matcher basics" ~count:200
    QCheck2.Gen.(pair (string_size ~gen:(char_range 'a' 'c') (int_bound 6))
                   (string_size ~gen:(char_range 'a' 'c') (int_bound 6)))
    (fun (s, p) ->
      (* pattern without wildcards behaves like equality *)
      Pql_eval.glob_match p s = String.equal p s)

let prop_glob_star =
  QCheck2.Test.make ~name:"pql: '*' matches any suffix" ~count:200
    QCheck2.Gen.(pair (string_size ~gen:printable (int_bound 8))
                   (string_size ~gen:printable (int_bound 8)))
    (fun (prefix, rest) ->
      QCheck2.assume (not (String.contains prefix '*' || String.contains prefix '?'));
      Pql_eval.glob_match (prefix ^ "*") (prefix ^ rest))

(* Compaction moves out.gif's v0 — and with it the edge to kepler — below
   the floor.  An ancestry query that crosses that boundary must fault the
   cold tier back in transparently: same answer as the uncompacted db, and
   the evaluator itself never knows an archive exists. *)
let test_ancestry_across_archive_boundary () =
  let ancestry db =
    Helpers.pql_names db
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "out.gif"|}
  in
  let db, _, _, _, _, _ = sample_db () in
  let expect = ancestry db in
  (* without a fault handler the hot tier alone loses the ancestors *)
  let blind, _ = Provdb.compact db ~keep:1 in
  check tbool "query really crosses the floor" true
    (List.length (ancestry blind) < List.length expect);
  (* with one, the first below-floor access pulls the cold tier in *)
  let hot, cold = Provdb.compact db ~keep:1 in
  check tbool "compaction expired versions" true
    (Provdb.quad_count hot < Provdb.quad_count db);
  let faulted = ref 0 in
  Provdb.set_fault_handler hot (fun t ->
      incr faulted;
      Provdb.merge_into ~dst:t ~src:cold;
      true);
  check tstrs "ancestry across the archive boundary" expect (ancestry hot);
  check tbool "the query faulted the cold tier in" true (!faulted > 0)

(* --- planner (ISSUE 9) ----------------------------------------------------- *)

(* The flagship access-path decision: a selective name equality turns the
   class scan into a name-index probe, and the dependent closure walk is
   memoized.  Everything the probe absorbed is still re-applied (pushed),
   so the probe can only narrow. *)
let test_plan_uses_name_probe () =
  let db, _, _, _, _, _ = sample_db () in
  let p =
    Pql.Engine.prepare db
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "out.gif"|}
  in
  let plan = Pql.Engine.explain p in
  (match plan.Pql_plan.steps with
  | [ s1; s2 ] ->
      (match s1.Pql_plan.access with
      | Pql_plan.Name_probe (Pql_ast.Root_files, "out.gif") -> ()
      | a -> Alcotest.failf "expected name probe, got %s" (Pql_plan.access_str a));
      check tint "probe est = posting length" 1 s1.Pql_plan.est;
      check tint "name cond still pushed" 1 (List.length s1.Pql_plan.pushed);
      (match s2.Pql_plan.access with
      | Pql_plan.Var_step "Atlas" -> ()
      | a -> Alcotest.failf "expected var step, got %s" (Pql_plan.access_str a));
      check tbool "dependent walk memoized" true s2.Pql_plan.memoized
  | steps -> Alcotest.failf "expected 2 steps, got %d" (List.length steps));
  check tbool "no residual" true (plan.Pql_plan.residual = None)

let test_plan_attr_probe_and_scan () =
  let db, _, _, _, _, _ = sample_db () in
  let explain q = Pql.Engine.explain (Pql.Engine.prepare db q) in
  (* non-pseudo attribute equality: the inverted attribute index wins *)
  let p1 = explain {|select P from Provenance.object as P where P.argv = "kepler"|} in
  (match (List.hd p1.Pql_plan.steps).Pql_plan.access with
  | Pql_plan.Attr_probe (Pql_ast.Root_objects, "ARGV") -> ()
  | a -> Alcotest.failf "expected attr probe, got %s" (Pql_plan.access_str a));
  (* a glob is not sargable: falls back to the class scan *)
  let p2 = explain {|select F from Provenance.file as F where F.name ~ "input*"|} in
  (match (List.hd p2.Pql_plan.steps).Pql_plan.access with
  | Pql_plan.Scan Pql_ast.Root_files -> ()
  | a -> Alcotest.failf "expected scan, got %s" (Pql_plan.access_str a));
  (* version is a pseudo-attribute no record backs: never probed *)
  let p3 = explain {|select F from Provenance.file as F where F.version = 1|} in
  (match (List.hd p3.Pql_plan.steps).Pql_plan.access with
  | Pql_plan.Scan Pql_ast.Root_files -> ()
  | a -> Alcotest.failf "expected scan for pseudo-attr, got %s" (Pql_plan.access_str a))

let test_plan_hash_join () =
  let db, _, _, _, _, _ = sample_db () in
  let p =
    Pql.Engine.prepare db
      {|select F, G from Provenance.file as F, Provenance.file as G
        where F.name = G.name|}
  in
  let plan = Pql.Engine.explain p in
  (match plan.Pql_plan.steps with
  | [ _; s2 ] -> check tbool "cross-binding equality joined" true (s2.Pql_plan.join <> None)
  | _ -> Alcotest.fail "expected 2 steps");
  check tbool "join leaves no residual" true (plan.Pql_plan.residual = None);
  (* every file pairs with itself only (names are unique here) *)
  check tint "self-join rows" 4 (List.length (Pql.Engine.execute p))

let test_plan_unbound_variable () =
  let db, _, _, _, _, _ = sample_db () in
  match Pql.Engine.prepare db "select A from Nowhere.input* as A" with
  | exception Pql.Error (Pql.Plan_error _) -> ()
  | exception Pql.Error _ -> Alcotest.fail "wrong error phase"
  | _ -> Alcotest.fail "unbound variable accepted"

(* EXPLAIN stability: the rendered plan is part of the tool surface
   (passctl --explain, the HOWTO walkthrough), so its exact shape is
   pinned here — before execution (estimates only) and after (estimated
   vs. actual side by side). *)
let test_explain_golden () =
  let db, _, _, _, _, _ = sample_db () in
  let p =
    Pql.Engine.prepare db
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "out.gif"|}
  in
  check Alcotest.string "explain before execute"
    "plan:\n\
    \  Atlas <- name-index \"out.gif\" -> files  (est 1)\n\
    \      push Atlas.name = \"out.gif\"\n\
    \  Ancestor <- from Atlas, walk input* [memo]  (est 5)\n\
    \  rows: (est 5)"
    (Pql_plan.to_string (Pql.Engine.explain p));
  let rows = Pql.Engine.execute p in
  check tint "five ancestor rows" 5 (List.length rows);
  check Alcotest.string "explain after execute"
    "plan:\n\
    \  Atlas <- name-index \"out.gif\" -> files  (est 1, actual 1)\n\
    \      push Atlas.name = \"out.gif\"\n\
    \  Ancestor <- from Atlas, walk input* [memo]  (est 5, actual 5)\n\
    \  rows: (est 5, actual 5)"
    (Pql_plan.to_string (Pql.Engine.explain p))

(* --- planner == naive oracle on random graphs x random queries ------------- *)

(* A generated graph description: node i is a process or a file, owns a
   (possibly duplicated) name, reads a set of earlier nodes, and may
   carry a PARAMS attribute. *)
let build_random_db (specs : (bool * string * int list * string option) list) =
  let db = Provdb.create () in
  let alloc = Pnode.allocator ~machine:7 in
  let nodes = Array.of_list (List.map (fun _ -> Pnode.fresh alloc) specs) in
  List.iteri
    (fun i (is_proc, name, parents, params) ->
      let pn = nodes.(i) in
      if is_proc then begin
        Provdb.declare_virtual db pn;
        Provdb.add_record db pn ~version:0 (Record.typ "PROCESS");
        Provdb.add_record db pn ~version:0 (Record.name name)
      end
      else Provdb.set_file db pn ~name;
      List.iter
        (fun j -> Provdb.add_record db pn ~version:0 (Record.input_of nodes.(j mod i) 0))
        (if i = 0 then [] else parents);
      match params with
      | Some v -> Provdb.add_record db pn ~version:0 (Record.make "PARAMS" (Pvalue.Str v))
      | None -> ())
    specs;
  db

let gen_graph =
  let open QCheck2.Gen in
  let node_spec =
    quad bool
      (oneofl [ "a"; "b"; "c"; "out.gif" ])
      (list_size (int_bound 2) (int_bound 20))
      (option (oneofl [ "x"; "y" ]))
  in
  list_size (int_range 2 10) node_spec

(* Random well-typed queries over sequential binders B0..Bk: class roots
   or walks from earlier binders, sargable and non-sargable conditions,
   cross-binding equalities, plain or count() selects.  No order-by /
   limit / mixed agg+expr selects: those pick representatives the two
   pipelines may legitimately pick differently. *)
let gen_query_for_planner =
  let open QCheck2.Gen in
  let path_pool =
    let e = Pql_ast.Edge (Pql_ast.Forward "input") in
    let inv = Pql_ast.Edge (Pql_ast.Inverse "input") in
    Pql_ast.
      [ e; inv; Star e; Plus e; Star inv; Edge Any_edge; Star (Edge Any_edge); Alt (e, inv) ]
  in
  let binder i = "B" ^ string_of_int i in
  let root = oneofl Pql_ast.[ Root_files; Root_objects; Root_processes ] in
  let source i =
    if i = 0 then map2 (fun r p -> { Pql_ast.root = r; path = p; binder = binder 0 }) root
        (option (oneofl path_pool))
    else
      oneof
        [
          map2 (fun r p -> { Pql_ast.root = r; path = p; binder = binder i }) root
            (option (oneofl path_pool));
          map2
            (fun v p -> { Pql_ast.root = Pql_ast.Root_var (binder v); path = Some p; binder = binder i })
            (int_bound (i - 1)) (oneofl path_pool);
        ]
  in
  let cond k =
    let attr = oneofl [ "name"; "params"; "type"; "version" ] in
    let lit =
      oneof
        [
          map (fun s -> Pql_ast.L_str s) (oneofl [ "a"; "b"; "out.gif"; "x"; "PROCESS" ]);
          map (fun i -> Pql_ast.L_int i) (int_bound 3);
        ]
    in
    let bvar = map binder (int_bound (k - 1)) in
    oneof
      [
        map3 (fun b a l -> Pql_ast.Cmp (Pql_ast.Attr (b, a), Pql_ast.Eq, Pql_ast.Lit l)) bvar attr lit;
        map3 (fun b a l -> Pql_ast.Cmp (Pql_ast.Attr (b, a), Pql_ast.Like, Pql_ast.Lit l)) bvar attr lit;
        map3
          (fun b a (op, l) -> Pql_ast.Cmp (Pql_ast.Attr (b, a), op, Pql_ast.Lit l))
          bvar attr
          (pair (oneofl Pql_ast.[ Neq; Lt; Ge ]) lit);
        map2 (fun b1 b2 -> Pql_ast.Cmp (Pql_ast.Var b1, Pql_ast.Eq, Pql_ast.Var b2)) bvar bvar;
        map2
          (fun b1 b2 ->
            Pql_ast.Cmp
              (Pql_ast.Attr (b1, "name"), Pql_ast.Eq, Pql_ast.Attr (b2, "name")))
          bvar bvar;
      ]
  in
  let* k = int_range 1 3 in
  let* froms = flatten_l (List.init k source) in
  let* where =
    let* n = int_bound 2 in
    if n = 0 then pure None
    else
      let* cs = list_size (pure n) (cond k) in
      pure (match cs with [] -> None | c :: rest ->
        Some (List.fold_left (fun acc c -> Pql_ast.And (acc, c)) c rest))
  in
  let* select =
    oneof
      [
        (let* b = int_bound (k - 1) in
         pure [ Pql_ast.O_expr (Pql_ast.Var (binder b)) ]);
        (let* b = int_bound (k - 1) in
         pure [ Pql_ast.O_agg (Pql_ast.Count, Pql_ast.Var (binder b)) ]);
        pure (List.init k (fun i -> Pql_ast.O_expr (Pql_ast.Var (binder i))));
      ]
  in
  pure { Pql_ast.select; froms; where; order = None; limit = None }

(* a total order on rows so both pipelines' outputs compare as sets *)
let row_key row =
  String.concat "|"
    (List.map
       (function
         | Pql_eval.Node (p, v) -> Printf.sprintf "n:%d:%d" (Pnode.to_int p) v
         | Pql_eval.Value v -> (
             match v with
             | Pvalue.Str s -> "s:" ^ s
             | Pvalue.Int i -> "i:" ^ string_of_int i
             | Pvalue.Bool b -> "b:" ^ string_of_bool b
             | Pvalue.Bytes b -> "y:" ^ b
             | Pvalue.Strs l -> "l:" ^ String.concat "," l
             | Pvalue.Xref x -> Printf.sprintf "x:%d:%d" (Pnode.to_int x.pnode) x.version))
       row)

let sorted_keys rows = List.sort String.compare (List.map row_key rows)

let prop_planner_matches_naive =
  QCheck2.Test.make ~name:"pql: planner rows = naive oracle" ~count:500
    QCheck2.Gen.(pair gen_graph gen_query_for_planner)
    (fun (specs, q) ->
      let db = build_random_db specs in
      let planner = Pql.Engine.execute (Pql.Engine.prepare_ast db q) in
      let naive = Pql_eval.reference_rows db q in
      List.equal String.equal (sorted_keys planner) (sorted_keys naive))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_roundtrip; prop_glob; prop_glob_star ]
  @ [
      QCheck_alcotest.to_alcotest
        ~rand:(Random.State.make [| 0x5eed |])
        prop_planner_matches_naive;
    ]

let suite =
  [
    Alcotest.test_case "parse: the paper's sample query" `Quick test_parse_paper_query;
    Alcotest.test_case "parse: path operators" `Quick test_parse_operators;
    Alcotest.test_case "parse: errors rejected" `Quick test_parse_errors;
    Alcotest.test_case "lex: comments and strings" `Quick test_lexer_comments_and_strings;
    Alcotest.test_case "eval: paper query full ancestry" `Quick test_paper_query_semantics;
    Alcotest.test_case "eval: input+ semantics" `Quick test_plus_excludes_self;
    Alcotest.test_case "eval: single step" `Quick test_single_step;
    Alcotest.test_case "eval: inverse edge" `Quick test_inverse_edges;
    Alcotest.test_case "eval: inverse closure (descendants)" `Quick
      test_inverse_closure_descendants;
    Alcotest.test_case "eval: glob in where" `Quick test_where_filters;
    Alcotest.test_case "eval: and/or/not" `Quick test_where_and_or_not;
    Alcotest.test_case "eval: Provenance.process root" `Quick test_process_root;
    Alcotest.test_case "eval: attribute access" `Quick test_attribute_access;
    Alcotest.test_case "eval: count aggregate" `Quick test_count_aggregate;
    Alcotest.test_case "eval: exists subquery" `Quick test_exists_subquery;
    Alcotest.test_case "eval: in subquery" `Quick test_in_subquery;
    Alcotest.test_case "eval: version pseudo-attribute" `Quick test_version_pseudo_attr;
    Alcotest.test_case "eval: empty result" `Quick test_empty_result;
    Alcotest.test_case "eval: multi-column select" `Quick test_multi_column_select;
    Alcotest.test_case "parse: from-list separators" `Quick test_from_separators;
    Alcotest.test_case "print: normalizes and reparses" `Quick test_print_module;
    Alcotest.test_case "eval: order by" `Quick test_order_by;
    Alcotest.test_case "eval: limit clause prunes results" `Quick test_limit_clause;
    Alcotest.test_case "eval: any-edge wildcard" `Quick test_any_edge;
    Alcotest.test_case "eval: ancestry crosses the archive boundary" `Quick
      test_ancestry_across_archive_boundary;
    Alcotest.test_case "plan: selective name equality uses the name index" `Quick
      test_plan_uses_name_probe;
    Alcotest.test_case "plan: attr probe, scan fallback, pseudo-attrs" `Quick
      test_plan_attr_probe_and_scan;
    Alcotest.test_case "plan: cross-binding equality becomes a hash join" `Quick
      test_plan_hash_join;
    Alcotest.test_case "plan: unbound variable is a plan error" `Quick
      test_plan_unbound_variable;
    Alcotest.test_case "explain: golden plan rendering (est and actual)" `Quick
      test_explain_golden;
  ]
  @ qcheck_cases
