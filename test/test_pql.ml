(* PQL tests: lexer/parser behaviour, evaluator semantics on a hand-built
   provenance graph, the paper's sample query, subqueries, aggregation,
   inverse edges, and glob matching. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstrs = Alcotest.(list string)

(* Hand-build the database for a tiny rendition of the Figure 1 scenario:

     input1.dat --\
                   kepler(process) --> out.gif
     input2.dat --/
     out.gif also has an older version linked by a freeze edge. *)
let sample_db () =
  let db = Provdb.create () in
  let alloc = Pnode.allocator ~machine:1 in
  let p () = Pnode.fresh alloc in
  let in1 = p () and in2 = p () and proc = p () and out = p () and unrelated = p () in
  Provdb.set_file db in1 ~name:"input1.dat";
  Provdb.set_file db in2 ~name:"input2.dat";
  Provdb.set_file db out ~name:"out.gif";
  Provdb.set_file db unrelated ~name:"bystander.txt";
  Provdb.declare_virtual db proc;
  Provdb.add_record db proc ~version:0 (Record.typ "PROCESS");
  Provdb.add_record db proc ~version:0 (Record.name "kepler");
  Provdb.add_record db proc ~version:0
    (Record.make Record.Attr.argv (Pvalue.Strs [ "kepler"; "wf.xml" ]));
  Provdb.add_record db proc ~version:0 (Record.input_of in1 0);
  Provdb.add_record db proc ~version:0 (Record.input_of in2 0);
  (* out v0 written by proc, then frozen to v1 *)
  Provdb.add_record db out ~version:0 (Record.input_of proc 0);
  Provdb.add_record db out ~version:1 (Record.make Record.Attr.freeze (Pvalue.Int 1));
  Provdb.add_record db out ~version:1 (Record.input_of out 0);
  (db, in1, in2, proc, out, unrelated)

(* --- parser --------------------------------------------------------------- *)

let test_parse_paper_query () =
  let q =
    Pql.parse
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "atlas-x.gif"|}
  in
  check tint "two sources" 2 (List.length q.froms);
  check tint "one output" 1 (List.length q.select);
  check tbool "has where" true (q.where <> None)

let test_parse_operators () =
  let q = Pql.parse "select X from Provenance.object.(input|^input)+.name? as X" in
  match (List.hd q.froms).path with
  | Some (Pql_ast.Seq (Pql_ast.Plus (Pql_ast.Alt _), Pql_ast.Opt _)) -> ()
  | _ -> Alcotest.fail "unexpected path structure"

let test_parse_errors () =
  let bad s =
    match Pql.parse s with
    | exception Pql.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "select";
  bad "select X from";
  bad "select X from Provenance.nosuchclass as X";
  bad "select X from Provenance.file as X where";
  bad "select X from Provenance.file as X trailing";
  bad "select X from Provenance.file X" (* missing `as` *)

let test_lexer_comments_and_strings () =
  let toks = Pql_lexer.tokenize "select -- comment\n 'single' \"dou\\\"ble\"" in
  check tint "tokens" 4 (List.length toks) (* select, 2 strings, EOF *)

(* --- evaluator ------------------------------------------------------------ *)

let test_paper_query_semantics () =
  let db, _in1, _in2, _proc, _out, _unrelated = sample_db () in
  let names =
    Pql.names db
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "out.gif"|}
  in
  (* input* is reflexive: includes out.gif itself, the process, both inputs *)
  check tstrs "full ancestry"
    [ "input1.dat"; "input2.dat"; "kepler"; "out.gif" ]
    names

let test_plus_excludes_self () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db
      {|select A from Provenance.file as F F.input+ as A where F.name = "out.gif"|}
  in
  (* input+ starts with one step: v1 -> v0 of out.gif is still out.gif,
     so out.gif remains via its older version; kepler and inputs appear *)
  check tbool "kepler reached" true (List.mem "kepler" names);
  check tbool "inputs reached" true (List.mem "input1.dat" names)

let test_single_step () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db {|select A from Provenance.file as F F.input as A where F.name = "out.gif"|}
  in
  (* one step from out.gif v1 reaches only out.gif v0 (the version edge) *)
  check tstrs "one step = version edge" [ "out.gif" ] names

let test_inverse_edges () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db
      {|select D from Provenance.file as F F.^input as D where F.name = "input1.dat"|}
  in
  check tstrs "descendant via inverse" [ "kepler" ] names

let test_inverse_closure_descendants () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db
      {|select D from Provenance.file as F F.^input+ as D where F.name = "input1.dat"|}
  in
  check tbool "out.gif descends from input1" true (List.mem "out.gif" names)

let test_where_filters () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db {|select F from Provenance.file as F where F.name ~ "input*"|}
  in
  check tstrs "glob filter" [ "input1.dat"; "input2.dat" ] names

let test_where_and_or_not () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db
      {|select F from Provenance.file as F
        where (F.name = "input1.dat" or F.name = "out.gif") and not F.name = "out.gif"|}
  in
  check tstrs "boolean conditions" [ "input1.dat" ] names

let test_process_root () =
  let db, _, _, _, _, _ = sample_db () in
  let names = Pql.names db "select P from Provenance.process as P" in
  check tstrs "process root" [ "kepler" ] names

let test_attribute_access () =
  let db, _, _, _, _, _ = sample_db () in
  let r =
    Pql.query db
      {|select P.argv from Provenance.process as P where P.name = "kepler"|}
  in
  check tint "one row" 1 (List.length r.rows)

let test_count_aggregate () =
  let db, _, _, _, _, _ = sample_db () in
  let r =
    Pql.query db
      {|select count(A) from Provenance.file as F F.input* as A where F.name = "out.gif"|}
  in
  match r.rows with
  | [ [ Pql_eval.Value (Pvalue.Int n) ] ] ->
      (* out.gif v1, out.gif v0, kepler, input1, input2 = 5 node-versions *)
      check tint "count of distinct ancestors" 5 n
  | _ -> Alcotest.fail "expected single count row"

let test_exists_subquery () =
  let db, _, _, _, _, _ = sample_db () in
  (* files that have at least one descendant *)
  let names =
    Pql.names db
      {|select F from Provenance.file as F
        where exists (select D from F.^input as D)|}
  in
  check tbool "input1 has descendants" true (List.mem "input1.dat" names);
  check tbool "bystander does not" false (List.mem "bystander.txt" names)

let test_in_subquery () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db
      {|select F from Provenance.file as F
        where F in (select A from Provenance.file as Out Out.input* as A
                    where Out.name = "out.gif")|}
  in
  check tbool "inputs are in out's ancestry" true (List.mem "input1.dat" names);
  check tbool "bystander is not" false (List.mem "bystander.txt" names)

let test_version_pseudo_attr () =
  let db, _, _, _, _, _ = sample_db () in
  let r =
    Pql.query db {|select F.version from Provenance.file as F where F.name = "out.gif"|}
  in
  match r.rows with
  | [ [ Pql_eval.Value (Pvalue.Int v) ] ] -> check tint "latest version" 1 v
  | _ -> Alcotest.fail "expected version row"

let test_empty_result () =
  let db, _, _, _, _, _ = sample_db () in
  let r = Pql.query db {|select F from Provenance.file as F where F.name = "absent"|} in
  check tint "no rows" 0 (List.length r.rows)

let test_multi_column_select () =
  let db, _, _, _, _, _ = sample_db () in
  let r =
    Pql.query db
      {|select F, F.name, F.version from Provenance.file as F where F.name ~ "input*"|}
  in
  check tint "two rows" 2 (List.length r.rows);
  check tint "three columns" 3 (List.length (List.hd r.rows));
  check (Alcotest.list Alcotest.string) "column names"
    [ "F"; "F.name"; "F.version" ] r.columns

let test_from_separators () =
  (* comma-separated and juxtaposed sources are both accepted, and mix *)
  let q1 = Pql.parse "select A from Provenance.file as F, F.input* as A" in
  let q2 = Pql.parse "select A from Provenance.file as F F.input* as A" in
  let q3 = Pql.parse "select A from Provenance.file as F, F.input as B B.input* as A" in
  check tint "comma" 2 (List.length q1.froms);
  check tint "juxtaposed" 2 (List.length q2.froms);
  check tint "mixed" 3 (List.length q3.froms)

let test_print_module () =
  let q =
    Pql.parse
      {|select count(A), F.name from Provenance.file as F, F.(input|^input)+ as A
        where not (F.name = "x" and F.version > 2) or F.name ~ "y*" limit 5|}
  in
  let printed = Pql_print.to_string q in
  check Alcotest.bool "reparse equals" true (Pql.parse printed = q)

let test_order_by () =
  let db, _, _, _, _, _ = sample_db () in
  let names_in_order q =
    let r = Pql.query db q in
    List.filter_map
      (fun row ->
        match row with [ Pql_eval.Node (p, _) ] -> Provdb.name_of db p | _ -> None)
      r.rows
  in
  let asc = names_in_order "select F from Provenance.file as F order by F.name asc" in
  let desc = names_in_order "select F from Provenance.file as F order by F.name desc" in
  check (Alcotest.list Alcotest.string) "ascending"
    [ "bystander.txt"; "input1.dat"; "input2.dat"; "out.gif" ] asc;
  check (Alcotest.list Alcotest.string) "descending" (List.rev asc) desc;
  (* order by + limit = deterministic top-k *)
  let top =
    names_in_order "select F from Provenance.file as F order by F.name limit 2"
  in
  check (Alcotest.list Alcotest.string) "top 2" [ "bystander.txt"; "input1.dat" ] top

let test_limit_clause () =
  let db, _, _, _, _, _ = sample_db () in
  let r =
    Pql.query db
      {|select A from Provenance.file as F F.input* as A where F.name = "out.gif" limit 2|}
  in
  check tint "rows pruned to 2" 2 (List.length r.rows);
  let r0 =
    Pql.query db {|select F from Provenance.file as F limit 0|}
  in
  check tint "limit 0" 0 (List.length r0.rows);
  (match Pql.parse "select F from Provenance.file as F limit x" with
  | exception Pql.Error _ -> ()
  | _ -> Alcotest.fail "non-integer limit rejected")

let test_any_edge () =
  let db, _, _, _, _, _ = sample_db () in
  let names =
    Pql.names db {|select A from Provenance.file as F F._* as A where F.name = "out.gif"|}
  in
  check tbool "wildcard closure matches input*" true (List.mem "input2.dat" names)

(* qcheck: printing a parsed query and reparsing yields the same AST *)
let gen_query_ast =
  let open QCheck2.Gen in
  let ident = oneofl [ "X"; "Y"; "Anc"; "File2" ] in
  let attr = oneofl [ "name"; "type"; "version"; "params" ] in
  let edge =
    oneof
      [
        map (fun a -> Pql_ast.Edge (Pql_ast.Forward a)) (oneofl [ "input"; "file_url" ]);
        map (fun a -> Pql_ast.Edge (Pql_ast.Inverse a)) (oneofl [ "input" ]);
        pure (Pql_ast.Edge Pql_ast.Any_edge);
      ]
  in
  let path =
    fix
      (fun self depth ->
        if depth = 0 then edge
        else
          oneof
            [
              edge;
              map2 (fun a b -> Pql_ast.Seq (a, b)) (self (depth - 1)) (self (depth - 1));
              map2 (fun a b -> Pql_ast.Alt (a, b)) (self (depth - 1)) (self (depth - 1));
              map (fun a -> Pql_ast.Star a) (self (depth - 1));
              map (fun a -> Pql_ast.Plus a) (self (depth - 1));
              map (fun a -> Pql_ast.Opt a) (self (depth - 1));
            ])
      2
  in
  let root =
    oneof
      [
        pure Pql_ast.Root_files;
        pure Pql_ast.Root_processes;
        pure Pql_ast.Root_objects;
      ]
  in
  let source =
    map3 (fun root path binder -> { Pql_ast.root; path; binder }) root (option path) ident
  in
  let expr =
    oneof
      [
        map (fun v -> Pql_ast.Var v) ident;
        map2 (fun v a -> Pql_ast.Attr (v, a)) ident attr;
        map (fun s -> Pql_ast.Lit (Pql_ast.L_str s))
          (string_size ~gen:(char_range 'a' 'z') (int_bound 8));
        map (fun i -> Pql_ast.Lit (Pql_ast.L_int i)) (int_bound 100);
      ]
  in
  let cmp = oneofl Pql_ast.[ Eq; Neq; Lt; Le; Gt; Ge; Like ] in
  let cond =
    fix
      (fun self depth ->
        if depth = 0 then map3 (fun a op b -> Pql_ast.Cmp (a, op, b)) expr cmp expr
        else
          oneof
            [
              map3 (fun a op b -> Pql_ast.Cmp (a, op, b)) expr cmp expr;
              map2 (fun a b -> Pql_ast.And (a, b)) (self (depth - 1)) (self (depth - 1));
              map2 (fun a b -> Pql_ast.Or (a, b)) (self (depth - 1)) (self (depth - 1));
              map (fun a -> Pql_ast.Not a) (self (depth - 1));
            ])
      2
  in
  let output =
    oneof
      [
        map (fun e -> Pql_ast.O_expr e) expr;
        map (fun e -> Pql_ast.O_agg (Pql_ast.Count, e)) expr;
      ]
  in
  let order = option (pair expr bool) in
  map3
    (fun select (froms, where) (order, limit) ->
      { Pql_ast.select; froms; where; order; limit })
    (list_size (int_range 1 3) output)
    (pair (list_size (int_range 1 3) source) (option cond))
    (pair order (option (int_bound 50)))

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"pql: print/parse AST roundtrip" ~count:300 gen_query_ast (fun q ->
      let printed = Pql_print.to_string q in
      match Pql.parse printed with
      | q' -> q = q'
      | exception Pql.Error _ -> false)

(* qcheck: glob matcher agrees with a reference implementation on simple
   patterns *)
let prop_glob =
  QCheck2.Test.make ~name:"pql: glob matcher basics" ~count:200
    QCheck2.Gen.(pair (string_size ~gen:(char_range 'a' 'c') (int_bound 6))
                   (string_size ~gen:(char_range 'a' 'c') (int_bound 6)))
    (fun (s, p) ->
      (* pattern without wildcards behaves like equality *)
      Pql_eval.glob_match p s = String.equal p s)

let prop_glob_star =
  QCheck2.Test.make ~name:"pql: '*' matches any suffix" ~count:200
    QCheck2.Gen.(pair (string_size ~gen:printable (int_bound 8))
                   (string_size ~gen:printable (int_bound 8)))
    (fun (prefix, rest) ->
      QCheck2.assume (not (String.contains prefix '*' || String.contains prefix '?'));
      Pql_eval.glob_match (prefix ^ "*") (prefix ^ rest))

(* Compaction moves out.gif's v0 — and with it the edge to kepler — below
   the floor.  An ancestry query that crosses that boundary must fault the
   cold tier back in transparently: same answer as the uncompacted db, and
   the evaluator itself never knows an archive exists. *)
let test_ancestry_across_archive_boundary () =
  let ancestry db =
    Pql.names db
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "out.gif"|}
  in
  let db, _, _, _, _, _ = sample_db () in
  let expect = ancestry db in
  (* without a fault handler the hot tier alone loses the ancestors *)
  let blind, _ = Provdb.compact db ~keep:1 in
  check tbool "query really crosses the floor" true
    (List.length (ancestry blind) < List.length expect);
  (* with one, the first below-floor access pulls the cold tier in *)
  let hot, cold = Provdb.compact db ~keep:1 in
  check tbool "compaction expired versions" true
    (Provdb.quad_count hot < Provdb.quad_count db);
  let faulted = ref 0 in
  Provdb.set_fault_handler hot (fun t ->
      incr faulted;
      Provdb.merge_into ~dst:t ~src:cold;
      true);
  check tstrs "ancestry across the archive boundary" expect (ancestry hot);
  check tbool "the query faulted the cold tier in" true (!faulted > 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_roundtrip; prop_glob; prop_glob_star ]

let suite =
  [
    Alcotest.test_case "parse: the paper's sample query" `Quick test_parse_paper_query;
    Alcotest.test_case "parse: path operators" `Quick test_parse_operators;
    Alcotest.test_case "parse: errors rejected" `Quick test_parse_errors;
    Alcotest.test_case "lex: comments and strings" `Quick test_lexer_comments_and_strings;
    Alcotest.test_case "eval: paper query full ancestry" `Quick test_paper_query_semantics;
    Alcotest.test_case "eval: input+ semantics" `Quick test_plus_excludes_self;
    Alcotest.test_case "eval: single step" `Quick test_single_step;
    Alcotest.test_case "eval: inverse edge" `Quick test_inverse_edges;
    Alcotest.test_case "eval: inverse closure (descendants)" `Quick
      test_inverse_closure_descendants;
    Alcotest.test_case "eval: glob in where" `Quick test_where_filters;
    Alcotest.test_case "eval: and/or/not" `Quick test_where_and_or_not;
    Alcotest.test_case "eval: Provenance.process root" `Quick test_process_root;
    Alcotest.test_case "eval: attribute access" `Quick test_attribute_access;
    Alcotest.test_case "eval: count aggregate" `Quick test_count_aggregate;
    Alcotest.test_case "eval: exists subquery" `Quick test_exists_subquery;
    Alcotest.test_case "eval: in subquery" `Quick test_in_subquery;
    Alcotest.test_case "eval: version pseudo-attribute" `Quick test_version_pseudo_attr;
    Alcotest.test_case "eval: empty result" `Quick test_empty_result;
    Alcotest.test_case "eval: multi-column select" `Quick test_multi_column_select;
    Alcotest.test_case "parse: from-list separators" `Quick test_from_separators;
    Alcotest.test_case "print: normalizes and reparses" `Quick test_print_module;
    Alcotest.test_case "eval: order by" `Quick test_order_by;
    Alcotest.test_case "eval: limit clause prunes results" `Quick test_limit_clause;
    Alcotest.test_case "eval: any-edge wildcard" `Quick test_any_edge;
    Alcotest.test_case "eval: ancestry crosses the archive boundary" `Quick
      test_ancestry_across_archive_boundary;
  ]
  @ qcheck_cases
