(* PA-Kepler tests (paper §6.2 and the §3.1 use case): workflow engine
   semantics, the three recorder backends, the Provenance Challenge
   workflow, and the anomaly-detection scenario where layering is what
   makes the cause findable. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let pass_system () = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] ()

let setup () =
  let sys = pass_system () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  (sys, pid)

let test_workflow_validation () =
  let a = Actor.file_source ~name:"src" ~path:"/vol0/in" in
  let b = Actor.file_sink ~name:"dst" ~path:"/vol0/out" in
  (match
     Workflow.create ~name:"bad" ~actors:[ a; b ]
       ~links:[ { Workflow.from_actor = "src"; from_port = "nope"; to_actor = "dst"; to_port = "in" } ]
   with
  | exception Workflow.Invalid _ -> ()
  | _ -> Alcotest.fail "bad port accepted");
  (match
     Workflow.create ~name:"bad2" ~actors:[ a; b ] ~links:[]
   with
  | exception Workflow.Invalid _ -> ()
  | _ -> Alcotest.fail "unconnected input accepted")

let test_schedule_is_topological () =
  let wf = Challenge.workflow ~input_dir:"/vol0/in" ~output_dir:"/vol0/out" in
  let order = List.map (fun (a : Actor.t) -> a.name) (Workflow.schedule wf) in
  let pos name =
    let rec go i = function
      | [] -> Alcotest.failf "%s not scheduled" name
      | x :: rest -> if String.equal x name then i else go (i + 1) rest
    in
    go 0 order
  in
  check tbool "align before reslice" true (pos "align_warp1" < pos "reslice1");
  check tbool "reslice before softmean" true (pos "reslice3" < pos "softmean");
  check tbool "softmean before slicers" true (pos "softmean" < pos "slicer_x");
  check tbool "convert before sink" true (pos "convert_z" < pos "store_z")

let run_challenge sys pid recording =
  let io = Kepler_run.io_of_system sys ~pid in
  Challenge.prepare_inputs ~input_dir:"/vol0/in" io;
  let wf = Challenge.workflow ~input_dir:"/vol0/in" ~output_dir:"/vol0/out" in
  Kepler_run.run ~recording sys ~pid wf

let test_challenge_produces_outputs () =
  let sys, pid = setup () in
  let result = run_challenge sys pid Kepler_run.No_recording in
  check tint "all 18 actors fired" 18 (List.length result.Director.fired);
  let io = Kepler_run.io_of_system sys ~pid in
  List.iter
    (fun plane ->
      let out = io.Actor.read_file (Printf.sprintf "/vol0/out/atlas-%s.gif" plane) in
      check tbool ("atlas-" ^ plane ^ " nonempty") true (String.length out > 0))
    Challenge.planes

let test_outputs_deterministic_and_input_sensitive () =
  let run tweak =
    let sys, pid = setup () in
    let io = Kepler_run.io_of_system sys ~pid in
    Challenge.prepare_inputs ~input_dir:"/vol0/in" ~tweak io;
    let wf = Challenge.workflow ~input_dir:"/vol0/in" ~output_dir:"/vol0/out" in
    ignore
      (Kepler_run.run ~recording:Kepler_run.No_recording sys ~pid wf
        : Director.result);
    io.Actor.read_file "/vol0/out/atlas-x.gif"
  in
  check tbool "same inputs, same output" true (String.equal (run "") (run ""));
  check tbool "different inputs, different output" false (String.equal (run "") (run "mod"))

let test_text_recorder () =
  let sys, pid = setup () in
  ignore
    (run_challenge sys pid (Kepler_run.Text_file "/vol0/kepler.log") : Director.result);
  let io = Kepler_run.io_of_system sys ~pid in
  let log = io.Actor.read_file "/vol0/kepler.log" in
  check tbool "operators logged" true
    (String.length log > 0
    && List.exists
         (fun line -> String.length line >= 8 && String.sub line 0 8 = "OPERATOR")
         (String.split_on_char '\n' log))

let test_relational_recorder () =
  let sys, pid = setup () in
  let recorder, tables = Recorder.relational () in
  let io = Kepler_run.io_of_system sys ~pid in
  Challenge.prepare_inputs ~input_dir:"/vol0/in" io;
  let wf = Challenge.workflow ~input_dir:"/vol0/in" ~output_dir:"/vol0/out" in
  ignore (Director.run ~recorder wf io : Director.result);
  check tint "18 operator rows" 18 (List.length tables.Recorder.operators);
  check tbool "transfer rows" true (List.length tables.Recorder.transfers >= 14);
  check tbool "file events" true (List.length tables.Recorder.file_events >= 11)

let test_dpapi_recorder_links_layers () =
  let sys, pid = setup () in
  ignore (run_challenge sys pid Kepler_run.Dpapi : Director.result);
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  check tbool "db acyclic" true (Provdb.is_acyclic db);
  (* the paper's query: all ancestors of atlas-x.gif, crossing from the
     file through the workflow operators to the input files *)
  let names =
    Helpers.pql_names db
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "atlas-x.gif"|}
  in
  check tbool "operator in ancestry" true (List.mem "softmean" names);
  check tbool "slicer in ancestry" true (List.mem "slicer_x" names);
  check tbool "input file in ancestry" true (List.mem "anatomy1.img" names);
  check tbool "reference in ancestry" true (List.mem "reference.img" names);
  (* operator objects carry PARAMS (Table 1) *)
  let rows =
    Helpers.pql_rows db {|select P.params from Provenance.object as P where P.name = "softmean"|}
  in
  check tint "softmean params visible" 1 (List.length rows)

let test_anomaly_scenario () =
  (* §3.1: run twice; between runs someone silently modifies anatomy2.img.
     Kepler's own provenance is identical across runs (same operators,
     same parameters); the integrated provenance shows the second atlas
     descends from a *newer version* of anatomy2.img. *)
  let sys, pid = setup () in
  let io = Kepler_run.io_of_system sys ~pid in
  Challenge.prepare_inputs ~input_dir:"/vol0/in" io;
  let wf = Challenge.workflow ~input_dir:"/vol0/in" ~output_dir:"/vol0/out" in
  ignore (Kepler_run.run sys ~pid wf : Director.result);
  let first = io.Actor.read_file "/vol0/out/atlas-x.gif" in
  (* the colleague's silent modification, by another process *)
  let colleague = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let cio = Kepler_run.io_of_system sys ~pid:colleague in
  cio.Actor.write_file "/vol0/in/anatomy2.img" "anatomy-image-2-MODIFIED";
  ignore (Kepler_run.run sys ~pid wf : Director.result);
  let second = io.Actor.read_file "/vol0/out/atlas-x.gif" in
  check tbool "outputs differ" false (String.equal first second);
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  (* layered query: the modifying process is in the new atlas's ancestry *)
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as Atlas Atlas.input* as A
        where Atlas.name = "atlas-x.gif"|}
  in
  check tbool "modified input in ancestry" true (List.mem "anatomy2.img" names);
  (* and the file's version history shows the silent change *)
  let anatomy2 = List.hd (Provdb.find_by_name db "anatomy2.img") in
  check tbool "anatomy2 gained versions" true
    ((Option.get (Provdb.find_node db anatomy2)).Provdb.max_version >= 1)

let suite =
  [
    Alcotest.test_case "workflow validation" `Quick test_workflow_validation;
    Alcotest.test_case "schedule is topological" `Quick test_schedule_is_topological;
    Alcotest.test_case "challenge produces 3 atlases" `Quick test_challenge_produces_outputs;
    Alcotest.test_case "outputs deterministic + input-sensitive" `Quick
      test_outputs_deterministic_and_input_sensitive;
    Alcotest.test_case "text recorder backend" `Quick test_text_recorder;
    Alcotest.test_case "relational recorder backend" `Quick test_relational_recorder;
    Alcotest.test_case "DPAPI recorder links layers" `Quick test_dpapi_recorder_links_layers;
    Alcotest.test_case "anomaly scenario (§3.1)" `Quick test_anomaly_scenario;
  ]
