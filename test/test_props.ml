(* Cross-cutting property tests: parser robustness (fuzz), end-to-end
   record round-trips through the storage stack, Sxml print/parse
   stability, distributor invariant 4 under random traffic, and version
   monotonicity in Ctx. *)

open Pass_core

let tbool = Alcotest.bool
let check = Alcotest.check

(* --- fuzz: parsers may reject, never crash or hang --------------------------- *)

let junk_gen =
  QCheck2.Gen.(
    oneof
      [
        string_size ~gen:printable (int_bound 200);
        (* biased junk: PQL/Pyth-looking fragments glued randomly *)
        (let frag =
           oneofl
             [ "select "; "from "; "where "; "Provenance.file"; " as X"; ".input*"; "(";
               ")"; "\""; "'"; "|"; "^"; "def f():"; "\n    "; "return "; "if "; ":";
               "=="; "x = "; "[1, 2]"; "{"; "}"; "import "; "0.5"; "~"; "--"; "#" ]
         in
         map (String.concat "") (list_size (int_bound 12) frag));
      ])

let prop_pql_parser_total =
  QCheck2.Test.make ~name:"pql parser: total on junk" ~count:400 junk_gen (fun input ->
      match Pql.parse input with
      | _ -> true
      | exception Pql.Error _ -> true)

let prop_pyth_parser_total =
  QCheck2.Test.make ~name:"pyth parser: total on junk" ~count:400 junk_gen (fun input ->
      match Pyth_parser.parse input with
      | _ -> true
      | exception (Pyth_parser.Error _ | Pyth_lexer.Error _) -> true)

let prop_sxml_parser_total =
  QCheck2.Test.make ~name:"sxml parser: total on junk" ~count:400 junk_gen (fun input ->
      match Sxml.parse input with _ -> true | exception Sxml.Parse_error _ -> true)

(* --- sxml: print/parse stability on random trees ----------------------------- *)

let gen_xml_tree =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "experiment"; "r"; "x-y" ] in
  let attr_name = oneofl [ "k"; "v"; "stress"; "id" ] in
  (* whitespace-only text nodes are legitimately dropped by the parser,
     so keep generated text visibly non-blank *)
  let text = map (fun s -> "t" ^ s) (string_size ~gen:(char_range ' ' 'z') (int_bound 11)) in
  let attrs = list_size (int_bound 3) (pair attr_name text) in
  (* dedup attribute names: XML forbids duplicates, our printer would
     produce them *)
  let attrs =
    map (fun l -> List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) l) attrs
  in
  fix
    (fun self depth ->
      if depth = 0 then
        map2 (fun tag attrs -> { Sxml.tag; attrs; children = [] }) tag attrs
      else
        map3
          (fun tag attrs children -> { Sxml.tag; attrs; children })
          tag attrs
          (list_size (int_bound 3)
             (oneof
                [
                  map (fun e -> Sxml.Element e) (self (depth - 1));
                  map (fun t -> Sxml.Text t) text;
                ])))
    3

let prop_sxml_roundtrip =
  QCheck2.Test.make ~name:"sxml: print/parse stable" ~count:200 gen_xml_tree (fun tree ->
      let once = Sxml.to_string tree in
      match Sxml.parse once with
      | reparsed -> String.equal once (Sxml.to_string reparsed)
      | exception Sxml.Parse_error _ -> false)

(* --- storage roundtrip: disclose -> WAP log -> Waldo -> query ----------------- *)

let gen_attr = QCheck2.Gen.oneofl [ "PARAMS"; "NAME"; "TYPE"; "FILE_URL"; "CUSTOM_X" ]

let gen_value =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Pvalue.Str s) (string_size ~gen:printable (int_bound 40));
        map (fun i -> Pvalue.Int i) int;
        map (fun b -> Pvalue.Bool b) bool;
      ])

let prop_storage_roundtrip =
  QCheck2.Test.make ~name:"records survive log -> Waldo intact" ~count:40
    QCheck2.Gen.(list_size (int_range 1 25) (pair gen_attr gen_value))
    (fun pairs ->
      let clock = Simdisk.Clock.create () in
      let disk = Simdisk.Disk.create ~clock () in
      let ext3 = Ext3.format disk in
      let ctx = Ctx.create ~machine:1 in
      let lasagna =
        Lasagna.create ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0"
          ~charge:(Simdisk.Clock.advance clock) ()
      in
      let waldo = Waldo.create ~lower:(Ext3.ops ext3) () in
      Waldo.attach waldo lasagna;
      let ep = Lasagna.endpoint lasagna in
      let h = match ep.pass_mkobj ~volume:(Some "vol0") with Ok h -> h | Error _ -> assert false in
      let records = List.map (fun (a, v) -> Record.make a v) pairs in
      (match Dpapi.disclose ep h records with Ok () -> () | Error _ -> assert false);
      ignore (Waldo.finalize waldo lasagna : int);
      let stored = Provdb.records_all (Waldo.db waldo) h.Dpapi.pnode in
      (* every disclosed record is retrievable, in order, value-intact *)
      List.length stored = List.length records
      && List.for_all2
           (fun (r : Record.t) (q : Provdb.quad) ->
             String.equal r.attr q.q_attr && Pvalue.equal r.value q.q_value)
           records stored)

(* --- distributor invariant 4 under random traffic ----------------------------- *)

type dop = Mk | Disclose of int * int | Anchor of int | Sync of int

let gen_dops =
  QCheck2.Gen.(
    list_size (int_range 5 40)
      (oneof
         [
           pure Mk;
           map2 (fun a b -> Disclose (a, b)) (int_bound 9) (int_bound 9);
           map (fun a -> Anchor a) (int_bound 9);
           map (fun a -> Sync a) (int_bound 9);
         ]))

let prop_distributor_invariant =
  QCheck2.Test.make ~name:"distributor: persisted iff anchored or synced" ~count:80 gen_dops
    (fun dops ->
      let ctx = Ctx.create ~machine:1 in
      let sink = Helpers.sink ctx in
      let d = Distributor.create ~ctx ~lower:(Helpers.sink_endpoint sink) ~default_volume:"v" () in
      let ep = Distributor.endpoint d in
      let objs = ref [||] in
      let persisted_expected = Hashtbl.create 16 in
      let get i =
        if Array.length !objs = 0 then None
        else Some !objs.(i mod Array.length !objs)
      in
      List.iter
        (fun op ->
          match op with
          | Mk -> (
              match ep.pass_mkobj ~volume:None with
              | Ok h -> objs := Array.append !objs [| h |]
              | Error _ -> ())
          | Disclose (a, b) -> (
              match (get a, get b) with
              | Some x, Some y when not (Pnode.equal x.Dpapi.pnode y.Dpapi.pnode) ->
                  (* y depends on x; if y is (or becomes) persisted, x is too *)
                  ignore
                    (Dpapi.disclose ep y [ Record.input_of x.Dpapi.pnode 0 ]
                      : (unit, Dpapi.error) result);
                  if Hashtbl.mem persisted_expected (Pnode.to_int y.Dpapi.pnode) then
                    Hashtbl.replace persisted_expected (Pnode.to_int x.Dpapi.pnode) ()
              | _ -> ())
          | Anchor a -> (
              match get a with
              | Some x ->
                  (* a persistent file depends on x: x and its cached
                     ancestry become persistent *)
                  let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
                  ignore
                    (Dpapi.disclose ep f [ Record.input_of x.Dpapi.pnode 0 ]
                      : (unit, Dpapi.error) result);
                  (* mark x and transitively everything x's cached records
                     reference; approximate by marking x only and letting
                     Disclose propagate forward — the check below is
                     one-directional (persisted_expected => flushed) *)
                  Hashtbl.replace persisted_expected (Pnode.to_int x.Dpapi.pnode) ()
              | None -> ())
          | Sync a -> (
              match get a with
              | Some x ->
                  ignore (ep.pass_sync x : (unit, Dpapi.error) result);
                  Hashtbl.replace persisted_expected (Pnode.to_int x.Dpapi.pnode) ()
              | None -> ()))
        dops;
      (* every object we expect persistent must be flushed; conversely any
         object never anchored/synced/referenced-by-persistent must still
         be cached *)
      Array.for_all
        (fun (h : Dpapi.handle) ->
          let flushed = not (Distributor.is_cached_unflushed d h.pnode) in
          if Hashtbl.mem persisted_expected (Pnode.to_int h.pnode) then flushed else true)
        !objs)

(* --- ctx: version/birth invariants ------------------------------------------- *)

let prop_ctx_monotone =
  QCheck2.Test.make ~name:"ctx: versions and births are monotone" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_bound 4))
    (fun freezes ->
      let ctx = Ctx.create ~machine:1 in
      let objs = Array.init 5 (fun _ -> Ctx.fresh ctx) in
      List.for_all
        (fun i ->
          let p = objs.(i) in
          let v0 = Ctx.current_version ctx p in
          let b0 = Ctx.birth ctx p in
          let v1 = Ctx.freeze ctx p in
          let b1 = Ctx.birth ctx p in
          v1 = v0 + 1 && b1 > b0 && Ctx.birth_at ctx p ~version:v0 < b1)
        freezes)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pql_parser_total;
      prop_pyth_parser_total;
      prop_sxml_parser_total;
      prop_sxml_roundtrip;
      prop_storage_roundtrip;
      prop_distributor_invariant;
      prop_ctx_monotone;
    ]

let test_dot_export () =
  let db, _, _, _, out, _ = Test_pql.sample_db () in
  let dot = Provdot.to_dot db in
  check tbool "mentions nodes" true
    (String.length dot > 100
    && String.length (Provdot.to_dot ~roots:[ out ] db) <= String.length dot);
  (* cone export excludes the bystander *)
  let cone = Provdot.to_dot ~roots:[ out ] db in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check tbool "cone has the process" true (contains cone "kepler");
  check tbool "cone excludes bystander" false (contains cone "bystander")

let suite = Alcotest.test_case "provdot export" `Quick test_dot_export :: qcheck_cases
