(* Kernel/syscall-layer tests: descriptor semantics, path resolution
   across mounts, pipes, error paths, and interception bookkeeping. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let ok = Helpers.ok_fs

let sys2 () =
  System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0"; "vol1" ] ()

let test_bad_descriptors () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  (match Kernel.read k ~pid ~fd:42 ~len:10 with
  | Error Vfs.EBADF -> ()
  | _ -> Alcotest.fail "read on bad fd");
  (match Kernel.write k ~pid ~fd:42 ~data:"x" with
  | Error Vfs.EBADF -> ()
  | _ -> Alcotest.fail "write on bad fd");
  (match Kernel.close k ~pid ~fd:42 with
  | Error Vfs.EBADF -> ()
  | _ -> Alcotest.fail "close on bad fd");
  (* descriptors die with the process *)
  let fd = ok (Kernel.open_file k ~pid ~path:"/vol0/f" ~create:true) in
  ok (Kernel.exit k ~pid);
  (match Kernel.write k ~pid ~fd ~data:"x" with
  | Error Vfs.EBADF -> ()
  | _ -> Alcotest.fail "fd survived exit")

let test_open_semantics () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  (match Kernel.open_file k ~pid ~path:"/vol0/absent" ~create:false with
  | Error Vfs.ENOENT -> ()
  | _ -> Alcotest.fail "open without create must fail");
  (match Kernel.open_file k ~pid ~path:"/novol/x" ~create:true with
  | Error Vfs.ENOENT -> ()
  | _ -> Alcotest.fail "unknown volume must fail");
  let fd = ok (Kernel.open_file k ~pid ~path:"/vol0/deep/nested/file" ~create:true) in
  ok (Kernel.write k ~pid ~fd ~data:"created with parents");
  ok (Kernel.close k ~pid ~fd);
  let st = ok (Kernel.stat k ~path:"/vol0/deep/nested/file") in
  check tint "size" 20 st.Vfs.st_size

let test_seek_and_offsets () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  let fd = ok (Kernel.open_file k ~pid ~path:"/vol0/f" ~create:true) in
  ok (Kernel.write k ~pid ~fd ~data:"0123456789");
  ok (Kernel.seek k ~pid ~fd ~off:3);
  check tstr "read from seek point" "3456" (ok (Kernel.read k ~pid ~fd ~len:4));
  (* the offset advanced past the read *)
  check tstr "offset advanced" "789" (ok (Kernel.read k ~pid ~fd ~len:10));
  ok (Kernel.seek k ~pid ~fd ~off:8);
  ok (Kernel.write k ~pid ~fd ~data:"XY");
  ok (Kernel.seek k ~pid ~fd ~off:0);
  check tstr "overwrite at offset" "01234567XY" (ok (Kernel.read k ~pid ~fd ~len:20))

let test_two_volumes_and_rename () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  let fd = ok (Kernel.open_file k ~pid ~path:"/vol0/a" ~create:true) in
  ok (Kernel.write k ~pid ~fd ~data:"on vol0");
  ok (Kernel.close k ~pid ~fd);
  (* cross-volume rename is rejected like EXDEV-ish (we use EINVAL) *)
  (match Kernel.rename k ~pid ~src:"/vol0/a" ~dst:"/vol1/a" with
  | Error Vfs.EINVAL -> ()
  | _ -> Alcotest.fail "cross-volume rename must fail");
  ok (Kernel.rename k ~pid ~src:"/vol0/a" ~dst:"/vol0/b");
  check tbool "renamed within volume" true (Result.is_ok (Kernel.stat k ~path:"/vol0/b"));
  (* both volumes get independent provenance stores *)
  let fd1 = ok (Kernel.open_file k ~pid ~path:"/vol1/c" ~create:true) in
  ok (Kernel.write k ~pid ~fd:fd1 ~data:"on vol1");
  ok (Kernel.close k ~pid ~fd:fd1);
  ignore (System.drain sys : int);
  let db0 = Option.get (System.waldo_db sys "vol0") in
  let db1 = Option.get (System.waldo_db sys "vol1") in
  check tbool "vol0 db has a" true (Provdb.find_by_name db0 "a" <> []);
  check tbool "vol1 db has c" true (Provdb.find_by_name db1 "c" <> []);
  check tbool "vol1 db lacks a" true (Provdb.find_by_name db1 "a" = [])

let test_readdir_and_listing () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  List.iter
    (fun name ->
      let fd = ok (Kernel.open_file k ~pid ~path:("/vol0/dir/" ^ name) ~create:true) in
      ok (Kernel.write k ~pid ~fd ~data:name);
      ok (Kernel.close k ~pid ~fd))
    [ "zeta"; "alpha"; "mid" ];
  check (Alcotest.list tstr) "sorted listing" [ "alpha"; "mid"; "zeta" ]
    (ok (Kernel.readdir k ~path:"/vol0/dir"))

let test_mmap_via_kernel () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  let fd = ok (Kernel.open_file k ~pid ~path:"/vol0/lib.so" ~create:true) in
  ok (Kernel.write k ~pid ~fd ~data:"shared-object");
  ok (Kernel.close k ~pid ~fd);
  let user = Kernel.fork k ~parent:Kernel.init_pid in
  let fd = ok (Kernel.open_file k ~pid:user ~path:"/vol0/lib.so" ~create:false) in
  ok (Kernel.mmap k ~pid:user ~fd ~writable:false);
  let fd2 = ok (Kernel.open_file k ~pid:user ~path:"/vol0/out" ~create:true) in
  ok (Kernel.write k ~pid:user ~fd:fd2 ~data:"output");
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  let names =
    Helpers.pql_names db {|select A from Provenance.file as O O.input* as A where O.name = "out"|}
  in
  check tbool "mmapped library in ancestry" true (List.mem "lib.so" names)

let test_empty_pipe_read () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  let pipe_id = Kernel.pipe k ~pid in
  check tstr "empty pipe reads empty" "" (ok (Kernel.pipe_read k ~pid ~pipe_id));
  (match Kernel.pipe_read k ~pid ~pipe_id:999 with
  | Error Vfs.EBADF -> ()
  | _ -> Alcotest.fail "unknown pipe must fail")

let test_syscall_accounting () =
  let sys = sys2 () in
  let k = System.kernel sys in
  let before = Kernel.syscall_count k in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  let fd = ok (Kernel.open_file k ~pid ~path:"/vol0/x" ~create:true) in
  ok (Kernel.write k ~pid ~fd ~data:"1");
  ok (Kernel.close k ~pid ~fd);
  check tint "four syscalls counted" (before + 4) (Kernel.syscall_count k)

let suite =
  [
    Alcotest.test_case "bad descriptors" `Quick test_bad_descriptors;
    Alcotest.test_case "open semantics" `Quick test_open_semantics;
    Alcotest.test_case "seek and offsets" `Quick test_seek_and_offsets;
    Alcotest.test_case "two volumes + rename rules" `Quick test_two_volumes_and_rename;
    Alcotest.test_case "readdir listing" `Quick test_readdir_and_listing;
    Alcotest.test_case "mmap via kernel" `Quick test_mmap_via_kernel;
    Alcotest.test_case "empty pipe read" `Quick test_empty_pipe_read;
    Alcotest.test_case "syscall accounting" `Quick test_syscall_accounting;
  ]
