(* Distributor tests (paper §5.5 / DESIGN.md invariant 4): caching of
   virtual-object provenance, anchoring through persistent descendants,
   recursive ancestor flushing, pass_sync, revival, and routing of
   multi-volume bundles. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

(* a sink that records which (volume, target, records) tuples reach storage *)
let setup () =
  let ctx = Ctx.create ~machine:1 in
  let s = Helpers.sink ctx in
  let d = Distributor.create ~ctx ~lower:(Helpers.sink_endpoint s) ~default_volume:"vol0" () in
  (ctx, s, d, Distributor.endpoint d)

let file ctx volume = Dpapi.handle ~volume (Ctx.fresh ctx)

let test_virtual_records_cached () =
  let _ctx, s, d, ep = setup () in
  let obj = Helpers.ok (ep.pass_mkobj ~volume:None) in
  Helpers.ok (Dpapi.disclose ep obj [ Record.typ "PROCESS" ]);
  check tint "nothing reached storage" 0 (List.length s.writes);
  check tbool "cached instead" true (Distributor.is_cached_unflushed d obj.pnode);
  check tint "cache counts the records" 1 (Distributor.stats d).cached_records

let test_anchoring_flushes () =
  let ctx, s, d, ep = setup () in
  let obj = Helpers.ok (ep.pass_mkobj ~volume:None) in
  Helpers.ok (Dpapi.disclose ep obj [ Record.typ "PROCESS"; Record.name "worker" ]);
  (* a persistent file starts depending on the virtual object *)
  let f = file ctx "vol0" in
  Helpers.ok (Dpapi.disclose ep f [ Record.input (Pvalue.xref obj.pnode 0) ]);
  check tbool "object flushed" false (Distributor.is_cached_unflushed d obj.pnode);
  (* the flushed records landed with the object's handle bound to vol0 *)
  let flushed =
    List.exists
      (fun ((target : Dpapi.handle), (r : Record.t)) ->
        Pnode.equal target.pnode obj.pnode && target.volume = Some "vol0"
        && r.attr = Record.Attr.name)
      (Helpers.all_records s)
  in
  check tbool "cached records written to the anchor volume" true flushed;
  check tint "one flush" 1 (Distributor.stats d).flushes

let test_recursive_ancestor_flush () =
  let ctx, _s, d, ep = setup () in
  (* pipe <- p1; p2 <- pipe; file <- p2 : anchoring file must flush p2,
     the pipe, and p1, transitively *)
  let p1 = Helpers.ok (ep.pass_mkobj ~volume:None) in
  let pipe = Helpers.ok (ep.pass_mkobj ~volume:None) in
  let p2 = Helpers.ok (ep.pass_mkobj ~volume:None) in
  Helpers.ok (Dpapi.disclose ep pipe [ Record.input (Pvalue.xref p1.pnode 0) ]);
  Helpers.ok (Dpapi.disclose ep p2 [ Record.input (Pvalue.xref pipe.pnode 0) ]);
  let f = file ctx "vol0" in
  Helpers.ok (Dpapi.disclose ep f [ Record.input (Pvalue.xref p2.pnode 0) ]);
  check tbool "p2 flushed" false (Distributor.is_cached_unflushed d p2.pnode);
  check tbool "pipe flushed" false (Distributor.is_cached_unflushed d pipe.pnode);
  check tbool "p1 flushed" false (Distributor.is_cached_unflushed d p1.pnode)

let test_sync_uses_hint_then_default () =
  let _ctx, s, _d, ep = setup () in
  let hinted = Helpers.ok (ep.pass_mkobj ~volume:(Some "volX")) in
  let plain = Helpers.ok (ep.pass_mkobj ~volume:None) in
  Helpers.ok (Dpapi.disclose ep hinted [ Record.name "hinted" ]);
  Helpers.ok (Dpapi.disclose ep plain [ Record.name "plain" ]);
  Helpers.ok (ep.pass_sync hinted);
  Helpers.ok (ep.pass_sync plain);
  let volume_of pnode =
    List.find_map
      (fun ((target : Dpapi.handle), (_ : Record.t)) ->
        if Pnode.equal target.pnode pnode then target.volume else None)
      (Helpers.all_records s)
  in
  check (Alcotest.option Alcotest.string) "hint respected" (Some "volX") (volume_of hinted.pnode);
  check (Alcotest.option Alcotest.string) "default volume used" (Some "vol0")
    (volume_of plain.pnode)

let test_post_flush_records_forwarded () =
  let ctx, s, _d, ep = setup () in
  let obj = Helpers.ok (ep.pass_mkobj ~volume:None) in
  Helpers.ok (ep.pass_sync obj);
  (* records after the flush go straight to the assigned volume *)
  let before = List.length (Helpers.all_records s) in
  Helpers.ok (Dpapi.disclose ep obj [ Record.name "late-arrival" ]);
  check tbool "late record forwarded" true (List.length (Helpers.all_records s) > before);
  ignore (ctx : Ctx.t)

let test_revive_cached_object () =
  let _ctx, _s, _d, ep = setup () in
  let obj = Helpers.ok (ep.pass_mkobj ~volume:None) in
  let again = Helpers.ok (ep.pass_reviveobj obj.pnode 0) in
  check tbool "same pnode" true (Pnode.equal obj.pnode again.pnode);
  (match ep.pass_reviveobj obj.pnode 99 with
  | Error Dpapi.Estale -> ()
  | _ -> Alcotest.fail "future version must be stale")

let test_virtual_read_returns_identity () =
  let ctx, _s, _d, ep = setup () in
  let obj = Helpers.ok (ep.pass_mkobj ~volume:None) in
  ignore (Helpers.ok (ep.pass_freeze obj) : int);
  let r = Helpers.ok (ep.pass_read obj ~off:0 ~len:100) in
  check tint "virtual read: empty data" 0 (String.length r.Dpapi.data);
  check tint "virtual read: current version" (Ctx.current_version ctx obj.pnode)
    r.Dpapi.r_version

let test_mixed_bundle_routing () =
  (* a bundle touching two persistent volumes and a virtual object at
     once: each entry must land on its own volume *)
  let ctx, s, _d, ep = setup () in
  let fa = file ctx "volA" and fb = file ctx "volB" in
  let obj = Helpers.ok (ep.pass_mkobj ~volume:None) in
  let bundle =
    [
      Dpapi.entry fa [ Record.name "on-a" ];
      Dpapi.entry fb [ Record.name "on-b" ];
      Dpapi.entry obj [ Record.name "virtual" ];
    ]
  in
  let _v = Helpers.ok (ep.pass_write fa ~off:0 ~data:(Some "payload") bundle) in
  let landed name =
    List.find_map
      (fun ((target : Dpapi.handle), (r : Record.t)) ->
        if r.value = Pvalue.Str name then Some target.volume else None)
      (Helpers.all_records s)
  in
  check (Alcotest.option (Alcotest.option Alcotest.string)) "entry a on volA"
    (Some (Some "volA")) (landed "on-a");
  check (Alcotest.option (Alcotest.option Alcotest.string)) "entry b on volB"
    (Some (Some "volB")) (landed "on-b");
  check (Alcotest.option (Alcotest.option Alcotest.string)) "virtual entry cached"
    None (landed "virtual")

let suite =
  [
    Alcotest.test_case "virtual records are cached" `Quick test_virtual_records_cached;
    Alcotest.test_case "anchoring flushes the cache" `Quick test_anchoring_flushes;
    Alcotest.test_case "ancestors flush recursively" `Quick test_recursive_ancestor_flush;
    Alcotest.test_case "sync: volume hint then default" `Quick test_sync_uses_hint_then_default;
    Alcotest.test_case "post-flush records forwarded" `Quick test_post_flush_records_forwarded;
    Alcotest.test_case "revive cached object" `Quick test_revive_cached_object;
    Alcotest.test_case "virtual read returns identity" `Quick test_virtual_read_returns_identity;
    Alcotest.test_case "mixed bundle routes per volume" `Quick test_mixed_bundle_routing;
  ]
