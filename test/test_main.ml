let () =
  Alcotest.run "pass"
    [
      ("core-types", Test_core_types.suite);
      ("analyzer", Test_analyzer.suite);
      ("storage", Test_storage.suite);
      ("pql", Test_pql.suite);
      ("simos", Test_simos.suite);
      ("kernel", Test_kernel.suite);
      ("panfs", Test_panfs.suite);
      ("kepler", Test_kepler.suite);
      ("palinks", Test_palinks.suite);
      ("pyth", Test_pyth.suite);
      ("pyth-lang", Test_pyth_lang.suite);
      ("waldo", Test_waldo.suite);
      ("distributor", Test_distributor.suite);
      ("observer", Test_observer.suite);
      ("vfs-wire", Test_vfs_wire.suite);
      ("layers", Test_layers.suite);
      ("props", Test_props.suite);
      ("provdiff", Test_provdiff.suite);
      ("telemetry", Test_telemetry.suite);
      ("trace", Test_trace.suite);
      ("pvcheck", Test_pvcheck.suite);
      ("passarch", Test_passarch.suite);
      ("monitor", Test_monitor.suite);
    ]
