(* pvtrace tests: span nesting and parentage, the bounded flight-recorder
   ring, zero-cost disabled behavior, exception unwinding, export filters,
   and byte-determinism of the Chrome artifact across identical runs. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

(* A tracer driven by a hand-cranked clock. *)
let tracer ?capacity () =
  let clock = ref 0 in
  let t = Pvtrace.create ?capacity ~now:(fun () -> !clock) () in
  (t, clock)

let by_name t =
  List.map (fun sp -> (sp.Pvtrace.sp_layer ^ "." ^ sp.Pvtrace.sp_op, sp)) (Pvtrace.spans t)

(* --- nesting and parentage ---------------------------------------------------- *)

let test_nesting () =
  let t, clock = tracer () in
  Pvtrace.span t ~layer:"simos" ~op:"syscall.write" (fun () ->
      clock := !clock + 10;
      Pvtrace.span t ~layer:"observer" ~op:"pass_write" (fun () ->
          clock := !clock + 5;
          Pvtrace.event t ~layer:"analyzer" ~op:"dedup" ~outcome:"deduped" ()));
  let spans = by_name t in
  check tint "three spans" 3 (List.length spans);
  (* completion order: innermost first, except events record immediately *)
  let dedup = List.assoc "analyzer.dedup" spans in
  let obs = List.assoc "observer.pass_write" spans in
  let sys = List.assoc "simos.syscall.write" spans in
  check tint "root has no parent" 0 sys.Pvtrace.sp_parent;
  check tint "child parents on root" sys.Pvtrace.sp_id obs.Pvtrace.sp_parent;
  check tint "event parents on innermost" obs.Pvtrace.sp_id dedup.Pvtrace.sp_parent;
  check tbool "one trace" true
    (sys.Pvtrace.sp_trace = obs.Pvtrace.sp_trace
    && obs.Pvtrace.sp_trace = dedup.Pvtrace.sp_trace);
  check tint "root duration spans children" 15 sys.Pvtrace.sp_dur_ns;
  check tint "child duration" 5 obs.Pvtrace.sp_dur_ns;
  check tint "event is instantaneous" 0 dedup.Pvtrace.sp_dur_ns

let test_fresh_traces_per_root () =
  let t, _ = tracer () in
  Pvtrace.span t ~layer:"simos" ~op:"syscall.read" (fun () -> ());
  Pvtrace.span t ~layer:"simos" ~op:"syscall.write" (fun () -> ());
  match Pvtrace.spans t with
  | [ a; b ] ->
      check tbool "distinct trace ids" true (a.Pvtrace.sp_trace <> b.Pvtrace.sp_trace);
      check tint "both are roots" 0 (a.Pvtrace.sp_parent + b.Pvtrace.sp_parent)
  | _ -> Alcotest.fail "expected two spans"

let test_outcomes () =
  let t, _ = tracer () in
  Pvtrace.span t ~layer:"distributor" ~op:"flush" (fun () ->
      Pvtrace.set_outcome t "flushed");
  Pvtrace.span t ~layer:"analyzer" ~op:"pass_write" (fun () -> ());
  (match by_name t with
  | [ ("distributor.flush", f); ("analyzer.pass_write", w) ] ->
      check tstr "set_outcome overrides" "flushed" f.Pvtrace.sp_outcome;
      check tstr "default outcome" "ok" w.Pvtrace.sp_outcome
  | _ -> Alcotest.fail "expected two spans");
  (* set_outcome at top level is a no-op, not a crash *)
  Pvtrace.set_outcome t "ignored"

let test_exception_unwinding () =
  let t, _ = tracer () in
  (try
     Pvtrace.span t ~layer:"simos" ~op:"syscall.open" (fun () ->
         Pvtrace.span t ~layer:"observer" ~op:"pass_write" (fun () ->
             failwith "boom"))
   with Failure _ -> ());
  check tint "both spans recorded despite raise" 2 (List.length (Pvtrace.spans t));
  (* the stack fully unwound: the next span roots a fresh trace *)
  Pvtrace.span t ~layer:"simos" ~op:"syscall.close" (fun () -> ());
  let close = List.assoc "simos.syscall.close" (by_name t) in
  check tint "stack unwound to top level" 0 close.Pvtrace.sp_parent

let test_remote_parent () =
  let t, _ = tracer () in
  Pvtrace.with_remote_parent t ~trace:7 ~span:41 (fun () ->
      Pvtrace.span t ~layer:"panfs.server" ~op:"rpc.write" (fun () -> ()));
  (match Pvtrace.spans t with
  | [ sp ] ->
      check tint "adopts the wire trace id" 7 sp.Pvtrace.sp_trace;
      check tint "parents on the wire span" 41 sp.Pvtrace.sp_parent
  | l -> Alcotest.failf "expected only the server span, got %d" (List.length l));
  (* an untraced sender (trace 0) leaves ambient context alone *)
  Pvtrace.with_remote_parent t ~trace:0 ~span:0 (fun () ->
      Pvtrace.span t ~layer:"panfs.server" ~op:"rpc.read" (fun () -> ()));
  let rd = List.assoc "panfs.server.rpc.read" (by_name t) in
  check tbool "trace 0 mints a local trace" true (rd.Pvtrace.sp_trace <> 0);
  check tint "and stays a root" 0 rd.Pvtrace.sp_parent

(* --- the flight-recorder ring -------------------------------------------------- *)

let test_ring_bounds () =
  let t, _ = tracer ~capacity:4 () in
  for i = 1 to 10 do
    Pvtrace.event t ~layer:"x" ~op:(Printf.sprintf "e%02d" i) ~outcome:"ok" ()
  done;
  check tint "ring holds capacity" 4 (Pvtrace.recorded t);
  check tint "lifetime counts everything" 10 (Pvtrace.total t);
  check tint "dropped = total - recorded" 6 (Pvtrace.dropped t);
  check tbool "oldest evicted first" true
    (List.map (fun sp -> sp.Pvtrace.sp_op) (Pvtrace.spans t)
    = [ "e07"; "e08"; "e09"; "e10" ])

let test_reset () =
  let t, _ = tracer () in
  Pvtrace.span t ~layer:"a" ~op:"b" (fun () -> ());
  let id_before =
    match Pvtrace.spans t with [ sp ] -> sp.Pvtrace.sp_id | _ -> assert false
  in
  Pvtrace.reset t;
  check tint "ring emptied" 0 (Pvtrace.recorded t);
  check tint "lifetime cleared" 0 (Pvtrace.total t);
  Pvtrace.span t ~layer:"a" ~op:"c" (fun () -> ());
  let id_after =
    match Pvtrace.spans t with [ sp ] -> sp.Pvtrace.sp_id | _ -> assert false
  in
  check tbool "ids keep counting across reset" true (id_after > id_before)

(* --- disabled tracer ----------------------------------------------------------- *)

let test_disabled_zero_cost () =
  let t = Pvtrace.disabled in
  check tbool "not enabled" false (Pvtrace.enabled t);
  let r = Pvtrace.span t ~layer:"a" ~op:"b" (fun () -> 42) in
  check tint "span passes result through" 42 r;
  Pvtrace.event t ~layer:"a" ~op:"b" ~outcome:"x" ();
  Pvtrace.set_outcome t "x";
  let r' = Pvtrace.with_remote_parent t ~trace:9 ~span:9 (fun () -> 7) in
  check tint "remote parent passes through" 7 r';
  check tbool "no ambient context" true (Pvtrace.current t = None);
  check tint "records nothing" 0 (Pvtrace.total t);
  check tbool "no spans" true (Pvtrace.spans t = []);
  check tstr "empty chrome export" "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
    (Pvtrace.to_chrome t)

(* --- export -------------------------------------------------------------------- *)

let test_current_context () =
  let t, _ = tracer () in
  check tbool "none at top level" true (Pvtrace.current t = None);
  Pvtrace.span t ~layer:"panfs.client" ~op:"rpc.write" (fun () ->
      match Pvtrace.current t with
      | None -> Alcotest.fail "no ambient context inside a span"
      | Some (trace, span) ->
          check tbool "trace minted" true (trace > 0);
          check tbool "span id live" true (span > 0))

let test_export_filter () =
  let t, _ = tracer () in
  Pvtrace.span t ~layer:"simos" ~op:"syscall.write" (fun () ->
      Pvtrace.event t ~layer:"panfs.client" ~op:"rpc.write" ~outcome:"ok" ();
      Pvtrace.event t ~layer:"panfs.server" ~op:"rpc.write" ~outcome:"ok" ());
  let names filter =
    match Pvtrace.to_json ?filter t with
    | Telemetry.Json.Obj fields -> (
        match List.assoc "spans" fields with
        | Telemetry.Json.List spans ->
            List.map
              (fun sp ->
                match Telemetry.Json.member "layer" sp with
                | Some (Telemetry.Json.Str l) -> l
                | _ -> assert false)
              spans
        | _ -> assert false)
    | _ -> assert false
  in
  check tint "no filter keeps all" 3 (List.length (names None));
  check tbool "layer filter" true (names (Some "simos") = [ "simos" ]);
  check tbool "dotted prefix matches both ends" true
    (names (Some "panfs") = [ "panfs.client"; "panfs.server" ]);
  check tbool "full name filter" true (names (Some "panfs.server.rpc") = [ "panfs.server" ]);
  check tbool "non-boundary prefix excluded" true (names (Some "pan") = [])

let test_export_determinism () =
  let run () =
    let t, clock = tracer () in
    for i = 1 to 50 do
      Pvtrace.span t ~layer:"simos" ~op:"syscall.write" (fun () ->
          clock := !clock + i;
          Pvtrace.event t ~layer:"analyzer" ~op:"dedup" ~pnode:i ~outcome:"deduped" ())
    done;
    Pvtrace.to_chrome t
  in
  check tstr "byte-identical across identical runs" (run ()) (run ());
  (* and the artifact is valid JSON whose parents resolve *)
  let json = Telemetry.Json.of_string (run ()) in
  match Telemetry.Json.member "traceEvents" json with
  | Some (Telemetry.Json.List events) ->
      check tint "all events exported" 100 (List.length events);
      let arg name ev =
        match Telemetry.Json.member "args" ev with
        | Some args -> (
            match Telemetry.Json.member name args with
            | Some (Telemetry.Json.Int i) -> i
            | _ -> assert false)
        | None -> assert false
      in
      let ids = List.map (arg "span") events in
      List.iter
        (fun ev ->
          let p = arg "parent" ev in
          check tbool "parent resolves" true (p = 0 || List.mem p ids))
        events
  | _ -> Alcotest.fail "traceEvents missing"

(* --- through the real pipeline ------------------------------------------------- *)

let test_pipeline_spans () =
  let t = Pvtrace.create () in
  let sys = System.create ~tracer:t ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  let fd =
    match Kernel.open_file k ~pid ~path:"/vol0/f" ~create:true with
    | Ok fd -> fd
    | Error e -> Alcotest.failf "open failed: %s" (Vfs.errno_to_string e)
  in
  (match Kernel.write k ~pid ~fd ~data:"hello" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Vfs.errno_to_string e));
  (match Kernel.close k ~pid ~fd with
  | Ok () -> ()
  | Error e -> Alcotest.failf "close failed: %s" (Vfs.errno_to_string e));
  ignore (System.drain sys : int);
  let layers =
    List.sort_uniq String.compare
      (List.map (fun sp -> sp.Pvtrace.sp_layer) (Pvtrace.spans t))
  in
  List.iter
    (fun l -> check tbool (l ^ " layer appears") true (List.mem l layers))
    [ "simos"; "observer"; "analyzer"; "distributor"; "lasagna"; "waldo" ];
  (* every non-root parent resolves within the recording *)
  let ids = List.map (fun sp -> sp.Pvtrace.sp_id) (Pvtrace.spans t) in
  List.iter
    (fun sp ->
      check tbool "parent resolves" true
        (sp.Pvtrace.sp_parent = 0 || List.mem sp.Pvtrace.sp_parent ids))
    (Pvtrace.spans t);
  (* disabled tracer on the same workload records nothing *)
  let sys' = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let k' = System.kernel sys' in
  let pid' = Kernel.fork k' ~parent:Kernel.init_pid in
  (match Kernel.open_file k' ~pid:pid' ~path:"/vol0/f" ~create:true with
  | Ok fd ->
      ignore (Kernel.write k' ~pid:pid' ~fd ~data:"hello" : (unit, Vfs.errno) result);
      ignore (Kernel.close k' ~pid:pid' ~fd : (unit, Vfs.errno) result)
  | Error _ -> ());
  ignore (System.drain sys' : int);
  check tint "default tracer records nothing" 0 (Pvtrace.total Pvtrace.disabled)

let suite =
  [
    Alcotest.test_case "nesting and parentage" `Quick test_nesting;
    Alcotest.test_case "fresh trace per root" `Quick test_fresh_traces_per_root;
    Alcotest.test_case "outcomes" `Quick test_outcomes;
    Alcotest.test_case "exception unwinding" `Quick test_exception_unwinding;
    Alcotest.test_case "remote parent" `Quick test_remote_parent;
    Alcotest.test_case "ring bounds" `Quick test_ring_bounds;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "disabled is zero-cost" `Quick test_disabled_zero_cost;
    Alcotest.test_case "current context" `Quick test_current_context;
    Alcotest.test_case "export filter" `Quick test_export_filter;
    Alcotest.test_case "export determinism" `Quick test_export_determinism;
    Alcotest.test_case "pipeline spans" `Quick test_pipeline_spans;
  ]
