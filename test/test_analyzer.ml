(* Tests of the analyzer: duplicate elimination, cycle avoidance, freeze
   semantics; plus the PASSv1 global cycle detector baseline; plus the
   qcheck property that random workloads always yield an acyclic graph
   under both algorithms. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let setup () =
  let ctx = Ctx.create ~machine:1 in
  let s = Helpers.sink ctx in
  let an = Analyzer.create ~ctx ~lower:(Helpers.sink_endpoint s) () in
  (ctx, s, an, Analyzer.endpoint an)

let file ctx = Dpapi.handle ~volume:"v" (Ctx.fresh ctx)
let obj ctx = Dpapi.handle (Ctx.fresh ctx)

let test_dedup_drops_repeats () =
  let ctx, s, an, ep = setup () in
  (* file first, process second: the edge points at an older object, so no
     freeze muddies the count *)
  let a = file ctx in
  let p = obj ctx in
  let r = Record.input_of a.pnode 0 in
  for _ = 1 to 10 do
    Helpers.ok (Dpapi.disclose ep p [ r ])
  done;
  let stats = Analyzer.stats an in
  check tint "only one record reaches storage" 1 (List.length (Helpers.all_records s));
  check tint "nine duplicates dropped" 9 stats.duplicates_dropped;
  check tint "nine writes elided entirely" 9 stats.writes_elided

let test_dedup_per_version () =
  let ctx, s, _an, ep = setup () in
  let p = obj ctx and a = file ctx in
  let r = Record.input_of a.pnode 0 in
  Helpers.ok (Dpapi.disclose ep p [ r ]);
  ignore (Helpers.ok (ep.pass_freeze p) : int);
  Helpers.ok (Dpapi.disclose ep p [ r ]);
  (* the same record is fresh again in the new version *)
  let inputs =
    List.filter (fun (_, (r : Record.t)) -> r.attr = Record.Attr.input) (Helpers.all_records s)
  in
  (* p->a twice (once per version), plus the freeze's version edge *)
  check tbool "record re-admitted after freeze" true (List.length inputs >= 3)

let test_dedup_disabled () =
  let ctx = Ctx.create ~machine:1 in
  let s = Helpers.sink ctx in
  let an = Analyzer.create ~dedup:false ~ctx ~lower:(Helpers.sink_endpoint s) () in
  let ep = Analyzer.endpoint an in
  let a = file ctx in
  let p = obj ctx in
  for _ = 1 to 5 do
    Helpers.ok (Dpapi.disclose ep p [ Record.input_of a.pnode 0 ])
  done;
  check tint "all records pass through" 5 (List.length (Helpers.all_records s))

let test_identity_records_not_cycle_checked () =
  let ctx, _s, an, ep = setup () in
  let p = obj ctx in
  Helpers.ok (Dpapi.disclose ep p [ Record.name "foo"; Record.typ "PROCESS" ]);
  check tint "no freezes for identity records" 0 (Analyzer.stats an).freezes

let test_self_cycle_forces_freeze () =
  let ctx, _s, an, ep = setup () in
  let a = file ctx in
  (* a depends on its own current version: must freeze *)
  Helpers.ok (Dpapi.disclose ep a [ Record.input_of a.pnode (Ctx.current_version ctx a.pnode) ]);
  check tint "freeze happened" 1 (Analyzer.stats an).freezes;
  check tint "version bumped" 1 (Ctx.current_version ctx a.pnode)

let test_read_write_cycle_avoided () =
  let ctx, _s, _an, ep = setup () in
  (* Classic 2-cycle: P reads A (P -> A), then P writes A (A -> P).
     Without intervention A.v0 -> P.v0 -> A.v0 would be cyclic. *)
  let p = obj ctx and a = file ctx in
  Helpers.ok (Dpapi.disclose ep p [ Record.input_of a.pnode (Ctx.current_version ctx a.pnode) ]);
  Helpers.ok (Dpapi.disclose ep a [ Record.input_of p.pnode (Ctx.current_version ctx p.pnode) ]);
  (* the write must land in a *newer* version of A than the one P read *)
  check tbool "A was frozen" true (Ctx.current_version ctx a.pnode > 0)

let test_closed_version_edge_allowed () =
  let ctx, _s, an, ep = setup () in
  let b = file ctx in
  ignore (Helpers.ok (ep.pass_freeze b) : int);
  let a = file ctx in
  (* b's version 0 is closed and older than a's current: no freeze of a *)
  let freezes_before = (Analyzer.stats an).freezes in
  Helpers.ok (Dpapi.disclose ep a [ Record.input_of b.pnode 0 ]);
  check tint "no extra freeze" freezes_before (Analyzer.stats an).freezes

let test_younger_childless_target_adopted () =
  (* reading a younger object with no dependencies of its own does NOT
     freeze the reader: the target's effective birth is lowered instead
     (a long-lived process reading freshly created files stays cheap) *)
  let ctx, _s, an, ep = setup () in
  let p = obj ctx in
  let a = file ctx in
  Helpers.ok (Dpapi.disclose ep p [ Record.input_of a.pnode 0 ]);
  check tint "no freeze" 0 (Analyzer.stats an).freezes;
  check tint "reader version unchanged" 0 (Ctx.current_version ctx p.pnode)

let test_younger_target_with_deps_freezes () =
  (* but once the younger target HAS dependencies, the source must be
     frozen: lowering its birth is no longer sound *)
  let ctx, _s, an, ep = setup () in
  let p = obj ctx in
  let q = obj ctx in
  let a = file ctx in
  (* a gains a dependency (a -> q), so a@0 now has outgoing edges *)
  Helpers.ok (Dpapi.disclose ep a [ Record.input_of q.pnode 0 ]);
  Helpers.ok (Dpapi.disclose ep p [ Record.input_of a.pnode 0 ]);
  check tint "source frozen" 1 (Analyzer.stats an).freezes;
  check tint "source version bumped" 1 (Ctx.current_version ctx p.pnode)

let test_dedup_capacity_epoch () =
  let ctx = Ctx.create ~machine:1 in
  let s = Helpers.sink ctx in
  let an = Analyzer.create ~dedup_capacity:8 ~ctx ~lower:(Helpers.sink_endpoint s) () in
  let ep = Analyzer.endpoint an in
  let a = file ctx in
  let p = obj ctx in
  (* 20 distinct records blow through the 8-entry table *)
  for i = 1 to 20 do
    Helpers.ok (Dpapi.disclose ep p [ Record.make "PARAMS" (Pvalue.Str (string_of_int i)) ])
  done;
  check tbool "epoch evictions happened" true ((Analyzer.stats an).dedup_evictions >= 1);
  (* correctness preserved: a fresh record still passes, a duplicate in the
     current epoch is still dropped *)
  Helpers.ok (Dpapi.disclose ep p [ Record.input_of a.pnode 0 ]);
  let before = (Analyzer.stats an).duplicates_dropped in
  Helpers.ok (Dpapi.disclose ep p [ Record.input_of a.pnode 0 ]);
  check tbool "duplicate in current epoch dropped" true
    ((Analyzer.stats an).duplicates_dropped > before)

(* Drive both the analyzer and the PASSv1 global detector with the same
   random stream of read/write events and verify both end acyclic.  Uses
   the workloads' seeded LCG so the stream is identical on every OCaml
   version (Stdlib.Random changed algorithms in 5.0). *)
let random_events n seed =
  let st = Wk.rng seed in
  List.init n (fun _ ->
      let is_read = Wk.rand st 2 = 1 in
      let p = Wk.rand st 5 in
      let f = Wk.rand st 5 in
      (is_read, p, f))

let prop_analyzer_acyclic =
  QCheck2.Test.make ~name:"analyzer: random workloads stay acyclic" ~count:60
    QCheck2.Gen.(pair (int_bound 1000) (int_range 10 120))
    (fun (seed, n) ->
      let ctx = Ctx.create ~machine:1 in
      let s = Helpers.sink ctx in
      let an = Analyzer.create ~ctx ~lower:(Helpers.sink_endpoint s) () in
      let ep = Analyzer.endpoint an in
      let procs = Array.init 5 (fun _ -> Dpapi.handle (Ctx.fresh ctx)) in
      let files = Array.init 5 (fun _ -> Dpapi.handle ~volume:"v" (Ctx.fresh ctx)) in
      List.iter
        (fun (is_read, pi, fi) ->
          let p = procs.(pi) and f = files.(fi) in
          if is_read then
            (* process reads file *)
            ignore
              (Dpapi.disclose ep p
                 [ Record.input_of f.pnode (Ctx.current_version ctx f.pnode) ]
                : (unit, Dpapi.error) result)
          else
            ignore
              (Dpapi.disclose ep f
                 [ Record.input_of p.pnode (Ctx.current_version ctx p.pnode) ]
                : (unit, Dpapi.error) result))
        (random_events n seed);
      (* Reconstruct record versions exactly the way Waldo does (FREEZE
         records advance the version), then DFS for cycles. *)
      let cur = Hashtbl.create 16 in
      let version_of p = Option.value (Hashtbl.find_opt cur p) ~default:0 in
      let edges = ref [] in
      List.iter
        (fun ((target : Dpapi.handle), (r : Record.t)) ->
          (match r.value with
          | Pvalue.Int v when r.attr = Record.Attr.freeze -> Hashtbl.replace cur target.pnode v
          | _ -> ());
          match Record.xref_of r with
          | Some x when Record.is_ancestry r ->
              edges := ((target.pnode, version_of target.pnode), (x.pnode, x.version)) :: !edges
          | _ -> ())
        (List.concat_map
           (fun (_, _, _, bundle) ->
             List.concat_map
               (fun (e : Dpapi.bundle_entry) -> List.map (fun r -> (e.target, r)) e.records)
               bundle)
           (List.rev s.writes));
      (* DFS cycle check *)
      let adj = Hashtbl.create 64 in
      List.iter
        (fun (a, b) ->
          let l = try Hashtbl.find adj a with Not_found -> [] in
          Hashtbl.replace adj a (b :: l))
        !edges;
      let color = Hashtbl.create 64 in
      let rec dfs v =
        match Hashtbl.find_opt color v with
        | Some 1 -> false
        | Some _ -> true
        | None ->
            Hashtbl.replace color v 1;
            let succ = try Hashtbl.find adj v with Not_found -> [] in
            let ok = List.for_all dfs succ in
            Hashtbl.replace color v 2;
            ok
      in
      Hashtbl.fold (fun v _ acc -> acc && dfs v) adj true)

let prop_cycle_detect_acyclic =
  QCheck2.Test.make ~name:"PASSv1 global detector: merged graph acyclic" ~count:60
    QCheck2.Gen.(pair (int_bound 1000) (int_range 10 150))
    (fun (seed, n) ->
      let cd = Cycle_detect.create () in
      let pn i = Pnode.of_int (i + 1) in
      List.iter
        (fun (is_read, pi, fi) ->
          if is_read then Cycle_detect.add_edge cd (pn pi, 0) (pn (fi + 10), 0)
          else Cycle_detect.add_edge cd (pn (fi + 10), 0) (pn pi, 0))
        (random_events n seed);
      Cycle_detect.is_acyclic cd)

let test_cycle_detect_merges () =
  let cd = Cycle_detect.create () in
  let a = (Pnode.of_int 1, 0) and b = (Pnode.of_int 2, 0) and c = (Pnode.of_int 3, 0) in
  Cycle_detect.add_edge cd a b;
  Cycle_detect.add_edge cd b c;
  Cycle_detect.add_edge cd c a;
  check tint "one merge" 1 (Cycle_detect.merges cd);
  check tbool "acyclic after merge" true (Cycle_detect.is_acyclic cd);
  check tbool "probing cost paid" true (Cycle_detect.probe_steps cd > 0)

let test_freeze_emits_version_edge () =
  let ctx, s, _an, ep = setup () in
  let a = file ctx in
  let v = Helpers.ok (ep.pass_freeze a) in
  check tint "new version" 1 v;
  let records = Helpers.all_records s in
  let has_freeze =
    List.exists (fun (_, (r : Record.t)) -> r.attr = Record.Attr.freeze) records
  in
  let has_version_edge =
    List.exists
      (fun (_, (r : Record.t)) ->
        match Record.xref_of r with
        | Some x -> Pnode.equal x.pnode a.pnode && x.version = 0
        | None -> false)
      records
  in
  check tbool "freeze record logged" true has_freeze;
  check tbool "version edge logged" true has_version_edge

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_analyzer_acyclic; prop_cycle_detect_acyclic ]

let suite =
  [
    Alcotest.test_case "dedup drops repeated records" `Quick test_dedup_drops_repeats;
    Alcotest.test_case "dedup is per-version" `Quick test_dedup_per_version;
    Alcotest.test_case "dedup can be disabled (ablation)" `Quick test_dedup_disabled;
    Alcotest.test_case "dedup table is bounded (epoch reset)" `Quick test_dedup_capacity_epoch;
    Alcotest.test_case "identity records not cycle-checked" `Quick
      test_identity_records_not_cycle_checked;
    Alcotest.test_case "self-dependency forces freeze" `Quick test_self_cycle_forces_freeze;
    Alcotest.test_case "read/write 2-cycle avoided" `Quick test_read_write_cycle_avoided;
    Alcotest.test_case "closed-version edge needs no freeze" `Quick
      test_closed_version_edge_allowed;
    Alcotest.test_case "younger childless target adopted, no freeze" `Quick
      test_younger_childless_target_adopted;
    Alcotest.test_case "younger target with deps forces freeze" `Quick
      test_younger_target_with_deps_freezes;
    Alcotest.test_case "freeze emits marker + version edge" `Quick test_freeze_emits_version_edge;
    Alcotest.test_case "PASSv1 detector merges cycles" `Quick test_cycle_detect_merges;
  ]
  @ qcheck_cases
