(* PA-NFS tests (paper §6.1): protocol round trips, DPAPI over the wire,
   client-local freezes, the >64 KB transaction path, orphaned-transaction
   cleanup after a client crash, version branching under close-to-open
   consistency, and the Figure 1 two-server topology. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let ok = Helpers.ok
let ok_fs = Helpers.ok_fs

(* One client machine (a Pass-mode System with a local volume) plus a PA
   server mounted at /nfs0.  Everything shares one clock, so server disk
   time appears as client-visible latency. *)
let pa_setup () =
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "local" ] () in
  let clock = System.clock sys in
  let server = Server.create ~mode:Server.Pass_enabled ~clock ~machine:2 ~volume:"nfs0" () in
  let net = Proto.net clock in
  let client =
    Client.create ~net ~handler:(Server.handle server) ~ctx:(Kernel.ctx (System.kernel sys))
      ~mount_name:"nfs0" ()
  in
  System.mount_external sys ~name:"nfs0" ~ops:(Client.ops client)
    ~endpoint:(Client.endpoint client)
    ~file_handle:(Client.file_handle client)
    ~flush:(fun () -> Client.flush client) ();
  (sys, server, client, net)

let write_via_kernel sys ~pid ~path ~data =
  let k = System.kernel sys in
  let fd = ok_fs (Kernel.open_file k ~pid ~path ~create:true) in
  ok_fs (Kernel.write k ~pid ~fd ~data);
  ok_fs (Kernel.close k ~pid ~fd)

let read_via_kernel sys ~pid ~path =
  let k = System.kernel sys in
  let fd = ok_fs (Kernel.open_file k ~pid ~path ~create:false) in
  let st = ok_fs (Kernel.stat k ~path) in
  let data = ok_fs (Kernel.read k ~pid ~fd ~len:st.Vfs.st_size) in
  ok_fs (Kernel.close k ~pid ~fd);
  data

let test_plain_nfs_roundtrip () =
  let sys = System.create ~mode:System.Vanilla ~machine:1 ~volume_names:[ "local" ] () in
  let clock = System.clock sys in
  let server = Server.create ~mode:Server.Plain ~clock ~machine:2 ~volume:"nfs0" () in
  let net = Proto.net clock in
  let client =
    Client.create ~net ~handler:(Server.handle server) ~ctx:(Kernel.ctx (System.kernel sys))
      ~mount_name:"nfs0" ()
  in
  System.mount_external sys ~name:"nfs0" ~ops:(Client.ops client) ();
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let before = Simdisk.Clock.now clock in
  write_via_kernel sys ~pid ~path:"/nfs0/hello.txt" ~data:"over the wire";
  check tstr "remote roundtrip" "over the wire" (read_via_kernel sys ~pid ~path:"/nfs0/hello.txt");
  check tbool "network time charged" true (Simdisk.Clock.now clock > before);
  check tbool "rpcs counted" true ((Client.stats client).rpcs > 0);
  check tbool "bytes counted" true (net.Proto.bytes > 0)

let test_panfs_ancestry_at_server () =
  let sys, server, _client, _net = pa_setup () in
  let k = System.kernel sys in
  let writer = Kernel.fork k ~parent:Kernel.init_pid in
  write_via_kernel sys ~pid:writer ~path:"/nfs0/input.dat" ~data:"input-bytes";
  let worker = Kernel.fork k ~parent:Kernel.init_pid in
  let data = read_via_kernel sys ~pid:worker ~path:"/nfs0/input.dat" in
  write_via_kernel sys ~pid:worker ~path:"/nfs0/output.dat" ~data:(data ^ "!");
  ignore (Server.drain server : int);
  let db = Option.get (Server.db server) in
  check tbool "server db acyclic" true (Provdb.is_acyclic db);
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as O O.input* as A where O.name = "output.dat"|}
  in
  check tbool "server sees full chain" true (List.mem "input.dat" names)

let test_local_freeze_no_rpc () =
  let sys, _server, client, _net = pa_setup () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_via_kernel sys ~pid ~path:"/nfs0/f" ~data:"v0";
  let h = ok_fs (Kernel.handle_of_path k "/nfs0/f") in
  let rpcs_before = (Client.stats client).rpcs in
  let v = ok (Client.pass_freeze client h) in
  check tint "no rpc for freeze" rpcs_before (Client.stats client).rpcs;
  let r = ok (Client.pass_read client h ~off:0 ~len:2) in
  check tint "local version served" v r.Dpapi.r_version;
  check tstr "data still correct" "v0" r.Dpapi.data

let test_freeze_record_reaches_server () =
  let sys, server, client, _net = pa_setup () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_via_kernel sys ~pid ~path:"/nfs0/f" ~data:"v0";
  let h = ok_fs (Kernel.handle_of_path k "/nfs0/f") in
  let v = ok (Client.pass_freeze client h) in
  (* next write carries the pending freeze record *)
  let _ = ok (Client.pass_write client h ~off:0 ~data:(Some "v1") []) in
  ignore (Server.drain server : int);
  check tint "server adopted the version" v
    (Ctx.current_version (Server.ctx server) h.Dpapi.pnode);
  let db = Option.get (Server.db server) in
  let node = Option.get (Provdb.find_node db h.Dpapi.pnode) in
  check tbool "db knows the new version" true (node.Provdb.max_version >= v)

let test_large_write_uses_txn () =
  let sys, server, client, _net = pa_setup () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_via_kernel sys ~pid ~path:"/nfs0/big" ~data:"seed";
  let h = ok_fs (Kernel.handle_of_path k "/nfs0/big") in
  (* a bundle bigger than 64 KB: many identity records *)
  let records =
    List.init 3000 (fun i -> Record.make "PARAMS" (Pvalue.Str (Printf.sprintf "param-%06d" i)))
  in
  let bundle = [ Dpapi.entry h records ] in
  check tbool "bundle really is over the limit" true
    (Dpapi.bundle_size bundle > Proto.block_limit);
  let _ = ok (Client.pass_write client h ~off:0 ~data:(Some "payload") bundle) in
  check tbool "a transaction was used" true ((Client.stats client).txns >= 1);
  let orphans = Server.drain server in
  check tint "no orphans" 0 orphans;
  let w = Option.get (Server.waldo server) in
  check tbool "txn committed" true ((Waldo.stats w).txns_committed >= 1);
  let db = Option.get (Server.db server) in
  let quads = Provdb.records_all db h.Dpapi.pnode in
  let params = List.filter (fun (q : Provdb.quad) -> q.q_attr = "PARAMS") quads in
  check tint "all records ingested" 3000 (List.length params)

let test_orphaned_txn_discarded () =
  let sys, server, client, _net = pa_setup () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_via_kernel sys ~pid ~path:"/nfs0/victim" ~data:"seed";
  let h = ok_fs (Kernel.handle_of_path k "/nfs0/victim") in
  (* client starts a transaction, sends provenance, then dies *)
  let txn = ok (Client.begin_txn client) in
  let chunk = [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str "never-committed") ] ] in
  ok (Client.send_prov_chunk client ~txn chunk);
  Client.crash client;
  (match Client.pass_read client h ~off:0 ~len:1 with
  | Error Dpapi.Ecrashed -> ()
  | _ -> Alcotest.fail "crashed client must not respond");
  let orphans = Server.drain server in
  check tint "one orphan discarded" 1 orphans;
  let db = Option.get (Server.db server) in
  let leaked =
    List.exists
      (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "never-committed")
      (Provdb.records_all db h.Dpapi.pnode)
  in
  check tbool "orphaned provenance never ingested" false leaked

let test_version_branching () =
  (* Two clients of one server, close-to-open consistency: both freeze the
     same file from the same base version and arrive at the same version
     number — version branching, which the paper accepts (§6.1.2). *)
  let clock = Simdisk.Clock.create () in
  let server = Server.create ~mode:Server.Pass_enabled ~clock ~machine:9 ~volume:"nfs0" () in
  let net = Proto.net clock in
  let ctx1 = Ctx.create ~machine:11 and ctx2 = Ctx.create ~machine:12 in
  let c1 = Client.create ~net ~handler:(Server.handle server) ~ctx:ctx1 ~mount_name:"nfs0" () in
  let c2 = Client.create ~net ~handler:(Server.handle server) ~ctx:ctx2 ~mount_name:"nfs0" () in
  (* create the shared file via c1 *)
  let ino = ok_fs (Vfs.write_file (Client.ops c1) "/shared" "base") in
  let h1 = ok_fs (Client.file_handle c1 ino) in
  let h2 = ok_fs (Client.file_handle c2 ino) in
  let _ = ok (Client.pass_read c1 h1 ~off:0 ~len:4) in
  let _ = ok (Client.pass_read c2 h2 ~off:0 ~len:4) in
  let v1 = ok (Client.pass_freeze c1 h1) in
  let v2 = ok (Client.pass_freeze c2 h2) in
  check tint "both clients branch to the same version" v1 v2;
  (* both flush; the server's view converges on max *)
  let _ = ok (Client.pass_write c1 h1 ~off:0 ~data:(Some "one") []) in
  let _ = ok (Client.pass_write c2 h2 ~off:0 ~data:(Some "two") []) in
  ok_fs (Client.flush c1);
  ok_fs (Client.flush c2);
  check tint "server converged" v1 (Ctx.current_version (Server.ctx server) h1.Dpapi.pnode)

let test_figure1_two_servers () =
  (* The Figure 1 topology: a workstation with a local disk plus two NFS
     servers; inputs on server A, outputs on server B, intermediates local.
     The unified (merged) database answers the cross-layer ancestry query;
     each server's database alone cannot. *)
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "local" ] () in
  let clock = System.clock sys in
  let ctx = Kernel.ctx (System.kernel sys) in
  let server_a = Server.create ~mode:Server.Pass_enabled ~clock ~machine:21 ~volume:"nfsA" () in
  let server_b = Server.create ~mode:Server.Pass_enabled ~clock ~machine:22 ~volume:"nfsB" () in
  let net = Proto.net clock in
  let ca = Client.create ~net ~handler:(Server.handle server_a) ~ctx ~mount_name:"nfsA" () in
  let cb = Client.create ~net ~handler:(Server.handle server_b) ~ctx ~mount_name:"nfsB" () in
  System.mount_external sys ~name:"nfsA" ~ops:(Client.ops ca) ~endpoint:(Client.endpoint ca)
    ~file_handle:(Client.file_handle ca)
    ~flush:(fun () -> Client.flush ca) ();
  System.mount_external sys ~name:"nfsB" ~ops:(Client.ops cb) ~endpoint:(Client.endpoint cb)
    ~file_handle:(Client.file_handle cb)
    ~flush:(fun () -> Client.flush cb) ();
  let k = System.kernel sys in
  (* colleague writes the input on server A *)
  let colleague = Kernel.fork k ~parent:Kernel.init_pid in
  write_via_kernel sys ~pid:colleague ~path:"/nfsA/align.in" ~data:"brain-scan-data";
  (* the workstation workflow: read A, stage locally, write B *)
  let wf = Kernel.fork k ~parent:Kernel.init_pid in
  let input = read_via_kernel sys ~pid:wf ~path:"/nfsA/align.in" in
  write_via_kernel sys ~pid:wf ~path:"/local/stage.tmp" ~data:(input ^ ":aligned");
  let staged = read_via_kernel sys ~pid:wf ~path:"/local/stage.tmp" in
  write_via_kernel sys ~pid:wf ~path:"/nfsB/atlas-x.gif" ~data:(staged ^ ":sliced");
  (* drain every database and merge *)
  ignore (System.drain sys : int);
  ignore (Server.drain server_a : int);
  ignore (Server.drain server_b : int);
  let merged = Provdb.create () in
  Provdb.merge_into ~dst:merged ~src:(Option.get (System.waldo_db sys "local"));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_a));
  Provdb.merge_into ~dst:merged ~src:(Option.get (Server.db server_b));
  check tbool "merged db acyclic" true (Provdb.is_acyclic merged);
  let names =
    Helpers.pql_names merged
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "atlas-x.gif"|}
  in
  check tbool "full chain crosses all three volumes" true
    (List.mem "align.in" names && List.mem "stage.tmp" names);
  (* without layering: server B alone does not know the remote input *)
  let b_only =
    Helpers.pql_names (Option.get (Server.db server_b))
      {|select Ancestor
        from Provenance.file as Atlas
             Atlas.input* as Ancestor
        where Atlas.name = "atlas-x.gif"|}
  in
  check tbool "server B alone cannot see align.in" false (List.mem "align.in" b_only)

let test_server_disk_crash () =
  (* the server's disk dies mid-write: the client sees ECRASH, and after
     revival WAP recovery never flags completed writes — only (possibly)
     the in-flight one.  Scan several crash points; at least one must
     leave a detectable half-written state. *)
  let flagged_inflight = ref false in
  for crash_after = 0 to 11 do
    let sys, server, client, _net = pa_setup () in
    let k = System.kernel sys in
    let pid = Kernel.fork k ~parent:Kernel.init_pid in
    write_via_kernel sys ~pid ~path:"/nfs0/stable.dat" ~data:"stable";
    let stable_h = ok_fs (Kernel.handle_of_path k "/nfs0/stable.dat") in
    (* a fresh file so the write needs a new provenance frame *)
    let ino =
      match (Client.ops client).Vfs.create ~dir:Ext3.root_ino "victim.dat" Vfs.Regular with
      | Ok ino -> ino
      | Error e -> Alcotest.failf "create: %s" (Vfs.errno_to_string e)
    in
    let h = ok_fs (Client.file_handle client ino) in
    Simdisk.Disk.schedule_crash (Server.disk server) ~after_writes:crash_after;
    (match
       Result.bind
         (Client.pass_write client h ~off:0 ~data:(Some (Helpers.payload ~seed:3 ~len:2048)) [])
         (fun _ ->
           (* the piggybacked write reaches the wire at the flush point *)
           match Client.flush client with
           | Ok () -> Ok 0
           | Error Vfs.ECRASH -> Error Dpapi.Ecrashed
           | Error _ -> Error Dpapi.Eio)
     with
    | Error Dpapi.Ecrashed -> () (* the interesting case *)
    | Ok _ -> () (* the whole write fit before the crash point *)
    | Error e -> Alcotest.failf "unexpected error %s" (Dpapi.error_to_string e));
    (* note: reads served from the server's page cache can still succeed;
       only disk-touching operations observe the crash *)
    Simdisk.Disk.revive (Server.disk server);
    let remounted = Ext3.mount (Server.disk server) in
    let report = ok_fs (Recovery.scan (Ext3.ops remounted)) in
    List.iter
      (fun (i : Recovery.inconsistency) ->
        check tbool
          (Printf.sprintf "crash point %d: completed write never flagged" crash_after)
          false
          (Pnode.equal i.i_pnode stable_h.Dpapi.pnode);
        if Pnode.equal i.i_pnode h.Dpapi.pnode then flagged_inflight := true)
      report.inconsistent
  done;
  check tbool "some crash point exposes the in-flight write" true !flagged_inflight

let test_chunk_bundle () =
  let alloc = Pnode.allocator ~machine:7 in
  let h = Dpapi.handle ~volume:"v" (Pnode.fresh alloc) in
  (* one oversized entry: must split into several chunks, preserving the
     record order and total count *)
  let records =
    List.init 5000 (fun i -> Record.make "PARAMS" (Pvalue.Str (Printf.sprintf "r%05d" i)))
  in
  let chunks = Client.chunk_bundle [ Dpapi.entry h records ] in
  check tbool "split into several" true (List.length chunks > 1);
  List.iter
    (fun chunk ->
      check tbool "each chunk under the limit" true
        (Dpapi.bundle_size chunk <= Proto.block_limit))
    chunks;
  let flattened =
    List.concat_map
      (fun chunk ->
        List.concat_map (fun (e : Dpapi.bundle_entry) -> e.records) chunk)
      chunks
  in
  check tint "no record lost" (List.length records) (List.length flattened);
  check tbool "order preserved" true (List.for_all2 Record.equal records flattened)

(* --- wire codec round trips -------------------------------------------------- *)

(* encode -> decode -> re-encode must be byte-identical and consume the
   whole buffer: the transport decodes every delivered datagram, so a
   replayed response is a byte-level replay. *)
let rt_req (r : Proto.req) =
  let b = Buffer.create 64 in
  Proto.encode_req b r;
  let s = Buffer.contents b in
  let pos = ref 0 in
  let r' = Proto.decode_req s pos in
  let b2 = Buffer.create 64 in
  Proto.encode_req b2 r';
  !pos = String.length s && String.equal s (Buffer.contents b2)

let rt_resp (r : Proto.resp) =
  let b = Buffer.create 64 in
  Proto.encode_resp b r;
  let s = Buffer.contents b in
  let pos = ref 0 in
  let r' = Proto.decode_resp s pos in
  let b2 = Buffer.create 64 in
  Proto.encode_resp b2 r';
  !pos = String.length s && String.equal s (Buffer.contents b2)

let test_proto_roundtrip_exhaustive () =
  let p = Pnode.of_int 77 in
  let h = Dpapi.handle ~volume:"nfs0" p in
  let bundle = [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str "x"); Record.name "f" ] ] in
  let reqs : Proto.req list =
    [
      Lookup { dir = 1; name = "a" };
      Create { dir = 1; name = "b"; kind = Vfs.Regular };
      Create { dir = 1; name = "d"; kind = Vfs.Directory };
      Remove { dir = 2; name = "c" };
      Rename { src_dir = 1; src_name = "a"; dst_dir = 2; dst_name = "b" };
      Getattr { ino = 3 };
      Readdir { ino = 1 };
      Read { ino = 3; off = 5; len = 9 };
      Write { ino = 3; off = 0; data = "payload" };
      Truncate { ino = 3; size = 42 };
      Commit { ino = 3 };
      Op_passread { pnode = p; off = 1; len = 2 };
      Op_passwrite { pnode = p; off = 0; data = Some "d"; bundle; txn = Some 7 };
      Op_passwrite { pnode = p; off = 8; data = None; bundle = []; txn = None };
      Op_begintxn;
      Op_passprov { txn = 9; chunk = bundle };
      Op_passmkobj;
      Op_passreviveobj { pnode = p; version = 4 };
      Op_passsync { pnode = p };
      Op_pnode { ino = 6 };
      Op_passbatch { writes = [] };
      Op_passbatch
        {
          writes =
            [
              { bi_pnode = p; bi_off = 0; bi_data = Some "d"; bi_bundle = bundle };
              { bi_pnode = p; bi_off = 9; bi_data = None; bi_bundle = [] };
            ];
        };
    ]
  in
  let resps : Proto.resp list =
    [
      R_err Vfs.ENOENT;
      R_err Vfs.EAGAIN;
      R_err Vfs.ECRASH;
      R_ino 12;
      R_ok;
      R_attr { Vfs.st_ino = 3; st_kind = Vfs.Regular; st_size = 100 };
      R_names [ "a"; "b"; "c" ];
      R_names [];
      R_data "bytes";
      R_passread { data = "d"; pnode = p; version = 2 };
      R_version 5;
      R_txn 8;
      R_handle { pnode = p };
      R_batch [];
      R_batch [ R_version 1; R_version 2; R_err Vfs.EIO ];
    ]
  in
  List.iteri (fun i r -> check tbool (Printf.sprintf "req #%d" i) true (rt_req r)) reqs;
  List.iteri (fun i r -> check tbool (Printf.sprintf "resp #%d" i) true (rt_resp r)) resps;
  (* the call envelope too *)
  let call =
    { Proto.c_client = 3; c_seq = 41; c_trace = 7; c_span = 9;
      c_req = Getattr { ino = 3 } }
  in
  let b = Buffer.create 64 in
  Proto.encode_call b call;
  let s = Buffer.contents b in
  let c' = Proto.decode_call s (ref 0) in
  let b2 = Buffer.create 64 in
  Proto.encode_call b2 c';
  check tstr "call envelope round trip" s (Buffer.contents b2)

let prop_proto_roundtrip =
  let open QCheck2.Gen in
  let name = string_size ~gen:printable (int_range 1 24) in
  let payload = string_size ~gen:char (int_range 0 200) in
  let ino = int_range 0 10_000 in
  let off = int_range 0 1_000_000 in
  let pnode = map Pnode.of_int (int_range 1 1_000_000) in
  let bundle =
    let record = map2 (fun a v -> Record.make a (Pvalue.Str v)) name payload in
    let entry =
      map2 (fun p rs -> Dpapi.entry (Dpapi.handle ~volume:"v" p) rs)
        pnode
        (list_size (int_range 0 5) record)
    in
    list_size (int_range 0 3) entry
  in
  let gen_req =
    oneof
      [
        map2 (fun d n -> Proto.Lookup { dir = d; name = n }) ino name;
        map3
          (fun d n k ->
            Proto.Create { dir = d; name = n; kind = (if k then Vfs.Regular else Vfs.Directory) })
          ino name bool;
        map2 (fun d n -> Proto.Remove { dir = d; name = n }) ino name;
        map
          (fun (((sd, sn), dd), dn) ->
            Proto.Rename { src_dir = sd; src_name = sn; dst_dir = dd; dst_name = dn })
          (pair (pair (pair ino name) ino) name);
        map (fun i -> Proto.Getattr { ino = i }) ino;
        map (fun i -> Proto.Readdir { ino = i }) ino;
        map3 (fun i o l -> Proto.Read { ino = i; off = o; len = l }) ino off small_nat;
        map3 (fun i o d -> Proto.Write { ino = i; off = o; data = d }) ino off payload;
        map2 (fun i s -> Proto.Truncate { ino = i; size = s }) ino off;
        map (fun i -> Proto.Commit { ino = i }) ino;
        map3 (fun p o l -> Proto.Op_passread { pnode = p; off = o; len = l }) pnode off small_nat;
        map
          (fun (((p, o), d), (b, t)) -> Proto.Op_passwrite { pnode = p; off = o; data = d; bundle = b; txn = t })
          (pair (pair (pair pnode off) (option payload)) (pair bundle (option small_nat)));
        pure Proto.Op_begintxn;
        map2 (fun t c -> Proto.Op_passprov { txn = t; chunk = c }) small_nat bundle;
        pure Proto.Op_passmkobj;
        map2 (fun p v -> Proto.Op_passreviveobj { pnode = p; version = v }) pnode small_nat;
        map (fun p -> Proto.Op_passsync { pnode = p }) pnode;
        map (fun i -> Proto.Op_pnode { ino = i }) ino;
        (let item =
           map
             (fun (((p, o), d), b) ->
               { Proto.bi_pnode = p; bi_off = o; bi_data = d; bi_bundle = b })
             (pair (pair (pair pnode off) (option payload)) bundle)
         in
         map (fun ws -> Proto.Op_passbatch { writes = ws }) (list_size (int_range 0 6) item));
      ]
  in
  QCheck2.Test.make ~name:"proto: every req round-trips the wire" ~count:300 gen_req rt_req

(* --- recovery after a server crash mid-transaction (ISSUE satellite) --------- *)

let test_server_crash_mid_txn () =
  let sys, server, client, _net = pa_setup () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_via_kernel sys ~pid ~path:"/nfs0/obj" ~data:"seed";
  let h = ok_fs (Kernel.handle_of_path k "/nfs0/obj") in
  let txn = ok (Client.begin_txn client) in
  ok
    (Client.send_prov_chunk client ~txn
       [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str "in-flight") ] ]);
  (* the server host dies before the terminating OP_PASSWRITE *)
  Simdisk.Disk.crash (Server.disk server);
  (match Client.end_txn_write client ~txn h ~off:0 ~data:(Some "final") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write must not complete on a dead server");
  Simdisk.Disk.revive (Server.disk server);
  (* recovery over the revived medium sees the half-finished transaction *)
  let remounted = Ext3.mount (Server.disk server) in
  let report = ok_fs (Recovery.scan (Ext3.ops remounted)) in
  check tbool "recovery reports the open txn" true (List.mem txn report.Recovery.open_txns);
  (* Waldo's orphan count matches the recovery report exactly *)
  let orphans = Server.drain server in
  check tint "Waldo orphans = recovery's open txns" (List.length report.Recovery.open_txns)
    orphans;
  let db = Option.get (Server.db server) in
  let leaked =
    List.exists
      (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "in-flight")
      (Provdb.records_all db h.Dpapi.pnode)
  in
  check tbool "orphaned provenance never ingested" false leaked;
  (* the revived service accepts new work: the client re-creates the object *)
  let ino2 =
    match (Client.ops client).Vfs.create ~dir:Ext3.root_ino "obj.new" Vfs.Regular with
    | Ok ino -> ino
    | Error e -> Alcotest.failf "re-create after revival: %s" (Vfs.errno_to_string e)
  in
  let h2 = ok_fs (Client.file_handle client ino2) in
  let _ = ok (Client.pass_write client h2 ~off:0 ~data:(Some "recreated") []) in
  let r = ok (Client.pass_read client h2 ~off:0 ~len:9) in
  check tstr "recreated object readable" "recreated" r.Dpapi.data

let test_proto_sizes () =
  let big = Proto.Write { ino = 3; off = 0; data = String.make 10_000 'x' } in
  let small = Proto.Getattr { ino = 3 } in
  check tbool "encoded size tracks payload" true
    (Proto.req_size big > 10_000 && Proto.req_size small < 64)

let suite =
  [
    Alcotest.test_case "plain NFS roundtrip over the wire" `Quick test_plain_nfs_roundtrip;
    Alcotest.test_case "PA-NFS ancestry lands at the server" `Quick
      test_panfs_ancestry_at_server;
    Alcotest.test_case "freeze is client-local (no RPC)" `Quick test_local_freeze_no_rpc;
    Alcotest.test_case "freeze records reach the server in writes" `Quick
      test_freeze_record_reaches_server;
    Alcotest.test_case "large writes use transactions" `Quick test_large_write_uses_txn;
    Alcotest.test_case "client crash orphans are discarded" `Quick test_orphaned_txn_discarded;
    Alcotest.test_case "version branching across clients" `Quick test_version_branching;
    Alcotest.test_case "Figure 1: two servers + workstation" `Quick test_figure1_two_servers;
    Alcotest.test_case "server disk crash + recovery" `Quick test_server_disk_crash;
    Alcotest.test_case "bundle chunking" `Quick test_chunk_bundle;
    Alcotest.test_case "protocol message sizes" `Quick test_proto_sizes;
    Alcotest.test_case "wire codec round trips (all constructors)" `Quick
      test_proto_roundtrip_exhaustive;
    QCheck_alcotest.to_alcotest prop_proto_roundtrip;
    Alcotest.test_case "server crash mid-transaction + recovery" `Quick
      test_server_crash_mid_txn;
  ]
