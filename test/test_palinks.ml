(* PA-links tests (paper §6.3 and the §3.2 use cases): the synthetic web,
   session provenance, the three download records, attribution across
   rename/copy, malware source tracking, and session revival. *)

open Pass_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let setup () =
  let sys = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let web = Web.synthetic () in
  let browser = Browser.create ~web ~sys ~pid in
  (sys, pid, web, browser)

(* --- web substrate --------------------------------------------------------- *)

let test_web_fetch_and_links () =
  let web = Web.synthetic () in
  let url = Web.site_url 0 0 in
  let final, chain, resource = Web.fetch web url in
  check tstr "no redirect" url final;
  check tint "no chain" 0 (List.length chain);
  (match resource with
  | Web.Page p -> check tbool "page has links" true (List.length p.links > 0)
  | _ -> Alcotest.fail "expected a page");
  (match Web.fetch web "http://nowhere.example/" with
  | exception Web.Not_found_404 _ -> ()
  | _ -> Alcotest.fail "expected 404");
  check tbool "fetches counted" true (Web.fetch_count web >= 2);
  check tbool "links_of returns the page links" true
    (List.mem (Web.site_url 0 1) (Web.links_of web url))

let test_web_redirects () =
  let web = Web.synthetic () in
  let final, chain, _ = Web.fetch web "http://short.example/s2" in
  check tstr "redirect followed" (Web.site_url 2 0) final;
  check tint "chain recorded" 1 (List.length chain)

let test_web_compromise () =
  let web = Web.synthetic () in
  let url = Web.download_url 1 "doc3.pdf" in
  check tbool "initially clean" false (Web.is_tampered web ~url);
  Web.compromise web ~url ~payload:"EVIL";
  check tbool "tampered flagged" true (Web.is_tampered web ~url);
  let _, _, r = Web.fetch web url in
  (match r with
  | Web.Download d -> check tstr "payload served" "EVIL" d.content
  | _ -> Alcotest.fail "expected download")

(* --- browser --------------------------------------------------------------- *)

let drain_db sys =
  ignore (System.drain sys : int);
  Option.get (System.waldo_db sys "vol0")

let test_download_records () =
  let sys, _pid, _web, browser = setup () in
  let s = Browser.new_session browser in
  ignore (Browser.visit browser s (Web.site_url 0 0) : Web.resource);
  ignore (Browser.visit browser s (Web.site_url 0 1) : Web.resource);
  let url = Web.download_url 0 "doc2.pdf" in
  let _final = Browser.download browser s ~url ~dest:"/vol0/downloads/doc2.pdf" in
  let db = drain_db sys in
  (* FILE_URL and CURRENT_URL on the file (Table 1) *)
  let file = List.hd (Provdb.find_by_name db "doc2.pdf") in
  let quads = Provdb.records_all db file in
  let has attr v =
    List.exists
      (fun (q : Provdb.quad) -> q.q_attr = attr && q.q_value = Pvalue.Str v)
      quads
  in
  check tbool "FILE_URL recorded" true (has Record.Attr.file_url url);
  check tbool "CURRENT_URL recorded" true (has Record.Attr.current_url (Web.site_url 0 1));
  (* the session, with its VISITED_URL trail, is an ancestor *)
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as F F.input* as A where F.name = "doc2.pdf"|}
  in
  check tbool "session in ancestry" true (List.mem "session-1" names);
  let session = List.hd (Provdb.find_by_name db "session-1") in
  let visits =
    List.filter
      (fun (q : Provdb.quad) -> q.q_attr = Record.Attr.visited_url)
      (Provdb.records_all db session)
  in
  check tint "two visits recorded" 2 (List.length visits)

let test_attribution_survives_rename () =
  (* §3.2 use case: the professor copies/renames the file; a plain browser
     loses the link, PASS keeps it *)
  let sys, pid, _web, browser = setup () in
  let s = Browser.new_session browser in
  ignore (Browser.visit browser s (Web.site_url 1 0) : Web.resource);
  let url = Web.download_url 1 "doc0.pdf" in
  ignore (Browser.download browser s ~url ~dest:"/vol0/downloads/graph.pdf" : string);
  (* move it into the presentation directory *)
  Helpers.ok_fs (Kernel.mkdir_p (System.kernel sys) ~path:"/vol0/talk");
  Helpers.ok_fs
    (Kernel.rename (System.kernel sys) ~pid ~src:"/vol0/downloads/graph.pdf"
       ~dst:"/vol0/talk/figure1.pdf");
  let db = drain_db sys in
  (* query by pnode of the renamed file: its FILE_URL is still there *)
  let file = List.hd (Provdb.find_by_name db "graph.pdf") in
  let quads = Provdb.records_all db file in
  check tbool "URL attribution survives rename" true
    (List.exists
       (fun (q : Provdb.quad) -> q.q_attr = Record.Attr.file_url && q.q_value = Pvalue.Str url)
       quads)

let test_malware_scenario () =
  (* §3.2: Eve compromises a codec; Alice downloads it; the codec infects
     other files.  The layered provenance identifies the web site AND the
     spread. *)
  let sys, _pid, web, browser = setup () in
  let codec_url = Web.download_url 2 "doc1.pdf" in
  Web.compromise web ~url:codec_url ~payload:"codec-with-malware";
  let s = Browser.new_session browser in
  ignore (Browser.visit browser s (Web.site_url 2 0) : Web.resource);
  ignore (Browser.download browser s ~url:codec_url ~dest:"/vol0/bin/codec" : string);
  (* Alice runs the codec; it corrupts files *)
  let k = System.kernel sys in
  let mal = Kernel.fork k ~parent:Kernel.init_pid in
  Helpers.ok_fs (Kernel.execve k ~pid:mal ~path:"/vol0/bin/codec" ~argv:[ "codec" ] ~env:[]);
  let io = Kepler_run.io_of_system sys ~pid:mal in
  io.Actor.write_file "/vol0/home/infected1" "bad";
  io.Actor.write_file "/vol0/home/infected2" "bad";
  let db = drain_db sys in
  (* backward: where did the codec come from? *)
  let file = List.hd (Provdb.find_by_name db "codec") in
  let quads = Provdb.records_all db file in
  check tbool "malware source URL identified" true
    (List.exists
       (fun (q : Provdb.quad) ->
         q.q_attr = Record.Attr.file_url && q.q_value = Pvalue.Str codec_url)
       quads);
  (* forward: what descends from the codec? *)
  let descendants =
    Helpers.pql_names db
      {|select D from Provenance.file as C C.^input* as D where C.name = "codec"|}
  in
  check tbool "spread tracked to infected1" true (List.mem "infected1" descendants);
  check tbool "spread tracked to infected2" true (List.mem "infected2" descendants)

let test_plain_browser_loses_provenance () =
  let sys = System.create ~mode:System.Vanilla ~machine:1 ~volume_names:[ "vol0" ] () in
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  let web = Web.synthetic () in
  let browser = Browser.create ~web ~sys ~pid in
  check tbool "not provenance-aware on vanilla kernel" false (Browser.provenance_aware browser);
  let s = Browser.new_session browser in
  ignore (Browser.visit browser s (Web.site_url 0 0) : Web.resource);
  ignore
    (Browser.download browser s ~url:(Web.download_url 0 "doc0.pdf") ~dest:"/vol0/d.pdf"
      : string);
  (* the data arrives, but nothing remembers where from *)
  let io = Kepler_run.io_of_system sys ~pid in
  check tbool "data written" true (String.length (io.Actor.read_file "/vol0/d.pdf") > 0)

let test_session_revival () =
  (* the Firefox lesson (§6.5): save sessions, restart, revive, and keep
     recording onto the same session object *)
  let sys, pid, web, browser = setup () in
  let s = Browser.new_session browser in
  ignore (Browser.visit browser s (Web.site_url 0 0) : Web.resource);
  Browser.save_sessions browser ~path:"/vol0/.browser-state";
  (* "restart": a new browser instance on the same machine *)
  let browser2 = Browser.create ~web ~sys ~pid in
  Browser.restore_sessions browser2 ~path:"/vol0/.browser-state";
  (match browser2.Browser.sessions with
  | [ revived ] ->
      check tbool "same pnode revived" true
        (Pnode.equal revived.Browser.handle.Dpapi.pnode s.Browser.handle.Dpapi.pnode);
      (* continue the session: download lands on the revived object *)
      ignore (Browser.visit browser2 revived (Web.site_url 0 2) : Web.resource);
      ignore
        (Browser.download browser2 revived ~url:(Web.download_url 0 "doc1.pdf")
           ~dest:"/vol0/later.pdf"
          : string);
      let db = drain_db sys in
      let names =
        Helpers.pql_names db
          {|select A from Provenance.file as F F.input* as A where F.name = "later.pdf"|}
      in
      check tbool "revived session in ancestry" true (List.mem "session-1" names)
  | _ -> Alcotest.fail "expected exactly one revived session")

let suite =
  [
    Alcotest.test_case "web: fetch pages and links" `Quick test_web_fetch_and_links;
    Alcotest.test_case "web: redirects" `Quick test_web_redirects;
    Alcotest.test_case "web: compromise a download" `Quick test_web_compromise;
    Alcotest.test_case "download emits the three records" `Quick test_download_records;
    Alcotest.test_case "attribution survives rename (§3.2)" `Quick
      test_attribution_survives_rename;
    Alcotest.test_case "malware source + spread (§3.2)" `Quick test_malware_scenario;
    Alcotest.test_case "plain browser loses provenance" `Quick
      test_plain_browser_loses_provenance;
    Alcotest.test_case "session save/revive (§6.5 lesson)" `Quick test_session_revival;
  ]
