(* Tests of the small substrates: VFS path helpers and the Wire
   serialization primitives, including an ext3-vs-model property test
   that drives random namespace/data operations against a trivial
   in-memory oracle. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

(* --- wire ------------------------------------------------------------------ *)

let test_wire_roundtrips () =
  let buf = Buffer.create 64 in
  Wire.put_u8 buf 200;
  Wire.put_u32 buf 123456;
  Wire.put_i64 buf (-42);
  Wire.put_string buf "hello";
  Wire.put_bool buf true;
  Wire.put_list buf Wire.put_string [ "a"; "bb"; "" ];
  let s = Buffer.contents buf in
  let pos = ref 0 in
  check tint "u8" 200 (Wire.get_u8 s pos);
  check tint "u32" 123456 (Wire.get_u32 s pos);
  check tint "i64" (-42) (Wire.get_i64 s pos);
  check tstr "string" "hello" (Wire.get_string s pos);
  check tbool "bool" true (Wire.get_bool s pos);
  check (Alcotest.list tstr) "list" [ "a"; "bb"; "" ] (Wire.get_list Wire.get_string s pos);
  check tint "fully consumed" (String.length s) !pos

let test_wire_corruption () =
  let expect_corrupt f =
    match f () with
    | exception Wire.Corrupt _ -> ()
    | _ -> Alcotest.fail "expected Wire.Corrupt"
  in
  expect_corrupt (fun () -> Wire.get_u32 "ab" (ref 0));
  expect_corrupt (fun () -> Wire.get_i64 "abcd" (ref 0));
  expect_corrupt (fun () ->
      let buf = Buffer.create 8 in
      Wire.put_string buf "hello world";
      Wire.get_string (String.sub (Buffer.contents buf) 0 8) (ref 0));
  (match Wire.put_u8 (Buffer.create 1) 300 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "u8 range check")

(* --- wire properties (pinned seed) ---------------------------------------- *)

(* A tagged heterogeneous value so one generated list exercises every
   put_*/get_* pair in a single buffer, in order. *)
type wire_value =
  | Wu8 of int
  | Wu32 of int
  | Wi64 of int
  | Wstr of string
  | Wbool of bool
  | Wlist of string list

let gen_wire_value =
  let open QCheck2.Gen in
  oneof
    [
      map (fun n -> Wu8 n) (int_bound 0xff);
      map (fun n -> Wu32 n) (int_bound 0xffffffff);
      map (fun n -> Wi64 n) (map2 (fun a b -> if b then a else -a) big_nat bool);
      map (fun s -> Wstr s) (string_size (int_bound 64));
      map (fun b -> Wbool b) bool;
      map (fun l -> Wlist l) (list_size (int_bound 8) (string_size (int_bound 16)));
    ]

let gen_wire_values = QCheck2.Gen.(list_size (int_range 1 40) gen_wire_value)

let encode_values vs =
  let buf = Buffer.create 256 in
  List.iter
    (function
      | Wu8 n -> Wire.put_u8 buf n
      | Wu32 n -> Wire.put_u32 buf n
      | Wi64 n -> Wire.put_i64 buf n
      | Wstr s -> Wire.put_string buf s
      | Wbool b -> Wire.put_bool buf b
      | Wlist l -> Wire.put_list buf Wire.put_string l)
    vs;
  Buffer.contents buf

let decode_values s pos vs =
  List.map
    (function
      | Wu8 _ -> Wu8 (Wire.get_u8 s pos)
      | Wu32 _ -> Wu32 (Wire.get_u32 s pos)
      | Wi64 _ -> Wi64 (Wire.get_i64 s pos)
      | Wstr _ -> Wstr (Wire.get_string s pos)
      | Wbool _ -> Wbool (Wire.get_bool s pos)
      | Wlist _ -> Wlist (Wire.get_list Wire.get_string s pos))
    vs

let prop_wire_roundtrip =
  QCheck2.Test.make ~name:"wire: randomized put_*/get_* round-trip" ~count:500 gen_wire_values
    (fun vs ->
      let s = encode_values vs in
      let pos = ref 0 in
      let back = decode_values s pos vs in
      back = vs && !pos = String.length s)

let prop_wire_truncation =
  QCheck2.Test.make ~name:"wire: any strict truncation raises Corrupt" ~count:500
    QCheck2.Gen.(pair gen_wire_values (int_bound 10_000))
    (fun (vs, cut) ->
      let s = encode_values vs in
      (* every encoding here is non-empty (u8/bool = 1 byte minimum) *)
      let cut = cut mod String.length s in
      let short = String.sub s 0 cut in
      match decode_values short (ref 0) vs with
      | exception Wire.Corrupt _ -> true
      | _ -> false)

let prop_wire_garbage =
  (* random bytes decoded as a list of strings: either a clean Corrupt or
     an in-bounds decode — never an out-of-range access or other crash *)
  QCheck2.Test.make ~name:"wire: garbage input fails with Corrupt only" ~count:500
    QCheck2.Gen.(string_size (int_bound 128))
    (fun s ->
      let pos = ref 0 in
      match Wire.get_list Wire.get_string s pos with
      | exception Wire.Corrupt _ -> true
      | _ -> !pos <= String.length s)

(* --- path helpers ------------------------------------------------------------ *)

let test_split_path () =
  check (Alcotest.list tstr) "basic" [ "a"; "b"; "c" ] (Vfs.split_path "/a/b/c");
  check (Alcotest.list tstr) "doubled slashes" [ "a"; "b" ] (Vfs.split_path "//a///b/");
  check (Alcotest.list tstr) "dot segments dropped" [ "a" ] (Vfs.split_path "/./a/.");
  check (Alcotest.list tstr) "empty" [] (Vfs.split_path "/")

let test_path_helpers_on_ext3 () =
  let _disk, fs = Helpers.fresh_ext3 () in
  let ops = Ext3.ops fs in
  let dir = Helpers.ok_fs (Vfs.mkdir_p ops "/x/y/z") in
  check tbool "mkdir_p idempotent" true (Helpers.ok_fs (Vfs.mkdir_p ops "/x/y/z") = dir);
  let parent, leaf = Helpers.ok_fs (Vfs.parent_and_leaf ops "/x/y/z/file.txt") in
  check tstr "leaf" "file.txt" leaf;
  check tbool "parent is z" true (parent = dir);
  (match Vfs.parent_and_leaf ops "/" with
  | Error Vfs.EINVAL -> ()
  | _ -> Alcotest.fail "root has no leaf");
  (* write_file creates, then truncates on rewrite *)
  let ino = Helpers.ok_fs (Vfs.write_file ops "/x/y/z/file.txt" "0123456789") in
  let _ = Helpers.ok_fs (Vfs.write_file ops "/x/y/z/file.txt" "abc") in
  let st = Helpers.ok_fs (ops.getattr ino) in
  check tint "rewrite truncates" 3 st.Vfs.st_size

(* --- ext3 vs an in-memory oracle (model-based property test) --------------- *)

(* The model: path -> contents.  Operations chosen to keep both sides in
   the same state space (no hard links, flat two-level namespace). *)
type op =
  | Write of int * string (* file index, data *)
  | Delete of int
  | Rename of int * int
  | Check of int

let gen_ops =
  let open QCheck2.Gen in
  let file = int_bound 9 in
  let data = map (fun (seed, len) -> Helpers.payload ~seed ~len:(len + 1)) (pair (int_bound 1000) (int_bound 9000)) in
  list_size (int_range 5 60)
    (oneof
       [
         map2 (fun f d -> Write (f, d)) file data;
         map (fun f -> Delete f) file;
         map2 (fun a b -> Rename (a, b)) file file;
         map (fun f -> Check f) file;
       ])

let path_of i = Printf.sprintf "/d%d/f%d" (i mod 3) i

let prop_ext3_matches_model =
  QCheck2.Test.make ~name:"ext3 agrees with an in-memory model" ~count:60 gen_ops (fun ops_list ->
      let _disk, fs = Helpers.fresh_ext3 () in
      let ops = Ext3.ops fs in
      (* pre-create the directories so rename targets always resolve *)
      List.iter
        (fun d ->
          ignore (Vfs.mkdir_p ops (Printf.sprintf "/d%d" d) : (Vfs.ino, Vfs.errno) result))
        [ 0; 1; 2 ];
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Write (f, d) -> (
              match Vfs.write_file ~mkparents:true ops (path_of f) d with
              | Ok _ -> Hashtbl.replace model f d
              | Error _ -> ok := false)
          | Delete f -> (
              let expected = Hashtbl.mem model f in
              match Vfs.remove_path ops (path_of f) with
              | Ok () ->
                  if not expected then ok := false;
                  Hashtbl.remove model f
              | Error Vfs.ENOENT -> if expected then ok := false
              | Error _ -> ok := false)
          | Rename (a, b) -> (
              let expected = Hashtbl.mem model a in
              match Vfs.rename_path ops (path_of a) (path_of b) with
              | Ok () ->
                  if not expected then ok := false
                  else begin
                    Hashtbl.replace model b (Hashtbl.find model a);
                    if a <> b then Hashtbl.remove model a
                  end
              | Error Vfs.ENOENT -> if expected then ok := false
              | Error _ -> ok := false)
          | Check f -> (
              match (Vfs.read_file ops (path_of f), Hashtbl.find_opt model f) with
              | Ok data, Some expected -> if not (String.equal data expected) then ok := false
              | Error Vfs.ENOENT, None -> ()
              | Ok _, None | Error _, Some _ | Error _, None -> ok := false))
        ops_list;
      (* final full sweep *)
      Hashtbl.iter
        (fun f expected ->
          match Vfs.read_file ops (path_of f) with
          | Ok data -> if not (String.equal data expected) then ok := false
          | Error _ -> ok := false)
        model;
      !ok)

(* the same sweep must hold after a crash + journal replay *)
let prop_ext3_replay_matches_model =
  QCheck2.Test.make ~name:"ext3 journal replay preserves the model" ~count:30 gen_ops
    (fun ops_list ->
      let clock = Simdisk.Clock.create () in
      let disk = Simdisk.Disk.create ~clock () in
      let fs = Ext3.format disk in
      let ops = Ext3.ops fs in
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | Write (f, d) -> (
              match Vfs.write_file ~mkparents:true ops (path_of f) d with
              | Ok _ -> Hashtbl.replace model f d
              | Error _ -> ())
          | Delete f -> (
              match Vfs.remove_path ops (path_of f) with
              | Ok () -> Hashtbl.remove model f
              | Error _ -> ())
          | Rename (a, b) -> (
              match Vfs.rename_path ops (path_of a) (path_of b) with
              | Ok () ->
                  (match Hashtbl.find_opt model a with
                  | Some d ->
                      Hashtbl.replace model b d;
                      if a <> b then Hashtbl.remove model a
                  | None -> ())
              | Error _ -> ())
          | Check _ -> ())
        ops_list;
      (* crash + remount *)
      Simdisk.Disk.crash disk;
      Simdisk.Disk.revive disk;
      let ops2 = Ext3.ops (Ext3.mount disk) in
      Hashtbl.fold
        (fun f expected acc ->
          acc
          &&
          match Vfs.read_file ops2 (path_of f) with
          | Ok data -> String.equal data expected
          | Error _ -> false)
        model true)

let qcheck_cases =
  (* the wire properties run under a pinned seed so CI failures replay *)
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed |]) t)
    [ prop_wire_roundtrip; prop_wire_truncation; prop_wire_garbage ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_ext3_matches_model; prop_ext3_replay_matches_model ]

let suite =
  [
    Alcotest.test_case "wire roundtrips" `Quick test_wire_roundtrips;
    Alcotest.test_case "wire corruption detected" `Quick test_wire_corruption;
    Alcotest.test_case "split_path" `Quick test_split_path;
    Alcotest.test_case "path helpers on ext3" `Quick test_path_helpers_on_ext3;
  ]
  @ qcheck_cases
