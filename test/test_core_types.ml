(* Unit and property tests for pass_core's basic types: pnodes, values,
   records, bundles, wire round-trips. *)

open Pass_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* --- pnode --------------------------------------------------------------- *)

let test_pnode_fresh_unique () =
  let a = Pnode.allocator ~machine:1 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let p = Pnode.fresh a in
    check tbool "not seen before" false (Hashtbl.mem seen p);
    Hashtbl.add seen p ()
  done

let test_pnode_machine_disjoint () =
  let a = Pnode.allocator ~machine:1 and b = Pnode.allocator ~machine:2 in
  for _ = 1 to 100 do
    let pa = Pnode.fresh a and pb = Pnode.fresh b in
    check tbool "different machines never collide" false (Pnode.equal pa pb);
    check tint "machine tag a" 1 (Pnode.machine_of pa);
    check tint "machine tag b" 2 (Pnode.machine_of pb)
  done

let test_pnode_roundtrip () =
  let a = Pnode.allocator ~machine:7 in
  let p = Pnode.fresh a in
  check tbool "int roundtrip" true (Pnode.equal p (Pnode.of_int (Pnode.to_int p)))

let test_pnode_bad_machine () =
  Alcotest.check_raises "negative machine" (Invalid_argument "Pnode.allocator")
    (fun () -> ignore (Pnode.allocator ~machine:(-1) : Pnode.allocator))

(* --- values -------------------------------------------------------------- *)

let sample_values =
  [
    Pvalue.Str "hello";
    Pvalue.Str "";
    Pvalue.Int 0;
    Pvalue.Int (-42);
    Pvalue.Int max_int;
    Pvalue.Bool true;
    Pvalue.Bool false;
    Pvalue.Bytes (String.init 256 Char.chr);
    Pvalue.Strs [];
    Pvalue.Strs [ "a"; "b"; "c" ];
    Pvalue.xref (Pnode.of_int 12345) 7;
  ]

let test_value_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 32 in
      Pvalue.encode buf v;
      let v' = Pvalue.decode (Buffer.contents buf) (ref 0) in
      check tbool "value roundtrip" true (Pvalue.equal v v'))
    sample_values

let test_value_truncated () =
  let buf = Buffer.create 32 in
  Pvalue.encode buf (Pvalue.Str "hello world");
  let s = Buffer.contents buf in
  let truncated = String.sub s 0 (String.length s - 3) in
  Alcotest.check_raises "truncated" (Pvalue.Corrupt "truncated string (11 bytes)")
    (fun () -> ignore (Pvalue.decode truncated (ref 0) : Pvalue.t))

let test_value_bad_tag () =
  Alcotest.check_raises "bad tag" (Pvalue.Corrupt "bad value tag 99") (fun () ->
      ignore (Pvalue.decode (String.make 4 (Char.chr 99)) (ref 0) : Pvalue.t))

(* --- records ------------------------------------------------------------- *)

let test_record_roundtrip () =
  List.iter
    (fun v ->
      let r = Record.make "SOME_ATTR" v in
      let buf = Buffer.create 32 in
      Record.encode buf r;
      let r' = Record.decode (Buffer.contents buf) (ref 0) in
      check tbool "record roundtrip" true (Record.equal r r'))
    sample_values

let test_record_ancestry () =
  check tbool "xref is ancestry" true (Record.is_ancestry (Record.input_of (Pnode.of_int 1) 0));
  check tbool "name is not ancestry" false (Record.is_ancestry (Record.name "x"))

let test_registry_contents () =
  (* Table 1: every PA application's record types are registered *)
  let expect sys ty = check tbool (sys ^ "/" ^ ty) true (Record.registered ~system:sys ~record_type:ty) in
  expect "PA-NFS" "BEGINTXN";
  expect "PA-NFS" "ENDTXN";
  expect "PA-NFS" "FREEZE";
  expect "PA-Kepler" "TYPE";
  expect "PA-Kepler" "NAME";
  expect "PA-Kepler" "PARAMS";
  expect "PA-Kepler" "INPUT";
  expect "PA-links" "VISITED_URL";
  expect "PA-links" "FILE_URL";
  expect "PA-links" "CURRENT_URL";
  expect "PA-links" "INPUT";
  expect "PA-Python" "TYPE";
  expect "PA-Python" "NAME";
  expect "PA-Python" "INPUT";
  check tbool "unknown not registered" false
    (Record.registered ~system:"PA-NFS" ~record_type:"NO_SUCH")

(* --- bundles ------------------------------------------------------------- *)

let test_bundle_roundtrip () =
  let h1 = Dpapi.handle ~volume:"vol0" (Pnode.of_int 10) in
  let h2 = Dpapi.handle (Pnode.of_int 20) in
  let bundle =
    [
      Dpapi.entry h1 [ Record.name "a.txt"; Record.input_of (Pnode.of_int 20) 3 ];
      Dpapi.entry h2 [ Record.typ "PROCESS" ];
    ]
  in
  let buf = Buffer.create 64 in
  Dpapi.encode_bundle buf bundle;
  let bundle' = Dpapi.decode_bundle (Buffer.contents buf) (ref 0) in
  check tint "entries" 2 (List.length bundle');
  let e1 = List.nth bundle' 0 and e2 = List.nth bundle' 1 in
  check tbool "volume preserved" true (e1.Dpapi.target.volume = Some "vol0");
  check tbool "no volume" true (e2.Dpapi.target.volume = None);
  check tint "records 1" 2 (List.length e1.records);
  check tbool "records equal" true
    (List.for_all2 Record.equal (List.nth bundle 0).Dpapi.records e1.records)

let test_bundle_size_positive () =
  let h = Dpapi.handle (Pnode.of_int 1) in
  let b = [ Dpapi.entry h [ Record.name "n" ] ] in
  check tbool "bundle size sane" true (Dpapi.bundle_size b > 8)

(* --- ctx ----------------------------------------------------------------- *)

let test_ctx_versions () =
  let ctx = Ctx.create ~machine:3 in
  let p = Ctx.fresh ctx in
  check tint "initial version" 0 (Ctx.current_version ctx p);
  let v1 = Ctx.freeze ctx p in
  check tint "first freeze" 1 v1;
  let v2 = Ctx.freeze ctx p in
  check tint "second freeze" 2 v2;
  check tbool "births increase" true (Ctx.birth_at ctx p ~version:2 > Ctx.birth_at ctx p ~version:1);
  check tbool "old version birth retrievable" true
    (Ctx.birth_at ctx p ~version:0 < Ctx.birth_at ctx p ~version:1)

let test_ctx_adopt () =
  let ctx = Ctx.create ~machine:3 in
  let foreign = Pnode.of_int ((9 lsl 40) lor 1) in
  Ctx.adopt ctx foreign ~version:5;
  check tint "adopted version" 5 (Ctx.current_version ctx foreign);
  Ctx.adopt ctx foreign ~version:3;
  check tint "adopt never regresses" 5 (Ctx.current_version ctx foreign)

(* --- libpass -------------------------------------------------------------- *)

let test_libpass_convenience () =
  let ctx = Ctx.create ~machine:4 in
  let s = Helpers.sink ctx in
  let lp = Libpass.connect ~endpoint:(Helpers.sink_endpoint s) ~pid:9 in
  check tint "pid bound" 9 (Libpass.pid lp);
  let obj = Libpass.mkobj ~typ:"DATASET" ~name:"ds-1" lp in
  (* TYPE and NAME were disclosed immediately *)
  let records = Helpers.all_records s in
  check tbool "TYPE disclosed" true
    (List.exists (fun (_, (r : Record.t)) -> r.value = Pvalue.Str "DATASET") records);
  check tbool "NAME disclosed" true
    (List.exists (fun (_, (r : Record.t)) -> r.value = Pvalue.Str "ds-1") records);
  let child = Libpass.mkobj lp in
  Libpass.relate lp ~child ~parent:obj ~parent_version:0;
  check tbool "relate writes an ancestry edge" true
    (List.exists
       (fun ((t : Dpapi.handle), (r : Record.t)) ->
         Pnode.equal t.pnode child.Dpapi.pnode && Record.is_ancestry r)
       (Helpers.all_records s))

let test_libpass_raises () =
  let failing : Dpapi.endpoint =
    {
      pass_read = (fun _ ~off:_ ~len:_ -> Error Dpapi.Enoent);
      pass_write = (fun _ ~off:_ ~data:_ _ -> Error Dpapi.Eio);
      pass_freeze = (fun _ -> Error Dpapi.Einval);
      pass_mkobj = (fun ~volume:_ -> Error Dpapi.Enospc);
      pass_reviveobj = (fun _ _ -> Error Dpapi.Estale);
      pass_sync = (fun _ -> Error Dpapi.Ecrashed);
    }
  in
  let lp = Libpass.connect ~endpoint:failing ~pid:1 in
  let expect_err f =
    match f () with
    | exception Libpass.Pass_error _ -> ()
    | _ -> Alcotest.fail "expected Pass_error"
  in
  expect_err (fun () -> ignore (Libpass.mkobj lp : Dpapi.handle));
  expect_err (fun () -> ignore (Libpass.reviveobj lp (Pnode.of_int 1) 0 : Dpapi.handle));
  expect_err (fun () ->
      ignore (Libpass.read lp (Dpapi.handle (Pnode.of_int 1)) ~off:0 ~len:1 : Dpapi.read_result))

(* --- qcheck properties --------------------------------------------------- *)

let arb_value =
  let open QCheck2.Gen in
  let base =
    oneof
      [
        map (fun s -> Pvalue.Str s) string_printable;
        map (fun i -> Pvalue.Int i) int;
        map (fun b -> Pvalue.Bool b) bool;
        map (fun s -> Pvalue.Bytes s) string_printable;
        map (fun l -> Pvalue.Strs l) (list_size (int_bound 5) string_printable);
        map2 (fun p v -> Pvalue.xref (Pnode.of_int (abs p)) (abs v)) int int;
      ]
  in
  base

let prop_value_roundtrip =
  QCheck2.Test.make ~name:"pvalue encode/decode roundtrip" ~count:500 arb_value (fun v ->
      let buf = Buffer.create 32 in
      Pvalue.encode buf v;
      Pvalue.equal v (Pvalue.decode (Buffer.contents buf) (ref 0)))

let prop_record_roundtrip =
  QCheck2.Test.make ~name:"record encode/decode roundtrip" ~count:500
    QCheck2.Gen.(pair string_printable arb_value)
    (fun (attr, v) ->
      let r = Record.make attr v in
      let buf = Buffer.create 32 in
      Record.encode buf r;
      Record.equal r (Record.decode (Buffer.contents buf) (ref 0)))

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_value_roundtrip; prop_record_roundtrip ]

let suite =
  [
    Alcotest.test_case "pnode: fresh pnodes are unique" `Quick test_pnode_fresh_unique;
    Alcotest.test_case "pnode: machines are disjoint" `Quick test_pnode_machine_disjoint;
    Alcotest.test_case "pnode: int roundtrip" `Quick test_pnode_roundtrip;
    Alcotest.test_case "pnode: bad machine rejected" `Quick test_pnode_bad_machine;
    Alcotest.test_case "pvalue: roundtrip samples" `Quick test_value_roundtrip;
    Alcotest.test_case "pvalue: truncated input detected" `Quick test_value_truncated;
    Alcotest.test_case "pvalue: bad tag detected" `Quick test_value_bad_tag;
    Alcotest.test_case "record: roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "record: ancestry classification" `Quick test_record_ancestry;
    Alcotest.test_case "record: Table 1 registry" `Quick test_registry_contents;
    Alcotest.test_case "bundle: roundtrip" `Quick test_bundle_roundtrip;
    Alcotest.test_case "bundle: encoded size" `Quick test_bundle_size_positive;
    Alcotest.test_case "ctx: versions and births" `Quick test_ctx_versions;
    Alcotest.test_case "ctx: adopt foreign pnodes" `Quick test_ctx_adopt;
    Alcotest.test_case "libpass: conveniences" `Quick test_libpass_convenience;
    Alcotest.test_case "libpass: raises Pass_error" `Quick test_libpass_raises;
  ]
  @ qcheck_cases
