(* End-to-end tests of the simulated OS with the full PASSv2 stack: system
   calls generate provenance, the WAP logs drain into Waldo, and PQL
   queries over the database answer ancestry questions. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let ok = Helpers.ok_fs

(* A process writes a file in 4 KB chunks. *)
let write_file sys ~pid ~path ~data =
  let fd = ok (Kernel.open_file (System.kernel sys) ~pid ~path ~create:true) in
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = min 4096 (len - !pos) in
    ok (Kernel.write (System.kernel sys) ~pid ~fd ~data:(String.sub data !pos n));
    pos := !pos + n
  done;
  ok (Kernel.close (System.kernel sys) ~pid ~fd)

let read_file sys ~pid ~path =
  let fd = ok (Kernel.open_file (System.kernel sys) ~pid ~path ~create:false) in
  let buf = Buffer.create 4096 in
  let rec loop () =
    let chunk = ok (Kernel.read (System.kernel sys) ~pid ~fd ~len:4096) in
    if chunk <> "" then begin
      Buffer.add_string buf chunk;
      loop ()
    end
  in
  loop ();
  ok (Kernel.close (System.kernel sys) ~pid ~fd);
  Buffer.contents buf

let pass_system () = System.create ~mode:System.Pass ~machine:1 ~volume_names:[ "vol0" ] ()

let test_vanilla_has_no_pass () =
  let sys = System.create ~mode:System.Vanilla ~machine:1 ~volume_names:[ "vol0" ] () in
  check tbool "no pass stack" true (Kernel.pass_stack (System.kernel sys) = None);
  let pid = Kernel.fork (System.kernel sys) ~parent:Kernel.init_pid in
  write_file sys ~pid ~path:"/vol0/f" ~data:"hello";
  check tbool "data readable" true (String.equal "hello" (read_file sys ~pid ~path:"/vol0/f"))

let test_process_file_ancestry () =
  let sys = pass_system () in
  let k = System.kernel sys in
  (* writer process creates the input *)
  let writer = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid:writer ~path:"/vol0/input.dat" ~data:(Helpers.payload ~seed:1 ~len:8192);
  ok (Kernel.exit k ~pid:writer);
  (* transformer reads input, writes output *)
  let worker = Kernel.fork k ~parent:Kernel.init_pid in
  let input = read_file sys ~pid:worker ~path:"/vol0/input.dat" in
  write_file sys ~pid:worker ~path:"/vol0/output.dat" ~data:(String.uppercase_ascii input);
  ok (Kernel.exit k ~pid:worker);
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  check tbool "db is acyclic" true (Provdb.is_acyclic db);
  (* output.dat's ancestry must include input.dat through the worker *)
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as Out Out.input* as A where Out.name = "output.dat"|}
  in
  check tbool "ancestry includes input.dat" true (List.mem "input.dat" names)

let test_dedup_collapses_chunked_io () =
  let sys = pass_system () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  (* write 64 KB in 4 KB chunks: 16 write syscalls, one record needed *)
  write_file sys ~pid ~path:"/vol0/big" ~data:(Helpers.payload ~seed:2 ~len:65536);
  let stats =
    match Kernel.pass_stack k with
    | Some s -> Pass_core.Analyzer.stats s.Kernel.analyzer
    | None -> Alcotest.fail "pass stack missing"
  in
  check tbool "duplicates were dropped" true (stats.duplicates_dropped >= 14)

let test_execve_records_argv () =
  let sys = pass_system () in
  let k = System.kernel sys in
  (* install a binary, then exec it *)
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid ~path:"/vol0/bin/cc" ~data:"#binary";
  let cc = Kernel.fork k ~parent:pid in
  ok (Kernel.execve k ~pid:cc ~path:"/vol0/bin/cc" ~argv:[ "cc"; "-O2"; "main.c" ]
        ~env:[ "PATH=/bin" ]);
  write_file sys ~pid:cc ~path:"/vol0/main.o" ~data:"obj";
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  (* main.o descends from the cc binary (via the process) *)
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as O O.input* as A where O.name = "main.o"|}
  in
  check tbool "binary in ancestry" true (List.mem "cc" names);
  (* and the process carries its argv *)
  let rows =
    Helpers.pql_rows db
      {|select P.argv from Provenance.process as P where P.name = "/vol0/bin/cc"|}
  in
  check tint "argv recorded" 1 (List.length rows)

let test_pipeline_provenance () =
  let sys = pass_system () in
  let k = System.kernel sys in
  (* p1 reads src, writes into a pipe; p2 reads the pipe, writes dst *)
  let setup = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid:setup ~path:"/vol0/src" ~data:"pipeline-data";
  let p1 = Kernel.fork k ~parent:Kernel.init_pid in
  let p2 = Kernel.fork k ~parent:Kernel.init_pid in
  let pipe_id = Kernel.pipe k ~pid:p1 in
  let data = read_file sys ~pid:p1 ~path:"/vol0/src" in
  ok (Kernel.pipe_write k ~pid:p1 ~pipe_id ~data);
  let received = ok (Kernel.pipe_read k ~pid:p2 ~pipe_id) in
  write_file sys ~pid:p2 ~path:"/vol0/dst" ~data:received;
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  (* dst <- p2 <- pipe <- p1 <- src *)
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as D D.input* as A where D.name = "dst"|}
  in
  check tbool "pipeline traced back to src" true (List.mem "src" names)

let test_fork_lineage () =
  let sys = pass_system () in
  let k = System.kernel sys in
  let parent = Kernel.fork k ~parent:Kernel.init_pid in
  let child = Kernel.fork k ~parent in
  write_file sys ~pid:child ~path:"/vol0/out" ~data:"x";
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  (* out <- child <- parent: at least two process nodes in ancestry *)
  let rows =
    Helpers.pql_rows db
      {|select count(A) from Provenance.file as O O.input+ as A where O.name = "out"|}
  in
  (match rows with
  | [ [ Pql_eval.Value (Pvalue.Int n) ] ] -> check tbool "at least 3 ancestors" true (n >= 3)
  | _ -> Alcotest.fail "count row expected")

let test_transient_process_not_persisted () =
  (* DESIGN.md invariant 4: a process that writes nothing persistent never
     reaches the database *)
  let sys = pass_system () in
  let k = System.kernel sys in
  let idle = Kernel.fork k ~parent:Kernel.init_pid in
  ok (Kernel.exit k ~pid:idle);
  let busy = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid:busy ~path:"/vol0/file" ~data:"y";
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  (* count process nodes: init-ancestors of busy are anchored; idle is not *)
  let procs =
    List.filter (fun (n : Provdb.node) -> Pql_eval.is_process db n.pnode) (Provdb.all_nodes db)
  in
  (* busy (+ possibly its ancestors via fork edges) but not idle: idle has
     the same parent, so the parent may appear; assert by counting that not
     every forked process is present *)
  check tbool "some processes persisted" true (List.length procs >= 1);
  let stack = Option.get (Kernel.pass_stack k) in
  let idle_handle = Pass_core.Observer.proc_handle stack.Kernel.observer idle in
  check tbool "idle process still cached, not flushed" true
    (Pass_core.Distributor.is_cached_unflushed stack.Kernel.distributor idle_handle.pnode)

let test_unlink_and_metadata_ops () =
  let sys = pass_system () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid ~path:"/vol0/tmp.1" ~data:"temp";
  ok (Kernel.rename k ~pid ~src:"/vol0/tmp.1" ~dst:"/vol0/final");
  check tbool "renamed data" true (String.equal "temp" (read_file sys ~pid ~path:"/vol0/final"));
  write_file sys ~pid ~path:"/vol0/doomed" ~data:"d";
  ok (Kernel.unlink k ~pid ~path:"/vol0/doomed");
  (match Kernel.open_file k ~pid ~path:"/vol0/doomed" ~create:false with
  | Error Vfs.ENOENT -> ()
  | _ -> Alcotest.fail "unlink did not remove");
  check tbool "clock advanced" true (System.elapsed_seconds sys > 0.)

let test_provenance_outlives_deletion () =
  (* the provenance of a deleted file remains queryable: unlink removes
     the data, never the history (the pnode is never recycled) *)
  let sys = pass_system () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid ~path:"/vol0/secret-input" ~data:"ephemeral";
  let data = read_file sys ~pid ~path:"/vol0/secret-input" in
  write_file sys ~pid ~path:"/vol0/derived" ~data:(data ^ "+");
  ok (Kernel.unlink k ~pid ~path:"/vol0/secret-input");
  (match Kernel.open_file k ~pid ~path:"/vol0/secret-input" ~create:false with
  | Error Vfs.ENOENT -> ()
  | _ -> Alcotest.fail "file should be gone");
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as D D.input* as A where D.name = "derived"|}
  in
  check tbool "deleted ancestor still in provenance" true (List.mem "secret-input" names)

let test_pass_slower_than_vanilla () =
  (* the whole point of Table 2: PASS costs time, but not absurdly much *)
  let run mode =
    let sys = System.create ~mode ~machine:1 ~volume_names:[ "vol0" ] () in
    let k = System.kernel sys in
    let pid = Kernel.fork k ~parent:Kernel.init_pid in
    for i = 0 to 30 do
      write_file sys ~pid
        ~path:(Printf.sprintf "/vol0/d%d/f%d" (i mod 4) i)
        ~data:(Helpers.payload ~seed:i ~len:12_000);
      ignore (read_file sys ~pid ~path:(Printf.sprintf "/vol0/d%d/f%d" (i mod 4) i) : string)
    done;
    System.elapsed_seconds sys
  in
  let vanilla = run System.Vanilla and pass = run System.Pass in
  check tbool "pass is slower" true (pass > vanilla);
  check tbool "overhead bounded on a pure-metadata microbenchmark" true
    (pass /. vanilla < 4.0)

let test_app_disclosure_via_libpass () =
  let sys = pass_system () in
  let k = System.kernel sys in
  let pid = Kernel.fork k ~parent:Kernel.init_pid in
  write_file sys ~pid ~path:"/vol0/report.txt" ~data:"report";
  let ep = Option.get (System.app_endpoint sys ~pid) in
  let lp = Libpass.connect ~endpoint:ep ~pid in
  (* the application creates a semantic object (a "data set") and links the
     file to it *)
  let dataset = Libpass.mkobj ~typ:"DATASET" ~name:"experiment-42" lp in
  let file_h = ok (Kernel.handle_of_path k "/vol0/report.txt") in
  Libpass.disclose lp file_h
    [ Record.input (Pvalue.xref dataset.Dpapi.pnode 0) ];
  Libpass.sync lp dataset;
  ignore (System.drain sys : int);
  let db = Option.get (System.waldo_db sys "vol0") in
  let names =
    Helpers.pql_names db
      {|select A from Provenance.file as F F.input* as A where F.name = "report.txt"|}
  in
  check tbool "semantic object in ancestry" true (List.mem "experiment-42" names)

let suite =
  [
    Alcotest.test_case "vanilla mode has no provenance stack" `Quick test_vanilla_has_no_pass;
    Alcotest.test_case "read->write ancestry end-to-end" `Quick test_process_file_ancestry;
    Alcotest.test_case "chunked I/O dedups" `Quick test_dedup_collapses_chunked_io;
    Alcotest.test_case "execve records binary/argv/env" `Quick test_execve_records_argv;
    Alcotest.test_case "shell pipeline provenance" `Quick test_pipeline_provenance;
    Alcotest.test_case "fork lineage" `Quick test_fork_lineage;
    Alcotest.test_case "transient process not persisted" `Quick
      test_transient_process_not_persisted;
    Alcotest.test_case "rename/unlink metadata ops" `Quick test_unlink_and_metadata_ops;
    Alcotest.test_case "provenance outlives deletion" `Quick
      test_provenance_outlives_deletion;
    Alcotest.test_case "PASS overhead bounded vs vanilla" `Quick test_pass_slower_than_vanilla;
    Alcotest.test_case "application disclosure via libpass" `Quick
      test_app_disclosure_via_libpass;
  ]
