(* Shared test helpers: a capturing DPAPI sink endpoint and small utilities. *)

open Pass_core

type sink = {
  mutable writes : (Dpapi.handle * int * string option * Dpapi.bundle) list;
  mutable freezes : Dpapi.handle list;
  mutable synced : Dpapi.handle list;
  ctx : Ctx.t;
}

(* A bottom endpoint that records everything it is asked to do; versions are
   served from the shared ctx so stacked layers agree. *)
let sink ctx = { writes = []; freezes = []; synced = []; ctx }

let sink_endpoint s : Dpapi.endpoint =
  {
    pass_read =
      (fun h ~off:_ ~len:_ ->
        Ok { Dpapi.data = ""; r_pnode = h.pnode; r_version = Ctx.current_version s.ctx h.pnode });
    pass_write =
      (fun h ~off ~data bundle ->
        s.writes <- (h, off, data, bundle) :: s.writes;
        Ok (Ctx.current_version s.ctx h.pnode));
    pass_freeze =
      (fun h ->
        s.freezes <- h :: s.freezes;
        Ok (Ctx.freeze s.ctx h.pnode));
    pass_mkobj = (fun ~volume -> Ok (Dpapi.handle ?volume (Ctx.fresh s.ctx)));
    pass_reviveobj = (fun p _v -> Ok (Dpapi.handle p));
    pass_sync =
      (fun h ->
        s.synced <- h :: s.synced;
        Ok ());
  }

let all_records s =
  List.concat_map
    (fun (_, _, _, bundle) ->
      List.concat_map (fun (e : Dpapi.bundle_entry) -> List.map (fun r -> (e.target, r)) e.records)
      bundle)
    s.writes

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Dpapi.error_to_string e)

let ok_fs = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected fs error: %s" (Vfs.errno_to_string e)

(* Deterministic pseudo-random payloads for file contents. *)
let payload ~seed ~len =
  let st = ref seed in
  String.init len (fun _ ->
      st := (!st * 1103515245) + 12345;
      Char.chr (abs (!st lsr 16) mod 256))

(* Build a fresh one-disk ext3 instance. *)
let fresh_ext3 () =
  let clock = Simdisk.Clock.create () in
  let disk = Simdisk.Disk.create ~clock () in
  (disk, Ext3.format disk)

(* PQL conveniences over the prepared-query engine: one-shot execution
   and the names projection most assertions want. *)
let pql_rows db q = Pql.Engine.execute (Pql.Engine.prepare db q)
let pql_names db q = Pql.names_of_rows db (pql_rows db q)
