(* Observer tests (paper §5.3): translation of each intercepted system
   call into provenance records, and the disclosure entry point that
   augments application pass_writes with the implicit process
   dependency. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

(* observer over analyzer over sink, the real stacking order *)
let setup () =
  let ctx = Ctx.create ~machine:1 in
  let s = Helpers.sink ctx in
  let an = Analyzer.create ~ctx ~lower:(Helpers.sink_endpoint s) () in
  let obs = Observer.create ~ctx ~lower:(Analyzer.endpoint an) () in
  (ctx, s, obs)

let records_of s attr =
  List.filter (fun (_, (r : Record.t)) -> String.equal r.attr attr) (Helpers.all_records s)

let test_fork_creates_lineage () =
  let _ctx, s, obs = setup () in
  Helpers.ok (Observer.fork obs ~parent:1 ~child:2);
  Helpers.ok (Observer.fork obs ~parent:2 ~child:3);
  let parent_h = Observer.proc_handle obs 2 in
  (* child 3 depends on process 2 *)
  let has_edge =
    List.exists
      (fun (_, (r : Record.t)) ->
        match Record.xref_of r with
        | Some x -> Pnode.equal x.pnode parent_h.Dpapi.pnode
        | None -> false)
      (Helpers.all_records s)
  in
  check tbool "fork edge recorded" true has_edge;
  check tbool "PID identity recorded" true (List.length (records_of s Record.Attr.pid) >= 2)

let test_execve_records () =
  let ctx, s, obs = setup () in
  let binary = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
  Helpers.ok
    (Observer.execve obs ~pid:5 ~path:"/bin/sort" ~argv:[ "sort"; "-u" ]
       ~env:[ "LC_ALL=C" ] ~binary);
  check tint "NAME" 1 (List.length (records_of s Record.Attr.name));
  check tint "ARGV" 1 (List.length (records_of s Record.Attr.argv));
  check tint "ENV" 1 (List.length (records_of s Record.Attr.env));
  let proc = Observer.proc_handle obs 5 in
  let binary_edge =
    List.exists
      (fun ((t : Dpapi.handle), (r : Record.t)) ->
        Pnode.equal t.pnode proc.Dpapi.pnode
        && match Record.xref_of r with
           | Some x -> Pnode.equal x.pnode binary.pnode
           | None -> false)
      (Helpers.all_records s)
  in
  check tbool "process depends on binary" true binary_edge

let test_read_returns_data_and_records_dep () =
  let ctx, s, obs = setup () in
  let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
  let r = Helpers.ok (Observer.read obs ~pid:7 ~file:f ~off:0 ~len:64) in
  check tbool "identity returned" true (Pnode.equal r.Dpapi.r_pnode f.pnode);
  let proc = Observer.proc_handle obs 7 in
  let dep =
    List.exists
      (fun ((t : Dpapi.handle), (r : Record.t)) ->
        Pnode.equal t.pnode proc.Dpapi.pnode
        && match Record.xref_of r with Some x -> Pnode.equal x.pnode f.pnode | None -> false)
      (Helpers.all_records s)
  in
  check tbool "process -> file dependency" true dep

let test_write_bundles_data_and_record () =
  let ctx, s, obs = setup () in
  let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
  let _v = Helpers.ok (Observer.write obs ~pid:8 ~file:f ~off:0 ~data:"payload") in
  (* the sink must have seen one write carrying BOTH the data and the
     file<-process record: that is the consistency contract *)
  let coupled =
    List.exists
      (fun (h, _off, data, bundle) ->
        Pnode.equal h.Dpapi.pnode f.pnode
        && data = Some "payload"
        && List.exists
             (fun (e : Dpapi.bundle_entry) ->
               List.exists (fun r -> Record.is_ancestry r) e.records)
             bundle)
      s.writes
  in
  check tbool "data and provenance travel together" true coupled

let test_pipes () =
  let _ctx, s, obs = setup () in
  Helpers.ok (Observer.pipe_create obs ~pid:1 ~pipe_id:10);
  Helpers.ok (Observer.pipe_write obs ~pid:1 ~pipe_id:10);
  Helpers.ok (Observer.pipe_read obs ~pid:2 ~pipe_id:10);
  (* pipe <- p1 and p2 <- pipe *)
  check tbool "pipe typed" true
    (List.exists (fun (_, (r : Record.t)) -> r.value = Pvalue.Str "PIPE") (Helpers.all_records s));
  (match Observer.pipe_write obs ~pid:1 ~pipe_id:99 with
  | Error Dpapi.Ebadf -> ()
  | _ -> Alcotest.fail "unknown pipe must be EBADF")

let test_mmap_writable_is_bidirectional () =
  let ctx, s, obs = setup () in
  let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
  Helpers.ok (Observer.mmap obs ~pid:3 ~file:f ~writable:true);
  let proc = Observer.proc_handle obs 3 in
  let edge ~src ~dst =
    List.exists
      (fun ((t : Dpapi.handle), (r : Record.t)) ->
        Pnode.equal t.pnode src
        && match Record.xref_of r with Some x -> Pnode.equal x.pnode dst | None -> false)
      (Helpers.all_records s)
  in
  check tbool "proc -> file" true (edge ~src:proc.Dpapi.pnode ~dst:f.pnode);
  check tbool "file -> proc" true (edge ~src:f.pnode ~dst:proc.Dpapi.pnode)

let test_endpoint_for_adds_implicit_record () =
  let ctx, s, obs = setup () in
  let ep = Observer.endpoint_for obs ~pid:4 in
  let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
  (* application discloses ONLY a semantic record with its data write *)
  let _v =
    Helpers.ok
      (ep.pass_write f ~off:0 ~data:(Some "d")
         [ Dpapi.entry f [ Record.make "FILE_URL" (Pvalue.Str "http://x/") ] ])
  in
  let proc = Observer.proc_handle obs 4 in
  let implicit =
    List.exists
      (fun ((t : Dpapi.handle), (r : Record.t)) ->
        Pnode.equal t.pnode f.pnode
        && match Record.xref_of r with
           | Some x -> Pnode.equal x.pnode proc.Dpapi.pnode
           | None -> false)
      (Helpers.all_records s)
  in
  check tbool "implicit process record added to disclosed write" true implicit;
  check tbool "disclosed record kept" true
    (List.exists (fun (_, (r : Record.t)) -> r.attr = "FILE_URL") (Helpers.all_records s))

let test_event_counting () =
  let ctx, _s, obs = setup () in
  let f = Dpapi.handle ~volume:"v" (Ctx.fresh ctx) in
  Helpers.ok (Observer.fork obs ~parent:1 ~child:2);
  ignore
    (Helpers.ok (Observer.read obs ~pid:2 ~file:f ~off:0 ~len:1) : Dpapi.read_result);
  Helpers.ok (Observer.exit obs ~pid:2);
  check tint "events counted" 3 (Observer.stats obs).events

let suite =
  [
    Alcotest.test_case "fork creates lineage" `Quick test_fork_creates_lineage;
    Alcotest.test_case "execve records name/argv/env/binary" `Quick test_execve_records;
    Alcotest.test_case "read returns identity and records dep" `Quick
      test_read_returns_data_and_records_dep;
    Alcotest.test_case "write couples data with provenance" `Quick
      test_write_bundles_data_and_record;
    Alcotest.test_case "pipes" `Quick test_pipes;
    Alcotest.test_case "writable mmap is bidirectional" `Quick
      test_mmap_writable_is_bidirectional;
    Alcotest.test_case "disclosure adds implicit process record" `Quick
      test_endpoint_for_adds_implicit_record;
    Alcotest.test_case "event counting" `Quick test_event_counting;
  ]
