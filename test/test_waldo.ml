(* Waldo tests: log ingestion fidelity, FREEZE-driven version attribution,
   transaction buffering/commit, orphan discarding, log-file cleanup, and
   database merging / size accounting. *)

open Pass_core

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let fresh () =
  let clock = Simdisk.Clock.create () in
  let disk = Simdisk.Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0"
      ~charge:(Simdisk.Clock.advance clock) ()
  in
  let waldo = Waldo.create ~lower:(Ext3.ops ext3) () in
  Waldo.attach waldo lasagna;
  (ctx, ext3, lasagna, waldo)

let test_ingestion_fidelity () =
  let ctx, _ext3, lasagna, waldo = fresh () in
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  let records =
    [ Record.typ "WIDGET"; Record.name "the-widget";
      Record.make "PARAMS" (Pvalue.Strs [ "a=1"; "b=2" ]) ]
  in
  Helpers.ok (Dpapi.disclose ep h records);
  ignore (Waldo.finalize waldo lasagna : int);
  let db = Waldo.db waldo in
  let quads = Provdb.records_all db h.Dpapi.pnode in
  check tint "all records ingested" 3 (List.length quads);
  check tbool "content preserved" true
    (List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "the-widget") quads);
  check tint "stats count" 3 (Waldo.stats waldo).records_ingested;
  ignore (ctx : Ctx.t)

let test_freeze_version_attribution () =
  let ctx, _ext3, lasagna, waldo = fresh () in
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  Helpers.ok (Dpapi.disclose ep h [ Record.name "before" ]);
  ignore (Helpers.ok (ep.pass_freeze h) : int);
  Helpers.ok (Dpapi.disclose ep h [ Record.make "PARAMS" (Pvalue.Str "after") ]);
  ignore (Waldo.finalize waldo lasagna : int);
  let db = Waldo.db waldo in
  let v0 = Provdb.records_at db h.Dpapi.pnode ~version:0 in
  let v1 = Provdb.records_at db h.Dpapi.pnode ~version:1 in
  check tbool "pre-freeze record at v0" true
    (List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "before") v0);
  check tbool "freeze marker at v1" true
    (List.exists (fun (q : Provdb.quad) -> q.q_attr = Record.Attr.freeze) v1);
  check tbool "post-freeze record at v1" true
    (List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "after") v1);
  ignore (ctx : Ctx.t)

let test_logs_removed_after_processing () =
  let _ctx, ext3, lasagna, waldo = fresh () in
  let ep = Lasagna.endpoint lasagna in
  for i = 0 to 30 do
    let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
    Helpers.ok (Dpapi.disclose ep h [ Record.name (Printf.sprintf "obj%d" i) ])
  done;
  ignore (Waldo.finalize waldo lasagna : int);
  (* only the freshly opened active log remains in .pass *)
  let lower = Ext3.ops ext3 in
  let pass_dir = Helpers.ok_fs (Vfs.lookup_path lower "/.pass") in
  let names = Helpers.ok_fs (lower.readdir pass_dir) in
  check tbool "processed logs were deleted" true (List.length names <= 1);
  check tbool "logs were processed" true ((Waldo.stats waldo).logs_processed >= 1)

let test_txn_commit () =
  let _ctx, _ext3, lasagna, waldo = fresh () in
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  (* write two chunks inside txn 7, then the ENDTXN *)
  let chunk recs = [ Dpapi.entry h recs ] in
  ignore
    (Helpers.ok
       (Lasagna.write_txn_bundle ~txn:7 lasagna h ~off:0 ~data:None
          (chunk [ Record.make "PARAMS" (Pvalue.Str "one") ]))
      : int);
  ignore
    (Helpers.ok
       (Lasagna.write_txn_bundle ~txn:7 lasagna h ~off:0 ~data:None
          (chunk [ Record.make "PARAMS" (Pvalue.Str "two") ]))
      : int);
  ignore
    (Helpers.ok
       (Lasagna.write_txn_bundle ~txn:7 lasagna h ~off:0 ~data:None
          (chunk [ Record.make Record.Attr.endtxn (Pvalue.Int 7) ]))
      : int);
  let orphans = Waldo.finalize waldo lasagna in
  check tint "no orphans" 0 orphans;
  check tint "txn committed" 1 (Waldo.stats waldo).txns_committed;
  let quads = Provdb.records_all (Waldo.db waldo) h.Dpapi.pnode in
  check tbool "txn contents ingested" true
    (List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "one") quads
    && List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "two") quads)

let test_txn_orphan () =
  let _ctx, _ext3, lasagna, waldo = fresh () in
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  ignore
    (Helpers.ok
       (Lasagna.write_txn_bundle ~txn:9 lasagna h ~off:0 ~data:None
          [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str "never") ] ])
      : int);
  let orphans = Waldo.finalize waldo lasagna in
  check tint "one orphan" 1 orphans;
  let quads = Provdb.records_all (Waldo.db waldo) h.Dpapi.pnode in
  check tbool "orphan contents dropped" false
    (List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str "never") quads)

let test_interleaved_txns () =
  (* two transactions interleaved in the log; one commits, one orphans *)
  let _ctx, _ext3, lasagna, waldo = fresh () in
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  let send txn tag =
    ignore
      (Helpers.ok
         (Lasagna.write_txn_bundle ~txn lasagna h ~off:0 ~data:None
            [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str tag) ] ])
        : int)
  in
  send 1 "a1";
  send 2 "b1";
  send 1 "a2";
  ignore
    (Helpers.ok
       (Lasagna.write_txn_bundle ~txn:1 lasagna h ~off:0 ~data:None
          [ Dpapi.entry h [ Record.make Record.Attr.endtxn (Pvalue.Int 1) ] ])
      : int);
  let orphans = Waldo.finalize waldo lasagna in
  check tint "txn 2 orphaned" 1 orphans;
  let quads = Provdb.records_all (Waldo.db waldo) h.Dpapi.pnode in
  let has tag = List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Str tag) quads in
  check tbool "committed chunks present" true (has "a1" && has "a2");
  check tbool "orphan chunks absent" false (has "b1")

let test_merge_into () =
  let db1 = Provdb.create () in
  let db2 = Provdb.create () in
  let alloc = Pnode.allocator ~machine:5 in
  let a = Pnode.fresh alloc and b = Pnode.fresh alloc in
  Provdb.set_file db1 a ~name:"a.txt";
  Provdb.set_file db2 b ~name:"b.txt";
  Provdb.add_record db2 b ~version:0 (Record.input_of a 0);
  let merged = Provdb.create () in
  Provdb.merge_into ~dst:merged ~src:db1;
  Provdb.merge_into ~dst:merged ~src:db2;
  check tint "both names findable" 1 (List.length (Provdb.find_by_name merged "a.txt"));
  check tbool "cross-db edge intact" true
    (List.exists (fun (_, (x : Pvalue.xref)) -> Pnode.equal x.pnode a)
       (Provdb.out_edges merged b ~version:0));
  check tbool "merged acyclic" true (Provdb.is_acyclic merged)

let test_persist_and_load () =
  let _ctx, ext3, lasagna, waldo = fresh () in
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  Helpers.ok
    (Dpapi.disclose ep h
       [ Record.name "persisted-obj"; Record.make "PARAMS" (Pvalue.Strs [ "x"; "y" ]) ]);
  ignore (Waldo.finalize waldo lasagna : int);
  (* daemon writes its database to disk and "restarts" *)
  Helpers.ok_fs (Waldo.persist waldo ~dir:"/waldo-db");
  let reborn = Helpers.ok_fs (Waldo.load ~lower:(Ext3.ops ext3) ~dir:"/waldo-db" ()) in
  let db = Waldo.db reborn in
  check tint "name index rebuilt" 1 (List.length (Provdb.find_by_name db "persisted-obj"));
  let quads = Provdb.records_all db h.Dpapi.pnode in
  check tint "records preserved" 2 (List.length quads);
  check tbool "values intact" true
    (List.exists (fun (q : Provdb.quad) -> q.q_value = Pvalue.Strs [ "x"; "y" ]) quads)

let test_provdb_serialize_roundtrip () =
  let db, _, _, _, out, _ = Test_pql.sample_db () in
  let image = Provdb.serialize db in
  let db2 = Provdb.deserialize image in
  check tint "node count preserved" (Provdb.node_count db) (Provdb.node_count db2);
  check tint "quad count preserved" (Provdb.quad_count db) (Provdb.quad_count db2);
  check tbool "edges preserved" true
    (Provdb.out_edges db2 out ~version:0 = Provdb.out_edges db out ~version:0);
  check tbool "acyclic preserved" true (Provdb.is_acyclic db2);
  (* corrupt images are rejected *)
  (match Provdb.deserialize "garbage-bytes" with
  | exception Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "corrupt image accepted")

let test_size_accounting () =
  let db = Provdb.create () in
  let alloc = Pnode.allocator ~machine:6 in
  let p = Pnode.fresh alloc in
  Provdb.set_file db p ~name:"sized.bin";
  let before_db = Provdb.db_bytes db and before_idx = Provdb.index_bytes db in
  for i = 0 to 99 do
    Provdb.add_record db p ~version:i (Record.make "PARAMS" (Pvalue.Str (string_of_int i)))
  done;
  check tbool "db bytes grow" true (Provdb.db_bytes db > before_db + 1000);
  check tbool "index bytes grow" true (Provdb.index_bytes db > before_idx + 1000);
  (* re-ingesting records at an already-indexed (pnode, version, attr)
     must not grow the attr index: postings are deduplicated at insert *)
  let idx = Provdb.index_bytes db in
  Provdb.add_record db p ~version:0 (Record.make "PARAMS" (Pvalue.Str "dup"));
  check tint "duplicate posting not re-indexed" idx (Provdb.index_bytes db);
  check tint "attr cardinality is distinct entries" 100 (Provdb.attr_cardinality db "params");
  check tint "total = db + idx" (Provdb.total_bytes db)
    (Provdb.db_bytes db + Provdb.index_bytes db)

let test_index_accessors () =
  let db, in1, _in2, proc, out, _ = Test_pql.sample_db () in
  (* the attribute index finds every (pnode, version) carrying an attr *)
  let freezes = Provdb.with_attr db Record.Attr.freeze in
  check tint "one FREEZE occurrence" 1 (List.length freezes);
  check tbool "freeze is on out v1" true (List.mem (out, 1) freezes);
  (* point lookup of an attribute value *)
  (match Provdb.attr_value db proc ~version:0 "NAME" with
  | Some (Pvalue.Str "kepler") -> ()
  | _ -> Alcotest.fail "attr_value NAME");
  check tbool "missing attr is None" true
    (Provdb.attr_value db in1 ~version:0 "ARGV" = None);
  (* reverse index includes the referenced version *)
  let refs = Provdb.in_edges db in1 in
  check tbool "in_edges carries referenced version" true
    (List.exists (fun (src, _sv, attr, dv) -> src = proc && attr = "INPUT" && dv = 0) refs)

let test_opm_export () =
  let db, in1, _in2, proc, out, _ = Test_pql.sample_db () in
  let graph = Opm.export db in
  check Alcotest.string "root element" "opmGraph" graph.Sxml.tag;
  let arts = Option.get (Sxml.first_child graph "artifacts") in
  let procs = Option.get (Sxml.first_child graph "processes") in
  let deps = Option.get (Sxml.first_child graph "dependencies") in
  (* 4 files (out has 2 versions -> 5 artifact entries) *)
  check tint "artifact count" 5 (List.length (Sxml.children_named arts "artifact"));
  check tint "process count" 1 (List.length (Sxml.children_named procs "process"));
  (* out v0 <- kepler  =>  wasGeneratedBy; kepler <- in1  =>  used *)
  check tbool "wasGeneratedBy present" true
    (Sxml.children_named deps "wasGeneratedBy" <> []);
  check tbool "used present" true (Sxml.children_named deps "used" <> []);
  check tbool "version edge is wasDerivedFrom" true
    (Sxml.children_named deps "wasDerivedFrom" <> []);
  (* the export is well-formed XML: parse it back *)
  let reparsed = Sxml.parse (Opm.to_string db) in
  check Alcotest.string "reparses" "opmGraph" reparsed.Sxml.tag;
  ignore (in1, proc, out : Pnode.t * Pnode.t * Pnode.t)

(* ------------------------------------------------------------------ *)
(* Checkpoint era: crash-safe persist, retention policies, truncation,
   and bounded recovery.  These rigs expose the disk so tests can pull
   the plug at a chosen write tick. *)

let fresh_ckpt ?policy ?compact_keep ?(log_max = 512) () =
  let clock = Simdisk.Clock.create () in
  let disk = Simdisk.Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~log_max ~lower:(Ext3.ops ext3) ~ctx ~volume:"vol0"
      ~charge:(Simdisk.Clock.advance clock) ()
  in
  let waldo = Waldo.create ?policy ?compact_keep ~lower:(Ext3.ops ext3) () in
  Waldo.attach waldo lasagna;
  ignore (ctx : Ctx.t);
  (disk, ext3, lasagna, waldo)

let pass_logs lower =
  match Vfs.lookup_path lower "/.pass" with
  | Error _ -> []
  | Ok dir ->
      List.filter
        (fun n -> Checkpoint.log_seq n <> None)
        (Helpers.ok_fs (lower.Vfs.readdir dir))

(* Satellite regression: persist stages the image and renames it into
   place, so a crash at ANY write tick of a re-persist leaves a fully
   loadable image — the old one or the new one, never a torn hybrid. *)
let test_persist_atomic_under_crash () =
  let populate () =
    let disk, ext3, lasagna, waldo = fresh_ckpt () in
    let ep = Lasagna.endpoint lasagna in
    let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
    Helpers.ok
      (Dpapi.disclose ep h
         [ Record.name "stable"; Record.make "PARAMS" (Pvalue.Str "v1") ]);
    ignore (Waldo.finalize waldo lasagna : int);
    Helpers.ok_fs (Waldo.persist waldo ~dir:"/waldo-db");
    (* mutate the db so the second image differs from the first *)
    Provdb.add_record (Waldo.db waldo) h.Dpapi.pnode ~version:0
      (Record.make "PARAMS" (Pvalue.Str "v2"));
    (disk, ext3, waldo, h)
  in
  (* measure how many block writes a clean re-persist costs *)
  let persist_writes =
    let disk, _ext3, waldo, _h = populate () in
    let before = (Simdisk.Disk.stats disk).writes in
    Helpers.ok_fs (Waldo.persist waldo ~dir:"/waldo-db");
    (Simdisk.Disk.stats disk).writes - before
  in
  check tbool "re-persist issues writes" true (persist_writes > 0);
  for k = 1 to persist_writes do
    let disk, _ext3, waldo, h = populate () in
    Simdisk.Disk.schedule_crash disk ~after_writes:k;
    (match Waldo.persist waldo ~dir:"/waldo-db" with
    | Ok () | Error _ -> ());
    Simdisk.Disk.revive disk;
    let ext3 = Ext3.mount disk in
    let reborn = Helpers.ok_fs (Waldo.load ~lower:(Ext3.ops ext3) ~dir:"/waldo-db" ()) in
    let quads = Provdb.records_all (Waldo.db reborn) h.Dpapi.pnode in
    let n = List.length quads in
    if n <> 2 && n <> 3 then
      Alcotest.failf "crash at write %d: image has %d records (want 2 or 3)" k n
  done;
  (* a tampered image is rejected outright, never half-loaded *)
  let _disk, ext3, _waldo, _h = populate () in
  let lower = Ext3.ops ext3 in
  ignore (Helpers.ok_fs (Vfs.write_file lower "/waldo-db/db.dat" "garbage") : Vfs.ino);
  match Waldo.load ~lower ~dir:"/waldo-db" () with
  | Error Vfs.EIO -> ()
  | Ok _ -> Alcotest.fail "tampered image accepted"
  | Error e -> Alcotest.failf "unexpected errno %s" (Vfs.errno_to_string e)

let test_manual_checkpoint_truncates () =
  let _disk, ext3, lasagna, waldo =
    fresh_ckpt ~policy:Waldo.Manual ~log_max:256 ()
  in
  let ep = Lasagna.endpoint lasagna in
  for i = 0 to 30 do
    let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
    Helpers.ok (Dpapi.disclose ep h [ Record.name (Printf.sprintf "obj%d" i) ])
  done;
  ignore (Waldo.finalize waldo lasagna : int);
  let lower = Ext3.ops ext3 in
  let retained = pass_logs lower in
  check tbool "Manual policy retains processed logs" true (List.length retained > 1);
  Helpers.ok_fs (Waldo.checkpoint waldo);
  let after = pass_logs lower in
  check tbool "checkpoint truncates covered logs" true
    (List.length after < List.length retained);
  match Helpers.ok_fs (Checkpoint.read_manifest lower ~dir:"/.waldo") with
  | None -> Alcotest.fail "manifest missing after checkpoint"
  | Some m ->
      check tint "first generation" 1 m.Checkpoint.m_gen;
      check tbool "watermark advanced" true (m.Checkpoint.m_watermark >= 1);
      List.iter
        (fun n ->
          match Checkpoint.log_seq n with
          | Some s when s < m.Checkpoint.m_watermark ->
              Alcotest.failf "covered log %s survived truncation" n
          | _ -> ())
        after

let test_every_frames_auto_checkpoint () =
  let _disk, ext3, lasagna, waldo =
    fresh_ckpt ~policy:(Waldo.Every_frames 8) ~log_max:256 ()
  in
  let ep = Lasagna.endpoint lasagna in
  for i = 0 to 40 do
    let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
    Helpers.ok (Dpapi.disclose ep h [ Record.name (Printf.sprintf "auto%d" i) ])
  done;
  ignore (Waldo.finalize waldo lasagna : int);
  match Helpers.ok_fs (Checkpoint.read_manifest (Ext3.ops ext3) ~dir:"/.waldo") with
  | Some m -> check tbool "auto checkpoint committed" true (m.Checkpoint.m_gen >= 1)
  | None -> Alcotest.fail "Every_frames never checkpointed"

(* Full round trip: version history -> checkpoint (with compaction to a
   cold archive) -> suffix traffic -> crash -> recover.  The recovered
   graph, after faulting the archive back in, must serialize to exactly
   the pre-crash bytes, and the recovery report must show a bounded
   (suffix-only) replay. *)
let test_checkpoint_recover_roundtrip () =
  let disk, _ext3, lasagna, waldo =
    fresh_ckpt ~policy:Waldo.Manual ~compact_keep:1 ~log_max:256 ()
  in
  let ep = Lasagna.endpoint lasagna in
  let hs =
    Array.init 4 (fun i ->
        let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
        Helpers.ok (Dpapi.disclose ep h [ Record.name (Printf.sprintf "ck%d" i) ]);
        h)
  in
  for round = 1 to 3 do
    Array.iter
      (fun h ->
        Helpers.ok (Dpapi.disclose ep h [ Record.make "PARAMS" (Pvalue.Int round) ]);
        ignore (Helpers.ok (ep.pass_freeze h) : int))
      hs
  done;
  ignore (Waldo.finalize waldo lasagna : int);
  Helpers.ok_fs (Waldo.checkpoint waldo);
  (* post-checkpoint suffix traffic, committed to its own log *)
  Helpers.ok (Dpapi.disclose ep hs.(0) [ Record.make "PARAMS" (Pvalue.Str "suffix") ]);
  Lasagna.flush_log lasagna;
  Waldo.fault_in_archive waldo;
  let reference = Provdb.serialize (Waldo.db waldo) in
  Simdisk.Disk.crash disk;
  Simdisk.Disk.revive disk;
  let ext3 = Ext3.mount disk in
  let w2, info = Helpers.ok_fs (Waldo.recover ~lower:(Ext3.ops ext3) ()) in
  check tbool "manifest found" true info.Waldo.ri_manifest;
  check tint "recovered generation" 1 info.Waldo.ri_gen;
  check tint "covered logs already truncated" 0 info.Waldo.ri_logs_skipped;
  check tbool "suffix logs replayed" true (info.Waldo.ri_logs_replayed >= 1);
  check tbool "replay is bounded to the suffix" true (info.Waldo.ri_frames_replayed <= 4);
  check tbool "archive segment registered" true (info.Waldo.ri_archives >= 1);
  check tbool "cold tier not loaded eagerly" false (Provdb.cold_loaded (Waldo.db w2));
  Waldo.fault_in_archive w2;
  check tbool "recovered graph equals pre-crash graph" true
    (String.equal reference (Provdb.serialize (Waldo.db w2)))

let suite =
  [
    Alcotest.test_case "ingestion fidelity" `Quick test_ingestion_fidelity;
    Alcotest.test_case "FREEZE drives version attribution" `Quick
      test_freeze_version_attribution;
    Alcotest.test_case "processed logs are removed" `Quick test_logs_removed_after_processing;
    Alcotest.test_case "transaction commit" `Quick test_txn_commit;
    Alcotest.test_case "transaction orphan discarded" `Quick test_txn_orphan;
    Alcotest.test_case "interleaved transactions" `Quick test_interleaved_txns;
    Alcotest.test_case "database merge" `Quick test_merge_into;
    Alcotest.test_case "persist/load across daemon restart" `Quick test_persist_and_load;
    Alcotest.test_case "provdb serialize roundtrip" `Quick test_provdb_serialize_roundtrip;
    Alcotest.test_case "size accounting" `Quick test_size_accounting;
    Alcotest.test_case "index accessors" `Quick test_index_accessors;
    Alcotest.test_case "OPM export" `Quick test_opm_export;
    Alcotest.test_case "persist is crash-atomic" `Quick test_persist_atomic_under_crash;
    Alcotest.test_case "Manual checkpoint truncates covered logs" `Quick
      test_manual_checkpoint_truncates;
    Alcotest.test_case "Every_frames auto-checkpoints" `Quick
      test_every_frames_auto_checkpoint;
    Alcotest.test_case "checkpoint/recover round trip" `Quick
      test_checkpoint_recover_roundtrip;
  ]
