(* pvcheck: the offline verifier finds nothing on volumes built by the
   real stack, and a volume seeded with corruption class C yields
   findings from exactly C's pass — both directions of the fsck
   contract. *)

open Pass_core

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let fail_report what report =
  Alcotest.failf "%s:@ %a" what Pvcheck.pp_report report

(* --- clean volumes: every tier-1 workload -------------------------------- *)

let workload_db (w : Runner.workload) =
  let sys = Runner.local_system System.Pass in
  w.Runner.run sys;
  ignore (System.drain sys : int);
  Option.get (System.waldo_db sys "vol0")

let test_clean_workloads () =
  List.iter
    (fun (w : Runner.workload) ->
      let db = workload_db w in
      let report = Pvcheck.check_db ~volume:"vol0" db in
      if not (Pvcheck.clean report) then
        fail_report (w.Runner.wl_name ^ ": clean volume flagged") report;
      check tbool (w.Runner.wl_name ^ ": graph nonempty") true (report.Pvcheck.r_nodes > 0);
      (* all five graph passes ran (no orphan inputs in check_db) *)
      check tint (w.Runner.wl_name ^ ": passes ran") 5
        (List.length report.Pvcheck.r_passes))
    (Runner.standard ~scale:0.12 ())

(* --- mutation harness: each corruption class trips exactly its pass ------- *)

let mutation_case db clazz =
  let cname = Pvmutate.name clazz in
  let before = Pvcheck.check_db db in
  if not (Pvcheck.clean before) then fail_report (cname ^ ": dirty before injection") before;
  let desc = Pvmutate.inject db clazz in
  let report = Pvcheck.check_db db in
  let expected = Pvmutate.flagged_by clazz in
  check tbool
    (Printf.sprintf "%s (%s): detected" cname desc)
    true
    (report.Pvcheck.r_findings <> []);
  List.iter
    (fun (f : Pvcheck.finding) ->
      check tstr (cname ^ ": flagged by its own pass only") expected f.Pvcheck.f_pass)
    report.Pvcheck.r_findings

let test_mutations_on_handbuilt () =
  List.iter
    (fun clazz ->
      let db, _, _, _, _, _ = Test_pql.sample_db () in
      mutation_case db clazz)
    Pvmutate.all

let test_mutations_on_workload () =
  (* the same property over a graph the production stack built *)
  let wl =
    List.find
      (fun (w : Runner.workload) -> String.equal w.Runner.wl_name "Mercurial Activity")
      (Runner.standard ~scale:0.05 ())
  in
  List.iter (fun clazz -> mutation_case (workload_db wl) clazz) Pvmutate.all

let test_class_names_roundtrip () =
  List.iter
    (fun clazz ->
      check tbool (Pvmutate.name clazz ^ " roundtrips") true
        (Pvmutate.of_name (Pvmutate.name clazz) = Some clazz);
      check tbool
        (Pvmutate.name clazz ^ " targets a real pass")
        true
        (List.mem (Pvmutate.flagged_by clazz) Pvcheck.pass_names))
    Pvmutate.all

(* --- offline fsck: persisted db + live WAP log + recovery agreement ------- *)

let test_fsck_offline () =
  let clock = Simdisk.Clock.create () in
  let disk = Simdisk.Disk.create ~clock () in
  let ext3 = Ext3.format disk in
  let lower = Ext3.ops ext3 in
  let ctx = Ctx.create ~machine:1 in
  let lasagna =
    Lasagna.create ~lower ~ctx ~volume:"vol0" ~charge:(Simdisk.Clock.advance clock) ()
  in
  let waldo = Waldo.create ~lower () in
  Waldo.attach waldo lasagna;
  let ep = Lasagna.endpoint lasagna in
  let h = Helpers.ok (ep.pass_mkobj ~volume:(Some "vol0")) in
  Helpers.ok (Dpapi.disclose ep h [ Record.name "offline.dat" ]);
  ignore (Waldo.finalize waldo lasagna : int);
  Helpers.ok_fs (Waldo.persist waldo ~dir:"/.waldo");
  (* leave an unfinished transaction in a live log: fsck must replay it
     and find Recovery and Waldo agreeing that it is orphaned *)
  ignore
    (Helpers.ok
       (Lasagna.write_txn_bundle ~txn:3 lasagna h ~off:0 ~data:None
          [ Dpapi.entry h [ Record.make "PARAMS" (Pvalue.Str "late") ] ])
      : int);
  let report = Helpers.ok_fs (Pvcheck.fsck ~lower ~volume:"vol0" ()) in
  check tbool "orphan-agreement ran" true
    (List.mem "orphan-agreement" report.Pvcheck.r_passes);
  if not (Pvcheck.clean report) then fail_report "offline fsck flagged a clean volume" report;
  check tbool "replayed log contributed records" true (report.Pvcheck.r_quads > 0)

let test_fsck_empty_volume () =
  let disk = Simdisk.Disk.create ~clock:(Simdisk.Clock.create ()) () in
  let ext3 = Ext3.format disk in
  let report = Helpers.ok_fs (Pvcheck.fsck ~lower:(Ext3.ops ext3) ~volume:"vol0" ()) in
  check tbool "empty volume is clean" true (Pvcheck.clean report);
  check tint "no nodes" 0 report.Pvcheck.r_nodes

let test_report_json_shape () =
  let db, _, _, _, _, _ = Test_pql.sample_db () in
  ignore (Pvmutate.inject db Pvmutate.Dangling_xref : string);
  let report = Pvcheck.check_db ~volume:"vol0" db in
  let json = Pvcheck.report_to_json report in
  let open Telemetry.Json in
  (match member "schema" json with
  | Some (Str "pvcheck/v1") -> ()
  | _ -> Alcotest.fail "schema tag");
  (match member "findings" json with
  | Some (List (_ :: _)) -> ()
  | _ -> Alcotest.fail "findings list");
  (* the report renders and parses back *)
  check tbool "json roundtrips" true (of_string (to_string json) = json)

let test_telemetry_counters () =
  let registry = Telemetry.create () in
  let db, _, _, _, _, _ = Test_pql.sample_db () in
  ignore (Pvcheck.check_db ~registry db : Pvcheck.report);
  ignore (Pvmutate.inject db Pvmutate.Cycle : string);
  ignore (Pvcheck.check_db ~registry db : Pvcheck.report);
  let v name =
    match Telemetry.counter_value registry name with
    | Some n -> n
    | None -> Alcotest.failf "missing counter %s" name
  in
  check tint "two runs counted" 2 (v "pvcheck.runs");
  check tbool "findings counted" true (v "pvcheck.findings" > 0)

let suite =
  [
    Alcotest.test_case "clean on all tier-1 workloads" `Slow test_clean_workloads;
    Alcotest.test_case "mutations flagged (hand-built db)" `Quick test_mutations_on_handbuilt;
    Alcotest.test_case "mutations flagged (workload db)" `Slow test_mutations_on_workload;
    Alcotest.test_case "class names roundtrip" `Quick test_class_names_roundtrip;
    Alcotest.test_case "offline fsck with live log" `Quick test_fsck_offline;
    Alcotest.test_case "offline fsck on empty volume" `Quick test_fsck_empty_volume;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape;
    Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
  ]
