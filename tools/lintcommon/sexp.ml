type t = Atom of string | List of t list

exception Parse_error of string * int

let fail msg pos = raise (Parse_error (msg, pos))

let parse_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_blank () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_blank ()
    | Some ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          advance ()
        done;
        skip_blank ()
    | _ -> ()
  in
  let quoted_atom () =
    let start = !pos in
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string" start
      | Some '"' ->
          advance ();
          Buffer.contents buf
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some c -> Buffer.add_char buf c
          | None -> fail "unterminated escape" start);
          advance ();
          go ()
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let bare_atom () =
    let start = !pos in
    let stop = function
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"' -> true
      | _ -> false
    in
    while !pos < n && not (stop src.[!pos]) do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec sexp () =
    skip_blank ();
    match peek () with
    | None -> fail "unexpected end of input" !pos
    | Some '(' ->
        let start = !pos in
        advance ();
        let items = ref [] in
        let rec elems () =
          skip_blank ();
          match peek () with
          | None -> fail "unterminated list" start
          | Some ')' -> advance ()
          | Some _ ->
              items := sexp () :: !items;
              elems ()
        in
        elems ();
        List (List.rev !items)
    | Some ')' -> fail "unexpected )" !pos
    | Some '"' -> Atom (quoted_atom ())
    | Some _ -> Atom (bare_atom ())
  in
  let out = ref [] in
  let rec top () =
    skip_blank ();
    if !pos < n then begin
      out := sexp () :: !out;
      top ()
    end
  in
  top ();
  List.rev !out

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  try parse_string src
  with Parse_error (msg, p) -> fail (path ^ ": " ^ msg) p

let atom = function Atom s -> Some s | List _ -> None

let strings = function
  | Atom _ -> []
  | List items -> List.filter_map atom items

let field name items =
  List.find_map
    (function
      | List (Atom head :: tail) when String.equal head name -> Some tail
      | _ -> None)
    items

let field_strings name items =
  match field name items with
  | None -> []
  | Some tail -> List.filter_map atom tail
