let skip_dirs = [ "_build"; ".git"; "_opam"; ".claude"; "fixtures" ]

let rec walk_one ~suffix acc path =
  let base = Filename.basename path in
  if List.mem base skip_dirs then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc name -> walk_one ~suffix acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path suffix then path :: acc
  else acc

let walk ~suffix roots =
  List.sort String.compare
    (List.fold_left (walk_one ~suffix) [] roots)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* One pass over the bytes with a tiny lexer state machine.  Comment
   bytes become spaces; everything else (including string contents in
   code) is kept verbatim. *)
let strip_comments src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let depth = ref 0 in
  (* skip a string literal starting at the opening quote; returns the
     index just past the closing quote (or [n]) *)
  let skip_string start =
    let j = ref (start + 1) in
    let fin = ref false in
    while (not !fin) && !j < n do
      (match src.[!j] with
      | '\\' -> incr j
      | '"' -> fin := true
      | _ -> ());
      incr j
    done;
    !j
  in
  while !i < n do
    if !depth > 0 then begin
      (* inside a comment: blank bytes, honour nesting and strings *)
      if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else if src.[!i] = '"' then begin
        let stop = min n (skip_string !i) in
        for k = !i to stop - 1 do
          blank k
        done;
        i := stop
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      depth := 1;
      i := !i + 2
    end
    else if src.[!i] = '"' then i := skip_string !i
    else if src.[!i] = '\'' then
      (* char literal or type variable *)
      if !i + 1 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do
          incr j
        done;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then i := !i + 3
      else incr i
    else incr i
  done;
  Bytes.to_string out

let under_any prefixes file =
  List.exists
    (fun p ->
      String.length file >= String.length p
      && String.equal (String.sub file 0 (String.length p)) p)
    prefixes
