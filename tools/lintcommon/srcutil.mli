(** Source-tree plumbing shared by the analyzers. *)

val skip_dirs : string list
(** Directories never walked: build artifacts, VCS state, and the lint
    fixture trees under [test/fixtures] (they violate rules on purpose). *)

val walk : suffix:string -> string list -> string list
(** Every file under the roots (files listed directly are kept as-is)
    whose name ends in [suffix], skipping {!skip_dirs}, sorted. *)

val read_file : string -> string

val strip_comments : string -> string
(** The source with every OCaml comment overwritten by spaces (newlines
    kept, so locations remain valid).  Tracks nesting, string literals
    — including inside comments, as the OCaml lexer does — and char
    literals, so heuristics that grep source text cannot be fooled by
    commented-out code. *)

val under_any : string list -> string -> bool
(** [under_any prefixes file]: does [file] start with any prefix? *)
