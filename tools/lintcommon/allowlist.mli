(** The shared allowlist machinery of passlint and passarch.

    An exemption is scoped to a (path prefix, rule, symbol prefix) triple
    and carries a written justification: the lists live in each tool's
    source on purpose, so adding an entry is a reviewed change.  Matching
    marks an entry used; {!stale} returns the entries that matched no
    finding of the run, which [--stale-allowlist] turns into a failure so
    dead exemptions cannot accumulate. *)

type entry = {
  a_path : string;  (** path prefix the exemption applies to *)
  a_rule : string;
  a_symbol : string;  (** symbol prefix, [""] = any *)
  a_why : string;  (** justification; shown by [--allowlist] *)
}

type t

val create : entry list -> t

val allowed : t -> file:string -> rule:string -> symbol:string -> bool
(** True when some entry covers the finding; the entry is marked used. *)

val stale : t -> entry list
(** Entries that matched nothing since {!create}, in list order. *)

val print : t -> unit
(** The table with justifications, for [--allowlist]. *)

val report_stale : tool:string -> t -> bool
(** Print any stale entries to stderr; true when the list is clean. *)
