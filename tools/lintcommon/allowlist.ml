type entry = {
  a_path : string;
  a_rule : string;
  a_symbol : string;
  a_why : string;
}

type t = { entries : entry list; used : (int, unit) Hashtbl.t }

let create entries = { entries; used = Hashtbl.create 16 }

let prefixed ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let matches e ~file ~rule ~symbol =
  String.equal e.a_rule rule
  && prefixed ~prefix:e.a_path file
  && (String.equal e.a_symbol "" || prefixed ~prefix:e.a_symbol symbol)

let allowed t ~file ~rule ~symbol =
  let rec scan i = function
    | [] -> false
    | e :: rest ->
        if matches e ~file ~rule ~symbol then begin
          Hashtbl.replace t.used i ();
          true
        end
        else scan (i + 1) rest
  in
  scan 0 t.entries

let stale t =
  List.filteri (fun i _ -> not (Hashtbl.mem t.used i)) t.entries

let print t =
  List.iter
    (fun e ->
      Printf.printf "%-28s %-20s %-20s %s\n" e.a_path e.a_rule e.a_symbol
        e.a_why)
    t.entries

let report_stale ~tool t =
  match stale t with
  | [] -> true
  | dead ->
      List.iter
        (fun e ->
          Printf.eprintf
            "%s: stale allowlist entry (matches no finding): %s %s %s\n" tool
            e.a_path e.a_rule
            (if String.equal e.a_symbol "" then "<any>" else e.a_symbol))
        dead;
      false
