(** A minimal s-expression reader for the repo's checked-in analysis
    configuration ([LAYERS.sexp]) and for resolving module names against
    dune library boundaries (dune files are s-expressions too).

    Understands atoms, double-quoted strings, [( ... )] lists and [;]
    line comments — exactly the subset dune and LAYERS.sexp use.  No
    external dependency: the toolchain ships no sexplib. *)

type t = Atom of string | List of t list

exception Parse_error of string * int
(** [Parse_error (msg, pos)]: byte offset of the offending character. *)

val parse_string : string -> t list
(** All toplevel s-expressions in the input, in order. *)

val parse_file : string -> t list
(** [parse_string] over a file's contents; errors carry the path. *)

val atom : t -> string option
val strings : t -> string list
(** The atoms of a list tail, e.g. [(dirs a b c)] -> [["a"; "b"; "c"]]. *)

val field : string -> t list -> t list option
(** [field "dirs" items] finds [(dirs ...)] among [items] and returns its
    tail, [None] when absent. *)

val field_strings : string -> t list -> string list
(** [field] flattened to its atom list; [[]] when absent. *)
