module Json = Telemetry.Json

type t = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_msg : string;
}

type sink = { allow : Allowlist.t; mutable findings : t list }

let sink allow = { allow; findings = [] }

let report s ~file ~(loc : Location.t) ~rule ~symbol msg =
  if not (Allowlist.allowed s.allow ~file ~rule ~symbol) then
    let p = loc.loc_start in
    s.findings <-
      { f_file = file; f_line = p.pos_lnum;
        f_col = max 0 (p.pos_cnum - p.pos_bol); f_rule = rule; f_msg = msg }
      :: s.findings

let sorted s =
  List.sort
    (fun a b ->
      match String.compare a.f_file b.f_file with
      | 0 -> (
          match Int.compare a.f_line b.f_line with
          | 0 -> String.compare a.f_rule b.f_rule
          | c -> c)
      | c -> c)
    s.findings

let to_json ~schema ~files_scanned fs =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("files_scanned", Json.Int files_scanned);
      ("findings",
       Json.List
         (List.map
            (fun f ->
              Json.Obj
                [
                  ("file", Json.Str f.f_file);
                  ("line", Json.Int f.f_line);
                  ("col", Json.Int f.f_col);
                  ("rule", Json.Str f.f_rule);
                  ("msg", Json.Str f.f_msg);
                ])
            fs));
    ]

let print_text ~tool ~files_scanned fs =
  List.iter
    (fun f ->
      Printf.printf "%s:%d:%d: [%s] %s\n" f.f_file f.f_line f.f_col f.f_rule
        f.f_msg)
    fs;
  Printf.printf "%s: %d file(s), %d finding(s)\n" tool files_scanned
    (List.length fs)

let finish ~tool ~schema ~json ~stale_check ~files_scanned allow s =
  let fs = sorted s in
  if json then
    print_endline (Json.to_string (to_json ~schema ~files_scanned fs))
  else print_text ~tool ~files_scanned fs;
  let stale_ok = (not stale_check) || Allowlist.report_stale ~tool allow in
  match (fs, stale_ok) with [], true -> 0 | _ -> 1
