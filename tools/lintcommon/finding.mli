(** Finding collection and rendering shared by passlint and passarch.

    Both tools print [file:line:col: [rule] message] lines (or a JSON
    document with the same fields) and exit 1 when any finding survives
    the allowlist, which is what makes them CI gates. *)

type t = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_msg : string;
}

type sink

val sink : Allowlist.t -> sink

val report : sink -> file:string -> loc:Location.t -> rule:string ->
  symbol:string -> string -> unit
(** Record a finding unless the allowlist covers it. *)

val sorted : sink -> t list
(** All surviving findings, ordered by file then line then rule. *)

val to_json : schema:string -> files_scanned:int -> t list -> Telemetry.Json.t

val print_text : tool:string -> files_scanned:int -> t list -> unit

val finish :
  tool:string -> schema:string -> json:bool -> stale_check:bool ->
  files_scanned:int -> Allowlist.t -> sink -> int
(** Render (text or JSON) and compute the exit code: 1 when findings
    survive, 1 when [stale_check] and a stale allowlist entry exists,
    0 otherwise. *)
