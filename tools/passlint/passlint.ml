(* Command-line front end of the lint; the rules live in Passlint_core
   and the shared machinery in Lintcommon (see DESIGN §11 and §14). *)

let usage = "passlint [--json] [--allowlist] [--stale-allowlist] [root ...]"

let () =
  let json = ref false
  and show_allow = ref false
  and stale = ref false
  and roots = ref [] in
  Arg.parse
    [
      ("--json", Arg.Set json, " emit findings as JSON");
      ("--allowlist", Arg.Set show_allow, " print the allowlist and exit");
      ("--stale-allowlist", Arg.Set stale,
       " also fail if an allowlist entry matches no finding");
    ]
    (fun r -> roots := r :: !roots)
    usage;
  if !show_allow then begin
    Lintcommon.Allowlist.print (Passlint_core.allowlist ());
    exit 0
  end;
  exit
    (Passlint_core.run ~roots:(List.rev !roots) ~json:!json
       ~stale_check:!stale ())
