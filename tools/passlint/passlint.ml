(* passlint: the repo's determinism and convention lint.

   The chaos replay harness (DESIGN §9) made whole-codebase determinism
   load-bearing: a single call into wall clocks, host randomness or
   unspecified runtime behaviour silently breaks seed-for-seed replay.
   passlint walks the dune source tree, parses every .ml with
   compiler-libs, and enforces the sandbox syntactically:

   - forbidden-call   no Unix.*, Sys.time/getenv*, Random.*, Hashtbl.hash
                      or Gc.* outside the allowlist below — simulated
                      time comes from the machine clock, randomness from
                      the seeded LCGs in lib/fault and Wk.rng;
   - poly-compare     no bare polymorphic [compare]: it walks arbitrary
                      representations, so its order is not part of any
                      module's contract (use Int.compare, String.compare,
                      a typed comparator, ...);
   - pnode-poly-eq    no polymorphic [=]/[<>] on operands that mention
                      pnodes (use Pnode.equal); heuristic on the operand
                      source text;
   - untyped-ignore   no [ignore e] without a type constraint: require
                      [let _ : ty = e] or [ignore (e : ty)] so the
                      discarded result's type is pinned;
   - bare-failwith    no stringly [failwith] on the storage hot paths
                      (lib/lasagna, lib/panfs, lib/waldo) that return
                      typed errors — raise Vfs.Fatal instead;
   - telemetry-name   literal instrument names must be dotted snake_case
                      ("subsystem.metric_name"), matching the registry
                      conventions; likewise literal pvtrace span names
                      (the combined "layer.op" of Pvtrace.span/event and
                      the layer handed to Dpapi.traced);
   - missing-mli      every module under lib/ has an interface, so the
                      lint (and readers) can tell public surface from
                      internals;
   - inplace-metadata-write
                      no direct Vfs.write_file from lib/lasagna or
                      lib/waldo: PASS metadata (images, archives,
                      manifests) must go through Checkpoint.write_atomic
                      so a crash can never tear a published file.

   Findings print as file:line:col plus rule and message (or --json);
   exit status is 1 if any finding survives the allowlist, making this a
   CI gate.  The allowlist is part of this source file on purpose: adding
   an entry is a reviewed change with a written justification. *)

module Json = Telemetry.Json

(* --- allowlist ------------------------------------------------------------ *)

type allow = {
  a_path : string; (* path prefix the exemption applies to *)
  a_rule : string;
  a_symbol : string; (* symbol prefix, "" = any *)
  a_why : string; (* justification; shown with --allowlist *)
}

let allowlist =
  [
    { a_path = "bench/"; a_rule = "forbidden-call"; a_symbol = "Sys.time";
      a_why = "bench measures host wall-clock time by design (checker \
               microbench); results are reported, never replayed" };
    { a_path = "bench/"; a_rule = "forbidden-call"; a_symbol = "Sys.getenv_opt";
      a_why = "PASS_BENCH_SCALE is an operator knob read once at startup" };
    { a_path = "test/test_chaos.ml"; a_rule = "forbidden-call";
      a_symbol = "Sys.getenv_opt";
      a_why = "PASS_CHAOS_SEEDS seed override, documented in DESIGN §9" };
    { a_path = "lib/fault/"; a_rule = "forbidden-call"; a_symbol = "Random.";
      a_why = "lib/fault is the sanctioned PRNG home (it implements the \
               seeded LCG; entry kept should it ever wrap Stdlib.Random)" };
    { a_path = "lib/lasagna/checkpoint.ml"; a_rule = "inplace-metadata-write";
      a_symbol = "";
      a_why = "the atomic-persist helper itself: writes only *.tmp staging \
               files and publishes them with a journaled rename" };
    { a_path = "test/test_vfs_wire.ml"; a_rule = "forbidden-call";
      a_symbol = "Random.State.make";
      a_why = "pins the QCheck seed of the wire properties to a constant \
               so CI failures replay byte-for-byte; deterministic by \
               construction" };
  ]

let allowed ~file ~rule ~symbol =
  List.exists
    (fun a ->
      String.equal a.a_rule rule
      && String.length file >= String.length a.a_path
      && String.equal (String.sub file 0 (String.length a.a_path)) a.a_path
      && (String.equal a.a_symbol ""
         || String.length symbol >= String.length a.a_symbol
            && String.equal
                 (String.sub symbol 0 (String.length a.a_symbol))
                 a.a_symbol))
    allowlist

(* --- findings ------------------------------------------------------------- *)

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_msg : string;
}

let findings : finding list ref = ref []

let report ~file ~(loc : Location.t) ~rule ~symbol msg =
  if not (allowed ~file ~rule ~symbol) then
    let p = loc.loc_start in
    findings :=
      { f_file = file; f_line = p.pos_lnum;
        f_col = p.pos_cnum - p.pos_bol; f_rule = rule; f_msg = msg }
      :: !findings

(* --- rule predicates ------------------------------------------------------ *)

let forbidden_prefixes =
  [ "Unix."; "Sys.time"; "Sys.getenv"; "Sys.command"; "Random.";
    "Hashtbl.hash"; "Gc."; "Stdlib.compare"; "Stdlib.Random." ]

let hot_path_dirs = [ "lib/lasagna/"; "lib/panfs/"; "lib/waldo/" ]

let under_any dirs file =
  List.exists
    (fun d ->
      String.length file >= String.length d
      && String.equal (String.sub file 0 (String.length d)) d)
    dirs

let on_hot_path file = under_any hot_path_dirs file

(* The layers that own PASS metadata (WAP logs, images, archives,
   manifests): published files there must be crash-atomic. *)
let on_metadata_path file = under_any [ "lib/lasagna/"; "lib/waldo/" ] file

let seg_ok seg =
  (not (String.equal seg ""))
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       seg

let valid_instrument_name s =
  match String.split_on_char '.' s with
  | [] | [ _ ] -> false
  | segs -> List.for_all seg_ok segs

(* A span layer or op on its own may be a single segment ("simos",
   "emit"); the two-segment rule applies to the combined "layer.op". *)
let valid_span_part s =
  match String.split_on_char '.' s with
  | [] -> false
  | segs -> List.for_all seg_ok segs

let mentions_pnode src (loc : Location.t) =
  let a = loc.loc_start.pos_cnum and b = loc.loc_end.pos_cnum in
  if a < 0 || b > String.length src || b <= a then false
  else
    let text = String.lowercase_ascii (String.sub src a (b - a)) in
    let needle = "pnode" in
    let nl = String.length needle and tl = String.length text in
    let rec scan i = i + nl <= tl && (String.equal (String.sub text i nl) needle || scan (i + 1)) in
    scan 0

(* --- the AST walk --------------------------------------------------------- *)

let lint_structure ~file ~src structure =
  let open Parsetree in
  let ident_name (lid : Longident.t Asttypes.loc) =
    String.concat "." (Longident.flatten lid.txt)
  in
  let check_ident (lid : Longident.t Asttypes.loc) =
    let name = ident_name lid in
    List.iter
      (fun prefix ->
        if
          String.length name >= String.length prefix
          && String.equal (String.sub name 0 (String.length prefix)) prefix
        then
          report ~file ~loc:lid.loc ~rule:"forbidden-call" ~symbol:name
            (name ^ " breaks the determinism sandbox (simulated time comes \
                     from the machine clock, randomness from seeded LCGs)"))
      forbidden_prefixes;
    (match lid.txt with
    | Longident.Ldot (Longident.Lident "Vfs", "write_file")
      when on_metadata_path file ->
        report ~file ~loc:lid.loc ~rule:"inplace-metadata-write" ~symbol:name
          "direct Vfs.write_file to PASS metadata: publish through \
           Checkpoint.write_atomic (temp file + journaled rename) so a \
           crash can never tear an image"
    | _ -> ());
    (match lid.txt with
    | Longident.Lident "compare" ->
        report ~file ~loc:lid.loc ~rule:"poly-compare" ~symbol:"compare"
          "polymorphic compare: use a typed comparator (Int.compare, \
           String.compare, Pnode.compare, ...)"
    | _ -> ());
    match lid.txt with
    | Longident.Lident "failwith" when on_hot_path file ->
        report ~file ~loc:lid.loc ~rule:"bare-failwith" ~symbol:"failwith"
          "storage hot paths return typed errors; raise Vfs.Fatal (via \
           Vfs.fatal) instead of failwith"
    | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> check_ident lid
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident "ignore"; _ }; _ },
                [ (_, arg) ] ) -> (
              match arg.pexp_desc with
              | Pexp_constraint _ -> ()
              | _ ->
                  report ~file ~loc:e.pexp_loc ~rule:"untyped-ignore"
                    ~symbol:"ignore"
                    "untyped ignore discards a value of unchecked type; \
                     write `let _ : ty = e` or `ignore (e : ty)`")
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ }; _ },
                args ) ->
              if
                List.exists
                  (fun (_, (a : expression)) -> mentions_pnode src a.pexp_loc)
                  args
              then
                report ~file ~loc:e.pexp_loc ~rule:"pnode-poly-eq" ~symbol:op
                  ("polymorphic " ^ op
                 ^ " on a pnode-carrying operand; use Pnode.equal / \
                    Pnode.compare")
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Telemetry", fn); _ }; _ },
                args )
            when List.mem fn [ "counter"; "gauge"; "histogram" ] ->
              List.iter
                (fun (_, (a : expression)) ->
                  match a.pexp_desc with
                  | Pexp_constant (Pconst_string (s, _, _)) ->
                      if not (valid_instrument_name s) then
                        report ~file ~loc:a.pexp_loc ~rule:"telemetry-name"
                          ~symbol:s
                          (Printf.sprintf
                             "instrument name %S is not dotted snake_case \
                              (\"subsystem.metric_name\")"
                             s)
                  | _ -> ())
                args
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Pvtrace", fn); _ }; _ },
                args )
            when List.mem fn [ "span"; "event" ] -> (
              (* span names follow the instrument convention: the combined
                 "layer.op" must be dotted snake_case *)
              let literal lbl =
                List.find_map
                  (fun (l, (a : expression)) ->
                    match (l, a.pexp_desc) with
                    | Asttypes.Labelled s, Pexp_constant (Pconst_string (v, _, _))
                      when String.equal s lbl ->
                        Some (v, a.pexp_loc)
                    | _ -> None)
                  args
              in
              let bad loc name =
                report ~file ~loc ~rule:"telemetry-name" ~symbol:name
                  (Printf.sprintf
                     "span name %S is not dotted snake_case \
                      (\"layer.operation\")"
                     name)
              in
              match (literal "layer", literal "op") with
              | Some (layer, loc), Some (op, _) ->
                  let name = layer ^ "." ^ op in
                  if not (valid_instrument_name name) then bad loc name
              | Some (part, loc), None | None, Some (part, loc) ->
                  if not (valid_span_part part) then bad loc part
              | None, None -> ())
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Dpapi", "traced"); _ }; _ },
                args ) ->
              List.iter
                (fun (l, (a : expression)) ->
                  match (l, a.pexp_desc) with
                  | Asttypes.Labelled "layer", Pexp_constant (Pconst_string (s, _, _)) ->
                      if not (valid_span_part s) then
                        report ~file ~loc:a.pexp_loc ~rule:"telemetry-name"
                          ~symbol:s
                          (Printf.sprintf
                             "traced layer %S is not dotted snake_case" s)
                  | _ -> ())
                args
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  iterator.structure iterator structure

(* --- tree walk ------------------------------------------------------------ *)

let skip_dirs = [ "_build"; ".git"; "_opam"; ".claude" ]

let rec walk acc path =
  let base = Filename.basename path in
  if List.mem base skip_dirs then acc
  else if Sys.is_directory path then
    Array.fold_left
      (fun acc name -> walk acc (Filename.concat path name))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file file =
  let src = read_file file in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> lint_structure ~file ~src structure
  | exception _ ->
      report ~file ~loc:Location.none ~rule:"parse-error" ~symbol:""
        "file does not parse as an OCaml implementation"

let check_missing_mli files =
  List.iter
    (fun file ->
      let under_lib =
        String.length file >= 4 && String.equal (String.sub file 0 4) "lib/"
      in
      if under_lib && not (Sys.file_exists (file ^ "i")) then
        report ~file ~loc:Location.none ~rule:"missing-mli" ~symbol:""
          "module under lib/ has no .mli: public surface is \
           indistinguishable from internals")
    files

(* --- driver --------------------------------------------------------------- *)

let usage = "passlint [--json] [--allowlist] [root ...]"

let () =
  let json = ref false and show_allow = ref false and roots = ref [] in
  Arg.parse
    [
      ("--json", Arg.Set json, " emit findings as JSON");
      ("--allowlist", Arg.Set show_allow, " print the allowlist and exit");
    ]
    (fun r -> roots := r :: !roots)
    usage;
  if !show_allow then begin
    List.iter
      (fun a ->
        Printf.printf "%-22s %-16s %-16s %s\n" a.a_path a.a_rule a.a_symbol
          a.a_why)
      allowlist;
    exit 0
  end;
  let roots =
    match !roots with
    | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "test"; "bench"; "tools" ]
    | rs -> List.rev rs
  in
  let files = List.sort String.compare (List.fold_left walk [] roots) in
  List.iter lint_file files;
  check_missing_mli files;
  let fs =
    List.sort
      (fun a b ->
        match String.compare a.f_file b.f_file with
        | 0 -> Int.compare a.f_line b.f_line
        | c -> c)
      !findings
  in
  if !json then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("schema", Json.Str "passlint/v1");
              ("files_scanned", Json.Int (List.length files));
              ("findings",
               Json.List
                 (List.map
                    (fun f ->
                      Json.Obj
                        [
                          ("file", Json.Str f.f_file);
                          ("line", Json.Int f.f_line);
                          ("col", Json.Int f.f_col);
                          ("rule", Json.Str f.f_rule);
                          ("msg", Json.Str f.f_msg);
                        ])
                    fs));
            ]))
  else begin
    List.iter
      (fun f ->
        Printf.printf "%s:%d:%d: [%s] %s\n" f.f_file f.f_line f.f_col f.f_rule
          f.f_msg)
      fs;
    Printf.printf "passlint: %d file(s), %d finding(s)\n" (List.length files)
      (List.length fs)
  end;
  exit (match fs with [] -> 0 | _ -> 1)
