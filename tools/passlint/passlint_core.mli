(** The determinism/convention lint (DESIGN §11), as a library so both
    the [passlint] executable and [passctl lint] can run it in-tree.

    Rules, rationale and the justified allowlist live in the
    implementation; findings and exit-code semantics are shared with
    passarch via {!Lintcommon.Finding}. *)

val allowlist : unit -> Lintcommon.Allowlist.t
(** A fresh copy of the exemption table (for [--allowlist] printing). *)

val findings : roots:string list -> unit -> Lintcommon.Finding.t list
(** Raw sorted findings over [roots] (explicit files are linted as-is),
    with no allowlist applied — what the fixture tests assert against.
    The mli-presence rule is skipped: fixtures are single files. *)

val run :
  ?roots:string list -> ?json:bool -> ?stale_check:bool -> unit -> int
(** Walk [roots] (default: lib bin test bench tools, resolved against
    the current directory — run from the repo root), lint every [.ml],
    print findings as text or JSON, and return the exit code: 1 when a
    finding survives the allowlist, or when [stale_check] and some
    allowlist entry matched nothing. *)
