(* passlint: the repo's determinism and convention lint.

   The chaos replay harness (DESIGN §9) made whole-codebase determinism
   load-bearing: a single call into wall clocks, host randomness or
   unspecified runtime behaviour silently breaks seed-for-seed replay.
   passlint walks the dune source tree, parses every .ml with
   compiler-libs, and enforces the sandbox syntactically:

   - forbidden-call   no Unix.*, Sys.time/getenv*, Random.*, Hashtbl.hash
                      or Gc.* outside the allowlist below — simulated
                      time comes from the machine clock, randomness from
                      the seeded LCGs in lib/fault and Wk.rng;
   - poly-compare     no bare polymorphic [compare]: it walks arbitrary
                      representations, so its order is not part of any
                      module's contract (use Int.compare, String.compare,
                      a typed comparator, ...);
   - pnode-poly-eq    no polymorphic [=]/[<>] on operands that mention
                      pnodes (use Pnode.equal); heuristic on the operand
                      source text, with comments stripped first so
                      commented-out code cannot trip it;
   - untyped-ignore   no [ignore e] without a type constraint: require
                      [let _ : ty = e] or [ignore (e : ty)] so the
                      discarded result's type is pinned;
   - bare-failwith    no stringly [failwith] on the storage hot paths
                      (lib/lasagna, lib/panfs, lib/waldo) that return
                      typed errors — raise Vfs.Fatal instead;
   - telemetry-name   literal instrument names must be dotted snake_case
                      ("subsystem.metric_name"), matching the registry
                      conventions; likewise literal pvtrace span names
                      (the combined "layer.op" of Pvtrace.span/event and
                      the layer handed to Dpapi.traced);
   - metric-name      literal pvmon SLO rule names (Pvmon.rule ~name) and
                      metric sources (Pvmon.Counter_rate / Gauge_value /
                      Hist_p99) must be dotted snake_case, matching the
                      instrument names they watch;
   - missing-mli      every module under lib/ has an interface, so the
                      lint (and readers) can tell public surface from
                      internals;
   - inplace-metadata-write
                      no direct Vfs.write_file from lib/lasagna or
                      lib/waldo: PASS metadata (images, archives,
                      manifests) must go through Checkpoint.write_atomic
                      so a crash can never tear a published file.

   Findings print as file:line:col plus rule and message (or --json);
   exit status is 1 if any finding survives the allowlist, making this a
   CI gate.  The allowlist is part of this source file on purpose: adding
   an entry is a reviewed change with a written justification — and
   --stale-allowlist (run by the test suite) fails when an entry stops
   matching anything, so dead exemptions cannot accumulate.

   The allowlist/finding/walk machinery is shared with passarch (the
   layer-contract analyzer, DESIGN §14) through tools/lintcommon. *)

module Allowlist = Lintcommon.Allowlist
module Finding = Lintcommon.Finding
module Srcutil = Lintcommon.Srcutil

(* --- allowlist ------------------------------------------------------------ *)

let allowlist_entries : Allowlist.entry list =
  [
    { a_path = "bench/"; a_rule = "forbidden-call"; a_symbol = "Sys.time";
      a_why = "bench measures host wall-clock time by design (checker \
               microbench); results are reported, never replayed" };
    { a_path = "bench/"; a_rule = "forbidden-call"; a_symbol = "Sys.getenv_opt";
      a_why = "PASS_BENCH_SCALE is an operator knob read once at startup" };
    { a_path = "test/test_chaos.ml"; a_rule = "forbidden-call";
      a_symbol = "Sys.getenv_opt";
      a_why = "PASS_CHAOS_SEEDS seed override, documented in DESIGN §9" };
    { a_path = "lib/lasagna/checkpoint.ml"; a_rule = "inplace-metadata-write";
      a_symbol = "";
      a_why = "the atomic-persist helper itself: writes only *.tmp staging \
               files and publishes them with a journaled rename" };
    { a_path = "test/test_vfs_wire.ml"; a_rule = "forbidden-call";
      a_symbol = "Random.State.make";
      a_why = "pins the QCheck seed of the wire properties to a constant \
               so CI failures replay byte-for-byte; deterministic by \
               construction" };
    { a_path = "test/test_pql.ml"; a_rule = "forbidden-call";
      a_symbol = "Random.State.make";
      a_why = "pins the QCheck seed of the planner-vs-oracle property to \
               a constant so CI failures replay byte-for-byte; \
               deterministic by construction" };
    { a_path = "test/test_telemetry.ml"; a_rule = "forbidden-call";
      a_symbol = "Random.State.make";
      a_why = "pins the QCheck seed of the histogram rank-error property \
               to a constant so CI failures replay byte-for-byte; \
               deterministic by construction" };
  ]

(* --- rule predicates ------------------------------------------------------ *)

let forbidden_prefixes =
  [ "Unix."; "Sys.time"; "Sys.getenv"; "Sys.command"; "Random.";
    "Hashtbl.hash"; "Gc."; "Stdlib.compare"; "Stdlib.Random." ]

let hot_path_dirs = [ "lib/lasagna/"; "lib/panfs/"; "lib/waldo/" ]
let on_hot_path file = Srcutil.under_any hot_path_dirs file

(* The layers that own PASS metadata (WAP logs, images, archives,
   manifests): published files there must be crash-atomic. *)
let on_metadata_path file =
  Srcutil.under_any [ "lib/lasagna/"; "lib/waldo/" ] file

let seg_ok seg =
  (not (String.equal seg ""))
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
       seg

let valid_instrument_name s =
  match String.split_on_char '.' s with
  | [] | [ _ ] -> false
  | segs -> List.for_all seg_ok segs

(* A span layer or op on its own may be a single segment ("simos",
   "emit"); the two-segment rule applies to the combined "layer.op". *)
let valid_span_part s =
  match String.split_on_char '.' s with
  | [] -> false
  | segs -> List.for_all seg_ok segs

(* [src] has comments stripped, so only live operand text counts. *)
let mentions_pnode src (loc : Location.t) =
  let a = loc.loc_start.pos_cnum and b = loc.loc_end.pos_cnum in
  if a < 0 || b > String.length src || b <= a then false
  else
    let text = String.lowercase_ascii (String.sub src a (b - a)) in
    let needle = "pnode" in
    let nl = String.length needle and tl = String.length text in
    let rec scan i = i + nl <= tl && (String.equal (String.sub text i nl) needle || scan (i + 1)) in
    scan 0

(* --- the AST walk --------------------------------------------------------- *)

let lint_structure ~sink ~file ~src structure =
  let open Parsetree in
  let report ~loc ~rule ~symbol msg =
    Finding.report sink ~file ~loc ~rule ~symbol msg
  in
  let ident_name (lid : Longident.t Asttypes.loc) =
    String.concat "." (Longident.flatten lid.txt)
  in
  let check_ident (lid : Longident.t Asttypes.loc) =
    let name = ident_name lid in
    List.iter
      (fun prefix ->
        if
          String.length name >= String.length prefix
          && String.equal (String.sub name 0 (String.length prefix)) prefix
        then
          report ~loc:lid.loc ~rule:"forbidden-call" ~symbol:name
            (name ^ " breaks the determinism sandbox (simulated time comes \
                     from the machine clock, randomness from seeded LCGs)"))
      forbidden_prefixes;
    (match lid.txt with
    | Longident.Ldot (Longident.Lident "Vfs", "write_file")
      when on_metadata_path file ->
        report ~loc:lid.loc ~rule:"inplace-metadata-write" ~symbol:name
          "direct Vfs.write_file to PASS metadata: publish through \
           Checkpoint.write_atomic (temp file + journaled rename) so a \
           crash can never tear an image"
    | _ -> ());
    (match lid.txt with
    | Longident.Lident "compare" ->
        report ~loc:lid.loc ~rule:"poly-compare" ~symbol:"compare"
          "polymorphic compare: use a typed comparator (Int.compare, \
           String.compare, Pnode.compare, ...)"
    | _ -> ());
    match lid.txt with
    | Longident.Lident "failwith" when on_hot_path file ->
        report ~loc:lid.loc ~rule:"bare-failwith" ~symbol:"failwith"
          "storage hot paths return typed errors; raise Vfs.Fatal (via \
           Vfs.fatal) instead of failwith"
    | _ -> ()
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> check_ident lid
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident "ignore"; _ }; _ },
                [ (_, arg) ] ) -> (
              match arg.pexp_desc with
              | Pexp_constraint _ -> ()
              | _ ->
                  report ~loc:e.pexp_loc ~rule:"untyped-ignore"
                    ~symbol:"ignore"
                    "untyped ignore discards a value of unchecked type; \
                     write `let _ : ty = e` or `ignore (e : ty)`")
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ }; _ },
                args ) ->
              if
                List.exists
                  (fun (_, (a : expression)) -> mentions_pnode src a.pexp_loc)
                  args
              then
                report ~loc:e.pexp_loc ~rule:"pnode-poly-eq" ~symbol:op
                  ("polymorphic " ^ op
                 ^ " on a pnode-carrying operand; use Pnode.equal / \
                    Pnode.compare")
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Telemetry", fn); _ }; _ },
                args )
            when List.mem fn [ "counter"; "gauge"; "histogram" ] ->
              List.iter
                (fun (_, (a : expression)) ->
                  match a.pexp_desc with
                  | Pexp_constant (Pconst_string (s, _, _)) ->
                      if not (valid_instrument_name s) then
                        report ~loc:a.pexp_loc ~rule:"telemetry-name"
                          ~symbol:s
                          (Printf.sprintf
                             "instrument name %S is not dotted snake_case \
                              (\"subsystem.metric_name\")"
                             s)
                  | _ -> ())
                args
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Pvtrace", fn); _ }; _ },
                args )
            when List.mem fn [ "span"; "event" ] -> (
              (* span names follow the instrument convention: the combined
                 "layer.op" must be dotted snake_case *)
              let literal lbl =
                List.find_map
                  (fun (l, (a : expression)) ->
                    match (l, a.pexp_desc) with
                    | Asttypes.Labelled s, Pexp_constant (Pconst_string (v, _, _))
                      when String.equal s lbl ->
                        Some (v, a.pexp_loc)
                    | _ -> None)
                  args
              in
              let bad loc name =
                report ~loc ~rule:"telemetry-name" ~symbol:name
                  (Printf.sprintf
                     "span name %S is not dotted snake_case \
                      (\"layer.operation\")"
                     name)
              in
              match (literal "layer", literal "op") with
              | Some (layer, loc), Some (op, _) ->
                  let name = layer ^ "." ^ op in
                  if not (valid_instrument_name name) then bad loc name
              | Some (part, loc), None | None, Some (part, loc) ->
                  if not (valid_span_part part) then bad loc part
              | None, None -> ())
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Dpapi", "traced"); _ }; _ },
                args ) ->
              List.iter
                (fun (l, (a : expression)) ->
                  match (l, a.pexp_desc) with
                  | Asttypes.Labelled "layer", Pexp_constant (Pconst_string (s, _, _)) ->
                      if not (valid_span_part s) then
                        report ~loc:a.pexp_loc ~rule:"telemetry-name"
                          ~symbol:s
                          (Printf.sprintf
                             "traced layer %S is not dotted snake_case" s)
                  | _ -> ())
                args
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Pvmon", "rule"); _ }; _ },
                args ) ->
              List.iter
                (fun (l, (a : expression)) ->
                  match (l, a.pexp_desc) with
                  | Asttypes.Labelled "name", Pexp_constant (Pconst_string (s, _, _)) ->
                      if not (valid_instrument_name s) then
                        report ~loc:a.pexp_loc ~rule:"metric-name" ~symbol:s
                          (Printf.sprintf
                             "pvmon rule name %S is not dotted snake_case \
                              (\"layer.metric_name\")"
                             s)
                  | _ -> ())
                args
          | Pexp_construct
              ( { txt = Longident.Ldot (Longident.Lident "Pvmon",
                    (("Counter_rate" | "Gauge_value" | "Hist_p99") as ctor)); _ },
                Some { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); pexp_loc = sloc; _ } ) ->
              if not (valid_instrument_name s) then
                report ~loc:sloc ~rule:"metric-name" ~symbol:s
                  (Printf.sprintf
                     "Pvmon.%s watches %S, which is not a dotted snake_case \
                      instrument name"
                     ctor s)
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  iterator.structure iterator structure

(* --- driver --------------------------------------------------------------- *)

let lint_file ~sink file =
  let raw = Srcutil.read_file file in
  let src = Srcutil.strip_comments raw in
  let lexbuf = Lexing.from_string raw in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> lint_structure ~sink ~file ~src structure
  | exception _ ->
      Finding.report sink ~file ~loc:Location.none ~rule:"parse-error"
        ~symbol:"" "file does not parse as an OCaml implementation"

let check_missing_mli ~sink files =
  List.iter
    (fun file ->
      let under_lib =
        String.length file >= 4 && String.equal (String.sub file 0 4) "lib/"
      in
      if under_lib && not (Sys.file_exists (file ^ "i")) then
        Finding.report sink ~file ~loc:Location.none ~rule:"missing-mli"
          ~symbol:""
          "module under lib/ has no .mli: public surface is \
           indistinguishable from internals")
    files

let default_roots () =
  List.filter Sys.file_exists [ "lib"; "bin"; "test"; "bench"; "tools" ]

let allowlist () = Allowlist.create allowlist_entries

(* For the fixture tests: raw findings over explicit files, no allowlist. *)
let findings ~roots () =
  let sink = Finding.sink (Allowlist.create []) in
  let files = Srcutil.walk ~suffix:".ml" roots in
  List.iter (lint_file ~sink) files;
  Finding.sorted sink

(* Run the lint over [roots]; prints findings and returns the exit code. *)
let run ?(roots = []) ?(json = false) ?(stale_check = false) () =
  let roots = match roots with [] -> default_roots () | rs -> rs in
  let allow = allowlist () in
  let sink = Finding.sink allow in
  let files = Srcutil.walk ~suffix:".ml" roots in
  List.iter (lint_file ~sink) files;
  check_missing_mli ~sink files;
  Finding.finish ~tool:"passlint" ~schema:"passlint/v1" ~json ~stale_check
    ~files_scanned:(List.length files) allow sink
