module Sexp = Lintcommon.Sexp

type layer = {
  l_name : string;
  l_rank : int;
  l_dirs : string list;
  l_deps : string list;
  l_raises : string list;
}

type hot = { h_extra_roots : string list; h_commit_barriers : string list }
type t = { layers : layer list; hot : hot }

let ( let* ) = Result.bind

(* A dir prefix matches whole path segments: "lib/core" covers
   "lib/core/dpapi.ml" but not "lib/core2/x.ml". *)
let dir_covers ~dir path =
  let d = if Filename.check_suffix dir "/" then dir else dir ^ "/" in
  String.length path >= String.length d
  && String.equal (String.sub path 0 (String.length d)) d

let parse_layer rank items =
  match Sexp.field_strings "name" items with
  | [ name ] ->
      Ok
        {
          l_name = name;
          l_rank = rank;
          l_dirs = Sexp.field_strings "dirs" items;
          l_deps = Sexp.field_strings "deps" items;
          l_raises = Sexp.field_strings "raises" items;
        }
  | _ -> Error "layer without a single (name ...)"

let validate layers =
  let seen = Hashtbl.create 16 in
  let dirs_seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc l ->
      let* () = acc in
      let* () =
        if Hashtbl.mem seen l.l_name then
          Error (Printf.sprintf "duplicate layer %S" l.l_name)
        else Ok ()
      in
      let* () =
        if l.l_dirs = [] then
          Error (Printf.sprintf "layer %S declares no dirs" l.l_name)
        else Ok ()
      in
      let* () =
        List.fold_left
          (fun acc d ->
            let* () = acc in
            match Hashtbl.find_opt dirs_seen d with
            | Some other ->
                Error
                  (Printf.sprintf "dir %S claimed by both %S and %S" d other
                     l.l_name)
            | None ->
                Hashtbl.add dirs_seen d l.l_name;
                Ok ())
          (Ok ()) l.l_dirs
      in
      let* () =
        List.fold_left
          (fun acc dep ->
            let* () = acc in
            if Hashtbl.mem seen dep then Ok ()
            else if String.equal dep l.l_name then
              Error (Printf.sprintf "layer %S depends on itself" l.l_name)
            else
              Error
                (Printf.sprintf
                   "layer %S depends on %S, which is not declared below it \
                    (the map is bottom-up: deps may only name lower layers)"
                   l.l_name dep))
          (Ok ()) l.l_deps
      in
      Hashtbl.add seen l.l_name ();
      Ok ())
    (Ok ()) layers

let load path =
  match Sexp.parse_file path with
  | exception Sexp.Parse_error (msg, _) -> Error msg
  | exception Sys_error msg -> Error msg
  | sexps ->
      let layer_items =
        match Sexp.field "layers" sexps with
        | None -> []
        | Some tail ->
            List.filter_map
              (function
                | Sexp.List (Sexp.Atom "layer" :: items) -> Some items
                | _ -> None)
              tail
      in
      let* layers =
        if layer_items = [] then Error "no (layers (layer ...) ...) section"
        else
          List.fold_left
            (fun acc items ->
              let* ls = acc in
              let* l = parse_layer (List.length ls) items in
              Ok (l :: ls))
            (Ok []) layer_items
          |> Result.map List.rev
      in
      let* () = validate layers in
      let hot =
        match Sexp.field "hot_path" sexps with
        | None -> { h_extra_roots = []; h_commit_barriers = [] }
        | Some items ->
            {
              h_extra_roots = Sexp.field_strings "extra_roots" items;
              h_commit_barriers = Sexp.field_strings "commit_barriers" items;
            }
      in
      Ok { layers; hot }

let find t name = List.find_opt (fun l -> String.equal l.l_name name) t.layers

let layer_of_path t path =
  let best = ref None in
  List.iter
    (fun l ->
      List.iter
        (fun d ->
          if dir_covers ~dir:d path then
            match !best with
            | Some (len, _) when len >= String.length d -> ()
            | _ -> best := Some (String.length d, l))
        l.l_dirs)
    t.layers;
  Option.map snd !best
