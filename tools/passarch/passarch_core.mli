(** The passarch analyzer as a library, so the [passarch] executable,
    [passctl lint] and the fixture tests share one implementation.

    Three whole-program passes enforce the PASSv2 layer contracts
    statically: the LAYERS.sexp layer-map check over reconstructed
    module/dune dependency edges, the exception-escape analysis over the
    binding-level call graph, and the hot-path purity pass over the
    bindings reachable from the [Dpapi.traced] record path.  See the
    implementation header for the rule catalogue. *)

val schema : string

val allowlist : unit -> Lintcommon.Allowlist.t
(** The in-source exemption table with justifications. *)

val run :
  ?root:string ->
  ?layers_file:string ->
  ?json:bool ->
  ?stale_check:bool ->
  unit ->
  int
(** Analyze the tree under [root] against [root]/[layers_file], print
    findings (text or JSON) and return the exit code: 1 when findings
    survive the allowlist or ([stale_check]) an allowlist entry matched
    nothing. *)

val findings :
  ?root:string -> ?layers_file:string -> unit -> Lintcommon.Finding.t list
(** The raw sorted findings with no allowlist applied — what the golden
    fixture tests assert against. *)
