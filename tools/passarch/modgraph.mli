(** Reconstruction of the real inter-module dependency graph.

    passarch parses every [.ml]/[.mli] under the layer map's directories
    with compiler-libs and records, per file: the head module of every
    qualified reference (idents, constructors, record fields, type
    constructors, opens, module expressions), the top-level value
    bindings with their outgoing calls, raise sites and purity-relevant
    sites, the interface's exported values and declared exceptions, and
    the [Dpapi.traced] wrapper arguments that seed the hot-path pass.

    Module names are resolved against dune library boundaries: each
    directory's [dune] file tells us the library name, whether it is
    wrapped (submodules are then only addressable through the wrapper
    module from outside the directory) and its declared library
    dependencies. *)

type call = {
  c_path : string list;  (** module path; [[]] = same-module reference *)
  c_value : string;
  c_loc : Location.t;
  c_in_try : bool;  (** lexically under a [try] body: caller handles *)
  c_cold : bool;  (** inside a raise argument or handler: off the hot path *)
}

type raise_site = {
  r_exn : string;  (** qualified where the declaration is known *)
  r_loc : Location.t;
  r_in_try : bool;
}

type hot_site = { hs_rule : string; hs_symbol : string; hs_loc : Location.t }

type binding = {
  b_name : string;  (** nested-module values are ["Sub.name"] *)
  b_loc : Location.t;
  b_calls : call list;
  b_raises : raise_site list;
  b_hot : hot_site list;
}

type file = {
  f_path : string;
  f_dir : string;
  f_module : string;
  f_intf : bool;
  f_layer : Layers.layer;
  f_mrefs : (string * Location.t) list;
      (** distinct head modules referenced, first occurrence each *)
  f_bindings : binding list;
  f_exports : string list option;  (** [.mli] values; [None] = everything *)
  f_mli_exns : string list;  (** qualified, e.g. ["Vfs.Fatal"] *)
  f_seeds : (string list * string) list;
      (** qualified value refs inside [Dpapi.traced] arguments *)
  f_parse_error : bool;
}

type dir = {
  d_path : string;
  d_layer : Layers.layer;
  d_lib : string;
  d_wrapped : bool;
  d_libdeps : string list;  (** (libraries ...) across the dir's stanzas *)
  d_has_dune : bool;
}

type t

val scan : layers:Layers.t -> root:string -> t
(** Walk every layer directory under [root].  All recorded paths are
    relative to [root]. *)

val files : t -> file list
val dirs : t -> dir list

val dir_of_lib : t -> string -> dir option
(** The directory that builds a dune library, for dune-edge checking. *)

val resolve_head : t -> from_dir:string -> string -> dir option
(** Which scanned directory a referenced head module lives in ([None]
    for stdlib/external modules).  Wrapped libraries resolve through
    their wrapper name from other directories, and through their bare
    submodule names only from inside the same directory. *)

val resolve_call : t -> from:file -> call -> (file * string) option
(** Target of a call edge: the defining file and binding name, resolved
    through local [module X = Path] aliases and wrapped-library
    submodule paths.  [None] when the target is outside the scan. *)

val find_binding : file -> string -> binding option

val impl_by_module : t -> string -> file list
(** The [.ml] files defining a module of this name (for hot-path
    [extra_roots] seeds). *)
