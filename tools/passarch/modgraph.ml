module Sexp = Lintcommon.Sexp
module Srcutil = Lintcommon.Srcutil

type call = {
  c_path : string list;
  c_value : string;
  c_loc : Location.t;
  c_in_try : bool;
  c_cold : bool;
}

type raise_site = { r_exn : string; r_loc : Location.t; r_in_try : bool }
type hot_site = { hs_rule : string; hs_symbol : string; hs_loc : Location.t }

type binding = {
  b_name : string;
  b_loc : Location.t;
  b_calls : call list;
  b_raises : raise_site list;
  b_hot : hot_site list;
}

type file = {
  f_path : string;
  f_dir : string;
  f_module : string;
  f_intf : bool;
  f_layer : Layers.layer;
  f_mrefs : (string * Location.t) list;
  f_bindings : binding list;
  f_exports : string list option;
  f_mli_exns : string list;
  f_seeds : (string list * string) list;
  f_parse_error : bool;
}

type dir = {
  d_path : string;
  d_layer : Layers.layer;
  d_lib : string;
  d_wrapped : bool;
  d_libdeps : string list;
  d_has_dune : bool;
}

(* How a module name resolves: strong entries are addressable from
   anywhere; weak entries (submodules of a wrapped library, modules of
   executable-only directories) only from their own directory. *)
type entry = { e_dir : string; e_file : string option; e_strong : bool }

type t = {
  t_files : file list;
  t_dirs : dir list;
  by_module : (string, entry list) Hashtbl.t;
  by_path : (string, file) Hashtbl.t;
  by_lib : (string, dir) Hashtbl.t;
  dir_by_path : (string, dir) Hashtbl.t;
}

let files t = t.t_files
let dirs t = t.t_dirs
let dir_of_lib t lib = Hashtbl.find_opt t.by_lib lib
let find_binding f name = List.find_opt (fun b -> String.equal b.b_name name) f.f_bindings

let impl_by_module t name =
  List.filter (fun f -> (not f.f_intf) && String.equal f.f_module name) t.t_files

(* --- dune files ----------------------------------------------------------- *)

(* The library/executable/test stanzas of a dune file: the library name
   and wrapping (how outsiders address the dir's modules) plus the union
   of declared (libraries ...) edges. *)
let parse_dune path =
  match Sexp.parse_file path with
  | exception _ -> None
  | stanzas ->
      let name = ref None and wrapped = ref true and libs = ref [] in
      List.iter
        (function
          | Sexp.List (Sexp.Atom kind :: items)
            when List.mem kind [ "library"; "executable"; "executables"; "test"; "tests" ] ->
              libs := !libs @ Sexp.field_strings "libraries" items;
              if String.equal kind "library" then begin
                (match Sexp.field_strings "name" items with
                | [ n ] when !name = None -> name := Some n
                | _ -> ());
                match Sexp.field_strings "wrapped" items with
                | [ "false" ] -> wrapped := false
                | _ -> ()
              end
          | _ -> ())
        stanzas;
      Some (!name, !wrapped, !libs)

(* --- AST helpers ---------------------------------------------------------- *)

let flatten (lid : Longident.t) =
  try Longident.flatten lid with _ -> []

let is_module_name s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

(* --- pass A: module references, locals, aliases, exception decls ---------- *)

type apass = {
  mutable mrefs : (string * Location.t) list;
  mutable locals : string list;
  mutable aliases : (string * string list) list;
  mutable exn_decls : string list;  (* declared in this compilation unit *)
  mutable exports : string list;
  mutable sig_exns : string list;
}

let record_head a lid loc =
  match flatten lid with
  | head :: _ :: _ when is_module_name head ->
      if not (List.mem_assoc head a.mrefs) then a.mrefs <- (head, loc) :: a.mrefs
  | _ -> ()

(* module-position idents: even a bare [open M] / [module X = M] is an
   edge to [M] *)
let record_module_path a lid loc =
  match flatten lid with
  | head :: _ when is_module_name head ->
      if not (List.mem_assoc head a.mrefs) then a.mrefs <- (head, loc) :: a.mrefs
  | _ -> ()

let apass_iterator a =
  let open Parsetree in
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun sub e ->
        (match e.pexp_desc with
        | Pexp_ident lid | Pexp_field (_, lid) | Pexp_setfield (_, lid, _)
        | Pexp_construct (lid, _) | Pexp_new lid ->
            record_head a lid.txt lid.loc
        | Pexp_record (fields, _) ->
            List.iter (fun (lid, _) -> record_head a lid.Asttypes.txt lid.loc) fields
        | Pexp_letmodule ({ txt = Some name; _ }, _, _) ->
            a.locals <- name :: a.locals
        | _ -> ());
        default_iterator.expr sub e);
    typ =
      (fun sub ty ->
        (match ty.ptyp_desc with
        | Ptyp_constr (lid, _) | Ptyp_class (lid, _) ->
            record_head a lid.txt lid.loc
        | _ -> ());
        default_iterator.typ sub ty);
    pat =
      (fun sub p ->
        (match p.ppat_desc with
        | Ppat_construct (lid, _) | Ppat_record ([ (lid, _) ], _) | Ppat_type lid
        | Ppat_open (lid, _) ->
            record_head a lid.txt lid.loc
        | Ppat_record (fields, _) ->
            List.iter (fun (lid, _) -> record_head a lid.Asttypes.txt lid.loc) fields
        | _ -> ());
        default_iterator.pat sub p);
    module_expr =
      (fun sub m ->
        (match m.pmod_desc with
        | Pmod_ident lid -> record_module_path a lid.txt lid.loc
        | _ -> ());
        default_iterator.module_expr sub m);
    module_type =
      (fun sub m ->
        (match m.pmty_desc with
        | Pmty_ident lid | Pmty_alias lid -> record_module_path a lid.txt lid.loc
        | _ -> ());
        default_iterator.module_type sub m);
    module_binding =
      (fun sub mb ->
        (match mb.pmb_name.txt with
        | Some name -> (
            a.locals <- name :: a.locals;
            match mb.pmb_expr.pmod_desc with
            | Pmod_ident lid ->
                let path = flatten lid.txt in
                if path <> [] then a.aliases <- (name, path) :: a.aliases
            | _ -> ())
        | None -> ());
        default_iterator.module_binding sub mb);
    structure_item =
      (fun sub si ->
        (match si.pstr_desc with
        | Pstr_exception te ->
            a.exn_decls <- te.ptyexn_constructor.pext_name.txt :: a.exn_decls
        | _ -> ());
        default_iterator.structure_item sub si);
    signature_item =
      (fun sub si ->
        (match si.psig_desc with
        | Psig_value vd -> a.exports <- vd.pval_name.txt :: a.exports
        | Psig_exception te ->
            a.sig_exns <- te.ptyexn_constructor.pext_name.txt :: a.sig_exns
        | _ -> ());
        default_iterator.signature_item sub si);
  }

(* --- pass B: bindings, calls, raise sites, purity sites, traced seeds ----- *)

type bpass = {
  modname : string;
  known_exns : string list;  (* unqualified decls of this unit, for qualifying *)
  mutable bindings : binding list;
  mutable seeds : (string list * string) list;
  (* current accumulating binding *)
  mutable cur_name : string;
  mutable cur_loc : Location.t;
  mutable calls : call list;
  mutable raises : raise_site list;
  mutable hot : hot_site list;
  mutable in_try : int;
  mutable cold : int;
  mutable prefix : string list;  (* enclosing nested-module path *)
}

let qualify b exn_path =
  match exn_path with
  | [ e ] when List.mem e b.known_exns -> b.modname ^ "." ^ e
  | path -> String.concat "." path

let close_binding b =
  if not (String.equal b.cur_name "") || b.calls <> [] || b.raises <> [] || b.hot <> []
  then
    b.bindings <-
      {
        b_name = String.concat "." (List.rev_append (List.rev b.prefix) [ b.cur_name ]);
        b_loc = b.cur_loc;
        b_calls = List.rev b.calls;
        b_raises = List.rev b.raises;
        b_hot = List.rev b.hot;
      }
      :: b.bindings;
  b.cur_name <- "";
  b.calls <- [];
  b.raises <- [];
  b.hot <- []

let pat_name (p : Parsetree.pattern) =
  let rec go (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var v -> Some v.txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go p

let is_lambda (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let retention_sinks =
  [ ([ "ref" ], "ref");
    ([ "Hashtbl"; "add" ], "Hashtbl.add");
    ([ "Hashtbl"; "replace" ], "Hashtbl.replace");
    ([ "Queue"; "add" ], "Queue.add");
    ([ "Queue"; "push" ], "Queue.push");
    ([ ":=" ], ":=") ]

let rec last2 = function
  | [ a; b ] -> Some (a, b)
  | _ :: rest -> last2 rest
  | [] -> None

let bpass_iterator b =
  let open Parsetree in
  let open Ast_iterator in
  let site rule symbol loc =
    b.hot <- { hs_rule = rule; hs_symbol = symbol; hs_loc = loc } :: b.hot
  in
  let record_ident lid (loc : Location.t) =
    match flatten lid with
    | [] -> ()
    | [ v ] when not (is_module_name v) ->
        b.calls <-
          { c_path = []; c_value = v; c_loc = loc; c_in_try = b.in_try > 0;
            c_cold = b.cold > 0 }
          :: b.calls
    | path -> (
        match last2 ("" :: path) with
        | Some (_, v) when not (is_module_name v) ->
            let mpath = List.filteri (fun i _ -> i < List.length path - 1) path in
            b.calls <-
              { c_path = mpath; c_value = v; c_loc = loc; c_in_try = b.in_try > 0;
                c_cold = b.cold > 0 }
              :: b.calls;
            (match mpath with
            | [ "Printf" ] | [ "Format" ] ->
                if b.cold = 0 then
                  site "hot-path-format" (String.concat "." path) loc
            | [ "Vfs" ] when String.equal v "write_file" ->
                site "hot-path-write" "Vfs.write_file" loc
            | _ -> ())
        | _ -> ())
  in
  let has_exn_case (c : case) =
    match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false
  in
  let rec seed_refs (e : expression) =
    (* qualified value refs inside a Dpapi.traced argument *)
    let it =
      {
        default_iterator with
        expr =
          (fun sub e ->
            (match e.pexp_desc with
            | Pexp_ident lid -> (
                match flatten lid.txt with
                | path when List.length path >= 2 -> (
                    match last2 ("" :: path) with
                    | Some (_, v) when not (is_module_name v) ->
                        let mpath =
                          List.filteri (fun i _ -> i < List.length path - 1) path
                        in
                        b.seeds <- (mpath, v) :: b.seeds
                    | _ -> ())
                | _ -> ())
            | _ -> ());
            default_iterator.expr sub e);
      }
    in
    it.expr it e
  and expr sub (e : expression) =
    match e.pexp_desc with
    | Pexp_try (body, handlers) ->
        b.in_try <- b.in_try + 1;
        expr sub body;
        b.in_try <- b.in_try - 1;
        (* handler bodies are the cold error path *)
        b.cold <- b.cold + 1;
        List.iter (sub.case sub) handlers;
        b.cold <- b.cold - 1
    | Pexp_match (scrut, cases) when List.exists has_exn_case cases ->
        b.in_try <- b.in_try + 1;
        expr sub scrut;
        b.in_try <- b.in_try - 1;
        List.iter (sub.case sub) cases
    | Pexp_lazy _ ->
        site "hot-path-closure" "lazy" e.pexp_loc;
        default_iterator.expr sub e
    | Pexp_apply ({ pexp_desc = Pexp_ident fn; _ }, args) -> (
        let path = flatten fn.txt in
        let raise_of = function
          | [ "raise" ] | [ "raise_notrace" ] -> (
              match args with
              | [ (_, { pexp_desc = Pexp_construct (exn, _); _ }) ] ->
                  Some (qualify b (flatten exn.txt))
              | _ -> None)
          | [ "failwith" ] -> Some "Failure"
          | [ "invalid_arg" ] -> Some "Invalid_argument"
          | p -> (
              match last2 p with
              | Some ("Vfs", "fatal") -> Some "Vfs.Fatal"
              | _ -> None)
        in
        (match last2 ("" :: path) with
        | Some (_, "traced") when List.length path >= 2 -> (
            match last2 path with
            | Some ("Dpapi", _) -> List.iter (fun (_, a) -> seed_refs a) args
            | _ -> ())
        | _ -> ());
        (match List.assoc_opt path retention_sinks with
        | Some sink when List.exists (fun (_, a) -> is_lambda a) args ->
            site "hot-path-closure" (sink ^ "(fun)") e.pexp_loc
        | _ -> ());
        match raise_of path with
        | Some exn ->
            b.raises <-
              { r_exn = exn; r_loc = e.pexp_loc; r_in_try = b.in_try > 0 }
              :: b.raises;
            record_ident fn.txt fn.loc;
            (* the argument of a raise is the cold path: formatting an
               error message there is not a hot-path violation *)
            b.cold <- b.cold + 1;
            List.iter (fun (_, a) -> expr sub a) args;
            b.cold <- b.cold - 1
        | None -> default_iterator.expr sub e)
    | Pexp_ident lid ->
        record_ident lid.txt lid.loc;
        default_iterator.expr sub e
    | _ -> default_iterator.expr sub e
  in
  let structure_item sub (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        close_binding b;
        List.iter
          (fun vb ->
            b.cur_name <- Option.value (pat_name vb.pvb_pat) ~default:"_";
            b.cur_loc <- vb.pvb_loc;
            sub.expr sub vb.pvb_expr;
            close_binding b)
          vbs
    | Pstr_module mb ->
        close_binding b;
        (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
        | Some name, Pmod_structure _ ->
            b.prefix <- b.prefix @ [ name ];
            sub.module_expr sub mb.pmb_expr;
            close_binding b;
            b.prefix <- List.filteri (fun i _ -> i < List.length b.prefix - 1) b.prefix
        | _ -> sub.module_expr sub mb.pmb_expr)
    | _ -> default_iterator.structure_item sub si
  in
  { default_iterator with expr; structure_item }

(* --- file scanning -------------------------------------------------------- *)

let parse_impl src path =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | s -> Some s
  | exception _ -> None

let parse_intf src path =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  match Parse.interface lexbuf with s -> Some s | exception _ -> None

let module_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* aliases threaded from pass A into call resolution via the file record *)
let file_aliases : (string, (string * string list) list) Hashtbl.t =
  Hashtbl.create 64

let scan_file ~root ~(layer : Layers.layer) ~dir rel =
  let src = Srcutil.read_file (Filename.concat root rel) in
  let intf = Filename.check_suffix rel ".mli" in
  let a =
    { mrefs = []; locals = []; aliases = []; exn_decls = []; exports = [];
      sig_exns = [] }
  in
  let modname = module_of_path rel in
  let parse_error = ref false in
  let bindings = ref [] and seeds = ref [] in
  (if intf then
     match parse_intf src rel with
     | None -> parse_error := true
     | Some sg ->
         let it = apass_iterator a in
         it.signature it sg
   else
     match parse_impl src rel with
     | None -> parse_error := true
     | Some st ->
         let it = apass_iterator a in
         it.structure it st;
         let bp =
           { modname; known_exns = a.exn_decls; bindings = []; seeds = [];
             cur_name = ""; cur_loc = Location.none; calls = []; raises = [];
             hot = []; in_try = 0; cold = 0; prefix = [] }
         in
         let it = bpass_iterator bp in
         it.structure it st;
         close_binding bp;
         bindings := List.rev bp.bindings;
         seeds := List.rev bp.seeds);
  let locals = a.locals in
  let mrefs =
    List.filter (fun (h, _) -> not (List.mem h locals)) (List.rev a.mrefs)
  in
  Hashtbl.replace file_aliases rel a.aliases;
  {
    f_path = rel;
    f_dir = dir;
    f_module = modname;
    f_intf = intf;
    f_layer = layer;
    f_mrefs = mrefs;
    f_bindings = !bindings;
    (* for .mli files: own exports; for .ml: attached from the companion
       interface after the scan *)
    f_exports = (if intf then Some (List.rev a.exports) else None);
    f_mli_exns = List.rev_map (fun e -> modname ^ "." ^ e) a.sig_exns;
    f_seeds = !seeds;
    f_parse_error = !parse_error;
  }

let scan ~(layers : Layers.t) ~root =
  Hashtbl.reset file_aliases;
  let all_dirs = ref [] and all_files = ref [] in
  List.iter
    (fun (l : Layers.layer) ->
      List.iter
        (fun d ->
          let abs = Filename.concat root d in
          if Sys.file_exists abs && Sys.is_directory abs then begin
            let mls =
              List.map
                (fun p -> (* relative to root *)
                  let pre = String.length root + 1 in
                  String.sub p pre (String.length p - pre))
                (Srcutil.walk ~suffix:".ml" [ abs ])
            and mlis =
              List.map
                (fun p ->
                  let pre = String.length root + 1 in
                  String.sub p pre (String.length p - pre))
                (Srcutil.walk ~suffix:".mli" [ abs ])
            in
            let dune_path = Filename.concat abs "dune" in
            let name, wrapped, libdeps, has_dune =
              if Sys.file_exists dune_path then
                match parse_dune dune_path with
                | Some (n, w, deps) ->
                    (Option.value n ~default:(Filename.basename d),
                     (match n with Some _ -> w | None -> false),
                     deps, true)
                | None -> (Filename.basename d, false, [], true)
              else (Filename.basename d, false, [], false)
            in
            all_dirs :=
              { d_path = d; d_layer = l; d_lib = name; d_wrapped = wrapped;
                d_libdeps = libdeps; d_has_dune = has_dune }
              :: !all_dirs;
            List.iter
              (fun rel ->
                all_files := scan_file ~root ~layer:l ~dir:d rel :: !all_files)
              (mls @ mlis)
          end)
        l.l_dirs)
    layers.Layers.layers;
  let t_dirs = List.rev !all_dirs in
  (* attach each interface's exports/exceptions to its implementation *)
  let fs = List.rev !all_files in
  let intf_of = Hashtbl.create 64 in
  List.iter
    (fun f -> if f.f_intf then Hashtbl.replace intf_of f.f_path f)
    fs;
  let t_files =
    List.map
      (fun f ->
        if f.f_intf then f
        else
          match Hashtbl.find_opt intf_of (f.f_path ^ "i") with
          | None -> f
          | Some i -> { f with f_exports = i.f_exports; f_mli_exns = i.f_mli_exns })
      fs
  in
  (* module-name resolution tables *)
  let by_module = Hashtbl.create 256 in
  let add_entry name e =
    Hashtbl.replace by_module name
      (match Hashtbl.find_opt by_module name with
      | None -> [ e ]
      | Some es -> es @ [ e ])
  in
  let by_path = Hashtbl.create 256 in
  List.iter (fun f -> if not f.f_intf then Hashtbl.replace by_path f.f_path f) t_files;
  let by_lib = Hashtbl.create 32 and dir_by_path = Hashtbl.create 32 in
  List.iter
    (fun d ->
      Hashtbl.replace dir_by_path d.d_path d;
      if d.d_has_dune then Hashtbl.replace by_lib d.d_lib d)
    t_dirs;
  List.iter
    (fun d ->
      let dir_impls =
        List.filter
          (fun f -> (not f.f_intf) && String.equal f.f_dir d.d_path)
          t_files
      in
      (* a library is addressable from outside: wrapped through its
         wrapper module, unwrapped through every module; executable-only
         directories (no library stanza) are not addressable at all *)
      let is_library = d.d_has_dune && Hashtbl.mem by_lib d.d_lib in
      if d.d_wrapped && is_library then begin
        let wrapper = String.capitalize_ascii d.d_lib in
        let main =
          List.find_opt (fun f -> String.equal f.f_module wrapper) dir_impls
        in
        add_entry wrapper
          { e_dir = d.d_path;
            e_file = Option.map (fun f -> f.f_path) main;
            e_strong = true };
        List.iter
          (fun f ->
            if not (String.equal f.f_module wrapper) then
              add_entry f.f_module
                { e_dir = d.d_path; e_file = Some f.f_path; e_strong = false })
          dir_impls
      end
      else
        List.iter
          (fun f ->
            add_entry f.f_module
              { e_dir = d.d_path; e_file = Some f.f_path; e_strong = is_library })
          dir_impls)
    t_dirs;
  { t_files; t_dirs; by_module; by_path; by_lib; dir_by_path }

(* --- resolution ----------------------------------------------------------- *)

let entry_for t ~from_dir name =
  match Hashtbl.find_opt t.by_module name with
  | None -> None
  | Some es -> (
      match List.find_opt (fun e -> e.e_strong) es with
      | Some e -> Some e
      | None -> List.find_opt (fun e -> String.equal e.e_dir from_dir) es)

let resolve_head t ~from_dir name =
  Option.bind (entry_for t ~from_dir name) (fun e ->
      Hashtbl.find_opt t.dir_by_path e.e_dir)

let rec resolve_call t ~from (c : call) =
  match c.c_path with
  | [] ->
      Option.map (fun b -> (from, b.b_name)) (find_binding from c.c_value)
  | head :: rest -> (
      let aliases =
        Option.value (Hashtbl.find_opt file_aliases from.f_path) ~default:[]
      in
      match List.assoc_opt head aliases with
      | Some target ->
          resolve_call t ~from
            { c with c_path = target @ rest }
      | None -> (
          match entry_for t ~from_dir:from.f_dir head with
          | None ->
              (* a nested module of this very file? *)
              let name = String.concat "." (c.c_path @ [ c.c_value ]) in
              Option.map (fun b -> (from, b.b_name)) (find_binding from name)
          | Some e -> (
              let target_file, bpath =
                match e.e_file with
                | Some fp -> (Some fp, rest)
                | None -> (
                    (* wrapped library wrapper: the next component names
                       the submodule file *)
                    match rest with
                    | sub :: rest' ->
                        ( Some
                            (Filename.concat e.e_dir
                               (String.uncapitalize_ascii sub ^ ".ml")),
                          rest' )
                    | [] -> (None, []))
              in
              match Option.bind target_file (Hashtbl.find_opt t.by_path) with
              | None -> None
              | Some f ->
                  let bname = String.concat "." (bpath @ [ c.c_value ]) in
                  Option.map (fun b -> (f, b.b_name)) (find_binding f bname))))
