(* CLI for the passarch layering-discipline analyzer. *)

let () =
  let json = ref false in
  let stale = ref false in
  let show_allow = ref false in
  let root = ref "." in
  let layers_file = ref "LAYERS.sexp" in
  let args =
    [
      ("--json", Arg.Set json, " machine-readable findings on stdout");
      ( "--stale-allowlist",
        Arg.Set stale,
        " fail when an allowlist entry matches no finding" );
      ("--allowlist", Arg.Set show_allow, " print the exemption table and exit");
      ("--root", Arg.Set_string root, "DIR tree to analyze (default .)");
      ( "--layers",
        Arg.Set_string layers_file,
        "FILE layer map, relative to the root (default LAYERS.sexp)" );
    ]
  in
  Arg.parse (Arg.align args)
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "passarch [--json] [--stale-allowlist] [--allowlist] [--root DIR] \
     [--layers FILE]";
  if !show_allow then begin
    Lintcommon.Allowlist.print (Passarch_core.allowlist ());
    exit 0
  end;
  exit
    (Passarch_core.run ~root:!root ~layers_file:!layers_file ~json:!json
       ~stale_check:!stale ())
