(** The checked-in layer map ([LAYERS.sexp]).

    The map declares the PASSv2 layer DAG bottom-up: each layer names
    the source directories it owns, the lower layers it may reference
    directly ([deps] — an edge absent here is a violation even when it
    points downward), and the exception constructors from lower layers
    it is allowed to let escape upward ([raises] — its own [.mli]-declared
    exceptions are implicitly part of its contract).  A [hot_path]
    section seeds the purity pass and names the commit-barrier modules
    allowed to write through {!Vfs.write_file} on the record path. *)

type layer = {
  l_name : string;
  l_rank : int;  (** declaration order; 0 = bottom of the stack *)
  l_dirs : string list;  (** relative directory prefixes, e.g. ["lib/core"] *)
  l_deps : string list;  (** names of lower layers it may reference *)
  l_raises : string list;
      (** imported exceptions allowed to escape, e.g. ["Vfs.Fatal"] *)
}

type hot = {
  h_extra_roots : string list;  (** ["Module.binding"] purity-pass seeds *)
  h_commit_barriers : string list;
      (** files allowed [Vfs.write_file] on the hot path *)
}

type t = { layers : layer list; hot : hot }

val load : string -> (t, string) result
(** Parse and validate: layer names unique, every [deps] entry names an
    already-declared (strictly lower) layer, no directory claimed twice. *)

val find : t -> string -> layer option

val layer_of_path : t -> string -> layer option
(** The layer owning a file, by directory-prefix match (longest wins). *)
