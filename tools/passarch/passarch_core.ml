(* passarch: whole-program layering-discipline analyzer for the PASSv2
   tree.  Three passes over the typed-AST module graph (Modgraph):

   layer map   - LAYERS.sexp declares the allowed layer DAG bottom-up.
                 Every inter-module reference (and every dune (libraries)
                 edge) is resolved to a (source layer, target layer) edge
                 and checked: upward edges are [layer-upward], downward
                 edges missing from the source layer's (deps ...) are
                 [layer-undeclared], files outside any declared dir are
                 [layer-unmapped], and an unloadable/invalid map is
                 [layer-map-error].

   exceptions  - an exception raised inside a layer must be caught, or be
                 part of the layer's declared contract (its modules'
                 .mli-declared exceptions plus the (raises ...) list),
                 before it can escape through an exported binding of a
                 module referenced from another layer: [exception-escape].
                 May-raise sets are propagated by fixpoint over the
                 binding-level call graph; [try] bodies are barriers.

   hot path    - bindings reachable from the observer->distributor record
                 path (the [Dpapi.traced] wrapper arguments, plus
                 (hot_path (extra_roots ...))) may not call into
                 Printf/Format ([hot-path-format]), capture closures into
                 retention sinks or force [lazy] ([hot-path-closure]), or
                 call [Vfs.write_file] outside the declared commit
                 barriers ([hot-path-write]).  Raise arguments and [try]
                 handlers are cold context and exempt from the formatting
                 rule.

   Shared finding/allowlist machinery lives in [Lintcommon]; entries that
   match no finding are flagged by [--stale-allowlist]. *)

module Allowlist = Lintcommon.Allowlist
module Finding = Lintcommon.Finding
module Srcutil = Lintcommon.Srcutil

let schema = "passarch/v1"

(* Violations in today's tree that are deliberate, each with its written
   justification.  [--stale-allowlist] fails if any stops matching. *)
let allowlist_entries =
  [
    Allowlist.
      {
        a_path = "lib/pyth/pyth.ml";
        a_rule = "exception-escape";
        a_symbol = "Pyth.create";
        a_why =
          "Pyth.create parses the embedded builtin-module sources; \
           Sxml.Parse_error there means the baked-in data is corrupt — a \
           build defect that should fail loudly, not an app-API error \
           worth a contract entry";
      };
    Allowlist.
      {
        a_path = "lib/pyth/pyth_builtins.ml";
        a_rule = "exception-escape";
        a_symbol = "Pyth_builtins.install_modules";
        a_why =
          "same embedded-source parse as Pyth.create: corrupt baked-in \
           sxml is a build defect, surfaced loudly on startup";
      };
  ]

let allowlist () = Allowlist.create allowlist_entries

(* --- layer-map pass ------------------------------------------------------- *)

let check_edge ~(sink : Finding.sink) ~file ~loc ~symbol
    (src : Layers.layer) (tgt : Layers.layer) =
  if not (String.equal src.Layers.l_name tgt.Layers.l_name) then
    if tgt.Layers.l_rank > src.Layers.l_rank then
      Finding.report sink ~file ~loc ~rule:"layer-upward" ~symbol
        (Printf.sprintf
           "layer %s (rank %d) references %s in layer %s (rank %d) above it"
           src.Layers.l_name src.Layers.l_rank symbol tgt.Layers.l_name
           tgt.Layers.l_rank)
    else if not (List.mem tgt.Layers.l_name src.Layers.l_deps) then
      Finding.report sink ~file ~loc ~rule:"layer-undeclared" ~symbol
        (Printf.sprintf
           "layer %s references %s in layer %s, but %s is not in its declared \
            deps (layer-skipping edge; add it to LAYERS.sexp deliberately or \
            route through an intermediate layer)"
           src.Layers.l_name symbol tgt.Layers.l_name tgt.Layers.l_name)

let layer_pass ~sink ~(layers : Layers.t) ~root graph =
  (* files outside every declared layer dir *)
  let unmapped = Hashtbl.create 8 in
  let all = Srcutil.walk ~suffix:".ml" [ root ] @ Srcutil.walk ~suffix:".mli" [ root ] in
  List.iter
    (fun path ->
      let rel =
        if String.length path > String.length root
           && String.equal (String.sub path 0 (String.length root)) root
        then String.sub path (String.length root + 1)
             (String.length path - String.length root - 1)
        else path
      in
      match Layers.layer_of_path layers rel with
      | Some _ -> ()
      | None ->
          let dir = Filename.dirname rel in
          if not (Hashtbl.mem unmapped dir) then begin
            Hashtbl.add unmapped dir ();
            Finding.report sink ~file:rel ~loc:Location.none
              ~rule:"layer-unmapped" ~symbol:dir
              (Printf.sprintf
                 "%s is not covered by any layer dir in LAYERS.sexp" dir)
          end)
    all;
  (* source edges *)
  List.iter
    (fun (f : Modgraph.file) ->
      if f.f_parse_error then
        Finding.report sink ~file:f.f_path ~loc:Location.none
          ~rule:"parse-error" ~symbol:f.f_module
          "file does not parse; layer analysis skipped it"
      else
        List.iter
          (fun (head, loc) ->
            match Modgraph.resolve_head graph ~from_dir:f.f_dir head with
            | None -> ()
            | Some (d : Modgraph.dir) ->
                check_edge ~sink ~file:f.f_path ~loc ~symbol:head
                  f.f_layer d.d_layer)
          f.f_mrefs)
    (Modgraph.files graph);
  (* dune (libraries ...) edges must obey the same map *)
  List.iter
    (fun (d : Modgraph.dir) ->
      List.iter
        (fun lib ->
          match Modgraph.dir_of_lib graph lib with
          | None -> ()
          | Some (dep : Modgraph.dir) ->
              check_edge ~sink
                ~file:(Filename.concat d.d_path "dune")
                ~loc:Location.none ~symbol:lib d.d_layer dep.d_layer)
        d.d_libdeps)
    (Modgraph.dirs graph)

(* --- exception-escape pass ------------------------------------------------ *)

(* Key for a binding node in the call graph. *)
let node_key (f : Modgraph.file) name = f.Modgraph.f_path ^ "#" ^ name

(* May-raise fixpoint: each node's escaping-exception set, seeded from
   direct raise sites not under [try], then closed over non-[try] call
   edges.  Each exception carries the file/loc where it is raised so the
   finding can point at the origin. *)
let may_raise graph =
  let tbl : (string, (string, string * Location.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 512
  in
  let get k =
    match Hashtbl.find_opt tbl k with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.add tbl k h;
        h
  in
  let impls =
    List.filter (fun (f : Modgraph.file) -> not f.f_intf) (Modgraph.files graph)
  in
  List.iter
    (fun (f : Modgraph.file) ->
      List.iter
        (fun (b : Modgraph.binding) ->
          let h = get (node_key f b.b_name) in
          List.iter
            (fun (r : Modgraph.raise_site) ->
              if not r.r_in_try then
                if not (Hashtbl.mem h r.r_exn) then
                  Hashtbl.add h r.r_exn (f.f_path, r.r_loc))
            b.b_raises)
        f.f_bindings)
    impls;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 100 do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : Modgraph.file) ->
        List.iter
          (fun (b : Modgraph.binding) ->
            let h = get (node_key f b.b_name) in
            List.iter
              (fun (c : Modgraph.call) ->
                if not c.c_in_try then
                  match Modgraph.resolve_call graph ~from:f c with
                  | None -> ()
                  | Some (tf, tname) -> (
                      match Hashtbl.find_opt tbl (node_key tf tname) with
                      | None -> ()
                      | Some th ->
                          Hashtbl.iter
                            (fun exn origin ->
                              if not (Hashtbl.mem h exn) then begin
                                Hashtbl.add h exn origin;
                                changed := true
                              end)
                            th))
              b.b_calls)
          f.f_bindings)
      impls
  done;
  tbl

(* Programming-error exceptions: raising one means the *caller* broke the
   API contract (bad index, violated precondition), so they may cross any
   boundary, like a panic.  [Failure] is deliberately NOT here: [failwith]
   is untyped error signaling, exactly what the layer contracts exist to
   eliminate. *)
let universal_exns =
  [ "Invalid_argument"; "Assert_failure"; "Out_of_memory"; "Stack_overflow" ]

let exception_pass ~sink ~(layers : Layers.t) graph =
  let raises = may_raise graph in
  (* allowed(L): the layer's own .mli-declared exceptions + (raises ...) *)
  let allowed = Hashtbl.create 16 in
  List.iter
    (fun (f : Modgraph.file) ->
      List.iter
        (fun exn ->
          Hashtbl.replace allowed (f.f_layer.Layers.l_name ^ "/" ^ exn) ())
        f.f_mli_exns)
    (Modgraph.files graph);
  List.iter
    (fun (l : Layers.layer) ->
      List.iter
        (fun exn -> Hashtbl.replace allowed (l.l_name ^ "/" ^ exn) ())
        l.l_raises)
    layers.Layers.layers;
  let is_allowed (l : Layers.layer) exn =
    List.mem exn universal_exns || Hashtbl.mem allowed (l.l_name ^ "/" ^ exn)
  in
  (* which dirs are referenced from another layer (only those leak) *)
  let cross = Hashtbl.create 16 in
  List.iter
    (fun (f : Modgraph.file) ->
      List.iter
        (fun (head, _) ->
          match Modgraph.resolve_head graph ~from_dir:f.f_dir head with
          | Some (d : Modgraph.dir)
            when not
                   (String.equal d.d_layer.Layers.l_name
                      f.f_layer.Layers.l_name) ->
              if not (Hashtbl.mem cross d.d_path) then
                Hashtbl.add cross d.d_path f.f_layer.Layers.l_name
          | _ -> ())
        f.f_mrefs)
    (Modgraph.files graph);
  let reported = Hashtbl.create 16 in
  List.iter
    (fun (f : Modgraph.file) ->
      if (not f.f_intf) && not f.f_parse_error then
        match Hashtbl.find_opt cross f.f_dir with
        | None -> ()
        | Some ref_layer ->
            let exported b =
              match f.f_exports with
              | None -> not (String.equal b "")
              | Some l -> List.mem b l
            in
            List.iter
              (fun (b : Modgraph.binding) ->
                if exported b.b_name then
                  match Hashtbl.find_opt raises (node_key f b.b_name) with
                  | None -> ()
                  | Some h ->
                      Hashtbl.iter
                        (fun exn (ofile, oloc) ->
                          if not (is_allowed f.f_layer exn) then
                            let key = f.f_path ^ "/" ^ exn in
                            if not (Hashtbl.mem reported key) then begin
                              Hashtbl.add reported key ();
                              Finding.report sink ~file:f.f_path
                                ~loc:b.b_loc ~rule:"exception-escape"
                                ~symbol:(f.f_module ^ "." ^ b.b_name)
                                (Printf.sprintf
                                   "%s can escape %s.%s across the %s->%s \
                                    layer boundary uncaught (raised at \
                                    %s:%d); catch it, convert it to a typed \
                                    error, or declare it in the layer's \
                                    contract"
                                   exn f.f_module b.b_name
                                   f.f_layer.Layers.l_name ref_layer ofile
                                   oloc.Location.loc_start.Lexing.pos_lnum)
                            end)
                        h)
              f.f_bindings)
    (Modgraph.files graph)

(* --- hot-path purity pass ------------------------------------------------- *)

let hot_pass ~sink ~(layers : Layers.t) graph =
  let seeds = ref [] in
  (* Dpapi.traced wrapper arguments, auto-extracted *)
  List.iter
    (fun (f : Modgraph.file) ->
      List.iter
        (fun (path, v) ->
          match
            Modgraph.resolve_call graph ~from:f
              {
                Modgraph.c_path = path;
                c_value = v;
                c_loc = Location.none;
                c_in_try = false;
                c_cold = false;
              }
          with
          | Some (tf, tname) ->
              seeds :=
                (tf, tname, Printf.sprintf "%s (traced in %s)" tname f.f_path)
                :: !seeds
          | None -> ())
        f.f_seeds)
    (Modgraph.files graph);
  (* (hot_path (extra_roots Module.binding ...)) *)
  List.iter
    (fun root ->
      match String.index_opt root '.' with
      | None -> ()
      | Some i ->
          let m = String.sub root 0 i in
          let b = String.sub root (i + 1) (String.length root - i - 1) in
          List.iter
            (fun (f : Modgraph.file) ->
              match Modgraph.find_binding f b with
              | Some _ ->
                  seeds := (f, b, root ^ " (extra_roots)") :: !seeds
              | None -> ())
            (Modgraph.impl_by_module graph m))
    layers.Layers.hot.h_extra_roots;
  (* BFS over non-cold call edges *)
  let reached : (string, string) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  List.iter
    (fun (f, b, why) ->
      let k = node_key f b in
      if not (Hashtbl.mem reached k) then begin
        Hashtbl.add reached k why;
        Queue.add (f, b) queue
      end)
    !seeds;
  while not (Queue.is_empty queue) do
    let f, bname = Queue.pop queue in
    match Modgraph.find_binding f bname with
    | None -> ()
    | Some b ->
        let via = Hashtbl.find reached (node_key f bname) in
        List.iter
          (fun (c : Modgraph.call) ->
            if not c.c_cold then
              match Modgraph.resolve_call graph ~from:f c with
              | None -> ()
              | Some (tf, tname) ->
                  let k = node_key tf tname in
                  if not (Hashtbl.mem reached k) then begin
                    Hashtbl.add reached k
                      (Printf.sprintf "%s <- %s" (f.f_module ^ "." ^ bname) via);
                    Queue.add (tf, tname) queue
                  end)
          b.b_calls
  done;
  let barrier path =
    List.exists
      (fun b -> String.equal b path || Srcutil.under_any [ b ] path)
      layers.Layers.hot.h_commit_barriers
  in
  List.iter
    (fun (f : Modgraph.file) ->
      if not f.f_intf then
        List.iter
          (fun (b : Modgraph.binding) ->
            match Hashtbl.find_opt reached (node_key f b.b_name) with
            | None -> ()
            | Some via ->
                List.iter
                  (fun (h : Modgraph.hot_site) ->
                    if
                      not
                        (String.equal h.hs_rule "hot-path-write"
                        && barrier f.f_path)
                    then
                      Finding.report sink ~file:f.f_path ~loc:h.hs_loc
                        ~rule:h.hs_rule ~symbol:h.hs_symbol
                        (Printf.sprintf
                           "%s in %s.%s, which is on the record hot path \
                            (reached via %s)"
                           h.hs_symbol f.f_module b.b_name via))
                  b.b_hot)
          f.f_bindings)
    (Modgraph.files graph)

(* --- driver ---------------------------------------------------------------- *)

let run ?(root = ".") ?(layers_file = "LAYERS.sexp") ?(json = false)
    ?(stale_check = false) () =
  let allow = allowlist () in
  let sink = Finding.sink allow in
  let layers_path = Filename.concat root layers_file in
  let files_scanned = ref 0 in
  (match Layers.load layers_path with
  | Error msg ->
      Finding.report sink ~file:layers_file ~loc:Location.none
        ~rule:"layer-map-error" ~symbol:"LAYERS.sexp"
        (Printf.sprintf "cannot load layer map: %s" msg)
  | Ok layers ->
      let graph = Modgraph.scan ~layers ~root in
      files_scanned := List.length (Modgraph.files graph);
      layer_pass ~sink ~layers ~root graph;
      exception_pass ~sink ~layers graph;
      hot_pass ~sink ~layers graph);
  Finding.finish ~tool:"passarch" ~schema ~json ~stale_check
    ~files_scanned:!files_scanned allow sink

(* For the fixture tests: the findings themselves, not just the exit code. *)
let findings ?(root = ".") ?(layers_file = "LAYERS.sexp") () =
  let allow = Allowlist.create [] in
  let sink = Finding.sink allow in
  let layers_path = Filename.concat root layers_file in
  (match Layers.load layers_path with
  | Error msg ->
      Finding.report sink ~file:layers_file ~loc:Location.none
        ~rule:"layer-map-error" ~symbol:"LAYERS.sexp"
        (Printf.sprintf "cannot load layer map: %s" msg)
  | Ok layers ->
      let graph = Modgraph.scan ~layers ~root in
      layer_pass ~sink ~layers ~root graph;
      exception_pass ~sink ~layers graph;
      hot_pass ~sink ~layers graph);
  Finding.sorted sink
