(* benchdiff: the CI perf-regression gate.

   Compares the overhead_pct of every workload in a BENCH_results.json
   run against the checked-in BENCH_baseline.json and exits non-zero if
   any overhead regressed beyond tolerance.  Only regressions fail:
   improvements are reported (with a nudge to refresh the baseline when
   they are large) but never block.

     benchdiff BENCH_baseline.json BENCH_results.json
     benchdiff --tolerance 10 --slack 1.5 baseline.json current.json

   A row regresses when BOTH hold:
     current > baseline * (1 + tolerance/100)   (relative: default 20%)
     current > baseline + slack                 (absolute percentage
                                                 points: default 2.0)
   The absolute floor keeps near-zero overheads (Blast at ~1.5%) from
   tripping the relative gate on simulation noise.

   The baseline stores overheads per scale ("0.1" for the CI smoke run,
   "1.0" for the full run); the current file's "scale" field selects
   which column to compare.  Defaults for tolerance/slack come from the
   baseline file itself so the policy is versioned with the numbers. *)

module Json = Telemetry.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("benchdiff: " ^ s); exit 2) fmt

let read_json path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  try Json.of_string s with Json.Parse_error e -> die "%s: %s" path e

let number = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let get_number path j = Option.bind (Json.member path j) number

(* --- the current run: BENCH_results.json (pass-bench/v1) ------------------- *)

type row = { name : string; local_pct : float; nfs_pct : float }

let parse_current path j =
  (match Json.member "schema" j with
  | Some (Json.Str "pass-bench/v1") -> ()
  | _ -> die "%s: not a pass-bench/v1 results file" path);
  let scale =
    match get_number "scale" j with Some s -> s | None -> die "%s: no scale" path
  in
  let rows =
    match Json.member "workloads" j with
    | Some (Json.List ws) ->
        List.map
          (fun w ->
            let name =
              match Json.member "name" w with
              | Some (Json.Str s) -> s
              | _ -> die "%s: workload without a name" path
            in
            let side key =
              match Option.bind (Json.member key w) (get_number "overhead_pct") with
              | Some f -> f
              | None -> die "%s: %s: no %s.overhead_pct" path name key
            in
            { name; local_pct = side "local"; nfs_pct = side "nfs" })
          ws
    | _ -> die "%s: no workloads" path
  in
  (scale, rows)

(* --- the baseline: BENCH_baseline.json (pass-bench-baseline/v1) ------------ *)

let parse_baseline path j =
  (match Json.member "schema" j with
  | Some (Json.Str "pass-bench-baseline/v1") -> ()
  | _ -> die "%s: not a pass-bench-baseline/v1 file" path);
  let scales =
    match Json.member "scales" j with
    | Some (Json.Obj kvs) -> kvs
    | _ -> die "%s: no scales" path
  in
  (get_number "tolerance_pct" j, get_number "slack_points" j, scales)

let baseline_for_scale path scales scale =
  (* scale keys are written by humans: match numerically, not textually *)
  match
    List.find_opt
      (fun (k, _) -> match float_of_string_opt k with
        | Some f -> Float.abs (f -. scale) < 1e-9
        | None -> false)
      scales
  with
  | Some (_, Json.Obj workloads) -> workloads
  | Some _ -> die "%s: scale entry is not an object" path
  | None ->
      die "%s: no baseline for scale %g (have: %s)" path scale
        (String.concat ", " (List.map fst scales))

(* --- comparison -------------------------------------------------------------- *)

type verdict = Ok_ | Improved | Regressed | New

let compare_row ~tolerance ~slack ~baseline (r : row) =
  let one side current =
    match Option.bind (List.assoc_opt r.name baseline) (get_number side) with
    | None -> (New, current, nan)
    | Some base ->
        let v =
          if current > (base *. (1. +. (tolerance /. 100.))) && current > base +. slack then
            Regressed
          else if current < (base *. (1. -. (tolerance /. 100.))) && current < base -. slack
          then Improved
          else Ok_
        in
        (v, current, base)
  in
  [ ("local", one "local_overhead_pct" r.local_pct);
    ("nfs", one "nfs_overhead_pct" r.nfs_pct) ]

let () =
  let tolerance_arg = ref None and slack_arg = ref None and files = ref [] in
  let spec =
    [ ("--tolerance", Arg.Float (fun f -> tolerance_arg := Some f),
       "PCT relative tolerance in percent (default: baseline file, else 20)");
      ("--slack", Arg.Float (fun f -> slack_arg := Some f),
       "POINTS absolute tolerance in overhead points (default: baseline file, else 2)") ]
  in
  let usage = "benchdiff [--tolerance PCT] [--slack POINTS] BASELINE CURRENT" in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  let baseline_path, current_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ -> die "expected exactly two files\nusage: %s" usage
  in
  let file_tol, file_slack, scales = parse_baseline baseline_path (read_json baseline_path) in
  let current_json = read_json current_path in
  let scale, rows = parse_current current_path current_json in
  let tolerance =
    match (!tolerance_arg, file_tol) with Some t, _ -> t | None, Some t -> t | None, None -> 20.
  in
  let slack =
    match (!slack_arg, file_slack) with Some s, _ -> s | None, Some s -> s | None, None -> 2.
  in
  let baseline = baseline_for_scale baseline_path scales scale in
  Printf.printf "benchdiff: scale %g, tolerance %g%%, slack %g points\n" scale tolerance slack;
  Printf.printf "%-20s %-6s %10s %10s %8s  %s\n" "workload" "side" "baseline" "current" "delta"
    "verdict";
  let regressed = ref 0 and improved = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun (side, (v, current, base)) ->
          let verdict, note =
            match v with
            | Regressed ->
                incr regressed;
                ("REGRESSED", " <-- past tolerance")
            | Improved ->
                incr improved;
                ("improved", "")
            | Ok_ -> ("ok", "")
            | New -> ("new", " (no baseline entry)")
          in
          if Float.is_nan base then
            Printf.printf "%-20s %-6s %10s %9.2f%% %8s  %s%s\n" r.name side "-" current "-"
              verdict note
          else
            Printf.printf "%-20s %-6s %9.2f%% %9.2f%% %+7.2f%%  %s%s\n" r.name side base current
              (current -. base) verdict note)
        (compare_row ~tolerance ~slack ~baseline r))
    rows;
  (* Recovery-time gate: bounded restart means the checkpointed replay
     suffix must not grow; compare its frame count against the baseline.
     Skipped (reported as "new") when the baseline predates the bench's
     recovery section, so old baselines keep working. *)
  (match List.assoc_opt "recovery" baseline with
  | None ->
      Printf.printf "%-20s %-6s %10s %10s %8s  new (no baseline entry)\n" "recovery"
        "replay" "-" "-" "-"
  | Some rb -> (
      let base =
        match get_number "replay_frames_max" rb with
        | Some b -> b
        | None -> die "%s: recovery entry without replay_frames_max" baseline_path
      in
      match
        Option.bind (Json.member "recovery" current_json)
          (get_number "replay_frames_max")
      with
      | None -> die "%s: no recovery.replay_frames_max (old bench binary?)" current_path
      | Some current ->
          (* a frame of slack per tolerance point on top of the relative
             gate: suffix lengths are small integers, so a purely relative
             bound would trip on a single extra log tail *)
          let regression =
            current > base *. (1. +. (tolerance /. 100.)) && current > base +. 16.
          in
          let verdict, note =
            if regression then begin
              incr regressed;
              ("REGRESSED", " <-- past tolerance")
            end
            else if current < base then ("improved", "")
            else ("ok", "")
          in
          Printf.printf "%-20s %-6s %10.0f %10.0f %+8.0f  %s%s\n" "recovery" "replay"
            base current (current -. base) verdict note));
  (* Monitor-overhead gate: an enabled pvmon must keep charging zero
     simulated time to the monitored workloads.  The bench computes
     overhead_pct from the off/on simulated clocks; the baseline pins
     its ceiling (0.0 — scrapes happen outside simulated time by
     construction), with half a point of absolute slack so the gate
     states intent rather than float noise.  "new" when the baseline
     predates the bench's monitor section, so old baselines keep
     working. *)
  (match List.assoc_opt "monitor" baseline with
  | None ->
      Printf.printf "%-20s %-6s %10s %10s %8s  new (no baseline entry)\n" "monitor"
        "ovrhd" "-" "-" "-"
  | Some mb -> (
      let ceiling =
        match get_number "overhead_pct_max" mb with
        | Some b -> b
        | None -> die "%s: monitor entry without overhead_pct_max" baseline_path
      in
      match
        Option.bind (Json.member "monitor" current_json) (get_number "overhead_pct")
      with
      | None -> die "%s: no monitor.overhead_pct (old bench binary?)" current_path
      | Some current ->
          let regression = current > ceiling +. 0.5 in
          let verdict, note =
            if regression then begin
              incr regressed;
              ("REGRESSED", " <-- above pinned ceiling")
            end
            else ("ok", "")
          in
          Printf.printf "%-20s %-6s %9.2f%% %9.2f%% %+7.2f%%  %s%s\n" "monitor" "ovrhd"
            ceiling current (current -. ceiling) verdict note));
  (* Query-planner gate: the selective-ancestry speedup over the naive
     evaluator must stay above the pinned floor (higher is better, so
     only a drop fails; the relative tolerance gives simulation noise
     room).  "new" when the baseline predates the bench's query
     section, so old baselines keep working. *)
  (match List.assoc_opt "query" baseline with
  | None ->
      Printf.printf "%-20s %-6s %10s %10s %8s  new (no baseline entry)\n" "query" "speedup"
        "-" "-" "-"
  | Some qb -> (
      let floor =
        match get_number "selective_speedup_min" qb with
        | Some b -> b
        | None -> die "%s: query entry without selective_speedup_min" baseline_path
      in
      match
        Option.bind (Json.member "query" current_json) (get_number "selective_speedup")
      with
      | None -> die "%s: no query.selective_speedup (old bench binary?)" current_path
      | Some current ->
          let regression = current < floor *. (1. -. (tolerance /. 100.)) in
          let verdict, note =
            if regression then begin
              incr regressed;
              ("REGRESSED", " <-- below pinned floor")
            end
            else ("ok", "")
          in
          Printf.printf "%-20s %-6s %9.1fx %9.1fx %+7.1fx  %s%s\n" "query" "speedup" floor
            current (current -. floor) verdict note));
  if !regressed > 0 then begin
    Printf.printf "\n%d overhead value(s) regressed beyond tolerance.\n" !regressed;
    exit 1
  end;
  if !improved > 0 then
    Printf.printf
      "\n%d overhead value(s) improved beyond tolerance — consider refreshing BENCH_baseline.json.\n"
      !improved;
  print_string "benchdiff: no regressions.\n"
