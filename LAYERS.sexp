; PASSv2 layer map, enforced statically by tools/passarch (CI gate).
;
; Layers are declared bottom-up: (deps ...) may only name layers already
; declared above this line.  An inter-module reference (or a dune
; (libraries ...) edge) from layer A to layer B is legal only when B is A
; itself or appears in A's deps — edges to higher layers are
; [layer-upward] findings, downward edges not listed here are
; [layer-undeclared] (layer-skipping) findings.  Every .ml/.mli in the
; repo must be covered by some (dirs ...) prefix or it is
; [layer-unmapped].
;
; (raises ...) is the layer's exception contract for imported exceptions:
; constructors from lower layers it may let escape through its exported
; bindings.  A layer's own .mli-declared exceptions are implicitly part
; of its contract.

(layers
 ; Leaf vocabulary: telemetry counters/json, wire formats, the VFS
 ; interface and the sxml reader share nothing and sit under everything.
 (layer (name base)
  (dirs lib/telemetry lib/wire lib/vfs lib/sxml)
  (deps)
  (raises Vfs.Fatal))

 ; Cross-cutting instrumentation: fault injection and pvtrace spans.
 (layer (name instrument)
  (dirs lib/fault lib/trace)
  (deps base))

 ; pvmon: the monitoring consumer of telemetry registries and pvtrace
 ; span streams.  Strictly above the instruments it scrapes and below
 ; everything that wires it in (simos hands it the clock hook).
 (layer (name monitor)
  (dirs lib/monitor)
  (deps base instrument))

 ; The simulated disk under the filesystems.
 (layer (name simdisk)
  (dirs lib/simdisk)
  (deps base instrument))

 ; The DPAPI core: observer -> analyzer -> distributor chain.
 (layer (name core)
  (dirs lib/core)
  (deps base instrument)
  ; the record codec surface re-exports wire's corruption signal
  (raises Wire.Corrupt))

 ; ext3 simulation: consumes the disk, exposes a VFS.
 (layer (name fs)
  (dirs lib/ext3)
  (deps base simdisk)
  ; disk failures surface through format/mount: the chaos harness above
  ; provokes them on purpose and must see them raw
  (raises Disk.Crashed Disk.Io_error))

 ; Lasagna provenance log + WAP protocol.
 (layer (name lasagna)
  (dirs lib/lasagna)
  (deps base instrument core)
  ; Wire.Corrupt from log parsing is what recovery/fsck above triage
  (raises Vfs.Fatal Wire.Corrupt))

 ; Waldo store/indexer above Lasagna.
 (layer (name waldo)
  (dirs lib/waldo)
  (deps base instrument core lasagna)
  (raises Vfs.Fatal Wire.Corrupt))

 ; The simulated OS (syscall shim) and PA-NFS: the two integration
 ; points that stitch the full stack together.
 (layer (name os)
  (dirs lib/simos lib/panfs)
  (deps base instrument monitor simdisk core fs lasagna waldo)
  ; the OS shim is the paper's failure boundary: disk crashes, corrupt
  ; logs and observer wiring failures all surface here for the harness
  (raises Vfs.Fatal Wire.Corrupt Disk.Crashed Disk.Io_error
          Observer.Lower_error))

 ; PQL query engine over the Waldo store: the parser/AST, the naive
 ; evaluator kept as the planner's oracle (pql_eval), the plan IR
 ; (pql_plan), the cost-based planner over Provdb's secondary indexes
 ; (pql_planner), the plan executor (pql_exec), and the prepared-query
 ; Engine facade (pql).
 (layer (name query)
  (dirs lib/pql)
  (deps base core lasagna waldo))

 ; pass-fsck style invariant checking.
 (layer (name check)
  (dirs lib/check)
  (deps base core lasagna waldo)
  ; fsck reports what it finds, including raw codec corruption
  (raises Wire.Corrupt))

 ; Provenance-aware applications from the paper (Kepler, PA-links, Pyth).
 (layer (name apps)
  (dirs lib/kepler lib/palinks lib/pyth)
  (deps base simdisk core os)
  ; libpass is the disclosure API the apps wrap; its typed error and the
  ; observer wiring failure pass through to whoever drives the app
  (raises Libpass.Pass_error Observer.Lower_error))

 ; Canned end-to-end workloads used by bench/bin/test.
 (layer (name workloads)
  (dirs lib/workloads)
  (deps base instrument monitor simdisk core fs lasagna waldo os apps)
  ; workloads assemble the full stack for bench/test drivers, which
  ; catch the stack's declared failures wholesale
  (raises Vfs.Fatal Wire.Corrupt Disk.Crashed Disk.Io_error
          Observer.Lower_error Libpass.Pass_error Kepler_run.Io_error
          Director.Stuck Workflow.Invalid))

 ; Entry points and dev tooling: may see everything.
 (layer (name top)
  (dirs bin bench test tools examples)
  (deps base instrument monitor simdisk core fs lasagna waldo os query check
        apps workloads)))

; The observer->distributor record path must stay allocation- and
; formatting-clean: seeds are the Dpapi.traced wrapper arguments,
; discovered automatically; commit_barriers names the modules allowed to
; reach Vfs.write_file while on it (the Lasagna commit barrier itself).
(hot_path
 (extra_roots)
 (commit_barriers lib/lasagna/checkpoint.ml))
