(** pvmon: deterministic time-series metrics, per-layer cost attribution
    and SLO health monitoring over the PASSv2 stack (DESIGN §16).

    A monitor scrapes every watched telemetry registry at a fixed
    simulated-time interval (driven by {!Clock.on_advance} via
    {!System.create}) into bounded ring time series — counters as
    per-second rates, gauges as values, histograms as p99 points — and
    folds the pvtrace span stream into an exact per-layer self/total
    cost profile keyed by the LAYERS.sexp layer names.  A declarative
    SLO rule set is evaluated per scrape; breach/clear transitions are
    logged as alert events and any span over the slow-op threshold is
    captured with its full ancestor path.

    Everything is deterministic: scrape timestamps come from the
    simulated clock, rules run in declaration order, exports sort by
    name.  Same workload + same fault seed ⇒ byte-identical artifacts.
    {!disabled} makes every entry point a single branch, and scrapes
    never advance the simulated clock, so monitoring cannot perturb a
    run. *)

type t

val disabled : t
(** The inactive monitor: every operation is a no-op costing one branch.
    The default everywhere a [?monitor] is accepted. *)

(** {1 SLO rules} *)

type source =
  | Counter_rate of string
      (** per-second rate of the named counter's delta between scrapes *)
  | Gauge_value of string  (** the named gauge's scraped value *)
  | Hist_p99 of string  (** the named histogram's p99 at scrape time *)

type rule

val rule :
  name:string ->
  source:source ->
  ?below:bool ->
  ?for_ticks:int ->
  threshold:float ->
  unit ->
  rule
(** A health rule: breach when the source value is over [threshold]
    (under, with [~below:true]) — the alert fires after [for_ticks]
    consecutive breaching scrapes (default 1) and resolves on the first
    clear scrape.  [name] must follow the instrument naming convention
    (dotted lowercase, layer-prefixed); passlint's [metric-name] rule
    enforces this on every literal. *)

val default_rules : unit -> rule list
(** The stock rule set: DPAPI write p99 latency, WAP backlog depth,
    PA-NFS retry and DRC-miss rates, Waldo checkpoint staleness.  Fresh
    mutable state per call. *)

(** {1 Construction and wiring} *)

val create :
  ?interval_ns:int ->
  ?retention:int ->
  ?slow_op_ns:int ->
  ?rules:rule list ->
  unit ->
  t
(** An enabled monitor.  [interval_ns] is the scrape interval in
    simulated ns (default 10ms); [retention] the points kept per series
    (default 512); [slow_op_ns] the slow-op log threshold (default
    10ms); [rules] defaults to {!default_rules}. *)

val enabled : t -> bool
val interval_ns : t -> int

val watch : t -> Telemetry.registry -> unit
(** Add a registry to the scrape set.  Aggregation across registries
    mirrors {!Telemetry.snapshot} within one: counters sum, gauges take
    the later registry's value (instance counts still sum, so
    multi-instance gauges stay tagged), histograms combine
    conservatively. *)

val attach_tracer : t -> Pvtrace.t -> unit
(** Install the monitor as [tracer]'s completion sink
    ({!Pvtrace.on_record}): every recorded span feeds the attribution
    fold, the flamegraph accumulator and the slow-op log.  No-op when
    either side is disabled. *)

val tick : t -> int -> unit
(** The clock hook ({!Clock.on_advance} target, wired by
    {!System.create}): scrape once when [now_ns] crosses the next
    interval boundary, timestamped at that boundary. *)

val scrape : t -> int -> unit
(** Force a scrape timestamped [now_ns], outside the tick grid — drivers
    use it for a final end-of-run sample. *)

val scrapes : t -> int
(** Scrapes taken so far. *)

(** {1 Results} *)

type alert = {
  al_ns : int;  (** scrape timestamp of the transition *)
  al_rule : string;
  al_firing : bool;  (** [true] = firing transition, [false] = resolved *)
  al_value : float;  (** source value at the transition *)
}

type slow_op = {
  so_start_ns : int;
  so_dur_ns : int;
  so_name : string;  (** "layer.op" of the slow span *)
  so_path : string list;  (** ancestor "layer.op" path, outermost first *)
}

type layer_row = {
  lr_layer : string;  (** a LAYERS.sexp layer name *)
  lr_self_ns : int;  (** time in this layer excluding child spans *)
  lr_total_ns : int;  (** time in this layer's spans including children *)
  lr_spans : int;
}

val attribution : t -> layer_row list
(** Per-layer profile, largest self-time first.  The fold is exact:
    summed [lr_self_ns] across layers equals {!traced_total_ns}
    (conservation — the bench gates on it). *)

val traced_total_ns : t -> int
(** Σ root-span durations: the total traced simulated time. *)

val traced_spans : t -> int
val alerts : t -> alert list  (** transition events, oldest first *)

val slow_ops : t -> slow_op list
val firing : t -> string list  (** names of currently-firing rules *)

(** {1 Exports} *)

val to_json : t -> Telemetry.Json.t
(** The full monitor state (schema "pvmon/v1"): series with retained
    points, attribution, alerts, slow ops.  Byte-deterministic under a
    pinned seed. *)

val to_openmetrics : t -> string
(** OpenMetrics text exposition: counters as [_total], multi-instance
    gauges labelled [{instances="N"}], histograms as quantile summaries,
    plus pvmon's own scrape counter and per-rule firing gauges;
    terminated by [# EOF].  Prometheus/Grafana-compatible. *)

val to_flamegraph : t -> string
(** Collapsed-stack lines ("layer.op;layer.op <self_ns>"), sorted — feed
    to flamegraph.pl, inferno or speedscope. *)

val to_chrome_counters : t -> string
(** Chrome trace-event JSON of "C" (counter) events, one track per
    series — overlays pvtrace's span export in Perfetto. *)
