(* pvmon: deterministic monitoring for the PASSv2 stack (DESIGN §16).

   Three consumers share one tick-driven core:

   - Time series.  Each scrape walks every watched telemetry registry
     through [Telemetry.series_snapshot] and appends one point per
     instrument name to a bounded ring: counters become per-second rates
     (delta over simulated elapsed time), gauges record their value,
     histograms record their p99.  Scrapes are driven by the simulated
     clock's advance hook, so a run's scrape timeline is a pure function
     of the workload and fault seed — same seed, byte-identical exports.

   - Cost attribution.  The monitor installs itself as the pvtrace
     completion sink and folds the span stream into per-layer self and
     total time, keyed by the LAYERS.sexp layer names.  The fold is
     exact, not sampled: children complete (and are recorded) before
     their parents, so when a span arrives the sum of its children's
     durations is already known and self = dur - children telescopes to
     [Σ self = Σ root durations] over any complete run (the conservation
     check the bench gates on).  The same fold feeds a collapsed-stack
     flamegraph keyed by the ancestor path pvtrace exposes at record
     time, and a slow-op log that captures that path for any span over
     threshold.

   - SLO rules.  After each scrape a declarative rule set is evaluated
     against the fresh points (counter rates, gauge values, histogram
     p99s).  A rule that breaches for [for_ticks] consecutive scrapes
     fires an alert event; a firing rule that stops breaching resolves.
     Only transitions are logged, so the alert stream is small and — like
     everything here — deterministic.

   Zero-cost when disabled, after pvtrace's own gate: [disabled] is a
   singleton, no clock hook or trace sink is ever installed for it, and
   every entry point is one branch.  Scrape work never advances the
   simulated clock, so even an enabled monitor adds zero simulated time
   (the bench's zero-overhead gate). *)

module J = Telemetry.Json

(* --- bounded rings ---------------------------------------------------------- *)

type 'a ring = {
  rcap : int;
  rdata : 'a option array;
  mutable rhead : int; (* next write slot *)
  mutable rfill : int;
}

let ring_create cap =
  let cap = max 1 cap in
  { rcap = cap; rdata = Array.make cap None; rhead = 0; rfill = 0 }

let ring_push r x =
  r.rdata.(r.rhead) <- Some x;
  r.rhead <- (r.rhead + 1) mod r.rcap;
  if r.rfill < r.rcap then r.rfill <- r.rfill + 1

let ring_list r =
  let start = if r.rfill < r.rcap then 0 else r.rhead in
  List.init r.rfill (fun i ->
      match r.rdata.((start + i) mod r.rcap) with
      | Some x -> x
      | None -> assert false)

(* --- time series ------------------------------------------------------------ *)

type point = { pt_ns : int; pt_value : float }

type series_kind = [ `Counter | `Gauge | `Histogram ]

type tseries = {
  ts_name : string;
  ts_kind : series_kind;
  mutable ts_instances : int;
  mutable ts_raw : float; (* counters: cumulative; histograms: count *)
  mutable ts_cur : float; (* latest point value *)
  mutable ts_summary : Telemetry.summary option; (* histograms only *)
  ts_points : point ring;
}

(* --- SLO rules and alerts --------------------------------------------------- *)

type source =
  | Counter_rate of string (* per-second rate of the counter's delta *)
  | Gauge_value of string
  | Hist_p99 of string

type rule = {
  rl_name : string;
  rl_source : source;
  rl_below : bool; (* breach when value < threshold instead of > *)
  rl_threshold : float;
  rl_for_ticks : int;
  mutable rl_breached : int; (* consecutive breaching scrapes *)
  mutable rl_firing : bool;
}

let rule ~name ~source ?(below = false) ?(for_ticks = 1) ~threshold () =
  { rl_name = name; rl_source = source; rl_below = below;
    rl_threshold = threshold; rl_for_ticks = max 1 for_ticks;
    rl_breached = 0; rl_firing = false }

(* The stock health rules from the issue: span latency, WAP backlog,
   retry and DRC-miss rates, checkpoint staleness.  Thresholds are set
   where healthy seed workloads sit comfortably inside them; the chaos
   harness overrides them to provoke firing.  Rule names follow the
   instrument convention (dotted lowercase, layer-prefixed) — the
   passlint [metric-name] rule enforces this at every [rule ~name:...]
   literal. *)
let default_rules () =
  [
    rule ~name:"dpapi.write_p99" ~source:(Hist_p99 "dpapi.pass_write_ns")
      ~threshold:5_000_000. ();
    rule ~name:"wap.backlog_depth" ~source:(Gauge_value "wap.queue_depth")
      ~threshold:64. ();
    rule ~name:"nfs.retry_rate" ~source:(Counter_rate "nfs.retries")
      ~threshold:10. ();
    rule ~name:"nfs.drc_miss_rate" ~source:(Counter_rate "nfs.drc.misses")
      ~threshold:100. ();
    rule ~name:"waldo.ckpt_staleness"
      ~source:(Gauge_value "waldo.frames_since_ckpt") ~threshold:10_000. ();
  ]

type alert = {
  al_ns : int;
  al_rule : string;
  al_firing : bool; (* true = Firing transition, false = Resolved *)
  al_value : float;
}

type slow_op = {
  so_start_ns : int;
  so_dur_ns : int;
  so_name : string; (* "layer.op" of the slow span *)
  so_path : string list; (* ancestor "layer.op" path, outermost first *)
}

(* --- attribution ------------------------------------------------------------ *)

type layer_row = {
  lr_layer : string;
  lr_self_ns : int;
  lr_total_ns : int;
  lr_spans : int;
}

type lrow = {
  mutable l_self : int;
  mutable l_total : int;
  mutable l_spans : int;
}

(* Span layers (the strings layers pass to [Pvtrace.span ~layer]) mapped
   onto LAYERS.sexp layer names.  test/test_monitor.ml cross-checks every
   target against the parsed LAYERS.sexp so the map cannot drift. *)
let layer_of span_layer =
  match span_layer with
  | "observer" | "analyzer" | "distributor" -> "core"
  | "lasagna" | "wap" -> "lasagna"
  | "waldo" -> "waldo"
  | "simos" -> "os"
  | s
    when Telemetry.name_under ~prefix:"panfs" s
         || Telemetry.name_under ~prefix:"nfs" s ->
      "os"
  | _ -> "top"

(* --- the monitor ------------------------------------------------------------ *)

type t = {
  on : bool;
  interval : int; (* scrape interval, simulated ns *)
  retention : int; (* points kept per series *)
  slow_op_ns : int; (* span-duration threshold for the slow-op log *)
  rules : rule list;
  mutable registries : Telemetry.registry list; (* watch order *)
  series : (string, tseries) Hashtbl.t;
  mutable next_due : int;
  mutable last_scrape_ns : int;
  mutable scrape_count : int;
  mutable alerts : alert list; (* newest first *)
  slow : slow_op ring;
  (* attribution fold state *)
  childsum : (int, int) Hashtbl.t; (* open span id -> Σ child durations *)
  layers : (string, lrow) Hashtbl.t;
  stacks : (string, int ref) Hashtbl.t; (* collapsed stack -> self ns *)
  mutable root_ns : int; (* Σ root-span durations *)
  mutable span_count : int;
}

let disabled =
  { on = false; interval = 1; retention = 0; slow_op_ns = max_int; rules = [];
    registries = []; series = Hashtbl.create 1; next_due = max_int;
    last_scrape_ns = 0; scrape_count = 0; alerts = [];
    slow = ring_create 1; childsum = Hashtbl.create 1;
    layers = Hashtbl.create 1; stacks = Hashtbl.create 1; root_ns = 0;
    span_count = 0 }

let default_interval = 10_000_000 (* 10 simulated ms *)
let default_retention = 512
let default_slow_op = 10_000_000 (* 10 simulated ms *)

let create ?(interval_ns = default_interval) ?(retention = default_retention)
    ?(slow_op_ns = default_slow_op) ?rules () =
  let rules = match rules with Some rs -> rs | None -> default_rules () in
  let interval = max 1 interval_ns in
  { on = true; interval; retention = max 1 retention;
    slow_op_ns = max 1 slow_op_ns; rules; registries = [];
    series = Hashtbl.create 64; next_due = interval; last_scrape_ns = 0;
    scrape_count = 0; alerts = []; slow = ring_create 64;
    childsum = Hashtbl.create 256; layers = Hashtbl.create 16;
    stacks = Hashtbl.create 64; root_ns = 0; span_count = 0 }

let enabled t = t.on
let interval_ns t = t.interval
let scrapes t = t.scrape_count
let watch t reg = if t.on then t.registries <- t.registries @ [ reg ]

(* --- scraping --------------------------------------------------------------- *)

let get_series t name kind =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
      let s =
        { ts_name = name; ts_kind = kind; ts_instances = 0; ts_raw = 0.;
          ts_cur = 0.; ts_summary = None; ts_points = ring_create t.retention }
      in
      Hashtbl.add t.series name s;
      s

(* Merge one name's rows across watched registries, mirroring
   Telemetry.snapshot's per-registry rules: counters sum, gauges take the
   later registry (instances still summed so multi-instance gauges stay
   visible), histogram counts and sums add with percentiles combined
   conservatively (max). *)
let merge_rows a b =
  let open Telemetry in
  match (a.se_kind, b.se_kind) with
  | `Counter, `Counter ->
      { a with se_value = a.se_value +. b.se_value;
               se_instances = a.se_instances + b.se_instances }
  | `Gauge, `Gauge ->
      { b with se_instances = a.se_instances + b.se_instances }
  | `Histogram, `Histogram ->
      let s =
        match (a.se_summary, b.se_summary) with
        | Some x, Some y ->
            Some
              { count = x.count + y.count; sum = x.sum +. y.sum;
                min = Float.min x.min y.min; max = Float.max x.max y.max;
                p50 = Float.max x.p50 y.p50; p95 = Float.max x.p95 y.p95;
                p99 = Float.max x.p99 y.p99 }
        | Some x, None -> Some x
        | None, s -> s
      in
      { a with se_value = a.se_value +. b.se_value;
               se_instances = a.se_instances + b.se_instances;
               se_summary = s }
  | _ -> b (* kind clash: later registration wins, like the registry *)

let collect t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun reg ->
      List.iter
        (fun row ->
          let name = row.Telemetry.se_name in
          match Hashtbl.find_opt tbl name with
          | None -> Hashtbl.add tbl name row
          | Some prev -> Hashtbl.replace tbl name (merge_rows prev row))
        (Telemetry.series_snapshot reg))
    t.registries;
  let rows = Hashtbl.fold (fun _ r acc -> r :: acc) tbl [] in
  List.sort
    (fun a b -> String.compare a.Telemetry.se_name b.Telemetry.se_name)
    rows

let source_value t = function
  | Counter_rate name | Gauge_value name | Hist_p99 name -> (
      match Hashtbl.find_opt t.series name with
      | Some s -> Some s.ts_cur
      | None -> None)

let eval_rules t ts =
  List.iter
    (fun r ->
      match source_value t r.rl_source with
      | None -> () (* instrument absent from this stack: rule stays idle *)
      | Some v ->
          let breach =
            if r.rl_below then v < r.rl_threshold else v > r.rl_threshold
          in
          if breach then begin
            r.rl_breached <- r.rl_breached + 1;
            if (not r.rl_firing) && r.rl_breached >= r.rl_for_ticks then begin
              r.rl_firing <- true;
              t.alerts <-
                { al_ns = ts; al_rule = r.rl_name; al_firing = true;
                  al_value = v }
                :: t.alerts
            end
          end
          else begin
            r.rl_breached <- 0;
            if r.rl_firing then begin
              r.rl_firing <- false;
              t.alerts <-
                { al_ns = ts; al_rule = r.rl_name; al_firing = false;
                  al_value = v }
                :: t.alerts
            end
          end)
    t.rules

let scrape t ts =
  if t.on then begin
    let elapsed_ns = ts - t.last_scrape_ns in
    List.iter
      (fun row ->
        let open Telemetry in
        let s = get_series t row.se_name row.se_kind in
        s.ts_instances <- row.se_instances;
        (match (s.ts_kind, row.se_kind) with
        | `Counter, `Counter ->
            let rate =
              if elapsed_ns <= 0 then 0.
              else
                (row.se_value -. s.ts_raw)
                /. (float_of_int elapsed_ns /. 1e9)
            in
            s.ts_raw <- row.se_value;
            s.ts_cur <- rate;
            ring_push s.ts_points { pt_ns = ts; pt_value = rate }
        | `Gauge, `Gauge ->
            s.ts_cur <- row.se_value;
            ring_push s.ts_points { pt_ns = ts; pt_value = row.se_value }
        | `Histogram, `Histogram ->
            let p99 =
              match row.se_summary with Some sm -> sm.p99 | None -> 0.
            in
            s.ts_raw <- row.se_value;
            s.ts_cur <- p99;
            s.ts_summary <- row.se_summary;
            ring_push s.ts_points { pt_ns = ts; pt_value = p99 }
        | _ -> () (* a name changed kind mid-run: keep the first kind *));
        ())
      (collect t);
    eval_rules t ts;
    t.last_scrape_ns <- ts;
    t.scrape_count <- t.scrape_count + 1
  end

(* The clock hook.  One scrape per hook call that crosses a due tick,
   timestamped at the last interval boundary ≤ now, so a large advance
   yields one point (at a grid-aligned timestamp), not a run of identical
   ones.  Deterministic: the scrape timeline is a function of the clock's
   advance sequence only. *)
let tick t now =
  if t.on && now >= t.next_due then begin
    let due = now - (now mod t.interval) in
    scrape t due;
    t.next_due <- due + t.interval
  end

(* --- attribution fold (pvtrace sink) ---------------------------------------- *)

let span_name layer op = layer ^ "." ^ op

let fold_span t tracer sp =
  let dur = sp.Pvtrace.sp_dur_ns in
  let id = sp.Pvtrace.sp_id in
  let children =
    match Hashtbl.find_opt t.childsum id with
    | Some c ->
        Hashtbl.remove t.childsum id;
        c
    | None -> 0
  in
  let self = dur - children in
  (if sp.Pvtrace.sp_parent <> 0 then
     let prev =
       match Hashtbl.find_opt t.childsum sp.Pvtrace.sp_parent with
       | Some c -> c
       | None -> 0
     in
     Hashtbl.replace t.childsum sp.Pvtrace.sp_parent (prev + dur)
   else t.root_ns <- t.root_ns + dur);
  let layer = layer_of sp.Pvtrace.sp_layer in
  let row =
    match Hashtbl.find_opt t.layers layer with
    | Some r -> r
    | None ->
        let r = { l_self = 0; l_total = 0; l_spans = 0 } in
        Hashtbl.add t.layers layer r;
        r
  in
  row.l_self <- row.l_self + self;
  row.l_total <- row.l_total + dur;
  row.l_spans <- row.l_spans + 1;
  t.span_count <- t.span_count + 1;
  (* ancestor path: the span's own frame is already popped at record
     time, so the open frames are exactly its ancestors *)
  let path =
    List.map (fun (l, o) -> span_name l o) (Pvtrace.open_frames tracer)
  in
  if self > 0 then begin
    let key =
      String.concat ";"
        (path @ [ span_name sp.Pvtrace.sp_layer sp.Pvtrace.sp_op ])
    in
    match Hashtbl.find_opt t.stacks key with
    | Some r -> r := !r + self
    | None -> Hashtbl.add t.stacks key (ref self)
  end;
  if dur >= t.slow_op_ns then
    ring_push t.slow
      { so_start_ns = sp.Pvtrace.sp_start_ns; so_dur_ns = dur;
        so_name = span_name sp.Pvtrace.sp_layer sp.Pvtrace.sp_op;
        so_path = path }

let attach_tracer t tracer =
  if t.on && Pvtrace.enabled tracer then
    Pvtrace.on_record tracer (fun sp -> fold_span t tracer sp)

(* --- accessors -------------------------------------------------------------- *)

let attribution t =
  let rows =
    Hashtbl.fold
      (fun layer r acc ->
        { lr_layer = layer; lr_self_ns = r.l_self; lr_total_ns = r.l_total;
          lr_spans = r.l_spans }
        :: acc)
      t.layers []
  in
  List.sort
    (fun a b ->
      match Int.compare b.lr_self_ns a.lr_self_ns with
      | 0 -> String.compare a.lr_layer b.lr_layer
      | c -> c)
    rows

let traced_total_ns t = t.root_ns
let traced_spans t = t.span_count
let alerts t = List.rev t.alerts
let slow_ops t = ring_list t.slow

let firing t =
  List.filter_map
    (fun r -> if r.rl_firing then Some r.rl_name else None)
    t.rules

(* --- exporters -------------------------------------------------------------- *)

let sorted_series t =
  let rows = Hashtbl.fold (fun _ s acc -> s :: acc) t.series [] in
  List.sort (fun a b -> String.compare a.ts_name b.ts_name) rows

let kind_str = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let to_json t =
  let series_json s =
    J.Obj
      ([
         ("name", J.Str s.ts_name);
         ("kind", J.Str (kind_str s.ts_kind));
         ("instances", J.Int s.ts_instances);
         ("last", J.Float s.ts_cur);
       ]
      @ (match s.ts_kind with
        | `Counter -> [ ("cumulative", J.Float s.ts_raw) ]
        | _ -> [])
      @ [
          ( "points",
            J.List
              (List.map
                 (fun p ->
                   J.Obj [ ("t", J.Int p.pt_ns); ("v", J.Float p.pt_value) ])
                 (ring_list s.ts_points)) );
        ])
  in
  let layer_json r =
    J.Obj
      [
        ("layer", J.Str r.lr_layer);
        ("self_ns", J.Int r.lr_self_ns);
        ("total_ns", J.Int r.lr_total_ns);
        ("spans", J.Int r.lr_spans);
      ]
  in
  let alert_json a =
    J.Obj
      [
        ("t", J.Int a.al_ns);
        ("rule", J.Str a.al_rule);
        ("state", J.Str (if a.al_firing then "firing" else "resolved"));
        ("value", J.Float a.al_value);
      ]
  in
  let slow_json s =
    J.Obj
      [
        ("start_ns", J.Int s.so_start_ns);
        ("dur_ns", J.Int s.so_dur_ns);
        ("name", J.Str s.so_name);
        ("path", J.List (List.map (fun p -> J.Str p) s.so_path));
      ]
  in
  J.Obj
    [
      ("schema", J.Str "pvmon/v1");
      ("interval_ns", J.Int t.interval);
      ("scrapes", J.Int t.scrape_count);
      ("last_scrape_ns", J.Int t.last_scrape_ns);
      ("series", J.List (List.map series_json (sorted_series t)));
      ( "attribution",
        J.Obj
          [
            ("traced_total_ns", J.Int t.root_ns);
            ("spans", J.Int t.span_count);
            ("layers", J.List (List.map layer_json (attribution t)));
          ] );
      ("alerts", J.List (List.map alert_json (alerts t)));
      ("slow_ops", J.List (List.map slow_json (slow_ops t)));
    ]

(* OpenMetrics exposition: dotted instrument names mangled to the
   [a-z0-9_] charset, one TYPE line per family, histograms as quantile
   summaries.  Multi-instance gauges carry an [instances] label so a
   last-registered-wins value is never mistaken for an aggregate
   (telemetry's documented gauge rule).  Deterministic: families sort by
   name and floats go through the same fixed formatter as the JSON. *)
let mangle name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let to_openmetrics t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  List.iter
    (fun s ->
      let n = mangle s.ts_name in
      match s.ts_kind with
      | `Counter ->
          line "# TYPE %s counter\n" n;
          line "%s_total %s\n" n (fmt_float s.ts_raw)
      | `Gauge ->
          line "# TYPE %s gauge\n" n;
          if s.ts_instances > 1 then
            line "%s{instances=\"%d\"} %s\n" n s.ts_instances
              (fmt_float s.ts_cur)
          else line "%s %s\n" n (fmt_float s.ts_cur)
      | `Histogram -> (
          match s.ts_summary with
          | None -> ()
          | Some sm ->
              line "# TYPE %s summary\n" n;
              line "%s{quantile=\"0.5\"} %s\n" n (fmt_float sm.Telemetry.p50);
              line "%s{quantile=\"0.95\"} %s\n" n (fmt_float sm.Telemetry.p95);
              line "%s{quantile=\"0.99\"} %s\n" n (fmt_float sm.Telemetry.p99);
              line "%s_count %d\n" n sm.Telemetry.count;
              line "%s_sum %s\n" n (fmt_float sm.Telemetry.sum)))
    (sorted_series t);
  line "# TYPE pvmon_scrapes counter\n";
  line "pvmon_scrapes_total %d\n" t.scrape_count;
  line "# TYPE pvmon_alert_firing gauge\n";
  List.iter
    (fun r ->
      line "pvmon_alert_firing{rule=\"%s\"} %d\n" r.rl_name
        (if r.rl_firing then 1 else 0))
    (List.sort (fun a b -> String.compare a.rl_name b.rl_name) t.rules);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* Collapsed-stack flamegraph lines ("a.b;c.d <self_ns>"), sorted, for
   flamegraph.pl / speedscope / inferno. *)
let to_flamegraph t =
  let rows = Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.stacks [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" k v))
    rows;
  Buffer.contents buf

(* Chrome counter tracks ("C" phase events): one track per series, one
   sample per retained point.  Loads into chrome://tracing / Perfetto
   alongside pvtrace's span export. *)
let to_chrome_counters t =
  let buf = Buffer.create 4096 in
  let us_of_ns ns =
    Printf.sprintf "%d.%03d" (ns / 1000) (abs ns mod 1000)
  in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf "{\"name\":\"";
          Buffer.add_string buf (J.escape s.ts_name);
          Buffer.add_string buf "\",\"ph\":\"C\",\"ts\":";
          Buffer.add_string buf (us_of_ns p.pt_ns);
          Buffer.add_string buf ",\"pid\":1,\"tid\":1,\"args\":{\"value\":";
          Buffer.add_string buf (fmt_float p.pt_value);
          Buffer.add_string buf "}}")
        (ring_list s.ts_points))
    (sorted_series t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
