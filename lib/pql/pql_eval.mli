(** PQL evaluator: path matching as graph reachability over the Provdb,
    conditions and aggregates over the resulting bindings. *)

exception Error of string

(** A result cell: a graph node at a version, or a scalar value. *)
type item = Node of Pass_core.Pnode.t * int | Value of Pass_core.Pvalue.t

val item_equal : item -> item -> bool

type env = (string * item) list
(** The FROM clause binds variables to items; WHERE filters environments. *)

val is_process : Provdb.t -> Pass_core.Pnode.t -> bool
(** A node is a process if some version carries a TYPE=PROCESS record. *)

val glob_match : string -> string -> bool
(** The [~] operator: [*] and [?] wildcards, anchored at both ends. *)

val run : Provdb.t -> Pql_ast.query -> item list list
(** Evaluate a parsed query; rows in deterministic order.
    @raise Error on unbound variables or type mismatches. *)
