(** PQL naive evaluator: path matching as graph reachability over the
    Provdb, conditions and aggregates over the resulting bindings.

    Since ISSUE 9 this module is internal machinery: queries execute
    through {!Pql.Engine} (which plans with [Pql_planner] and runs with
    [Pql_exec]), and this evaluator serves two roles —

    - the {e reference oracle}: {!reference_rows} is the semantics
      definition the planner's output is property-tested against;
    - the {e shared kernel}: the executor reuses {!eval_path},
      {!eval_cond}, {!eval_expr}, {!root_items} and {!project} so the two
      pipelines can only disagree about which environments they build,
      never about path/predicate/projection semantics. *)

exception Error of string
(** Evaluation error (unbound variable, malformed use); {!Pql.Engine}
    wraps it into the typed [Pql.Error]. *)

(** A result cell: a graph node at a version, or a scalar value. *)
type item = Node of Pass_core.Pnode.t * int | Value of Pass_core.Pvalue.t

val item_equal : item -> item -> bool

type env = (string * item) list
(** The FROM clause binds variables to items; WHERE filters environments. *)

val is_process : Provdb.t -> Pass_core.Pnode.t -> bool
(** A node is a process if some version carries a TYPE=PROCESS record. *)

val glob_match : string -> string -> bool
(** The [~] operator: [*] and [?] wildcards, anchored at both ends. *)

val attr_values : Provdb.t -> Pass_core.Pnode.t -> int -> string -> Pass_core.Pvalue.t list
(** Attribute lookup across every version of the object
    (case-insensitive), falling back to the [name]/[version]/[pnode]
    pseudo-attributes when no record matches. *)

val root_items : Provdb.t -> env -> Pql_ast.root -> item list
(** Enumerate a class root (files/processes/objects at their max
    version) or look up a bound variable.
    @raise Error on an unbound variable. *)

val eval_path : Provdb.t -> Pql_ast.path_re -> item list -> item list
(** Endpoints of a path regular expression from the given start items,
    deduplicated; closures saturate breadth-first. *)

val eval_expr : Provdb.t -> env -> Pql_ast.expr -> item list
(** Expressions are set-valued (OEM attribute access). @raise Error. *)

val eval_cond : Provdb.t -> env -> Pql_ast.cond -> bool
(** Existential comparison semantics over set-valued expressions;
    subqueries evaluate naively under the given outer environment.
    @raise Error. *)

val eval_envs : Provdb.t -> env -> Pql_ast.query -> env list
(** The naive FROM/WHERE pipeline: every binding extends every
    environment, then WHERE filters.  @raise Error. *)

val project : Provdb.t -> Pql_ast.query -> env list -> item list list
(** SELECT over surviving environments: aggregation or per-environment
    cartesian product, set-semantics row dedup, ordering.  Shared by the
    planner's executor. *)

val apply_limit : Pql_ast.query -> item list list -> item list list

val reference_rows : Provdb.t -> Pql_ast.query -> item list list
(** Evaluate a parsed query naively end to end; rows in deterministic
    order.  This is the planner's correctness oracle.
    @raise Error on unbound variables or type mismatches. *)
