(* Plan execution for PQL (ISSUE 9).

   Runs a Pql_plan over the Provdb, reusing the naive evaluator's
   machinery (eval_path / eval_cond / root_items / project) for every
   semantic decision.  What differs from the naive pipeline is purely
   structural:

   - independent bindings (class roots) are computed ONCE, not once per
     environment;
   - index probes replace class scans when the planner chose them, with
     pushed predicates re-applied exactly, so probes only narrow;
   - dependent walks (Var_step with a path) are memoized per distinct
     start item — a hash join of the environment set against the walk
     relation;
   - cross-binding equality predicates run as hash joins instead of
     filtering the cartesian product.

   Together these turn the selective-ancestry pattern
   [select A from Provenance.file as F, F.input* as A where F.name = k]
   from O(|graph| closures) into one index probe plus one closure:
   O(result). *)

open Pql_ast
module E = Pql_eval
module P = Pql_plan
module Pnode = Pass_core.Pnode

let item_key = function
  | E.Node (p, v) -> `N (Pnode.to_int p, v)
  | E.Value v -> `V v

(* class membership for probe results, mirroring root_items *)
let in_class db root p =
  match root with
  | Root_objects -> true
  | Root_files -> (
      match Provdb.find_node db p with
      | Some n -> n.Provdb.kind = Provdb.File
      | None -> false)
  | Root_processes -> E.is_process db p
  | Root_var _ -> true

let at_max_version db p =
  match Provdb.find_node db p with
  | Some n -> Some (E.Node (p, n.Provdb.max_version))
  | None -> None

let distinct_pnodes pvs =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (p, _) ->
      if Hashtbl.mem seen p then None
      else begin
        Hashtbl.replace seen p ();
        Some p
      end)
    pvs

(* candidate items of an independent access, before path/pushed *)
let access_items db = function
  | P.Scan Root_processes ->
      (* the TYPE posting list is a superset of every process node:
         is_process needs a TYPE record, hence a posting *)
      Provdb.fault_in db;
      distinct_pnodes (Provdb.with_attr db "TYPE")
      |> List.filter (E.is_process db)
      |> List.filter_map (at_max_version db)
  | P.Scan root -> E.root_items db [] root
  | P.Name_probe (root, s) ->
      (* alias sightings can live in archived history: settle it first
         so the probe sees the complete index *)
      Provdb.fault_in db;
      Provdb.find_by_name db s
      |> List.filter (in_class db root)
      |> List.filter_map (at_max_version db)
  | P.Attr_probe (root, a) ->
      Provdb.with_attr db a (* faults the archive in itself *)
      |> distinct_pnodes
      |> List.filter (in_class db root)
      |> List.filter_map (at_max_version db)
  | P.Var_step _ -> invalid_arg "access_items: dependent step"

(* pushed conjuncts only mention this binder, so a singleton environment
   evaluates them exactly *)
let passes_pushed db (step : P.step) it =
  List.for_all (fun c -> E.eval_cond db [ (step.binder, it) ] c) step.pushed

let run db (q : query) (plan : P.t) =
  let step_envs envs (step : P.step) =
    match step.access with
    | P.Var_step v ->
        let memo = Hashtbl.create 64 in
        let expand start =
          let key = item_key start in
          match Hashtbl.find_opt memo key with
          | Some endpoints -> endpoints
          | None ->
              let endpoints =
                match step.path with
                | None -> [ start ]
                | Some p -> E.eval_path db p [ start ]
              in
              let endpoints = List.filter (passes_pushed db step) endpoints in
              Hashtbl.replace memo key endpoints;
              endpoints
        in
        let envs' =
          List.concat_map
            (fun env ->
              match List.assoc_opt v env with
              | None -> raise (Pql_eval.Error (Printf.sprintf "unbound variable %s" v))
              | Some start ->
                  List.map (fun it -> (step.binder, it) :: env) (expand start))
            envs
        in
        step.actual <- Hashtbl.fold (fun _ eps acc -> acc + List.length eps) memo 0;
        envs'
    | _ -> (
        let candidates =
          match step.path with
          | None -> access_items db step.access
          | Some p -> E.eval_path db p (access_items db step.access)
        in
        let candidates = List.filter (passes_pushed db step) candidates in
        step.actual <- List.length candidates;
        match step.join with
        | None ->
            List.concat_map
              (fun env -> List.map (fun it -> (step.binder, it) :: env) candidates)
              envs
        | Some (probe_key, build_key) ->
            (* index candidates so matches extend environments in
               candidate order, exactly like the nested loop would *)
            let arr = Array.of_list candidates in
            let table = Hashtbl.create (Array.length arr * 2) in
            Array.iteri
              (fun i it ->
                List.iter
                  (fun kv ->
                    let k = item_key kv in
                    Hashtbl.replace table k
                      (i :: (match Hashtbl.find_opt table k with Some l -> l | None -> [])))
                  (E.eval_expr db [ (step.binder, it) ] build_key))
              arr;
            List.concat_map
              (fun env ->
                E.eval_expr db env probe_key
                |> List.concat_map (fun kv ->
                       match Hashtbl.find_opt table (item_key kv) with
                       | Some idxs -> idxs
                       | None -> [])
                |> List.sort_uniq Int.compare
                |> List.map (fun i -> (step.binder, arr.(i)) :: env))
              envs)
  in
  let envs = List.fold_left step_envs [ [] ] plan.P.steps in
  let envs =
    match plan.P.residual with
    | None -> envs
    | Some c -> List.filter (fun env -> E.eval_cond db env c) envs
  in
  let rows = E.apply_limit q (E.project db q envs) in
  plan.P.actual_rows <- List.length rows;
  rows
