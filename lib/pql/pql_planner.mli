(** Cost-based lowering of a parsed PQL query to a {!Pql_plan.t}.

    Decomposes WHERE into conjuncts and pushes each down to the earliest
    FROM binding covering its free variables; picks index probes
    (name/attr) over class scans when their posting-list cardinality is
    smaller; turns cross-binding equality conjuncts into hash joins; and
    estimates cardinalities from Provdb index statistics (posting
    lengths, class counts, average ancestry degree, and bounded BFS over
    the transitive-adjacency index when start pnodes are known at plan
    time).

    Probes are supersets by construction — pushed conjuncts are still
    applied with exact evaluator semantics — so planning affects cost,
    never answers.  Plan selection rules are documented in DESIGN §15. *)

val plan : Provdb.t -> Pql_ast.query -> Pql_plan.t
(** Side-effect free on the database (statistics reads only; never
    faults the archive in).
    @raise Pql_eval.Error when a FROM references an unbound variable. *)
