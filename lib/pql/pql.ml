(* PQL front end: the prepared-query engine (ISSUE 9).

   The lifecycle is prepare -> explain/execute: [Engine.prepare] parses
   and plans against a database's index statistics, [Engine.explain]
   exposes the chosen plan, [Engine.execute] runs it (filling in the
   plan's actual-cardinality counters).  The naive evaluator survives as
   Pql_eval.reference_rows, the planner's correctness oracle.

   The typical query returns a set of values; nodes render as
   name.version so results are readable in examples and the CLI. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue

type item = Pql_eval.item = Node of Pnode.t * int | Value of Pvalue.t
type row = item list

type error_kind =
  | Parse_error of string (* lexing or parsing failure *)
  | Plan_error of string (* query can't be planned (e.g. unbound variable) *)
  | Eval_error of string (* runtime failure while executing *)

exception Error of error_kind

let error_message = function
  | Parse_error m -> "parse error: " ^ m
  | Plan_error m -> "plan error: " ^ m
  | Eval_error m -> "eval error: " ^ m

let parse input =
  try Pql_parser.parse input with
  | Pql_parser.Error msg -> raise (Error (Parse_error msg))
  | Pql_lexer.Error (msg, pos) ->
      raise (Error (Parse_error (Printf.sprintf "lex error at %d: %s" pos msg)))

let rec column_name = function
  | Pql_ast.O_expr (Pql_ast.Var v) -> v
  | Pql_ast.O_expr (Pql_ast.Attr (v, a)) -> v ^ "." ^ a
  | Pql_ast.O_expr (Pql_ast.Lit _) -> "literal"
  | Pql_ast.O_agg (agg, e) ->
      let f =
        match agg with
        | Pql_ast.Count -> "count"
        | Pql_ast.Sum -> "sum"
        | Pql_ast.Min -> "min"
        | Pql_ast.Max -> "max"
        | Pql_ast.Avg -> "avg"
      in
      Printf.sprintf "%s(%s)" f (column_name (Pql_ast.O_expr e))

module Engine = struct
  type prepared = {
    db : Provdb.t;
    ast : Pql_ast.query;
    plan : Pql_plan.t;
    columns : string list;
  }

  let prepare_ast db ast =
    let plan =
      try Pql_planner.plan db ast with Pql_eval.Error msg -> raise (Error (Plan_error msg))
    in
    { db; ast; plan; columns = List.map column_name ast.Pql_ast.select }

  let prepare db input = prepare_ast db (parse input)
  let explain p = p.plan
  let columns p = p.columns
  let text p = Pql_print.to_string p.ast

  let execute p =
    try Pql_exec.run p.db p.ast p.plan
    with Pql_eval.Error msg -> raise (Error (Eval_error msg))
end

let render_item db = function
  | Pql_eval.Value (Pvalue.Str s) -> s
  | Pql_eval.Value (Pvalue.Int i) -> string_of_int i
  | Pql_eval.Value (Pvalue.Bool b) -> string_of_bool b
  | Pql_eval.Value (Pvalue.Bytes b) -> Printf.sprintf "<%d bytes>" (String.length b)
  | Pql_eval.Value (Pvalue.Strs l) -> "[" ^ String.concat " " l ^ "]"
  | Pql_eval.Value (Pvalue.Xref x) ->
      Printf.sprintf "%s.%d"
        (Option.value (Provdb.name_of db x.pnode) ~default:(Format.asprintf "%a" Pnode.pp x.pnode))
        x.version
  | Pql_eval.Node (p, v) ->
      Printf.sprintf "%s.%d"
        (Option.value (Provdb.name_of db p) ~default:(Format.asprintf "%a" Pnode.pp p))
        v

let render db rows = List.map (fun r -> List.map (render_item db) r) rows

let pp_rows db ~columns ppf rows =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " columns);
  List.iter
    (fun r -> Format.fprintf ppf "%s@," (String.concat " | " (List.map (render_item db) r)))
    rows;
  Format.fprintf ppf "(%d rows)@]" (List.length rows)

(* Row projections used by examples and tests: the set of node names /
   pnodes a single-column row set holds. *)
let names_of_rows db rows =
  List.filter_map
    (fun row ->
      match row with
      | [ Pql_eval.Node (p, _) ] -> Provdb.name_of db p
      | [ Pql_eval.Value (Pvalue.Str s) ] -> Some s
      | _ -> None)
    rows
  |> List.sort_uniq String.compare

let nodes_of_rows rows =
  List.filter_map (fun row -> match row with [ Pql_eval.Node (p, _) ] -> Some p | _ -> None) rows
  |> List.sort_uniq Pnode.compare
