(* Cost-based lowering of a PQL query to a Pql_plan (ISSUE 9).

   The planner decomposes WHERE into conjuncts, assigns each conjunct to
   the earliest FROM binding that covers its free variables (predicate
   pushdown), picks an access path per binding by comparing index
   cardinalities against a class scan, turns cross-binding equality
   conjuncts into hash joins, and estimates cardinalities from the
   Provdb's index statistics.

   Access-path selection is deliberately superset-based: a probe only
   narrows the candidate set, and the pushed conjunct is still applied
   with exact evaluator semantics afterwards, so a chosen index can make
   a query faster but never change its answer.  Probes are only legal on
   bindings without a path: a path binds the walk's *endpoints*, which a
   start-side index says nothing about.

   Estimates are order-of-magnitude heuristics, not a science: index
   probes cost their posting-list length, scans cost the class table,
   walks multiply by the graph's average ancestry out-degree, and
   closures from a small set of known start pnodes are measured directly
   against the transitive-adjacency index (bounded BFS).  They only need
   to rank access paths and make EXPLAIN informative. *)

open Pql_ast

(* saturating arithmetic: estimates must not wrap *)
let sadd a b =
  let s = a + b in
  if s < 0 then max_int else s

let smul a b = if a <= 0 || b <= 0 then 0 else if a > max_int / b then max_int else a * b

(* --- free variables --------------------------------------------------------- *)

let expr_vars bound acc = function
  | Var v | Attr (v, _) -> if List.mem v bound then acc else v :: acc
  | Lit _ -> acc

let rec cond_vars bound acc = function
  | Cmp (a, _, b) -> expr_vars bound (expr_vars bound acc a) b
  | And (a, b) | Or (a, b) -> cond_vars bound (cond_vars bound acc a) b
  | Not c -> cond_vars bound acc c
  | Exists q -> query_vars bound acc q
  | In_query (e, q) -> query_vars bound (expr_vars bound acc e) q

(* subquery FROMs bind sequentially; anything they reference beyond
   their own binders is free in the enclosing scope *)
and query_vars bound acc (q : query) =
  let bound, acc =
    List.fold_left
      (fun (bound, acc) (s : source) ->
        let acc =
          match s.root with
          | Root_var v when not (List.mem v bound) -> v :: acc
          | _ -> acc
        in
        (s.binder :: bound, acc))
      (bound, acc) q.froms
  in
  let acc = match q.where with Some c -> cond_vars bound acc c | None -> acc in
  let acc =
    List.fold_left (fun acc (O_expr e | O_agg (_, e)) -> expr_vars bound acc e) acc q.select
  in
  match q.order with Some (e, _) -> expr_vars bound acc e | None -> acc

let free_vars c = List.sort_uniq String.compare (cond_vars [] [] c)

(* --- conjunct decomposition ------------------------------------------------- *)

let rec split_and = function And (a, b) -> split_and a @ split_and b | c -> [ c ]

let join_and = function
  | [] -> None
  | c :: rest -> Some (List.fold_left (fun acc c -> And (acc, c)) c rest)

(* --- sargable keys ---------------------------------------------------------- *)

(* The name/version/pnode pseudo-attributes (exact lowercase spellings)
   can hold without any record, so a record-backed index probe on them
   would not be a superset — except [name], whose every possible value
   is a sighting in the complete name index. *)
let is_pseudo = function "name" | "version" | "pnode" -> true | _ -> false

let eq_key b = function
  | Cmp (Attr (v, a), Eq, Lit l) when String.equal v b -> Some (a, l)
  | Cmp (Lit l, Eq, Attr (v, a)) when String.equal v b -> Some (a, l)
  | _ -> None

let name_key b conds =
  List.find_map
    (fun c ->
      match eq_key b c with
      | Some (a, L_str s) when String.equal (String.uppercase_ascii a) "NAME" -> Some s
      | _ -> None)
    conds

let attr_key b conds =
  List.find_map
    (fun c ->
      match eq_key b c with Some (a, _) when not (is_pseudo a) -> Some a | _ -> None)
    conds

(* --- cardinality estimation ------------------------------------------------- *)

type dir = Fwd | Inv | Mixed

let rec path_dir = function
  | Edge (Forward _) | Edge Any_edge -> Fwd
  | Edge (Inverse _) -> Inv
  | Seq (a, b) | Alt (a, b) -> (
      match (path_dir a, path_dir b) with Fwd, Fwd -> Fwd | Inv, Inv -> Inv | _ -> Mixed)
  | Star p | Plus p | Opt p -> path_dir p

let rec has_closure = function
  | Star _ | Plus _ -> true
  | Edge _ -> false
  | Seq (a, b) | Alt (a, b) -> has_closure a || has_closure b
  | Opt p -> has_closure p

let avg_degree db = max 1 (Provdb.edge_count db / max 1 (Provdb.node_count db))
let graph_size db = sadd (Provdb.node_count db) (Provdb.quad_count db)

(* start-count-only guess: each edge multiplies by the average ancestry
   out-degree; closures saturate geometrically, capped by graph size *)
let rec walk_est db starts = function
  | Edge _ -> smul starts (avg_degree db)
  | Seq (a, b) -> walk_est db (walk_est db starts a) b
  | Alt (a, b) -> sadd (walk_est db starts a) (walk_est db starts b)
  | Opt p -> sadd starts (walk_est db starts p)
  | Star p -> sadd starts (closure_est db starts p)
  | Plus p -> closure_est db starts p

and closure_est db starts p = min (graph_size db) (smul (max starts (walk_est db starts p)) 4)

(* closure from known start pnodes: measure the cone directly against
   the transitive-adjacency index instead of guessing *)
let reach_est db dirn pnodes =
  let limit = 20_000 in
  List.fold_left
    (fun acc p ->
      let cone =
        match dirn with
        | Fwd -> Provdb.reach_ancestors db ~limit p
        | Inv | Mixed -> Provdb.reach_descendants db ~limit p
      in
      sadd acc (1 + List.length cone))
    0 pnodes

let scan_est db = function
  | Root_files -> Provdb.file_count db
  | Root_objects -> Provdb.node_count db
  | Root_processes ->
      (* process enumeration goes through the TYPE posting list *)
      Provdb.attr_cardinality db "TYPE"
  | Root_var _ -> 1

(* --- lowering --------------------------------------------------------------- *)

let plan db (q : query) : Pql_plan.t =
  let conjuncts = match q.where with None -> [] | Some c -> split_and c in
  let taken = Array.make (List.length conjuncts) false in
  let indexed = List.mapi (fun i c -> (i, c, free_vars c)) conjuncts in
  let rec build bound knowns env_est acc = function
    | [] -> (List.rev acc, env_est)
    | (src : source) :: rest ->
        let b = src.binder in
        (match src.root with
        | Root_var v when not (List.mem v bound) ->
            raise (Pql_eval.Error (Printf.sprintf "unbound variable %s" v))
        | _ -> ());
        (* absorb every remaining conjunct this binding covers alone *)
        let pushed =
          List.filter_map
            (fun (i, c, fv) ->
              if (not taken.(i)) && fv <> [] && List.for_all (String.equal b) fv then begin
                taken.(i) <- true;
                Some c
              end
              else None)
            indexed
        in
        (* a cross-binding equality against earlier binders becomes a
           hash join (independent accesses only: a dependent walk is
           already keyed by its start) *)
        let join =
          match src.root with
          | Root_var _ -> None
          | _ ->
              List.find_map
                (fun (i, c, _) ->
                  if taken.(i) then None
                  else
                    match c with
                    | Cmp (l, Eq, r) -> (
                        let lv = List.sort_uniq String.compare (expr_vars [] [] l) in
                        let rv = List.sort_uniq String.compare (expr_vars [] [] r) in
                        match (lv, rv) with
                        | _ :: _, [ rb ]
                          when String.equal rb b && List.for_all (fun v -> List.mem v bound) lv
                          ->
                            taken.(i) <- true;
                            Some (l, r)
                        | [ lb ], _ :: _
                          when String.equal lb b && List.for_all (fun v -> List.mem v bound) rv
                          ->
                            taken.(i) <- true;
                            Some (r, l)
                        | _ -> None)
                    | _ -> None)
                indexed
        in
        let access, base_est =
          match src.root with
          | Root_var v -> (Pql_plan.Var_step v, 1)
          | root when src.path <> None -> (Pql_plan.Scan root, scan_est db root)
          | root ->
              let candidates =
                (match name_key b pushed with
                | Some s ->
                    [ (Pql_plan.Name_probe (root, s), List.length (Provdb.find_by_name db s)) ]
                | None -> [])
                @ (match attr_key b pushed with
                  | Some a ->
                      [
                        ( Pql_plan.Attr_probe (root, String.uppercase_ascii a),
                          Provdb.attr_cardinality db a );
                      ]
                  | None -> [])
                @ [ (Pql_plan.Scan root, scan_est db root) ]
              in
              List.fold_left
                (fun (ba, be) (a, e) -> if e < be then (a, e) else (ba, be))
                (List.hd candidates) (List.tl candidates)
        in
        (* candidate pnodes known at plan time (small name probes) let
           later walk estimates measure the actual cone *)
        let known_here =
          match access with
          | Pql_plan.Name_probe (_, s) ->
              let ps = Provdb.find_by_name db s in
              if List.length ps <= 16 then Some ps else None
          | _ -> None
        in
        let est =
          match access with
          | Pql_plan.Var_step v -> (
              match src.path with
              | None -> max 1 env_est
              | Some p -> (
                  match List.assoc_opt v knowns with
                  | Some pnodes when has_closure p ->
                      sadd (reach_est db (path_dir p) pnodes) (List.length pnodes)
                  | _ -> smul (max 1 env_est) (max 1 (walk_est db 1 p))))
          | _ -> (
              match src.path with None -> base_est | Some p -> walk_est db base_est p)
        in
        let env_est' =
          match access with
          | Pql_plan.Var_step _ -> est
          | _ -> (
              match join with
              | Some _ -> max (max 1 env_est) est
              | None -> smul (max 1 env_est) est)
        in
        let step =
          {
            Pql_plan.binder = b;
            access;
            path = src.path;
            memoized = (match access with Pql_plan.Var_step _ -> src.path <> None | _ -> false);
            join;
            pushed;
            est;
            actual = -1;
          }
        in
        let knowns =
          match known_here with Some ps -> (b, ps) :: knowns | None -> knowns
        in
        build (b :: bound) knowns env_est' (step :: acc) rest
  in
  let steps, env_est = build [] [] 1 [] q.froms in
  let residual =
    join_and
      (List.filter_map (fun (i, c, _) -> if taken.(i) then None else Some c) indexed)
  in
  let has_agg = List.exists (function O_agg _ -> true | O_expr _ -> false) q.select in
  let est_rows =
    let e = if has_agg then 1 else env_est in
    match q.limit with Some n when n >= 0 && n < e -> n | _ -> e
  in
  { Pql_plan.steps; residual; est_rows; actual_rows = -1 }
