(** Plan execution for PQL.

    Runs a {!Pql_plan.t} produced by [Pql_planner.plan], reusing the
    naive evaluator's path/predicate/projection machinery so the planned
    pipeline can only differ from the oracle in cost, never in answers:
    independent bindings are computed once, index probes narrow candidate
    sets (with pushed predicates re-applied exactly), dependent walks are
    memoized per start, and equality predicates across bindings run as
    hash joins.  Fills in the plan's per-step and total actual-row
    counters as a side effect. *)

val run : Provdb.t -> Pql_ast.query -> Pql_plan.t -> Pql_eval.item list list
(** @raise Pql_eval.Error on unbound variables or type mismatches
    (identical conditions to the oracle). *)
