(** Logical plan IR for PQL.

    The FROM clause lowered to a sequence of steps — one per binding —
    each annotated with the chosen access path, pushed-down predicates,
    an optional hash-join key and a cardinality estimate, plus a
    residual filter for whatever no step could absorb.  Produced by
    [Pql_planner.plan], executed by [Pql_exec.run], rendered by
    [passctl query --explain].

    The record types are exposed so drivers (tests, the CLI's [--json])
    can inspect plan shape directly. *)

(** How a step obtains its candidate items. *)
type access =
  | Scan of Pql_ast.root
      (** Enumerate the class table.  Process roots scan the TYPE
          posting list, not the whole node table. *)
  | Name_probe of Pql_ast.root * string
      (** Name-index lookup of a pushed [b.name = "lit"] key, then class
          filter.  A superset access: the pushed predicate is still
          applied with exact evaluator semantics. *)
  | Attr_probe of Pql_ast.root * string
      (** Inverted attr-index lookup of a pushed [b.attr = lit] key,
          then class filter.  Also a superset access. *)
  | Var_step of string  (** Walk from an earlier binding. *)

type step = {
  binder : string;
  access : access;
  path : Pql_ast.path_re option;  (** edge walk applied to the access output *)
  memoized : bool;  (** dependent walk cached per distinct start item *)
  join : (Pql_ast.expr * Pql_ast.expr) option;
      (** (probe key over earlier binders, build key over this binder):
          an equi-predicate executed as a hash join instead of an
          after-the-fact filter *)
  pushed : Pql_ast.cond list;
      (** conjuncts whose free variables this binding covers, applied as
          the step produces items *)
  est : int;  (** estimated items this step binds *)
  mutable actual : int;  (** measured by execute; [-1] until executed *)
}

type t = {
  steps : step list;
  residual : Pql_ast.cond option;  (** conjuncts no step could absorb *)
  est_rows : int;
  mutable actual_rows : int;  (** [-1] until executed *)
}

val access_str : access -> string
(** One-line rendering of an access path, as it appears in {!pp}. *)

val executed : t -> bool
(** Whether {!field-actual_rows} (and the per-step actuals) have been
    filled in by an execution. *)

val pp : Format.formatter -> t -> unit
(** Stable, golden-testable rendering; shows [(est n)] before execution
    and [(est n, actual m)] after. *)

val to_string : t -> string
