(* Pretty-printer for PQL ASTs: parse (print q) == q, which gives the
   parser a strong round-trip property test and the CLI a way to echo
   normalized queries. *)

open Pql_ast

let rec print_path buf p =
  match p with
  | Edge (Forward a) -> Buffer.add_string buf a
  | Edge (Inverse a) ->
      Buffer.add_char buf '^';
      Buffer.add_string buf a
  | Edge Any_edge -> Buffer.add_char buf '_'
  | Seq (a, b) ->
      print_path_tight buf a;
      Buffer.add_char buf '.';
      print_path_tight buf b
  | Alt (a, b) ->
      Buffer.add_char buf '(';
      print_path buf a;
      Buffer.add_char buf '|';
      print_path buf b;
      Buffer.add_char buf ')'
  | Star p ->
      print_path_tight buf p;
      Buffer.add_char buf '*'
  | Plus p ->
      print_path_tight buf p;
      Buffer.add_char buf '+'
  | Opt p ->
      print_path_tight buf p;
      Buffer.add_char buf '?'

(* operands of quantifiers and '.' need parens when composite *)
and print_path_tight buf p =
  match p with
  | Edge _ | Alt _ (* Alt prints its own parens *) -> print_path buf p
  | Star _ | Plus _ | Opt _ -> print_path buf p
  | Seq _ ->
      Buffer.add_char buf '(';
      print_path buf p;
      Buffer.add_char buf ')'

let print_root buf = function
  | Root_files -> Buffer.add_string buf "Provenance.file"
  | Root_processes -> Buffer.add_string buf "Provenance.process"
  | Root_objects -> Buffer.add_string buf "Provenance.object"
  | Root_var v -> Buffer.add_string buf v

let print_source buf (s : source) =
  print_root buf s.root;
  (match s.path with
  | Some p ->
      Buffer.add_char buf '.';
      print_path buf p
  | None -> ());
  Buffer.add_string buf " as ";
  Buffer.add_string buf s.binder

let print_expr buf = function
  | Var v -> Buffer.add_string buf v
  | Attr (v, a) ->
      Buffer.add_string buf v;
      Buffer.add_char buf '.';
      Buffer.add_string buf a
  | Lit (L_str s) -> Buffer.add_string buf (Printf.sprintf "%S" s)
  | Lit (L_int i) -> Buffer.add_string buf (string_of_int i)
  | Lit (L_bool b) -> Buffer.add_string buf (if b then "true" else "false")

let cmp_str = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Like -> "~"

let rec print_cond buf = function
  | Cmp (a, op, b) ->
      print_expr buf a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (cmp_str op);
      Buffer.add_char buf ' ';
      print_expr buf b
  | And (a, b) ->
      print_cond_paren buf a;
      Buffer.add_string buf " and ";
      print_cond_paren buf b
  | Or (a, b) ->
      print_cond_paren buf a;
      Buffer.add_string buf " or ";
      print_cond_paren buf b
  | Not c ->
      Buffer.add_string buf "not ";
      print_cond_paren buf c
  | Exists q ->
      Buffer.add_string buf "exists (";
      print_query buf q;
      Buffer.add_char buf ')'
  | In_query (e, q) ->
      print_expr buf e;
      Buffer.add_string buf " in (";
      print_query buf q;
      Buffer.add_char buf ')'

and print_cond_paren buf c =
  match c with
  | Cmp _ | Exists _ | In_query _ | Not _ -> print_cond buf c
  | And _ | Or _ ->
      Buffer.add_char buf '(';
      print_cond buf c;
      Buffer.add_char buf ')'

and print_output buf = function
  | O_expr e -> print_expr buf e
  | O_agg (agg, e) ->
      Buffer.add_string buf
        (match agg with
        | Count -> "count"
        | Sum -> "sum"
        | Min -> "min"
        | Max -> "max"
        | Avg -> "avg");
      Buffer.add_char buf '(';
      print_expr buf e;
      Buffer.add_char buf ')'

and print_query buf (q : query) =
  Buffer.add_string buf "select ";
  List.iteri
    (fun i o ->
      if i > 0 then Buffer.add_string buf ", ";
      print_output buf o)
    q.select;
  Buffer.add_string buf " from ";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ", ";
      print_source buf s)
    q.froms;
  (match q.where with
  | Some c ->
      Buffer.add_string buf " where ";
      print_cond buf c
  | None -> ());
  (match q.order with
  | Some (e, descending) ->
      Buffer.add_string buf " order by ";
      print_expr buf e;
      Buffer.add_string buf (if descending then " desc" else " asc")
  | None -> ());
  match q.limit with
  | Some n ->
      Buffer.add_string buf " limit ";
      Buffer.add_string buf (string_of_int n)
  | None -> ()

let to_string q =
  let buf = Buffer.create 128 in
  print_query buf q;
  Buffer.contents buf

let via_buf print x =
  let buf = Buffer.create 32 in
  print buf x;
  Buffer.contents buf

let path_to_string p = via_buf print_path p
let expr_to_string e = via_buf print_expr e
let cond_to_string c = via_buf print_cond c
