(** Recursive-descent parser for PQL over [Pql_lexer] tokens. *)

exception Error of string

val parse : string -> Pql_ast.query
(** @raise Error on syntax errors, [Pql_lexer.Error] on lexing errors. *)
