(** PQL front end (paper, Section 5.7).

    The general structure of a PQL query is
    [select outputs from sources where condition]: sources are path
    expressions bound with [as]; path matching uses regular expressions
    over graph edges ([*], [+], [?], [( | )], [^] for inversion, [_] for
    any edge); conditions are boolean predicates with subqueries
    ([exists], [in]) and aggregation ([count]/[sum]/[min]/[max]/[avg]);
    [order by] and [limit] prune results.

    {2 Lifecycle}

    Queries run through the prepared-query engine:

    {[
      let p = Pql.Engine.prepare db "select F from Provenance.file as F" in
      Format.printf "%a@." Pql_plan.pp (Pql.Engine.explain p);
      let rows = Pql.Engine.execute p in
      ...
    ]}

    [prepare] parses and plans against the database's current index
    statistics (cheap, side-effect free); [explain] returns the chosen
    {!Pql_plan.t}; [execute] runs the plan and fills in its actual
    cardinalities, so a second [explain] shows estimated vs. actual.  A
    prepared query can be executed repeatedly; re-prepare after bulk
    loads to pick up fresh statistics.  The pre-ISSUE-9 one-shot entry
    points ([names]/[query]/[nodes], and [Pql_eval.run]) are gone —
    [Pql_eval.reference_rows] remains only as the planner's oracle. *)

type item = Pql_eval.item = Node of Pass_core.Pnode.t * int | Value of Pass_core.Pvalue.t
type row = item list

(** What failed, and in which phase. *)
type error_kind =
  | Parse_error of string  (** lexing or parsing failure *)
  | Plan_error of string  (** query cannot be planned, e.g. unbound variable *)
  | Eval_error of string  (** runtime failure while executing *)

exception Error of error_kind

val error_message : error_kind -> string
(** Human-readable rendering, prefixed with the phase. *)

val parse : string -> Pql_ast.query
(** @raise Error with [Parse_error]. *)

module Engine : sig
  type prepared

  val prepare : Provdb.t -> string -> prepared
  (** Parse and plan [input] against [db]'s index statistics.
      @raise Error with [Parse_error] or [Plan_error]. *)

  val prepare_ast : Provdb.t -> Pql_ast.query -> prepared
  (** Plan an already-parsed query (generated ASTs, tests).
      @raise Error with [Plan_error]. *)

  val explain : prepared -> Pql_plan.t
  (** The chosen plan.  Before {!execute} its cardinalities are
      estimates only; afterwards actuals are filled in. *)

  val execute : prepared -> row list
  (** Run the plan; deterministic rows, identical as a set to the naive
      oracle's.  @raise Error with [Eval_error]. *)

  val columns : prepared -> string list
  (** Output column names, derived from the SELECT clause. *)

  val text : prepared -> string
  (** The normalized query text ([Pql_print.to_string] of the AST). *)
end

val render_item : Provdb.t -> item -> string
(** Nodes render as [name.version]. *)

val render : Provdb.t -> row list -> string list list

val pp_rows : Provdb.t -> columns:string list -> Format.formatter -> row list -> unit
(** Tabular rendering: header, rows, count — what [passctl query]
    prints. *)

val names_of_rows : Provdb.t -> row list -> string list
(** The sorted, distinct node names (or string values) a single-column
    row set holds — the projection used throughout examples and tests. *)

val nodes_of_rows : row list -> Pass_core.Pnode.t list
(** The sorted, distinct pnodes of single-node rows. *)
