(** PQL tokenizer.  Keywords are case-insensitive; identifiers may
    contain dashes (attribute names like [file-url]). *)

type token =
  | SELECT
  | FROM
  | WHERE
  | AS
  | AND
  | OR
  | NOT
  | EXISTS
  | IN
  | DISTINCT
  | ORDER
  | BY
  | ASC
  | DESC
  | LIMIT
  | COUNT
  | SUM
  | MIN
  | MAX
  | AVG
  | TRUE
  | FALSE
  | IDENT of string
  | STRING of string
  | INT of int
  | DOT
  | COMMA
  | STAR
  | PLUS
  | QMARK
  | PIPE
  | CARET
  | UNDERSCORE
  | LPAREN
  | RPAREN
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | TILDE
  | EOF

exception Error of string * int
(** Message and byte position. *)

val tokenize : string -> token list
(** @raise Error on malformed input (unterminated string, stray byte). *)

val token_to_string : token -> string
