(** Abstract syntax of PQL queries (paper, Section 5.7):
    [select outputs from sources where condition], where sources are
    path expressions over the provenance graph. *)

(** One step through the graph. *)
type edge =
  | Forward of string  (** follow records with this attribute, e.g. input *)
  | Inverse of string  (** [^input]: who depends on this node *)
  | Any_edge  (** [_]: any ancestry edge *)

(** Regular expressions over graph edges. *)
type path_re =
  | Edge of edge
  | Seq of path_re * path_re
  | Alt of path_re * path_re
  | Star of path_re  (** zero or more *)
  | Plus of path_re  (** one or more *)
  | Opt of path_re  (** zero or one *)

(** Where a path starts. *)
type root =
  | Root_files  (** Provenance.file *)
  | Root_processes  (** Provenance.process *)
  | Root_objects  (** Provenance.object: everything *)
  | Root_var of string  (** a previously bound variable *)

type source = { root : root; path : path_re option; binder : string }

type expr =
  | Var of string  (** the bound node itself *)
  | Attr of string * string  (** [X.someattr]: attribute value(s) *)
  | Lit of lit

and lit = L_str of string | L_int of int | L_bool of bool

type cmp = Eq | Neq | Lt | Le | Gt | Ge | Like  (** [~] is glob match *)

type cond =
  | Cmp of expr * cmp * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Exists of query  (** exists (select ...) *)
  | In_query of expr * query  (** e in (select ...) *)

and agg = Count | Sum | Min | Max | Avg

and output = O_expr of expr | O_agg of agg * expr

and query = {
  select : output list;
  froms : source list;
  where : cond option;
  order : (expr * bool) option;  (** key, descending? *)
  limit : int option;  (** result pruning (§5.7 closing remark) *)
}

val pp_path : Format.formatter -> path_re -> unit
