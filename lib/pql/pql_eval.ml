(* PQL evaluator over the Waldo provenance database.

   The data model is Lore's OEM flavour: a graph of objects, some holding
   values and some holding named linkages.  Here objects are (pnode,
   version) pairs in the Provdb and linkages are provenance records; a
   record with a cross-reference value is a graph edge, a record with a
   plain value is a leaf.

   Evaluation is by environments: the FROM clause is a series of bindings,
   each extending every current environment with one binding of its
   variable to an endpoint of its path.  WHERE filters environments; the
   SELECT clause projects (or aggregates) them.

   Cold-tier transparency: every graph access below goes through the
   Provdb accessors (records_at / out_edges / in_edges / attr_values),
   which fault archived history in on demand when a query dips below a
   node's compaction floor (DESIGN §13).  The evaluator therefore needs
   no archive awareness of its own — an ancestry walk that crosses the
   archive boundary sees the same graph as one over a never-compacted
   database. *)

open Pql_ast
module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type item = Node of Pnode.t * int | Value of Pvalue.t

let item_equal a b =
  match (a, b) with
  | Node (p, v), Node (p', v') -> Pnode.equal p p' && v = v'
  | Value x, Value y -> Pvalue.equal x y
  | (Node _ | Value _), _ -> false

type env = (string * item) list

(* --- pseudo-attributes every node answers --------------------------------- *)

let node_pseudo db p v = function
  | "name" -> (
      match Provdb.name_of db p with Some n -> [ Pvalue.Str n ] | None -> [])
  | "version" -> [ Pvalue.Int v ]
  | "pnode" -> [ Pvalue.Int (Pnode.to_int p) ]
  | _ -> []

let attr_values db p _v attr =
  (* attribute lookup searches every version of the object: identity
     records (NAME, TYPE, ARGV …) are written once, not per version *)
  let upper = String.uppercase_ascii attr in
  let from_records =
    List.filter_map
      (fun (q : Provdb.quad) ->
        if String.equal (String.uppercase_ascii q.q_attr) upper then Some q.q_value else None)
      (Provdb.records_all db p)
  in
  match (from_records, node_pseudo db p _v attr) with
  | [], pseudo -> pseudo
  | records, _ -> records

(* --- path step semantics --------------------------------------------------- *)

let forward_step db attr = function
  | Value _ -> []
  | Node (p, v) ->
      let upper = String.uppercase_ascii attr in
      List.filter_map
        (fun (q : Provdb.quad) ->
          if String.equal (String.uppercase_ascii q.q_attr) upper then
            match q.q_value with
            | Pvalue.Xref x -> Some (Node (x.pnode, x.version))
            | other -> Some (Value other)
          else None)
        (Provdb.records_at db p ~version:v)

let inverse_step db attr = function
  | Value _ -> []
  | Node (p, _v) ->
      (* inverse traversal is pnode-granular: "who refers to any version of
         this object" is what descendant queries mean in practice *)
      let upper = String.uppercase_ascii attr in
      List.filter_map
        (fun (src, srcv, a, _dstv) ->
          if String.equal (String.uppercase_ascii a) upper then Some (Node (src, srcv))
          else None)
        (Provdb.in_edges db p)

let any_step db = function
  | Value _ -> []
  | Node (p, v) ->
      List.map
        (fun (_, (x : Pvalue.xref)) -> Node (x.pnode, x.version))
        (Provdb.out_edges db p ~version:v)

let dedup items =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun it ->
      let key = match it with Node (p, v) -> `N (Pnode.to_int p, v) | Value v -> `V v in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    items

let rec eval_path db path items =
  match path with
  | Edge (Forward a) -> dedup (List.concat_map (forward_step db a) items)
  | Edge (Inverse a) -> dedup (List.concat_map (inverse_step db a) items)
  | Edge Any_edge -> dedup (List.concat_map (any_step db) items)
  | Seq (a, b) -> eval_path db b (eval_path db a items)
  | Alt (a, b) -> dedup (eval_path db a items @ eval_path db b items)
  | Opt p -> dedup (items @ eval_path db p items)
  | Plus p -> closure db p (eval_path db p items) []
  | Star p -> closure db p items []

(* reflexive-transitive closure by breadth-first saturation *)
and closure db p frontier acc =
  let seen = Hashtbl.create 256 in
  let key = function Node (pn, v) -> `N (Pnode.to_int pn, v) | Value v -> `V v in
  List.iter (fun it -> Hashtbl.replace seen (key it) it) acc;
  let rec loop frontier =
    let fresh =
      List.filter
        (fun it ->
          if Hashtbl.mem seen (key it) then false
          else begin
            Hashtbl.replace seen (key it) it;
            true
          end)
        frontier
    in
    if fresh <> [] then loop (eval_path db p fresh)
  in
  loop frontier;
  Hashtbl.fold (fun _ it l -> it :: l) seen []

(* --- roots ----------------------------------------------------------------- *)

let is_process db p =
  List.exists
    (fun (q : Provdb.quad) ->
      String.equal q.q_attr "TYPE" && q.q_value = Pvalue.Str "PROCESS")
    (Provdb.records_all db p)

let root_items db env = function
  | Root_files ->
      List.filter_map
        (fun (n : Provdb.node) ->
          if n.kind = Provdb.File then Some (Node (n.pnode, n.max_version)) else None)
        (Provdb.all_nodes db)
  | Root_processes ->
      List.filter_map
        (fun (n : Provdb.node) ->
          if is_process db n.pnode then Some (Node (n.pnode, n.max_version)) else None)
        (Provdb.all_nodes db)
  | Root_objects ->
      List.map (fun (n : Provdb.node) -> Node (n.pnode, n.max_version)) (Provdb.all_nodes db)
  | Root_var v -> (
      match List.assoc_opt v env with
      | Some it -> [ it ]
      | None -> fail "unbound variable %s" v)

(* --- expressions ------------------------------------------------------------ *)

(* an expression evaluates to a list of candidate values/items
   (attribute access is set-valued in OEM) *)
let eval_expr db env = function
  | Var v -> (
      match List.assoc_opt v env with
      | Some it -> [ it ]
      | None -> fail "unbound variable %s" v)
  | Attr (v, attr) -> (
      match List.assoc_opt v env with
      | Some (Node (p, ver)) -> List.map (fun x -> Value x) (attr_values db p ver attr)
      | Some (Value _) -> []
      | None -> fail "unbound variable %s" v)
  | Lit (L_str s) -> [ Value (Pvalue.Str s) ]
  | Lit (L_int i) -> [ Value (Pvalue.Int i) ]
  | Lit (L_bool b) -> [ Value (Pvalue.Bool b) ]

(* glob matching for ~ : '*' any sequence, '?' one char *)
let glob_match pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go i j =
    if i = np then j = ns
    else
      match pattern.[i] with
      | '*' -> go (i + 1) j || (j < ns && go i (j + 1))
      | '?' -> j < ns && go (i + 1) (j + 1)
      | c -> j < ns && s.[j] = c && go (i + 1) (j + 1)
  in
  go 0 0

let compare_values op (a : item) (b : item) =
  let num = function
    | Value (Pvalue.Int i) -> Some i
    | Node _ | Value _ -> None
  in
  let str = function
    | Value (Pvalue.Str s) -> Some s
    | Value (Pvalue.Bytes s) -> Some s
    | Node _ | Value _ -> None
  in
  match op with
  | Eq -> item_equal a b
  | Neq -> not (item_equal a b)
  | Like -> (
      match (str a, str b) with Some s, Some p -> glob_match p s | _ -> false)
  | Lt | Le | Gt | Ge -> (
      let cmp c = match op with Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0 | _ -> false in
      match (num a, num b) with
      | Some x, Some y -> cmp (Int.compare x y)
      | _ -> (
          match (str a, str b) with
          | Some x, Some y -> cmp (String.compare x y)
          | _ -> false))

(* --- projection ------------------------------------------------------------ *)

(* Turn the surviving environments into result rows: aggregation or the
   per-environment cartesian product of set-valued outputs, set-semantics
   row dedup, then ordering.  Shared verbatim by the cost-based executor
   (Pql_exec) so planner and oracle can only disagree about which
   environments they build, never about how rows are produced. *)
let project db (q : query) envs =
  let has_agg = List.exists (function O_agg _ -> true | O_expr _ -> false) q.select in
  if has_agg then
    [
      List.map
        (fun out ->
          match out with
          | O_expr e -> (
              (* non-aggregated output alongside an aggregate: take any *)
              match List.concat_map (fun env -> eval_expr db env e) envs with
              | it :: _ -> it
              | [] -> Value (Pvalue.Str ""))
          | O_agg (agg, e) ->
              let values =
                dedup (List.concat_map (fun env -> eval_expr db env e) envs)
              in
              let ints =
                List.filter_map
                  (function Value (Pvalue.Int i) -> Some i | _ -> None)
                  values
              in
              let v =
                match agg with
                | Count -> Pvalue.Int (List.length values)
                | Sum -> Pvalue.Int (List.fold_left ( + ) 0 ints)
                | Min -> (
                    match ints with
                    | [] -> Pvalue.Int 0
                    | _ -> Pvalue.Int (List.fold_left min max_int ints))
                | Max -> (
                    match ints with
                    | [] -> Pvalue.Int 0
                    | _ -> Pvalue.Int (List.fold_left max min_int ints))
                | Avg -> (
                    match ints with
                    | [] -> Pvalue.Int 0
                    | _ ->
                        Pvalue.Int (List.fold_left ( + ) 0 ints / List.length ints))
              in
              Value v)
        q.select;
    ]
  else
    let keyed_rows =
      List.concat_map
        (fun env ->
          (* a row per combination of set-valued outputs would explode;
             like Lorel we take the cartesian product per environment *)
          let order_key =
            match q.order with
            | Some (e, _) -> (match eval_expr db env e with k :: _ -> Some k | [] -> None)
            | None -> None
          in
          let cols = List.map (fun (O_expr e | O_agg (_, e)) -> eval_expr db env e) q.select in
          let rec cartesian = function
            | [] -> [ [] ]
            | col :: rest ->
                let tails = cartesian rest in
                List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) col
          in
          List.map (fun row -> (order_key, row)) (cartesian cols))
        envs
    in
    (* set semantics: drop duplicate rows *)
    let seen = Hashtbl.create 64 in
    let keyed_rows =
      List.filter
        (fun (_, row) ->
          let key =
            List.map
              (function Node (p, v) -> `N (Pnode.to_int p, v) | Value v -> `V v)
              row
          in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        keyed_rows
    in
    (* ordering: integers and strings by value, nodes by rendered name,
       mixed kinds by a fixed rank; stable for ties *)
    let keyed_rows =
      match q.order with
      | None -> keyed_rows
      | Some (_, descending) ->
          let rank = function
            | None -> 0
            | Some (Value (Pvalue.Bool _)) -> 1
            | Some (Value (Pvalue.Int _)) -> 2
            | Some (Value (Pvalue.Str _)) | Some (Value (Pvalue.Bytes _)) -> 3
            | Some (Value _) -> 4
            | Some (Node _) -> 5
          in
          let key_repr = function
            | Some (Value (Pvalue.Bool b)) -> `I (Bool.to_int b)
            | Some (Value (Pvalue.Int i)) -> `I i
            | Some (Value (Pvalue.Str s)) | Some (Value (Pvalue.Bytes s)) -> `S s
            | Some (Node (p, _)) ->
                `S (Option.value (Provdb.name_of db p)
                      ~default:(string_of_int (Pnode.to_int p)))
            | _ -> `I 0
          in
          let cmp_repr r r' =
            (* equal ranks imply same constructor; the cross-kind arms
               only keep the comparator total *)
            match (r, r') with
            | `I a, `I b -> Int.compare a b
            | `S a, `S b -> String.compare a b
            | `I _, `S _ -> -1
            | `S _, `I _ -> 1
          in
          let cmp (ka, _) (kb, _) =
            let c = Int.compare (rank ka) (rank kb) in
            let c = if c <> 0 then c else cmp_repr (key_repr ka) (key_repr kb) in
            if descending then -c else c
          in
          List.stable_sort cmp keyed_rows
    in
    List.map snd keyed_rows

(* --- conditions (mutually recursive with query evaluation for subqueries) -- *)

let rec eval_cond db env = function
  | And (a, b) -> eval_cond db env a && eval_cond db env b
  | Or (a, b) -> eval_cond db env a || eval_cond db env b
  | Not c -> not (eval_cond db env c)
  | Cmp (l, op, r) ->
      (* existential semantics over set-valued expressions *)
      let ls = eval_expr db env l and rs = eval_expr db env r in
      List.exists (fun a -> List.exists (fun b -> compare_values op a b) rs) ls
  | Exists q -> eval_rows db env q <> []
  | In_query (e, q) ->
      let vals = eval_expr db env e in
      let rows = eval_rows db env q in
      List.exists
        (fun row -> match row with [ it ] -> List.exists (item_equal it) vals | _ -> false)
        rows

and eval_envs db outer (q : query) =
  let envs =
    List.fold_left
      (fun envs (src : source) ->
        List.concat_map
          (fun env ->
            let start = root_items db env src.root in
            let endpoints =
              match src.path with None -> start | Some p -> eval_path db p start
            in
            List.map (fun it -> (src.binder, it) :: env) endpoints)
          envs)
      [ outer ] q.froms
  in
  match q.where with
  | None -> envs
  | Some cond -> List.filter (fun env -> eval_cond db env cond) envs

and eval_rows db outer (q : query) = project db q (eval_envs db outer q)

let truncate n l =
  let rec go k = function [] -> [] | x :: rest -> if k = 0 then [] else x :: go (k - 1) rest in
  go n l

let apply_limit (q : query) rows =
  match q.limit with Some n -> truncate (max 0 n) rows | None -> rows

(* The whole naive pipeline: the reference oracle the cost-based planner
   is checked against.  O(graph) per binding — every class root
   enumerates the full node table and dependent paths are re-walked per
   environment — which is exactly why execution goes through Pql_exec;
   this stays as the semantics definition. *)
let reference_rows db q = apply_limit q (eval_rows db [] q)
