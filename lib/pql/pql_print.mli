(** Pretty-printer for PQL queries — the inverse of [Pql_parser.parse],
    used by the parser round-trip property tests. *)

val to_string : Pql_ast.query -> string

val path_to_string : Pql_ast.path_re -> string
val expr_to_string : Pql_ast.expr -> string
val cond_to_string : Pql_ast.cond -> string
(** Fragment printers in the same concrete syntax, used by the planner's
    EXPLAIN output. *)
