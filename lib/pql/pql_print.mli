(** Pretty-printer for PQL queries — the inverse of [Pql_parser.parse],
    used by the parser round-trip property tests. *)

val to_string : Pql_ast.query -> string
