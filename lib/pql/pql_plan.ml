(* Logical plan IR for PQL (ISSUE 9).

   A plan is the FROM clause lowered to a sequence of steps, one per
   binding, each annotated with the access path the planner chose, the
   predicates it pushed down, an optional hash-join key, and a
   cardinality estimate; whatever could not be pushed remains as a
   residual filter.  Steps carry mutable actual-row counters so EXPLAIN
   after execution can show estimated vs. actual cardinalities. *)

open Pql_ast

type access =
  | Scan of root
      (* enumerate the class table (processes go through the TYPE
         posting list rather than testing every node) *)
  | Name_probe of root * string (* name-index lookup, then class filter *)
  | Attr_probe of root * string (* attr-index lookup, then class filter *)
  | Var_step of string (* walk from an earlier binding *)

type step = {
  binder : string;
  access : access;
  path : path_re option; (* edge walk applied to the access output *)
  memoized : bool; (* dependent walk cached per distinct start item *)
  join : (expr * expr) option;
      (* (probe key over earlier binders, build key over this binder):
         an equi-predicate executed as a hash join instead of a filter *)
  pushed : cond list; (* conjuncts applied as this binding is produced *)
  est : int; (* estimated items this step binds *)
  mutable actual : int; (* measured by execute; -1 = not executed *)
}

type t = {
  steps : step list;
  residual : cond option; (* conjuncts no step could absorb *)
  est_rows : int;
  mutable actual_rows : int; (* -1 = not executed *)
}

let executed t = t.actual_rows >= 0

(* --- pretty-printing -------------------------------------------------------- *)

let root_str = function
  | Root_files -> "files"
  | Root_processes -> "processes"
  | Root_objects -> "objects"
  | Root_var v -> v

let access_str = function
  | Scan Root_processes -> "scan processes (via type index)"
  | Scan r -> "scan " ^ root_str r
  | Name_probe (r, n) -> Printf.sprintf "name-index %S -> %s" n (root_str r)
  | Attr_probe (r, a) -> Printf.sprintf "attr-index %s -> %s" a (root_str r)
  | Var_step v -> "from " ^ v

let card_str est actual =
  if actual < 0 then Printf.sprintf "(est %d)" est
  else Printf.sprintf "(est %d, actual %d)" est actual

let pp ppf t =
  Format.fprintf ppf "@[<v>plan:";
  List.iter
    (fun s ->
      Format.fprintf ppf "@,  %s <- %s" s.binder (access_str s.access);
      (match s.path with
      | Some p ->
          Format.fprintf ppf ", walk %s" (Pql_print.path_to_string p);
          if s.memoized then Format.fprintf ppf " [memo]"
      | None -> ());
      (match s.join with
      | Some (probe, build) ->
          Format.fprintf ppf ", hash-join %s = %s" (Pql_print.expr_to_string probe)
            (Pql_print.expr_to_string build)
      | None -> ());
      Format.fprintf ppf "  %s" (card_str s.est s.actual);
      List.iter
        (fun c -> Format.fprintf ppf "@,      push %s" (Pql_print.cond_to_string c))
        s.pushed)
    t.steps;
  (match t.residual with
  | Some c -> Format.fprintf ppf "@,  residual: %s" (Pql_print.cond_to_string c)
  | None -> ());
  Format.fprintf ppf "@,  rows: %s@]" (card_str t.est_rows t.actual_rows)

let to_string t = Format.asprintf "%a" pp t
