(* pvcheck: an offline "fsck for provenance".

   The analyzer exists to guarantee graph invariants — cycle avoidance,
   duplicate elimination, version monotonicity (paper §5.4) — but nothing
   downstream ever *verifies* that the provenance that reached Waldo
   actually satisfies them.  pvcheck loads a provenance database (plus any
   unprocessed WAP logs) and runs a pipeline of static passes over the
   stored graph, one per invariant:

   - acyclicity        the version/ancestry graph is a DAG, cross-checked
                       against the PASSv1 Cycle_detect baseline as oracle;
   - version-chain     freeze markers agree with the version they are
                       attributed to, and no version > 0 appears without
                       the freeze that created it;
   - ancestor-closure  every referenced (pnode, version) of a declared
                       object exists;
   - dedup-idempotence no two stored records are identical under the
                       analyzer's dedup key (pnode, version, record);
   - xlayer-refs       every referenced identity was declared by some
                       layer (a Map or Mkobj frame) — an undeclared stub
                       is a dangling cross-layer reference;
   - orphan-agreement  the transactions Waldo would discard as orphans
                       match Recovery's independent open-transaction scan.

   Passes only read the database; findings are data (structured, with a
   severity and a repro hint), so the checker can run after every chaos
   or recovery test and in CI. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue
module Record = Pass_core.Record
module Cycle_detect = Pass_core.Cycle_detect

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  f_pass : string;
  f_severity : severity;
  f_subject : string;
  f_detail : string;
  f_repro : string;
}

type report = {
  r_volume : string;
  r_nodes : int;
  r_quads : int;
  r_edges : int;
  r_passes : string list;
  r_findings : finding list;
}

let clean r = match r.r_findings with [] -> true | _ -> false

let pv_to_string (p, v) = Printf.sprintf "p%d@%d" (Pnode.to_int p) v

let finding ~pass ?(severity = Error) ~subject ~detail ~repro () =
  { f_pass = pass; f_severity = severity; f_subject = subject;
    f_detail = detail; f_repro = repro }

(* Nodes in deterministic order, so findings are stable across runs. *)
let sorted_nodes db =
  List.sort
    (fun (a : Provdb.node) (b : Provdb.node) -> Pnode.compare a.pnode b.pnode)
    (Provdb.all_nodes db)

let edges_of db =
  List.concat_map
    (fun (n : Provdb.node) ->
      List.map
        (fun (v, attr, (x : Pvalue.xref)) ->
          ((n.pnode, v), (x.pnode, x.version), attr))
        (Provdb.out_edges_all db n.pnode))
    (sorted_nodes db)

(* --- pass: acyclicity ----------------------------------------------------- *)

(* Own DFS with explicit path tracking so a finding can carry the actual
   cycle, cross-checked against the PASSv1 global detector: Cycle_detect
   merges the nodes of any cycle it sees, so "the input graph had a
   cycle" is [merges > 0] after inserting every edge. *)
let pass_acyclicity db =
  let name = "acyclicity" in
  let eq_pv a b = Provdb.compare_pv a b = 0 in
  let color : (Pnode.t * int, bool) Hashtbl.t = Hashtbl.create 1024 in
  let cycles = ref [] in
  let rec dfs path key =
    match Hashtbl.find_opt color key with
    | Some true -> () (* finished *)
    | Some false ->
        (* back edge: the cycle is the path suffix back to [key] *)
        let rec take acc = function
          | [] -> acc
          | k :: rest -> if eq_pv k key then k :: acc else take (k :: acc) rest
        in
        cycles := take [ key ] path :: !cycles
    | None ->
        Hashtbl.replace color key false;
        let p, v = key in
        List.iter
          (fun (_, (x : Pvalue.xref)) -> dfs (key :: path) (x.pnode, x.version))
          (Provdb.out_edges db p ~version:v);
        Hashtbl.replace color key true
  in
  let edges = edges_of db in
  List.iter (fun (src, _, _) -> dfs [] src) edges;
  let cycle_findings =
    List.rev_map
      (fun cycle ->
        let path = String.concat " -> " (List.map pv_to_string cycle) in
        finding ~pass:name
          ~subject:(pv_to_string (List.hd cycle))
          ~detail:("ancestry cycle: " ^ path)
          ~repro:("follow out_edges from " ^ pv_to_string (List.hd cycle))
          ())
      !cycles
  in
  (* oracle cross-check *)
  let oracle = Cycle_detect.create () in
  List.iter (fun (src, dst, _) -> Cycle_detect.add_edge oracle src dst) edges;
  let oracle_saw_cycle = Cycle_detect.merges oracle > 0 in
  let own_saw_cycle = match cycle_findings with [] -> false | _ -> true in
  let divergence =
    if Bool.equal oracle_saw_cycle own_saw_cycle then []
    else
      [ finding ~pass:name ~subject:"(checker)"
          ~detail:
            (Printf.sprintf
               "verdict divergence: DFS says %s, Cycle_detect oracle says %s"
               (if own_saw_cycle then "cyclic" else "acyclic")
               (if oracle_saw_cycle then "cyclic" else "acyclic"))
          ~repro:"re-run with both detectors over the same edge list" () ]
  in
  cycle_findings @ divergence

(* --- pass: version-chain monotonicity ------------------------------------- *)

let pass_version_chain db =
  let name = "version-chain" in
  List.concat_map
    (fun (n : Provdb.node) ->
      List.concat_map
        (fun v ->
          let quads = Provdb.records_at db n.pnode ~version:v in
          let markers =
            List.filter
              (fun (q : Provdb.quad) -> String.equal q.q_attr Record.Attr.freeze)
              quads
          in
          let bad =
            List.filter_map
              (fun (q : Provdb.quad) ->
                match q.q_value with
                | Pvalue.Int fv when fv = v -> None
                | Pvalue.Int fv ->
                    Some
                      (finding ~pass:name ~subject:(pv_to_string (n.pnode, v))
                         ~detail:
                           (Printf.sprintf
                              "freeze marker carries version %d but is attributed to version %d"
                              fv v)
                         ~repro:
                           (Printf.sprintf "records_at p%d version %d"
                              (Pnode.to_int n.pnode) v)
                         ())
                | _ ->
                    Some
                      (finding ~pass:name ~subject:(pv_to_string (n.pnode, v))
                         ~detail:"freeze marker carries a non-integer version"
                         ~repro:
                           (Printf.sprintf "records_at p%d version %d"
                              (Pnode.to_int n.pnode) v)
                         ()))
              markers
          in
          let missing =
            match (quads, markers) with
            | _ :: _, [] when v > 0 ->
                [ finding ~pass:name ~subject:(pv_to_string (n.pnode, v))
                    ~detail:
                      (Printf.sprintf
                         "version %d has records but no freeze marker created it" v)
                    ~repro:
                      (Printf.sprintf "records_at p%d version %d"
                         (Pnode.to_int n.pnode) v)
                    () ]
            | _ -> []
          in
          bad @ missing)
        (Provdb.versions db n.pnode))
    (sorted_nodes db)

(* --- pass: ancestor closure ----------------------------------------------- *)

let pass_closure db =
  let name = "ancestor-closure" in
  List.concat_map
    (fun (n : Provdb.node) ->
      List.filter_map
        (fun (v, attr, (x : Pvalue.xref)) ->
          match Provdb.find_node db x.pnode with
          | None ->
              (* unreachable: add_record stubs every xref target *)
              Some
                (finding ~pass:name ~subject:(pv_to_string (n.pnode, v))
                   ~detail:
                     (Printf.sprintf "%s edge targets unknown object %s" attr
                        (pv_to_string (x.pnode, x.version)))
                   ~repro:
                     (Printf.sprintf "out_edges p%d version %d"
                        (Pnode.to_int n.pnode) v)
                   ())
          | Some tgt ->
              (* undeclared stubs are the xlayer pass's domain: their
                 max_version is not meaningful *)
              if tgt.declared && x.version > tgt.max_version then
                Some
                  (finding ~pass:name ~subject:(pv_to_string (n.pnode, v))
                     ~detail:
                       (Printf.sprintf
                          "%s edge references %s but the target's latest version is %d"
                          attr
                          (pv_to_string (x.pnode, x.version))
                          tgt.max_version)
                     ~repro:
                       (Printf.sprintf "out_edges p%d version %d"
                          (Pnode.to_int n.pnode) v)
                     ())
              else None)
        (Provdb.out_edges_all db n.pnode))
    (sorted_nodes db)

(* --- pass: duplicate-elimination idempotence ------------------------------- *)

(* The analyzer dedups on (pnode, version, record); if it worked, no two
   stored records are identical under that key.  WAP data-identity records
   ([data_md5]) bypass the analyzer — one is logged per write, so two
   identical writes legitimately repeat one — and are excluded. *)
let pass_dedup db =
  let name = "dedup-idempotence" in
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 4096 in
  let order = ref [] in
  List.iter
    (fun (n : Provdb.node) ->
      List.iter
        (fun (q : Provdb.quad) ->
          if not (String.equal q.q_attr Record.Attr.data_md5) then begin
            let buf = Buffer.create 32 in
            Record.encode buf { Record.attr = q.q_attr; value = q.q_value };
            let key =
              Printf.sprintf "%d.%d:%s" (Pnode.to_int q.q_pnode) q.q_version
                (Buffer.contents buf)
            in
            match Hashtbl.find_opt counts key with
            | Some c -> incr c
            | None ->
                Hashtbl.add counts key (ref 1);
                order := (key, q) :: !order
          end)
        (Provdb.records_all db n.pnode))
    (sorted_nodes db);
  List.filter_map
    (fun (key, (q : Provdb.quad)) ->
      match Hashtbl.find_opt counts key with
      | Some { contents = c } when c > 1 ->
          Some
            (finding ~pass:name
               ~subject:(pv_to_string (q.q_pnode, q.q_version))
               ~detail:
                 (Printf.sprintf
                    "record %s occurs %d times at the same (pnode, version) — analyzer dedup key violated"
                    q.q_attr c)
               ~repro:
                 (Printf.sprintf "records_at p%d version %d, attr %s"
                    (Pnode.to_int q.q_pnode) q.q_version q.q_attr)
               ())
      | _ -> None)
    (List.rev !order)

(* --- pass: cross-layer reference integrity --------------------------------- *)

let pass_xlayer db =
  let name = "xlayer-refs" in
  List.filter_map
    (fun (n : Provdb.node) ->
      if n.declared then None
      else
        let refs = Provdb.in_edges db n.pnode in
        let quads = Provdb.records_all db n.pnode in
        match (refs, quads) with
        | [], [] -> None (* inert stub, nothing depends on it *)
        | _ ->
            let referrer =
              match refs with
              | (p, v, attr, _) :: _ ->
                  Printf.sprintf "referenced by %s via %s" (pv_to_string (p, v)) attr
              | [] -> "carries records but was never announced"
            in
            Some
              (finding ~pass:name
                 ~subject:(Printf.sprintf "p%d" (Pnode.to_int n.pnode))
                 ~detail:
                   ("identity never declared by any layer (no Map/Mkobj frame); "
                  ^ referrer)
                 ~repro:
                   (Printf.sprintf "in_edges p%d" (Pnode.to_int n.pnode))
                 ()))
    (sorted_nodes db)

(* --- pass: orphan-set agreement -------------------------------------------- *)

let pass_orphans ~recovery ~waldo =
  let name = "orphan-agreement" in
  let r = List.sort_uniq Int.compare recovery in
  let w = List.sort_uniq Int.compare waldo in
  let missing l txn = not (List.exists (Int.equal txn) l) in
  let only_r = List.filter (missing w) r and only_w = List.filter (missing r) w in
  List.map
    (fun txn ->
      finding ~pass:name ~subject:(Printf.sprintf "txn %d" txn)
        ~detail:
          "recovery scan reports the transaction open but Waldo's replay does not buffer it"
        ~repro:"compare Recovery.scan open_txns with Waldo.pending_txns" ())
    only_r
  @ List.map
      (fun txn ->
        finding ~pass:name ~subject:(Printf.sprintf "txn %d" txn)
          ~detail:
            "Waldo's replay buffers the transaction but the recovery scan does not report it open"
          ~repro:"compare Recovery.scan open_txns with Waldo.pending_txns" ())
      only_w

(* --- driver ---------------------------------------------------------------- *)

let pass_names =
  [ "acyclicity"; "version-chain"; "ancestor-closure"; "dedup-idempotence";
    "xlayer-refs"; "orphan-agreement" ]

let check_db ?registry ?(volume = "local") ?recovery_orphans ?waldo_orphans db =
  let graph =
    pass_acyclicity db @ pass_version_chain db @ pass_closure db
    @ pass_dedup db @ pass_xlayer db
  in
  let orphan_ran, orphan =
    match (recovery_orphans, waldo_orphans) with
    | Some recovery, Some waldo -> (true, pass_orphans ~recovery ~waldo)
    | _ -> (false, [])
  in
  let findings = graph @ orphan in
  Telemetry.incr (Telemetry.counter ?registry "pvcheck.runs");
  Telemetry.add (Telemetry.counter ?registry "pvcheck.findings")
    (List.length findings);
  let passes =
    List.filter
      (fun p -> orphan_ran || not (String.equal p "orphan-agreement"))
      pass_names
  in
  {
    r_volume = volume;
    r_nodes = Provdb.node_count db;
    r_quads = Provdb.quad_count db;
    r_edges = List.length (edges_of db);
    r_passes = passes;
    r_findings = findings;
  }

(* Offline fsck over a volume's lower file system: load the persisted
   database (if any), replay the WAP logs still on disk through the same
   ingest path the live daemon uses — so the checker cannot diverge from
   the ingester — and run every pass, including orphan agreement against
   an independent recovery scan. *)

let ( let* ) = Result.bind

let remaining_logs lower =
  match Vfs.lookup_path lower "/.pass" with
  | Error Vfs.ENOENT -> Ok []
  | Error e -> Error e
  | Ok dir ->
      let* names = lower.Vfs.readdir dir in
      let logs =
        List.filter_map
          (fun name ->
            if String.length name > 4 && String.equal (String.sub name 0 4) "log."
            then
              Option.map
                (fun seq -> (seq, name))
                (int_of_string_opt
                   (String.sub name 4 (String.length name - 4)))
            else None)
          names
      in
      Ok
        (List.map snd
           (List.sort (fun (a, _) (b, _) -> Int.compare a b) logs))

let fsck ?registry ?(waldo_dir = "/.waldo") ~lower ~volume () =
  (* a volume that never saw a provenance-aware mount has no /.pass; its
     (empty) graph trivially verifies, with no orphans on either side *)
  let* recovery_orphans =
    match Recovery.scan ?registry ~waldo_dir lower with
    | Ok scan -> Ok scan.Recovery.open_txns
    | Error Vfs.ENOENT -> Ok []
    | Error e -> Error e
  in
  let* manifest = Checkpoint.read_manifest lower ~dir:waldo_dir in
  let* w =
    match manifest with
    | Some _ ->
        (* a checkpointed volume: adopt the image, restore in-flight
           transactions from the sidecar, replay the post-watermark log
           suffix — exactly the production restart path — then pull the
           cold-tier archive in so the checks see the full graph *)
        let* w, _info = Waldo.recover ?registry ~dir:waldo_dir ~lower () in
        Waldo.fault_in_archive w;
        Ok w
    | None ->
        (* no checkpoint: load the stand-alone image if any, then replay
           every remaining log *)
        let* w =
          match Waldo.load ?registry ~lower ~dir:waldo_dir () with
          | Ok w -> Ok w
          | Error Vfs.ENOENT -> Ok (Waldo.create ?registry ~lower ())
          | Error e -> Error e
        in
        let* names = remaining_logs lower in
        let* () =
          List.fold_left
            (fun acc name ->
              let* () = acc in
              let* image = Vfs.read_file lower ("/.pass/" ^ name) in
              let frames, _consumed = Wap_log.parse_log image in
              Waldo.replay_frames w frames;
              Ok ())
            (Ok ()) names
        in
        Ok w
  in
  Ok
    (check_db ?registry ~volume ~recovery_orphans
       ~waldo_orphans:(Waldo.pending_txns w) (Waldo.db w))

(* --- output ----------------------------------------------------------------- *)

let finding_to_json f =
  Telemetry.Json.Obj
    [
      ("pass", Telemetry.Json.Str f.f_pass);
      ("severity", Telemetry.Json.Str (severity_to_string f.f_severity));
      ("subject", Telemetry.Json.Str f.f_subject);
      ("detail", Telemetry.Json.Str f.f_detail);
      ("repro", Telemetry.Json.Str f.f_repro);
    ]

let report_to_json r =
  Telemetry.Json.Obj
    [
      ("schema", Telemetry.Json.Str "pvcheck/v1");
      ("volume", Telemetry.Json.Str r.r_volume);
      ("nodes", Telemetry.Json.Int r.r_nodes);
      ("quads", Telemetry.Json.Int r.r_quads);
      ("edges", Telemetry.Json.Int r.r_edges);
      ("passes", Telemetry.Json.List (List.map (fun p -> Telemetry.Json.Str p) r.r_passes));
      ("clean", Telemetry.Json.Bool (clean r));
      ("findings", Telemetry.Json.List (List.map finding_to_json r.r_findings));
    ]

let pp_report ppf r =
  Format.fprintf ppf "pvcheck %s: %d nodes, %d quads, %d edges; %d passes@."
    r.r_volume r.r_nodes r.r_quads r.r_edges (List.length r.r_passes);
  match r.r_findings with
  | [] -> Format.fprintf ppf "clean: no findings@."
  | fs ->
      Format.fprintf ppf "%d finding(s):@." (List.length fs);
      List.iter
        (fun f ->
          Format.fprintf ppf "  [%s] %s %s: %s@.      repro: %s@."
            (severity_to_string f.f_severity)
            f.f_pass f.f_subject f.f_detail f.f_repro)
        fs
