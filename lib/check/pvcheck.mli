(** pvcheck: offline static verification of a stored provenance graph —
    an "fsck for provenance".

    Runs a pipeline of read-only passes over a Waldo database, one per
    invariant the analyzer is supposed to guarantee (paper, Section 5.4):
    acyclicity (cross-checked against the PASSv1 {!Pass_core.Cycle_detect}
    baseline as oracle), version-chain monotonicity, ancestor closure,
    duplicate-elimination idempotence, cross-layer reference integrity,
    and orphan-set agreement with recovery.  Findings are structured data
    with a severity and a repro hint, fit for telemetry JSON. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type finding = {
  f_pass : string;  (** which pass produced it (see {!pass_names}) *)
  f_severity : severity;
  f_subject : string;  (** the object/version or transaction concerned *)
  f_detail : string;
  f_repro : string;  (** how to reproduce/inspect the violation *)
}

type report = {
  r_volume : string;
  r_nodes : int;
  r_quads : int;
  r_edges : int;
  r_passes : string list;  (** passes that actually ran *)
  r_findings : finding list;
}

val pass_names : string list
(** All pass names, in pipeline order. *)

val clean : report -> bool
(** No findings. *)

val check_db :
  ?registry:Telemetry.registry ->
  ?volume:string ->
  ?recovery_orphans:int list ->
  ?waldo_orphans:int list ->
  Provdb.t ->
  report
(** [check_db db] runs the graph passes over [db].  The orphan-agreement
    pass runs only when both [recovery_orphans] (from
    {!Recovery.scan}'s [open_txns]) and [waldo_orphans] (from
    {!Waldo.pending_txns}) are supplied.  Publishes [pvcheck.runs] and
    [pvcheck.findings] counters into [registry]. *)

val fsck :
  ?registry:Telemetry.registry ->
  ?waldo_dir:string ->
  lower:Vfs.ops ->
  volume:string ->
  unit ->
  (report, Vfs.errno) result
(** [fsck ~lower ~volume ()] is the offline entry point: load the
    persisted database from [waldo_dir]/db.dat (default [/.waldo]; an
    absent image means an empty database), replay any WAP logs still in
    [/.pass] through the production ingest path, and run every pass —
    including orphan agreement against an independent {!Recovery.scan}. *)

val report_to_json : report -> Telemetry.Json.t
(** The report as a telemetry JSON tree ([passctl fsck --json]). *)

val pp_report : Format.formatter -> report -> unit
