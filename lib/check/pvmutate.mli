(** Corruption seeding for the pvcheck mutation harness.

    Each injector plants exactly one corruption class into an otherwise
    clean database, constructed so that exactly one {!Pvcheck} pass
    fires.  Used by the property tests (clean volume ⇒ no findings;
    seeded volume ⇒ findings only from the expected pass) and by
    [passctl fsck --corrupt] for demonstration. *)

type clazz =
  | Cycle  (** reverse an ancestry edge into a 2-cycle *)
  | Dangling_ancestor  (** reference a declared object at a phantom version *)
  | Duplicate_record  (** repeat a record under the analyzer's dedup key *)
  | Broken_version_chain  (** freeze marker disagreeing with its version *)
  | Dangling_xref  (** reference an identity no layer ever declared *)

val all : clazz list

val name : clazz -> string
val of_name : string -> clazz option

val flagged_by : clazz -> string
(** The {!Pvcheck.pass_names} entry this class must trip. *)

exception No_target of string
(** Raised when the database is too small to host the corruption (e.g. no
    cross-node ancestry edge to reverse). *)

val inject : Provdb.t -> clazz -> string
(** [inject db c] mutates [db] in place and returns a description of the
    seeded corruption.  Deterministic: targets are chosen lowest-pnode
    first.  @raise No_target if the database cannot host class [c]. *)
