(* Corruption seeding for the pvcheck mutation harness.

   Each injector plants exactly one class of corruption into an otherwise
   clean database, constructed so that exactly one pvcheck pass fires:
   the property tests assert both directions — a clean volume yields no
   findings, and a volume seeded with class C yields findings only from
   C's pass.  Targets are chosen deterministically (lowest pnode first)
   so a failing test names a stable object. *)

module Pnode = Pass_core.Pnode
module Pvalue = Pass_core.Pvalue
module Record = Pass_core.Record

type clazz =
  | Cycle
  | Dangling_ancestor
  | Duplicate_record
  | Broken_version_chain
  | Dangling_xref

let all =
  [ Cycle; Dangling_ancestor; Duplicate_record; Broken_version_chain;
    Dangling_xref ]

let name = function
  | Cycle -> "cycle"
  | Dangling_ancestor -> "dangling-ancestor"
  | Duplicate_record -> "duplicate-record"
  | Broken_version_chain -> "broken-version-chain"
  | Dangling_xref -> "dangling-xref"

let of_name s = List.find_opt (fun c -> String.equal (name c) s) all

(* The pvcheck pass each class must trip. *)
let flagged_by = function
  | Cycle -> "acyclicity"
  | Dangling_ancestor -> "ancestor-closure"
  | Duplicate_record -> "dedup-idempotence"
  | Broken_version_chain -> "version-chain"
  | Dangling_xref -> "xlayer-refs"

let sorted_nodes db =
  List.sort
    (fun (a : Provdb.node) (b : Provdb.node) -> Pnode.compare a.pnode b.pnode)
    (Provdb.all_nodes db)

let declared_nodes db =
  List.filter (fun (n : Provdb.node) -> n.declared) (sorted_nodes db)

let pv_to_string (p, v) = Printf.sprintf "p%d@%d" (Pnode.to_int p) v

exception No_target of string

let record_present db (p, v) (r : Record.t) =
  List.exists
    (fun (q : Provdb.quad) -> Record.equal { attr = q.q_attr; value = q.q_value } r)
    (Provdb.records_at db p ~version:v)

(* Close an existing cross-node ancestry edge into a 2-cycle: for the
   first edge (p,v) -> (q,w) with p <> q, add the reverse INPUT.  The
   reverse edge's target exists and the record is new, so only the
   acyclicity pass fires. *)
let inject_cycle db =
  let edge =
    List.find_map
      (fun (n : Provdb.node) ->
        List.find_map
          (fun (v, _, (x : Pvalue.xref)) ->
            if
              (not (Pnode.equal x.pnode n.pnode))
              && not
                   (record_present db (x.pnode, x.version)
                      (Record.input_of n.pnode v))
            then Some ((n.pnode, v), (x.pnode, x.version))
            else None)
          (Provdb.out_edges_all db n.pnode))
      (sorted_nodes db)
  in
  match edge with
  | None -> raise (No_target "cycle: no cross-node ancestry edge to reverse")
  | Some ((p, v), (q, w)) ->
      Provdb.add_record db q ~version:w (Record.input_of p v);
      Printf.sprintf "reversed edge %s -> %s into a cycle" (pv_to_string (p, v))
        (pv_to_string (q, w))

(* Reference a declared object at a version it never reached.  The
   phantom version has no out-edges (no cycle) and the target is
   declared (no xlayer finding), so only ancestor-closure fires. *)
let inject_dangling_ancestor db =
  match declared_nodes db with
  | [] | [ _ ] -> raise (No_target "dangling-ancestor: needs two declared objects")
  | a :: b :: _ ->
      let phantom = b.max_version + 7 in
      Provdb.add_record db a.pnode ~version:a.max_version
        (Record.input_of b.pnode phantom);
      Printf.sprintf "%s now references nonexistent %s"
        (pv_to_string (a.pnode, a.max_version))
        (pv_to_string (b.pnode, phantom))

(* Re-add an identity record verbatim: a dedup-key violation with no
   graph effect (non-ancestry, and add_record ignores a repeated NAME). *)
let inject_duplicate db =
  let target =
    List.find_map
      (fun (n : Provdb.node) ->
        List.find_map
          (fun (q : Provdb.quad) ->
            match q.q_value with
            | Pvalue.Xref _ -> None
            | _
              when String.equal q.q_attr Record.Attr.data_md5
                   || String.equal q.q_attr Record.Attr.freeze ->
                None
            | _ -> Some q)
          (Provdb.records_all db n.pnode))
      (sorted_nodes db)
  in
  match target with
  | None -> raise (No_target "duplicate-record: no identity record to repeat")
  | Some q ->
      Provdb.add_record db q.q_pnode ~version:q.q_version
        (Record.make q.q_attr q.q_value);
      Printf.sprintf "duplicated %s record at %s" q.q_attr
        (pv_to_string (q.q_pnode, q.q_version))

(* Plant a freeze marker whose carried version disagrees with the version
   it is attributed to — the chain bookkeeping corruption the
   version-chain pass exists to catch. *)
let inject_broken_version_chain db =
  match declared_nodes db with
  | [] -> raise (No_target "broken-version-chain: no declared object")
  | n :: _ ->
      let v = n.max_version in
      Provdb.add_record db n.pnode ~version:v
        (Record.make Record.Attr.freeze (Pvalue.Int (v + 7)));
      Printf.sprintf "freeze marker at %s claims version %d"
        (pv_to_string (n.pnode, v))
        (v + 7)

(* Reference an identity no layer ever declared.  Version 0 keeps the
   ancestor-closure pass quiet (it skips undeclared stubs anyway); only
   xlayer-refs fires. *)
let inject_dangling_xref db =
  match declared_nodes db with
  | [] -> raise (No_target "dangling-xref: no declared object")
  | n :: _ ->
      let max_raw =
        List.fold_left
          (fun acc (m : Provdb.node) -> max acc (Pnode.to_int m.pnode))
          0 (sorted_nodes db)
      in
      let ghost = Pnode.of_int (max_raw + 1) in
      Provdb.add_record db n.pnode ~version:n.max_version
        (Record.input_of ghost 0);
      Printf.sprintf "%s now references undeclared identity p%d"
        (pv_to_string (n.pnode, n.max_version))
        (max_raw + 1)

let inject db = function
  | Cycle -> inject_cycle db
  | Dangling_ancestor -> inject_dangling_ancestor db
  | Duplicate_record -> inject_duplicate db
  | Broken_version_chain -> inject_broken_version_chain db
  | Dangling_xref -> inject_dangling_xref db
