(** Pyth interpreter core: a tree-walking evaluator parameterised over a
    [host] — the file, module, print and CPU hooks through which every
    effect flows (so the provenance-aware build can interpose). *)

type host = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  listdir : string -> string list;
  module_source : string -> string option;  (** import: name -> source *)
  print : string -> unit;
  cpu : int -> unit;
}

exception Runtime_error of string

val error : ('a, unit, string, 'b) format4 -> 'a

type t = {
  host : host;
  globals : Pyth_value.env;
  modules : (string, Pyth_value.t) Hashtbl.t;  (** import cache *)
  mutable on_import : string -> Pyth_value.t -> unit;  (** Provwrap hook *)
  mutable call_count : int;
}

val call : t -> Pyth_value.t -> Pyth_value.t list -> Pyth_value.t
(** Apply a Func or Builtin value; used by builtins taking callbacks. *)

val create : host:host -> globals:Pyth_value.env -> unit -> t
val run : t -> Pyth_ast.program -> unit
val run_string : t -> string -> unit
