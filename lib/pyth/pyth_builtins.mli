(** The Pyth standard library: global builtins (print, len, range,
    readfile/writefile, ...) plus the xml / plot / math modules the
    Kepler-style scripts import. *)

val install_globals : Pyth_interp.host -> Pyth_value.env -> unit

val install_modules : Pyth_interp.t -> unit
(** Register the importable modules on an interpreter instance. *)
