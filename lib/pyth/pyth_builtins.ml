(* Global builtins and the standard modules of Pyth.

   The thermography use case (paper §3.3) drives what the standard
   library must contain: an XML module for the data-acquisition logs, a
   plotting module whose output is a file, file listing, and arithmetic
   helpers.  All file access funnels through the host (i.e. the simulated
   kernel), so PASS sees every read and write. *)

module V = Pyth_value

let error = Pyth_interp.error

let arity name n f =
  V.Builtin
    ( name,
      fun args ->
        if List.length args <> n then error "%s expects %d arguments, got %d" name n (List.length args)
        else f args )

let builtin1 name f = arity name 1 (function [ a ] -> f a | _ -> assert false)
let builtin2 name f = arity name 2 (function [ a; b ] -> f a b | _ -> assert false)
let builtin3 name f = arity name 3 (function [ a; b; c ] -> f a b c | _ -> assert false)

let install_globals (host : Pyth_interp.host) env =
  let def name data = V.define env name { V.data; prov = None } in
  def "len"
    (builtin1 "len" (fun a ->
         match a.V.data with
         | V.Str s -> V.int_ (String.length s)
         | V.List l -> V.int_ (List.length !l)
         | V.Dict d -> V.int_ (List.length !d)
         | _ -> V.type_error "len: unsupported %s" (V.type_name a)));
  def "str" (builtin1 "str" (fun a -> V.str (V.to_string a)));
  def "int"
    (builtin1 "int" (fun a ->
         match a.V.data with
         | V.Int _ -> a
         | V.Float f -> V.int_ (int_of_float f)
         | V.Str s -> (
             match int_of_string_opt (String.trim s) with
             | Some i -> V.int_ i
             | None -> error "int: cannot parse %S" s)
         | _ -> V.type_error "int: unsupported %s" (V.type_name a)));
  def "float"
    (builtin1 "float" (fun a ->
         match a.V.data with
         | V.Float _ -> a
         | V.Int i -> V.float_ (float_of_int i)
         | V.Str s -> (
             match float_of_string_opt (String.trim s) with
             | Some f -> V.float_ f
             | None -> error "float: cannot parse %S" s)
         | _ -> V.type_error "float: unsupported %s" (V.type_name a)));
  def "range"
    (V.Builtin
       ( "range",
         fun args ->
           let lo, hi =
             match args with
             | [ hi ] -> (0, V.as_int hi)
             | [ lo; hi ] -> (V.as_int lo, V.as_int hi)
             | _ -> error "range expects 1 or 2 arguments"
           in
           V.list_ (List.init (max 0 (hi - lo)) (fun i -> V.int_ (lo + i))) ));
  def "print"
    (V.Builtin
       ("print", fun args ->
          host.print (String.concat " " (List.map V.to_string args));
          V.none));
  def "append"
    (builtin2 "append" (fun l x ->
         let cell = V.as_list l in
         cell := !cell @ [ x ];
         V.none));
  def "sort"
    (builtin1 "sort" (fun l ->
         let cell = V.as_list l in
         cell :=
           List.sort
             (fun a b ->
               match (a.V.data, b.V.data) with
               | V.Str x, V.Str y -> String.compare x y
               | _ -> Float.compare (V.as_float a) (V.as_float b))
             !cell;
         V.none));
  def "keys"
    (builtin1 "keys" (fun d ->
         match d.V.data with
         | V.Dict pairs -> V.list_ (List.rev_map fst !pairs)
         | _ -> V.type_error "keys: expected dict"));
  def "split"
    (builtin2 "split" (fun s sep ->
         V.list_
           (String.split_on_char
              (match V.as_str sep with
              | "" -> error "split: empty separator"
              | sep -> sep.[0])
              (V.as_str s)
           |> List.map V.str)));
  def "join"
    (builtin2 "join" (fun sep parts ->
         V.str (String.concat (V.as_str sep) (List.map V.as_str !(V.as_list parts)))));
  def "startswith"
    (builtin2 "startswith" (fun s prefix ->
         let s = V.as_str s and p = V.as_str prefix in
         V.bool_ (String.length s >= String.length p && String.sub s 0 (String.length p) = p)));
  def "endswith"
    (builtin2 "endswith" (fun s suffix ->
         let s = V.as_str s and p = V.as_str suffix in
         let ns = String.length s and np = String.length p in
         V.bool_ (ns >= np && String.sub s (ns - np) np = p)));
  def "strip" (builtin1 "strip" (fun s -> V.str (String.trim (V.as_str s))));
  def "upper" (builtin1 "upper" (fun s -> V.str (String.uppercase_ascii (V.as_str s))));
  def "lower" (builtin1 "lower" (fun s -> V.str (String.lowercase_ascii (V.as_str s))));
  def "replace"
    (builtin3 "replace" (fun s old_s new_s ->
         let s = V.as_str s and o = V.as_str old_s and n = V.as_str new_s in
         if o = "" then V.str s
         else begin
           let buf = Buffer.create (String.length s) in
           let i = ref 0 in
           let no = String.length o in
           while !i < String.length s do
             if !i + no <= String.length s && String.sub s !i no = o then begin
               Buffer.add_string buf n;
               i := !i + no
             end
             else begin
               Buffer.add_char buf s.[!i];
               incr i
             end
           done;
           V.str (Buffer.contents buf)
         end));
  def "readfile" (builtin1 "readfile" (fun path -> V.str (host.read_file (V.as_str path))));
  def "writefile"
    (builtin2 "writefile" (fun path data ->
         host.write_file (V.as_str path) (V.as_str data);
         V.none));
  def "listdir"
    (builtin1 "listdir" (fun path -> V.list_ (List.map V.str (host.listdir (V.as_str path)))))

(* --- the xml module ----------------------------------------------------------- *)

let xml_module (host : Pyth_interp.host) =
  let table = Hashtbl.create 8 in
  let def name data = Hashtbl.replace table name { V.data; prov = None } in
  def "parse_file"
    (builtin1 "xml.parse_file" (fun path ->
         let source = host.read_file (V.as_str path) in
         match Sxml.parse source with
         | root -> V.xml root
         | exception Sxml.Parse_error (msg, pos) ->
             error "xml.parse_file %s: %s at %d" (V.as_str path) msg pos));
  def "parse" (builtin1 "xml.parse" (fun s -> V.xml (Sxml.parse (V.as_str s))));
  def "findall"
    (builtin2 "xml.findall" (fun doc tag ->
         V.list_ (List.map V.xml (Sxml.find_all (V.as_xml doc) (V.as_str tag)))));
  def "attr"
    (builtin2 "xml.attr" (fun el name ->
         match Sxml.attr (V.as_xml el) (V.as_str name) with
         | Some s -> V.str s
         | None -> V.none));
  def "text" (builtin1 "xml.text" (fun el -> V.str (Sxml.text_content (V.as_xml el))));
  def "tag" (builtin1 "xml.tag" (fun el -> V.str (V.as_xml el).Sxml.tag));
  { V.data = V.Module ("xml", table); prov = None }

(* --- the plot module ----------------------------------------------------------- *)

(* The "plot" is a deterministic text rendering of (x, y) points — what
   matters for provenance is that it is an output file derived from the
   points passed in. *)
let plot_module (host : Pyth_interp.host) =
  let table = Hashtbl.create 4 in
  let def name data = Hashtbl.replace table name { V.data; prov = None } in
  def "plot"
    (builtin3 "plot.plot" (fun points title path ->
         let pts = !(V.as_list points) in
         let buf = Buffer.create 256 in
         Buffer.add_string buf (Printf.sprintf "PLOT %s (%d points)\n" (V.as_str title) (List.length pts));
         List.iter
           (fun p ->
             match p.V.data with
             | V.List pair -> (
                 match !pair with
                 | [ x; y ] ->
                     Buffer.add_string buf
                       (Printf.sprintf "%.4f %.4f\n" (V.as_float x) (V.as_float y))
                 | _ -> error "plot: points must be [x, y] pairs")
             | _ -> error "plot: points must be [x, y] pairs")
           pts;
         host.cpu 500_000;
         host.write_file (V.as_str path) (Buffer.contents buf);
         V.none));
  { V.data = V.Module ("plot", table); prov = None }

(* --- the math module ------------------------------------------------------------ *)

let math_module (host : Pyth_interp.host) =
  let table = Hashtbl.create 4 in
  let def name data = Hashtbl.replace table name { V.data; prov = None } in
  def "sqrt"
    (builtin1 "math.sqrt" (fun x ->
         host.cpu 100;
         V.float_ (sqrt (V.as_float x))));
  def "pow"
    (builtin2 "math.pow" (fun x y ->
         host.cpu 100;
         V.float_ (Float.pow (V.as_float x) (V.as_float y))));
  def "absf" (builtin1 "math.absf" (fun x -> V.float_ (Float.abs (V.as_float x))));
  { V.data = V.Module ("math", table); prov = None }

(* Register the standard modules in the interpreter's import cache. *)
let install_modules t =
  let host = t.Pyth_interp.host in
  Hashtbl.replace t.Pyth_interp.modules "xml" (xml_module host);
  Hashtbl.replace t.Pyth_interp.modules "plot" (plot_module host);
  Hashtbl.replace t.Pyth_interp.modules "math" (math_module host)
