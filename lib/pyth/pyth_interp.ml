(* The Pyth interpreter: a straightforward tree-walker over Pyth_ast.

   The host record carries every capability that touches the outside
   world (file I/O through the simulated kernel, module source lookup,
   print, CPU accounting), so the same interpreter runs under a vanilla
   or a PASS kernel — and so the Provwrap layer can interpose on module
   functions without the interpreter knowing. *)

open Pyth_ast
module V = Pyth_value

type host = {
  read_file : string -> string;
  write_file : string -> string -> unit;
  listdir : string -> string list;
  module_source : string -> string option; (* import: name -> source code *)
  print : string -> unit;
  cpu : int -> unit;
}

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* non-local control flow *)
exception Return_exc of V.t
exception Break_exc
exception Continue_exc

type t = {
  host : host;
  globals : V.env;
  modules : (string, V.t) Hashtbl.t; (* import cache *)
  mutable on_import : string -> V.t -> unit; (* Provwrap hook *)
  mutable call_count : int;
}

let rec eval t env expr : V.t =
  t.host.cpu 40;
  match expr with
  | Enone -> V.none
  | Ebool b -> V.bool_ b
  | Eint i -> V.int_ i
  | Efloat f -> V.float_ f
  | Estr s -> V.str s
  | Eident name -> (
      match V.lookup env name with
      | Some vv -> vv
      | None -> error "name %s is not defined" name)
  | Elist elems -> V.list_ (List.map (eval t env) elems)
  | Edict pairs -> V.dict_ (List.map (fun (k, vv) -> (eval t env k, eval t env vv)) pairs)
  | Eunop (Neg, e) -> (
      let vv = eval t env e in
      match vv.V.data with
      | V.Int i -> V.int_ (-i)
      | V.Float f -> V.float_ (-.f)
      | _ -> V.type_error "cannot negate %s" (V.type_name vv))
  | Eunop (Not, e) -> V.bool_ (not (V.truthy (eval t env e)))
  | Ebinop (And, a, b) ->
      let va = eval t env a in
      if V.truthy va then eval t env b else va
  | Ebinop (Or, a, b) ->
      let va = eval t env a in
      if V.truthy va then va else eval t env b
  | Ebinop (op, a, b) -> binop op (eval t env a) (eval t env b)
  | Eindex (c, k) -> (
      let vc = eval t env c and vk = eval t env k in
      match vc.V.data with
      | V.List l -> (
          let i = V.as_int vk in
          let n = List.length !l in
          let i = if i < 0 then n + i else i in
          match List.nth_opt !l i with
          | Some vv -> vv
          | None -> error "list index %d out of range (len %d)" i n)
      | V.Str s -> (
          let i = V.as_int vk in
          let n = String.length s in
          let i = if i < 0 then n + i else i in
          if i >= 0 && i < n then V.str (String.make 1 s.[i])
          else error "string index %d out of range" i)
      | V.Dict d -> (
          match V.assoc_opt vk !d with
          | Some vv -> vv
          | None -> error "key %s not found" (V.repr vk))
      | _ -> V.type_error "%s is not indexable" (V.type_name vc))
  | Eattr (e, name) -> (
      let vv = eval t env e in
      match vv.V.data with
      | V.Module (mname, table) -> (
          match Hashtbl.find_opt table name with
          | Some member -> member
          | None -> error "module %s has no member %s" mname name)
      | _ -> V.type_error "%s has no attributes" (V.type_name vv))
  | Ecall (f, args) ->
      let vf = eval t env f in
      let vargs = List.map (eval t env) args in
      call t vf vargs

and binop op a b =
  let open V in
  match (op, a.data, b.data) with
  | Add, Int x, Int y -> int_ (x + y)
  | Add, (Int _ | Float _), (Int _ | Float _) -> float_ (as_float a +. as_float b)
  | Add, Str x, Str y -> str (x ^ y)
  | Add, List x, List y -> list_ (!x @ !y)
  | Sub, Int x, Int y -> int_ (x - y)
  | Sub, (Int _ | Float _), (Int _ | Float _) -> float_ (as_float a -. as_float b)
  | Mul, Int x, Int y -> int_ (x * y)
  | Mul, (Int _ | Float _), (Int _ | Float _) -> float_ (as_float a *. as_float b)
  | Div, Int x, Int y -> if y = 0 then error "division by zero" else int_ (x / y)
  | Div, (Int _ | Float _), (Int _ | Float _) ->
      let d = as_float b in
      if d = 0. then error "division by zero" else float_ (as_float a /. d)
  | Mod, Int x, Int y -> if y = 0 then error "modulo by zero" else int_ (((x mod y) + y) mod y)
  | Eq, _, _ -> bool_ (equal a b)
  | Neq, _, _ -> bool_ (not (equal a b))
  | (Lt | Le | Gt | Ge), Str x, Str y ->
      let c = String.compare x y in
      bool_ (match op with Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | _ -> c >= 0)
  | (Lt | Le | Gt | Ge), (Int _ | Float _), (Int _ | Float _) ->
      let c = Float.compare (as_float a) (as_float b) in
      bool_ (match op with Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | _ -> c >= 0)
  | In, _, List l -> bool_ (List.exists (equal a) !l)
  | In, _, Dict d -> bool_ (V.assoc_opt a !d <> None)
  | In, Str x, Str y ->
      let nx = String.length x and ny = String.length y in
      let rec search i = i + nx <= ny && (String.sub y i nx = x || search (i + 1)) in
      bool_ (nx = 0 || search 0)
  | _ -> type_error "unsupported operands: %s and %s" (type_name a) (type_name b)

and call t vf vargs =
  t.call_count <- t.call_count + 1;
  t.host.cpu 200;
  match vf.V.data with
  | V.Builtin (_, f) -> f vargs
  | V.Func fn ->
      if List.length vargs <> List.length fn.params then
        error "%s expects %d arguments, got %d" fn.fname (List.length fn.params)
          (List.length vargs);
      let env = V.new_env ~parent:fn.closure () in
      List.iter2 (V.define env) fn.params vargs;
      (try
         exec_block t env fn.body;
         V.none
       with Return_exc vv -> vv)
  | _ -> V.type_error "%s is not callable" (V.type_name vf)

and exec_block t env block = List.iter (exec t env) block

and exec t env stmt =
  t.host.cpu 40;
  match stmt with
  | Spass -> ()
  | Sbreak -> raise Break_exc
  | Scontinue -> raise Continue_exc
  | Sexpr e -> ignore (eval t env e : V.t)
  | Sassign (Tident name, e) -> V.assign env name (eval t env e)
  | Sassign (Tindex (c, k), e) -> (
      let vc = eval t env c and vk = eval t env k and vv = eval t env e in
      match vc.V.data with
      | V.List l ->
          let i = V.as_int vk in
          let n = List.length !l in
          let i = if i < 0 then n + i else i in
          if i < 0 || i >= n then error "list assignment index %d out of range" i
          else l := List.mapi (fun j x -> if j = i then vv else x) !l
      | V.Dict d ->
          if V.assoc_opt vk !d = None then d := (vk, vv) :: !d
          else d := List.map (fun (k0, v0) -> if V.equal k0 vk then (k0, vv) else (k0, v0)) !d
      | _ -> V.type_error "%s does not support item assignment" (V.type_name vc))
  | Sreturn e -> raise (Return_exc (match e with Some e -> eval t env e | None -> V.none))
  | Sif (chain, els) -> (
      let rec try_chain = function
        | (cond, body) :: rest ->
            if V.truthy (eval t env cond) then exec_block t env body else try_chain rest
        | [] -> ( match els with Some body -> exec_block t env body | None -> ())
      in
      try_chain chain)
  | Swhile (cond, body) -> (
      try
        while V.truthy (eval t env cond) do
          try exec_block t env body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Sfor (var, iter, body) -> (
      let vv = eval t env iter in
      let items =
        match vv.V.data with
        | V.List l -> !l
        | V.Str s -> List.init (String.length s) (fun i -> V.str (String.make 1 s.[i]))
        | V.Dict d -> List.map fst !d
        | _ -> V.type_error "%s is not iterable" (V.type_name vv)
      in
      try
        List.iter
          (fun item ->
            V.define env var item;
            try exec_block t env body with Continue_exc -> ())
          items
      with Break_exc -> ())
  | Sdef (name, params, body) ->
      V.define env name
        { V.data = V.Func { fname = name; params; body; closure = env }; prov = None }
  | Simport name -> (
      match Hashtbl.find_opt t.modules name with
      | Some m -> V.define env name m
      | None -> (
          match t.host.module_source name with
          | None -> error "no module named %s" name
          | Some source ->
              let program = Pyth_parser.parse source in
              let menv = V.new_env ~parent:t.globals () in
              exec_block t menv program;
              let table = Hashtbl.create 16 in
              Hashtbl.iter (Hashtbl.replace table) menv.V.vars;
              let m = { V.data = V.Module (name, table); prov = None } in
              Hashtbl.replace t.modules name m;
              t.on_import name m;
              V.define env name m))

let create ~host ~globals () =
  { host; globals; modules = Hashtbl.create 8; on_import = (fun _ _ -> ()); call_count = 0 }

(* The control-flow exceptions above are interpreter-internal and must
   never cross the module boundary: a stray one means the program used
   break/continue/return at top level, which is a program error, not a
   caller-visible condition. *)
let run t program =
  try exec_block t t.globals program with
  | Break_exc -> error "break outside loop"
  | Continue_exc -> error "continue outside loop"
  | Return_exc _ -> error "return outside function"

let run_string t source = run t (Pyth_parser.parse source)
