(** Pyth tokenizer: indentation-sensitive, emitting INDENT/DEDENT pairs
    the way CPython's tokenizer does. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string  (** if elif else while for in def return import ... *)
  | OP of string  (** + - * / % == != < <= > >= = ( ) [ ] { } , : . *)
  | NEWLINE
  | INDENT
  | DEDENT
  | EOF

exception Error of string * int
(** Message and line number. *)

val tokenize : string -> token list
(** @raise Error on bad indentation or unterminated strings. *)

val to_string : token -> string
