(** Pyth runtime values.  Every value carries an optional provenance
    handle ([prov]) so the provenance-aware wrappers can attach DPAPI
    objects to the data flowing through a script. *)

type t = { data : data; mutable prov : Pass_core.Dpapi.handle option }

and data =
  | None_
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list ref
  | Dict of (t * t) list ref
  | Func of func
  | Builtin of string * (t list -> t)
  | Module of string * (string, t) Hashtbl.t
  | Xml of Sxml.element

and func = { fname : string; params : string list; body : Pyth_ast.block; closure : env }

and env = { vars : (string, t) Hashtbl.t; parent : env option }

exception Type_error of string

val type_error : ('a, unit, string, 'b) format4 -> 'a

(* constructors *)
val v : data -> t
val none : t
val bool_ : bool -> t
val int_ : int -> t
val float_ : float -> t
val str : string -> t
val list_ : t list -> t
val dict_ : (t * t) list -> t
val xml : Sxml.element -> t

val type_name : t -> string
val truthy : t -> bool
val equal : t -> t -> bool
val assoc_opt : t -> (t * t) list -> t option

(* coercions; raise Type_error on mismatch *)
val as_int : t -> int
val as_float : t -> float
val as_str : t -> string
val as_list : t -> t list ref
val as_xml : t -> Sxml.element

val to_string : t -> string
val repr : t -> string

(* environments *)
val new_env : ?parent:env -> unit -> env
val lookup : env -> string -> t option
val define : env -> string -> t -> unit
val assign : env -> string -> t -> unit
