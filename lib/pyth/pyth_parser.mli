(** Recursive-descent parser for Pyth over [Pyth_lexer] tokens. *)

exception Error of string

val parse : string -> Pyth_ast.program
(** @raise Error on syntax errors, [Pyth_lexer.Error] on lexing errors. *)
