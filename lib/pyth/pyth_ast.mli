(** Abstract syntax of Pyth, the small Python-like language the PA-Pyth
    interpreter executes (indentation blocks, first-class functions,
    imports, lists/dicts). *)

type expr =
  | Enone
  | Ebool of bool
  | Eint of int
  | Efloat of float
  | Estr of string
  | Eident of string
  | Elist of expr list
  | Edict of (expr * expr) list
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Ecall of expr * expr list
  | Eindex of expr * expr
  | Eattr of expr * string  (** module.name or value.method *)

and binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or
  | In

and unop = Neg | Not

type stmt =
  | Sexpr of expr
  | Sassign of target * expr
  | Sif of (expr * block) list * block option  (** if/elif chains, else *)
  | Swhile of expr * block
  | Sfor of string * expr * block
  | Sdef of string * string list * block
  | Sreturn of expr option
  | Simport of string
  | Spass
  | Sbreak
  | Scontinue

and target =
  | Tident of string
  | Tindex of expr * expr  (** [container[key] = ...] *)

and block = stmt list

type program = block
