(* The VFS interface of the simulated OS.  File systems — ext3sim, the
   Lasagna stackable layer, and the PA-NFS client — all present this
   record-of-operations, which is what lets Lasagna stack over ext3 locally
   and over the NFS client remotely without either knowing. *)

type errno =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EINVAL
  | EIO
  | ENOSPC
  | EBADF
  | ESTALE
  | ECRASH
  | EAGAIN

let errno_to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | EIO -> "EIO"
  | ENOSPC -> "ENOSPC"
  | EBADF -> "EBADF"
  | ESTALE -> "ESTALE"
  | ECRASH -> "ECRASH"
  | EAGAIN -> "EAGAIN"

let errno_of_string = function
  | "ENOENT" -> Some ENOENT
  | "EEXIST" -> Some EEXIST
  | "ENOTDIR" -> Some ENOTDIR
  | "EISDIR" -> Some EISDIR
  | "ENOTEMPTY" -> Some ENOTEMPTY
  | "EINVAL" -> Some EINVAL
  | "EIO" -> Some EIO
  | "ENOSPC" -> Some ENOSPC
  | "EBADF" -> Some EBADF
  | "ESTALE" -> Some ESTALE
  | "ECRASH" -> Some ECRASH
  | "EAGAIN" -> Some EAGAIN
  | _ -> None

let pp_errno ppf e = Format.pp_print_string ppf (errno_to_string e)

(* Volume-fatal conditions hit on paths that cannot return a [result]
   (mounting a layer, allocating a fresh WAP log).  Typed so handlers can
   match on the errno instead of parsing a failwith string. *)
exception Fatal of string * errno

let fatal what e = raise (Fatal (what, e))

type ino = int
type kind = Regular | Directory

type stat = { st_ino : ino; st_kind : kind; st_size : int }

type ops = {
  root : unit -> ino;
  lookup : dir:ino -> string -> (ino, errno) result;
  create : dir:ino -> string -> kind -> (ino, errno) result;
  unlink : dir:ino -> string -> (unit, errno) result;
  rename :
    src_dir:ino -> src_name:string -> dst_dir:ino -> dst_name:string ->
    (unit, errno) result;
  read : ino -> off:int -> len:int -> (string, errno) result;
  write : ino -> off:int -> string -> (unit, errno) result;
  truncate : ino -> int -> (unit, errno) result;
  getattr : ino -> (stat, errno) result;
  readdir : ino -> (string list, errno) result;
  fsync : ino -> (unit, errno) result;
  sync : unit -> (unit, errno) result;
}

let ( let* ) = Result.bind

(* --- path helpers over any [ops] ---------------------------------------- *)

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let lookup_path fs path =
  let rec walk dir = function
    | [] -> Ok dir
    | seg :: rest ->
        let* next = fs.lookup ~dir seg in
        walk next rest
  in
  walk (fs.root ()) (split_path path)

let parent_and_leaf fs path =
  match List.rev (split_path path) with
  | [] -> Error EINVAL
  | leaf :: rev_dirs ->
      let* dir =
        List.fold_left
          (fun acc seg ->
            let* d = acc in
            fs.lookup ~dir:d seg)
          (Ok (fs.root ()))
          (List.rev rev_dirs)
      in
      Ok (dir, leaf)

let mkdir_p fs path =
  let rec walk dir = function
    | [] -> Ok dir
    | seg :: rest -> (
        match fs.lookup ~dir seg with
        | Ok next -> walk next rest
        | Error ENOENT ->
            let* next = fs.create ~dir seg Directory in
            walk next rest
        | Error _ as e -> e)
  in
  walk (fs.root ()) (split_path path)

let create_path ?(mkparents = false) fs path kind =
  let* dirpath, leaf =
    match List.rev (split_path path) with
    | [] -> Error EINVAL
    | leaf :: rev_dirs -> Ok (List.rev rev_dirs, leaf)
  in
  let* dir =
    if mkparents then mkdir_p fs (String.concat "/" dirpath)
    else lookup_path fs ("/" ^ String.concat "/" dirpath)
  in
  fs.create ~dir leaf kind

let read_file fs path =
  let* ino = lookup_path fs path in
  let* st = fs.getattr ino in
  fs.read ino ~off:0 ~len:st.st_size

let write_file ?(mkparents = false) fs path data =
  let* ino =
    match lookup_path fs path with
    | Ok ino -> Ok ino
    | Error ENOENT -> create_path ~mkparents fs path Regular
    | Error _ as e -> e
  in
  let* () = fs.truncate ino (String.length data) in
  let* () = fs.write ino ~off:0 data in
  Ok ino

let remove_path fs path =
  let* dir, leaf = parent_and_leaf fs path in
  fs.unlink ~dir leaf

let rename_path fs src dst =
  let* src_dir, src_name = parent_and_leaf fs src in
  let* dst_dir, dst_name = parent_and_leaf fs dst in
  fs.rename ~src_dir ~src_name ~dst_dir ~dst_name
