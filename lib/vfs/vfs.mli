(** The VFS interface of the simulated OS.

    File systems — {!Ext3}, the Lasagna stackable layer, and the PA-NFS
    client — all present this record of operations, which is what lets
    Lasagna stack over ext3 locally and over the NFS client remotely
    without either side knowing. *)

type errno =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EINVAL
  | EIO
  | ENOSPC
  | EBADF
  | ESTALE
  | ECRASH
  | EAGAIN

val errno_to_string : errno -> string

val errno_of_string : string -> errno option
(** Inverse of {!errno_to_string}; [None] for unknown names.  Used by the
    PA-NFS wire decoder. *)

val pp_errno : Format.formatter -> errno -> unit

exception Fatal of string * errno
(** A volume-fatal condition hit on a path that cannot return a result
    (mounting a layer, allocating a fresh WAP log).  Carries the errno so
    handlers and logs stay typed; the passlint [bare-failwith] rule bans
    stringly [failwith] on the storage hot paths in favour of this. *)

val fatal : string -> errno -> 'a
(** [fatal what e] raises {!Fatal}. *)

type ino = int
type kind = Regular | Directory
type stat = { st_ino : ino; st_kind : kind; st_size : int }

type ops = {
  root : unit -> ino;
  lookup : dir:ino -> string -> (ino, errno) result;
  create : dir:ino -> string -> kind -> (ino, errno) result;
  unlink : dir:ino -> string -> (unit, errno) result;
  rename :
    src_dir:ino -> src_name:string -> dst_dir:ino -> dst_name:string ->
    (unit, errno) result;
  read : ino -> off:int -> len:int -> (string, errno) result;
  write : ino -> off:int -> string -> (unit, errno) result;
  truncate : ino -> int -> (unit, errno) result;
  getattr : ino -> (stat, errno) result;
  readdir : ino -> (string list, errno) result;
  fsync : ino -> (unit, errno) result;
  sync : unit -> (unit, errno) result;
}

val split_path : string -> string list

val lookup_path : ops -> string -> (ino, errno) result
val parent_and_leaf : ops -> string -> (ino * string, errno) result
val mkdir_p : ops -> string -> (ino, errno) result

val create_path : ?mkparents:bool -> ops -> string -> kind -> (ino, errno) result

val read_file : ops -> string -> (string, errno) result
(** Read a whole file by path. *)

val write_file : ?mkparents:bool -> ops -> string -> string -> (ino, errno) result
(** Create-or-truncate [path] and write [data]; returns the inode. *)

val remove_path : ops -> string -> (unit, errno) result
val rename_path : ops -> string -> string -> (unit, errno) result
