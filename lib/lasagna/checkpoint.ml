(* The durable-checkpoint protocol (DESIGN §13).

   A checkpoint is a provdb image covering every WAP log whose sequence
   number is below a watermark, plus (optionally) a cold-tier archive
   segment of compacted-away history and a sidecar of still-open
   transaction frames.  All of them are published with the same
   crash-safe discipline:

   - every payload file is digest-framed (magic, MD5, payload) and
     written to a `.tmp` name first, then renamed into place.  ext3sim
     journals a rename as a single checksummed frame, so after a crash a
     remount observes either the old file or the new one, never a tear;
   - the MANIFEST names every payload file the checkpoint consists of
     (with its digest) and is itself written temp-then-rename LAST.  The
     manifest rename is the commit point: covered WAP logs are deleted
     only after it, so a crash at any disk tick leaves either the old
     recovery story (old manifest or none, all logs intact) or the new
     one (new manifest, strays cleaned idempotently by recovery).

   The module is deliberately the only place in lib/lasagna and
   lib/waldo that writes `.pass`-metadata files with Vfs.write_file —
   passlint's inplace-metadata-write rule pins that down. *)

type manifest = {
  m_gen : int;  (* checkpoint generation, 1-based *)
  m_watermark : int;  (* WAP logs with seq < watermark are covered *)
  m_db_name : string;  (* hot provdb image, [image_name ~gen] *)
  m_db_digest : string;
  m_archives : (string * string) list;
      (* cumulative cold-tier segments, (name, digest), oldest first *)
  m_pending : (string * string) option;
      (* sidecar of open-transaction frames, (name, digest) *)
  m_pending_txns : int list;  (* ids buffered at checkpoint time, sorted *)
}

let manifest_name = "MANIFEST"
let image_name ~gen = Printf.sprintf "db.%d.dat" gen
let archive_name ~gen = Printf.sprintf "archive.%d.dat" gen
let pending_name ~gen = Printf.sprintf "pending.%d.dat" gen

let ( let* ) = Result.bind

(* --- digest-framed atomic payload files ---------------------------------- *)

let image_magic = "PIMG1"

let frame payload =
  let digest = Digest.string payload in
  let buf = Buffer.create (String.length payload + 64) in
  Wire.put_string buf image_magic;
  Wire.put_string buf digest;
  Wire.put_string buf payload;
  (Buffer.contents buf, digest)

(* Publish [payload] at [path]: stage the framed bytes at [path].tmp,
   then rename over [path].  Returns the payload digest recorded in the
   frame.  A leftover `.tmp` from an earlier crashed attempt is
   harmless: write_file truncates, and recovery deletes strays. *)
let write_atomic lower ~path payload =
  let framed, digest = frame payload in
  let tmp = path ^ ".tmp" in
  let* _ino = Vfs.write_file ~mkparents:true lower tmp framed in
  let* () = Vfs.rename_path lower tmp path in
  Ok digest

(* Read a digest-framed payload back; any mismatch — bad magic, torn
   frame, payload bytes that do not hash to the recorded digest — is
   reported as EIO, never raised. *)
let read_verified lower ~path =
  let* framed = Vfs.read_file lower path in
  match
    let pos = ref 0 in
    let magic = Wire.get_string framed pos in
    let digest = Wire.get_string framed pos in
    let payload = Wire.get_string framed pos in
    (magic, digest, payload)
  with
  | exception Wire.Corrupt _ -> Error Vfs.EIO
  | magic, digest, payload ->
      if
        String.equal magic image_magic
        && String.equal (Digest.string payload) digest
      then Ok (payload, digest)
      else Error Vfs.EIO

(* --- the manifest ---------------------------------------------------------- *)

let manifest_magic = "WMAN1"

let encode_manifest m =
  let buf = Buffer.create 256 in
  Wire.put_string buf manifest_magic;
  Wire.put_i64 buf m.m_gen;
  Wire.put_i64 buf m.m_watermark;
  Wire.put_string buf m.m_db_name;
  Wire.put_string buf m.m_db_digest;
  Wire.put_u32 buf (List.length m.m_archives);
  List.iter
    (fun (name, digest) ->
      Wire.put_string buf name;
      Wire.put_string buf digest)
    m.m_archives;
  (match m.m_pending with
  | None ->
      Wire.put_string buf "";
      Wire.put_string buf ""
  | Some (name, digest) ->
      Wire.put_string buf name;
      Wire.put_string buf digest);
  Wire.put_u32 buf (List.length m.m_pending_txns);
  List.iter (fun id -> Wire.put_i64 buf id) m.m_pending_txns;
  Buffer.contents buf

let decode_manifest image =
  let pos = ref 0 in
  if not (String.equal (Wire.get_string image pos) manifest_magic) then
    Wire.corrupt "checkpoint: bad manifest magic";
  let m_gen = Wire.get_i64 image pos in
  let m_watermark = Wire.get_i64 image pos in
  let m_db_name = Wire.get_string image pos in
  let m_db_digest = Wire.get_string image pos in
  let n_archives = Wire.get_u32 image pos in
  let m_archives =
    List.init n_archives (fun _ ->
        let name = Wire.get_string image pos in
        let digest = Wire.get_string image pos in
        (name, digest))
  in
  let pending_nm = Wire.get_string image pos in
  let pending_dg = Wire.get_string image pos in
  let m_pending =
    if String.equal pending_nm "" then None else Some (pending_nm, pending_dg)
  in
  let n_pending = Wire.get_u32 image pos in
  let m_pending_txns = List.init n_pending (fun _ -> Wire.get_i64 image pos) in
  { m_gen; m_watermark; m_db_name; m_db_digest; m_archives; m_pending; m_pending_txns }

(* The commit point: stage MANIFEST.tmp, rename over MANIFEST.  Until
   the rename's journal frame is durable the old manifest (or none)
   governs recovery; after it, the new one does. *)
let write_manifest lower ~dir m =
  let path = dir ^ "/" ^ manifest_name in
  let tmp = path ^ ".tmp" in
  let* _ino = Vfs.write_file ~mkparents:true lower tmp (encode_manifest m) in
  Vfs.rename_path lower tmp path

(* [Ok None] when no checkpoint was ever committed (fresh volume or a
   crash before the first manifest rename); EIO on a corrupt manifest. *)
let read_manifest lower ~dir =
  match Vfs.read_file lower (dir ^ "/" ^ manifest_name) with
  | Error Vfs.ENOENT -> Ok None
  | Error e -> Error e
  | Ok image -> (
      match decode_manifest image with
      | m -> Ok (Some m)
      | exception Wire.Corrupt _ -> Error Vfs.EIO)

(* --- WAP log truncation ---------------------------------------------------- *)

let log_seq name =
  if String.length name > 4 && String.equal (String.sub name 0 4) "log." then
    int_of_string_opt (String.sub name 4 (String.length name - 4))
  else None

(* Delete every closed WAP log wholly covered by a durable checkpoint
   (seq < watermark).  Called only after the manifest rename committed;
   idempotent, so recovery re-runs it to finish a truncation a crash
   interrupted.  Returns the number of logs deleted. *)
let truncate_covered lower ~watermark =
  match Vfs.lookup_path lower "/.pass" with
  | Error Vfs.ENOENT -> Ok 0
  | Error e -> Error e
  | Ok pass_dir ->
      let* names = lower.Vfs.readdir pass_dir in
      let covered =
        List.filter
          (fun n -> match log_seq n with Some s -> s < watermark | None -> false)
          names
      in
      let* () =
        List.fold_left
          (fun acc name ->
            let* () = acc in
            lower.Vfs.unlink ~dir:pass_dir name)
          (Ok ()) covered
      in
      Ok (List.length covered)
