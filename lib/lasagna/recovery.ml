(* Lasagna crash recovery (paper §5.6).

   WAP guarantees that no data reaches the disk before its provenance, so
   after a crash there are only two anomalies to look for:

   - a torn frame at the tail of a log (the crash hit mid-log-append);
     parse_log already stops there, and everything before it is intact;
   - a data-carrying frame whose data never (fully) made it to the file:
     the frame's MD5 disagrees with the bytes now in the file.  That is
     precisely the data that was being written at the time of the crash,
     and recovery reports it as inconsistent.

   Only the *last* data frame for each object is verifiable: earlier
   frames' byte ranges may since have been overwritten legitimately, and
   a crash can only leave the final in-flight write incomplete.

   Recovery also rebuilds the pnode<->inode maps and the set of virtual
   objects from the Map/Mkobj frames, which is how a remounted Lasagna
   regains its identity state. *)

module Pnode = Pass_core.Pnode

type inconsistency = {
  i_pnode : Pnode.t;
  i_ino : Vfs.ino option;
  i_off : int;
  i_len : int;
  reason : string;
}

type report = {
  logs_scanned : int;
  frames_ok : int;
  torn_bytes : int; (* bytes of torn log tail discarded across logs *)
  data_checked : int;
  inconsistent : inconsistency list;
  files : (Pnode.t * Vfs.ino * string) list; (* rebuilt pnode map *)
  virtuals : Pnode.t list;
}

let ( let* ) = Result.bind

let list_logs lower =
  let* pass_dir = Vfs.lookup_path lower "/.pass" in
  let* names = lower.Vfs.readdir pass_dir in
  let logs =
    List.filter (fun n -> String.length n > 4 && String.sub n 0 4 = "log.") names
    |> List.sort (fun a b ->
           let seq n = int_of_string_opt (String.sub n 4 (String.length n - 4)) in
           compare (seq a) (seq b))
  in
  Ok (pass_dir, logs)

let read_whole lower ino =
  let* st = lower.Vfs.getattr ino in
  lower.Vfs.read ino ~off:0 ~len:st.Vfs.st_size

(* Recovery publishes its outcome as [wap.recovery.*] counters so a
   post-crash scan shows up in the same snapshot as the run it repairs. *)
let record_outcome registry report =
  let c name v =
    Telemetry.add (Telemetry.counter ?registry ("wap.recovery." ^ name)) v
  in
  c "logs_scanned" report.logs_scanned;
  c "frames_ok" report.frames_ok;
  c "torn_bytes" report.torn_bytes;
  c "data_checked" report.data_checked;
  c "inconsistent" (List.length report.inconsistent)

let scan ?registry lower =
  let* pass_dir, logs = list_logs lower in
  let frames_ok = ref 0 and torn = ref 0 in
  let files = ref [] and virtuals = ref [] in
  let by_pnode = Hashtbl.create 64 in
  let last_data : (Pnode.t, Wap_log.data_id) Hashtbl.t = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        let* ino = lower.Vfs.lookup ~dir:pass_dir name in
        let* image = read_whole lower ino in
        let frames, consumed = Wap_log.parse_log image in
        torn := !torn + (String.length image - consumed);
        List.iter
          (fun frame ->
            incr frames_ok;
            match frame with
            | Wap_log.Map { pnode; ino; name } ->
                Hashtbl.replace by_pnode pnode ino;
                files := (pnode, ino, name) :: !files
            | Wap_log.Mkobj { pnode } -> virtuals := pnode :: !virtuals
            | Wap_log.Bundle { data = None; _ } -> ()
            | Wap_log.Bundle { data = Some d; _ } -> Hashtbl.replace last_data d.d_pnode d)
          frames;
        Ok ())
      (Ok ()) logs
  in
  let bad = ref [] and checked = ref 0 in
  Hashtbl.iter
    (fun pnode (d : Wap_log.data_id) ->
      incr checked;
      match Hashtbl.find_opt by_pnode pnode with
      | None ->
          bad :=
            { i_pnode = pnode; i_ino = None; i_off = d.d_off; i_len = d.d_len;
              reason = "no inode mapping for data frame" }
            :: !bad
      | Some file_ino -> (
          match lower.Vfs.read file_ino ~off:d.d_off ~len:d.d_len with
          | Error e ->
              bad :=
                { i_pnode = pnode; i_ino = Some file_ino; i_off = d.d_off; i_len = d.d_len;
                  reason = "read failed: " ^ Vfs.errno_to_string e }
                :: !bad
          | Ok bytes ->
              if String.length bytes <> d.d_len
                 || not (String.equal (Wap_log.md5 bytes) d.d_md5)
              then
                bad :=
                  { i_pnode = pnode; i_ino = Some file_ino; i_off = d.d_off; i_len = d.d_len;
                    reason = "data digest mismatch" }
                  :: !bad))
    last_data;
  let report =
    {
      logs_scanned = List.length logs;
      frames_ok = !frames_ok;
      torn_bytes = !torn;
      data_checked = !checked;
      inconsistent = !bad;
      files = List.rev !files;
      virtuals = List.rev !virtuals;
    }
  in
  record_outcome registry report;
  Ok report

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>logs=%d frames=%d torn_bytes=%d data_checked=%d inconsistent=%d@]"
    r.logs_scanned r.frames_ok r.torn_bytes r.data_checked (List.length r.inconsistent)
