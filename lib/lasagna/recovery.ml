(* Lasagna crash recovery (paper §5.6).

   WAP guarantees that no data reaches the disk before its provenance, so
   after a crash there are only two anomalies to look for:

   - a torn frame at the tail of a log (the crash hit mid-log-append);
     parse_log already stops there, and everything before it is intact;
   - a data-carrying frame whose data never (fully) made it to the file:
     the frame's MD5 disagrees with the bytes now in the file.  That is
     precisely the data that was being written at the time of the crash,
     and recovery reports it as inconsistent.

   Only the *last* data frame for each object is verifiable: earlier
   frames' byte ranges may since have been overwritten legitimately, and
   a crash can only leave the final in-flight write incomplete.

   Recovery also rebuilds the pnode<->inode maps and the set of virtual
   objects from the Map/Mkobj frames, which is how a remounted Lasagna
   regains its identity state. *)

module Pnode = Pass_core.Pnode
module Record = Pass_core.Record

type inconsistency = {
  i_pnode : Pnode.t;
  i_ino : Vfs.ino option;
  i_off : int;
  i_len : int;
  reason : string;
}

type log_detail = {
  l_name : string;
  l_skipped : bool; (* covered by the checkpoint watermark, not read *)
  l_frames : int; (* well-formed frames scanned (0 when skipped) *)
}

type report = {
  logs_scanned : int;
  logs_skipped : int; (* logs below the checkpoint watermark, not read *)
  watermark : int option; (* from the checkpoint MANIFEST, when one exists *)
  frames_ok : int;
  torn_bytes : int; (* bytes of torn log tail discarded across logs *)
  data_checked : int;
  inconsistent : inconsistency list;
  files : (Pnode.t * Vfs.ino * string) list; (* rebuilt pnode map *)
  virtuals : Pnode.t list;
  open_txns : int list; (* PA-NFS transactions begun but never ended:
                           orphans Waldo will discard *)
  log_details : log_detail list; (* per log, in sequence order *)
}

let ( let* ) = Result.bind

let list_logs lower =
  let* pass_dir = Vfs.lookup_path lower "/.pass" in
  let* names = lower.Vfs.readdir pass_dir in
  let logs =
    List.filter_map (fun n -> Option.map (fun s -> (s, n)) (Checkpoint.log_seq n)) names
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Ok (pass_dir, logs)

(* Transient read errors (fault-plan EIO) must not abort a recovery
   scan: retry a few times before giving up. *)
let io_retry_budget = 4

let with_io_retry retried f =
  let rec go n =
    match f () with
    | Error Vfs.EIO when n < io_retry_budget ->
        incr retried;
        go (n + 1)
    | r -> r
  in
  go 0

let read_whole retried lower ino =
  let* st = with_io_retry retried (fun () -> lower.Vfs.getattr ino) in
  with_io_retry retried (fun () -> lower.Vfs.read ino ~off:0 ~len:st.Vfs.st_size)

(* Recovery publishes its outcome as [wap.recovery.*] counters so a
   post-crash scan shows up in the same snapshot as the run it repairs. *)
let record_outcome registry ~io_retries report =
  let c name v =
    Telemetry.add (Telemetry.counter ?registry ("wap.recovery." ^ name)) v
  in
  c "logs_scanned" report.logs_scanned;
  c "logs_skipped" report.logs_skipped;
  c "frames_ok" report.frames_ok;
  c "torn_bytes" report.torn_bytes;
  c "data_checked" report.data_checked;
  c "inconsistent" (List.length report.inconsistent);
  c "open_txns" (List.length report.open_txns);
  c "io_retries" io_retries

let bundle_has_endtxn bundle =
  List.exists
    (fun (e : Pass_core.Dpapi.bundle_entry) ->
      List.exists
        (fun (r : Record.t) -> String.equal r.attr Record.Attr.endtxn)
        e.records)
    bundle

let scan ?registry ?(waldo_dir = "/.waldo") lower =
  let retried = ref 0 in
  let* pass_dir, logs = list_logs lower in
  (* A durable checkpoint bounds the scan: logs below its watermark are
     already reflected in the image, so they are skipped without being
     read.  A missing or unreadable manifest just means a full scan. *)
  let manifest =
    match Checkpoint.read_manifest lower ~dir:waldo_dir with
    | Ok m -> m
    | Error _ -> None
  in
  let watermark = Option.map (fun m -> m.Checkpoint.m_watermark) manifest in
  let frames_ok = ref 0 and torn = ref 0 in
  let files = ref [] and virtuals = ref [] in
  let by_pnode = Hashtbl.create 64 in
  let last_data : (Pnode.t, Wap_log.data_id) Hashtbl.t = Hashtbl.create 64 in
  (* PA-NFS transactions: [seen] minus [ended] are the orphans a client
     crash (or an abandoned retransmission) left behind.  Transactions
     the checkpoint carried as in-flight began below the watermark, so
     their BEGINTXN is in a skipped log: seed [seen] from the manifest
     so an ENDTXN in the suffix still closes them. *)
  let txns_seen = ref [] and txns_ended = ref [] in
  (match manifest with
  | Some m -> txns_seen := List.rev m.Checkpoint.m_pending_txns
  | None -> ());
  let details = ref [] in
  let* () =
    List.fold_left
      (fun acc (seq, name) ->
        let* () = acc in
        match watermark with
        | Some w when seq < w ->
            details := { l_name = name; l_skipped = true; l_frames = 0 } :: !details;
            Ok ()
        | _ ->
            let* ino = with_io_retry retried (fun () -> lower.Vfs.lookup ~dir:pass_dir name) in
            let* image = read_whole retried lower ino in
            let frames, consumed = Wap_log.parse_log image in
            torn := !torn + (String.length image - consumed);
            List.iter
              (fun frame ->
                incr frames_ok;
                match frame with
                | Wap_log.Map { pnode; ino; name } ->
                    Hashtbl.replace by_pnode pnode ino;
                    files := (pnode, ino, name) :: !files
                | Wap_log.Mkobj { pnode } -> virtuals := pnode :: !virtuals
                | Wap_log.Bundle { txn; bundle; data } ->
                    (match txn with
                    | Some id ->
                        if not (List.mem id !txns_seen) then txns_seen := id :: !txns_seen;
                        if bundle_has_endtxn bundle && not (List.mem id !txns_ended) then
                          txns_ended := id :: !txns_ended
                    | None -> ());
                    (match data with
                    | None -> ()
                    | Some d -> Hashtbl.replace last_data d.d_pnode d))
              frames;
            details :=
              { l_name = name; l_skipped = false; l_frames = List.length frames }
              :: !details;
            Ok ())
      (Ok ()) logs
  in
  let bad = ref [] and checked = ref 0 in
  Hashtbl.iter
    (fun pnode (d : Wap_log.data_id) ->
      incr checked;
      match Hashtbl.find_opt by_pnode pnode with
      | None ->
          bad :=
            { i_pnode = pnode; i_ino = None; i_off = d.d_off; i_len = d.d_len;
              reason = "no inode mapping for data frame" }
            :: !bad
      | Some file_ino -> (
          match
            with_io_retry retried (fun () -> lower.Vfs.read file_ino ~off:d.d_off ~len:d.d_len)
          with
          | Error e ->
              bad :=
                { i_pnode = pnode; i_ino = Some file_ino; i_off = d.d_off; i_len = d.d_len;
                  reason = "read failed: " ^ Vfs.errno_to_string e }
                :: !bad
          | Ok bytes ->
              if String.length bytes <> d.d_len
                 || not (String.equal (Wap_log.md5 bytes) d.d_md5)
              then
                bad :=
                  { i_pnode = pnode; i_ino = Some file_ino; i_off = d.d_off; i_len = d.d_len;
                    reason = "data digest mismatch" }
                  :: !bad))
    last_data;
  let log_details = List.rev !details in
  let skipped = List.length (List.filter (fun d -> d.l_skipped) log_details) in
  let report =
    {
      logs_scanned = List.length logs - skipped;
      logs_skipped = skipped;
      watermark;
      frames_ok = !frames_ok;
      torn_bytes = !torn;
      data_checked = !checked;
      inconsistent = !bad;
      files = List.rev !files;
      virtuals = List.rev !virtuals;
      open_txns =
        List.sort Int.compare
          (List.filter (fun id -> not (List.mem id !txns_ended)) !txns_seen);
      log_details;
    }
  in
  record_outcome registry ~io_retries:!retried report;
  Ok report

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>logs=%d skipped=%d%s frames=%d torn_bytes=%d data_checked=%d inconsistent=%d open_txns=%d@]"
    r.logs_scanned r.logs_skipped
    (match r.watermark with
    | Some w -> Printf.sprintf " watermark=%d" w
    | None -> "")
    r.frames_ok r.torn_bytes r.data_checked (List.length r.inconsistent)
    (List.length r.open_txns)

(* JSON form of the report, for [passctl recover --json] and the chaos
   telemetry artifacts; uses the telemetry JSON tree so the encoding is
   shared with registry snapshots. *)
let report_to_json r : Telemetry.Json.t =
  let open Telemetry.Json in
  let inconsistency (i : inconsistency) =
    Obj
      [
        ("pnode", Int (Pnode.to_int i.i_pnode));
        ("ino", match i.i_ino with None -> Null | Some ino -> Int ino);
        ("off", Int i.i_off);
        ("len", Int i.i_len);
        ("reason", Str i.reason);
      ]
  in
  let log_detail d =
    Obj
      [
        ("name", Str d.l_name);
        ("skipped", Bool d.l_skipped);
        ("frames", Int d.l_frames);
      ]
  in
  Obj
    [
      ("logs_scanned", Int r.logs_scanned);
      ("logs_skipped", Int r.logs_skipped);
      ("watermark", (match r.watermark with None -> Null | Some w -> Int w));
      ("frames_ok", Int r.frames_ok);
      ("torn_bytes", Int r.torn_bytes);
      ("data_checked", Int r.data_checked);
      ("inconsistent", List (List.map inconsistency r.inconsistent));
      ("files", Int (List.length r.files));
      ("virtuals", Int (List.length r.virtuals));
      ("open_txns", List (List.map (fun id -> Int id) r.open_txns));
      ("logs", List (List.map log_detail r.log_details));
    ]
