(** Lasagna: the provenance-aware file system (paper, Section 5.6).

    A stackable layer presenting {!Vfs.ops} like any file system while also
    implementing the DPAPI.  Provenance is written to a write-ahead log in
    a hidden [.pass] directory on the lower file system: the provenance
    frame (including an MD5 of the data) always reaches the log before the
    data it describes, so unprovenanced data can never exist on disk. *)

type t

type stats = {
  mutable frames_logged : int;
  mutable prov_bytes_logged : int;
  mutable data_bytes : int;
  mutable rotations : int;
}

val create :
  ?registry:Telemetry.registry ->
  ?log_max:int ->
  ?idle_ns:int ->
  ?now:(unit -> int) ->
  ?tracer:Pvtrace.t ->
  ?group_commit:bool ->
  lower:Vfs.ops ->
  ctx:Pass_core.Ctx.t ->
  volume:string ->
  charge:(int -> unit) ->
  unit ->
  t
(** [create ~lower ~ctx ~volume ~charge ()] stacks a Lasagna instance over
    [lower].  [registry] receives the [wap.*] and [lasagna.*] instruments
    (default {!Telemetry.default}); [charge] receives the double-buffering
    CPU nanoseconds the stacking costs; [log_max] (default 1 MiB) bounds
    the active log before rotation, and a log dormant for [idle_ns]
    (default 5 simulated seconds, measured on [now]) is closed on the next
    append — the paper's two rotation triggers.  Each WAP append is timed
    into the [wap.append_ns] histogram on the simulated clock.

    With [group_commit] (the default) WAP frames queue in memory and reach
    the log in one coalesced write at the next commit barrier — a data
    write they must precede, an fsync, rotation, or drain — charging the
    log-write interference once per commit instead of once per frame.  The
    log's byte stream is identical either way; [~group_commit:false]
    restores frame-at-a-time appends for A/B comparison. *)

val ops : t -> Vfs.ops
(** The VFS face (hides the [.pass] directory). *)

val endpoint : t -> Pass_core.Dpapi.endpoint
(** The DPAPI face: [pass_read], [pass_write], [pass_freeze] as inode
    operations; [pass_mkobj], [pass_reviveobj] as superblock operations. *)

val write_txn_bundle :
  ?txn:int ->
  t ->
  Pass_core.Dpapi.handle ->
  off:int ->
  data:string option ->
  Pass_core.Dpapi.bundle ->
  (int, Pass_core.Dpapi.error) result
(** [pass_write] with an explicit PA-NFS transaction tag (Section 6.1.2). *)

val stats : t -> stats
(** A point-in-time view over the [wap.*] / [lasagna.*] instruments. *)

val volume : t -> string

val file_handle : t -> Vfs.ino -> (Pass_core.Dpapi.handle, Vfs.errno) result
(** The DPAPI handle of a file on this volume (registers the file lazily if
    it predates stacking). *)

val ino_of_pnode : t -> Pass_core.Pnode.t -> Vfs.ino option

val on_log_closed : t -> (string -> Vfs.ino -> unit) -> unit
(** Register a listener for closed logs (Waldo's simulated inotify). *)

val commit_log : t -> (unit, Vfs.errno) result
(** Write any queued WAP frames to the log in one group commit.  A no-op
    when the queue is empty.  Called internally before every data write,
    fsync and rotation; exposed for callers (the PA-NFS server) whose ack
    semantics require frames to be durable at a protocol boundary. *)

val flush_log : t -> unit
(** Force-close the active log so listeners can drain it (commits queued
    frames first). *)
