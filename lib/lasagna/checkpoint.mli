(** The durable-checkpoint protocol shared by Waldo and recovery.

    A checkpoint publishes a provdb image (plus optional cold-tier
    archive segments and a sidecar of open-transaction frames) under a
    small MANIFEST.  Every payload file is digest-framed and staged
    temp-then-rename; the manifest rename is the single commit point —
    ext3sim journals a rename as one checksummed frame, so a crash at
    any disk tick leaves either the previous checkpoint (with all WAP
    logs intact) or the new one.  Covered WAP logs are deleted only
    after the manifest commits, and that truncation is idempotent so
    recovery can finish it after a crash. *)

type manifest = {
  m_gen : int;  (** checkpoint generation, 1-based *)
  m_watermark : int;  (** WAP logs with seq < watermark are covered *)
  m_db_name : string;  (** hot provdb image file name *)
  m_db_digest : string;  (** MD5 of the raw image payload *)
  m_archives : (string * string) list;
      (** cumulative cold-tier segments, (name, digest), oldest first *)
  m_pending : (string * string) option;
      (** sidecar of open-transaction frames, (name, digest) *)
  m_pending_txns : int list;
      (** transaction ids buffered at checkpoint time, sorted *)
}

val manifest_name : string
val image_name : gen:int -> string
val archive_name : gen:int -> string
val pending_name : gen:int -> string

val write_atomic :
  Vfs.ops -> path:string -> string -> (string, Vfs.errno) result
(** [write_atomic lower ~path payload] digest-frames [payload], stages
    it at [path ^ ".tmp"], renames it over [path], and returns the
    payload digest. *)

val read_verified :
  Vfs.ops -> path:string -> (string * string, Vfs.errno) result
(** Read a digest-framed payload back as [(payload, digest)].  Bad
    magic, a torn frame, or a digest mismatch all come back as [EIO]. *)

val write_manifest :
  Vfs.ops -> dir:string -> manifest -> (unit, Vfs.errno) result
(** Atomically publish [manifest] at [dir ^ "/MANIFEST"] — the commit
    point of a checkpoint. *)

val read_manifest :
  Vfs.ops -> dir:string -> (manifest option, Vfs.errno) result
(** [Ok None] when no checkpoint was ever committed; [EIO] on a corrupt
    manifest. *)

val log_seq : string -> int option
(** Parse the sequence number out of a WAP log name ["log.<n>"]. *)

val truncate_covered : Vfs.ops -> watermark:int -> (int, Vfs.errno) result
(** Delete every WAP log under [/.pass] with seq < watermark; returns
    how many were deleted.  Idempotent; call only after the covering
    manifest is durable. *)
