(** Lasagna crash recovery.

    Scans the WAP logs left on a (re-mounted) lower file system, verifies
    the data digests of the last in-flight write per object, and reports
    exactly the data whose provenance is inconsistent — the data that was
    being written to disk at the time of the crash (paper, Section 5.6). *)

type inconsistency = {
  i_pnode : Pass_core.Pnode.t;
  i_ino : Vfs.ino option;
  i_off : int;
  i_len : int;
  reason : string;
}

type log_detail = {
  l_name : string;
  l_skipped : bool;  (** covered by the checkpoint watermark, not read *)
  l_frames : int;  (** well-formed frames scanned (0 when skipped) *)
}

type report = {
  logs_scanned : int;
  logs_skipped : int;
      (** logs wholly covered by a durable checkpoint, skipped unread *)
  watermark : int option;
      (** the checkpoint MANIFEST's watermark, when one exists *)
  frames_ok : int;
  torn_bytes : int;
  data_checked : int;
  inconsistent : inconsistency list;
  files : (Pass_core.Pnode.t * Vfs.ino * string) list;
  virtuals : Pass_core.Pnode.t list;
  open_txns : int list;
      (** PA-NFS transactions with a BEGINTXN but no ENDTXN in the logs:
          the orphans Waldo will discard at finalize. *)
  log_details : log_detail list;  (** per log, in sequence order *)
}

val scan :
  ?registry:Telemetry.registry ->
  ?waldo_dir:string ->
  Vfs.ops ->
  (report, Vfs.errno) result
(** [scan lower] performs recovery over the [.pass] logs on [lower] and
    publishes the outcome as [wap.recovery.*] counters into [registry]
    (default {!Telemetry.default}).  When a checkpoint MANIFEST exists
    under [waldo_dir] (default ["/.waldo"]) the scan is bounded: logs
    below its watermark are skipped unread, and transactions the
    checkpoint carried as in-flight seed the open-transaction tracking
    so an ENDTXN in the suffix still closes them.  Transient read
    errors are retried ([wap.recovery.io_retries]); silent corruption
    caught by a WAP data digest is reported in [inconsistent], never
    raised. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Telemetry.Json.t
(** The report as a telemetry JSON tree ([passctl recover --json]). *)
