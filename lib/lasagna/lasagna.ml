(* Lasagna (paper §5.6): the provenance-aware file system.

   Lasagna is a stackable layer: it presents Vfs.ops like any file system
   and implements the DPAPI in addition, passing plain file operations
   through to a lower file system (ext3sim locally, the PA-NFS client
   remotely).  Provenance is written to a log kept in a hidden `.pass`
   directory on the lower file system under the write-ahead-provenance
   (WAP) protocol: the provenance frame — including an MD5 of the data —
   always reaches the log before the data it describes reaches its file.
   When the active log exceeds a maximum size it is closed and a new one
   opened; registered listeners (Waldo's simulated inotify) are told about
   each closed log.

   Stacking cost: like eCryptfs, a stackable file system caches both its
   own pages and the lower file system's pages.  We charge a per-byte
   double-buffering cost on the data path; the paper identifies this as
   the dominant source of Postmark's overhead. *)

module Pnode = Pass_core.Pnode
module Ctx = Pass_core.Ctx
module Dpapi = Pass_core.Dpapi
module Record = Pass_core.Record

type stats = {
  mutable frames_logged : int;
  mutable prov_bytes_logged : int;
  mutable data_bytes : int;
  mutable rotations : int;
}

(* Registry-backed instruments; [stats] is a view built on demand.  The
   WAP log owns the [wap.*] names, the stacking data path [lasagna.*]. *)
type instruments = {
  frames_written : Telemetry.counter; (* wap.frames_written *)
  bytes_written : Telemetry.counter; (* wap.bytes_written *)
  rotations : Telemetry.counter; (* wap.rotations *)
  commits : Telemetry.counter; (* wap.group_commits *)
  data_bytes : Telemetry.counter; (* lasagna.data_bytes *)
  append_ns : Telemetry.histogram; (* wap.append_ns, simulated span *)
  io_retries : Telemetry.counter; (* lasagna.io_retries *)
  queue_depth : Telemetry.gauge; (* wap.queue_depth: frames pending commit *)
}

type t = {
  lower : Vfs.ops;
  ctx : Ctx.t;
  volume : string;
  charge : int -> unit;
  tracer : Pvtrace.t;
  log_max : int;
  idle_ns : int; (* dormancy threshold for closing the active log *)
  now : unit -> int; (* the machine clock, for dormancy *)
  mutable last_append_ns : int;
  pass_dir : Vfs.ino;
  mutable log_seq : int;
  mutable log_ino : Vfs.ino;
  mutable log_off : int;
  group_commit : bool;
  pending : Buffer.t; (* encoded frames queued for the next group commit *)
  mutable pending_frames : int;
  mutable listeners : (string -> Vfs.ino -> unit) list;
  by_pnode : (Pnode.t, Vfs.ino) Hashtbl.t;
  by_ino : (Vfs.ino, Pnode.t) Hashtbl.t;
  virtuals : (Pnode.t, unit) Hashtbl.t;
  described : (Pnode.t * int, int * int) Hashtbl.t;
      (* versions with a data-identity frame -> (off, len) of the last
         digested range; a later write overlapping it must re-digest or
         recovery would flag clean data *)
  i : instruments;
}

let pass_dirname = ".pass"
(* string concat, not sprintf: log rotation happens inside commit, which
   is on the record hot path (passarch hot-path-format). *)
let log_name seq = "log." ^ string_of_int seq

(* ~4 ns per byte: the extra page-cache copy a stackable FS performs. *)
let double_buffer_ns_per_byte = 1

(* WAP makes log writes part of the workload's own commit sweeps: each
   frame the kernel appends must reach the disk ahead of the data it
   describes, stealing elevator slots from the workload's metadata I/O
   ("provenance writes interfere with patch's metadata I/O, leading to
   extra seeks", paper §7).  Charged per frame. *)
let wap_interference_ns = 400_000

let ( let* ) = Result.bind

let errno_to_dpapi : Vfs.errno -> Dpapi.error = function
  | Vfs.ENOENT -> Dpapi.Enoent
  | Vfs.EEXIST -> Dpapi.Eexist
  | Vfs.EINVAL -> Dpapi.Einval
  | Vfs.ESTALE | Vfs.EBADF -> Dpapi.Estale
  | Vfs.ENOSPC -> Dpapi.Enospc
  | Vfs.ECRASH -> Dpapi.Ecrashed
  | Vfs.EAGAIN -> Dpapi.Eagain
  | Vfs.EIO | Vfs.ENOTDIR | Vfs.EISDIR | Vfs.ENOTEMPTY -> Dpapi.Eio

let lift r = Result.map_error errno_to_dpapi r

let stats t : stats =
  {
    frames_logged = Telemetry.value t.i.frames_written;
    prov_bytes_logged = Telemetry.value t.i.bytes_written;
    data_bytes = Telemetry.value t.i.data_bytes;
    rotations = Telemetry.value t.i.rotations;
  }
let volume t = t.volume

(* Transient disk errors (the fault plan's EIO kind) are retried a few
   times before surfacing; permanent EIO still escapes after the budget.
   WAP ordering is unaffected: a retried frame or data write lands whole
   or not at all at this layer. *)
let io_retry_budget = 4

let with_io_retry t f =
  let rec go n =
    match f () with
    | Error Vfs.EIO when n < io_retry_budget ->
        Telemetry.incr t.i.io_retries;
        go (n + 1)
    | r -> r
  in
  go 0

let fresh_log t =
  match
    with_io_retry t (fun () ->
        t.lower.create ~dir:t.pass_dir (log_name t.log_seq) Vfs.Regular)
  with
  | Ok ino ->
      t.log_ino <- ino;
      t.log_off <- 0
  | Error e -> Vfs.fatal "lasagna: cannot create log" e

let create ?registry ?(log_max = 1 lsl 20) ?(idle_ns = 5_000_000_000) ?(now = fun () -> 0)
    ?(tracer = Pvtrace.disabled) ?(group_commit = true) ~lower ~ctx ~volume ~charge () =
  let pass_dir =
    match Vfs.mkdir_p lower ("/" ^ pass_dirname) with
    | Ok ino -> ino
    | Error e -> Vfs.fatal "lasagna: cannot make .pass" e
  in
  (* Remount over retained logs: when Waldo runs under a checkpoint
     policy, processed logs stay on disk until a checkpoint covers them,
     so the active log's sequence number must resume past whatever
     log.<n> already exists (the old active log is left as-is and is
     replayed / covered like any closed log). *)
  let log_seq =
    match lower.Vfs.readdir pass_dir with
    | Error e -> Vfs.fatal "lasagna: cannot read .pass" e
    | Ok names ->
        List.fold_left
          (fun seq name ->
            match Checkpoint.log_seq name with
            | Some s when s + 1 > seq -> s + 1
            | _ -> seq)
          0 names
  in
  let t =
    {
      lower; ctx; volume; charge; tracer; log_max; idle_ns; now; last_append_ns = 0; pass_dir;
      log_seq; log_ino = -1; log_off = 0; group_commit;
      pending = Buffer.create 1024; pending_frames = 0; listeners = [];
      by_pnode = Hashtbl.create 1024;
      by_ino = Hashtbl.create 1024;
      virtuals = Hashtbl.create 256;
      described = Hashtbl.create 1024;
      i =
        {
          frames_written = Telemetry.counter ?registry "wap.frames_written";
          bytes_written = Telemetry.counter ?registry "wap.bytes_written";
          rotations = Telemetry.counter ?registry "wap.rotations";
          commits = Telemetry.counter ?registry "wap.group_commits";
          data_bytes = Telemetry.counter ?registry "lasagna.data_bytes";
          append_ns = Telemetry.histogram ?registry "wap.append_ns";
          io_retries = Telemetry.counter ?registry "lasagna.io_retries";
          queue_depth = Telemetry.gauge ?registry "wap.queue_depth";
        };
    }
  in
  fresh_log t;
  t

let on_log_closed t f = t.listeners <- f :: t.listeners

let rotate_log t =
  let closed = log_name t.log_seq in
  let closed_ino = t.log_ino in
  t.log_seq <- t.log_seq + 1;
  Telemetry.incr t.i.rotations;
  Pvtrace.event t.tracer ~layer:"lasagna" ~op:"log_rotate" ~outcome:"flushed" ();
  fresh_log t;
  List.iter (fun f -> f closed closed_ino) t.listeners

(* Group commit: frames queue in [t.pending] and reach the lower file
   system in one write at the next barrier — a data write they must
   precede (WAP), an fsync/sync, rotation, or drain.  The log's byte
   stream is byte-identical to frame-at-a-time appends, so Waldo,
   recovery and pvcheck see the same log either way; the elevator
   interference is charged once per commit instead of once per frame. *)
let commit t =
  if Buffer.length t.pending = 0 then Ok ()
  else begin
    let encoded = Buffer.contents t.pending in
    let frames = t.pending_frames in
    Buffer.clear t.pending;
    t.pending_frames <- 0;
    Telemetry.set t.i.queue_depth 0.;
    t.charge wap_interference_ns;
    match with_io_retry t (fun () -> t.lower.write t.log_ino ~off:t.log_off encoded) with
    | Error _ as e ->
        (* the queued tail dies with the failed log write — the same state
           a crash at this instant leaves on disk.  The op that forced the
           barrier sees the error; replaying the frames later would log
           provenance for operations that were reported failed. *)
        e
    | Ok () ->
        t.log_off <- t.log_off + String.length encoded;
        Telemetry.incr t.i.commits;
        Pvtrace.event t.tracer ~layer:"lasagna" ~op:"group_commit"
          ~outcome:(string_of_int frames) ();
        if t.log_off >= t.log_max then rotate_log t;
        Ok ()
  end

(* Force-close the current log so Waldo can drain everything (used at
   "unmount" time and by benchmarks before reading the database). *)
let flush_log t =
  (match commit t with Ok () -> () | Error _ -> (* tail dropped by commit *) ());
  if t.log_off > 0 then rotate_log t

let append_frame t frame =
  Telemetry.with_span t.i.append_ns ~now:t.now @@ fun () ->
  (* dormancy rotation (paper §5.6): if the log has been idle past the
     threshold, close it so Waldo can process it without waiting for the
     size limit *)
  let now = t.now () in
  let* () =
    if (t.log_off > 0 || Buffer.length t.pending > 0) && now - t.last_append_ns > t.idle_ns
    then begin
      let* () = commit t in
      if t.log_off > 0 then rotate_log t;
      Ok ()
    end
    else Ok ()
  in
  t.last_append_ns <- now;
  let before = Buffer.length t.pending in
  Wap_log.encode_frame_into t.pending frame;
  t.pending_frames <- t.pending_frames + 1;
  Telemetry.set t.i.queue_depth (float_of_int t.pending_frames);
  Telemetry.incr t.i.frames_written;
  Telemetry.add t.i.bytes_written (Buffer.length t.pending - before);
  if (not t.group_commit) || t.log_off + Buffer.length t.pending >= t.log_max then commit t
  else Ok ()

(* Make sure storage knows the pnode: files get a Map frame at create time;
   any other pnode that reaches us (a process being anchored, an application
   object) gets an implicit Mkobj frame. *)
let ensure_known t pnode =
  if Hashtbl.mem t.by_pnode pnode || Hashtbl.mem t.virtuals pnode then Ok ()
  else begin
    Hashtbl.replace t.virtuals pnode ();
    append_frame t (Wap_log.Mkobj { pnode })
  end

let register_file t ~ino ~name =
  let pnode = Ctx.fresh t.ctx in
  Hashtbl.replace t.by_pnode pnode ino;
  Hashtbl.replace t.by_ino ino pnode;
  let* () = append_frame t (Wap_log.Map { pnode; ino; name }) in
  Ok pnode

let pnode_of_ino t ino =
  match Hashtbl.find_opt t.by_ino ino with
  | Some p -> Ok p
  | None -> (
      (* file created below us (or before stacking): adopt it lazily *)
      match register_file t ~ino ~name:"" with Ok p -> Ok p | Error e -> Error e)

let ino_of_pnode t pnode = Hashtbl.find_opt t.by_pnode pnode

let file_handle t ino =
  match pnode_of_ino t ino with
  | Ok pnode -> Ok (Dpapi.handle ~volume:t.volume pnode)
  | Error e -> Error e

(* --- DPAPI face ---------------------------------------------------------- *)

let pass_read t (h : Dpapi.handle) ~off ~len =
  match ino_of_pnode t h.pnode with
  | None ->
      if Hashtbl.mem t.virtuals h.pnode then
        Ok { Dpapi.data = ""; r_pnode = h.pnode; r_version = Ctx.current_version t.ctx h.pnode }
      else Error Dpapi.Enoent
  | Some ino ->
      let* data = lift (with_io_retry t (fun () -> t.lower.read ino ~off ~len)) in
      t.charge (String.length data * double_buffer_ns_per_byte);
      Telemetry.add t.i.data_bytes (String.length data);
      Ok { Dpapi.data; r_pnode = h.pnode; r_version = Ctx.current_version t.ctx h.pnode }

let log_bundle ?txn t (h : Dpapi.handle) ~off ~data bundle =
  let rec ensure_all = function
    | [] -> Ok ()
    | (e : Dpapi.bundle_entry) :: rest ->
        let* () = lift (ensure_known t e.target.pnode) in
        ensure_all rest
  in
  let* () = ensure_all bundle in
  (* A data-identity (MD5) frame is required the first time data lands in
     a version; subsequent chunks of the same version carry no new
     provenance and need no frame — WAP already holds for them because
     the version's provenance is on disk. *)
  let version = Ctx.current_version t.ctx h.pnode in
  let needs_data_frame =
    match data with
    | None -> false
    | Some d -> (
        bundle <> []
        ||
        match Hashtbl.find_opt t.described (h.pnode, version) with
        | None -> true
        | Some (o, l) ->
            (* re-digest if the new write overlaps the digested range *)
            off < o + l && o < off + String.length d)
  in
  if bundle = [] && not needs_data_frame then Ok ()
  else begin
    let data_id =
      match data with
      | Some d when needs_data_frame ->
          Hashtbl.replace t.described (h.pnode, version) (off, String.length d);
          Some
            { Wap_log.d_pnode = h.pnode; d_off = off; d_len = String.length d;
              d_md5 = Wap_log.md5 d }
      | Some _ | None -> None
    in
    lift (append_frame t (Wap_log.Bundle { txn; bundle; data = data_id }))
  end

let pass_write ?txn t (h : Dpapi.handle) ~off ~data bundle =
  (* WAP: provenance first … *)
  let* () = log_bundle ?txn t h ~off ~data bundle in
  (* … then the data it describes. *)
  let* () =
    match (data, ino_of_pnode t h.pnode) with
    | Some d, Some ino ->
        (* WAP barrier: queued frames must be durable before the data *)
        let* () = lift (commit t) in
        t.charge (String.length d * double_buffer_ns_per_byte);
        Telemetry.add t.i.data_bytes (String.length d);
        lift (with_io_retry t (fun () -> t.lower.write ino ~off d))
    | Some _, None ->
        (* data aimed at a virtual object has no backing store *)
        lift (ensure_known t h.pnode)
    | None, _ -> Ok ()
  in
  Ok (Ctx.current_version t.ctx h.pnode)

let pass_freeze t (h : Dpapi.handle) =
  let old_version = Ctx.current_version t.ctx h.pnode in
  let version = Ctx.freeze t.ctx h.pnode in
  let records =
    [ Record.make Record.Attr.freeze (Pass_core.Pvalue.Int version);
      Record.input_of h.pnode old_version ]
  in
  let* () = log_bundle t h ~off:0 ~data:None [ Dpapi.entry h records ] in
  Ok version

let pass_mkobj t =
  let pnode = Ctx.fresh t.ctx in
  Hashtbl.replace t.virtuals pnode ();
  let* () = lift (append_frame t (Wap_log.Mkobj { pnode })) in
  Ok (Dpapi.handle ~volume:t.volume pnode)

let pass_reviveobj t pnode version =
  let known = Hashtbl.mem t.virtuals pnode || Hashtbl.mem t.by_pnode pnode in
  if not known then Error Dpapi.Enoent
  else if version > Ctx.current_version t.ctx pnode then Error Dpapi.Estale
  else Ok (Dpapi.handle ~volume:t.volume pnode)

let pass_sync t (_h : Dpapi.handle) =
  let* () = lift (commit t) in
  lift (t.lower.fsync t.log_ino)

let endpoint t : Dpapi.endpoint =
  {
    pass_read = (fun h ~off ~len -> pass_read t h ~off ~len);
    pass_write = (fun h ~off ~data b -> pass_write t h ~off ~data b);
    pass_freeze = (fun h -> pass_freeze t h);
    pass_mkobj = (fun ~volume:_ -> pass_mkobj t);
    pass_reviveobj = (fun p v -> pass_reviveobj t p v);
    pass_sync = (fun h -> pass_sync t h);
  }

let write_txn_bundle = pass_write (* exposed with [?txn] for the NFS server *)

(* Exposed commit barrier: the NFS server flushes queued frames before a
   reply leaves, since an acked request's provenance must be durable. *)
let commit_log = commit

(* --- VFS face ------------------------------------------------------------ *)

let ops t : Vfs.ops =
  let lower = t.lower in
  {
    root = lower.root;
    lookup =
      (fun ~dir name ->
        if dir = lower.root () && String.equal name pass_dirname then Error Vfs.ENOENT
        else lower.lookup ~dir name);
    create =
      (fun ~dir name kind ->
        if String.equal name pass_dirname then Error Vfs.EINVAL
        else
          let* ino = lower.create ~dir name kind in
          (if kind = Vfs.Regular then
             match register_file t ~ino ~name with Ok _ -> () | Error _ -> ());
          Ok ino);
    unlink =
      (fun ~dir name ->
        let* () = lower.unlink ~dir name in
        Ok ());
    rename =
      (fun ~src_dir ~src_name ~dst_dir ~dst_name ->
        (* provenance travels with the inode: the pnode map is keyed by ino,
           so a renamed file keeps its provenance (paper §3.2) *)
        lower.rename ~src_dir ~src_name ~dst_dir ~dst_name);
    read =
      (fun ino ~off ~len ->
        let* data = with_io_retry t (fun () -> lower.read ino ~off ~len) in
        t.charge (String.length data * double_buffer_ns_per_byte);
        Ok data);
    write =
      (fun ino ~off data ->
        (* data may outrun queued provenance only if the frames land
           first: the same WAP barrier as the DPAPI write path *)
        let* () = commit t in
        t.charge (String.length data * double_buffer_ns_per_byte);
        with_io_retry t (fun () -> lower.write ino ~off data));
    truncate =
      (fun ino len ->
        let* () = commit t in
        lower.truncate ino len);
    getattr = lower.getattr;
    readdir =
      (fun ino ->
        let* names = lower.readdir ino in
        Ok (List.filter (fun n -> not (String.equal n pass_dirname)) names));
    fsync =
      (fun ino ->
        let* () = commit t in
        lower.fsync ino);
    sync =
      (fun () ->
        let* () = commit t in
        lower.sync ());
  }
