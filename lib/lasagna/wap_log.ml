(* The write-ahead-provenance (WAP) log format (paper §5.6).

   Lasagna writes all provenance to a log; a user-level daemon (Waldo)
   later moves it into a database.  WAP is analogous to database
   write-ahead logging: all provenance records reach the disk before the
   data they describe, so unprovenanced data can never exist on disk.
   Each data-carrying frame embeds an MD5 of the data, letting recovery
   identify precisely the data that was in flight at the time of a crash.

   Frame = magic, payload length, checksum, payload.  Payload kinds:
   - Map: binds a file pnode to its inode in the lower file system
   - Mkobj: announces a virtual (non-file) object on this volume
   - Bundle: a DPAPI bundle, optionally with data identity (pnode, off,
     len, md5) when the pass_write carried data, and optionally a
     transaction id when it came in via PA-NFS transactions. *)

type data_id = { d_pnode : Pass_core.Pnode.t; d_off : int; d_len : int; d_md5 : string }

type frame =
  | Map of { pnode : Pass_core.Pnode.t; ino : Vfs.ino; name : string }
  | Mkobj of { pnode : Pass_core.Pnode.t }
  | Bundle of { txn : int option; bundle : Pass_core.Dpapi.bundle; data : data_id option }

let magic = 0x57415001 (* "WAP." *)

let checksum payload =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 33) + Char.code c) land 0x3fffffff) payload;
  !h

let put_pnode buf p = Wire.put_i64 buf (Pass_core.Pnode.to_int p)
let get_pnode s pos = Pass_core.Pnode.of_int (Wire.get_i64 s pos)

(* Checksum a buffer in place so encoding never materializes the payload
   as an intermediate string. *)
let checksum_buf buf =
  let h = ref 5381 in
  for i = 0 to Buffer.length buf - 1 do
    h := ((!h * 33) + Char.code (Buffer.nth buf i)) land 0x3fffffff
  done;
  !h

(* Payload scratch shared by every encode: the encoders below never call
   back into [encode_frame_into], so one module-level buffer is safe. *)
let payload_scratch = Buffer.create 256

let encode_frame_into out fr =
  let buf = payload_scratch in
  Buffer.clear buf;
  (match fr with
  | Map { pnode; ino; name } ->
      Wire.put_u8 buf 1;
      put_pnode buf pnode;
      Wire.put_i64 buf ino;
      Wire.put_string buf name
  | Mkobj { pnode } ->
      Wire.put_u8 buf 2;
      put_pnode buf pnode
  | Bundle { txn; bundle; data } ->
      Wire.put_u8 buf 3;
      (match txn with
      | None -> Wire.put_u8 buf 0
      | Some id ->
          Wire.put_u8 buf 1;
          Wire.put_i64 buf id);
      Pass_core.Dpapi.encode_bundle buf bundle;
      (match data with
      | None -> Wire.put_u8 buf 0
      | Some { d_pnode; d_off; d_len; d_md5 } ->
          Wire.put_u8 buf 1;
          put_pnode buf d_pnode;
          Wire.put_i64 buf d_off;
          Wire.put_i64 buf d_len;
          Wire.put_string buf d_md5));
  Wire.put_u32 out magic;
  Wire.put_u32 out (Buffer.length buf);
  Wire.put_u32 out (checksum_buf buf);
  Buffer.add_buffer out buf

let encode_frame fr =
  let out = Buffer.create 128 in
  encode_frame_into out fr;
  Buffer.contents out

let decode_payload payload =
  let pos = ref 0 in
  match Wire.get_u8 payload pos with
  | 1 ->
      let pnode = get_pnode payload pos in
      let ino = Wire.get_i64 payload pos in
      let name = Wire.get_string payload pos in
      Map { pnode; ino; name }
  | 2 -> Mkobj { pnode = get_pnode payload pos }
  | 3 ->
      let txn = if Wire.get_u8 payload pos = 1 then Some (Wire.get_i64 payload pos) else None in
      let bundle = Pass_core.Dpapi.decode_bundle payload pos in
      let data =
        if Wire.get_u8 payload pos = 1 then begin
          let d_pnode = get_pnode payload pos in
          let d_off = Wire.get_i64 payload pos in
          let d_len = Wire.get_i64 payload pos in
          let d_md5 = Wire.get_string payload pos in
          Some { d_pnode; d_off; d_len; d_md5 }
        end
        else None
      in
      Bundle { txn; bundle; data }
  | n -> Wire.corrupt "WAP log: bad frame tag %d" n

(* Parse a whole log image, stopping cleanly at the first torn or
   unwritten frame (which is what a crash leaves behind).  Returns the
   frames read and the number of bytes consumed. *)
let parse_log image =
  let frames = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  let len = String.length image in
  while !ok && !pos + 12 <= len do
    let hp = ref !pos in
    let m = Wire.get_u32 image hp in
    if m <> magic then ok := false
    else begin
      let plen = Wire.get_u32 image hp in
      let sum = Wire.get_u32 image hp in
      if !pos + 12 + plen > len then ok := false
      else begin
        let payload = String.sub image (!pos + 12) plen in
        if checksum payload <> sum then ok := false
        else begin
          (match decode_payload payload with
          | f -> frames := f :: !frames
          | exception Wire.Corrupt _ -> ok := false);
          if !ok then pos := !pos + 12 + plen
        end
      end
    end
  done;
  (List.rev !frames, !pos)

let md5 data = Digest.string data
