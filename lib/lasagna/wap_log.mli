(** The write-ahead-provenance (WAP) log format.

    All provenance records reach the disk before the data they describe
    (paper, Section 5.6).  Frames are checksummed so recovery stops
    cleanly at the first torn frame after a crash, and data-carrying
    frames embed an MD5 of the data so recovery can identify exactly the
    data that was in flight. *)

type data_id = { d_pnode : Pass_core.Pnode.t; d_off : int; d_len : int; d_md5 : string }

type frame =
  | Map of { pnode : Pass_core.Pnode.t; ino : Vfs.ino; name : string }
      (** binds a file's pnode to its lower-layer inode *)
  | Mkobj of { pnode : Pass_core.Pnode.t }
      (** announces a virtual object assigned to this volume *)
  | Bundle of { txn : int option; bundle : Pass_core.Dpapi.bundle; data : data_id option }
      (** a DPAPI bundle; [data] identifies the write it describes;
          [txn] is set when it arrived inside a PA-NFS transaction *)

val encode_frame : frame -> string

val encode_frame_into : Buffer.t -> frame -> unit
(** [encode_frame_into out fr] appends the encoding of [fr] to [out]
    without allocating intermediate buffers — the hot path behind
    Lasagna's group commit. *)

val parse_log : string -> frame list * int
(** [parse_log image] returns the well-formed frame prefix of [image] and
    the number of bytes it occupies. *)

val md5 : string -> string
(** Digest used in {!data_id}. *)
