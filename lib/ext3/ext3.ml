(* ext3sim: a journaling file system over Simdisk, standing in for the
   paper's ext3-in-ordered-mode baseline.

   Layout: block 0 is the superblock, blocks [jstart, jstart+jblocks) hold
   the journal, and the data region follows.  Metadata lives in the journal
   in log-structured form: every namespace or mapping change appends a
   frame; mounting replays the journal to rebuild the in-memory tables.
   Ordered mode is honoured the way ext3 does it: file data is written to
   its home location *before* the metadata frame that makes it reachable,
   so replay never exposes metadata whose data is missing.

   The journal compacts into a snapshot frame when it nears the region
   end.  Seek traffic between the data region and the journal region is
   charged by the disk model — this is the baseline's own version of the
   interference that the Lasagna provenance log adds on top. *)

type inode = {
  ino : Vfs.ino;
  kind : Vfs.kind;
  mutable size : int;
  mutable blocks : (int, int) Hashtbl.t; (* logical block -> physical block *)
  mutable dirents : (string, Vfs.ino) Hashtbl.t; (* directories only *)
  mutable reservation : (int * int) option; (* next free, limit: per-file
     block reservation so each file's extents stay contiguous, like the
     ext3 reservation-window allocator *)
}

type t = {
  disk : Simdisk.Disk.t;
  jstart : int; (* first journal block *)
  jblocks : int;
  dstart : int; (* first data block *)
  inodes : (Vfs.ino, inode) Hashtbl.t;
  mutable next_ino : Vfs.ino;
  mutable next_free_block : int;
  mutable journal_tail : int; (* byte offset within the journal region *)
  mutable data_blocks_allocated : int;
  mutable journal_bytes_written : int;
  mutable metadata_ops : int;
  (* The page cache: file blocks kept in memory, FIFO-evicted.  A
     stackable layer (Lasagna) halves the capacity — both its pages and
     the lower file system's pages compete for memory, which the paper
     identifies as the dominant Postmark cost. *)
  page_cache : (Vfs.ino * int, string) Hashtbl.t;
  cache_fifo : (Vfs.ino * int) Queue.t; (* insertion order for FIFO eviction *)
  mutable cache_capacity : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let root_ino = 1
let frame_magic = 0x4A453301 (* "JE3." *)

(* --- journal frames ------------------------------------------------------ *)

type jrec =
  | J_create of { dir : Vfs.ino; name : string; ino : Vfs.ino; kind : Vfs.kind }
  | J_unlink of { dir : Vfs.ino; name : string }
  | J_rename of { src_dir : Vfs.ino; src_name : string; dst_dir : Vfs.ino; dst_name : string }
  | J_extent of { ino : Vfs.ino; logical : int; physical : int; count : int }
  | J_size of { ino : Vfs.ino; size : int }
  | J_snapshot of string (* serialized full state *)

let put_kind buf = function Vfs.Regular -> Wire.put_u8 buf 0 | Vfs.Directory -> Wire.put_u8 buf 1
let get_kind s pos = if Wire.get_u8 s pos = 0 then Vfs.Regular else Vfs.Directory

let encode_jrec buf = function
  | J_create { dir; name; ino; kind } ->
      Wire.put_u8 buf 1; Wire.put_i64 buf dir; Wire.put_string buf name;
      Wire.put_i64 buf ino; put_kind buf kind
  | J_unlink { dir; name } ->
      Wire.put_u8 buf 2; Wire.put_i64 buf dir; Wire.put_string buf name
  | J_rename { src_dir; src_name; dst_dir; dst_name } ->
      Wire.put_u8 buf 3; Wire.put_i64 buf src_dir; Wire.put_string buf src_name;
      Wire.put_i64 buf dst_dir; Wire.put_string buf dst_name
  | J_extent { ino; logical; physical; count } ->
      Wire.put_u8 buf 4; Wire.put_i64 buf ino; Wire.put_i64 buf logical;
      Wire.put_i64 buf physical; Wire.put_i64 buf count
  | J_size { ino; size } ->
      Wire.put_u8 buf 5; Wire.put_i64 buf ino; Wire.put_i64 buf size
  | J_snapshot payload ->
      Wire.put_u8 buf 7; Wire.put_string buf payload

let decode_jrec s pos =
  match Wire.get_u8 s pos with
  | 1 ->
      let dir = Wire.get_i64 s pos in
      let name = Wire.get_string s pos in
      let ino = Wire.get_i64 s pos in
      let kind = get_kind s pos in
      J_create { dir; name; ino; kind }
  | 2 ->
      let dir = Wire.get_i64 s pos in
      let name = Wire.get_string s pos in
      J_unlink { dir; name }
  | 3 ->
      let src_dir = Wire.get_i64 s pos in
      let src_name = Wire.get_string s pos in
      let dst_dir = Wire.get_i64 s pos in
      let dst_name = Wire.get_string s pos in
      J_rename { src_dir; src_name; dst_dir; dst_name }
  | 4 ->
      let ino = Wire.get_i64 s pos in
      let logical = Wire.get_i64 s pos in
      let physical = Wire.get_i64 s pos in
      let count = Wire.get_i64 s pos in
      J_extent { ino; logical; physical; count }
  | 5 ->
      let ino = Wire.get_i64 s pos in
      let size = Wire.get_i64 s pos in
      J_size { ino; size }
  | 7 -> J_snapshot (Wire.get_string s pos)
  | n -> Wire.corrupt "ext3 journal: bad record tag %d" n

(* A weak but adequate frame checksum: detects torn frames after a crash. *)
let checksum payload =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3fffffff) payload;
  !h

(* --- in-memory state helpers -------------------------------------------- *)

let new_inode ino kind =
  { ino; kind; size = 0; blocks = Hashtbl.create 8; dirents = Hashtbl.create 8;
    reservation = None }

let apply t = function
  | J_create { dir; name; ino; kind } ->
      Hashtbl.replace t.inodes ino (new_inode ino kind);
      (match Hashtbl.find_opt t.inodes dir with
      | Some d -> Hashtbl.replace d.dirents name ino
      | None -> ());
      if ino >= t.next_ino then t.next_ino <- ino + 1
  | J_unlink { dir; name } -> (
      match Hashtbl.find_opt t.inodes dir with
      | Some d ->
          (match Hashtbl.find_opt d.dirents name with
          | Some ino -> Hashtbl.remove t.inodes ino
          | None -> ());
          Hashtbl.remove d.dirents name
      | None -> ())
  | J_rename { src_dir; src_name; dst_dir; dst_name } -> (
      if src_dir = dst_dir && String.equal src_name dst_name then ()
      else
        match (Hashtbl.find_opt t.inodes src_dir, Hashtbl.find_opt t.inodes dst_dir) with
        | Some sd, Some dd -> (
            match Hashtbl.find_opt sd.dirents src_name with
            | Some ino ->
                (match Hashtbl.find_opt dd.dirents dst_name with
                | Some victim when victim <> ino -> Hashtbl.remove t.inodes victim
                | Some _ | None -> ());
                Hashtbl.remove sd.dirents src_name;
                Hashtbl.replace dd.dirents dst_name ino
            | None -> ())
        | _ -> ())
  | J_extent { ino; logical; physical; count } -> (
      match Hashtbl.find_opt t.inodes ino with
      | Some i ->
          for k = 0 to count - 1 do
            Hashtbl.replace i.blocks (logical + k) (physical + k)
          done;
          if physical + count > t.next_free_block then t.next_free_block <- physical + count
      | None -> ())
  | J_size { ino; size } -> (
      match Hashtbl.find_opt t.inodes ino with
      | Some i -> i.size <- size
      | None -> ())
  | J_snapshot _ -> () (* handled by the replay loop *)

(* --- snapshots ----------------------------------------------------------- *)

let encode_snapshot t =
  let buf = Buffer.create 4096 in
  Wire.put_i64 buf t.next_ino;
  Wire.put_i64 buf t.next_free_block;
  Wire.put_u32 buf (Hashtbl.length t.inodes);
  Hashtbl.iter
    (fun _ (i : inode) ->
      Wire.put_i64 buf i.ino;
      put_kind buf i.kind;
      Wire.put_i64 buf i.size;
      Wire.put_u32 buf (Hashtbl.length i.blocks);
      Hashtbl.iter (fun l p -> Wire.put_i64 buf l; Wire.put_i64 buf p) i.blocks;
      Wire.put_u32 buf (Hashtbl.length i.dirents);
      Hashtbl.iter (fun n ino -> Wire.put_string buf n; Wire.put_i64 buf ino) i.dirents)
    t.inodes;
  Buffer.contents buf

let load_snapshot t payload =
  Hashtbl.reset t.inodes;
  let pos = ref 0 in
  t.next_ino <- Wire.get_i64 payload pos;
  t.next_free_block <- Wire.get_i64 payload pos;
  let n = Wire.get_u32 payload pos in
  for _ = 1 to n do
    let ino = Wire.get_i64 payload pos in
    let kind = get_kind payload pos in
    let size = Wire.get_i64 payload pos in
    let i = new_inode ino kind in
    i.size <- size;
    let nb = Wire.get_u32 payload pos in
    for _ = 1 to nb do
      let l = Wire.get_i64 payload pos in
      let p = Wire.get_i64 payload pos in
      Hashtbl.replace i.blocks l p
    done;
    let nd = Wire.get_u32 payload pos in
    for _ = 1 to nd do
      let nm = Wire.get_string payload pos in
      let child = Wire.get_i64 payload pos in
      Hashtbl.replace i.dirents nm child
    done;
    Hashtbl.replace t.inodes ino i
  done

(* --- journal I/O --------------------------------------------------------- *)

let journal_capacity t = t.jblocks * Simdisk.Disk.block_size

let rec journal_append t rec_ =
  let payload =
    let buf = Buffer.create 64 in
    encode_jrec buf rec_;
    Buffer.contents buf
  in
  let frame =
    let buf = Buffer.create (String.length payload + 12) in
    Wire.put_u32 buf frame_magic;
    Wire.put_u32 buf (String.length payload);
    Wire.put_u32 buf (checksum payload);
    Buffer.add_string buf payload;
    Buffer.contents buf
  in
  if t.journal_tail + String.length frame + 12 > journal_capacity t then begin
    compact_journal t;
    journal_append t rec_
  end
  else begin
    let off = (t.jstart * Simdisk.Disk.block_size) + t.journal_tail in
    Simdisk.Disk.write_bytes t.disk ~off frame;
    t.journal_tail <- t.journal_tail + String.length frame;
    t.journal_bytes_written <- t.journal_bytes_written + String.length frame
  end

and compact_journal t =
  let snap = J_snapshot (encode_snapshot t) in
  t.journal_tail <- 0;
  journal_append t snap

let log_op t rec_ =
  t.metadata_ops <- t.metadata_ops + 1;
  apply t rec_;
  journal_append t rec_

(* --- mount / format ------------------------------------------------------ *)

let default_jblocks = 16384 (* 64 MB journal *)

let make ?(jblocks = default_jblocks) disk =
  {
    disk;
    jstart = 8;
    jblocks;
    dstart = 8 + default_jblocks;
    inodes = Hashtbl.create 1024;
    next_ino = root_ino + 1;
    next_free_block = 8 + default_jblocks;
    journal_tail = 0;
    data_blocks_allocated = 0;
    journal_bytes_written = 0;
    metadata_ops = 0;
    page_cache = Hashtbl.create 4096;
    cache_fifo = Queue.create ();
    cache_capacity = 4096; (* 16 MB of 4 KB pages *)
    cache_hits = 0;
    cache_misses = 0;
  }

let set_cache_capacity t blocks =
  t.cache_capacity <- max 0 blocks;
  Hashtbl.reset t.page_cache;
  Queue.clear t.cache_fifo

let cache_stats t = (t.cache_hits, t.cache_misses)

let cache_insert t key data =
  if t.cache_capacity > 0 then begin
    if not (Hashtbl.mem t.page_cache key) then begin
      Queue.push key t.cache_fifo;
      (* FIFO eviction; stale queue entries (already evicted keys) are
         skipped naturally because removal is idempotent *)
      while Hashtbl.length t.page_cache >= t.cache_capacity && not (Queue.is_empty t.cache_fifo) do
        Hashtbl.remove t.page_cache (Queue.pop t.cache_fifo)
      done
    end;
    Hashtbl.replace t.page_cache key data
  end

let format ?jblocks disk =
  let t = make ?jblocks disk in
  Hashtbl.replace t.inodes root_ino (new_inode root_ino Vfs.Directory);
  (* a zeroed journal head marks an empty journal *)
  Simdisk.Disk.write_bytes disk ~off:(t.jstart * Simdisk.Disk.block_size) (String.make 16 '\000');
  t

let mount ?jblocks disk =
  let t = make ?jblocks disk in
  Hashtbl.replace t.inodes root_ino (new_inode root_ino Vfs.Directory);
  (* replay *)
  let region_off = t.jstart * Simdisk.Disk.block_size in
  let pos = ref 0 in
  (try
     let continue = ref true in
     while !continue do
       let header = Simdisk.Disk.read_bytes disk ~off:(region_off + !pos) ~len:12 in
       let hp = ref 0 in
       let magic = Wire.get_u32 header hp in
       if magic <> frame_magic then continue := false
       else begin
         let len = Wire.get_u32 header hp in
         let sum = Wire.get_u32 header hp in
         if !pos + 12 + len > journal_capacity t then continue := false
         else begin
           let payload = Simdisk.Disk.read_bytes disk ~off:(region_off + !pos + 12) ~len in
           if checksum payload <> sum then continue := false
           else begin
             (match decode_jrec payload (ref 0) with
             | J_snapshot s -> load_snapshot t s
             | r -> apply t r);
             pos := !pos + 12 + len
           end
         end
       end
     done
   with Wire.Corrupt _ | Invalid_argument _ -> ());
  t.journal_tail <- !pos;
  (* recompute allocation stats *)
  Hashtbl.iter
    (fun _ i -> t.data_blocks_allocated <- t.data_blocks_allocated + Hashtbl.length i.blocks)
    t.inodes;
  t

(* --- VFS operations ------------------------------------------------------ *)

let ( let* ) = Result.bind

let get_inode t ino =
  match Hashtbl.find_opt t.inodes ino with Some i -> Ok i | None -> Error Vfs.ESTALE

let get_dir t ino =
  let* i = get_inode t ino in
  if i.kind <> Vfs.Directory then Error Vfs.ENOTDIR else Ok i

let guard _t f =
  try f () with
  | Simdisk.Disk.Crashed -> Error Vfs.ECRASH
  | Simdisk.Disk.Io_error -> Error Vfs.EIO

let lookup t ~dir name =
  guard t (fun () ->
      let* d = get_dir t dir in
      match Hashtbl.find_opt d.dirents name with
      | Some ino -> Ok ino
      | None -> Error Vfs.ENOENT)

let create t ~dir name kind =
  guard t (fun () ->
      let* d = get_dir t dir in
      if Hashtbl.mem d.dirents name then Error Vfs.EEXIST
      else begin
        let ino = t.next_ino in
        t.next_ino <- ino + 1;
        log_op t (J_create { dir; name; ino; kind });
        Ok ino
      end)

let unlink t ~dir name =
  guard t (fun () ->
      let* d = get_dir t dir in
      match Hashtbl.find_opt d.dirents name with
      | None -> Error Vfs.ENOENT
      | Some ino ->
          let* i = get_inode t ino in
          if i.kind = Vfs.Directory && Hashtbl.length i.dirents > 0 then Error Vfs.ENOTEMPTY
          else begin
            log_op t (J_unlink { dir; name });
            Ok ()
          end)

let rename t ~src_dir ~src_name ~dst_dir ~dst_name =
  guard t (fun () ->
      let* sd = get_dir t src_dir in
      let* _dd = get_dir t dst_dir in
      if not (Hashtbl.mem sd.dirents src_name) then Error Vfs.ENOENT
      else begin
        log_op t (J_rename { src_dir; src_name; dst_dir; dst_name });
        Ok ()
      end)

let reservation_window = 256

(* Allocate physical blocks so that logical blocks [first, last] are all
   mapped, journalling one extent per contiguous run.  Allocation draws
   from the file's reservation window so each file's blocks stay
   contiguous even when several files (or the provenance log) grow in an
   interleaved fashion. *)
let ensure_blocks t (i : inode) ~first ~last =
  let alloc count =
    match i.reservation with
    | Some (next, limit) when next + count <= limit ->
        i.reservation <- Some (next + count, limit);
        next
    | _ ->
        let want = max count reservation_window in
        let start = t.next_free_block in
        t.next_free_block <- start + want;
        i.reservation <- Some (start + count, start + want);
        start
  in
  let run_start = ref None in
  let flush_run upto =
    match !run_start with
    | None -> ()
    | Some s ->
        let count = upto - s + 1 in
        let physical = alloc count in
        t.data_blocks_allocated <- t.data_blocks_allocated + count;
        log_op t (J_extent { ino = i.ino; logical = s; physical; count });
        run_start := None
  in
  for l = first to last do
    if Hashtbl.mem i.blocks l then flush_run (l - 1)
    else if !run_start = None then run_start := Some l
  done;
  flush_run last

let write t ino ~off data =
  guard t (fun () ->
      let* i = get_inode t ino in
      if i.kind = Vfs.Directory then Error Vfs.EISDIR
      else begin
        let len = String.length data in
        if len > 0 then begin
          let first = off / Simdisk.Disk.block_size and last = (off + len - 1) / Simdisk.Disk.block_size in
          ensure_blocks t i ~first ~last;
          (* ordered mode: write the data to its home before any size frame *)
          let pos = ref 0 in
          while !pos < len do
            let abs = off + !pos in
            let l = abs / Simdisk.Disk.block_size and inblk = abs mod Simdisk.Disk.block_size in
            let n = min (Simdisk.Disk.block_size - inblk) (len - !pos) in
            let phys = Hashtbl.find i.blocks l in
            Simdisk.Disk.write_bytes t.disk
              ~off:((phys * Simdisk.Disk.block_size) + inblk)
              (String.sub data !pos n);
            (* write-through: keep the page cache coherent *)
            (match Hashtbl.find_opt t.page_cache (ino, l) with
            | Some page ->
                let b = Bytes.of_string page in
                Bytes.blit_string data !pos b inblk n;
                Hashtbl.replace t.page_cache (ino, l) (Bytes.unsafe_to_string b)
            | None ->
                if inblk = 0 && n = Simdisk.Disk.block_size then
                  cache_insert t (ino, l) (String.sub data !pos n));
            pos := !pos + n
          done
        end;
        if off + len > i.size then log_op t (J_size { ino; size = off + len });
        Ok ()
      end)

let read t ino ~off ~len =
  guard t (fun () ->
      let* i = get_inode t ino in
      if i.kind = Vfs.Directory then Error Vfs.EISDIR
      else begin
        let len = max 0 (min len (i.size - off)) in
        if len = 0 then Ok ""
        else begin
          let out = Bytes.create len in
          let pos = ref 0 in
          while !pos < len do
            let abs = off + !pos in
            let l = abs / Simdisk.Disk.block_size and inblk = abs mod Simdisk.Disk.block_size in
            let n = min (Simdisk.Disk.block_size - inblk) (len - !pos) in
            (match Hashtbl.find_opt i.blocks l with
            | Some phys -> (
                match Hashtbl.find_opt t.page_cache (ino, l) with
                | Some page ->
                    t.cache_hits <- t.cache_hits + 1;
                    Bytes.blit_string page inblk out !pos n
                | None ->
                    t.cache_misses <- t.cache_misses + 1;
                    let page =
                      Simdisk.Disk.read_bytes t.disk ~off:(phys * Simdisk.Disk.block_size)
                        ~len:Simdisk.Disk.block_size
                    in
                    cache_insert t (ino, l) page;
                    Bytes.blit_string page inblk out !pos n)
            | None -> Bytes.fill out !pos n '\000');
            pos := !pos + n
          done;
          Ok (Bytes.unsafe_to_string out)
        end
      end)

let truncate t ino size =
  guard t (fun () ->
      let* i = get_inode t ino in
      if i.kind = Vfs.Directory then Error Vfs.EISDIR
      else begin
        if size <> i.size then log_op t (J_size { ino; size });
        Ok ()
      end)

let getattr t ino =
  guard t (fun () ->
      let* i = get_inode t ino in
      Ok { Vfs.st_ino = ino; st_kind = i.kind; st_size = i.size })

let readdir t ino =
  guard t (fun () ->
      let* d = get_dir t ino in
      Ok (Hashtbl.fold (fun name _ acc -> name :: acc) d.dirents [] |> List.sort String.compare))

let ops t : Vfs.ops =
  {
    root = (fun () -> root_ino);
    lookup = (fun ~dir name -> lookup t ~dir name);
    create = (fun ~dir name kind -> create t ~dir name kind);
    unlink = (fun ~dir name -> unlink t ~dir name);
    rename = (fun ~src_dir ~src_name ~dst_dir ~dst_name ->
        rename t ~src_dir ~src_name ~dst_dir ~dst_name);
    read = (fun ino ~off ~len -> read t ino ~off ~len);
    write = (fun ino ~off data -> write t ino ~off data);
    truncate = (fun ino size -> truncate t ino size);
    getattr = (fun ino -> getattr t ino);
    readdir = (fun ino -> readdir t ino);
    fsync = (fun ino -> guard t (fun () -> Result.map (fun _ -> ()) (get_inode t ino)));
    sync = (fun () -> Ok ());
  }

(* --- accounting for Table 3 --------------------------------------------- *)

let data_bytes_allocated t = t.data_blocks_allocated * Simdisk.Disk.block_size
let journal_bytes_written t = t.journal_bytes_written
let metadata_ops t = t.metadata_ops

let live_bytes t =
  Hashtbl.fold (fun _ (i : inode) acc -> if i.kind = Vfs.Regular then acc + i.size else acc)
    t.inodes 0
