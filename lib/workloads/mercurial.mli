(** The Mercurial-activity workload (Table 2, row 3): start from a source
    tree and apply a series of patches.  Each application writes a
    temporary, merges patch and original into it, and renames it over the
    original — the metadata-heavy pattern behind the paper's highest
    elapsed-time overhead. *)

type params = { tree_files : int; patches : int; files_per_patch : int }

val default : params

val tree_file : int -> string
(** Path of the [i]th tracked source file. *)

val patch_file : int -> string
(** Path of the [p]th patch file. *)

val run : ?params:params -> System.t -> parent:int -> unit
