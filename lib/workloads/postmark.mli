(** The Postmark workload (Table 2, row 2): an email-server simulation —
    a pool of files over 10 subdirectories, then a create/delete and
    read/append transaction mix with bounded file sizes.  The counts are
    scaled down; the mix is Postmark's. *)

type params = {
  files : int;
  transactions : int;
  subdirs : int;
  min_size : int;
  max_size : int;
}

val default : params

val paper_scale : params
(** The paper's configuration (1500 files / 1500 transactions). *)

val file_path : params -> int -> string
(** Pool path of file [i], spread across [params.subdirs]. *)

val run : ?params:params -> System.t -> parent:int -> unit
