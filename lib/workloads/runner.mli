(** The measurement harness behind Tables 2 and 3.

    Each workload writes to the volume mounted at [/vol0] and is measured
    in two configurations: local (ext3 vs Lasagna-over-ext3) and remote
    (plain NFS vs PA-NFS, client and server both provenance-aware). *)

type workload = { wl_name : string; run : System.t -> unit }

val standard : ?scale:float -> unit -> workload list
(** The five paper workloads (Linux compile, Postmark, Mercurial, Blast,
    PA-Kepler); [scale] shrinks the op counts for quick runs. *)

val local_system :
  ?registry:Telemetry.registry ->
  ?tracer:Pvtrace.t ->
  ?monitor:Pvmon.t ->
  ?batching:bool ->
  System.mode ->
  System.t

val nfs_system :
  ?registry:Telemetry.registry ->
  ?tracer:Pvtrace.t ->
  ?monitor:Pvmon.t ->
  ?batching:bool ->
  System.mode ->
  System.t * Server.t
(** [batching] (default on) threads through to {!System.create} (observer
    bursts, Lasagna group commit) and, for {!nfs_system}, to the PA-NFS
    client's [piggyback]; [~batching:false] restores one record / one frame
    / one RPC at a time for A/B comparison.  [tracer] and [monitor] thread
    through to {!System.create} (for {!nfs_system} the tracer is shared
    with the server, so server spans parent onto client RPC spans, and
    the monitor scrapes the shared registry). *)

type row = {
  r_name : string;
  base_seconds : float;
  pass_seconds : float;
  overhead_pct : float;
}

val measure_local : ?registry:Telemetry.registry -> workload -> row
(** One Table 2 local row: run on ext3 and on PASSv2, compare clocks.
    [registry] collects the telemetry of the PASS run only. *)

val measure_nfs : ?registry:Telemetry.registry -> workload -> row
(** One Table 2 NFS row; [registry] as in {!measure_local}. *)

type space_row = {
  s_name : string;
  ext3_mb : float;
  prov_mb : float;
  prov_pct : float;
  total_mb : float;
  total_pct : float;
}

val measure_space : workload -> space_row
(** One Table 3 row: data footprint from the baseline run, provenance
    database and index sizes from the PASS run. *)
