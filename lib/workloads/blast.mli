(** The Blast workload (Table 2, row 4): formatdb prepares two protein
    sequence files, blast burns CPU over them, and a chain of Perl
    scripts massages the output.  CPU-bound — provenance overhead is
    noise next to the computation. *)

type params = { sequence_bytes : int; blast_cpu_ms : int; perl_stages : int }

val default : params
val run : ?params:params -> System.t -> parent:int -> unit
