(** The Linux-compile workload (Table 2, row 1): unpack a source tree and
    build it.  tar unpacks sources and headers, one cc process per
    translation unit, one ld per directory, and a final vmlinux link —
    every compile a separate execve'd process. *)

type params = { dirs : int; files_per_dir : int; headers : int; cc_cpu_ms : int }

val default : params

val src_dir : int -> string
val src_file : int -> int -> string
val obj_file : int -> int -> string
val header_file : int -> string

val setup : System.t -> parent:int -> unit
(** The tar phase alone: lay out sources and headers without building. *)

val run : ?params:params -> System.t -> parent:int -> unit
