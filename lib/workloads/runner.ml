(* The measurement harness behind Tables 2 and 3.

   Every workload writes to the volume mounted at /vol0 and is run twice
   per configuration:

   - local:  vol0 is ext3sim (baseline) vs Lasagna-over-ext3sim (PASSv2);
   - remote: vol0 is an NFS mount of a plain server (baseline) vs a PA-NFS
     mount of a PA server (client and server both provenance-aware).

   Elapsed time is the simulated machine clock; space is accounted after
   draining the WAP logs into Waldo. *)

type workload = {
  wl_name : string;
  run : System.t -> unit;
}

let standard ?(scale = 1.0) () =
  let s f = max 1 (int_of_float (float_of_int f *. scale)) in
  [
    {
      wl_name = "Linux Compile";
      run =
        (fun sys ->
          Linux_compile.run
            ~params:
              { Linux_compile.default with
                dirs = s Linux_compile.default.dirs;
                files_per_dir = s Linux_compile.default.files_per_dir }
            sys ~parent:Kernel.init_pid);
    }
    ;
    {
      wl_name = "Postmark";
      run =
        (fun sys ->
          Postmark.run
            ~params:
              { Postmark.default with
                files = s Postmark.default.files;
                transactions = s Postmark.default.transactions }
            sys ~parent:Kernel.init_pid);
    };
    {
      wl_name = "Mercurial Activity";
      run =
        (fun sys ->
          Mercurial.run
            ~params:
              { Mercurial.default with patches = s Mercurial.default.patches }
            sys ~parent:Kernel.init_pid);
    };
    { wl_name = "Blast"; run = (fun sys -> Blast.run sys ~parent:Kernel.init_pid) };
    {
      wl_name = "PA-Kepler";
      run = (fun sys -> Kepler_wl.run sys ~parent:Kernel.init_pid);
    };
  ]

(* --- configurations -------------------------------------------------------- *)

let local_system ?registry ?tracer ?monitor ?batching mode =
  System.create ?registry ?tracer ?monitor ?batching ~mode ~machine:1
    ~volume_names:[ "vol0" ] ()

(* A client machine with an NFS mount at vol0.  In PASS mode the client
   keeps a small local scratch volume so the machine has a default PASS
   volume, mirroring the paper's workstation.  A [tracer] is shared by the
   client machine and the server, which is what lets server-side spans
   parent onto client RPC spans in the exported trace. *)
let nfs_system ?registry ?tracer ?monitor ?batching mode =
  let sys =
    System.create ?registry ?tracer ?monitor ?batching ~mode ~machine:1
      ~volume_names:(match mode with System.Pass -> [ "scratch" ] | System.Vanilla -> [])
      ()
  in
  let clock = System.clock sys in
  let server_mode =
    match mode with System.Pass -> Server.Pass_enabled | System.Vanilla -> Server.Plain
  in
  let server =
    Server.create ?registry ?tracer ~mode:server_mode ~clock ~machine:2 ~volume:"vol0" ()
  in
  let net = Proto.net clock in
  let client =
    Client.create ?registry ?tracer ?piggyback:batching ~net ~handler:(Server.handle server)
      ~ctx:(Kernel.ctx (System.kernel sys))
      ~mount_name:"vol0" ()
  in
  (match mode with
  | System.Pass ->
      System.mount_external sys ~name:"vol0" ~ops:(Client.ops client)
        ~endpoint:(Client.endpoint client)
        ~file_handle:(Client.file_handle client)
        ~flush:(fun () -> Client.flush client) ()
  | System.Vanilla -> System.mount_external sys ~name:"vol0" ~ops:(Client.ops client) ());
  (sys, server)

(* --- measurements ------------------------------------------------------------ *)

type row = {
  r_name : string;
  base_seconds : float;
  pass_seconds : float;
  overhead_pct : float;
}

let overhead base pass = (pass -. base) /. base *. 100.

(* [registry] collects the telemetry of the PASS-configuration run only,
   so its counters describe the provenance pipeline, not the baseline. *)
let measure_local ?registry w =
  let run ?registry mode =
    let sys = local_system ?registry mode in
    w.run sys;
    ignore (System.drain sys : int);
    System.elapsed_seconds sys
  in
  let base = run System.Vanilla in
  let pass = run ?registry System.Pass in
  { r_name = w.wl_name; base_seconds = base; pass_seconds = pass;
    overhead_pct = overhead base pass }

let measure_nfs ?registry w =
  let run ?registry mode =
    let sys, server = nfs_system ?registry mode in
    w.run sys;
    ignore (System.drain sys : int);
    ignore (Server.drain server : int);
    System.elapsed_seconds sys
  in
  let base = run System.Vanilla in
  let pass = run ?registry System.Pass in
  { r_name = w.wl_name; base_seconds = base; pass_seconds = pass;
    overhead_pct = overhead base pass }

type space_row = {
  s_name : string;
  ext3_mb : float; (* baseline data footprint *)
  prov_mb : float; (* provenance database *)
  prov_pct : float;
  total_mb : float; (* provenance + indexes *)
  total_pct : float;
}

let mb bytes = float_of_int bytes /. (1024. *. 1024.)

let measure_space w =
  (* data footprint from the baseline run; provenance sizes from the PASS
     run (Waldo database + indexes), as in Table 3 *)
  let base_sys = local_system System.Vanilla in
  w.run base_sys;
  let base_space = System.space base_sys in
  let sys = local_system System.Pass in
  w.run sys;
  ignore (System.drain sys : int);
  let space = System.space sys in
  let ext3 = mb base_space.System.sp_data_bytes in
  let prov = mb space.System.sp_db_bytes in
  let total = mb (space.System.sp_db_bytes + space.System.sp_index_bytes) in
  {
    s_name = w.wl_name;
    ext3_mb = ext3;
    prov_mb = prov;
    prov_pct = (if ext3 > 0. then prov /. ext3 *. 100. else 0.);
    total_mb = total;
    total_pct = (if ext3 > 0. then total /. ext3 *. 100. else 0.);
  }
