(** The PA-Kepler workload (Table 2, row 5): a workflow that parses
    tabular data, extracts values, and reformats them.  Over a PA-NFS
    mount this is the paper's full three-layer integration (workflow
    engine over PASS over NFS, the Figure 1 situation). *)

type params = { rows : int; runs : int; parse_cpu_ms : int }

val default : params

val table_path : string
(** Where the generated input table lives. *)

val out_path : int -> string
(** Output path of the [run]th reformatting pass. *)

val run : ?params:params -> System.t -> parent:int -> unit
