(** Deterministic seeded fault injection.

    A {!plan} is a seeded PRNG schedule of faults for the simulated
    network and disk.  Layers ask the plan at each operation whether a
    fault fires ({!next_net_fault}, {!next_disk_fault}); the plan draws
    from its own PRNG, so the same seed over the same operation sequence
    yields a byte-identical fault schedule ({!digest}).  Faults can be
    windowed by operation count ([*_after_op]/[*_until_op]) or by
    simulated-clock time ([until_ns]); {!deactivate} ends all injection,
    which is how chaos tests model "faults clear" before asserting
    convergence.

    The plan depends only on {!Telemetry} (for the [fault.injected.*]
    counters), so both [simdisk] and the PA-NFS transport can use it
    without a dependency cycle; callers pass the simulated time in as
    [now]. *)

type net_fault =
  | Drop_request  (** the request datagram is lost *)
  | Drop_response  (** the server executes, but the reply is lost *)
  | Delay_ns of int  (** the round trip takes this much longer *)
  | Duplicate  (** the request datagram is delivered twice *)
  | Partition_ns of int  (** the server is unreachable for this long *)
  | Server_restart_ns of int
      (** the server process restarts: unreachable for this long (its
          duplicate-request cache persists, as NFSv4.1's reply cache
          does) *)

type disk_fault =
  | Read_error  (** transient EIO on a block read *)
  | Write_error  (** transient EIO on a block write *)
  | Torn_write  (** only a prefix of the block reaches the medium *)
  | Corrupt_sector  (** the block is silently corrupted in place *)

(** Fault probabilities in per-mille (0–1000) per operation, plus
    duration ranges and injection windows. *)
type spec = {
  drop_request : int;
  drop_response : int;
  delay : int;
  delay_ns : int * int;  (** inclusive range a [Delay_ns] is drawn from *)
  duplicate : int;
  partition : int;
  partition_ns : int * int;
  server_restart : int;
  restart_ns : int * int;
  disk_read_error : int;
  disk_write_error : int;
  torn_write : int;
  corrupt_sector : int;
  net_after_op : int;  (** no net faults before this many net ops *)
  net_until_op : int;  (** no net faults from this op index on *)
  disk_after_op : int;
  disk_until_op : int;
  until_ns : int;  (** no faults at or past this simulated time *)
}

val quiet : spec
(** All probabilities zero — a plan that never fires. *)

val default_chaos : spec
(** A moderate mixed profile: a few percent of drops, duplicates and
    delays, occasional partitions and restarts, sub-percent transient
    disk errors; no silent corruption (test that separately — it is
    detected, not masked). *)

type plan

val none : plan
(** The permanently-disabled plan; the hooks' fast path.  Threading
    [none] must cost one branch and never draw from any PRNG. *)

val plan : ?registry:Telemetry.registry -> ?spec:spec -> seed:int -> unit -> plan
(** [plan ~seed ()] is a fresh schedule (default spec {!default_chaos}).
    [registry] receives the [fault.injected.*] counters (default
    {!Telemetry.default}). *)

val seed : plan -> int
val active : plan -> bool

val deactivate : plan -> unit
(** Stop injecting and clear any open partition window: the fault-free
    epilogue chaos tests converge under. *)

val next_net_fault : plan -> now:int -> net_fault option
(** Called once per RPC send.  Advances the op counter, draws, records
    the event.  A [Partition_ns]/[Server_restart_ns] result also opens
    the partition window that {!partitioned} reports. *)

val partitioned : plan -> now:int -> bool
(** Whether a previously drawn partition window is still open at [now].
    Consumes no randomness (retries during a partition must not perturb
    the schedule). *)

val next_disk_fault : plan -> now:int -> write:bool -> disk_fault option
(** Called once per block I/O; [write] selects the applicable kinds. *)

val events : plan -> string list
(** The injection log, oldest first: ["net#12@45000:drop_request"]. *)

val digest : plan -> string
(** MD5 over {!events} — two runs with the same seed and operation
    sequence produce equal digests (the determinism acceptance check). *)

val injected_total : plan -> int
(** Number of faults injected so far. *)

val crash_points : seed:int -> writes:int -> count:int -> int list
(** [crash_points ~seed ~writes ~count] draws up to [count] distinct
    block-write ticks in [[1, writes]], sorted ascending — the
    [after_writes] values a chaos sweep feeds to the simulated disk's
    crash scheduling.  Same seed, same sweep. *)
