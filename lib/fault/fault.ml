(* Deterministic seeded fault injection.

   One plan = one PRNG stream.  Each injection site makes exactly one
   cumulative draw per operation (plus one more for a duration when the
   drawn kind has one), so the schedule is a pure function of (seed,
   operation sequence) — the property the determinism test pins down by
   comparing digests across runs.  The PRNG is the same LCG family the
   workloads use (Wk.rng): no dependence on Stdlib.Random, whose state
   would leak between tests. *)

type net_fault =
  | Drop_request
  | Drop_response
  | Delay_ns of int
  | Duplicate
  | Partition_ns of int
  | Server_restart_ns of int

type disk_fault = Read_error | Write_error | Torn_write | Corrupt_sector

type spec = {
  drop_request : int;
  drop_response : int;
  delay : int;
  delay_ns : int * int;
  duplicate : int;
  partition : int;
  partition_ns : int * int;
  server_restart : int;
  restart_ns : int * int;
  disk_read_error : int;
  disk_write_error : int;
  torn_write : int;
  corrupt_sector : int;
  net_after_op : int;
  net_until_op : int;
  disk_after_op : int;
  disk_until_op : int;
  until_ns : int;
}

let quiet =
  {
    drop_request = 0; drop_response = 0;
    delay = 0; delay_ns = (0, 0);
    duplicate = 0;
    partition = 0; partition_ns = (0, 0);
    server_restart = 0; restart_ns = (0, 0);
    disk_read_error = 0; disk_write_error = 0;
    torn_write = 0; corrupt_sector = 0;
    net_after_op = 0; net_until_op = max_int;
    disk_after_op = 0; disk_until_op = max_int;
    until_ns = max_int;
  }

(* Durations in ns: partitions and restarts are a few tens of ms — long
   enough to need several client retries, short enough that the capped
   backoff (~50 ms) rides them out. *)
let default_chaos =
  {
    quiet with
    drop_request = 15;
    drop_response = 15;
    delay = 40; delay_ns = (200_000, 2_000_000);
    duplicate = 15;
    partition = 3; partition_ns = (10_000_000, 40_000_000);
    server_restart = 2; restart_ns = (20_000_000, 50_000_000);
    disk_read_error = 5;
    disk_write_error = 5;
  }

type instruments = {
  total : Telemetry.counter;
  drop_request : Telemetry.counter;
  drop_response : Telemetry.counter;
  delay : Telemetry.counter;
  duplicate : Telemetry.counter;
  partition : Telemetry.counter;
  server_restart : Telemetry.counter;
  disk_read_error : Telemetry.counter;
  disk_write_error : Telemetry.counter;
  torn_write : Telemetry.counter;
  corrupt_sector : Telemetry.counter;
}

let instruments registry =
  let c name = Telemetry.counter ?registry ("fault.injected." ^ name) in
  {
    total = c "total";
    drop_request = c "drop_request";
    drop_response = c "drop_response";
    delay = c "delay";
    duplicate = c "duplicate";
    partition = c "partition";
    server_restart = c "server_restart";
    disk_read_error = c "disk_read_error";
    disk_write_error = c "disk_write_error";
    torn_write = c "torn_write";
    corrupt_sector = c "corrupt_sector";
  }

type plan = {
  seed : int;
  spec : spec;
  mutable state : int;
  mutable is_active : bool;
  mutable net_ops : int;
  mutable disk_ops : int;
  mutable partition_until : int;
  mutable events : string list; (* newest first *)
  mutable injected : int;
  i : instruments option;
}

let none =
  {
    seed = 0; spec = quiet; state = 0; is_active = false;
    net_ops = 0; disk_ops = 0; partition_until = 0;
    events = []; injected = 0; i = None;
  }

let plan ?registry ?(spec = default_chaos) ~seed () =
  {
    seed; spec;
    state = (seed * 2654435761) lor 1;
    is_active = true;
    net_ops = 0; disk_ops = 0; partition_until = 0;
    events = []; injected = 0;
    i = Some (instruments registry);
  }

let seed p = p.seed
let active p = p.is_active

let deactivate p =
  p.is_active <- false;
  p.partition_until <- 0

let draw p bound =
  p.state <- (p.state * 0x5DEECE66D) + 0xB;
  abs (p.state lsr 17) mod max 1 bound

let draw_range p (lo, hi) = if hi <= lo then lo else lo + draw p (hi - lo + 1)

let record p ~site ~op ~now kind counter =
  p.injected <- p.injected + 1;
  p.events <- Printf.sprintf "%s#%d@%d:%s" site op now kind :: p.events;
  match p.i with
  | None -> ()
  | Some i ->
      Telemetry.incr i.total;
      Telemetry.incr (counter i)

let net_fault_name = function
  | Drop_request -> "drop_request"
  | Drop_response -> "drop_response"
  | Delay_ns _ -> "delay"
  | Duplicate -> "duplicate"
  | Partition_ns _ -> "partition"
  | Server_restart_ns _ -> "server_restart"

let partitioned p ~now = p.is_active && now < p.partition_until

let next_net_fault p ~now =
  if not p.is_active then None
  else begin
    let op = p.net_ops in
    p.net_ops <- op + 1;
    let s = p.spec in
    if op < s.net_after_op || op >= s.net_until_op || now >= s.until_ns then None
    else begin
      (* one cumulative draw selects at most one (mutually exclusive)
         fault kind for this operation *)
      let roll = draw p 1000 in
      let fault =
        let t1 = s.drop_request in
        let t2 = t1 + s.drop_response in
        let t3 = t2 + s.delay in
        let t4 = t3 + s.duplicate in
        let t5 = t4 + s.partition in
        let t6 = t5 + s.server_restart in
        if roll < t1 then Some Drop_request
        else if roll < t2 then Some Drop_response
        else if roll < t3 then Some (Delay_ns (draw_range p s.delay_ns))
        else if roll < t4 then Some Duplicate
        else if roll < t5 then Some (Partition_ns (draw_range p s.partition_ns))
        else if roll < t6 then Some (Server_restart_ns (draw_range p s.restart_ns))
        else None
      in
      (match fault with
      | None -> ()
      | Some f ->
          (match f with
          | Partition_ns d | Server_restart_ns d ->
              p.partition_until <- max p.partition_until (now + d)
          | _ -> ());
          let counter =
            match f with
            | Drop_request -> fun (i : instruments) -> i.drop_request
            | Drop_response -> fun i -> i.drop_response
            | Delay_ns _ -> fun i -> i.delay
            | Duplicate -> fun i -> i.duplicate
            | Partition_ns _ -> fun i -> i.partition
            | Server_restart_ns _ -> fun i -> i.server_restart
          in
          record p ~site:"net" ~op ~now (net_fault_name f) counter);
      fault
    end
  end

let disk_fault_name = function
  | Read_error -> "read_error"
  | Write_error -> "write_error"
  | Torn_write -> "torn_write"
  | Corrupt_sector -> "corrupt_sector"

let next_disk_fault p ~now ~write =
  if not p.is_active then None
  else begin
    let op = p.disk_ops in
    p.disk_ops <- op + 1;
    let s = p.spec in
    if op < s.disk_after_op || op >= s.disk_until_op || now >= s.until_ns then None
    else begin
      let roll = draw p 1000 in
      let fault =
        if write then begin
          let t1 = s.disk_write_error in
          let t2 = t1 + s.torn_write in
          let t3 = t2 + s.corrupt_sector in
          if roll < t1 then Some Write_error
          else if roll < t2 then Some Torn_write
          else if roll < t3 then Some Corrupt_sector
          else None
        end
        else if roll < s.disk_read_error then Some Read_error
        else None
      in
      (match fault with
      | None -> ()
      | Some f ->
          let counter =
            match f with
            | Read_error -> fun (i : instruments) -> i.disk_read_error
            | Write_error -> fun i -> i.disk_write_error
            | Torn_write -> fun i -> i.torn_write
            | Corrupt_sector -> fun i -> i.corrupt_sector
          in
          record p ~site:"disk" ~op ~now (disk_fault_name f) counter);
      fault
    end
  end

let events p = List.rev p.events
let digest p = Digest.to_hex (Digest.string (String.concat "\n" (events p)))
let injected_total p = p.injected

(* Seeded crash-point selection for chaos sweeps: [count] distinct block
   write ticks in [1, writes], drawn from the same LCG family as the
   plans so a pinned seed replays the same sweep.  A chaos test measures
   how many writes an operation issues, then crashes a fresh rig at each
   returned tick via Simdisk's schedule_crash. *)
let crash_points ~seed ~writes ~count =
  let state = ref ((seed * 2654435761) lor 1) in
  let draw bound =
    state := (!state * 0x5DEECE66D) + 0xB;
    abs (!state lsr 17) mod max 1 bound
  in
  let target = min count (max 0 writes) in
  let rec go acc attempts =
    if List.length acc >= target || attempts = 0 then acc
    else
      let k = 1 + draw writes in
      go (if List.mem k acc then acc else k :: acc) (attempts - 1)
  in
  List.sort Int.compare (go [] (count * 64))
