(* PA-links: the provenance-aware text browser (paper §6.3).

   Provenance is grouped by session — a logical task performed by the
   user.  On session creation we create a PASS object (pass_mkobj) and
   record its TYPE.  Every visit produces a VISITED_URL record tying the
   session to the URL.  Every download produces three records and is
   written with a pass_write that carries the data and the records
   together:

     INPUT        the file depends on the session (and thereby on the
                  sequence of URLs visited before the download)
     FILE_URL     the URL of the file itself
     CURRENT_URL  the page the user was viewing when she started the
                  download

   Sessions can be saved to disk and revived (pass_reviveobj) after a
   browser restart — the lesson the paper reports learning from Firefox
   (§6.5). *)

module Dpapi = Pass_core.Dpapi
module Record = Pass_core.Record
module Pvalue = Pass_core.Pvalue
module Ctx = Pass_core.Ctx
module Libpass = Pass_core.Libpass
module Pnode = Pass_core.Pnode

type session = {
  id : int;
  handle : Dpapi.handle;
  mutable current_url : string option;
  mutable history : string list; (* newest first *)
}

type t = {
  web : Web.t;
  sys : System.t;
  pid : int;
  lp : Libpass.t option; (* None on a vanilla kernel: plain browser *)
  mutable sessions : session list;
  mutable next_session : int;
}

exception Browser_error of string

let create ~web ~sys ~pid =
  let lp =
    Option.map (fun endpoint -> Libpass.connect ~endpoint ~pid) (System.app_endpoint sys ~pid)
  in
  { web; sys; pid; lp; sessions = []; next_session = 1 }

let provenance_aware t = t.lp <> None

let disclose t handle records =
  match t.lp with Some lp -> Libpass.disclose lp handle records | None -> ()

let new_session t =
  let id = t.next_session in
  t.next_session <- id + 1;
  let handle =
    match t.lp with
    | Some lp -> Libpass.mkobj ~typ:"SESSION" ~name:(Printf.sprintf "session-%d" id) lp
    | None -> Dpapi.handle (Pnode.of_int 0) (* inert placeholder *)
  in
  let s = { id; handle; current_url = None; history = [] } in
  t.sessions <- s :: t.sessions;
  s

(* Visit a URL: fetch it (following redirects), record every URL on the
   redirect chain plus the final one against the session. *)
let visit t s url =
  let final_url, chain, resource = Web.fetch t.web url in
  List.iter
    (fun u ->
      s.history <- u :: s.history;
      disclose t s.handle [ Record.make Record.Attr.visited_url (Pvalue.Str u) ])
    (chain @ [ final_url ]);
  s.current_url <- Some final_url;
  Kernel.cpu (System.kernel t.sys) 200_000 (* rendering *);
  resource

let session_xref t s =
  Pvalue.xref s.handle.Dpapi.pnode
    (Ctx.current_version (Kernel.ctx (System.kernel t.sys)) s.handle.Dpapi.pnode)

(* Download [url] into [dest]: replaces the browser's plain write with a
   pass_write carrying the data and the three records of Table 1. *)
let download t s ~url ~dest =
  let final_url, _chain, resource = Web.fetch t.web url in
  let content =
    match resource with
    | Web.Download d -> d.content
    | Web.Page _ | Web.Redirect _ -> raise (Browser_error ("not downloadable: " ^ url))
  in
  let k = System.kernel t.sys in
  let fd =
    match Kernel.open_file k ~pid:t.pid ~path:dest ~create:true with
    | Ok fd -> fd
    | Error e -> raise (Browser_error (Vfs.errno_to_string e))
  in
  (match t.lp with
  | Some lp ->
      (* provenance-aware: one pass_write with data + all three records *)
      let file_handle =
        match Kernel.handle_of_path k dest with
        | Ok h -> h
        | Error e -> raise (Browser_error (Vfs.errno_to_string e))
      in
      let records =
        [
          Record.input (session_xref t s);
          Record.make Record.Attr.file_url (Pvalue.Str final_url);
          Record.make Record.Attr.current_url
            (Pvalue.Str (Option.value s.current_url ~default:""));
        ]
      in
      ignore (Libpass.write lp file_handle ~off:0 ~data:content ~records : int)
  | None -> (
      (* plain browser: an ordinary write; any provenance dies with the
         browser history *)
      match Kernel.write k ~pid:t.pid ~fd ~data:content with
      | Ok () -> ()
      | Error e -> raise (Browser_error (Vfs.errno_to_string e))));
  (match Kernel.close k ~pid:t.pid ~fd with Ok () -> () | Error _ -> ());
  final_url

(* --- session persistence (the Firefox lesson, §6.5) ----------------------- *)

(* Save sessions to a state file: (id, pnode, version) triples. *)
let save_sessions t ~path =
  let ctx = Kernel.ctx (System.kernel t.sys) in
  let buf = Buffer.create 128 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" s.id
           (Pnode.to_int s.handle.Dpapi.pnode)
           (Ctx.current_version ctx s.handle.Dpapi.pnode)))
    t.sessions;
  let k = System.kernel t.sys in
  match Kernel.open_file k ~pid:t.pid ~path ~create:true with
  | Error e -> raise (Browser_error (Vfs.errno_to_string e))
  | Ok fd -> (
      (* make each live session durable before recording it *)
      (match t.lp with
      | Some lp -> List.iter (fun s -> Libpass.sync lp s.handle) t.sessions
      | None -> ());
      match Kernel.write k ~pid:t.pid ~fd ~data:(Buffer.contents buf) with
      | Ok () ->
          let _ : (unit, Vfs.errno) result = Kernel.close k ~pid:t.pid ~fd in
          ()
      | Error e -> raise (Browser_error (Vfs.errno_to_string e)))

(* Restore sessions after a restart: revive each object so further
   provenance lands on the same session. *)
let restore_sessions t ~path =
  let k = System.kernel t.sys in
  let data =
    match Kernel.open_file k ~pid:t.pid ~path ~create:false with
    | Error e -> raise (Browser_error (Vfs.errno_to_string e))
    | Ok fd -> (
        match Kernel.read k ~pid:t.pid ~fd ~len:1_000_000 with
        | Ok d ->
            let _ : (unit, Vfs.errno) result = Kernel.close k ~pid:t.pid ~fd in
            d
        | Error e -> raise (Browser_error (Vfs.errno_to_string e)))
  in
  let lines = String.split_on_char '\n' data |> List.filter (fun l -> l <> "") in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ id; pnode; version ] -> (
          match t.lp with
          | Some lp ->
              let handle =
                Libpass.reviveobj lp (Pnode.of_int (int_of_string pnode)) (int_of_string version)
              in
              t.sessions <-
                { id = int_of_string id; handle; current_url = None; history = [] }
                :: t.sessions;
              t.next_session <- max t.next_session (int_of_string id + 1)
          | None -> ())
      | _ -> raise (Browser_error ("corrupt session file: " ^ line)))
    lines
