(** Unified telemetry for the PASSv2 pipeline.

    Every pipeline layer (observer, analyzer, distributor, Lasagna, Waldo,
    PA-NFS client/server, simdisk) creates named instruments — counters,
    gauges, histograms — against a {!registry}.  A registry snapshot is the
    machine-readable form of the paper's Tables 2–3 accounting: records
    in/out, duplicates dropped, WAP bytes, RPC latencies, disk seeks.

    Instruments are owned by the layer instance that created them (so the
    per-layer [stats] views stay exact even when several instances coexist);
    the registry aggregates same-named instruments at snapshot time, the way
    a scrape aggregates per-process metrics. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry
(** A fresh, empty registry. *)

val default : registry
(** The process-global registry used when [?registry] is omitted. *)

(** {1 Instrument creation}

    Creating an instrument registers it under [name].  Several instruments
    may share a name (one per layer instance); snapshots aggregate them. *)

val counter : ?registry:registry -> string -> counter
val gauge : ?registry:registry -> string -> gauge
val histogram : ?registry:registry -> string -> histogram

(** {1 Counters} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val observe : histogram -> float -> unit

type summary = {
  count : int;
  sum : float;
  min : float; (* 0. when empty *)
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : histogram -> summary
(** Count, sum, min and max are exact; percentiles come from a bounded
    deterministic sample reservoir (no randomness — runs are
    reproducible).

    Accuracy bound: the reservoir holds up to 2048 samples.  While the
    observation count is ≤ 2048 every observation is retained and the
    percentiles are exact sample quantiles.  Beyond that the reservoir is
    a 1-in-[stride] systematic sample of the observation stream (the
    stride doubles on each compaction), and a reported percentile [p] is
    the exact quantile of that subsample.  The pinned-seed property test
    in [test/test_telemetry.ml] asserts a normalized rank error of at
    most 0.05 against the exact percentile: the reported value for
    quantile [p] sits between the exact quantiles at [p - 0.05] and
    [p + 0.05].  That bound is part of this interface — tighten the test
    if the sketch changes. *)

val with_span : histogram -> now:(unit -> int) -> (unit -> 'a) -> 'a
(** [with_span h ~now f] runs [f] and observes [now () - now ()] elapsed
    around it (simulated nanoseconds) into [h], whether [f] returns or
    raises. *)

(** {1 Snapshots} *)

module Json : sig
  (** A minimal JSON tree: enough to encode snapshots and to round-trip
      them in tests without external dependencies. *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val to_string : t -> string
  val of_string : string -> t
  (** Raises {!Parse_error} on malformed input (including trailing garbage
      after a complete value).  Decodes [\uXXXX] escapes to UTF-8,
      combining surrogate pairs; a lone surrogate is malformed. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] otherwise. *)

  val escape : string -> string
  (** JSON string-escape [s] (quotes, backslashes, control characters);
      does not add surrounding quotes. *)
end

val name_under : prefix:string -> string -> bool
(** [name_under ~prefix name] is true when [name] sits under the dotted
    [prefix]: equal to it, or extending it at a ['.'] boundary ("panfs"
    matches "panfs.client.rpcs" but not "panfsx.rpcs").  The empty prefix
    matches everything.  Shared by [passctl stats --filter] and the
    pvtrace exporters. *)

val validate_prefix : string -> (string, string) result
(** Validate a user-supplied filter prefix before it reaches
    {!name_under}: the empty string (for which [name_under] matches
    everything) and prefixes with empty dotted segments ("", ".a",
    "a..b", "a.") are rejected with a message; anything else passes
    through unchanged.  CLI front-ends use this so a typo'd [--filter]
    is a usage error, not a silent match-all. *)

val snapshot : ?filter:string -> registry -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name: summary}}],
    keys sorted, same-named instruments aggregated (counters summed, gauges
    last-registered-wins, histograms merged).  [filter] keeps only
    instruments whose name is {!name_under} the prefix. *)

val to_json : ?filter:string -> registry -> string

val counter_value : registry -> string -> int option
(** Aggregated value of every counter registered under this name. *)

(** {1 Series snapshots}

    The structured form of {!snapshot}, for scrapers (pvmon) that need
    the kind of each name and the number of instrument instances folded
    into it.  Aggregation follows {!snapshot} exactly: counters sum,
    gauges are {b last-registered-wins} (the value is the newest
    registration's, not a sum — a scraper must surface [se_instances]
    when it is > 1 so multi-instance gauges are not mistaken for a
    total), histograms merge. *)

type series = {
  se_name : string;
  se_kind : [ `Counter | `Gauge | `Histogram ];
  se_value : float;
      (** counter total / newest gauge value / histogram count *)
  se_instances : int;  (** instrument registrations under this name *)
  se_summary : summary option;  (** histograms only *)
}

val series_snapshot : ?filter:string -> registry -> series list
(** One row per instrument name, sorted by name; [filter] as in
    {!snapshot}. *)

val histogram_summary : registry -> string -> summary option
(** Merged summary of every histogram registered under this name. *)
