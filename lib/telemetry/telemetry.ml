(* Unified telemetry for the PASSv2 pipeline.

   Design constraints: no external dependencies (this sits below pass_core
   and simdisk in the library graph), deterministic behaviour (the repo's
   runs are reproducible simulations; percentile reservoirs must not use
   randomness), and cheap instrument updates (a counter bump is one field
   mutation, the same cost as the mutable stats records it replaces). *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

(* Histogram: exact count/sum/min/max plus a bounded sample reservoir for
   percentiles.  Determinism: when the buffer fills we drop every other
   sample and double the admission stride, so the reservoir remains an
   even systematic sample of the observation stream. *)
let reservoir_cap = 2048

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable samples : float array;
  mutable n_samples : int;
  mutable stride : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type registry = { mutable instruments : (string * instrument) list (* newest first *) }

let create () = { instruments = [] }
let default = create ()

let register registry name i =
  let r = match registry with Some r -> r | None -> default in
  r.instruments <- (name, i) :: r.instruments

let counter ?registry name =
  let c = { c = 0 } in
  register registry name (Counter c);
  c

let gauge ?registry name =
  let g = { g = 0. } in
  register registry name (Gauge g);
  g

let histogram ?registry name =
  let h =
    { h_count = 0; h_sum = 0.; h_min = 0.; h_max = 0.;
      samples = Array.make reservoir_cap 0.; n_samples = 0; stride = 1 }
  in
  register registry name (Histogram h);
  h

(* --- counters / gauges ----------------------------------------------------- *)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

(* --- histograms ------------------------------------------------------------ *)

let observe h v =
  if h.h_count = 0 then begin
    h.h_min <- v;
    h.h_max <- v
  end
  else begin
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if (h.h_count - 1) mod h.stride = 0 then begin
    if h.n_samples >= Array.length h.samples then begin
      (* compact: keep even indices, double the stride *)
      let n = h.n_samples / 2 in
      for i = 0 to n - 1 do
        h.samples.(i) <- h.samples.(2 * i)
      done;
      h.n_samples <- n;
      h.stride <- h.stride * 2
    end;
    if (h.h_count - 1) mod h.stride = 0 then begin
      h.samples.(h.n_samples) <- v;
      h.n_samples <- h.n_samples + 1
    end
  end

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let empty_summary =
  { count = 0; sum = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (p *. float_of_int (n - 1) +. 0.5) in
    sorted.(Stdlib.min (n - 1) (Stdlib.max 0 idx))

let summary_of_samples ~count ~sum ~mn ~mx samples =
  if count = 0 then empty_summary
  else begin
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    { count; sum; min = mn; max = mx;
      p50 = percentile sorted 0.50;
      p95 = percentile sorted 0.95;
      p99 = percentile sorted 0.99 }
  end

let summary h =
  summary_of_samples ~count:h.h_count ~sum:h.h_sum ~mn:h.h_min ~mx:h.h_max
    (Array.sub h.samples 0 h.n_samples)

let with_span h ~now f =
  let t0 = now () in
  match f () with
  | v ->
      observe h (float_of_int (now () - t0));
      v
  | exception e ->
      observe h (float_of_int (now () - t0));
      raise e

(* --- JSON ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let float_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
    else Printf.sprintf "%.12g" f

  let to_string t =
    let buf = Buffer.create 1024 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_to_string f)
      | Str s ->
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape s);
          Buffer.add_char buf '"'
      | List l ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char buf ',';
              go x)
            l;
          Buffer.add_char buf ']'
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              Buffer.add_string buf (escape k);
              Buffer.add_string buf "\":";
              go v)
            fields;
          Buffer.add_char buf '}'
    in
    go t;
    Buffer.contents buf

  (* A small recursive-descent parser; strict enough for round-tripping
     snapshots and for CI to fail loudly on a torn BENCH_results.json. *)
  let of_string s =
    let pos = ref 0 in
    let len = String.length s in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let advance () = pos := !pos + 1 in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= len then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= len then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; go ()
            | '\\' -> Buffer.add_char buf '\\'; go ()
            | '/' -> Buffer.add_char buf '/'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'u' ->
                let hex4 () =
                  if !pos + 4 > len then fail "bad \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let digit c =
                    match c with
                    | '0' .. '9' -> Char.code c - Char.code '0'
                    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                    | _ -> fail "bad \\u escape"
                  in
                  String.fold_left (fun acc c -> (acc * 16) + digit c) 0 hex
                in
                let code = hex4 () in
                (* surrogate pairs encode astral codepoints; a lone
                   surrogate is not a scalar value and is rejected *)
                let code =
                  if code >= 0xD800 && code <= 0xDBFF then begin
                    if
                      !pos + 2 > len || s.[!pos] <> '\\' || s.[!pos + 1] <> 'u'
                    then fail "unpaired surrogate"
                    else begin
                      pos := !pos + 2;
                      let low = hex4 () in
                      if low < 0xDC00 || low > 0xDFFF then
                        fail "unpaired surrogate"
                      else 0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                    end
                  end
                  else if code >= 0xDC00 && code <= 0xDFFF then
                    fail "unpaired surrogate"
                  else code
                in
                (* UTF-8 encode the decoded scalar value *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else if code < 0x10000 then begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                go ()
            | _ -> fail "bad escape")
        | c -> Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or }"
            in
            members ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ]"
            in
            elements ();
            List (List.rev !items)
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

(* --- dotted-name filtering ------------------------------------------------- *)

(* Shared by [passctl stats --filter] and the pvtrace exporters: a name is
   under a prefix when it equals it or extends it at a dot boundary, so
   "panfs" matches "panfs.client.rpcs" but not "panfsx.rpcs". *)
let name_under ~prefix name =
  prefix = "" || String.equal name prefix
  || (let pl = String.length prefix in
      String.length name > pl
      && name.[pl] = '.'
      && String.equal (String.sub name 0 pl) prefix)

(* A user-supplied prefix must name something: empty (which would match
   everything) and empty dotted segments are operator typos. *)
let validate_prefix prefix =
  if String.equal prefix "" then
    Error "empty PREFIX (omit the filter to keep everything)"
  else if List.exists (String.equal "") (String.split_on_char '.' prefix) then
    Error (Printf.sprintf "PREFIX %S has an empty dotted segment" prefix)
  else Ok prefix

(* --- snapshots ------------------------------------------------------------- *)

(* Group same-named instruments: counters sum, gauges take the most recent
   registration, histograms merge (exact moments combine; reservoirs
   concatenate, which keeps percentiles representative). *)

let grouped t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  (* instruments list is newest-first; walk oldest-first *)
  List.iter
    (fun (name, i) ->
      match Hashtbl.find_opt tbl name with
      | Some l -> l := i :: !l
      | None ->
          Hashtbl.add tbl name (ref [ i ]);
          order := name :: !order)
    (List.rev t.instruments);
  List.rev_map (fun name -> (name, List.rev !(Hashtbl.find tbl name))) !order

let merged_summary hs =
  let count = List.fold_left (fun a h -> a + h.h_count) 0 hs in
  if count = 0 then empty_summary
  else begin
    let live = List.filter (fun h -> h.h_count > 0) hs in
    let sum = List.fold_left (fun a h -> a +. h.h_sum) 0. live in
    let mn = List.fold_left (fun a h -> Stdlib.min a h.h_min) infinity live in
    let mx = List.fold_left (fun a h -> Stdlib.max a h.h_max) neg_infinity live in
    let samples =
      Array.concat (List.map (fun h -> Array.sub h.samples 0 h.n_samples) live)
    in
    summary_of_samples ~count ~sum ~mn ~mx samples
  end

let counter_value t name =
  let total = ref 0 and found = ref false in
  List.iter
    (fun (n, i) ->
      match i with
      | Counter c when String.equal n name ->
          found := true;
          total := !total + c.c
      | _ -> ())
    t.instruments;
  if !found then Some !total else None

let histogram_summary t name =
  let hs =
    List.filter_map
      (fun (n, i) ->
        match i with Histogram h when String.equal n name -> Some h | _ -> None)
      t.instruments
  in
  if hs = [] then None else Some (merged_summary (List.rev hs))

let snapshot ?filter t =
  let groups =
    match filter with
    | None -> grouped t
    | Some prefix ->
        List.filter (fun (name, _) -> name_under ~prefix name) (grouped t)
  in
  let by_name cmp = List.sort (fun (a, _) (b, _) -> String.compare a b) cmp in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, instruments) ->
      match instruments with
      | Counter _ :: _ ->
          let v =
            List.fold_left
              (fun a i -> match i with Counter c -> a + c.c | _ -> a)
              0 instruments
          in
          counters := (name, Json.Int v) :: !counters
      | Gauge _ :: _ ->
          (* newest registration wins *)
          let v =
            List.fold_left (fun a i -> match i with Gauge g -> g.g | _ -> a) 0. instruments
          in
          gauges := (name, Json.Float v) :: !gauges
      | Histogram _ :: _ ->
          let hs =
            List.filter_map (function Histogram h -> Some h | _ -> None) instruments
          in
          let s = merged_summary hs in
          histograms :=
            ( name,
              Json.Obj
                [
                  ("count", Json.Int s.count);
                  ("sum", Json.Float s.sum);
                  ("min", Json.Float s.min);
                  ("max", Json.Float s.max);
                  ("p50", Json.Float s.p50);
                  ("p95", Json.Float s.p95);
                  ("p99", Json.Float s.p99);
                ] )
            :: !histograms
      | [] -> ())
    groups;
  Json.Obj
    [
      ("counters", Json.Obj (by_name !counters));
      ("gauges", Json.Obj (by_name !gauges));
      ("histograms", Json.Obj (by_name !histograms));
    ]

let to_json ?filter t = Json.to_string (snapshot ?filter t)

(* --- series snapshots ------------------------------------------------------- *)

(* The structured twin of [snapshot], for scrapers (pvmon) that want the
   aggregation rules plus the information the JSON view drops: the kind of
   each name and how many instrument instances were folded into it.  The
   instance count is what lets a scraper tag last-registered-wins gauges
   instead of silently presenting one instance's value as the truth. *)

type series = {
  se_name : string;
  se_kind : [ `Counter | `Gauge | `Histogram ];
  se_value : float;
  se_instances : int;
  se_summary : summary option;
}

let series_snapshot ?filter t =
  let groups =
    match filter with
    | None -> grouped t
    | Some prefix ->
        List.filter (fun (name, _) -> name_under ~prefix name) (grouped t)
  in
  let rows =
    List.filter_map
      (fun (name, instruments) ->
        let instances = List.length instruments in
        match instruments with
        | [] -> None
        | Counter _ :: _ ->
            let v =
              List.fold_left
                (fun a i -> match i with Counter c -> a + c.c | _ -> a)
                0 instruments
            in
            Some { se_name = name; se_kind = `Counter;
                   se_value = float_of_int v; se_instances = instances;
                   se_summary = None }
        | Gauge _ :: _ ->
            (* same rule as [snapshot]: the newest registration wins *)
            let v =
              List.fold_left
                (fun a i -> match i with Gauge g -> g.g | _ -> a)
                0. instruments
            in
            Some { se_name = name; se_kind = `Gauge; se_value = v;
                   se_instances = instances; se_summary = None }
        | Histogram _ :: _ ->
            let hs =
              List.filter_map (function Histogram h -> Some h | _ -> None)
                instruments
            in
            let s = merged_summary hs in
            Some { se_name = name; se_kind = `Histogram;
                   se_value = float_of_int s.count; se_instances = instances;
                   se_summary = Some s })
      groups
  in
  List.sort (fun a b -> String.compare a.se_name b.se_name) rows
