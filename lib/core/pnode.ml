(* Pnode numbers: unique, never-recycled provenance handles (paper §5.2). *)

type t = int

let compare = Int.compare
let equal = Int.equal

(* Explicit structural hash: a splitmix-style integer finalizer over the
   raw pnode number, folded to a non-negative int.  [Hashtbl.hash] would
   work but its algorithm is an implementation detail of the runtime;
   pnode hashes feed dedup tables, so they must not drift across OCaml
   versions.  Constants fit in 62 bits so the literals are portable. *)
let hash t =
  let h = t lxor (t lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1B03738712FAD5C9 in
  let h = h lxor (h lsr 32) in
  h land max_int
let to_int t = t
let of_int i = i
let pp ppf t = Format.fprintf ppf "p%d" t

(* Allocators are seeded with a machine id so that pnodes allocated on
   different machines (e.g. an NFS client and server) never collide.  The
   machine id occupies the high bits; 40 low bits of sequence leave room for
   ~10^12 objects per machine, far beyond what a simulation allocates. *)
let machine_shift = 40

type allocator = { machine : int; mutable next : int }

let allocator ~machine =
  if machine < 0 || machine > 0x3fffff then invalid_arg "Pnode.allocator";
  { machine; next = 1 }

let fresh alloc =
  let seq = alloc.next in
  alloc.next <- seq + 1;
  (alloc.machine lsl machine_shift) lor seq

let machine_of t = t lsr machine_shift
let sequence_of t = t land ((1 lsl machine_shift) - 1)
