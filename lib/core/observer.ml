(* The observer (paper §5.3) translates system-call events into provenance
   records and passes them down the DPAPI stack (analyzer -> distributor ->
   storage).  It is on the data path: a read system call becomes a
   pass_read whose returned (pnode, version) identity lets the observer
   construct a record that accurately describes what was read; a write
   system call becomes a pass_write carrying both the data and the record
   stating that the process is an input of the file.

   The observer is also the entry point for provenance-aware applications
   that disclose provenance explicitly: when an application pass_writes
   data, the observer adds the implicit record capturing the dependency
   between the application's process and the file (paper §5.3, last
   paragraph).  [endpoint_for] builds that per-process DPAPI face. *)

exception Lower_error of string

type proc = { handle : Dpapi.handle; mutable alive : bool }

type stats = {
  mutable events : int;
  mutable records_emitted : int;
}

(* Registry-backed instruments; [stats] is a view built on demand. *)
type instruments = {
  events : Telemetry.counter;
  records_emitted : Telemetry.counter;
}

type t = {
  ctx : Ctx.t;
  lower : Dpapi.endpoint; (* the analyzer *)
  procs : (int, proc) Hashtbl.t; (* pid -> process object *)
  pipes : (int, Dpapi.handle) Hashtbl.t; (* pipe id -> pipe object *)
  tracer : Pvtrace.t;
  batch : bool;
  mutable pending : (Dpapi.handle * Record.t list) list; (* newest first *)
  mutable pending_entries : int;
  i : instruments;
}

let create ?registry ?(tracer = Pvtrace.disabled) ?(batch = true) ~ctx ~lower () =
  { ctx; lower; procs = Hashtbl.create 64; pipes = Hashtbl.create 16; tracer;
    batch; pending = []; pending_entries = 0;
    i = { events = Telemetry.counter ?registry "observer.events";
          records_emitted = Telemetry.counter ?registry "observer.records_emitted" } }

let stats t : stats =
  { events = Telemetry.value t.i.events;
    records_emitted = Telemetry.value t.i.records_emitted }
let ( let* ) = Result.bind

(* --- syscall-burst batching --------------------------------------------- *)

(* Emissions that carry only non-ancestry records for virtual objects the
   context already knows can be deferred and handed down as one bundle:
   processing them reads nothing from the context but the target's current
   version (which only an ancestry record, a freeze or a data write can
   move, and each of those flushes first), so the analyzer and distributor
   see the exact record stream they would have seen unbatched — same
   order, same dedup keys, same cycle-avoidance decisions. *)
let queueable t (target : Dpapi.handle) records =
  t.batch && target.volume = None
  && Ctx.known t.ctx target.pnode
  && not (List.exists Record.is_ancestry records)

let batch_high_water = 64

(* Hand the queued burst downstream as one bundle.  The carrying handle is
   the first entry's (virtual) target, so the distributor routes every
   entry exactly as it would have routed the unbatched stream. *)
let flush t =
  match t.pending with
  | [] -> Ok ()
  | rev_entries ->
      let bundle = List.rev_map (fun (h, rs) -> Dpapi.entry h rs) rev_entries in
      t.pending <- [];
      t.pending_entries <- 0;
      Pvtrace.event t.tracer ~layer:"observer" ~op:"batch_flush"
        ~outcome:(string_of_int (List.length bundle)) ();
      let carrying = (List.hd bundle).Dpapi.target in
      Result.map
        (fun (_ : int) -> ())
        (t.lower.pass_write carrying ~off:0 ~data:None bundle)

let enqueue t target records =
  t.pending <- (target, records) :: t.pending;
  t.pending_entries <- t.pending_entries + 1;
  if t.pending_entries >= batch_high_water then flush t else Ok ()

let emit t target records =
  Telemetry.add t.i.records_emitted (List.length records);
  Pvtrace.event t.tracer ~layer:"observer" ~op:"emit"
    ~pnode:(Pnode.to_int target.Dpapi.pnode) ~outcome:"emitted" ();
  if queueable t target records then enqueue t target records
  else
    match t.pending with
    | [] -> Dpapi.disclose t.lower target records
    | rev_entries ->
        (* an ancestry record must be admitted at event time: send the
           queue and the new emission as one bundle, preserving order *)
        let bundle =
          List.rev_map (fun (h, rs) -> Dpapi.entry h rs) ((target, records) :: rev_entries)
        in
        t.pending <- [];
        t.pending_entries <- 0;
        Pvtrace.event t.tracer ~layer:"observer" ~op:"batch_flush"
          ~outcome:(string_of_int (List.length bundle)) ();
        let carrying = (List.hd bundle).Dpapi.target in
        Result.map
          (fun (_ : int) -> ())
          (t.lower.pass_write carrying ~off:0 ~data:None bundle)

let proc_state t pid =
  match Hashtbl.find_opt t.procs pid with
  | Some p -> p
  | None ->
      (* a process we have not seen born (e.g. pre-existing init): create
         its object on first contact *)
      let handle =
        match t.lower.pass_mkobj ~volume:None with
        | Ok h -> h
        | Error e -> raise (Lower_error ("mkobj: " ^ Dpapi.error_to_string e))
      in
      let p = { handle; alive = true } in
      Hashtbl.add t.procs pid p;
      let _ : (unit, Dpapi.error) result =
        emit t handle
          [ Record.typ "PROCESS"; Record.make Record.Attr.pid (Pvalue.Int pid) ]
      in
      p

let proc_handle t pid = (proc_state t pid).handle

let proc_xref t pid =
  let h = proc_handle t pid in
  Pvalue.xref h.pnode (Ctx.current_version t.ctx h.pnode)

(* --- system call events ------------------------------------------------ *)

let fork t ~parent ~child =
  Telemetry.incr t.i.events;
  let ph = proc_handle t parent in
  let child_handle =
    match t.lower.pass_mkobj ~volume:None with
    | Ok h -> h
    | Error e -> raise (Lower_error ("fork mkobj: " ^ Dpapi.error_to_string e))
  in
  Hashtbl.replace t.procs child { handle = child_handle; alive = true };
  emit t child_handle
    [
      Record.typ "PROCESS";
      Record.make Record.Attr.pid (Pvalue.Int child);
      Record.input_of ph.pnode (Ctx.current_version t.ctx ph.pnode);
    ]

let execve t ~pid ~path ~argv ~env ~binary =
  Telemetry.incr t.i.events;
  let p = proc_handle t pid in
  (* learn the exact identity of the binary being executed *)
  let* id = t.lower.pass_read binary ~off:0 ~len:0 in
  emit t p
    [
      Record.name path;
      Record.make Record.Attr.argv (Pvalue.Strs argv);
      Record.make Record.Attr.env (Pvalue.Strs env);
      Record.input_of id.r_pnode id.r_version;
    ]

let exit t ~pid =
  Telemetry.incr t.i.events;
  (match Hashtbl.find_opt t.procs pid with
  | Some p -> p.alive <- false
  | None -> ());
  Ok ()

(* read: pass_read the file, then record that the process depends on the
   exact version read. *)
let read t ~pid ~file ~off ~len =
  Telemetry.incr t.i.events;
  let p = proc_handle t pid in
  let* r = t.lower.pass_read file ~off ~len in
  let* () = emit t p [ Record.input_of r.r_pnode r.r_version ] in
  Ok r

(* write: send the data together with the record stating that the process
   is an input of the file. *)
let write t ~pid ~file ~off ~data =
  Telemetry.incr t.i.events;
  (* data writes flush the burst first: the data's own pass_write carries a
     volume-ful handle, and riding entries would be routed to its volume *)
  let* () = flush t in
  let record = Record.input (proc_xref t pid) in
  Telemetry.incr t.i.records_emitted;
  Pvtrace.event t.tracer ~layer:"observer" ~op:"emit"
    ~pnode:(Pnode.to_int file.Dpapi.pnode) ~outcome:"emitted" ();
  t.lower.pass_write file ~off ~data:(Some data) [ Dpapi.entry file [ record ] ]

let mmap t ~pid ~file ~writable =
  Telemetry.incr t.i.events;
  let p = proc_handle t pid in
  let* r = t.lower.pass_read file ~off:0 ~len:0 in
  let* () = emit t p [ Record.input_of r.r_pnode r.r_version ] in
  if writable then emit t file [ Record.input (proc_xref t pid) ] else Ok ()

let pipe_create t ~pid ~pipe_id =
  Telemetry.incr t.i.events;
  let* h = t.lower.pass_mkobj ~volume:None in
  Hashtbl.replace t.pipes pipe_id h;
  let* () = emit t h [ Record.typ "PIPE" ] in
  let _ : proc = proc_state t pid in
  Ok ()

let pipe_handle t pipe_id =
  match Hashtbl.find_opt t.pipes pipe_id with
  | Some h -> Ok h
  | None -> Error Dpapi.Ebadf

let pipe_write t ~pid ~pipe_id =
  Telemetry.incr t.i.events;
  let* h = pipe_handle t pipe_id in
  emit t h [ Record.input (proc_xref t pid) ]

let pipe_read t ~pid ~pipe_id =
  Telemetry.incr t.i.events;
  let* h = pipe_handle t pipe_id in
  let p = proc_handle t pid in
  emit t p [ Record.input (Pvalue.xref h.pnode (Ctx.current_version t.ctx h.pnode)) ]

let drop_inode t ~file:_ =
  Telemetry.incr t.i.events;
  Ok ()

(* --- the DPAPI face handed to provenance-aware applications ------------ *)

let endpoint_for t ~pid : Dpapi.endpoint =
  let lower = t.lower in
  {
    pass_read =
      (fun h ~off ~len ->
        (* a disclosing application still depends on what it reads *)
        let* r = lower.pass_read h ~off ~len in
        let p = proc_handle t pid in
        let* () = emit t p [ Record.input_of r.r_pnode r.r_version ] in
        Ok r);
    pass_write =
      (fun h ~off ~data bundle ->
        (* apart from the disclosed provenance, capture the dependency
           between the application and the written object *)
        let bundle =
          match data with
          | Some _ -> Dpapi.entry h [ Record.input (proc_xref t pid) ] :: bundle
          | None -> bundle
        in
        Telemetry.add t.i.records_emitted
          (List.fold_left (fun n (e : Dpapi.bundle_entry) -> n + List.length e.records) 0 bundle);
        if
          data = None
          && bundle <> []
          && List.for_all (fun (e : Dpapi.bundle_entry) -> queueable t e.target e.records) bundle
        then begin
          let* () =
            List.fold_left
              (fun acc (e : Dpapi.bundle_entry) ->
                let* () = acc in
                enqueue t e.target e.records)
              (Ok ()) bundle
          in
          Ok (Ctx.current_version t.ctx h.Dpapi.pnode)
        end
        else
          let* () = flush t in
          lower.pass_write h ~off ~data bundle);
    pass_freeze =
      (fun h ->
        (* a freeze moves the target's version: queued records must be
           admitted under the pre-freeze version, as they were emitted *)
        let* () = flush t in
        lower.pass_freeze h);
    pass_mkobj = lower.pass_mkobj;
    pass_reviveobj =
      (fun p v ->
        let* () = flush t in
        lower.pass_reviveobj p v);
    pass_sync =
      (fun h ->
        let* () = flush t in
        lower.pass_sync h);
  }
