(* The analyzer (paper §5.4) processes the stream of provenance records,
   eliminates duplicates, and ensures that cyclic dependencies do not arise.

   Duplicate elimination: programs perform I/O in small blocks, so the
   observer emits many identical records (the same process reading the same
   version of the same file).  We remember which (attribute, value) pairs
   have already been recorded against each (object, version) and drop
   repeats.  A pass_write whose bundle dedups to nothing and that carries no
   data never reaches storage at all — this is where the analyzer pays for
   itself in the Table 2 overheads.

   Cycle avoidance: PASSv1 maintained a global dependency graph and merged
   the nodes of any cycle it found, which proved fragile.  PASSv2 instead
   uses a conservative algorithm relying only on an object's local
   information.  Our realization is a version-birth-stamp order: every
   version of every object carries the logical time of its creation, and an
   ancestry edge X -> (Y, v) is admitted only when (Y, v) was born strictly
   before X's current version.  Otherwise the analyzer freezes X — creating
   a newer version whose birth postdates (Y, v) — and admits the edge from
   the new version.  Every admitted edge therefore points strictly backwards
   in birth time, so the graph is acyclic by construction.  The check
   compares exactly two integers, preserving the paper's locality claim. *)

type stats = {
  mutable records_in : int;
  mutable records_out : int;
  mutable duplicates_dropped : int;
  mutable freezes : int;
  mutable writes_elided : int; (* pass_writes fully absorbed by dedup *)
  mutable dedup_evictions : int; (* epoch resets of the bounded seen-table *)
  mutable adoptions : int; (* childless-target births lowered instead of freezing *)
}

(* Named instruments in the telemetry registry; the [stats] record is now a
   view built on demand, so existing callers keep working. *)
type instruments = {
  records_in : Telemetry.counter;
  records_out : Telemetry.counter;
  duplicates_dropped : Telemetry.counter;
  freezes : Telemetry.counter;
  writes_elided : Telemetry.counter;
  dedup_evictions : Telemetry.counter;
  adoptions : Telemetry.counter;
}

let instruments registry =
  let c name = Telemetry.counter ?registry ("analyzer." ^ name) in
  {
    records_in = c "records_in";
    records_out = c "records_out";
    duplicates_dropped = c "duplicates_dropped";
    freezes = c "freezes";
    writes_elided = c "writes_elided";
    dedup_evictions = c "dedup_evictions";
    adoptions = c "adoptions";
  }

type t = {
  ctx : Ctx.t;
  lower : Dpapi.endpoint;
  seen : (Pnode.t * int * Record.t, unit) Hashtbl.t;
  dedup_capacity : int; (* bound on the seen-table; kernel memory is finite *)
  i : instruments;
  charge : int -> unit; (* simulated CPU nanoseconds per unit of work *)
  dedup_enabled : bool;
  tracer : Pvtrace.t;
}

(* Rough CPU costs, in simulated nanoseconds, charged per record examined
   and per freeze.  These feed the elapsed-time model of Table 2. *)
let cost_per_record = 180
let cost_per_freeze = 450

let create ?registry ?(charge = fun _ -> ()) ?(dedup = true) ?(dedup_capacity = 1 lsl 18)
    ?(tracer = Pvtrace.disabled) ~ctx ~lower () =
  { ctx; lower; seen = Hashtbl.create 4096; dedup_capacity; i = instruments registry; charge;
    dedup_enabled = dedup; tracer }

let stats t : stats =
  let v = Telemetry.value in
  {
    records_in = v t.i.records_in;
    records_out = v t.i.records_out;
    duplicates_dropped = v t.i.duplicates_dropped;
    freezes = v t.i.freezes;
    writes_elided = v t.i.writes_elided;
    dedup_evictions = v t.i.dedup_evictions;
    adoptions = v t.i.adoptions;
  }

let duplicate t pnode version record =
  Hashtbl.mem t.seen (pnode, version, record)

let remember t pnode version record =
  if t.dedup_enabled then begin
    (* bounded memory: when the table fills, drop the whole epoch.  This
       is conservative — forgetting only means a duplicate may be
       re-admitted, never that a first occurrence is lost. *)
    if Hashtbl.length t.seen >= t.dedup_capacity then begin
      Hashtbl.reset t.seen;
      Telemetry.incr t.i.dedup_evictions
    end;
    Hashtbl.replace t.seen (pnode, version, record) ()
  end

(* Emit the records that materialize a freeze of [target]: a FREEZE marker
   carrying the new version number and an ancestry edge from the new version
   to the old one.  These go to storage in the same pass_write stream, which
   is what keeps freeze ordered w.r.t. the writes it protects (§6.1.2). *)
let freeze_records old_version new_version target =
  [
    Record.make Record.Attr.freeze (Pvalue.Int new_version);
    Record.input_of target.Dpapi.pnode old_version;
  ]

let do_freeze t (target : Dpapi.handle) =
  let old_version = Ctx.current_version t.ctx target.pnode in
  let new_version = Ctx.freeze t.ctx target.pnode in
  Telemetry.incr t.i.freezes;
  Pvtrace.event t.tracer ~layer:"analyzer" ~op:"freeze"
    ~pnode:(Pnode.to_int target.pnode) ~outcome:"cycle_broken" ();
  t.charge cost_per_freeze;
  let records = freeze_records old_version new_version target in
  List.iter (remember t target.pnode new_version) records;
  (new_version, Dpapi.entry target records)

(* Process one bundle entry: cycle-avoid ancestry records, dedup everything.
   The output preserves order, with any freeze records inserted immediately
   before the record that forced them, so downstream consumers (the WAP log
   and Waldo) can attribute each record to the right version.  Returns None
   if dedup absorbed the entry entirely. *)
let process_entry t (e : Dpapi.bundle_entry) =
  let target = e.target in
  let out = ref [] in
  let admit record =
    Telemetry.incr t.i.records_in;
    t.charge cost_per_record;
    (match Record.xref_of record with
    | Some { pnode = y; version = vy } when Record.is_ancestry record ->
        let x = target.pnode in
        let self_cycle = Pnode.equal x y && vy >= Ctx.current_version t.ctx x in
        let birth_y = Ctx.birth_at t.ctx y ~version:vy in
        let birth_x = Ctx.birth t.ctx x in
        if self_cycle then begin
          let _new_version, fe = do_freeze t target in
          out := List.rev_append fe.records !out
        end
        else if birth_y >= birth_x then
          if not (Ctx.has_out t.ctx y ~version:vy) then begin
            (* the target version has no dependencies of its own yet:
               adopt the edge by lowering its effective birth instead of
               freezing the source (this is what keeps a long-lived
               process cheap as it reads files younger than itself) *)
            Telemetry.incr t.i.adoptions;
            Pvtrace.event t.tracer ~layer:"analyzer" ~op:"adopt"
              ~pnode:(Pnode.to_int y) ~outcome:"adopted" ();
            Ctx.lower_birth t.ctx y ~version:vy ~below:birth_x
          end
          else begin
            let _new_version, fe = do_freeze t target in
            out := List.rev_append fe.records !out
          end;
        Ctx.mark_out t.ctx x ~version:(Ctx.current_version t.ctx x)
    | Some _ | None -> ());
    let version = Ctx.current_version t.ctx target.pnode in
    if t.dedup_enabled && duplicate t target.pnode version record then begin
      Telemetry.incr t.i.duplicates_dropped;
      Pvtrace.event t.tracer ~layer:"analyzer" ~op:"dedup"
        ~pnode:(Pnode.to_int target.pnode) ~outcome:"deduped" ()
    end
    else begin
      remember t target.pnode version record;
      out := record :: !out
    end
  in
  List.iter admit e.records;
  let records = List.rev !out in
  Telemetry.add t.i.records_out (List.length records);
  if records = [] then None else Some { e with records }

let pass_write t handle ~off ~data bundle =
  let bundle' = List.filter_map (process_entry t) bundle in
  match (data, bundle') with
  | None, [] ->
      Telemetry.incr t.i.writes_elided;
      Pvtrace.set_outcome t.tracer "elided";
      Ok (Ctx.current_version t.ctx handle.Dpapi.pnode)
  | _ -> t.lower.pass_write handle ~off ~data bundle'

let pass_freeze t (handle : Dpapi.handle) =
  let new_version, fe = do_freeze t handle in
  match t.lower.pass_write handle ~off:0 ~data:None [ fe ] with
  | Ok _ -> Ok new_version
  | Error _ as e -> e

let endpoint t : Dpapi.endpoint =
  {
    pass_read = t.lower.pass_read;
    pass_write = (fun h ~off ~data b -> pass_write t h ~off ~data b);
    pass_freeze = (fun h -> pass_freeze t h);
    pass_mkobj = t.lower.pass_mkobj;
    pass_reviveobj = t.lower.pass_reviveobj;
    pass_sync = t.lower.pass_sync;
  }
