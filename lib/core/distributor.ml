(* The distributor (paper §5.5).

   Processes, pipes, and application objects created via pass_mkobj are
   first-class provenance objects but are not persistent file-system
   objects, so their provenance has no obvious home.  The distributor
   caches provenance records for all such objects.  When one of them
   becomes part of the ancestry of a persistent object on a PASS volume —
   or is explicitly flushed via pass_sync — the distributor assigns it to a
   volume (the persistent ancestor's, or the one specified at creation) and
   flushes the cached records with a pass_write to storage.  Purely
   transient objects with no persistent descendants are never flushed,
   which is the correct behaviour (e.g. a process that touched nothing). *)

type ventry = {
  mutable records : Record.t list; (* newest first *)
  mutable hint : string option; (* volume requested at pass_mkobj time *)
  mutable assigned : string option; (* volume once anchored/flushed *)
}

type stats = {
  mutable cached_records : int;
  mutable flushes : int;
  mutable flushed_records : int;
}

(* Registry-backed instruments; [stats] is a view built on demand. *)
type instruments = {
  cached_records : Telemetry.counter;
  flushes : Telemetry.counter;
  flushed_records : Telemetry.counter;
}

type t = {
  ctx : Ctx.t;
  lower : Dpapi.endpoint;
  default_volume : string;
  cache : (Pnode.t, ventry) Hashtbl.t;
  tracer : Pvtrace.t;
  i : instruments;
}

let create ?registry ?(tracer = Pvtrace.disabled) ~ctx ~lower ~default_volume () =
  {
    ctx;
    lower;
    default_volume;
    cache = Hashtbl.create 256;
    tracer;
    i =
      {
        cached_records = Telemetry.counter ?registry "distributor.cached_records";
        flushes = Telemetry.counter ?registry "distributor.flushes";
        flushed_records = Telemetry.counter ?registry "distributor.flushed_records";
      };
  }

let stats t : stats =
  {
    cached_records = Telemetry.value t.i.cached_records;
    flushes = Telemetry.value t.i.flushes;
    flushed_records = Telemetry.value t.i.flushed_records;
  }
let cached_object_count t = Hashtbl.length t.cache

let is_cached_unflushed t pnode =
  match Hashtbl.find_opt t.cache pnode with
  | Some v -> v.assigned = None
  | None -> false

let ( let* ) = Result.bind

(* Flush [pnode]'s cached provenance to [volume], then recursively flush any
   still-cached objects its records reference: once an object is persistent,
   its whole transitive virtual ancestry must be too, or queries would dead
   end. *)
let rec flush t pnode volume =
  match Hashtbl.find_opt t.cache pnode with
  | None -> Ok ()
  | Some v when v.assigned <> None -> Ok ()
  | Some v ->
      let volume = Option.value v.hint ~default:volume in
      v.assigned <- Some volume;
      let records = List.rev v.records in
      v.records <- [];
      Telemetry.incr t.i.flushes;
      Telemetry.add t.i.flushed_records (List.length records);
      Pvtrace.span t.tracer ~layer:"distributor" ~op:"flush"
        ~pnode:(Pnode.to_int pnode)
      @@ fun () ->
      Pvtrace.set_outcome t.tracer "flushed";
      let handle = Dpapi.handle ~volume pnode in
      let* _version =
        t.lower.pass_write handle ~off:0 ~data:None [ Dpapi.entry handle records ]
      in
      flush_ancestors_of t records volume

and flush_ancestors_of t records volume =
  List.fold_left
    (fun acc r ->
      let* () = acc in
      match Record.xref_of r with
      | Some { pnode; _ } when is_cached_unflushed t pnode -> flush t pnode volume
      | Some _ | None -> Ok ())
    (Ok ()) records

(* Route one bundle entry.  Entries for persistent targets are forwarded
   (after anchoring any virtual ancestors they reference); entries for
   cached virtual objects are absorbed into the cache. *)
let route_entry t volume_of_write (e : Dpapi.bundle_entry) =
  let pnode = e.target.Dpapi.pnode in
  match (e.target.volume, Hashtbl.find_opt t.cache pnode) with
  | None, Some v when v.assigned = None ->
      (* still virtual: cache, and remember references among virtuals *)
      v.records <- List.rev_append e.records v.records;
      Telemetry.add t.i.cached_records (List.length e.records);
      Pvtrace.event t.tracer ~layer:"distributor" ~op:"absorb"
        ~pnode:(Pnode.to_int pnode) ~outcome:"cached" ();
      Ok None
  | None, Some v ->
      (* previously anchored: forward to its assigned volume *)
      let volume = Option.get v.assigned in
      let target = { e.Dpapi.target with volume = Some volume } in
      let* () = flush_ancestors_of t e.records volume in
      Ok (Some { e with Dpapi.target })
  | None, None ->
      (* unknown virtual object (e.g. revived after restart): treat as a
         fresh cache entry *)
      let v = { records = List.rev e.records; hint = None; assigned = None } in
      Hashtbl.replace t.cache pnode v;
      Telemetry.add t.i.cached_records (List.length e.records);
      Pvtrace.event t.tracer ~layer:"distributor" ~op:"absorb"
        ~pnode:(Pnode.to_int pnode) ~outcome:"cached" ();
      Ok None
  | Some volume, _ ->
      let* () = flush_ancestors_of t e.records (Option.value volume_of_write ~default:volume) in
      Ok (Some e)

let pass_write t (handle : Dpapi.handle) ~off ~data bundle =
  let volume_of_write = handle.volume in
  let rec route acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
        match route_entry t volume_of_write e with
        | Ok None -> route acc rest
        | Ok (Some e') -> route (e' :: acc) rest
        | Error _ as err -> err)
  in
  let* bundle' = route [] bundle in
  match (handle.volume, data) with
  | None, _ ->
      (* The write target itself is virtual: data aimed at it has no
         backing store, but entries that routed to persistent or anchored
         objects must still reach their volumes — one pass_write per
         volume, with that volume's first entry as the carrying handle. *)
      let by_volume = Hashtbl.create 4 in
      List.iter
        (fun (e : Dpapi.bundle_entry) ->
          let vol = Option.value e.target.volume ~default:t.default_volume in
          match Hashtbl.find_opt by_volume vol with
          | Some l -> l := e :: !l
          | None -> Hashtbl.add by_volume vol (ref [ e ]))
        bundle';
      let* () =
        Hashtbl.fold
          (fun _vol entries acc ->
            let* () = acc in
            match List.rev !entries with
            | [] -> Ok ()
            | (first : Dpapi.bundle_entry) :: _ as group ->
                let* _v = t.lower.pass_write first.target ~off:0 ~data:None group in
                Ok ())
          by_volume (Ok ())
      in
      Ok (Ctx.current_version t.ctx handle.pnode)
  | Some _, None when bundle' = [] -> Ok (Ctx.current_version t.ctx handle.pnode)
  | Some _, _ -> t.lower.pass_write handle ~off ~data bundle'

let pass_mkobj t ~volume =
  let pnode = Ctx.fresh t.ctx in
  Hashtbl.replace t.cache pnode { records = []; hint = volume; assigned = None };
  Ok (Dpapi.handle pnode)

let pass_reviveobj t pnode version =
  if Hashtbl.mem t.cache pnode then
    if version <= Ctx.current_version t.ctx pnode then Ok (Dpapi.handle pnode)
    else Error Dpapi.Estale
  else
    (* possibly persisted earlier: ask storage *)
    t.lower.pass_reviveobj pnode version

let pass_sync t (handle : Dpapi.handle) =
  match handle.volume with
  | Some _ -> t.lower.pass_sync handle
  | None -> (
      match flush t handle.pnode t.default_volume with
      | Ok () -> Ok ()
      | Error _ as e -> e)

let pass_read t (handle : Dpapi.handle) ~off ~len =
  match handle.volume with
  | Some _ -> t.lower.pass_read handle ~off ~len
  | None ->
      (* virtual objects have no data; reading them yields the identity with
         empty data, which lets layers above construct accurate records *)
      Ok
        {
          Dpapi.data = "";
          r_pnode = handle.pnode;
          r_version = Ctx.current_version t.ctx handle.pnode;
        }

let pass_freeze t (handle : Dpapi.handle) =
  match handle.volume with
  | Some _ -> t.lower.pass_freeze handle
  | None -> Ok (Ctx.freeze t.ctx handle.pnode)

let endpoint t : Dpapi.endpoint =
  {
    pass_read = (fun h ~off ~len -> pass_read t h ~off ~len);
    pass_write = (fun h ~off ~data b -> pass_write t h ~off ~data b);
    pass_freeze = (fun h -> pass_freeze t h);
    pass_mkobj = (fun ~volume -> pass_mkobj t ~volume);
    pass_reviveobj = (fun p v -> pass_reviveobj t p v);
    pass_sync = (fun h -> pass_sync t h);
  }
