(** The distributor.

    Caches provenance records for objects that are not persistent from the
    kernel's perspective — pipes, processes, and application-specific
    objects such as browser sessions or data sets — until they need to be
    materialized on disk (paper, Section 5.5).  An object's provenance is
    flushed to a PASS volume when the object becomes part of the ancestry
    of a persistent object, or when it is explicitly [pass_sync]ed. *)

type t

type stats = {
  mutable cached_records : int;
  mutable flushes : int;
  mutable flushed_records : int;
}

val create :
  ?registry:Telemetry.registry ->
  ?tracer:Pvtrace.t ->
  ctx:Ctx.t -> lower:Dpapi.endpoint -> default_volume:string -> unit -> t
(** [create ~ctx ~lower ~default_volume ()] builds a distributor stage.
    [default_volume] receives the provenance of [pass_sync]ed objects that
    were created without a volume hint; [registry] receives the
    [distributor.*] instruments (default {!Telemetry.default}); [tracer]
    (default {!Pvtrace.disabled}) records "cached" absorb events and
    "flushed" flush spans. *)

val endpoint : t -> Dpapi.endpoint

val stats : t -> stats
(** A point-in-time view over the [distributor.*] telemetry instruments. *)

val cached_object_count : t -> int

val is_cached_unflushed : t -> Pnode.t -> bool
(** True while the object's provenance lives only in the cache (used by
    tests of invariant 4 in DESIGN.md). *)
