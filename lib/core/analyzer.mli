(** The analyzer.

    Processes the stream of provenance records, eliminating duplicates and
    ensuring that cyclic dependencies do not arise (paper, Section 5.4).
    PASSv2 uses a conservative {e cycle avoidance} algorithm that relies
    only on an object's local information; here that is a version
    birth-stamp order — an ancestry edge may only point at a version born
    strictly earlier, otherwise the source object is frozen first.  Every
    admitted edge then points strictly backwards in time, so the provenance
    graph is acyclic by construction. *)

type t

type stats = {
  mutable records_in : int;
  mutable records_out : int;
  mutable duplicates_dropped : int;
  mutable freezes : int;
  mutable writes_elided : int;
  mutable dedup_evictions : int;
  mutable adoptions : int;
}

val create :
  ?registry:Telemetry.registry ->
  ?charge:(int -> unit) ->
  ?dedup:bool ->
  ?dedup_capacity:int ->
  ?tracer:Pvtrace.t ->
  ctx:Ctx.t ->
  lower:Dpapi.endpoint ->
  unit ->
  t
(** [create ~ctx ~lower ()] builds an analyzer stage above [lower].
    [registry] receives the [analyzer.*] instruments (default
    {!Telemetry.default}); [charge] receives simulated CPU nanoseconds as
    work is performed; [dedup] (default true) can be disabled for the
    ablation benchmark; [dedup_capacity] bounds the duplicate-detection
    table (epoch reset when full — duplicates may then be re-admitted,
    first occurrences are never lost); [tracer] (default
    {!Pvtrace.disabled}) records deduped / cycle-broken / adopted events
    and marks fully-absorbed writes "elided". *)

val endpoint : t -> Dpapi.endpoint
(** The DPAPI face of this analyzer, to be handed to the layer above. *)

val stats : t -> stats
(** A point-in-time view over the [analyzer.*] telemetry instruments. *)
