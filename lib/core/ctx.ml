(* Per-machine provenance context: the pnode allocator plus the authority
   for the version history of every live object.

   Every version of an object has a *birth stamp* drawn from a logical clock
   that ticks whenever a version is created.  The analyzer's cycle-avoidance
   rule only ever compares two stamps, which is what makes it a local
   algorithm (paper §5.4). *)

type vstate = {
  mutable eff_birth : int;
      (* effective birth: may be lowered while the version has no
         outgoing ancestry edges (see Analyzer's cycle-avoidance rule) *)
  mutable has_out : bool; (* has admitted outgoing ancestry edges *)
}

type obj_state = {
  mutable version : int;
  births : (int, vstate) Hashtbl.t; (* version -> birth state *)
}

type t = {
  alloc : Pnode.allocator;
  objects : (Pnode.t, obj_state) Hashtbl.t;
  mutable logical_clock : int;
}

let create ~machine =
  { alloc = Pnode.allocator ~machine; objects = Hashtbl.create 512; logical_clock = 0 }

let tick t =
  t.logical_clock <- t.logical_clock + 1;
  t.logical_clock

let state t pnode =
  match Hashtbl.find_opt t.objects pnode with
  | Some st -> st
  | None ->
      let births = Hashtbl.create 4 in
      Hashtbl.add births 0 { eff_birth = tick t; has_out = false };
      let st = { version = 0; births } in
      Hashtbl.add t.objects pnode st;
      st

let fresh t =
  let pnode = Pnode.fresh t.alloc in
  let _ : obj_state = state t pnode in
  pnode

let adopt t pnode ~version =
  let st = state t pnode in
  if version > st.version then begin
    st.version <- version;
    Hashtbl.replace st.births version { eff_birth = tick t; has_out = false }
  end

let current_version t pnode = (state t pnode).version

let vstate_at t pnode ~version =
  let st = state t pnode in
  match Hashtbl.find_opt st.births version with
  | Some vs -> vs
  | None ->
      (* versions adopted from other machines may have gaps; unknown old
         versions are treated as born at time 0 (conservative: an edge to
         them is always allowed, and as closed versions they cannot gain
         dependencies through this machine's analyzer) *)
      let vs =
        if version >= st.version then { eff_birth = tick t; has_out = false }
        else { eff_birth = 0; has_out = true }
      in
      Hashtbl.replace st.births version vs;
      vs

let birth t pnode =
  let st = state t pnode in
  (vstate_at t pnode ~version:st.version).eff_birth

let birth_at t pnode ~version = (vstate_at t pnode ~version).eff_birth

let has_out t pnode ~version = (vstate_at t pnode ~version).has_out

let mark_out t pnode ~version = (vstate_at t pnode ~version).has_out <- true

(* Lower a version's effective birth below [bound].  Only legal while the
   version has no outgoing ancestry edges; edges *into* it only ever
   required its birth to be smaller, so lowering preserves them. *)
let lower_birth t pnode ~version ~below =
  let vs = vstate_at t pnode ~version in
  assert (not vs.has_out);
  if vs.eff_birth >= below then vs.eff_birth <- below - 1

let freeze t pnode =
  let st = state t pnode in
  st.version <- st.version + 1;
  Hashtbl.replace st.births st.version { eff_birth = tick t; has_out = false };
  st.version

let known t pnode = Hashtbl.mem t.objects pnode
let object_count t = Hashtbl.length t.objects
