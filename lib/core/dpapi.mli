(** The Disclosed Provenance API (DPAPI).

    The DPAPI is the central API inside PASSv2 (paper, Section 5.2).  It
    allows transfer of provenance both among the components of the system
    and between layers.  It consists of six calls —
    [pass_read], [pass_write], [pass_freeze], [pass_mkobj],
    [pass_reviveobj] and [pass_sync] — and two concepts: the pnode number
    ({!Pnode.t}) and the provenance record ({!Record.t}). *)

type error =
  | Enoent
  | Eio
  | Ebadf
  | Einval
  | Estale
  | Enospc
  | Eexist
  | Ecrashed
  | Eagain
  | Emsg of string

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

type handle = { pnode : Pnode.t; volume : string option }
(** A handle names an object.  Files carry the volume they live on; virtual
    objects (processes, pipes, browser sessions, data sets) carry
    [volume = None] until the distributor assigns one. *)

val handle : ?volume:string -> Pnode.t -> handle
val pp_handle : Format.formatter -> handle -> unit

type read_result = { data : string; r_pnode : Pnode.t; r_version : int }
(** What [pass_read] returns: the data plus the exact identity (pnode and
    version as of the moment of the read) of what was read. *)

type bundle_entry = { target : handle; records : Record.t list }

type bundle = bundle_entry list
(** An array of object handles and records, each potentially describing a
    different object, sent as a single unit. *)

val entry : handle -> Record.t list -> bundle_entry

type endpoint = {
  pass_read : handle -> off:int -> len:int -> (read_result, error) result;
  pass_write : handle -> off:int -> data:string option -> bundle -> (int, error) result;
  pass_freeze : handle -> (int, error) result;
  pass_mkobj : volume:string option -> (handle, error) result;
  pass_reviveobj : Pnode.t -> int -> (handle, error) result;
  pass_sync : handle -> (unit, error) result;
}
(** One DPAPI party.  Layers compose by wrapping a lower endpoint. *)

val disclose : endpoint -> handle -> Record.t list -> (unit, error) result
(** [disclose ep target records] sends a provenance-only [pass_write]. *)

val traced : tracer:Pvtrace.t -> layer:string -> endpoint -> endpoint
(** [traced ~tracer ~layer ep] wraps each of the six operations in a
    pvtrace span named ["<layer>.<op>"] carrying the subject pnode; an
    [Error e] sets the span outcome to the lowercased errno.  Returns
    [ep] unchanged when [tracer] is disabled. *)

val encode_bundle : Buffer.t -> bundle -> unit
val decode_bundle : string -> int ref -> bundle

val bundle_size : bundle -> int
(** Encoded size in bytes, used by PA-NFS to decide whether a transaction
    is needed (the 64 KB rule of Section 6.1.2). *)
