(** Pnode numbers.

    A pnode number is a unique identifier assigned to an object at creation
    time.  It is the handle for the object's provenance, akin to an inode
    number, but it is never recycled (paper, Section 5.2). *)

type t
(** A pnode number. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Explicit structural hash, stable across OCaml versions (it feeds
    dedup tables; the runtime's [Hashtbl.hash] algorithm is not part of
    any compatibility contract). *)

val to_int : t -> int
(** [to_int t] exposes the raw integer, e.g. for serialization. *)

val of_int : int -> t
(** [of_int i] reconstructs a pnode from its serialized form. *)

val pp : Format.formatter -> t -> unit

type allocator
(** A pnode allocator.  Each simulated machine owns one. *)

val allocator : machine:int -> allocator
(** [allocator ~machine] creates an allocator whose pnodes are tagged with
    [machine] in their high bits, so distinct machines never collide.
    @raise Invalid_argument if [machine] is negative or too large. *)

val fresh : allocator -> t
(** [fresh alloc] returns a never-before-seen pnode. *)

val machine_of : t -> int
(** The machine id embedded in a pnode. *)

val sequence_of : t -> int
(** The per-machine sequence number embedded in a pnode. *)
