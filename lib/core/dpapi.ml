(* The Disclosed Provenance API (paper §5.2): the single universal interface
   through which provenance moves between components of PASSv2 and between
   layers of provenance-aware systems.

   An endpoint is a record of the six DPAPI operations.  Layers compose by
   wrapping a lower endpoint: observer -> analyzer -> distributor -> storage.
   Provenance-aware applications hold an endpoint through Libpass. *)

type error =
  | Enoent  (* no such object *)
  | Eio  (* I/O error (including simulated disk crash) *)
  | Ebadf  (* invalid handle *)
  | Einval  (* invalid argument *)
  | Estale  (* handle refers to a dead/stale object *)
  | Enospc  (* volume out of space *)
  | Eexist  (* object already exists *)
  | Ecrashed  (* machine or volume has crashed *)
  | Eagain  (* backpressure: retry later (write-behind queue full) *)
  | Emsg of string  (* anything else, with an explanation *)

let error_to_string = function
  | Enoent -> "ENOENT"
  | Eio -> "EIO"
  | Ebadf -> "EBADF"
  | Einval -> "EINVAL"
  | Estale -> "ESTALE"
  | Enospc -> "ENOSPC"
  | Eexist -> "EEXIST"
  | Ecrashed -> "ECRASHED"
  | Eagain -> "EAGAIN"
  | Emsg m -> m

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* A handle names an object for DPAPI purposes.  Files carry the volume they
   live on; virtual objects (processes, pipes, browser sessions, data sets)
   carry [volume = None] until the distributor assigns them one. *)
type handle = { pnode : Pnode.t; volume : string option }

let handle ?volume pnode = { pnode; volume }
let pp_handle ppf h =
  Format.fprintf ppf "%a%s" Pnode.pp h.pnode
    (match h.volume with None -> "" | Some v -> "@" ^ v)

type read_result = { data : string; r_pnode : Pnode.t; r_version : int }

(* A provenance bundle: an array of object handles and records, each
   potentially describing a different object, sent as a single unit so that
   the complete provenance of a block of data (several processes and pipes in
   a pipeline, say) stays consistent (paper §5.2). *)
type bundle_entry = { target : handle; records : Record.t list }
type bundle = bundle_entry list

let entry target records = { target; records }

type endpoint = {
  pass_read : handle -> off:int -> len:int -> (read_result, error) result;
      (* like read, but also returns the exact identity of what was read *)
  pass_write : handle -> off:int -> data:string option -> bundle -> (int, error) result;
      (* write data (if any) plus the bundle describing it; returns the
         version of [handle] the write landed in *)
  pass_freeze : handle -> (int, error) result;
      (* break cycles by requesting a new version; returns the new version *)
  pass_mkobj : volume:string option -> (handle, error) result;
      (* create an object with no file-system manifestation *)
  pass_reviveobj : Pnode.t -> int -> (handle, error) result;
      (* reattach to an object previously created via pass_mkobj *)
  pass_sync : handle -> (unit, error) result;
      (* force the object's provenance to persistent storage *)
}

let ( let* ) = Result.bind

(* Convenience: a provenance-only write (no data), the common case for
   disclosing records about an object. *)
let disclose ep target records =
  let* _version = ep.pass_write target ~off:0 ~data:None [ entry target records ] in
  Ok ()

(* Trace instrumentation: wrap an endpoint so each of the six operations
   runs inside a pvtrace span named "<layer>.<op>".  Errors become the
   span outcome (lowercased errno).  Identity when the tracer is
   disabled, so uninstrumented assemblies pay nothing. *)
let traced ~tracer ~layer ep =
  if not (Pvtrace.enabled tracer) then ep
  else begin
    let outcome r =
      (match r with
      | Ok _ -> ()
      | Error e ->
          Pvtrace.set_outcome tracer
            (String.lowercase_ascii (error_to_string e)));
      r
    in
    let wrap op ?(pnode = 0) f =
      Pvtrace.span tracer ~layer ~op ~pnode (fun () -> outcome (f ()))
    in
    let pn h = Pnode.to_int h.pnode in
    {
      pass_read =
        (fun h ~off ~len ->
          wrap "pass_read" ~pnode:(pn h) (fun () -> ep.pass_read h ~off ~len));
      pass_write =
        (fun h ~off ~data bundle ->
          wrap "pass_write" ~pnode:(pn h) (fun () ->
              ep.pass_write h ~off ~data bundle));
      pass_freeze =
        (fun h -> wrap "pass_freeze" ~pnode:(pn h) (fun () -> ep.pass_freeze h));
      pass_mkobj =
        (fun ~volume -> wrap "pass_mkobj" (fun () -> ep.pass_mkobj ~volume));
      pass_reviveobj =
        (fun pnode version ->
          wrap "pass_reviveobj" ~pnode:(Pnode.to_int pnode) (fun () ->
              ep.pass_reviveobj pnode version));
      pass_sync =
        (fun h -> wrap "pass_sync" ~pnode:(pn h) (fun () -> ep.pass_sync h));
    }
  end

(* Wire form of bundles, shared by the WAP log and PA-NFS. *)
let encode_entry buf { target; records } =
  Buffer.add_int64_le buf (Int64.of_int (Pnode.to_int target.pnode));
  Pvalue.put_string buf (Option.value target.volume ~default:"");
  Pvalue.put_u32 buf (List.length records);
  List.iter (Record.encode buf) records

let decode_entry s pos =
  let pnode = Pnode.of_int (Pvalue.get_i64 s pos) in
  let vol = Pvalue.get_string s pos in
  let volume = if String.equal vol "" then None else Some vol in
  let n = Pvalue.get_u32 s pos in
  let rec loop k acc =
    if k = 0 then List.rev acc else loop (k - 1) (Record.decode s pos :: acc)
  in
  { target = { pnode; volume }; records = loop n [] }

let encode_bundle buf bundle =
  Pvalue.put_u32 buf (List.length bundle);
  List.iter (encode_entry buf) bundle

let decode_bundle s pos =
  let n = Pvalue.get_u32 s pos in
  let rec loop k acc =
    if k = 0 then List.rev acc else loop (k - 1) (decode_entry s pos :: acc)
  in
  loop n []

(* Size probes run on every hot-path write; reuse one scratch buffer
   instead of allocating per call. *)
let size_scratch = Buffer.create 256

let bundle_size bundle =
  Buffer.clear size_scratch;
  encode_bundle size_scratch bundle;
  Buffer.length size_scratch
